// Ablation A5: scheduling policy (paper §7.3 — "exploring the performance
// of the new metrics under various task assignment and scheduling
// policies"). Compares, for ADAPT-L and NORM across the OLR range:
//   * the paper's append-placement EDF list scheduler,
//   * the insertion-based (gap-filling) variant,
//   * the on-line time-marching EDF dispatcher (work-conserving, myopic),
//   * the preemptive EDF simulator (static binding, same-processor resume).
//
// Because the slicing windows already serialize precedence-related tasks,
// insertion mainly helps when windows overlap heavily, and the myopic
// dispatcher loses little — evidence for the paper's claim that slicing
// makes local scheduling decisions safe (I1/I2).
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace dsslice;
  CliParser cli = bench::make_parser(
      "ablation_scheduler", "A5: append vs insertion EDF placement");
  if (!cli.parse(argc, argv)) {
    return 0;
  }
  bench::ObsScope obs_scope(cli);
  ThreadPool pool = bench::make_pool(cli);
  ExperimentConfig base = bench::base_config(cli);
  base.generator.platform.processor_count = 3;

  std::vector<SeriesSpec> specs;
  for (const DistributionTechnique t :
       {DistributionTechnique::kSlicingNorm,
        DistributionTechnique::kSlicingAdaptL}) {
    for (const PlacementPolicy p :
         {PlacementPolicy::kAppend, PlacementPolicy::kInsertion}) {
      specs.push_back(SeriesSpec{
          to_string(metric_of(t)) + "/" + to_string(p),
          [base, t, p](double olr) {
            ExperimentConfig c = base;
            c.technique = t;
            c.scheduler.placement = p;
            c.generator.workload.olr = olr;
            return c;
          }});
    }
    for (const auto& [name, algorithm] :
         {std::pair<const char*, SchedulerAlgorithm>{
              "dispatch", SchedulerAlgorithm::kDispatchEdf},
          std::pair<const char*, SchedulerAlgorithm>{
              "preemptive", SchedulerAlgorithm::kPreemptiveEdf}}) {
      specs.push_back(SeriesSpec{
          to_string(metric_of(t)) + "/" + name,
          [base, t, algorithm](double olr) {
            ExperimentConfig c = base;
            c.technique = t;
            c.algorithm = algorithm;
            c.generator.workload.olr = olr;
            return c;
          }});
    }
  }
  const SweepResult sweep = run_sweep("OLR", {0.5, 0.6, 0.7, 0.8, 1.0},
                                      specs, pool, cli.get_bool("verbose"));
  bench::report("A5 — EDF placement policy ablation (m=3, ETD=25%)", sweep,
                cli);
  return 0;
}
