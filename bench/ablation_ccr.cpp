// Ablation A3: communication-to-computation ratio (CCR).
//
// The slicing technique deliberately assumes zero communication cost when
// predicting critical paths (§4.3): schedulers tend to cluster heavy
// communicators and real-time control traffic is light. This bench checks
// how far that assumption carries as messages grow from free (CCR = 0) to
// execution-sized (CCR = 1): the metric ordering should be stable and
// degradation graceful.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace dsslice;
  CliParser cli = bench::make_parser(
      "ablation_ccr", "A3: success ratio vs CCR (zero-cost assumption)");
  if (!cli.parse(argc, argv)) {
    return 0;
  }
  bench::ObsScope obs_scope(cli);
  ThreadPool pool = bench::make_pool(cli);
  ExperimentConfig base = bench::base_config(cli);
  base.generator.platform.processor_count = 3;

  std::vector<SeriesSpec> specs;
  for (const SeriesSpec& spec : metric_series(base)) {
    specs.push_back(SeriesSpec{spec.name, [spec](double ccr) {
                                 ExperimentConfig c = spec.factory(ccr);
                                 c.generator.workload.ccr = ccr;
                                 return c;
                               }});
  }
  const SweepResult sweep =
      run_sweep("CCR", {0.0, 0.05, 0.1, 0.2, 0.5, 1.0}, specs, pool,
                cli.get_bool("verbose"));
  bench::report("A3 — success ratio vs CCR (m=3, OLR=0.8, ETD=25%; "
                "paper default 0.1)",
                sweep, cli);
  return 0;
}
