// Robustness study (beyond the paper's figures; docs/ROBUSTNESS.md): the
// four metrics dispatched under injected execution-time overruns, with and
// without degraded-mode recovery.
//
// Part 1 sweeps the overrun factor and reports, per metric × policy, the
// fraction of E-T-E deadlines met plus the breakdown overrun factor — the
// largest overrun each configuration tolerates before its E-T-E miss ratio
// exceeds the threshold. The printed verdict checks the headline claim:
// redistribute-slack recovery never loses to the do-nothing baseline at
// equal fault intensity.
//
// Part 2 is a processor-failure table: one processor halts mid-run and the
// migrate policy is compared against no recovery.
#include <algorithm>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace dsslice;
  CliParser cli = bench::make_parser(
      "fig_robustness",
      "Robustness: E-T-E deadlines met under injected faults, per metric "
      "and recovery policy");
  cli.add_flag("miss-threshold", "0.1",
               "E-T-E miss ratio defining the breakdown factor");
  cli.add_flag("overrun-probability", "0.35",
               "per-task probability of an execution-time overrun");
  cli.add_flag("replicates", "5",
               "independent seed replicates averaged into every point");
  if (!cli.parse(argc, argv)) {
    return 0;
  }
  bench::ObsScope obs_scope(cli);
  ThreadPool pool = bench::make_pool(cli);
  const bool verbose = cli.get_bool("verbose");
  const double threshold = cli.get_double("miss-threshold");

  RobustnessConfig base;
  base.base = bench::base_config(cli);
  // The full 1024-graph batch over a 9-point sweep × 8 series is heavy for
  // a dispatch-time simulation; a quarter batch keeps the CI tight enough.
  // Every point additionally averages over --replicates independent seed
  // replicates, so no row reflects one fixed-seed batch; the per-replicate
  // batch shrinks to keep the total cost flat.
  base.seed_replicates = std::max<std::size_t>(
      1, static_cast<std::size_t>(cli.get_int("replicates")));
  base.base.generator.graph_count = std::max<std::size_t>(
      1, base.base.generator.graph_count / (4 * base.seed_replicates));
  base.base.generator.platform.processor_count = 3;
  base.faults.scope = OverrunScope::kUniform;
  base.faults.overrun_probability = cli.get_double("overrun-probability");
  base.faults.seed = 0x0B0B57;

  const std::vector<DistributionTechnique> techniques = {
      DistributionTechnique::kSlicingPure,
      DistributionTechnique::kSlicingNorm,
      DistributionTechnique::kSlicingAdaptG,
      DistributionTechnique::kSlicingAdaptL,
  };
  const std::vector<RecoveryPolicy> policies = {
      RecoveryPolicy::kNone, RecoveryPolicy::kRedistributeSlack};
  const std::vector<double> factors = {1.0,  1.25, 1.5,  1.75, 2.0,
                                       2.25, 2.5,  2.75, 3.0};

  const SweepResult sweep = sweep_overrun_factor(base, techniques, policies,
                                                 factors, pool, verbose);
  bench::report(
      "Robustness — E-T-E deadlines met vs execution-time overrun factor "
      "(m=3, per-task overrun probability " +
          format_fixed(base.faults.overrun_probability, 2) + ")",
      sweep, cli);

  std::fputs(
      format_breakdown_table(breakdown_overrun_factors(sweep, threshold),
                             threshold)
          .c_str(),
      stdout);

  // Headline verdict: at every swept intensity, redistribute-slack must
  // meet at least as many E-T-E deadlines as no recovery — strictly more
  // somewhere — for every metric.
  bool redistribute_dominates = true;
  bool strictly_better_somewhere = false;
  for (const DistributionTechnique t : techniques) {
    const Series& none = sweep.find(to_string(t) + "/none");
    const Series& redis = sweep.find(to_string(t) + "/redistribute-slack");
    for (std::size_t i = 0; i < sweep.x.size(); ++i) {
      if (redis.success_ratio[i] < none.success_ratio[i] - 1e-12) {
        redistribute_dominates = false;
        std::printf("  !! %s: recovery LOSES at overrun factor %.2f "
                    "(%.4f < %.4f)\n",
                    to_string(t).c_str(), sweep.x[i], redis.success_ratio[i],
                    none.success_ratio[i]);
      }
      if (redis.success_ratio[i] > none.success_ratio[i] + 1e-12) {
        strictly_better_somewhere = true;
      }
    }
  }
  std::printf("\nverdict: redistribute-slack %s the no-recovery baseline "
              "(%s strict improvement observed)\n",
              redistribute_dominates ? "dominates" : "does NOT dominate",
              strictly_better_somewhere ? "with" : "without");

  // Part 2: one unforeseen processor failure, migrate vs none. The failure
  // instant is drawn per graph inside the busy part of the horizon.
  std::printf("\n== Processor failure: migrate vs no recovery ==\n");
  std::printf("   (one of %zu processors fails with p=0.75 during [5, 60); "
              "%zu graphs)\n\n",
              base.base.generator.platform.processor_count,
              base.base.generator.graph_count);
  RobustnessConfig fail_base = base;
  fail_base.faults = FaultSpec{};
  fail_base.faults.seed = 0xFA11;
  fail_base.faults.random_failure_probability = 0.25;
  fail_base.faults.random_failure_window = Window{5.0, 60.0};
  for (const DistributionTechnique t : techniques) {
    fail_base.base.technique = t;
    for (const RecoveryPolicy policy :
         {RecoveryPolicy::kNone, RecoveryPolicy::kMigrate}) {
      fail_base.policy = policy;
      const RobustnessResult result = run_robustness(fail_base, pool);
      std::printf("%s\n",
                  result.summary(to_string(t) + "/" + to_string(policy))
                      .c_str());
    }
  }
  return 0;
}
