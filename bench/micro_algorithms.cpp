// M1: google-benchmark micro-benchmarks for the algorithmic kernels,
// checking the complexity classes the paper quotes:
//  * SLICING main loop: O(n²) per application (§4.4);
//  * transitive closure for ADAPT-L: within the quoted O(n³) (§4.5);
//  * EDF list scheduler: O(n²·m) (§5.4).
#include <benchmark/benchmark.h>
#include <cstdint>

#include "dsslice/dsslice.hpp"

namespace {

using namespace dsslice;

GeneratorConfig sized_config(std::size_t tasks, std::size_t processors) {
  GeneratorConfig cfg;
  cfg.platform.processor_count = processors;
  cfg.workload.min_tasks = tasks;
  cfg.workload.max_tasks = tasks;
  cfg.workload.min_depth = std::max<std::size_t>(2, tasks / 5);
  cfg.workload.max_depth = std::max<std::size_t>(2, tasks / 5);
  cfg.base_seed = 0xBE7C;
  return cfg;
}

void BM_SlicingByMetric(benchmark::State& state, MetricKind kind) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Scenario sc = generate_scenario_at(sized_config(n, 3), 0);
  const auto est = estimate_wcets(sc.application, WcetEstimation::kAverage);
  const DeadlineMetric metric(kind);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        run_slicing(sc.application, est, metric, 3));
  }
  state.SetComplexityN(static_cast<std::int64_t>(n));
}

void BM_SlicingPure(benchmark::State& state) {
  BM_SlicingByMetric(state, MetricKind::kPure);
}
void BM_SlicingAdaptL(benchmark::State& state) {
  BM_SlicingByMetric(state, MetricKind::kAdaptL);
}
BENCHMARK(BM_SlicingPure)->RangeMultiplier(2)->Range(16, 512)->Complexity();
BENCHMARK(BM_SlicingAdaptL)->RangeMultiplier(2)->Range(16, 512)->Complexity();

void BM_TransitiveClosure(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Scenario sc = generate_scenario_at(sized_config(n, 3), 1);
  for (auto _ : state) {
    TransitiveClosure closure(sc.application.graph());
    benchmark::DoNotOptimize(closure.parallel_set_size(0));
  }
  state.SetComplexityN(static_cast<std::int64_t>(n));
}
BENCHMARK(BM_TransitiveClosure)
    ->RangeMultiplier(2)
    ->Range(16, 1024)
    ->Complexity();

void BM_GraphAnalysisBuild(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Scenario sc = generate_scenario_at(sized_config(n, 3), 1);
  for (auto _ : state) {
    GraphAnalysis analysis(sc.application.graph());
    benchmark::DoNotOptimize(analysis.parallel_set_size(0));
  }
  state.SetComplexityN(static_cast<std::int64_t>(n));
}
BENCHMARK(BM_GraphAnalysisBuild)
    ->RangeMultiplier(2)
    ->Range(16, 1024)
    ->Complexity();

void BM_ParallelSetMaterialized(benchmark::State& state) {
  // Baseline: build the Ψ_i node vectors (one allocation per task per call).
  const auto n = static_cast<std::size_t>(state.range(0));
  const Scenario sc = generate_scenario_at(sized_config(n, 3), 1);
  const GraphAnalysis& analysis = sc.application.analysis();
  for (auto _ : state) {
    std::size_t total = 0;
    for (NodeId i = 0; i < n; ++i) {
      total += analysis.parallel_set(i).size();
    }
    benchmark::DoNotOptimize(total);
  }
  state.SetComplexityN(static_cast<std::int64_t>(n));
}
BENCHMARK(BM_ParallelSetMaterialized)
    ->RangeMultiplier(2)
    ->Range(16, 1024)
    ->Complexity();

void BM_ParallelSetBitsetWalk(benchmark::State& state) {
  // Hot path: walk ~(reach | coreach) word by word, no allocation.
  const auto n = static_cast<std::size_t>(state.range(0));
  const Scenario sc = generate_scenario_at(sized_config(n, 3), 1);
  const GraphAnalysis& analysis = sc.application.analysis();
  for (auto _ : state) {
    std::size_t total = 0;
    for (NodeId i = 0; i < n; ++i) {
      analysis.for_each_parallel(i, [&](NodeId) { ++total; });
    }
    benchmark::DoNotOptimize(total);
  }
  state.SetComplexityN(static_cast<std::int64_t>(n));
}
BENCHMARK(BM_ParallelSetBitsetWalk)
    ->RangeMultiplier(2)
    ->Range(16, 1024)
    ->Complexity();

void BM_AdaptLWeightsCached(benchmark::State& state) {
  // Per-call weights cost with a warm analysis cache and a reused workspace
  // (the per-scenario cost inside a sweep after this PR).
  const auto n = static_cast<std::size_t>(state.range(0));
  const Scenario sc = generate_scenario_at(sized_config(n, 3), 1);
  const auto est = estimate_wcets(sc.application, WcetEstimation::kAverage);
  const DeadlineMetric metric(MetricKind::kAdaptL);
  sc.application.analysis();
  MetricWorkspace workspace;
  std::vector<double> out;
  for (auto _ : state) {
    metric.weights_into(sc.application, est, 3, nullptr, out, &workspace);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetComplexityN(static_cast<std::int64_t>(n));
}
BENCHMARK(BM_AdaptLWeightsCached)
    ->RangeMultiplier(2)
    ->Range(16, 1024)
    ->Complexity();

void BM_BatchSliceByMode(benchmark::State& state, BatchLaneMode mode) {
  // The batch slicing kernel per engine: kReference peels with the scalar
  // run_slicing pipeline, kLanes64 with the incremental bitset-walked DP.
  // Identical inputs and entry point, so the pair isolates the lane engine's
  // contribution (same A/B as bench/perf_slicing_batch, in microbench form).
  const auto n = static_cast<std::size_t>(state.range(0));
  constexpr std::size_t kBatch = 8;
  std::vector<Scenario> scenarios;
  scenarios.reserve(kBatch);
  for (std::size_t s = 0; s < kBatch; ++s) {
    scenarios.push_back(generate_scenario_at(sized_config(n, 3), s));
    scenarios.back().application.analysis();
  }
  BatchSliceKernel kernel;
  BatchSliceConfig config;
  config.metric = MetricKind::kAdaptL;
  config.lane_mode = mode;
  kernel.run(scenarios, config);  // warm: the timed loop is allocation-free
  for (auto _ : state) {
    kernel.run(scenarios, config);
    benchmark::DoNotOptimize(kernel.assignment(0).windows.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kBatch));
  state.SetComplexityN(static_cast<std::int64_t>(n));
}

void BM_BatchSliceReference(benchmark::State& state) {
  BM_BatchSliceByMode(state, BatchLaneMode::kReference);
}
void BM_BatchSliceLanes64(benchmark::State& state) {
  BM_BatchSliceByMode(state, BatchLaneMode::kLanes64);
}
BENCHMARK(BM_BatchSliceReference)
    ->RangeMultiplier(2)
    ->Range(32, 512)
    ->Complexity();
BENCHMARK(BM_BatchSliceLanes64)
    ->RangeMultiplier(2)
    ->Range(32, 512)
    ->Complexity();

void BM_EdfScheduler(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto m = static_cast<std::size_t>(state.range(1));
  const Scenario sc = generate_scenario_at(sized_config(n, m), 2);
  const auto est = estimate_wcets(sc.application, WcetEstimation::kAverage);
  const auto assignment = run_slicing(
      sc.application, est, DeadlineMetric(MetricKind::kNorm), m);
  SchedulerOptions options;
  options.abort_on_miss = false;  // measure full-schedule cost
  const EdfListScheduler scheduler(options);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        scheduler.run(sc.application, assignment, sc.platform));
  }
}
BENCHMARK(BM_EdfScheduler)
    ->Args({64, 2})
    ->Args({64, 8})
    ->Args({256, 2})
    ->Args({256, 8})
    ->Args({512, 8});

void BM_WorkloadGeneration(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const GeneratorConfig cfg = sized_config(n, 3);
  std::uint64_t k = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(generate_scenario(cfg, derive_seed(1, k++)));
  }
}
BENCHMARK(BM_WorkloadGeneration)->Arg(50)->Arg(200);

void BM_FullPipelinePaperPoint(benchmark::State& state) {
  // One paper-default task set end to end: generate → estimate → slice
  // (ADAPT-L) → schedule. This is the per-graph unit cost of every figure.
  GeneratorConfig cfg;  // paper defaults
  cfg.base_seed = 0xF16;
  ExperimentConfig config;
  config.generator = cfg;
  config.technique = DistributionTechnique::kSlicingAdaptL;
  std::uint64_t k = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(evaluate_scenario(config, derive_seed(2, k++)));
  }
}
BENCHMARK(BM_FullPipelinePaperPoint);

}  // namespace

BENCHMARK_MAIN();
