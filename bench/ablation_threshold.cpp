// Ablation A2: sensitivity to the execution-time threshold c_thres.
//
// The paper fixes c_thres = 1.0 × c_mean (§6). This bench sweeps the
// threshold factor for both adaptive metrics at the default operating
// point. A factor of 0 inflates every task (no filtering); a large factor
// degenerates the adaptive metrics to PURE (nothing crosses the threshold).
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace dsslice;
  CliParser cli = bench::make_parser(
      "ablation_threshold",
      "A2: sensitivity to the execution-time threshold factor");
  if (!cli.parse(argc, argv)) {
    return 0;
  }
  bench::ObsScope obs_scope(cli);
  ThreadPool pool = bench::make_pool(cli);
  ExperimentConfig base = bench::base_config(cli);
  base.generator.platform.processor_count = 3;

  std::vector<SeriesSpec> specs;
  for (const DistributionTechnique t :
       {DistributionTechnique::kSlicingAdaptG,
        DistributionTechnique::kSlicingAdaptL}) {
    specs.push_back(SeriesSpec{to_string(metric_of(t)), [base, t](double f) {
                                 ExperimentConfig c = base;
                                 c.technique = t;
                                 c.metric_params.threshold_factor = f;
                                 return c;
                               }});
  }
  const SweepResult sweep =
      run_sweep("c_thres/c_mean", {0.0, 0.5, 0.75, 1.0, 1.1, 1.25, 2.0},
                specs, pool, cli.get_bool("verbose"));
  bench::report(
      "A2 — adaptive metrics vs execution-time threshold factor "
      "(m=3, OLR=0.8, ETD=25%; paper default 1.0)",
      sweep, cli);
  return 0;
}
