// Ablation A9: release jitter — quantifying the paper's claim I2.
//
// Under precedence-driven release, a task's release time floats between a
// best case (fast classes, co-location) and a worst case (slow classes,
// worst message routes); the spread is the release jitter that any
// fixed-point schedulability analysis must absorb [14]. Slicing pins every
// release to the window arrival — jitter zero by construction. This bench
// measures the per-task jitter the paper-default workloads would suffer
// *without* slicing, as a function of ETD (heterogeneity spread) and CCR
// (message weight).
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace dsslice;
  CliParser cli = bench::make_parser(
      "ablation_jitter",
      "A9: precedence-induced release jitter eliminated by slicing (I2)");
  if (!cli.parse(argc, argv)) {
    return 0;
  }
  bench::ObsScope obs_scope(cli);
  const auto graphs = static_cast<std::size_t>(cli.get_int("graphs"));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));

  std::printf("== A9 — release jitter without slicing "
              "(mean/max over %zu graphs; sliced jitter is 0 by I2) ==\n\n",
              graphs);
  Table table({"ETD", "CCR", "mean jitter", "max jitter",
               "mean jitter / c_mean"});
  for (const double etd : {0.0, 0.25, 0.5, 1.0}) {
    for (const double ccr : {0.1, 0.5}) {
      GeneratorConfig gen;
      gen.workload.etd = etd;
      gen.workload.ccr = ccr;
      gen.graph_count = graphs;
      gen.base_seed = seed;
      RunningStats mean_jitter;
      RunningStats max_jitter;
      for (std::size_t k = 0; k < graphs; ++k) {
        const Scenario sc = generate_scenario_at(gen, k);
        const auto bounds =
            precedence_release_jitter(sc.application, sc.platform);
        const JitterSummary s = summarize_jitter(bounds);
        mean_jitter.add(s.mean_jitter);
        max_jitter.add(s.max_jitter);
        // Sanity: slicing always yields zero jitter (claim I2).
        const auto est =
            estimate_wcets(sc.application, WcetEstimation::kAverage);
        const auto windows = run_slicing(
            sc.application, est, DeadlineMetric(MetricKind::kAdaptL),
            sc.platform.processor_count());
        const auto sliced = sliced_release_jitter(sc.application, windows);
        for (const JitterBound& b : sliced) {
          if (b.jitter() != 0.0) {
            std::fprintf(stderr, "I2 violated!\n");
            return 1;
          }
        }
      }
      table.add_row({format_fixed(etd, 2), format_fixed(ccr, 2),
                     format_fixed(mean_jitter.mean(), 1),
                     format_fixed(max_jitter.mean(), 1),
                     format_fixed(mean_jitter.mean() /
                                      gen.workload.mean_execution_time,
                                  2)});
    }
  }
  std::fputs(table.to_string().c_str(), stdout);
  std::printf(
      "\n(jitter grows with heterogeneity and message weight; a mean "
      "jitter comparable to c_mean means a task's release floats by a "
      "full execution time — slicing removes all of it)\n\n");
  return 0;
}
