// Ablation A6: secondary quality measures (§4.2).
//
// When E-T-E deadlines are loose enough for a near-100% success ratio, the
// paper's earlier work [12] compared metrics by maximum lateness (how far
// from infeasibility the schedule is) and minimum laxity (pre-scheduling
// slack). This bench reproduces that evaluation mode: loose deadlines
// (OLR = 1.5), abort_on_miss disabled so every task set is scheduled to
// completion, reporting mean max-lateness and mean min-laxity per metric.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace dsslice;
  CliParser cli = bench::make_parser(
      "ablation_quality",
      "A6: max-lateness / min-laxity under loose deadlines");
  cli.add_flag("olr", "1.5", "overall laxity ratio (loose by default)");
  if (!cli.parse(argc, argv)) {
    return 0;
  }
  bench::ObsScope obs_scope(cli);
  ThreadPool pool = bench::make_pool(cli);
  ExperimentConfig base = bench::base_config(cli);
  base.generator.platform.processor_count = 3;
  base.generator.workload.olr = cli.get_double("olr");
  base.scheduler.abort_on_miss = false;

  std::printf("== A6 — secondary quality measures at OLR=%.2f (m=3) ==\n\n",
              cli.get_double("olr"));
  Table table({"metric", "success", "mean max lateness", "mean min laxity",
               "mean makespan"});
  for (const DistributionTechnique t :
       {DistributionTechnique::kSlicingPure, DistributionTechnique::kSlicingNorm,
        DistributionTechnique::kSlicingAdaptG,
        DistributionTechnique::kSlicingAdaptL}) {
    ExperimentConfig c = base;
    c.technique = t;
    const ExperimentResult r = run_experiment(c, pool);
    table.add_row({to_string(metric_of(t)),
                   format_percent(r.success_ratio(), 1),
                   format_fixed(r.max_lateness.mean(), 2),
                   format_fixed(r.min_laxity.mean(), 2),
                   format_fixed(r.makespan.mean(), 1)});
  }
  std::fputs(table.to_string().c_str(), stdout);
  std::printf(
      "\n(lateness is negative for feasible schedules — closer to zero "
      "means less margin; the paper's [12] ranking used max lateness)\n\n");
  return 0;
}
