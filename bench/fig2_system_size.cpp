// Figure 2 reproduction: success ratio as a function of system size.
//
// Paper setup: m = 2..8 processors, OLR = 0.8, ETD = 25%, CCR = 0.1, 1024
// random task graphs per point, EDF list scheduling, WCET-AVG estimates.
// Series: PURE, NORM, ADAPT-G, ADAPT-L.
//
// Shape targets (paper §6.1): success monotone in m for every metric, all
// metrics converge to ~100% by m = 8, ADAPT-L dominates everywhere, and
// the gap between ADAPT-L and the weakest metric at m = 2 is roughly an
// order of magnitude.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace dsslice;
  CliParser cli = bench::make_parser(
      "fig2_system_size", "Fig. 2: success ratio vs system size (m = 2..8)");
  if (!cli.parse(argc, argv)) {
    return 0;
  }
  bench::ObsScope obs_scope(cli);
  ThreadPool pool = bench::make_pool(cli);
  const ExperimentConfig base = bench::base_config(cli);
  const SweepResult sweep = sweep_system_size(
      base, {2, 3, 4, 5, 6, 7, 8}, pool, cli.get_bool("verbose"));
  bench::report("Fig. 2 — success ratio vs system size "
                "(OLR=0.8, ETD=25%, CCR=0.1)",
                sweep, cli);
  return 0;
}
