// P8: before/after harness for the million-scenario sweep engine.
//
// Measures the two layers the sweep engine changed:
//  * scenario generation: the legacy per-scenario path (fresh vectors, a
//    structure graph rebuilt into a second message-annotated graph) vs the
//    ScenarioBatch path (recycled graph/task storage, single graph build);
//  * end to end: legacy generation + one-scenario-at-a-time evaluation vs
//    run_sweep's sharded, arena-backed streaming aggregation.
//
// The "legacy" code below is the pre-batching generator, carried verbatim
// so both variants compile into one binary under identical flags. The
// harness asserts the batched path reproduces the legacy scenarios
// bit-for-bit, that resume-after-interrupt and thread count leave the
// streamed aggregate bit-identical, and that the warm sweep path performs
// zero scratch-buffer growths; it then reports speedups, runs the large
// streaming sweep, and writes BENCH_sweep.json.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "dsslice/dsslice.hpp"

#include "bench_common.hpp"

namespace {

using namespace dsslice;

// ---------------------------------------------------------------------------
// Legacy implementation (pre-batching), kept verbatim for the "before" side.
// ---------------------------------------------------------------------------
namespace legacy {

/// Distributes `n` tasks over `depth` levels, at least one per level; the
/// surplus is spread uniformly at random. Returns per-level task counts.
std::vector<std::size_t> draw_level_sizes(std::size_t n, std::size_t depth,
                                          Xoshiro256& rng) {
  std::vector<std::size_t> sizes(depth, 1);
  for (std::size_t extra = 0; extra < n - depth; ++extra) {
    const auto level = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(depth) - 1));
    ++sizes[level];
  }
  return sizes;
}

/// Draws the layered precedence structure: each task beyond level 0 picks
/// 1–3 predecessors from the previous level (preferring predecessors that
/// still have spare out-degree); level-ℓ tasks without successors are then
/// wired forward so only the last level contains output tasks.
TaskGraph draw_structure(const WorkloadConfig& cfg, std::size_t n,
                         std::size_t depth, Xoshiro256& rng) {
  const auto sizes = draw_level_sizes(n, depth, rng);
  std::vector<std::vector<NodeId>> levels(depth);
  TaskGraph g(n);
  {
    NodeId next = 0;
    for (std::size_t l = 0; l < depth; ++l) {
      for (std::size_t k = 0; k < sizes[l]; ++k) {
        levels[l].push_back(next++);
      }
    }
  }

  // Tasks at earlier levels than l, for the any-earlier edge mode.
  std::vector<NodeId> earlier;
  for (std::size_t l = 1; l < depth; ++l) {
    const auto& prev = levels[l - 1];
    earlier.insert(earlier.end(), prev.begin(), prev.end());
    for (const NodeId v : levels[l]) {
      const auto want = static_cast<std::size_t>(rng.uniform_int(
          static_cast<std::int64_t>(cfg.min_degree),
          static_cast<std::int64_t>(cfg.max_degree)));

      std::vector<NodeId> with_capacity;
      for (const NodeId u : prev) {
        if (g.out_degree(u) < cfg.max_degree) {
          with_capacity.push_back(u);
        }
      }
      const std::vector<NodeId>& anchor_pool =
          with_capacity.empty() ? prev : with_capacity;
      const auto a = static_cast<std::size_t>(rng.uniform_int(
          0, static_cast<std::int64_t>(anchor_pool.size()) - 1));
      g.add_arc(anchor_pool[a], v);

      const std::vector<NodeId>& extra_pool =
          cfg.edge_locality == EdgeLocality::kAnyEarlierLevel ? earlier : prev;
      std::size_t extra = std::min(want, extra_pool.size()) - 1;
      for (std::size_t k = 0; k < extra; ++k) {
        const auto j = static_cast<std::size_t>(rng.uniform_int(
            0, static_cast<std::int64_t>(extra_pool.size()) - 1));
        const NodeId u = extra_pool[j];
        if (!g.has_arc(u, v)) {
          g.add_arc(u, v);
        }
      }
    }
    for (const NodeId u : prev) {
      if (g.out_degree(u) != 0) {
        continue;
      }
      std::vector<NodeId> candidates;
      for (const NodeId v : levels[l]) {
        if (g.in_degree(v) < cfg.max_degree && !g.has_arc(u, v)) {
          candidates.push_back(v);
        }
      }
      if (candidates.empty()) {
        for (const NodeId v : levels[l]) {
          if (!g.has_arc(u, v)) {
            candidates.push_back(v);
          }
        }
      }
      DSSLICE_CHECK(!candidates.empty(), "level with no attachable successor");
      const auto j = static_cast<std::size_t>(rng.uniform_int(
          0, static_cast<std::int64_t>(candidates.size()) - 1));
      g.add_arc(u, candidates[j]);
    }
  }
  return g;
}

/// Draws a message size whose expectation matches the configured CCR.
double draw_message_items(const WorkloadConfig& cfg, Xoshiro256& rng) {
  const double mean_items = cfg.ccr * cfg.mean_execution_time;
  if (mean_items <= 0.0) {
    return 0.0;
  }
  if (cfg.integral_messages) {
    const auto mean = static_cast<std::int64_t>(std::llround(mean_items));
    if (mean <= 1) {
      return 1.0;
    }
    return static_cast<double>(rng.uniform_int(1, 2 * mean - 1));
  }
  return rng.uniform(0.0, 2.0 * mean_items);
}

Application generate_application(const WorkloadConfig& config,
                                 const Platform& platform, Xoshiro256& rng,
                                 ClassModel class_model,
                                 double class_deviation) {
  const auto n = static_cast<std::size_t>(
      rng.uniform_int(static_cast<std::int64_t>(config.min_tasks),
                      static_cast<std::int64_t>(config.max_tasks)));
  const auto depth = static_cast<std::size_t>(
      rng.uniform_int(static_cast<std::int64_t>(config.min_depth),
                      static_cast<std::int64_t>(config.max_depth)));
  DSSLICE_REQUIRE(depth <= n, "graph depth exceeds task count");

  TaskGraph structure = draw_structure(config, n, depth, rng);
  // Arc message sizes per CCR.
  TaskGraph g(n);
  for (const Arc& a : structure.arcs()) {
    g.add_arc(a.from, a.to, draw_message_items(config, rng));
  }

  const std::size_t class_count = platform.class_count();
  std::vector<ProcessorClassId> populated;
  for (ProcessorClassId e = 0; e < class_count; ++e) {
    if (platform.processors_in_class(e) > 0) {
      populated.push_back(e);
    }
  }
  DSSLICE_CHECK(!populated.empty(), "platform without populated classes");

  const double c_mean = config.mean_execution_time;
  std::vector<Task> tasks(n);
  for (NodeId i = 0; i < n; ++i) {
    Task& t = tasks[i];
    t.name = "t" + std::to_string(i);
    const double base =
        config.etd == 0.0
            ? c_mean
            : rng.uniform(c_mean * (1.0 - config.etd),
                          c_mean * (1.0 + config.etd));
    t.wcet_by_class.resize(class_count);
    for (ProcessorClassId e = 0; e < class_count; ++e) {
      const double scale =
          class_model == ClassModel::kUniformFactors
              ? platform.processor_class(e).speed_factor
              : rng.uniform(1.0 - class_deviation, 1.0 + class_deviation);
      t.wcet_by_class[e] = std::max(1.0, std::round(base * scale));
    }
    const std::vector<double> drawn = t.wcet_by_class;
    for (ProcessorClassId e = 0; e < class_count; ++e) {
      if (rng.bernoulli(config.ineligible_probability)) {
        t.wcet_by_class[e] = kIneligibleWcet;
      }
    }
    const bool any_populated_eligible = std::any_of(
        populated.begin(), populated.end(),
        [&](ProcessorClassId e) { return t.eligible(e); });
    if (!any_populated_eligible) {
      const auto j = static_cast<std::size_t>(rng.uniform_int(
          0, static_cast<std::int64_t>(populated.size()) - 1));
      const ProcessorClassId e = populated[j];
      t.wcet_by_class[e] = drawn[e];
    }
  }

  Application app(std::move(g), std::move(tasks));

  double avg_workload = 0.0;
  for (NodeId i = 0; i < n; ++i) {
    const Task& t = app.task(i);
    double sum = 0.0;
    std::size_t k = 0;
    for (ProcessorClassId e = 0; e < class_count; ++e) {
      if (t.eligible(e)) {
        sum += t.wcet(e);
        ++k;
      }
    }
    avg_workload += sum / static_cast<double>(k);
  }
  for (const NodeId out : app.graph().output_nodes()) {
    const double spread =
        config.olr_spread == 0.0
            ? 1.0
            : rng.uniform(1.0 - config.olr_spread, 1.0 + config.olr_spread);
    app.set_ete_deadline(out,
                         std::round(config.olr * avg_workload * spread));
  }
  for (const NodeId in : app.graph().input_nodes()) {
    app.set_input_arrival(in, kTimeZero);
  }

  if (config.max_optional_fraction > 0.0) {
    for (NodeId i = 0; i < n; ++i) {
      app.mutable_task(i).optional_fraction = rng.uniform(
          config.min_optional_fraction, config.max_optional_fraction);
    }
  }
  return app;
}

Scenario generate_scenario(const GeneratorConfig& config, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  Platform platform = generate_platform(config.platform, rng);
  Application app =
      legacy::generate_application(config.workload, platform, rng,
                                   config.platform.class_model,
                                   config.platform.class_deviation);
  return Scenario{std::move(platform), std::move(app)};
}

}  // namespace legacy

// ---------------------------------------------------------------------------
// Measurement.
// ---------------------------------------------------------------------------

using Clock = std::chrono::steady_clock;

constexpr std::size_t kGenChunk = 64;

struct Report {
  bool generation_identical = true;
  bool resume_identical = false;
  bool thread_identical = false;
  bool batch_identical = false;
  std::uint64_t steady_grow_events = ~std::uint64_t{0};
  std::size_t timing_scenarios = 0;
  double gen_legacy_us = 0.0;
  double gen_batched_us = 0.0;
  double e2e_legacy_us = 0.0;
  double e2e_sweep_us = 0.0;
  double scalar_sweep_us = 0.0;  // sweep with the batch kernel disabled
  // The large streaming run.
  std::size_t sweep_scenarios = 0;
  std::size_t sweep_shards = 0;
  std::size_t checkpoints_written = 0;
  double sweep_wall_seconds = 0.0;
  bool sweep_complete = false;

  double gen_speedup() const {
    return gen_batched_us > 0.0 ? gen_legacy_us / gen_batched_us : 0.0;
  }
  double e2e_speedup() const {
    return e2e_sweep_us > 0.0 ? e2e_legacy_us / e2e_sweep_us : 0.0;
  }
  double batch_kernel_speedup() const {
    return e2e_sweep_us > 0.0 ? scalar_sweep_us / e2e_sweep_us : 0.0;
  }
  double sweep_per_sec() const {
    return sweep_wall_seconds > 0.0
               ? static_cast<double>(sweep_scenarios) / sweep_wall_seconds
               : 0.0;
  }
};

std::string fmt_num(double v) {
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%.6g", v);
  return buffer;
}

std::string to_json(const Report& r) {
  std::string out = "{\n";
  out += "  \"benchmark\": \"sweep-engine\",\n";
  out += "  \"machine\": " + bench::machine_json(1) + ",\n";
  out += "  \"baseline\": \"pre-batching generation + one-scenario-at-a-time "
         "evaluation, single thread\",\n";
  out += "  \"timing_scenarios\": " + std::to_string(r.timing_scenarios) +
         ",\n";
  out += "  \"generation\": {\"legacy_us\": " + fmt_num(r.gen_legacy_us) +
         ", \"batched_us\": " + fmt_num(r.gen_batched_us) +
         ", \"speedup\": " + fmt_num(r.gen_speedup()) + "},\n";
  out += "  \"end_to_end\": {\"legacy_us\": " + fmt_num(r.e2e_legacy_us) +
         ", \"sweep_us\": " + fmt_num(r.e2e_sweep_us) +
         ", \"speedup\": " + fmt_num(r.e2e_speedup()) + "},\n";
  out += "  \"batch_kernel\": {\"scalar_us\": " + fmt_num(r.scalar_sweep_us) +
         ", \"kernel_us\": " + fmt_num(r.e2e_sweep_us) +
         ", \"speedup\": " + fmt_num(r.batch_kernel_speedup()) + "},\n";
  out += std::string("  \"gates\": {\"generation_identical\": ") +
         (r.generation_identical ? "true" : "false") +
         ", \"resume_identical\": " + (r.resume_identical ? "true" : "false") +
         ", \"thread_identical\": " + (r.thread_identical ? "true" : "false") +
         ", \"batch_identical\": " + (r.batch_identical ? "true" : "false") +
         ", \"steady_grow_events\": " +
         std::to_string(r.steady_grow_events) +
         ", \"generation_speedup_floor\": 2.0},\n";
  out += "  \"sweep_run\": {\"scenarios\": " +
         std::to_string(r.sweep_scenarios) +
         ", \"shards\": " + std::to_string(r.sweep_shards) +
         ", \"checkpoints_written\": " +
         std::to_string(r.checkpoints_written) +
         ", \"wall_seconds\": " + fmt_num(r.sweep_wall_seconds) +
         ", \"scenarios_per_sec\": " + fmt_num(r.sweep_per_sec()) +
         std::string(", \"complete\": ") +
         (r.sweep_complete ? "true" : "false") + "}\n";
  out += "}\n";
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli("perf_sweep",
                "Before/after benchmark of the batched sweep engine: legacy "
                "per-scenario generation vs ScenarioBatch, one-at-a-time "
                "evaluation vs sharded streaming aggregation.");
  cli.add_flag("json", "", "write results as JSON to this path");
  cli.add_flag("scenarios", "1000000", "scenario count of the streaming run");
  cli.add_flag("timing-scenarios", "20000",
               "scenario count of each timed comparison pass");
  cli.add_flag("checkpoint", "", "checkpoint path of the streaming run "
               "(default: <json>.ckpt or a temp file)");
  cli.add_bool_flag("smoke", "tiny counts (CI sanity run)");
  dsslice::obs::ObsCli::register_flags(cli);
  if (!cli.parse(argc, argv)) {
    return 1;
  }
  dsslice::obs::ObsCli obs_session(cli);
  const bool smoke = cli.get_bool("smoke");
  Report report;
  report.timing_scenarios = smoke
      ? 2000
      : static_cast<std::size_t>(cli.get_int("timing-scenarios"));
  const auto sweep_scenarios = smoke
      ? std::size_t{4096}
      : static_cast<std::size_t>(cli.get_int("scenarios"));

  ExperimentConfig config;  // paper defaults: 40-60 tasks, m=3, ADAPT-L
  const GeneratorConfig& gen = config.generator;
  std::printf("perf_sweep: timing over %zu scenarios, streaming run %zu%s\n\n",
              report.timing_scenarios, sweep_scenarios, smoke ? " (smoke)" : "");

  // Gate 1: the batched path must reproduce the legacy scenarios bit for bit.
  {
    ScenarioBatch batch;
    batch.generate(gen, 0, 32);
    for (std::size_t k = 0; k < 32; ++k) {
      const Scenario single =
          legacy::generate_scenario(gen, derive_seed(gen.base_seed, k));
      if (serialize_scenario(single) != serialize_scenario(batch[k])) {
        report.generation_identical = false;
      }
    }
  }
  std::printf("batched generation bit-identical to legacy: %s\n",
              report.generation_identical ? "OK" : "FAIL");

  // Generation: legacy one-at-a-time vs batched, amortized per scenario.
  {
    const std::size_t n = report.timing_scenarios;
    const auto t0 = Clock::now();
    for (std::size_t i = 0; i < n; ++i) {
      volatile std::size_t sink =
          legacy::generate_scenario(gen, derive_seed(gen.base_seed, i))
              .application.task_count();
      (void)sink;
    }
    const auto t1 = Clock::now();
    ScenarioBatch batch;
    for (std::size_t i = 0; i < n; i += kGenChunk) {
      batch.generate(gen, i, std::min(kGenChunk, n - i));
    }
    const auto t2 = Clock::now();
    report.gen_legacy_us =
        std::chrono::duration<double, std::micro>(t1 - t0).count() /
        static_cast<double>(n);
    report.gen_batched_us =
        std::chrono::duration<double, std::micro>(t2 - t1).count() /
        static_cast<double>(n);
  }
  std::printf("generation  %7.1f us -> %7.1f us per scenario (%.2fx)\n",
              report.gen_legacy_us, report.gen_batched_us,
              report.gen_speedup());

  // End to end: legacy generation + one-scenario-at-a-time evaluation vs the
  // sweep engine on a single-thread pool (same parallelism on both sides).
  {
    const std::size_t n = report.timing_scenarios;
    ThreadPool pool(1);
    {  // warm the engine's arena so both sides time steady-state work
      SweepOptions warm;
      warm.scenario_count = std::min<std::size_t>(n, 512);
      (void)run_sweep(config, warm, pool);
    }
    ScenarioScratch scratch;
    const auto t0 = Clock::now();
    for (std::size_t i = 0; i < n; ++i) {
      const Scenario sc =
          legacy::generate_scenario(gen, derive_seed(gen.base_seed, i));
      volatile bool sink = evaluate_generated(config, sc, &scratch).scheduled;
      (void)sink;
    }
    const auto t1 = Clock::now();
    SweepOptions opt;
    opt.scenario_count = n;
    opt.shard_size = 512;
    const SweepReport kernel_run = run_sweep(config, opt, pool);
    const auto t2 = Clock::now();
    // The same sweep with the batch kernel switched off: the on/off pair
    // must fold to bit-identical aggregates, and the timing difference is
    // the kernel's contribution to end-to-end throughput.
    SweepOptions scalar_opt = opt;
    scalar_opt.use_batch_kernel = false;
    const SweepReport scalar_run = run_sweep(config, scalar_opt, pool);
    const auto t3 = Clock::now();
    report.batch_identical =
        serialize_sweep_aggregate(kernel_run.aggregate) ==
        serialize_sweep_aggregate(scalar_run.aggregate);
    report.e2e_legacy_us =
        std::chrono::duration<double, std::micro>(t1 - t0).count() /
        static_cast<double>(n);
    report.e2e_sweep_us =
        std::chrono::duration<double, std::micro>(t2 - t1).count() /
        static_cast<double>(n);
    report.scalar_sweep_us =
        std::chrono::duration<double, std::micro>(t3 - t2).count() /
        static_cast<double>(n);

    // Gate 2: zero warm-path scratch growth once the arena has settled.
    // rebuild_swap rotates batch storage against scenario shapes between
    // runs, so settle until a full run stays flat (bounded attempts)
    // before the measured run — growth is monotone, so a flat run at this
    // scenario count means the rotation has reached its high water.
    std::uint64_t before = sweep_arena_grow_events();
    for (int pass = 0; pass < 16; ++pass) {
      (void)run_sweep(config, opt, pool);
      const std::uint64_t now = sweep_arena_grow_events();
      if (now == before) {
        break;
      }
      before = now;
    }
    (void)run_sweep(config, opt, pool);
    report.steady_grow_events = sweep_arena_grow_events() - before;
  }
  std::printf("end to end  %7.1f us -> %7.1f us per scenario (%.2fx)\n",
              report.e2e_legacy_us, report.e2e_sweep_us, report.e2e_speedup());
  std::printf("batch kernel off -> on  %7.1f us -> %7.1f us (%.2fx), "
              "aggregates %s\n",
              report.scalar_sweep_us, report.e2e_sweep_us,
              report.batch_kernel_speedup(),
              report.batch_identical ? "identical" : "DIVERGED");
  std::printf("steady-state scratch growths: %llu\n",
              static_cast<unsigned long long>(report.steady_grow_events));

  // Gate 3: interrupt + resume and thread count leave the aggregate
  // bit-identical to an uninterrupted single-thread run.
  {
    const std::string ckpt =
        bench::temp_path("perf_sweep_resume.ckpt");
    std::remove(ckpt.c_str());
    SweepOptions opt;
    opt.scenario_count = smoke ? 2048 : 8192;
    opt.shard_size = 256;
    ThreadPool pool1(1);
    const SweepReport uninterrupted = run_sweep(config, opt, pool1);

    SweepOptions partial = opt;
    partial.checkpoint_path = ckpt;
    partial.checkpoint_every = 2;
    partial.max_shards = 3;
    (void)run_sweep(config, partial, pool1);  // interrupted after 3 shards
    SweepOptions rest = opt;
    rest.checkpoint_path = ckpt;
    rest.checkpoint_every = 2;
    rest.resume = true;
    const SweepReport resumed = run_sweep(config, rest, pool1);
    report.resume_identical =
        resumed.complete &&
        serialize_sweep_aggregate(resumed.aggregate) ==
            serialize_sweep_aggregate(uninterrupted.aggregate);

    ThreadPool pool4(4);
    const SweepReport threaded = run_sweep(config, opt, pool4);
    report.thread_identical =
        serialize_sweep_aggregate(threaded.aggregate) ==
        serialize_sweep_aggregate(uninterrupted.aggregate);
    std::remove(ckpt.c_str());
  }
  std::printf("resume-after-interrupt bit-identical: %s\n",
              report.resume_identical ? "OK" : "FAIL");
  std::printf("1-thread vs 4-thread bit-identical:   %s\n",
              report.thread_identical ? "OK" : "FAIL");

  // The large streaming run (the committed BENCH_sweep.json row).
  {
    std::string ckpt = cli.get_string("checkpoint");
    if (ckpt.empty()) {
      ckpt = bench::temp_path("perf_sweep_run.ckpt");
    }
    std::remove(ckpt.c_str());
    SweepOptions opt;
    opt.scenario_count = sweep_scenarios;
    opt.shard_size = 1024;
    opt.checkpoint_path = ckpt;
    opt.checkpoint_every = 64;
    const SweepReport run = run_sweep(config, opt);
    report.sweep_scenarios = run.scenarios();
    report.sweep_shards = run.shard_count;
    report.checkpoints_written = run.checkpoints_written;
    report.sweep_wall_seconds = run.wall_seconds;
    report.sweep_complete = run.complete;
    std::printf("\nstreaming run: %zu scenarios in %zu shards, %.1f s "
                "(%.0f scenarios/sec), %zu checkpoints, success %.4f\n",
                report.sweep_scenarios, report.sweep_shards,
                report.sweep_wall_seconds, report.sweep_per_sec(),
                report.checkpoints_written, run.aggregate.success_ratio());
    std::remove(ckpt.c_str());
  }

  bool ok = report.generation_identical && report.resume_identical &&
            report.thread_identical && report.batch_identical &&
            report.steady_grow_events == 0 && report.sweep_complete;
  if (report.gen_speedup() < 2.0) {
    std::fprintf(stderr,
                 "FAIL: batched generation %.2fx below the 2x floor\n",
                 report.gen_speedup());
    ok = false;
  }
  if (!ok) {
    std::fprintf(stderr, "FAIL: sweep gates violated\n");
  }

  const std::string json_path = cli.get_string("json");
  if (!json_path.empty()) {
    if (write_text_file(json_path, to_json(report))) {
      std::printf("JSON written to %s\n", json_path.c_str());
    } else {
      std::fprintf(stderr, "warning: could not write %s\n", json_path.c_str());
      return 1;
    }
  }
  obs_session.finish();
  return ok ? 0 : 1;
}
