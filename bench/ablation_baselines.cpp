// Ablation A4: slicing metrics vs the related-work deadline-distribution
// baselines (§2): Kao & Garcia-Molina UD/ED/EQS/EQF and Bettati-Liu even
// per-level distribution, all under the same scheduler and workloads.
//
// The Kao baselines produce overlapping windows (they were designed for
// soft real-time systems with known assignments); Bettati-Liu slices evenly
// but ignores execution times. Sweeping the OLR shows where each family
// breaks down relative to the adaptive slicing metrics.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace dsslice;
  CliParser cli = bench::make_parser(
      "ablation_baselines",
      "A4: slicing metrics vs related-work baselines across OLR");
  if (!cli.parse(argc, argv)) {
    return 0;
  }
  bench::ObsScope obs_scope(cli);
  ThreadPool pool = bench::make_pool(cli);
  ExperimentConfig base = bench::base_config(cli);
  base.generator.platform.processor_count = 3;

  std::vector<SeriesSpec> specs;
  for (const DistributionTechnique t : all_distribution_techniques()) {
    specs.push_back(SeriesSpec{to_string(t), [base, t](double olr) {
                                 ExperimentConfig c = base;
                                 c.technique = t;
                                 c.generator.workload.olr = olr;
                                 return c;
                               }});
  }
  const SweepResult sweep = run_sweep("OLR", {0.6, 0.8, 1.0, 1.2}, specs,
                                      pool, cli.get_bool("verbose"));
  bench::report("A4 — all distribution techniques vs OLR (m=3, ETD=25%)",
                sweep, cli);
  return 0;
}
