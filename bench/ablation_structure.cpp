// Ablation A7: workload-structure interpretations the paper leaves open.
//
// Two generator dimensions are ambiguous in §5.2 and resolved in DESIGN.md:
//  * edge locality — whether precedence arcs connect only adjacent levels
//    (default) or may skip levels. Skip arcs create paths of wildly
//    different lengths whose sliced windows become structurally infeasible
//    independent of the system size: the success ratio plateaus instead of
//    converging to 100% as m grows, contradicting Fig. 2. This bench shows
//    that plateau explicitly.
//  * per-class WCET model — shared per-class speed factors (uniform
//    machines, default) vs independent per-(task, class) deviations
//    (unrelated machines).
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace dsslice;
  CliParser cli = bench::make_parser(
      "ablation_structure",
      "A7: generator structure interpretations (edge locality, class model)");
  if (!cli.parse(argc, argv)) {
    return 0;
  }
  bench::ObsScope obs_scope(cli);
  ThreadPool pool = bench::make_pool(cli);
  const ExperimentConfig base = bench::base_config(cli);

  {
    std::vector<SeriesSpec> specs;
    for (const EdgeLocality mode :
         {EdgeLocality::kAdjacentLevel, EdgeLocality::kAnyEarlierLevel}) {
      for (const DistributionTechnique t :
           {DistributionTechnique::kSlicingNorm,
            DistributionTechnique::kSlicingAdaptL}) {
        specs.push_back(SeriesSpec{
            to_string(metric_of(t)) + "/" + to_string(mode),
            [base, mode, t](double m) {
              ExperimentConfig c = base;
              c.technique = t;
              c.generator.workload.edge_locality = mode;
              c.generator.platform.processor_count =
                  static_cast<std::size_t>(m);
              return c;
            }});
      }
    }
    const SweepResult sweep = run_sweep("m", {2, 3, 4, 6, 8}, specs, pool,
                                        cli.get_bool("verbose"));
    bench::report(
        "A7a — edge locality: skip-level arcs cause an m-independent "
        "infeasibility plateau",
        sweep, cli);
  }
  {
    std::vector<SeriesSpec> specs;
    for (const ClassModel model :
         {ClassModel::kUniformFactors, ClassModel::kUnrelated}) {
      specs.push_back(SeriesSpec{
          "ADAPT-L/" + to_string(model), [base, model](double olr) {
            ExperimentConfig c = base;
            c.technique = DistributionTechnique::kSlicingAdaptL;
            c.generator.platform.class_model = model;
            c.generator.platform.processor_count = 3;
            c.generator.workload.olr = olr;
            return c;
          }});
    }
    const SweepResult sweep = run_sweep("OLR", {0.5, 0.6, 0.7, 0.8}, specs,
                                        pool, cli.get_bool("verbose"));
    bench::report(
        "A7b — per-class WCET model: uniform speed factors vs unrelated "
        "machines (m=3)",
        sweep, cli);
  }
  return 0;
}
