// P1: before/after performance harness for the shared graph-analysis cache.
//
// Measures, per graph size, three layers of the slicing hot path:
//  * structure construction: the legacy per-call TransitiveClosure build
//    (with its O(n²) ancestor-count loop) vs one GraphAnalysis build;
//  * DeadlineMetric::weights() per metric: the legacy implementation
//    (closure + topological sort per call, materialized parallel sets) vs
//    the cached weights_into path;
//  * end-to-end run_slicing: the legacy loop (per-run topological sort,
//    per-pass allocations, per-call weights) vs the cached, workspace-backed
//    implementation.
//
// The "legacy" code below is the pre-cache implementation, carried verbatim
// so both variants compile into one binary under identical flags. The
// equivalence suite (tests/test_slicing_equivalence.cpp) asserts the two
// produce bit-identical assignments; this harness asserts the cached timing
// loops build zero GraphAnalysis instances, then reports speedups and
// writes BENCH_slicing.json. Every size row averages over kRowSeeds
// scenarios (same idiom as perf_scheduling) so one outlier DAG cannot skew
// the row.
#include <algorithm>
#include <bit>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <limits>
#include <string>
#include <vector>

#include "dsslice/batch/slice_kernel.hpp"
#include "dsslice/dsslice.hpp"

#include "bench_common.hpp"

namespace {

using namespace dsslice;

// ---------------------------------------------------------------------------
// Legacy implementations (pre-cache), kept verbatim for the "before" side.
// ---------------------------------------------------------------------------
namespace legacy {

class Closure {
 public:
  explicit Closure(const TaskGraph& g)
      : n_(g.node_count()),
        reach_(n_ * ((n_ + 63) / 64), 0),
        descendants_(n_, 0),
        ancestors_(n_, 0) {
    const auto order = topological_order(g);
    DSSLICE_REQUIRE(order.has_value(),
                    "transitive closure requires an acyclic graph");
    const std::size_t w = words();
    for (auto it = order->rbegin(); it != order->rend(); ++it) {
      const NodeId u = *it;
      std::uint64_t* ru = row(u);
      for (const NodeId s : g.successors(u)) {
        const std::uint64_t* rs = row(s);
        for (std::size_t k = 0; k < w; ++k) {
          ru[k] |= rs[k];
        }
        ru[s / 64] |= (std::uint64_t{1} << (s % 64));
      }
    }
    for (NodeId u = 0; u < n_; ++u) {
      const std::uint64_t* ru = row(u);
      std::size_t count = 0;
      for (std::size_t k = 0; k < w; ++k) {
        count += static_cast<std::size_t>(std::popcount(ru[k]));
      }
      descendants_[u] = count;
    }
    // The quadratic ancestor-count loop this PR replaced with co-reach
    // popcounts.
    for (NodeId u = 0; u < n_; ++u) {
      for (NodeId v = 0; v < n_; ++v) {
        if (reaches(u, v)) {
          ++ancestors_[v];
        }
      }
    }
  }

  bool reaches(NodeId u, NodeId v) const {
    DSSLICE_REQUIRE(u < n_ && v < n_, "node id out of range");
    return (row(u)[v / 64] >> (v % 64)) & 1;
  }
  bool ordered(NodeId u, NodeId v) const {
    return reaches(u, v) || reaches(v, u);
  }
  std::size_t parallel_set_size(NodeId i) const {
    return n_ - 1 - descendants_[i] - ancestors_[i];
  }
  std::vector<NodeId> parallel_set(NodeId i) const {
    std::vector<NodeId> out;
    out.reserve(parallel_set_size(i));
    for (NodeId v = 0; v < n_; ++v) {
      if (v != i && !ordered(i, v)) {
        out.push_back(v);
      }
    }
    return out;
  }

 private:
  std::size_t words() const { return (n_ + 63) / 64; }
  const std::uint64_t* row(NodeId u) const { return &reach_[u * words()]; }
  std::uint64_t* row(NodeId u) { return &reach_[u * words()]; }

  std::size_t n_;
  std::vector<std::uint64_t> reach_;
  std::vector<std::size_t> descendants_;
  std::vector<std::size_t> ancestors_;
};

std::vector<double> weights(const DeadlineMetric& metric,
                            const Application& app,
                            std::span<const double> est_wcet,
                            std::size_t processor_count) {
  const MetricParams& params = metric.params();
  std::vector<double> w(est_wcet.begin(), est_wcet.end());
  if (!metric.is_adaptive()) {
    return w;
  }
  const double threshold = metric.effective_threshold(est_wcet);
  const double m = static_cast<double>(processor_count);
  if (metric.kind() == MetricKind::kAdaptG) {
    const double xi = average_parallelism(app.graph(), est_wcet);
    const double surplus = 1.0 + params.k_global * xi / m;
    for (std::size_t i = 0; i < w.size(); ++i) {
      if (est_wcet[i] >= threshold) {
        w[i] = est_wcet[i] * surplus;
      }
    }
    return w;
  }
  const Closure closure(app.graph());
  for (NodeId i = 0; i < w.size(); ++i) {
    if (est_wcet[i] < threshold) {
      continue;
    }
    const double psi = static_cast<double>(closure.parallel_set_size(i));
    w[i] = est_wcet[i] * (1.0 + params.k_local * psi / m);
  }
  return w;
}

constexpr NodeId kNoPrev = std::numeric_limits<NodeId>::max();

struct Entry {
  Time start = kTimeZero;
  double sum_weight = 0.0;
  std::uint32_t count = 0;
  NodeId prev = kNoPrev;
  double score = std::numeric_limits<double>::infinity();
  bool valid = false;
};

bool better(const Entry& a, const Entry& b) {
  if (!b.valid) {
    return a.valid;
  }
  if (!a.valid) {
    return false;
  }
  if (a.score != b.score) {
    return a.score < b.score;
  }
  if (a.sum_weight != b.sum_weight) {
    return a.sum_weight > b.sum_weight;
  }
  return a.prev < b.prev;
}

std::optional<CriticalPath> find_path(const TaskGraph& g,
                                      std::span<const NodeId> topo_order,
                                      const AnchorState& anchors,
                                      std::span<const double> weights,
                                      const DeadlineMetric& metric) {
  const std::size_t n = g.node_count();
  if (anchors.all_assigned()) {
    return std::nullopt;
  }
  std::vector<Time> latest(n, kTimeInfinity);
  for (auto it = topo_order.rbegin(); it != topo_order.rend(); ++it) {
    const NodeId v = *it;
    if (anchors.assigned(v)) {
      continue;
    }
    Time l = anchors.deadline_anchor(v);
    for (const NodeId w : g.successors(v)) {
      if (!anchors.assigned(w)) {
        l = std::min(l, latest[w] - weights[w]);
      }
    }
    latest[v] = l;
  }
  std::vector<Entry> dp(n);
  NodeId best_sink = kNoPrev;
  Entry best_sink_entry;
  for (const NodeId v : topo_order) {
    if (anchors.assigned(v)) {
      continue;
    }
    Entry best;
    const auto consider = [&](Time start, double sum_weight,
                              std::uint32_t count, NodeId prev) {
      Entry cand;
      cand.start = start;
      cand.sum_weight = sum_weight;
      cand.count = count;
      cand.prev = prev;
      cand.score = metric.path_value(latest[v] - start, sum_weight, count);
      cand.valid = true;
      if (better(cand, best)) {
        best = cand;
      }
    };
    if (anchors.is_pi_source(g, v)) {
      consider(anchors.arrival_anchor(v), weights[v], 1, kNoPrev);
    }
    for (const NodeId u : g.predecessors(v)) {
      if (!anchors.assigned(u)) {
        consider(dp[u].start, dp[u].sum_weight + weights[v], dp[u].count + 1,
                 u);
      }
    }
    dp[v] = best;
    if (anchors.is_pi_sink(g, v)) {
      if (best_sink == kNoPrev || dp[v].score < best_sink_entry.score ||
          (dp[v].score == best_sink_entry.score && v < best_sink)) {
        best_sink = v;
        best_sink_entry = dp[v];
      }
    }
  }
  CriticalPath path;
  path.window_start = best_sink_entry.start;
  path.window_end = anchors.deadline_anchor(best_sink);
  path.metric_value = best_sink_entry.score;
  for (NodeId v = best_sink; v != kNoPrev; v = dp[v].prev) {
    path.nodes.push_back(v);
  }
  std::reverse(path.nodes.begin(), path.nodes.end());
  return path;
}

DeadlineAssignment run_slicing(const Application& app,
                               std::span<const double> est_wcet,
                               const DeadlineMetric& metric,
                               std::size_t processor_count) {
  const TaskGraph& g = app.graph();
  const std::size_t n = g.node_count();
  const auto topo = topological_order(g);
  DSSLICE_REQUIRE(topo.has_value(), "slicing requires an acyclic task graph");

  const std::vector<double> w = weights(metric, app, est_wcet,
                                        processor_count);
  AnchorState anchors(app);
  DeadlineAssignment assignment;
  assignment.windows.resize(n);
  assignment.pass_of.assign(n, -1);
  int pass = 0;
  while (!anchors.all_assigned()) {
    const auto path = find_path(g, *topo, anchors, w, metric);
    DSSLICE_CHECK(path.has_value(), "no critical path found");
    std::vector<double> path_weights;
    std::vector<double> path_est;
    path_weights.reserve(path->nodes.size());
    path_est.reserve(path->nodes.size());
    for (const NodeId v : path->nodes) {
      path_weights.push_back(w[v]);
      path_est.push_back(est_wcet[v]);
    }
    const std::vector<double> d = metric.adaptive_slices(
        path->window_length(), path_weights, path_est);
    Time boundary = path->window_start;
    for (std::size_t k = 0; k < path->nodes.size(); ++k) {
      const NodeId v = path->nodes[k];
      const Time lo = boundary;
      boundary += d[k];
      const Time hi =
          (k + 1 == path->nodes.size()) ? path->window_end : boundary;
      Window win{lo, hi};
      if (anchors.has_arrival_anchor(v)) {
        win.arrival = std::max(win.arrival, anchors.arrival_anchor(v));
      }
      if (anchors.has_deadline_anchor(v)) {
        win.deadline = std::min(win.deadline, anchors.deadline_anchor(v));
      }
      anchors.mark_assigned(v, win);
      assignment.windows[v] = win;
      assignment.pass_of[v] = pass;
    }
    for (const NodeId v : path->nodes) {
      const Window& win = anchors.window(v);
      for (const NodeId u : g.predecessors(v)) {
        if (!anchors.assigned(u)) {
          anchors.tighten_deadline(u, win.arrival);
        }
      }
      for (const NodeId s : g.successors(v)) {
        if (!anchors.assigned(s)) {
          anchors.tighten_arrival(s, win.deadline);
        }
      }
    }
    ++pass;
  }
  return assignment;
}

}  // namespace legacy

// ---------------------------------------------------------------------------
// Measurement scaffolding.
// ---------------------------------------------------------------------------

using Clock = std::chrono::steady_clock;

/// Runs `body` repeatedly until at least `min_seconds` of wall time has
/// accumulated (and at least `min_reps` repetitions), returning the mean
/// seconds per call.
template <typename F>
double time_per_call(double min_seconds, std::size_t min_reps, F&& body) {
  std::size_t reps = 0;
  double elapsed = 0.0;
  std::size_t batch = 1;
  while (elapsed < min_seconds || reps < min_reps) {
    const auto t0 = Clock::now();
    for (std::size_t i = 0; i < batch; ++i) {
      body();
    }
    elapsed += std::chrono::duration<double>(Clock::now() - t0).count();
    reps += batch;
    batch = std::min<std::size_t>(batch * 2, 4096);
  }
  return elapsed / static_cast<double>(reps);
}

GeneratorConfig sized_config(std::size_t tasks, std::size_t processors) {
  GeneratorConfig cfg;
  cfg.platform.processor_count = processors;
  cfg.workload.min_tasks = tasks;
  cfg.workload.max_tasks = tasks;
  // Depth scales as sqrt(n) so BOTH depth and level width grow with n.
  // The old tasks/5 rule made depth grow linearly, so width stayed at ~5
  // tasks for every size: a 1024-task "graph" was a 204-level chain with
  // less ready-set pressure than the 512-task one, and measured time per
  // scheduled task *fell* as n grew (docs/PERFORMANCE.md).
  const auto depth = static_cast<std::size_t>(
      std::lround(std::sqrt(static_cast<double>(tasks))));
  cfg.workload.min_depth = std::max<std::size_t>(2, depth);
  cfg.workload.max_depth = std::max<std::size_t>(2, depth);
  cfg.base_seed = 0xBE7C;
  return cfg;
}

/// Scenarios averaged per row (mirrors perf_scheduling's kRowSeeds): one
/// lucky or unlucky DAG must not skew a size's numbers, so every timing
/// loop iterates all seeds per call and divides by the seed count.
constexpr std::size_t kRowSeeds = 5;

struct MetricRow {
  std::string name;
  double legacy_us = 0.0;
  double cached_us = 0.0;
  double speedup() const { return cached_us > 0.0 ? legacy_us / cached_us : 0.0; }
};

struct SizeReport {
  std::size_t tasks = 0;
  double legacy_closure_build_us = 0.0;
  double analysis_build_us = 0.0;
  std::vector<MetricRow> weights;
  double legacy_slicing_per_sec = 0.0;   // ADAPT-L end to end
  double cached_slicing_per_sec = 0.0;   // warm cache + workspace
  double batch_slicing_per_sec = 0.0;    // SoA batch kernel (lanes64)
  std::uint64_t batch_steady_grow_events = 0;   // must be 0
  std::uint64_t cached_loop_constructions = 0;  // must be 0
};

std::string json_escape_number(double v) {
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%.6g", v);
  return buffer;
}

std::string to_json(const std::vector<SizeReport>& reports,
                    std::size_t processors) {
  std::string out = "{\n";
  out += "  \"benchmark\": \"slicing-hot-path\",\n";
  out += "  \"processors\": " + std::to_string(processors) + ",\n";
  out += "  \"seeds_per_row\": " + std::to_string(kRowSeeds) + ",\n";
  out += "  \"machine\": " + bench::machine_json(1) + ",\n";
  out += "  \"metric_unit\": {\"build\": \"us\", \"weights\": \"us/call\", "
         "\"slicing\": \"scenarios/sec\"},\n";
  out += "  \"sizes\": [\n";
  for (std::size_t r = 0; r < reports.size(); ++r) {
    const SizeReport& s = reports[r];
    out += "    {\n";
    out += "      \"tasks\": " + std::to_string(s.tasks) + ",\n";
    out += "      \"legacy_closure_build_us\": " +
           json_escape_number(s.legacy_closure_build_us) + ",\n";
    out += "      \"analysis_build_us\": " +
           json_escape_number(s.analysis_build_us) + ",\n";
    out += "      \"weights\": [\n";
    for (std::size_t k = 0; k < s.weights.size(); ++k) {
      const MetricRow& m = s.weights[k];
      out += "        {\"metric\": \"" + m.name + "\", \"legacy_us\": " +
             json_escape_number(m.legacy_us) + ", \"cached_us\": " +
             json_escape_number(m.cached_us) + ", \"speedup\": " +
             json_escape_number(m.speedup()) + "}";
      out += (k + 1 < s.weights.size()) ? ",\n" : "\n";
    }
    out += "      ],\n";
    out += "      \"slicing_adapt_l\": {\"legacy_per_sec\": " +
           json_escape_number(s.legacy_slicing_per_sec) +
           ", \"cached_per_sec\": " +
           json_escape_number(s.cached_slicing_per_sec) + ", \"speedup\": " +
           json_escape_number(s.legacy_slicing_per_sec > 0.0
                                  ? s.cached_slicing_per_sec /
                                        s.legacy_slicing_per_sec
                                  : 0.0) +
           ", \"batch_per_sec\": " +
           json_escape_number(s.batch_slicing_per_sec) +
           ", \"batch_speedup\": " +
           json_escape_number(s.cached_slicing_per_sec > 0.0
                                  ? s.batch_slicing_per_sec /
                                        s.cached_slicing_per_sec
                                  : 0.0) +
           "},\n";
    out += "      \"batch_steady_grow_events\": " +
           std::to_string(s.batch_steady_grow_events) + ",\n";
    out += "      \"cached_loop_analysis_constructions\": " +
           std::to_string(s.cached_loop_constructions) + "\n";
    out += "    }";
    out += (r + 1 < reports.size()) ? ",\n" : "\n";
  }
  out += "  ]\n}\n";
  return out;
}

SizeReport measure_size(std::size_t tasks, std::size_t processors,
                        double min_seconds) {
  SizeReport report;
  report.tasks = tasks;

  const GeneratorConfig cfg = sized_config(tasks, processors);
  std::vector<Scenario> scenarios;
  std::vector<std::vector<double>> ests;
  scenarios.reserve(kRowSeeds);
  ests.reserve(kRowSeeds);
  for (std::size_t s = 0; s < kRowSeeds; ++s) {
    scenarios.push_back(generate_scenario_at(cfg, s));
    ests.push_back(
        estimate_wcets(scenarios.back().application, WcetEstimation::kAverage));
  }
  const double inv = 1.0 / static_cast<double>(kRowSeeds);

  report.legacy_closure_build_us =
      1e6 * inv * time_per_call(min_seconds, 3, [&] {
        for (const Scenario& sc : scenarios) {
          legacy::Closure closure(sc.application.graph());
          volatile std::size_t sink = closure.parallel_set_size(0);
          (void)sink;
        }
      });
  report.analysis_build_us = 1e6 * inv * time_per_call(min_seconds, 3, [&] {
    for (const Scenario& sc : scenarios) {
      GraphAnalysis analysis(sc.application.graph());
      volatile std::size_t sink = analysis.parallel_set_size(0);
      (void)sink;
    }
  });

  for (const Scenario& sc : scenarios) {
    sc.application.analysis();  // warm the memoized cache
  }
  const std::uint64_t constructions_before = GraphAnalysis::construction_count();

  MetricWorkspace metric_ws;
  std::vector<double> out;
  for (const MetricKind kind : all_metric_kinds()) {
    const DeadlineMetric metric(kind);
    MetricRow row;
    row.name = to_string(kind);
    row.legacy_us = 1e6 * inv * time_per_call(min_seconds, 3, [&] {
      for (std::size_t s = 0; s < kRowSeeds; ++s) {
        volatile double sink =
            legacy::weights(metric, scenarios[s].application, ests[s],
                            processors)
                .back();
        (void)sink;
      }
    });
    row.cached_us = 1e6 * inv * time_per_call(min_seconds, 3, [&] {
      for (std::size_t s = 0; s < kRowSeeds; ++s) {
        metric.weights_into(scenarios[s].application, ests[s], processors,
                            nullptr, out, &metric_ws);
        volatile double sink = out.back();
        (void)sink;
      }
    });
    report.weights.push_back(row);
  }

  const DeadlineMetric adapt_l(MetricKind::kAdaptL);
  const double legacy_slice_s = inv * time_per_call(min_seconds, 3, [&] {
    for (std::size_t s = 0; s < kRowSeeds; ++s) {
      volatile double sink =
          legacy::run_slicing(scenarios[s].application, ests[s], adapt_l,
                              processors)
              .windows[0]
              .deadline;
      (void)sink;
    }
  });
  SlicingWorkspace slicing_ws;
  SlicingOptions options;
  options.workspace = &slicing_ws;
  const double cached_slice_s = inv * time_per_call(min_seconds, 3, [&] {
    for (std::size_t s = 0; s < kRowSeeds; ++s) {
      volatile double sink =
          run_slicing(scenarios[s].application, ests[s], adapt_l, processors,
                      nullptr, options)
              .windows[0]
              .deadline;
      (void)sink;
    }
  });
  report.legacy_slicing_per_sec = 1.0 / legacy_slice_s;
  report.cached_slicing_per_sec = 1.0 / cached_slice_s;

  // The SoA batch kernel over the same scenarios, one batch per call. Warm
  // once so the timed loop exercises the steady state, then assert it never
  // allocated (the sweep integration depends on exactly this property).
  BatchSliceKernel kernel;
  BatchSliceConfig batch_cfg;
  batch_cfg.metric = MetricKind::kAdaptL;
  kernel.run(scenarios, batch_cfg);
  const std::uint64_t batch_warm_grow = kernel.grow_events();
  const double batch_slice_s = inv * time_per_call(min_seconds, 3, [&] {
    kernel.run(scenarios, batch_cfg);
    volatile double sink = kernel.assignment(0).windows[0].deadline;
    (void)sink;
  });
  report.batch_slicing_per_sec = 1.0 / batch_slice_s;
  report.batch_steady_grow_events = kernel.grow_events() - batch_warm_grow;

  report.cached_loop_constructions =
      GraphAnalysis::construction_count() - constructions_before;
  return report;
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli("perf_slicing",
                "Before/after benchmark of the graph-analysis cache and the "
                "allocation-free slicing hot path.");
  cli.add_flag("json", "", "write results as JSON to this path");
  cli.add_flag("processors", "3", "processor count m");
  cli.add_flag("min-ms", "100", "minimum wall time per measurement (ms)");
  cli.add_bool_flag("smoke", "tiny sizes / short timings (CI sanity run)");
  dsslice::obs::ObsCli::register_flags(cli);
  if (!cli.parse(argc, argv)) {
    return 1;
  }
  dsslice::obs::ObsCli obs_session(cli);
  const auto processors = static_cast<std::size_t>(cli.get_int("processors"));
  const bool smoke = cli.get_bool("smoke");
  const double min_seconds =
      (smoke ? 5.0 : static_cast<double>(cli.get_int("min-ms"))) / 1000.0;
  const std::vector<std::size_t> sizes =
      smoke ? std::vector<std::size_t>{64, 256}
            : std::vector<std::size_t>{64, 128, 256, 512, 1024, 2048};

  std::printf("perf_slicing: m=%zu, sizes:", processors);
  for (const std::size_t n : sizes) {
    std::printf(" %zu", n);
  }
  std::printf("%s\n\n", smoke ? " (smoke)" : "");

  std::vector<SizeReport> reports;
  bool cache_clean = true;
  for (const std::size_t n : sizes) {
    SizeReport r = measure_size(n, processors, min_seconds);
    std::printf("n=%4zu  build %8.1fus -> %8.1fus", r.tasks,
                r.legacy_closure_build_us, r.analysis_build_us);
    for (const MetricRow& m : r.weights) {
      std::printf("  %s %0.1fx", m.name.c_str(), m.speedup());
    }
    std::printf(
        "  slicing %.0f -> %.0f /s (%.1fx)  batch %.0f /s (%.2fx)  "
        "rebuilds=%llu\n",
        r.legacy_slicing_per_sec, r.cached_slicing_per_sec,
        r.cached_slicing_per_sec / r.legacy_slicing_per_sec,
        r.batch_slicing_per_sec,
        r.batch_slicing_per_sec / r.cached_slicing_per_sec,
        static_cast<unsigned long long>(r.cached_loop_constructions));
    if (r.cached_loop_constructions != 0 || r.batch_steady_grow_events != 0) {
      cache_clean = false;
    }
    reports.push_back(std::move(r));
  }

  if (!cache_clean) {
    std::fprintf(stderr,
                 "FAIL: cached timing loops rebuilt the graph analysis\n");
    return 1;
  }
  std::printf("\ncached loops built zero GraphAnalysis instances: OK\n");

  const std::string json_path = cli.get_string("json");
  if (!json_path.empty()) {
    if (write_text_file(json_path, to_json(reports, processors))) {
      std::printf("JSON written to %s\n", json_path.c_str());
    } else {
      std::fprintf(stderr, "warning: could not write %s\n", json_path.c_str());
      return 1;
    }
  }
  obs_session.finish();
  return 0;
}
