// Figure 5 reproduction: ADAPT-L success ratio as a function of OLR for the
// three WCET estimation strategies (WCET-AVG / WCET-MAX / WCET-MIN), m = 3.
//
// Shape targets (§6.4): at the default ETD = 25% the strategies order
// MAX ≥ AVG ≥ MIN, with small (paper: ~±5%) separations — pessimistic
// estimates buy safety margin against the final heterogeneous placement.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace dsslice;
  CliParser cli = bench::make_parser(
      "fig5_wcet_olr",
      "Fig. 5: ADAPT-L success ratio vs OLR per WCET strategy (m = 3)");
  if (!cli.parse(argc, argv)) {
    return 0;
  }
  bench::ObsScope obs_scope(cli);
  ThreadPool pool = bench::make_pool(cli);
  ExperimentConfig base = bench::base_config(cli);
  base.generator.platform.processor_count = 3;
  base.technique = DistributionTechnique::kSlicingAdaptL;
  const SweepResult sweep = sweep_wcet_olr(
      base, {0.5, 0.6, 0.7, 0.8, 0.9, 1.0, 1.1, 1.2}, pool,
      cli.get_bool("verbose"));
  bench::report(
      "Fig. 5 — ADAPT-L success ratio vs OLR per WCET estimation strategy "
      "(m=3, ETD=25%)",
      sweep, cli);
  return 0;
}
