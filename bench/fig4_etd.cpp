// Figure 4 reproduction: success ratio as a function of the execution time
// distribution (ETD), m = 3, OLR = 0.8.
//
// Shape targets (§6.3): at ETD = 0 the PURE, NORM and ADAPT-G metrics
// produce (near-)identical slices and hence (near-)identical success
// ratios, while ADAPT-L — whose virtual execution times still differ via
// the parallel sets — stays clearly ahead; the adaptive metrics dip as ETD
// grows past 50% (the paper's "anomalous behaviour" with the default
// adaptivity factors); NORM's relative standing shifts against ADAPT-G as
// ETD grows.
//
// Note: exact three-way equality at ETD = 0 requires every task to share
// the same estimated WCET; the paper's 5% eligibility rule perturbs the
// estimates slightly (a task ineligible on a slow class has a smaller
// class-average), so the three curves coincide only approximately — run
// with --exact-etd0 to disable the eligibility rule and observe exact
// convergence.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace dsslice;
  CliParser cli = bench::make_parser(
      "fig4_etd", "Fig. 4: success ratio vs ETD (m = 3, OLR = 0.8)");
  cli.add_bool_flag("exact-etd0",
                    "disable the 5% ineligibility rule so the ETD=0 "
                    "convergence of PURE/NORM/ADAPT-G is exact");
  if (!cli.parse(argc, argv)) {
    return 0;
  }
  bench::ObsScope obs_scope(cli);
  ThreadPool pool = bench::make_pool(cli);
  ExperimentConfig base = bench::base_config(cli);
  base.generator.platform.processor_count = 3;
  if (cli.get_bool("exact-etd0")) {
    base.generator.workload.ineligible_probability = 0.0;
  }
  const SweepResult sweep = sweep_etd(
      base, {0.0, 0.25, 0.5, 0.75, 1.0}, pool, cli.get_bool("verbose"));
  bench::report("Fig. 4 — success ratio vs ETD (m=3, OLR=0.8)", sweep, cli);
  return 0;
}
