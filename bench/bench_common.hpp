// Shared scaffolding for the figure-reproduction and ablation benches.
//
// Every bench binary follows the same recipe: parse the common flags, run a
// sweep on the shared thread pool, print the paper-style table plus an ASCII
// chart of the series, and drop a CSV next to the binary (best effort).
#pragma once

#include <cstdio>
#include <filesystem>
#include <string>
#include <thread>

#include "dsslice/dsslice.hpp"

namespace dsslice::bench {

/// Scratch-file path in the system temp directory (checkpoints and other
/// transient bench artifacts that must not land in the working tree).
inline std::string temp_path(const std::string& name) {
  std::error_code ec;
  const std::filesystem::path dir = std::filesystem::temp_directory_path(ec);
  return (ec ? std::filesystem::path{"."} / name : dir / name).string();
}

/// Instruction-set description of this build/machine pair: the ISA baseline
/// the compiler was allowed to assume (compile-time macros) and, on x86, the
/// best SIMD level the running CPU actually reports. Perf numbers — the
/// batch kernel's in particular — are only comparable within one ISA
/// envelope, so the JSON reports carry both.
inline std::string isa_compiled() {
#if defined(__AVX512F__)
  return "avx512f";
#elif defined(__AVX2__)
  return "avx2";
#elif defined(__AVX__)
  return "avx";
#elif defined(__SSE2__) || defined(__x86_64__)
  return "sse2";
#elif defined(__ARM_NEON)
  return "neon";
#else
  return "generic";
#endif
}

inline std::string isa_runtime() {
#if defined(__x86_64__) || defined(__i386__)
  if (__builtin_cpu_supports("avx512f")) {
    return "avx512f";
  }
  if (__builtin_cpu_supports("avx2")) {
    return "avx2";
  }
  if (__builtin_cpu_supports("avx")) {
    return "avx";
  }
  if (__builtin_cpu_supports("sse2")) {
    return "sse2";
  }
  return "x86-baseline";
#elif defined(__ARM_NEON)
  return "neon";
#else
  return "generic";
#endif
}

/// JSON object describing the measurement context: worker thread count,
/// hardware concurrency, compiler, build mode, architecture and SIMD ISA
/// (compiled baseline vs runtime capability). Embedded in the perf JSON
/// reports (BENCH_*.json) so committed numbers carry their provenance.
inline std::string machine_json(std::size_t threads) {
  std::string out = "{\"threads\": " + std::to_string(threads);
  out += ", \"hardware_concurrency\": " +
         std::to_string(std::thread::hardware_concurrency());
#if defined(__VERSION__)
  out += ", \"compiler\": \"" + std::string(__VERSION__) + "\"";
#endif
#if defined(NDEBUG)
  out += ", \"build\": \"release\"";
#else
  out += ", \"build\": \"debug\"";
#endif
#if defined(__x86_64__)
  out += ", \"arch\": \"x86_64\"";
#elif defined(__aarch64__)
  out += ", \"arch\": \"aarch64\"";
#else
  out += ", \"arch\": \"other\"";
#endif
  out += ", \"isa_compiled\": \"" + isa_compiled() + "\"";
  out += ", \"isa_runtime\": \"" + isa_runtime() + "\"";
  out += "}";
  return out;
}

/// Registers the flags every bench shares.
inline CliParser make_parser(const std::string& name,
                             const std::string& description) {
  CliParser p(name, description);
  p.add_flag("graphs", "1024", "task graphs per experiment point (paper: 1024)");
  p.add_flag("seed", "20250707", "base seed for workload generation");
  p.add_flag("threads", "0", "worker threads (0 = hardware concurrency)");
  p.add_flag("grain", "0", "scenarios per parallel chunk (0 = automatic)");
  p.add_flag("csv", "", "write the sweep as CSV to this path");
  p.add_bool_flag("verbose", "progress on stderr");
  obs::ObsCli::register_flags(p);
  return p;
}

/// Observability session bound to a scope: arms tracing from the parsed
/// flags, writes --trace/--metrics/--obs-summary output when the scope ends.
/// Declare one right after parsing in a bench's main().
class ObsScope {
 public:
  explicit ObsScope(const CliParser& cli) : session_(cli) {}
  ~ObsScope() { session_.finish(); }
  ObsScope(const ObsScope&) = delete;
  ObsScope& operator=(const ObsScope&) = delete;

 private:
  obs::ObsCli session_;
};

/// Baseline experiment configuration from the common flags (paper defaults:
/// m=3, OLR=0.8, ETD=25%, CCR=0.1, WCET-AVG, k_G=1.5, k_L=0.2).
inline ExperimentConfig base_config(const CliParser& cli) {
  ExperimentConfig config;
  config.generator.graph_count =
      static_cast<std::size_t>(cli.get_int("graphs"));
  config.generator.base_seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  return config;
}

inline ThreadPool make_pool(const CliParser& cli) {
  // The chunk-size override rides along with pool creation so every bench
  // picks up --grain without further plumbing (results are grain-invariant;
  // only throughput changes).
  set_experiment_grain(static_cast<std::size_t>(cli.get_int("grain")));
  return ThreadPool(static_cast<std::size_t>(cli.get_int("threads")));
}

/// Prints the sweep in paper-figure form: headline, table, chart.
inline void report(const std::string& title, const SweepResult& sweep,
                   const CliParser& cli) {
  std::printf("== %s ==\n", title.c_str());
  std::printf("   (success ratio over %lld task graphs per point, "
              "95%% binomial CI)\n\n",
              static_cast<long long>(cli.get_int("graphs")));
  std::fputs(format_sweep_table(sweep).c_str(), stdout);
  std::fputs("\n", stdout);
  std::fputs(format_sweep_chart(sweep).c_str(), stdout);
  if (sweep.scenarios > 0 && sweep.wall_seconds > 0.0) {
    std::printf("\n%zu scenarios in %.2f s (%.0f scenarios/sec)\n",
                sweep.scenarios, sweep.wall_seconds,
                sweep.scenarios_per_second());
  }
  const std::string csv_path = cli.get_string("csv");
  if (!csv_path.empty()) {
    if (write_text_file(csv_path, to_csv(sweep))) {
      std::printf("\nCSV written to %s\n", csv_path.c_str());
    } else {
      std::fprintf(stderr, "warning: could not write %s\n", csv_path.c_str());
    }
  }
  std::fputs("\n", stdout);
}

}  // namespace dsslice::bench
