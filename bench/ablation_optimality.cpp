// Ablation A10: how much success ratio does the heuristic EDF scheduler
// leave on the table?
//
// On small instances (where exact search is tractable) we compare, per
// metric, the greedy EDF list scheduler against the branch-and-bound
// feasibility oracle operating on the *same* windows. The gap separates
// two failure causes the success-ratio figures conflate: windows that are
// genuinely infeasible (a deadline-distribution problem) vs windows the
// greedy scheduler merely fails to exploit (a scheduling problem).
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace dsslice;
  CliParser cli = bench::make_parser(
      "ablation_optimality",
      "A10: greedy EDF vs branch-and-bound feasibility oracle");
  cli.add_flag("tasks", "12", "tasks per small instance");
  cli.add_flag("olr", "0.6", "overall laxity ratio (tight region)");
  cli.add_flag("max-nodes", "200000", "branch-and-bound node budget");
  if (!cli.parse(argc, argv)) {
    return 0;
  }
  bench::ObsScope obs_scope(cli);
  const auto graphs = static_cast<std::size_t>(cli.get_int("graphs"));
  const auto tasks = static_cast<std::size_t>(cli.get_int("tasks"));

  GeneratorConfig gen;
  gen.workload.min_tasks = tasks;
  gen.workload.max_tasks = tasks;
  gen.workload.min_depth = std::max<std::size_t>(2, tasks / 3);
  gen.workload.max_depth = std::max<std::size_t>(2, tasks / 3);
  gen.workload.olr = cli.get_double("olr");
  gen.platform.processor_count = 3;
  gen.graph_count = graphs;
  gen.base_seed = static_cast<std::uint64_t>(cli.get_int("seed"));

  BnbOptions bnb;
  bnb.max_nodes = static_cast<std::size_t>(cli.get_int("max-nodes"));

  std::printf("== A10 — greedy EDF vs exact feasibility on %zu-task "
              "instances (m=3, OLR=%.2f, %zu graphs) ==\n\n",
              tasks, gen.workload.olr, graphs);
  Table table({"metric", "greedy", "exact", "scheduler gap", "undecided"});
  for (const MetricKind kind : all_metric_kinds()) {
    SuccessCounter greedy;
    SuccessCounter exact;
    std::size_t undecided = 0;
    for (std::size_t k = 0; k < graphs; ++k) {
      const Scenario sc = generate_scenario_at(gen, k);
      const auto est =
          estimate_wcets(sc.application, WcetEstimation::kAverage);
      const auto a = run_slicing(sc.application, est, DeadlineMetric(kind),
                                 sc.platform.processor_count());
      greedy.add(
          EdfListScheduler().run(sc.application, a, sc.platform).success);
      const auto r =
          branch_and_bound_schedule(sc.application, a, sc.platform, bnb);
      if (r.status == BnbStatus::kNodeLimit) {
        ++undecided;
      }
      exact.add(r.status == BnbStatus::kFeasible);
    }
    table.add_row({to_string(kind), format_percent(greedy.ratio(), 1),
                   format_percent(exact.ratio(), 1),
                   format_percent(exact.ratio() - greedy.ratio(), 1),
                   std::to_string(undecided)});
  }
  std::fputs(table.to_string().c_str(), stdout);
  std::printf(
      "\n('scheduler gap' = window sets feasible in principle that greedy "
      "EDF fails to schedule; 'undecided' hit the node budget and count as "
      "exact-infeasible)\n\n");
  return 0;
}
