// Ablation A12: shared-resource constraints (§7.3 future work).
//
// Workloads gain exclusive shared resources (each task requires each of R
// resources with probability ρ). Three configurations are compared as ρ
// grows:
//  * ADAPT-L windows, resource-blind (slices ignore resources; the
//    scheduler still enforces them) — the naive application of the paper;
//  * ADAPT-LR windows (resource-aware virtual times: conflicting parallel
//    tasks add k_R each);
//  * PURE windows as the non-adaptive reference.
// Shape expectation: resource-aware windows retain schedulability longer as
// contention for the serial resources grows.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace dsslice;
  CliParser cli = bench::make_parser(
      "ablation_resources",
      "A12: shared-resource contention and the ADAPT-LR extension");
  cli.add_flag("resources", "3", "number of exclusive shared resources");
  cli.add_flag("olr", "0.8", "overall laxity ratio");
  if (!cli.parse(argc, argv)) {
    return 0;
  }
  bench::ObsScope obs_scope(cli);
  const auto graphs = static_cast<std::size_t>(cli.get_int("graphs"));
  const auto resource_count =
      static_cast<std::size_t>(cli.get_int("resources"));

  GeneratorConfig gen;
  gen.platform.processor_count = 3;
  gen.workload.olr = cli.get_double("olr");
  gen.graph_count = graphs;
  gen.base_seed = static_cast<std::uint64_t>(cli.get_int("seed"));

  std::printf("== A12 — shared resources: success ratio vs requirement "
              "probability (m=3, OLR=%.2f, R=%zu, %zu graphs) ==\n\n",
              gen.workload.olr, resource_count, graphs);
  Table table({"P(require)", "PURE", "ADAPT-L (blind)", "ADAPT-LR (aware)"});
  for (const double rho : {0.0, 0.05, 0.1, 0.2, 0.3, 0.4}) {
    SuccessCounter pure_ok;
    SuccessCounter blind_ok;
    SuccessCounter aware_ok;
    for (std::size_t k = 0; k < graphs; ++k) {
      const Scenario sc = generate_scenario_at(gen, k);
      Xoshiro256 rng(derive_seed(gen.base_seed ^ 0x5E50uL, k));
      const ResourceModel model =
          generate_resources(sc.application, resource_count, rho, rng);
      const auto est =
          estimate_wcets(sc.application, WcetEstimation::kAverage);
      const auto schedule_ok = [&](const DeadlineAssignment& a) {
        return EdfListScheduler()
            .run(sc.application, a, sc.platform, &model)
            .success;
      };
      pure_ok.add(schedule_ok(
          run_slicing(sc.application, est, DeadlineMetric(MetricKind::kPure),
                      sc.platform.processor_count())));
      blind_ok.add(schedule_ok(run_slicing(
          sc.application, est, DeadlineMetric(MetricKind::kAdaptL),
          sc.platform.processor_count())));
      SlicingOptions options;
      options.resources = &model;
      aware_ok.add(schedule_ok(run_slicing(
          sc.application, est, DeadlineMetric(MetricKind::kAdaptL),
          sc.platform.processor_count(), nullptr, options)));
    }
    table.add_row({format_fixed(rho, 2), format_percent(pure_ok.ratio(), 1),
                   format_percent(blind_ok.ratio(), 1),
                   format_percent(aware_ok.ratio(), 1)});
  }
  std::fputs(table.to_string().c_str(), stdout);
  std::printf("\n(the scheduler enforces resource exclusivity in every "
              "column; only the window derivation differs)\n\n");
  return 0;
}
