// P4: before/after performance harness for the allocation-free scheduler
// engine.
//
// Measures, per graph size, the per-scenario throughput of:
//  * the EDF list scheduler (append and insertion placement): the legacy
//    per-run implementation (linear ready-list scans, per-candidate
//    allocations, virtual comm_delay per predecessor) vs the engine's
//    run_into path (binary ready heap, cached CSR adjacency, reusable
//    SchedulerWorkspace buffers);
//  * the time-marching EDF dispatcher: the legacy implementation (per-run
//    state vectors, unordered_map arc factors, virtual network delays) vs
//    the engine path (flat arc factors, devirtualized shared-bus delay,
//    workspace-backed state);
// plus an end-to-end comparison: evaluate_scenario-style loops (generate +
// slice + schedule) with the legacy schedulers vs the engine.
//
// The "legacy" code below is the pre-engine implementation, carried
// verbatim so both variants compile into one binary under identical flags.
// The equivalence suite (tests/test_scheduler_equivalence.cpp) pins the two
// to bit-identical schedules; this harness re-asserts identity on its own
// scenarios, asserts the warm engine loops perform zero scheduler-state
// allocations (SchedulerWorkspace::grow_events), then reports speedups and
// writes BENCH_scheduling.json.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <limits>
#include <string>
#include <unordered_map>
#include <vector>

#include "dsslice/dsslice.hpp"

#include "bench_common.hpp"

namespace {

using namespace dsslice;

// ---------------------------------------------------------------------------
// Legacy implementations (pre-engine), kept verbatim for the "before" side.
// ---------------------------------------------------------------------------
namespace legacy {

SchedulerResult list_run(const Application& app,
                         const DeadlineAssignment& assignment,
                         const Platform& platform,
                         const SchedulerOptions& options_,
                         const ResourceModel* resources = nullptr) {
  DSSLICE_REQUIRE(resources == nullptr ||
                      options_.placement == PlacementPolicy::kAppend,
                  "resource constraints require append placement");
  DSSLICE_REQUIRE(resources == nullptr ||
                      resources->task_count() == app.task_count(),
                  "resource model size mismatch");
  const TaskGraph& g = app.graph();
  const std::size_t n = g.node_count();
  const std::size_t m = platform.processor_count();
  DSSLICE_REQUIRE(assignment.windows.size() == n,
                  "assignment size mismatch");

  SchedulerResult result{Schedule(n, m), false, std::nullopt, "", {}};
  Schedule& schedule = result.schedule;

  std::vector<ProcessorTimeline> timelines(
      options_.placement == PlacementPolicy::kInsertion ? m : 0);

  std::vector<Time> resource_available(
      resources != nullptr ? resources->resource_count() : 0, kTimeZero);

  const SharedBus* bus_model = nullptr;
  ProcessorTimeline bus;
  if (options_.simulate_bus_contention) {
    bus_model = dynamic_cast<const SharedBus*>(&platform.network());
    DSSLICE_REQUIRE(bus_model != nullptr,
                    "bus-contention simulation requires a SharedBus network");
  }

  std::vector<std::size_t> unscheduled_preds(n);
  std::vector<NodeId> ready;
  for (NodeId v = 0; v < n; ++v) {
    unscheduled_preds[v] = g.in_degree(v);
    if (unscheduled_preds[v] == 0) {
      ready.push_back(v);
    }
  }

  const auto fail = [&](NodeId v, std::string reason) {
    result.success = false;
    result.failed_task = v;
    result.failure_reason = std::move(reason);
    return result;
  };

  bool missed = false;
  while (!ready.empty()) {
    std::size_t pick = 0;
    for (std::size_t k = 1; k < ready.size(); ++k) {
      const Window& a = assignment.windows[ready[k]];
      const Window& b = assignment.windows[ready[pick]];
      if (a.deadline < b.deadline ||
          (a.deadline == b.deadline &&
           (a.arrival < b.arrival ||
            (a.arrival == b.arrival && ready[k] < ready[pick])))) {
        pick = k;
      }
    }
    const NodeId v = ready[pick];
    ready[pick] = ready.back();
    ready.pop_back();

    const Task& task = app.task(v);
    const Window& window = assignment.windows[v];

    ProcessorId best_proc = 0;
    Time best_start = kTimeInfinity;
    Time best_finish = kTimeInfinity;
    std::vector<BusTransfer> best_transfers;
    bool found = false;
    for (ProcessorId p = 0; p < m; ++p) {
      const ProcessorClassId e = platform.class_of(p);
      if (!task.eligible(e)) {
        continue;
      }
      const double c = task.wcet(e);
      Time bound = window.arrival;
      if (resources != nullptr) {
        for (const ResourceId r : resources->resources_of(v)) {
          bound = std::max(bound, resource_available[r]);
        }
      }
      std::vector<BusTransfer> transfers;
      if (bus_model != nullptr) {
        ProcessorTimeline trial = bus;
        for (const NodeId u : g.predecessors(v)) {
          const ScheduledTask& pe = schedule.entry(u);
          const double items = g.message_items(u, v).value_or(0.0);
          if (pe.processor == p || items <= 0.0) {
            bound = std::max(bound, pe.finish);
            continue;
          }
          const Time duration = items * bus_model->per_item_delay();
          const Time slot = trial.earliest_fit(pe.finish, duration);
          trial.occupy(slot, duration);
          transfers.push_back(BusTransfer{u, v, slot, slot + duration});
          bound = std::max(bound, slot + duration);
        }
      } else {
        for (const NodeId u : g.predecessors(v)) {
          const ScheduledTask& pe = schedule.entry(u);
          const double items = g.message_items(u, v).value_or(0.0);
          bound = std::max(bound,
                           pe.finish + platform.comm_delay(pe.processor, p,
                                                           items));
        }
      }
      Time start;
      if (options_.placement == PlacementPolicy::kInsertion) {
        start = timelines[p].earliest_fit(bound, c);
      } else {
        start = std::max(bound, schedule.processor_available(p));
      }
      const Time finish = start + c;
      if (!found || start < best_start ||
          (start == best_start &&
           (finish < best_finish ||
            (finish == best_finish && p < best_proc)))) {
        found = true;
        best_proc = p;
        best_start = start;
        best_finish = finish;
        best_transfers = std::move(transfers);
      }
    }

    if (!found) {
      return fail(v, "task " + task.name +
                         " has no eligible processor on this platform");
    }

    if (best_finish > window.deadline) {
      missed = true;
      if (options_.abort_on_miss) {
        return fail(v, "task " + task.name + " misses its deadline (finish " +
                           std::to_string(best_finish) + " > D " +
                           std::to_string(window.deadline) + ")");
      }
      if (!result.failed_task.has_value()) {
        result.failed_task = v;
        result.failure_reason = "task " + task.name + " missed its deadline";
      }
    }

    schedule.place(v, best_proc, best_start, best_finish);
    if (resources != nullptr) {
      for (const ResourceId r : resources->resources_of(v)) {
        resource_available[r] = best_finish;
      }
    }
    if (options_.placement == PlacementPolicy::kInsertion) {
      timelines[best_proc].occupy(best_start, best_finish - best_start);
    }
    for (const BusTransfer& t : best_transfers) {
      bus.occupy(t.start, t.finish - t.start);
      result.bus_transfers.push_back(t);
    }
    for (const NodeId s : g.successors(v)) {
      if (--unscheduled_preds[s] == 0) {
        ready.push_back(s);
      }
    }
  }

  if (!schedule.complete()) {
    return fail(0, "schedule incomplete: task graph has a cycle");
  }
  result.success = !missed;
  return result;
}

constexpr double kEps = 1e-9;

std::uint64_t arc_key(NodeId u, NodeId v) {
  return (static_cast<std::uint64_t>(u) << 32) | v;
}

SchedulerResult dispatch_run(const Application& app,
                             const DeadlineAssignment& assignment,
                             const Platform& platform,
                             const DispatchOptions& options_,
                             const DispatchConditions* conditions = nullptr,
                             DispatchControl* control = nullptr,
                             DispatchTelemetry* telemetry = nullptr) {
  const TaskGraph& g = app.graph();
  const std::size_t n = g.node_count();
  const std::size_t m = platform.processor_count();
  DSSLICE_REQUIRE(assignment.windows.size() == n, "assignment size mismatch");
  if (conditions != nullptr) {
    DSSLICE_REQUIRE(conditions->wcet_factor.empty() ||
                        conditions->wcet_factor.size() == n,
                    "wcet_factor size mismatch");
    DSSLICE_REQUIRE(conditions->wcet_addend.empty() ||
                        conditions->wcet_addend.size() == n,
                    "wcet_addend size mismatch");
    DSSLICE_REQUIRE(conditions->arc_delay_factor.empty() ||
                        conditions->arc_delay_factor.size() == g.arc_count(),
                    "arc_delay_factor size mismatch");
    DSSLICE_REQUIRE(conditions->processor_down_at.empty() ||
                        conditions->processor_down_at.size() == m,
                    "processor_down_at size mismatch");
  }

  SchedulerResult result{Schedule(n, m), false, std::nullopt, "", {}};

  std::vector<Window> windows = assignment.windows;
  std::vector<std::size_t> preds_left(n, 0);
  std::vector<char> started(n, 0), done(n, 0), lost(n, 0);
  std::vector<Time> start_time(n, kTimeZero);
  std::vector<Time> finish(n, kTimeInfinity);
  std::vector<ProcessorId> proc_of(n, 0);
  std::vector<ProcessorId> pinned(n, kUnpinnedProcessor);
  std::vector<Time> busy_until(m, kTimeZero);
  std::size_t remaining = n;
  for (NodeId v = 0; v < n; ++v) {
    preds_left[v] = g.in_degree(v);
  }

  std::vector<Time> known_from(m, kTimeZero), known_until(m, kTimeInfinity);
  std::vector<Time> surprise_down(m, kTimeInfinity);
  std::vector<char> failure_handled(m, 0);
  for (ProcessorId p = 0; p < m; ++p) {
    known_from[p] = platform.processor(p).available_from;
    known_until[p] = platform.processor(p).available_until;
    if (conditions != nullptr && !conditions->processor_down_at.empty()) {
      surprise_down[p] = conditions->processor_down_at[p];
    }
  }
  std::vector<Time> down_at(m, kTimeInfinity);
  for (ProcessorId p = 0; p < m; ++p) {
    down_at[p] = std::min(known_until[p], surprise_down[p]);
  }
  bool any_failure = false;

  const auto actual_wcet = [&](NodeId v, ProcessorClassId e) {
    double c = app.task(v).wcet(e);
    if (conditions != nullptr) {
      if (!conditions->wcet_factor.empty()) {
        c *= conditions->wcet_factor[v];
      }
      if (!conditions->wcet_addend.empty()) {
        c += conditions->wcet_addend[v];
      }
      c = std::max(0.0, c);
    }
    return c;
  };

  std::unordered_map<std::uint64_t, double> arc_factor;
  if (conditions != nullptr && !conditions->arc_delay_factor.empty()) {
    const auto& arcs = g.arcs();
    arc_factor.reserve(arcs.size());
    for (std::size_t k = 0; k < arcs.size(); ++k) {
      arc_factor.emplace(arc_key(arcs[k].from, arcs[k].to),
                         conditions->arc_delay_factor[k]);
    }
  }
  const auto comm_delay = [&](NodeId u, NodeId v, ProcessorId src,
                              ProcessorId dst, double items) {
    Time d = platform.comm_delay(src, dst, items);
    if (!arc_factor.empty()) {
      const auto it = arc_factor.find(arc_key(u, v));
      if (it != arc_factor.end()) {
        d *= it->second;
      }
    }
    return d;
  };

  if (telemetry != nullptr) {
    *telemetry = DispatchTelemetry{};
    telemetry->completion.assign(n, kTimeInfinity);
  }

  const auto fail = [&](NodeId v, std::string reason) {
    result.success = false;
    result.failed_task = v;
    result.failure_reason = std::move(reason);
    return result;
  };

  const auto make_view = [&](Time now) {
    return DispatchControl::View{app,      platform, now,        started,
                                 done,     finish,   busy_until, down_at};
  };

  const auto data_ready = [&](NodeId v, ProcessorId p) {
    Time ready = kTimeZero;
    for (const NodeId u : g.predecessors(v)) {
      const double items = g.message_items(u, v).value_or(0.0);
      ready = std::max(ready,
                       finish[u] + comm_delay(u, v, proc_of[u], p, items));
    }
    return ready;
  };

  bool missed = false;
  Time now = kTimeZero;
  std::size_t guard = 0;
  const std::size_t guard_limit = (n + 3 * m + 4) * (n * (m + 1) + m + 4) + 64;
  while (remaining > 0) {
    DSSLICE_CHECK(++guard <= guard_limit, "dispatch failed to converge");

    for (ProcessorId p = 0; p < m; ++p) {
      if (failure_handled[p] || surprise_down[p] > now + kEps) {
        continue;
      }
      failure_handled[p] = 1;
      any_failure = true;
      std::vector<NodeId> victims;
      for (NodeId v = 0; v < n; ++v) {
        if (started[v] && !done[v] && proc_of[v] == p &&
            finish[v] > surprise_down[p] + kEps) {
          victims.push_back(v);
          started[v] = 0;
          finish[v] = kTimeInfinity;
          lost[v] = 1;
          if (telemetry != nullptr) {
            telemetry->killed.push_back(v);
          }
        }
      }
      busy_until[p] = std::min(busy_until[p], surprise_down[p]);
      std::vector<NodeId> revived;
      if (control != nullptr) {
        const auto view = make_view(now);
        revived = control->on_processor_failure(view, p, victims, windows,
                                                pinned);
      }
      for (const NodeId r : revived) {
        DSSLICE_CHECK(std::find(victims.begin(), victims.end(), r) !=
                          victims.end(),
                      "control revived a task that was not a victim");
        lost[r] = 0;
        if (telemetry != nullptr) {
          ++telemetry->restarts;
        }
      }
    }

    for (NodeId v = 0; v < n; ++v) {
      if (started[v] && !done[v] && finish[v] <= now + kEps) {
        done[v] = 1;
        --remaining;
        result.schedule.place(v, proc_of[v], start_time[v], finish[v]);
        if (telemetry != nullptr) {
          telemetry->completion[v] = finish[v];
        }
        const bool late = finish[v] > windows[v].deadline + kEps;
        if (late) {
          missed = true;
          if (telemetry != nullptr) {
            telemetry->misses.push_back(
                TaskMissEvent{v, finish[v], windows[v].deadline});
          }
          if (options_.abort_on_miss) {
            return fail(v, "task " + app.task(v).name +
                               " misses its deadline at dispatch time");
          }
          if (!result.failed_task.has_value()) {
            result.failed_task = v;
            result.failure_reason =
                "task " + app.task(v).name + " missed its deadline";
          }
        }
        for (const NodeId s : g.successors(v)) {
          --preds_left[s];
        }
        if (control != nullptr) {
          const auto view = make_view(now);
          control->on_completion(view, v, late, windows);
        }
      }
    }
    if (remaining == 0) {
      break;
    }

    for (;;) {
      NodeId best = static_cast<NodeId>(n);
      ProcessorId best_proc = 0;
      double best_wcet = 0.0;
      Time best_deadline = kTimeInfinity;
      for (NodeId v = 0; v < n; ++v) {
        if (started[v] || done[v] || lost[v] || preds_left[v] != 0 ||
            windows[v].arrival > now + kEps) {
          continue;
        }
        const Time deadline = windows[v].deadline;
        if (best < n && deadline > best_deadline + kEps) {
          continue;
        }
        ProcessorId chosen = 0;
        double chosen_wcet = 0.0;
        bool found = false;
        for (ProcessorId p = 0; p < m; ++p) {
          if (busy_until[p] > now + kEps) {
            continue;
          }
          if (pinned[v] != kUnpinnedProcessor && pinned[v] != p) {
            continue;
          }
          if (now + kEps < known_from[p] || now + kEps >= surprise_down[p]) {
            continue;
          }
          const Task& task = app.task(v);
          if (!task.eligible(platform.class_of(p))) {
            continue;
          }
          const double c = actual_wcet(v, platform.class_of(p));
          if (now + c > known_until[p] + kEps) {
            continue;
          }
          if (data_ready(v, p) > now + kEps) {
            continue;
          }
          if (!found || c < chosen_wcet) {
            found = true;
            chosen = p;
            chosen_wcet = c;
          }
        }
        if (!found) {
          continue;
        }
        const bool wins =
            best == n || deadline < best_deadline - kEps ||
            (std::abs(deadline - best_deadline) <= kEps && v < best);
        if (wins) {
          best = v;
          best_proc = chosen;
          best_wcet = chosen_wcet;
          best_deadline = deadline;
        }
      }
      if (best >= n) {
        break;
      }
      started[best] = 1;
      proc_of[best] = best_proc;
      start_time[best] = now;
      finish[best] = now + best_wcet;
      busy_until[best_proc] = finish[best];
    }

    Time next = kTimeInfinity;
    for (ProcessorId p = 0; p < m; ++p) {
      if (busy_until[p] > now + kEps) {
        next = std::min(next, busy_until[p]);
      }
      if (!failure_handled[p] && surprise_down[p] < kTimeInfinity &&
          surprise_down[p] > now + kEps) {
        next = std::min(next, surprise_down[p]);
      }
    }
    for (NodeId v = 0; v < n; ++v) {
      if (started[v] || done[v] || lost[v] || preds_left[v] != 0) {
        continue;
      }
      const Time arrival = windows[v].arrival;
      if (arrival > now + kEps) {
        next = std::min(next, arrival);
        continue;
      }
      const Task& task = app.task(v);
      bool any_eligible = false;
      for (ProcessorId p = 0; p < m; ++p) {
        if (!task.eligible(platform.class_of(p))) {
          continue;
        }
        any_eligible = true;
        if (now + kEps >= surprise_down[p]) {
          continue;
        }
        if (pinned[v] != kUnpinnedProcessor && pinned[v] != p) {
          continue;
        }
        if (now + kEps < known_from[p]) {
          next = std::min(next, known_from[p]);
          continue;
        }
        const Time ready = data_ready(v, p);
        if (ready > now + kEps) {
          next = std::min(next, ready);
        }
      }
      if (!any_eligible) {
        return fail(v, "task " + task.name +
                           " has no eligible processor on this platform");
      }
    }
    if (next >= kTimeInfinity) {
      if (any_failure) {
        break;
      }
      return fail(0, "dispatch deadlocked: task graph has a cycle");
    }
    now = next;
  }

  if (remaining > 0) {
    std::size_t stranded = 0;
    NodeId first = 0;
    for (NodeId v = 0; v < n; ++v) {
      if (!done[v]) {
        if (stranded++ == 0) {
          first = v;
        }
        if (telemetry != nullptr) {
          telemetry->unfinished.push_back(v);
        }
      }
    }
    return fail(first, "processor failure left " + std::to_string(stranded) +
                           " task(s) unfinished (first: " +
                           app.task(first).name + ")");
  }

  result.success = !missed && result.schedule.complete();
  return result;
}

}  // namespace legacy

// ---------------------------------------------------------------------------
// Measurement scaffolding.
// ---------------------------------------------------------------------------

using Clock = std::chrono::steady_clock;

/// Times two bodies in alternating batches until each has accumulated at
/// least `min_seconds` of wall time (and `min_reps` repetitions), returning
/// {seconds_per_call_a, seconds_per_call_b}. Interleaving matters on shared
/// hardware: the container's available CPU drifts over seconds, and two
/// back-to-back timing windows would put the drift entirely on one side of
/// the ratio. Alternating batches spread it evenly over both.
template <typename A, typename B>
std::pair<double, double> time_per_call_pair(double min_seconds,
                                             std::size_t min_reps, A&& body_a,
                                             B&& body_b) {
  std::size_t reps_a = 0, reps_b = 0;
  double elapsed_a = 0.0, elapsed_b = 0.0;
  std::size_t batch = 1;
  while (elapsed_a < min_seconds || elapsed_b < min_seconds ||
         reps_a < min_reps || reps_b < min_reps) {
    const auto t0 = Clock::now();
    for (std::size_t i = 0; i < batch; ++i) {
      body_a();
    }
    const auto t1 = Clock::now();
    for (std::size_t i = 0; i < batch; ++i) {
      body_b();
    }
    const auto t2 = Clock::now();
    elapsed_a += std::chrono::duration<double>(t1 - t0).count();
    elapsed_b += std::chrono::duration<double>(t2 - t1).count();
    reps_a += batch;
    reps_b += batch;
    batch = std::min<std::size_t>(batch * 2, 4096);
  }
  return {elapsed_a / static_cast<double>(reps_a),
          elapsed_b / static_cast<double>(reps_b)};
}

/// Scenarios per size row. Each row times all of them back to back and
/// reports scenarios/sec, so the number is a multi-seed average rather than
/// the throughput of one fixed-seed graph — single seeds over- or
/// under-state a row by >2x depending on how the generated DAG happens to
/// shape the ready sets (the PR 4 bench residual).
constexpr std::size_t kRowSeeds = 5;

GeneratorConfig sized_config(std::size_t tasks, std::size_t processors) {
  GeneratorConfig cfg;
  cfg.platform.processor_count = processors;
  cfg.workload.min_tasks = tasks;
  cfg.workload.max_tasks = tasks;
  // Depth scales as sqrt(n) so BOTH depth and level width grow with n.
  // The old tasks/5 rule made depth grow linearly, so width stayed at ~5
  // tasks for every size: a 1024-task "graph" was a 204-level chain with
  // less ready-set pressure than the 512-task one, and measured time per
  // scheduled task *fell* as n grew (docs/PERFORMANCE.md).
  const auto depth = static_cast<std::size_t>(
      std::lround(std::sqrt(static_cast<double>(tasks))));
  cfg.workload.min_depth = std::max<std::size_t>(2, depth);
  cfg.workload.max_depth = std::max<std::size_t>(2, depth);
  cfg.base_seed = 0xBE7C;
  return cfg;
}

/// Bitwise schedule equality: exact placements, start/finish instants, bus
/// reservations, and outcome flags (no epsilon — the engine must match the
/// legacy scheduler to the last bit).
bool same_result(const SchedulerResult& a, const SchedulerResult& b) {
  if (a.success != b.success || a.failed_task != b.failed_task) {
    return false;
  }
  if (a.schedule.task_count() != b.schedule.task_count() ||
      a.schedule.placed_count() != b.schedule.placed_count()) {
    return false;
  }
  for (NodeId v = 0; v < a.schedule.task_count(); ++v) {
    if (a.schedule.placed(v) != b.schedule.placed(v)) {
      return false;
    }
    if (!a.schedule.placed(v)) {
      continue;
    }
    const ScheduledTask& ea = a.schedule.entry(v);
    const ScheduledTask& eb = b.schedule.entry(v);
    if (ea.processor != eb.processor || ea.start != eb.start ||
        ea.finish != eb.finish) {
      return false;
    }
  }
  if (a.bus_transfers.size() != b.bus_transfers.size()) {
    return false;
  }
  for (std::size_t k = 0; k < a.bus_transfers.size(); ++k) {
    const BusTransfer& ta = a.bus_transfers[k];
    const BusTransfer& tb = b.bus_transfers[k];
    if (ta.from != tb.from || ta.to != tb.to || ta.start != tb.start ||
        ta.finish != tb.finish) {
      return false;
    }
  }
  return true;
}

struct EngineRow {
  std::string name;
  double legacy_per_sec = 0.0;
  double engine_per_sec = 0.0;
  std::uint64_t warm_grow_events = 0;  // must be 0
  bool identical = false;
  double speedup() const {
    return legacy_per_sec > 0.0 ? engine_per_sec / legacy_per_sec : 0.0;
  }
};

struct SizeReport {
  std::size_t tasks = 0;
  std::vector<EngineRow> engines;
};

struct EndToEndRow {
  std::string algorithm;
  std::size_t tasks = 0;
  double legacy_per_sec = 0.0;
  double engine_per_sec = 0.0;
  double speedup() const {
    return legacy_per_sec > 0.0 ? engine_per_sec / legacy_per_sec : 0.0;
  }
};

std::string json_number(double v) {
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%.6g", v);
  return buffer;
}

std::string to_json(const std::vector<SizeReport>& reports,
                    const std::vector<EndToEndRow>& e2e,
                    std::size_t processors) {
  std::string out = "{\n";
  out += "  \"benchmark\": \"scheduler-engine\",\n";
  out += "  \"processors\": " + std::to_string(processors) + ",\n";
  out += "  \"seeds_per_row\": " + std::to_string(kRowSeeds) + ",\n";
  out += "  \"machine\": " + bench::machine_json(1) + ",\n";
  out += "  \"metric_unit\": {\"scheduler\": \"scenarios/sec\", "
         "\"end_to_end\": \"scenarios/sec\"},\n";
  out += "  \"sizes\": [\n";
  for (std::size_t r = 0; r < reports.size(); ++r) {
    const SizeReport& s = reports[r];
    out += "    {\n";
    out += "      \"tasks\": " + std::to_string(s.tasks) + ",\n";
    out += "      \"engines\": [\n";
    for (std::size_t k = 0; k < s.engines.size(); ++k) {
      const EngineRow& e = s.engines[k];
      out += "        {\"engine\": \"" + e.name + "\", \"legacy_per_sec\": " +
             json_number(e.legacy_per_sec) + ", \"engine_per_sec\": " +
             json_number(e.engine_per_sec) + ", \"speedup\": " +
             json_number(e.speedup()) + ", \"warm_grow_events\": " +
             std::to_string(e.warm_grow_events) + ", \"identical\": " +
             (e.identical ? "true" : "false") + "}";
      out += (k + 1 < s.engines.size()) ? ",\n" : "\n";
    }
    out += "      ]\n";
    out += "    }";
    out += (r + 1 < reports.size()) ? ",\n" : "\n";
  }
  out += "  ],\n";
  out += "  \"end_to_end\": [\n";
  for (std::size_t k = 0; k < e2e.size(); ++k) {
    const EndToEndRow& e = e2e[k];
    out += "    {\"algorithm\": \"" + e.algorithm + "\", \"tasks\": " +
           std::to_string(e.tasks) + ", \"legacy_per_sec\": " +
           json_number(e.legacy_per_sec) + ", \"engine_per_sec\": " +
           json_number(e.engine_per_sec) + ", \"speedup\": " +
           json_number(e.speedup()) + "}";
    out += (k + 1 < e2e.size()) ? ",\n" : "\n";
  }
  out += "  ]\n}\n";
  return out;
}

SizeReport measure_size(std::size_t tasks, std::size_t processors,
                        double min_seconds) {
  SizeReport report;
  report.tasks = tasks;

  const GeneratorConfig cfg = sized_config(tasks, processors);
  std::vector<Scenario> scenarios;
  std::vector<DeadlineAssignment> assignments;
  scenarios.reserve(kRowSeeds);
  assignments.reserve(kRowSeeds);
  const DeadlineMetric adapt_l(MetricKind::kAdaptL);
  for (std::size_t k = 0; k < kRowSeeds; ++k) {
    scenarios.push_back(generate_scenario_at(cfg, k));
    const Application& app = scenarios.back().application;
    const auto est = estimate_wcets(app, WcetEstimation::kAverage);
    assignments.push_back(run_slicing(app, est, adapt_l, processors));
  }

  SchedulerWorkspace ws;
  SchedulerResult engine_result;

  // One row per engine: time the legacy run, time the engine's run_into
  // (after one warm-up pass over every seed so buffer growth is off the
  // timed path), assert the results stay bit-identical on every seed and
  // the warm loop never grows a buffer. Each timed call covers all
  // kRowSeeds scenarios, so per-sec rates divide by the seed count.
  const auto measure =
      [&](const std::string& name, const auto& run_legacy,
          const auto& run_engine) {
        EngineRow row;
        row.name = name;
        row.identical = true;
        for (std::size_t k = 0; k < kRowSeeds; ++k) {
          const SchedulerResult before = run_legacy(k);
          run_engine(k);                  // warm-up: sizes every buffer
          run_engine(k);                  // settle (result-shell reuse)
          row.identical = row.identical && same_result(before, engine_result);
        }
        const std::uint64_t grow_before = ws.grow_events();
        const auto [legacy_s, engine_s] = time_per_call_pair(
            min_seconds, 3,
            [&] {
              for (std::size_t k = 0; k < kRowSeeds; ++k) {
                volatile bool sink = run_legacy(k).success;
                (void)sink;
              }
            },
            [&] {
              for (std::size_t k = 0; k < kRowSeeds; ++k) {
                run_engine(k);
                volatile bool sink = engine_result.success;
                (void)sink;
              }
            });
        row.legacy_per_sec = kRowSeeds / legacy_s;
        row.engine_per_sec = kRowSeeds / engine_s;
        row.warm_grow_events = ws.grow_events() - grow_before;
        report.engines.push_back(row);
      };

  {
    SchedulerOptions options;  // append placement
    const EdfListScheduler scheduler(options);
    measure(
        "list-append",
        [&](std::size_t k) {
          return legacy::list_run(scenarios[k].application, assignments[k],
                                  scenarios[k].platform, options);
        },
        [&](std::size_t k) {
          scheduler.run_into(engine_result, ws, scenarios[k].application,
                             assignments[k], scenarios[k].platform);
        });
  }
  {
    SchedulerOptions options;
    options.placement = PlacementPolicy::kInsertion;
    const EdfListScheduler scheduler(options);
    measure(
        "list-insertion",
        [&](std::size_t k) {
          return legacy::list_run(scenarios[k].application, assignments[k],
                                  scenarios[k].platform, options);
        },
        [&](std::size_t k) {
          scheduler.run_into(engine_result, ws, scenarios[k].application,
                             assignments[k], scenarios[k].platform);
        });
  }
  {
    DispatchOptions options;
    options.abort_on_miss = false;
    const EdfDispatchScheduler scheduler(options);
    measure(
        "dispatch",
        [&](std::size_t k) {
          return legacy::dispatch_run(scenarios[k].application, assignments[k],
                                      scenarios[k].platform, options);
        },
        [&](std::size_t k) {
          scheduler.run_into(engine_result, ws, scenarios[k].application,
                             assignments[k], scenarios[k].platform);
        });
  }
  return report;
}

/// End-to-end scenario evaluation (generate + estimate + slice + schedule)
/// with the legacy scheduler in the loop — the pre-engine shape of
/// evaluate_scenario, sharing the slicing workspace so the delta isolates
/// the scheduling side.
bool legacy_evaluate(const ExperimentConfig& config, std::uint64_t seed,
                     ScenarioScratch& scratch) {
  const Scenario scenario = generate_scenario(config.generator, seed);
  const std::vector<double> est =
      estimate_wcets(scenario.application, config.wcet_strategy);
  const DeadlineAssignment assignment =
      distribute_for_config(config, scenario.application, scenario.platform,
                            est, nullptr, &scratch);
  if (config.algorithm == SchedulerAlgorithm::kDispatchEdf) {
    DispatchOptions options;
    options.abort_on_miss = config.scheduler.abort_on_miss;
    return legacy::dispatch_run(scenario.application, assignment,
                                scenario.platform, options)
        .success;
  }
  return legacy::list_run(scenario.application, assignment, scenario.platform,
                          config.scheduler)
      .success;
}

EndToEndRow measure_end_to_end(SchedulerAlgorithm algorithm,
                               std::size_t tasks, std::size_t processors,
                               double min_seconds) {
  EndToEndRow row;
  row.algorithm = to_string(algorithm);
  row.tasks = tasks;

  ExperimentConfig config;
  config.generator = sized_config(tasks, processors);
  config.algorithm = algorithm;
  config.scheduler.abort_on_miss = false;

  constexpr std::size_t kSeeds = 4;
  ScenarioScratch scratch;
  const auto [legacy_s, engine_s] = time_per_call_pair(
      min_seconds, 3,
      [&] {
        for (std::uint64_t seed = 0; seed < kSeeds; ++seed) {
          volatile bool sink = legacy_evaluate(config, seed, scratch);
          (void)sink;
        }
      },
      [&] {
        for (std::uint64_t seed = 0; seed < kSeeds; ++seed) {
          volatile bool sink =
              evaluate_scenario(config, seed, &scratch).scheduled;
          (void)sink;
        }
      });
  row.legacy_per_sec = kSeeds / legacy_s;
  row.engine_per_sec = kSeeds / engine_s;
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli("perf_scheduling",
                "Before/after benchmark of the allocation-free scheduler "
                "engine (list, insertion, dispatch).");
  cli.add_flag("json", "", "write results as JSON to this path");
  cli.add_flag("processors", "3", "processor count m");
  cli.add_flag("min-ms", "100", "minimum wall time per measurement (ms)");
  cli.add_bool_flag("smoke", "tiny sizes / short timings (CI sanity run)");
  dsslice::obs::ObsCli::register_flags(cli);
  if (!cli.parse(argc, argv)) {
    return 1;
  }
  dsslice::obs::ObsCli obs_session(cli);
  const auto processors = static_cast<std::size_t>(cli.get_int("processors"));
  const bool smoke = cli.get_bool("smoke");
  const double min_seconds =
      (smoke ? 5.0 : static_cast<double>(cli.get_int("min-ms"))) / 1000.0;
  const std::vector<std::size_t> sizes =
      smoke ? std::vector<std::size_t>{64, 256}
            : std::vector<std::size_t>{64, 128, 256, 512, 1024};

  std::printf("perf_scheduling: m=%zu, sizes:", processors);
  for (const std::size_t n : sizes) {
    std::printf(" %zu", n);
  }
  std::printf("%s\n\n", smoke ? " (smoke)" : "");

  std::vector<SizeReport> reports;
  bool clean = true;
  for (const std::size_t n : sizes) {
    SizeReport r = measure_size(n, processors, min_seconds);
    std::printf("n=%4zu ", r.tasks);
    for (const EngineRow& e : r.engines) {
      std::printf(" %s %.0f -> %.0f /s (%.1fx)%s", e.name.c_str(),
                  e.legacy_per_sec, e.engine_per_sec, e.speedup(),
                  e.identical ? "" : " MISMATCH");
      if (!e.identical || e.warm_grow_events != 0) {
        clean = false;
      }
      if (e.warm_grow_events != 0) {
        std::printf(" grows=%llu",
                    static_cast<unsigned long long>(e.warm_grow_events));
      }
    }
    std::printf("\n");
    reports.push_back(std::move(r));
  }

  std::vector<EndToEndRow> e2e;
  const std::size_t e2e_tasks = smoke ? 64 : 256;
  for (const SchedulerAlgorithm algorithm :
       {SchedulerAlgorithm::kListEdf, SchedulerAlgorithm::kDispatchEdf}) {
    EndToEndRow row =
        measure_end_to_end(algorithm, e2e_tasks, processors, min_seconds);
    std::printf("e2e %s n=%zu  %.0f -> %.0f scenarios/sec (%.2fx)\n",
                row.algorithm.c_str(), row.tasks, row.legacy_per_sec,
                row.engine_per_sec, row.speedup());
    e2e.push_back(std::move(row));
  }

  if (!clean) {
    std::fprintf(stderr,
                 "FAIL: engine diverged from the legacy scheduler or grew "
                 "buffers on the warm path\n");
    return 1;
  }
  std::printf("\nengine bit-identical to legacy, warm loops grew zero "
              "buffers: OK\n");

  const std::string json_path = cli.get_string("json");
  if (!json_path.empty()) {
    if (write_text_file(json_path, to_json(reports, e2e, processors))) {
      std::printf("JSON written to %s\n", json_path.c_str());
    } else {
      std::fprintf(stderr, "warning: could not write %s\n", json_path.c_str());
      return 1;
    }
  }
  obs_session.finish();
  return 0;
}
