// perf_obs: cost contract of the observability layer (docs/OBSERVABILITY.md).
//
// Four measurements:
//  1. Disabled tax (GATED): a synthetic kernel compiled twice in this TU —
//     one copy bare, one carrying a DSSLICE_SPAN + DSSLICE_COUNT per call —
//     timed interleaved with the layer runtime-disabled. The instrumented
//     copy must stay within 2% of the bare copy (or within the measured A/A
//     noise of the bare copy against itself, whichever is larger). This is
//     the "tracing compiled in but off costs nothing" guarantee.
//  2. Enabled tax (reported): the same pair with recording enabled — the
//     price of a clock read + ring/accumulator write per span.
//  3. Pipeline delta (reported): a real evaluate_scenario batch off vs on,
//     the end-to-end number a user sees when passing --trace to a bench.
//  4. Streaming tax (GATED): the same pipeline batch with tracing ON, with
//     and without a StreamSink flushing every 10 ms to scratch files — the
//     price of concurrent ring drains on the recording threads. Gated at
//     max(5%, 2x the A/A noise): streaming must not perturb the workload
//     it watches.
//
// Exits 1 when a gate fails. --json writes BENCH_obs-style results.
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "bench_common.hpp"
#include "dsslice/obs/stream.hpp"

namespace {

using namespace dsslice;
using Clock = std::chrono::steady_clock;

volatile std::uint64_t g_sink = 0;

// ~1k cycles of integer mixing per call: the grain of a realistically
// instrumented function (spans wrap functions, not single statements).
constexpr std::size_t kKernelIters = 256;

__attribute__((noinline)) std::uint64_t kernel_bare(std::uint64_t x) {
  for (std::size_t i = 0; i < kKernelIters; ++i) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
  }
  return x;
}

__attribute__((noinline)) std::uint64_t kernel_instrumented(std::uint64_t x) {
  DSSLICE_SPAN("perf.obs.kernel");
  for (std::size_t i = 0; i < kKernelIters; ++i) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
  }
  DSSLICE_COUNT("perf.obs.kernel.calls", 1);
  return x;
}

/// Interleaved paired timing (same scheme as perf_scheduling): alternating
/// batches of the two bodies so drift hits both sides equally. The order
/// within each iteration alternates too — on small machines the timer
/// interrupt pattern correlates with phase, and a fixed a-then-b order
/// turns that into a systematic bias on the side measured first.
template <typename A, typename B>
std::pair<double, double> time_per_call_pair(double min_seconds,
                                             std::size_t min_reps, A&& body_a,
                                             B&& body_b) {
  std::size_t reps_a = 0, reps_b = 0;
  double elapsed_a = 0.0, elapsed_b = 0.0;
  std::size_t batch = 1;
  bool a_first = true;
  const auto run_a = [&](std::size_t n) {
    const auto t0 = Clock::now();
    for (std::size_t i = 0; i < n; ++i) {
      body_a();
    }
    elapsed_a += std::chrono::duration<double>(Clock::now() - t0).count();
    reps_a += n;
  };
  const auto run_b = [&](std::size_t n) {
    const auto t0 = Clock::now();
    for (std::size_t i = 0; i < n; ++i) {
      body_b();
    }
    elapsed_b += std::chrono::duration<double>(Clock::now() - t0).count();
    reps_b += n;
  };
  while (elapsed_a < min_seconds || elapsed_b < min_seconds ||
         reps_a < min_reps || reps_b < min_reps) {
    if (a_first) {
      run_a(batch);
      run_b(batch);
    } else {
      run_b(batch);
      run_a(batch);
    }
    a_first = !a_first;
    batch = std::min<std::size_t>(batch * 2, 4096);
  }
  return {elapsed_a / static_cast<double>(reps_a),
          elapsed_b / static_cast<double>(reps_b)};
}

double percent_delta(double base, double other) {
  return base <= 0.0 ? 0.0 : 100.0 * (other - base) / base;
}

struct Row {
  std::string name;
  double base_us = 0.0;
  double other_us = 0.0;
  double delta_pct = 0.0;
};

std::string to_json(const std::vector<Row>& rows, double gate_pct,
                    bool gate_ok, double streaming_gate_pct,
                    bool streaming_ok) {
  std::string out = "{\n  \"benchmark\": \"perf_obs\",\n  \"machine\": ";
  out += bench::machine_json(1);
  out += ",\n  \"gate_pct\": " + std::to_string(gate_pct);
  out += ",\n  \"gate_ok\": ";
  out += gate_ok ? "true" : "false";
  out += ",\n  \"streaming_gate_pct\": " + std::to_string(streaming_gate_pct);
  out += ",\n  \"streaming_ok\": ";
  out += streaming_ok ? "true" : "false";
  out += ",\n  \"rows\": [\n";
  for (std::size_t k = 0; k < rows.size(); ++k) {
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "    {\"name\": \"%s\", \"base_us\": %.4f, "
                  "\"other_us\": %.4f, \"delta_pct\": %.2f}%s\n",
                  rows[k].name.c_str(), rows[k].base_us, rows[k].other_us,
                  rows[k].delta_pct, k + 1 < rows.size() ? "," : "");
    out += buf;
  }
  out += "  ]\n}\n";
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli("perf_obs",
                "Overhead contract of the tracing/metrics layer: disabled "
                "tax (gated at 2%), enabled tax, pipeline delta.");
  cli.add_flag("json", "", "write results as JSON to this path");
  cli.add_flag("min-ms", "200", "minimum wall time per measurement (ms)");
  cli.add_bool_flag("smoke", "short timings (CI sanity run)");
  if (!cli.parse(argc, argv)) {
    return 1;
  }
  const bool smoke = cli.get_bool("smoke");
  const double min_seconds =
      (smoke ? 50.0 : static_cast<double>(cli.get_int("min-ms"))) / 1000.0;
  const std::size_t min_reps = smoke ? 64 : 512;

#if !DSSLICE_OBS_ENABLED
  std::printf("perf_obs: observability compiled out (DSSLICE_OBS=OFF); "
              "macros are empty, nothing to measure\n");
  return 0;
#else
  std::vector<Row> rows;
  obs::set_enabled(false);

  // Warmup: ~100 ms of the kernel before any timed window, so the first
  // measurement does not absorb the frequency-governor ramp and cold
  // caches (the smoke windows are short enough for that to flip a gate).
  std::uint64_t seed = 0x9E3779B97F4A7C15ull;
  {
    const auto warm_until = Clock::now() + std::chrono::milliseconds(100);
    while (Clock::now() < warm_until) {
      g_sink = kernel_bare(++seed);
    }
  }

  // A/A noise floor: the bare kernel against itself. Any measured spread
  // here is scheduler/frequency noise, not code. Sampled again after the
  // gated measurement — one sample under-reports on machines whose noise
  // comes in bursts, and the gates scale with the worst observed.
  const auto [aa_first, aa_second] = time_per_call_pair(
      min_seconds, min_reps, [&] { g_sink = kernel_bare(++seed); },
      [&] { g_sink = kernel_bare(++seed); });
  double noise_pct = std::fabs(percent_delta(aa_first, aa_second));
  rows.push_back(Row{"kernel A/A (noise floor)", aa_first * 1e6,
                     aa_second * 1e6, percent_delta(aa_first, aa_second)});

  // 1. Disabled tax — the gated measurement. The true tax is a constant
  // (near zero); on a busy machine single samples carry one-sided noise
  // spikes an order larger, so the gated measurements retry up to three
  // times and keep the least-noisy sample (smallest |delta|), breaking
  // early once clearly inside the tightest floor.
  double bare_s = 0.0, off_s = 0.0, disabled_pct = 0.0;
  for (int attempt = 0; attempt < 3; ++attempt) {
    const auto [b, o] = time_per_call_pair(
        min_seconds, min_reps, [&] { g_sink = kernel_bare(++seed); },
        [&] { g_sink = kernel_instrumented(++seed); });
    const double pct = percent_delta(b, o);
    if (attempt == 0 || std::fabs(pct) < std::fabs(disabled_pct)) {
      bare_s = b;
      off_s = o;
      disabled_pct = pct;
    }
    if (disabled_pct <= 2.0) {
      break;
    }
  }
  rows.push_back(
      Row{"instrumented, tracing OFF vs bare", bare_s * 1e6, off_s * 1e6,
          disabled_pct});

  const auto [aa2_first, aa2_second] = time_per_call_pair(
      min_seconds, min_reps, [&] { g_sink = kernel_bare(++seed); },
      [&] { g_sink = kernel_bare(++seed); });
  noise_pct = std::max(noise_pct,
                       std::fabs(percent_delta(aa2_first, aa2_second)));

  // 2. Enabled tax — informational.
  obs::set_ring_capacity(1024);
  obs::reset();
  obs::set_enabled(true);
  const auto [bare2_s, on_s] = time_per_call_pair(
      min_seconds, min_reps, [&] { g_sink = kernel_bare(++seed); },
      [&] { g_sink = kernel_instrumented(++seed); });
  obs::set_enabled(false);
  rows.push_back(Row{"instrumented, tracing ON vs bare", bare2_s * 1e6,
                     on_s * 1e6, percent_delta(bare2_s, on_s)});
  obs::reset();

  // 3. Pipeline delta — a real (serial) experiment batch off vs on.
  ExperimentConfig config;
  config.generator.graph_count = smoke ? 32 : 256;
  config.generator.base_seed = 0x0B5;
  const auto run_batch_once = [&] {
    const ExperimentResult r = run_experiment_serial(config);
    g_sink = r.success.trials();
  };
  const auto [pipe_off_s, pipe_on_s] = time_per_call_pair(
      min_seconds, 4, run_batch_once,
      [&] {
        obs::set_enabled(true);
        run_batch_once();
        obs::set_enabled(false);
        obs::reset();
      });
  rows.push_back(Row{"pipeline batch, tracing OFF vs ON", pipe_off_s * 1e6,
                     pipe_on_s * 1e6, percent_delta(pipe_off_s, pipe_on_s)});

  // 4. Streaming tax — the second gated measurement: the same pipeline
  // batch with tracing ON throughout, without vs with a StreamSink
  // flushing every 10 ms (50x the sweep_runner default cadence, so the
  // periodic drain path is genuinely exercised). The two sides alternate
  // in rounds — a sink start/stop per batch would dominate, but per
  // ~100 ms phase it is noise — so clock/scheduler drift lands on both
  // sides. No obs::reset() between phases: the streaming contract assumes
  // monotone accumulators while a sink is attached, and the recorders do
  // identical work either way.
  obs::reset();
  obs::set_enabled(true);
  obs::StreamOptions stream_options;
  stream_options.trace_chunk_path = "perf_obs.stream.chunks.json";
  stream_options.metrics_delta_path = "perf_obs.stream.deltas.jsonl";
  stream_options.interval_ms = 10;
  // Each phase must span several flush intervals or the tick count per
  // on-phase quantizes to 0-or-1 and the smoke run turns into a coin flip.
  const double phase_seconds = std::max(min_seconds / 2.0, 0.06);
  const auto measure_phase = [&](double& elapsed, std::size_t& reps) {
    const auto t0 = Clock::now();
    double spent = 0.0;
    std::size_t phase_reps = 0;
    while (spent < phase_seconds || phase_reps < 2) {
      run_batch_once();
      ++phase_reps;
      spent = std::chrono::duration<double>(Clock::now() - t0).count();
    }
    elapsed += spent;
    reps += phase_reps;
  };
  const auto measure_streaming = [&] {
    double off_elapsed = 0.0, on_elapsed = 0.0;
    std::size_t off_reps = 0, on_reps = 0;
    for (int round = 0; round < 4; ++round) {
      measure_phase(off_elapsed, off_reps);
      obs::StreamSink sink(stream_options);
      sink.start();
      measure_phase(on_elapsed, on_reps);
      sink.stop();
    }
    return std::pair<double, double>{
        off_elapsed / static_cast<double>(off_reps),
        on_elapsed / static_cast<double>(on_reps)};
  };
  double stream_off_s = 0.0, stream_on_s = 0.0, streaming_pct = 0.0;
  for (int attempt = 0; attempt < 3; ++attempt) {  // same retry as gate 1
    const auto [o, w] = measure_streaming();
    const double pct = percent_delta(o, w);
    if (attempt == 0 || std::fabs(pct) < std::fabs(streaming_pct)) {
      stream_off_s = o;
      stream_on_s = w;
      streaming_pct = pct;
    }
    if (streaming_pct <= 5.0) {
      break;
    }
  }
  obs::set_enabled(false);
  obs::reset();
  std::remove(stream_options.trace_chunk_path.c_str());
  std::remove(stream_options.metrics_delta_path.c_str());
  rows.push_back(Row{"pipeline batch, tracing ON vs ON+streaming",
                     stream_off_s * 1e6, stream_on_s * 1e6, streaming_pct});

  // Gates: the disabled tax must vanish into max(2%, 2x the observed
  // noise); the streaming tax must stay under max(5%, same). The contract
  // numbers hold for full windows (scripts/bench.sh); --smoke windows are
  // too short to resolve 2% on a busy single core, so smoke doubles the
  // floors — it is a sanity gate, not the measurement of record.
  const double floor_scale = smoke ? 2.0 : 1.0;
  const double gate_pct = std::max(2.0 * floor_scale, 2.0 * noise_pct);
  const bool gate_ok = disabled_pct <= gate_pct;
  const double streaming_gate_pct =
      std::max(5.0 * floor_scale, 2.0 * noise_pct);
  const bool streaming_ok = streaming_pct <= streaming_gate_pct;

  Table table({"measurement", "base_us", "with_us", "delta"});
  for (const Row& row : rows) {
    char base[32], other[32], delta[32];
    std::snprintf(base, sizeof(base), "%.4f", row.base_us);
    std::snprintf(other, sizeof(other), "%.4f", row.other_us);
    std::snprintf(delta, sizeof(delta), "%+.2f%%", row.delta_pct);
    table.add_row({row.name, base, other, delta});
  }
  std::printf("== perf_obs — observability overhead ==\n\n%s\n",
              table.to_string(2).c_str());
  std::printf("disabled-tax gate: %.2f%% measured vs %.2f%% allowed — %s\n",
              disabled_pct, gate_pct, gate_ok ? "OK" : "FAIL");
  std::printf("streaming-tax gate: %.2f%% measured vs %.2f%% allowed — %s\n",
              streaming_pct, streaming_gate_pct,
              streaming_ok ? "OK" : "FAIL");

  const std::string json_path = cli.get_string("json");
  if (!json_path.empty()) {
    if (write_text_file(json_path, to_json(rows, gate_pct, gate_ok,
                                           streaming_gate_pct,
                                           streaming_ok))) {
      std::printf("JSON written to %s\n", json_path.c_str());
    } else {
      std::fprintf(stderr, "warning: could not write %s\n", json_path.c_str());
      return 1;
    }
  }
  return gate_ok && streaming_ok ? 0 : 1;
#endif
}
