// Ablation A13: multi-rate periodic workloads over a planning cycle (§3.3).
//
// Two independent randomly-generated applications run at different rates on
// one platform: component A at period T, component B at period 3T/2
// (hyperperiod 3T → three invocations of A, two of B). The planning-cycle
// expander unrolls the invocations; slicing then distributes each
// invocation's deadline and the EDF baseline schedules the whole cycle.
// Compared: PURE vs ADAPT-L success over the planning cycle, and the
// single-shot success of component A alone (the figure experiments'
// setting) as a reference for how much the rate mixing costs.
#include <cmath>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace dsslice;
  CliParser cli = bench::make_parser(
      "ablation_periodic",
      "A13: multi-rate periodic workloads over one planning cycle");
  cli.add_flag("olr", "0.8", "overall laxity ratio per component");
  if (!cli.parse(argc, argv)) {
    return 0;
  }
  bench::ObsScope obs_scope(cli);
  const auto graphs = static_cast<std::size_t>(cli.get_int("graphs"));

  GeneratorConfig gen;
  gen.platform.processor_count = 4;  // two interleaved apps need headroom
  gen.workload.olr = cli.get_double("olr");
  gen.workload.min_tasks = 20;  // two components ≈ one paper-size workload
  gen.workload.max_tasks = 30;
  gen.workload.min_depth = 5;
  gen.workload.max_depth = 6;
  gen.graph_count = graphs;
  gen.base_seed = static_cast<std::uint64_t>(cli.get_int("seed"));

  std::printf("== A13 — planning-cycle success over multi-rate workloads "
              "(m=%zu, OLR=%.2f, %zu cycles) ==\n\n",
              gen.platform.processor_count, gen.workload.olr, graphs);
  Table table({"metric", "single-shot A", "planning cycle A+B",
               "mean invocations"});
  struct Row {
    const char* label;
    MetricKind kind;
    bool temporal;
  };
  const Row rows[] = {
      {"PURE", MetricKind::kPure, false},
      {"ADAPT-L", MetricKind::kAdaptL, false},
      {"ADAPT-LT (temporal)", MetricKind::kAdaptL, true},
  };
  for (const Row& row : rows) {
    const MetricKind kind = row.kind;
    MetricParams params;
    params.temporal_parallel_sets = row.temporal;
    SuccessCounter single;
    SuccessCounter cycle;
    RunningStats invocations;
    for (std::size_t k = 0; k < graphs; ++k) {
      const Scenario sc = generate_scenario_at(gen, k);
      Xoshiro256 rng(derive_seed(gen.base_seed ^ 0x9E10D1C, k));
      Application comp_b = generate_application(gen.workload, sc.platform,
                                                rng);

      // Single-shot reference: component A alone.
      {
        const auto est =
            estimate_wcets(sc.application, WcetEstimation::kAverage);
        const auto a =
            run_slicing(sc.application, est, DeadlineMetric(kind, params),
                        sc.platform.processor_count());
        single.add(EdfListScheduler()
                       .run(sc.application, a, sc.platform)
                       .success);
      }

      // Multi-rate composition: T_A rounded so T_B = 3/2·T_A is integral
      // and both exceed the components' E-T-E deadlines (d <= T).
      Application comp_a = sc.application;  // copy for period annotation
      const Time d_a =
          comp_a.ete_deadline(comp_a.graph().output_nodes().front());
      const Time d_b =
          comp_b.ete_deadline(comp_b.graph().output_nodes().front());
      const Time base = std::max(d_a, d_b);
      const auto t_a = static_cast<Time>(
          2 * static_cast<long long>(std::ceil(base / 2.0) + 1));
      const Time t_b = 1.5 * t_a;
      for (NodeId v = 0; v < comp_a.task_count(); ++v) {
        comp_a.mutable_task(v).period = t_a;
      }
      for (NodeId v = 0; v < comp_b.task_count(); ++v) {
        comp_b.mutable_task(v).period = t_b;
      }
      const Application merged = merge_applications(comp_a, comp_b);
      const ExpandedApplication expanded = expand_planning_cycle(merged);
      invocations.add(static_cast<double>(expanded.app.task_count()) /
                      static_cast<double>(merged.task_count()));

      const auto est =
          estimate_wcets(expanded.app, WcetEstimation::kAverage);
      const auto a =
          run_slicing(expanded.app, est, DeadlineMetric(kind, params),
                      sc.platform.processor_count());
      cycle.add(
          EdfListScheduler().run(expanded.app, a, sc.platform).success);
    }
    table.add_row({row.label, format_percent(single.ratio(), 1),
                   format_percent(cycle.ratio(), 1),
                   format_fixed(invocations.mean(), 2)});
  }
  std::fputs(table.to_string().c_str(), stdout);
  std::printf("\n(three invocations of A interleave with two of B per "
              "hyperperiod; the cycle column schedules every invocation "
              "within one planning cycle)\n\n");
  return 0;
}
