// Figure 6 reproduction: ADAPT-L success ratio as a function of ETD for the
// three WCET estimation strategies, m = 3, OLR = 0.8.
//
// Shape target (§6.4): WCET-MAX loses its edge and falls below the other
// strategies as ETD grows past ~75% — with many long tasks, pessimistic
// estimates consume too much of the overall laxity from the short tasks.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace dsslice;
  CliParser cli = bench::make_parser(
      "fig6_wcet_etd",
      "Fig. 6: ADAPT-L success ratio vs ETD per WCET strategy (m = 3)");
  if (!cli.parse(argc, argv)) {
    return 0;
  }
  bench::ObsScope obs_scope(cli);
  ThreadPool pool = bench::make_pool(cli);
  ExperimentConfig base = bench::base_config(cli);
  base.generator.platform.processor_count = 3;
  base.technique = DistributionTechnique::kSlicingAdaptL;
  const SweepResult sweep = sweep_wcet_etd(
      base, {0.0, 0.25, 0.5, 0.75, 1.0}, pool, cli.get_bool("verbose"));
  bench::report(
      "Fig. 6 — ADAPT-L success ratio vs ETD per WCET estimation strategy "
      "(m=3, OLR=0.8)",
      sweep, cli);
  return 0;
}
