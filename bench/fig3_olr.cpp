// Figure 3 reproduction: success ratio as a function of the overall laxity
// ratio (OLR) on a three-processor system.
//
// The paper does not state the numeric OLR range; we sweep 0.5..1.5 which
// brackets the default 0.8 and exhibits the floor-to-ceiling transition of
// every metric. Shape targets (§6.2): success monotone non-decreasing in
// OLR; ADAPT-L dominates at every tightness; the adaptive/non-adaptive gap
// is largest for tight deadlines.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace dsslice;
  CliParser cli = bench::make_parser(
      "fig3_olr", "Fig. 3: success ratio vs OLR (m = 3)");
  if (!cli.parse(argc, argv)) {
    return 0;
  }
  bench::ObsScope obs_scope(cli);
  ThreadPool pool = bench::make_pool(cli);
  ExperimentConfig base = bench::base_config(cli);
  base.generator.platform.processor_count = 3;
  const SweepResult sweep = sweep_olr(
      base, {0.5, 0.6, 0.7, 0.8, 0.9, 1.0, 1.1, 1.2, 1.3, 1.4, 1.5}, pool,
      cli.get_bool("verbose"));
  bench::report("Fig. 3 — success ratio vs OLR (m=3, ETD=25%, CCR=0.1)",
                sweep, cli);
  return 0;
}
