// Dedicated harness for the SoA batch slicing kernel (batch/slice_kernel.hpp).
//
// Both engines run through the same BatchSliceKernel entry point, so the A/B
// is exactly the engine swap the sweep integration performs at runtime:
//  * reference: the scalar run_slicing pipeline per scenario (shared
//    workspace, warm graph-analysis cache — the pre-kernel hot path);
//  * lanes64: the SoA peel engine with incremental dirty-driven DP over
//    uint64 bitset work lists.
//
// Per size and per metric the harness asserts the two engines produce
// bit-identical windows, pass indices, stats and min-laxities (the kernel's
// core contract), asserts warm re-runs grow zero buffers, then times both
// and writes BENCH_slicing_batch.json. The ADAPT-L rows at n >= 128 must
// clear an absolute speedup floor (gates.lanes_speedup_floor) — a
// regression canary for the lane engine; it is deliberately below the
// headline 3x target, which is measured against the *cached scalar path*
// (a slower baseline than the reference engine here, which already enjoys
// batch staging) by perf_slicing's batch row and gated there by
// scripts/bench_compare.py. The canary floor is enforced here on
// uninstrumented builds and by bench_compare.py on fresh release runs.
#include <bit>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "dsslice/batch/slice_kernel.hpp"
#include "dsslice/dsslice.hpp"

#include "bench_common.hpp"

namespace {

using namespace dsslice;
using Clock = std::chrono::steady_clock;

// Sanitizer instrumentation inflates the two engines by different factors
// (the lanes engine's bitset walks shadow-check every word), so the absolute
// speedup floor is only meaningful on uninstrumented builds.
#if defined(__SANITIZE_ADDRESS__)
constexpr bool kInstrumented = true;
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
constexpr bool kInstrumented = true;
#else
constexpr bool kInstrumented = false;
#endif
#else
constexpr bool kInstrumented = false;
#endif

constexpr std::size_t kBatch = 32;          // scenarios per kernel pass
constexpr double kSpeedupFloor = 2.2;       // ADAPT-L lanes-vs-reference
constexpr std::size_t kFloorTasks = 128;    // floor applies at n >= this

/// Same shape rule as perf_slicing: depth ~ sqrt(n) so both depth and level
/// width grow with n, and the same seed so the two harnesses measure the
/// same scenario population.
GeneratorConfig sized_config(std::size_t tasks, std::size_t processors) {
  GeneratorConfig cfg;
  cfg.platform.processor_count = processors;
  cfg.workload.min_tasks = tasks;
  cfg.workload.max_tasks = tasks;
  const auto depth = static_cast<std::size_t>(
      std::lround(std::sqrt(static_cast<double>(tasks))));
  cfg.workload.min_depth = std::max<std::size_t>(2, depth);
  cfg.workload.max_depth = std::max<std::size_t>(2, depth);
  cfg.base_seed = 0xBE7C;
  return cfg;
}

template <typename F>
double time_per_call(double min_seconds, std::size_t min_reps, F&& body) {
  std::size_t reps = 0;
  double elapsed = 0.0;
  std::size_t batch = 1;
  while (elapsed < min_seconds || reps < min_reps) {
    const auto t0 = Clock::now();
    for (std::size_t i = 0; i < batch; ++i) {
      body();
    }
    elapsed += std::chrono::duration<double>(Clock::now() - t0).count();
    reps += batch;
    batch = std::min<std::size_t>(batch * 2, 1024);
  }
  return elapsed / static_cast<double>(reps);
}

std::uint64_t bits(double x) { return std::bit_cast<std::uint64_t>(x); }

/// Bitwise comparison of every result surface of two kernels over one batch.
bool kernels_identical(const BatchSliceKernel& a, const BatchSliceKernel& b) {
  if (a.size() != b.size()) {
    return false;
  }
  for (std::size_t k = 0; k < a.size(); ++k) {
    const DeadlineAssignment& wa = a.assignment(k);
    const DeadlineAssignment& wb = b.assignment(k);
    if (wa.windows.size() != wb.windows.size()) {
      return false;
    }
    for (std::size_t v = 0; v < wa.windows.size(); ++v) {
      if (bits(wa.windows[v].arrival) != bits(wb.windows[v].arrival) ||
          bits(wa.windows[v].deadline) != bits(wb.windows[v].deadline) ||
          wa.pass_of[v] != wb.pass_of[v]) {
        return false;
      }
    }
    const SlicingStats& sa = a.stats(k);
    const SlicingStats& sb = b.stats(k);
    if (sa.passes != sb.passes ||
        bits(sa.first_path_metric) != bits(sb.first_path_metric) ||
        sa.first_path_length != sb.first_path_length ||
        bits(sa.min_laxity) != bits(sb.min_laxity) ||
        sa.windows_feasible != sb.windows_feasible ||
        bits(a.outcome_min_laxity(k)) != bits(b.outcome_min_laxity(k))) {
      return false;
    }
  }
  return true;
}

struct MetricRow {
  std::string name;
  double reference_per_sec = 0.0;
  double lanes_per_sec = 0.0;
  bool identical = false;
  double speedup() const {
    return reference_per_sec > 0.0 ? lanes_per_sec / reference_per_sec : 0.0;
  }
};

struct SizeReport {
  std::size_t tasks = 0;
  std::vector<MetricRow> metrics;
  std::uint64_t steady_grow_events = ~std::uint64_t{0};
};

std::string fmt_num(double v) {
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%.6g", v);
  return buffer;
}

std::string to_json(const std::vector<SizeReport>& reports,
                    std::size_t processors, bool all_identical) {
  std::string out = "{\n";
  out += "  \"benchmark\": \"slicing-batch\",\n";
  out += "  \"processors\": " + std::to_string(processors) + ",\n";
  out += "  \"batch\": " + std::to_string(kBatch) + ",\n";
  out += "  \"machine\": " + bench::machine_json(1) + ",\n";
  out += std::string("  \"gates\": {\"identical\": ") +
         (all_identical ? "true" : "false") +
         ", \"lanes_speedup_floor\": " + fmt_num(kSpeedupFloor) +
         ", \"floor_tasks\": " + std::to_string(kFloorTasks) + "},\n";
  out += "  \"sizes\": [\n";
  for (std::size_t r = 0; r < reports.size(); ++r) {
    const SizeReport& s = reports[r];
    out += "    {\n";
    out += "      \"tasks\": " + std::to_string(s.tasks) + ",\n";
    out += "      \"steady_grow_events\": " +
           std::to_string(s.steady_grow_events) + ",\n";
    out += "      \"metrics\": [\n";
    for (std::size_t k = 0; k < s.metrics.size(); ++k) {
      const MetricRow& m = s.metrics[k];
      out += "        {\"metric\": \"" + m.name + "\", \"reference_per_sec\": " +
             fmt_num(m.reference_per_sec) + ", \"lanes_per_sec\": " +
             fmt_num(m.lanes_per_sec) + ", \"speedup\": " +
             fmt_num(m.speedup()) + std::string(", \"identical\": ") +
             (m.identical ? "true" : "false") + "}";
      out += (k + 1 < s.metrics.size()) ? ",\n" : "\n";
    }
    out += "      ]\n";
    out += "    }";
    out += (r + 1 < reports.size()) ? ",\n" : "\n";
  }
  out += "  ]\n}\n";
  return out;
}

SizeReport measure_size(std::size_t tasks, std::size_t processors,
                        double min_seconds) {
  SizeReport report;
  report.tasks = tasks;

  const GeneratorConfig cfg = sized_config(tasks, processors);
  std::vector<Scenario> scenarios;
  scenarios.reserve(kBatch);
  for (std::size_t s = 0; s < kBatch; ++s) {
    scenarios.push_back(generate_scenario_at(cfg, s));
    scenarios.back().application.analysis();  // warm the memoized cache
  }

  BatchSliceKernel reference;
  BatchSliceKernel lanes;
  for (const MetricKind kind : all_metric_kinds()) {
    MetricRow row;
    row.name = to_string(kind);

    BatchSliceConfig ref_cfg;
    ref_cfg.metric = kind;
    ref_cfg.lane_mode = BatchLaneMode::kReference;
    BatchSliceConfig lanes_cfg = ref_cfg;
    lanes_cfg.lane_mode = BatchLaneMode::kLanes64;

    // Equivalence gate first (also warms both kernels for the timed loops).
    reference.run(scenarios, ref_cfg);
    lanes.run(scenarios, lanes_cfg);
    row.identical = kernels_identical(reference, lanes);

    const double inv = 1.0 / static_cast<double>(kBatch);
    const double ref_s = inv * time_per_call(min_seconds, 3, [&] {
      reference.run(scenarios, ref_cfg);
      volatile double sink = reference.assignment(0).windows[0].deadline;
      (void)sink;
    });
    const double lanes_s = inv * time_per_call(min_seconds, 3, [&] {
      lanes.run(scenarios, lanes_cfg);
      volatile double sink = lanes.assignment(0).windows[0].deadline;
      (void)sink;
    });
    row.reference_per_sec = 1.0 / ref_s;
    row.lanes_per_sec = 1.0 / lanes_s;
    report.metrics.push_back(std::move(row));
  }

  // Zero-warm-allocation gate: after the timed loops every shape has been
  // seen, so one more run of each engine/metric must not grow anything.
  const std::uint64_t warm = lanes.grow_events() + reference.grow_events();
  for (const MetricKind kind : all_metric_kinds()) {
    BatchSliceConfig cfg_run;
    cfg_run.metric = kind;
    cfg_run.lane_mode = BatchLaneMode::kLanes64;
    lanes.run(scenarios, cfg_run);
    cfg_run.lane_mode = BatchLaneMode::kReference;
    reference.run(scenarios, cfg_run);
  }
  report.steady_grow_events =
      lanes.grow_events() + reference.grow_events() - warm;
  return report;
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli("perf_slicing_batch",
                "A/B benchmark of the SoA batch slicing kernel: scalar "
                "reference engine vs the lanes64 peel engine, with "
                "bit-identity and zero-allocation gates.");
  cli.add_flag("json", "", "write results as JSON to this path");
  cli.add_flag("processors", "3", "processor count m");
  cli.add_flag("min-ms", "150", "minimum wall time per measurement (ms)");
  cli.add_bool_flag("smoke", "tiny sizes / short timings (CI sanity run)");
  dsslice::obs::ObsCli::register_flags(cli);
  if (!cli.parse(argc, argv)) {
    return 1;
  }
  dsslice::obs::ObsCli obs_session(cli);
  const auto processors = static_cast<std::size_t>(cli.get_int("processors"));
  const bool smoke = cli.get_bool("smoke");
  const double min_seconds =
      (smoke ? 60.0 : static_cast<double>(cli.get_int("min-ms"))) / 1000.0;
  const std::vector<std::size_t> sizes =
      smoke ? std::vector<std::size_t>{64, 256}
            : std::vector<std::size_t>{64, 128, 256, 512};

  std::printf("perf_slicing_batch: m=%zu, batch=%zu, sizes:", processors,
              kBatch);
  for (const std::size_t n : sizes) {
    std::printf(" %zu", n);
  }
  std::printf("%s\n\n", smoke ? " (smoke)" : "");

  std::vector<SizeReport> reports;
  bool all_identical = true;
  bool gates_ok = true;
  for (const std::size_t n : sizes) {
    SizeReport r = measure_size(n, processors, min_seconds);
    std::printf("n=%4zu ", r.tasks);
    for (const MetricRow& m : r.metrics) {
      std::printf(" %s %.0f->%.0f/s (%.2fx%s)", m.name.c_str(),
                  m.reference_per_sec, m.lanes_per_sec, m.speedup(),
                  m.identical ? "" : " DIVERGED");
      all_identical = all_identical && m.identical;
      if (!kInstrumented && m.name == "ADAPT-L" && n >= kFloorTasks &&
          m.speedup() < kSpeedupFloor) {
        std::fprintf(stderr,
                     "FAIL: n=%zu ADAPT-L lanes speedup %.2fx below the "
                     "%.1fx floor\n",
                     n, m.speedup(), kSpeedupFloor);
        gates_ok = false;
      }
    }
    std::printf("  grow=%llu\n",
                static_cast<unsigned long long>(r.steady_grow_events));
    if (r.steady_grow_events != 0) {
      gates_ok = false;
    }
    reports.push_back(std::move(r));
  }

  if (!all_identical) {
    std::fprintf(stderr,
                 "FAIL: lanes engine diverged from the reference engine\n");
  } else {
    std::printf("\nlanes64 bit-identical to reference on every row: OK\n");
  }
  gates_ok = gates_ok && all_identical;
  if (!gates_ok) {
    std::fprintf(stderr, "FAIL: batch kernel gates violated\n");
  }

  const std::string json_path = cli.get_string("json");
  if (!json_path.empty()) {
    if (write_text_file(json_path,
                        to_json(reports, processors, all_identical))) {
      std::printf("JSON written to %s\n", json_path.c_str());
    } else {
      std::fprintf(stderr, "warning: could not write %s\n", json_path.c_str());
      return 1;
    }
  }
  obs_session.finish();
  return gates_ok ? 0 : 1;
}
