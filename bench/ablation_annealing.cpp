// Ablation A11: simulated-annealing mapping optimization vs greedy EDF.
//
// For tightly-constrained workloads, how many task sets that the greedy
// list scheduler fails on become schedulable when the task→processor
// mapping is annealed ([15]-style search)? And how much extra lateness
// margin does annealing buy on already-feasible sets?
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace dsslice;
  CliParser cli = bench::make_parser(
      "ablation_annealing", "A11: annealed mapping vs greedy EDF placement");
  cli.add_flag("olr", "0.6", "overall laxity ratio (tight region)");
  cli.add_flag("iterations", "800", "annealing iterations per task set");
  if (!cli.parse(argc, argv)) {
    return 0;
  }
  bench::ObsScope obs_scope(cli);
  const auto graphs = static_cast<std::size_t>(cli.get_int("graphs"));

  GeneratorConfig gen;
  gen.platform.processor_count = 3;
  gen.workload.olr = cli.get_double("olr");
  gen.graph_count = graphs;
  gen.base_seed = static_cast<std::uint64_t>(cli.get_int("seed"));

  AnnealingOptions anneal;
  anneal.iterations = static_cast<std::size_t>(cli.get_int("iterations"));

  std::printf("== A11 — annealed mapping vs greedy EDF "
              "(m=3, OLR=%.2f, %zu graphs, %zu iterations) ==\n\n",
              gen.workload.olr, graphs, anneal.iterations);
  Table table({"metric", "greedy", "annealed", "repaired",
               "mean margin gain"});
  for (const MetricKind kind :
       {MetricKind::kNorm, MetricKind::kAdaptL}) {
    SuccessCounter greedy_ok;
    SuccessCounter annealed_ok;
    std::size_t repaired = 0;
    RunningStats margin_gain;
    for (std::size_t k = 0; k < graphs; ++k) {
      const Scenario sc = generate_scenario_at(gen, k);
      const auto est =
          estimate_wcets(sc.application, WcetEstimation::kAverage);
      const auto a = run_slicing(sc.application, est, DeadlineMetric(kind),
                                 sc.platform.processor_count());
      SchedulerOptions lateness_mode;
      lateness_mode.abort_on_miss = false;
      const auto greedy = EdfListScheduler(lateness_mode)
                              .run(sc.application, a, sc.platform);
      const double greedy_energy = max_lateness(greedy.schedule, a);
      AnnealingOptions options = anneal;
      options.seed = derive_seed(gen.base_seed, k);
      const AnnealingResult annealed =
          anneal_schedule(sc.application, a, sc.platform, options);
      const bool g_ok = greedy_energy <= 0.0;
      const bool a_ok = annealed.energy <= 0.0;
      greedy_ok.add(g_ok);
      annealed_ok.add(a_ok);
      repaired += (!g_ok && a_ok) ? 1 : 0;
      margin_gain.add(greedy_energy - annealed.energy);
    }
    table.add_row({to_string(kind), format_percent(greedy_ok.ratio(), 1),
                   format_percent(annealed_ok.ratio(), 1),
                   std::to_string(repaired),
                   format_fixed(margin_gain.mean(), 2)});
  }
  std::fputs(table.to_string().c_str(), stdout);
  std::printf("\n('repaired' = task sets infeasible under greedy placement "
              "but feasible after annealing the mapping; margin gain is the "
              "max-lateness improvement in time units)\n\n");
  return 0;
}
