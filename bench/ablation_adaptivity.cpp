// Ablation A1: sensitivity of the adaptive metrics to their adaptivity
// factors k_G and k_L (paper §7.1: "there exists no overall best value").
//
// Two sweeps at the default operating point (m = 3, OLR = 0.8, ETD = 25%):
//   * ADAPT-G success ratio vs k_G;
//   * ADAPT-L success ratio vs k_L.
// Findings this bench documents: ADAPT-L peaks at the paper's default
// k_L = 0.2; ADAPT-G's paper default k_G = 1.5 is past our harness's
// optimum (~0.3–0.75) — with a moderate k_G the paper's claim that the
// adaptive metrics beat the non-adaptive ones holds here as well (the
// PURE/NORM reference rows are printed for comparison).
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace dsslice;
  CliParser cli = bench::make_parser(
      "ablation_adaptivity",
      "A1: sensitivity to the adaptivity factors k_G / k_L");
  if (!cli.parse(argc, argv)) {
    return 0;
  }
  bench::ObsScope obs_scope(cli);
  ThreadPool pool = bench::make_pool(cli);
  ExperimentConfig base = bench::base_config(cli);
  base.generator.platform.processor_count = 3;

  // Reference points: the non-adaptive metrics at the same operating point.
  for (const DistributionTechnique t : {DistributionTechnique::kSlicingPure,
                                        DistributionTechnique::kSlicingNorm}) {
    ExperimentConfig c = base;
    c.technique = t;
    const ExperimentResult r = run_experiment(c, pool);
    std::printf("reference %-12s success %s\n", to_string(t).c_str(),
                format_percent(r.success_ratio(), 1).c_str());
  }
  std::printf("\n");

  {
    const std::vector<SeriesSpec> specs{
        {"ADAPT-G", [base](double k) {
           ExperimentConfig c = base;
           c.technique = DistributionTechnique::kSlicingAdaptG;
           c.metric_params.k_global = k;
           return c;
         }}};
    const SweepResult sweep =
        run_sweep("k_G", {0.1, 0.25, 0.5, 0.75, 1.0, 1.25, 1.5, 2.0}, specs,
                  pool, cli.get_bool("verbose"));
    bench::report("A1a — ADAPT-G success ratio vs k_G (paper default 1.5)",
                  sweep, cli);
  }
  {
    const std::vector<SeriesSpec> specs{
        {"ADAPT-L", [base](double k) {
           ExperimentConfig c = base;
           c.technique = DistributionTechnique::kSlicingAdaptL;
           c.metric_params.k_local = k;
           return c;
         }}};
    const SweepResult sweep = run_sweep(
        "k_L", {0.025, 0.05, 0.1, 0.2, 0.4, 0.6, 0.8}, specs, pool,
        cli.get_bool("verbose"));
    bench::report("A1b — ADAPT-L success ratio vs k_L (paper default 0.2)",
                  sweep, cli);
  }
  return 0;
}
