// Graceful-degradation study (docs/ROBUSTNESS.md): the four metrics
// dispatched under execution-time overruns on *imprecise* workloads, where
// every task carries an optional part a degraded-mode policy may shed.
//
// Sweeps overrun factor × optional fraction for every metric × recovery
// policy and reports the success-ratio + quality-ratio surface: at each
// point, the fraction of E-T-E deadlines met and the fraction of optional
// work that still ran at full precision (the imprecise-scheduling quality
// measure). The printed verdict checks the headline claim: on workloads
// with optional parts there is an overrun range where shed-optional meets
// strictly more E-T-E deadlines than both the do-nothing baseline and
// migrate — graceful quality loss buys hard-deadline survival.
//
// Every row averages over --replicates independent seed replicates (≥5 by
// default) so no cell reflects a single fixed-seed batch. --json writes the
// surface as BENCH_degradation.json-style provenance-stamped JSON.
#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_common.hpp"

namespace {

using namespace dsslice;

std::string json_num(double v) {
  return std::isfinite(v) ? format_fixed(v, 6) : "null";
}

std::string to_json(const DegradationSurface& surface,
                    const RobustnessConfig& base, double threshold,
                    std::size_t threads) {
  std::string out = "{\n";
  out += "  \"bench\": \"fig_degradation\",\n";
  out += "  \"machine\": " + bench::machine_json(threads) + ",\n";
  out += "  \"config\": {\"graphs\": " +
         std::to_string(base.base.generator.graph_count) +
         ", \"replicates\": " + std::to_string(base.seed_replicates) +
         ", \"overrun_probability\": " +
         json_num(base.faults.overrun_probability) +
         ", \"miss_threshold\": " + json_num(threshold) + "},\n";
  out += "  \"series\": [\n";
  for (std::size_t s = 0; s < surface.series.size(); ++s) {
    const DegradationSeries& series = surface.series[s];
    out += "    {\"name\": \"" + series.name + "\", \"cells\": [\n";
    for (std::size_t c = 0; c < series.cells.size(); ++c) {
      const DegradationCell& cell = series.cells[c];
      out += "      {\"overrun_factor\": " + json_num(cell.overrun_factor) +
             ", \"optional_fraction\": " + json_num(cell.optional_fraction) +
             ", \"success_ratio\": " + json_num(cell.success_ratio) +
             ", \"ci95\": " + json_num(cell.ci95) +
             ", \"quality_ratio\": " + json_num(cell.quality) +
             ", \"shed_tasks\": " + std::to_string(cell.shed_tasks) +
             ", \"degraded_completions\": " +
             std::to_string(cell.degraded_completions) + "}";
      out += c + 1 < series.cells.size() ? ",\n" : "\n";
    }
    out += "    ]}";
    out += s + 1 < surface.series.size() ? ",\n" : "\n";
  }
  out += "  ],\n";
  out += "  \"breakdown\": [\n";
  for (std::size_t fi = 0; fi < surface.fractions.size(); ++fi) {
    const auto points = breakdown_overrun_factors(
        degradation_row_as_sweep(surface, fi), threshold);
    for (std::size_t p = 0; p < points.size(); ++p) {
      out += "    {\"series\": \"" + points[p].series +
             "\", \"optional_fraction\": " + json_num(surface.fractions[fi]) +
             ", \"factor\": " + json_num(points[p].factor) +
             ", \"broke\": " + (points[p].broke ? "true" : "false") + "}";
      const bool last =
          fi + 1 == surface.fractions.size() && p + 1 == points.size();
      out += last ? "\n" : ",\n";
    }
  }
  out += "  ],\n";
  out += "  \"scenarios\": " + std::to_string(surface.scenarios) + ",\n";
  out += "  \"wall_seconds\": " + json_num(surface.wall_seconds) + "\n";
  out += "}\n";
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dsslice;
  CliParser cli = bench::make_parser(
      "fig_degradation",
      "Graceful degradation: success + quality surface over overrun factor "
      "× optional fraction, per metric and recovery policy");
  cli.add_flag("miss-threshold", "0.1",
               "E-T-E miss ratio defining the breakdown factor");
  cli.add_flag("overrun-probability", "0.35",
               "per-task probability of an execution-time overrun");
  cli.add_flag("replicates", "5",
               "independent seed replicates averaged into every cell");
  cli.add_flag("json", "", "write the surface as JSON to this path");
  cli.add_bool_flag("smoke", "tiny batch / coarse grid (CI sanity run)");
  if (!cli.parse(argc, argv)) {
    return 0;
  }
  bench::ObsScope obs_scope(cli);
  ThreadPool pool = bench::make_pool(cli);
  const bool verbose = cli.get_bool("verbose");
  const bool smoke = cli.get_bool("smoke");
  const double threshold = cli.get_double("miss-threshold");

  RobustnessConfig base;
  base.base = bench::base_config(cli);
  // A surface costs |metrics| × |policies| × |fractions| × |factors| full
  // robustness batches; an eighth of the paper batch per cell (× the seed
  // replicates) keeps the CI useful at tractable cost.
  base.base.generator.graph_count = std::max<std::size_t>(
      1, base.base.generator.graph_count / (smoke ? 64 : 8));
  base.base.generator.platform.processor_count = 3;
  base.faults.scope = OverrunScope::kUniform;
  base.faults.overrun_probability = cli.get_double("overrun-probability");
  base.faults.seed = 0xDE64ADE;
  base.seed_replicates = std::max<std::size_t>(
      1, smoke ? 2 : static_cast<std::size_t>(cli.get_int("replicates")));

  const std::vector<DistributionTechnique> techniques = {
      DistributionTechnique::kSlicingPure,
      DistributionTechnique::kSlicingNorm,
      DistributionTechnique::kSlicingAdaptG,
      DistributionTechnique::kSlicingAdaptL,
  };
  const std::vector<RecoveryPolicy> policies = {
      RecoveryPolicy::kNone, RecoveryPolicy::kMigrate,
      RecoveryPolicy::kShedOptional, RecoveryPolicy::kDegradeThenMigrate};
  const std::vector<double> factors =
      smoke ? std::vector<double>{1.0, 2.0}
            : std::vector<double>{1.0, 1.5, 2.0, 2.5, 3.0};
  const std::vector<double> fractions =
      smoke ? std::vector<double>{0.0, 0.5}
            : std::vector<double>{0.0, 0.25, 0.5};

  std::printf("== Graceful degradation — success (quality) over overrun "
              "factor × optional fraction%s ==\n",
              smoke ? " (smoke)" : "");
  std::printf("   (m=3, overrun probability %.2f, %zu graphs × %zu seed "
              "replicates per cell)\n\n",
              base.faults.overrun_probability,
              base.base.generator.graph_count, base.seed_replicates);

  const DegradationSurface surface = sweep_degradation(
      base, techniques, policies, factors, fractions, pool, verbose);

  std::fputs(format_degradation_table(surface).c_str(), stdout);

  // Breakdown factor per optional-fraction row (the precise row doubles as
  // the fig_robustness baseline).
  for (std::size_t fi = 0; fi < surface.fractions.size(); ++fi) {
    std::printf("\noptional fraction %.2f:\n", surface.fractions[fi]);
    std::fputs(format_breakdown_table(
                   breakdown_overrun_factors(
                       degradation_row_as_sweep(surface, fi), threshold),
                   threshold)
                   .c_str(),
               stdout);
  }

  // Headline verdict: on imprecise rows (optional fraction > 0) there must
  // be a metric and an overrun factor where shed-optional meets strictly
  // more E-T-E deadlines than BOTH none and migrate; and shed-optional must
  // never lose materially to either anywhere.
  const std::size_t stride = surface.factors.size();
  const auto find_series = [&](const std::string& name)
      -> const DegradationSeries& {
    for (const DegradationSeries& s : surface.series) {
      if (s.name == name) {
        return s;
      }
    }
    std::fprintf(stderr, "missing series %s\n", name.c_str());
    std::abort();
  };
  bool strictly_better_somewhere = false;
  bool never_loses = true;
  for (const DistributionTechnique t : techniques) {
    const DegradationSeries& none = find_series(to_string(t) + "/none");
    const DegradationSeries& migrate = find_series(to_string(t) + "/migrate");
    const DegradationSeries& shed =
        find_series(to_string(t) + "/shed-optional");
    for (std::size_t fi = 0; fi < surface.fractions.size(); ++fi) {
      if (surface.fractions[fi] <= 0.0) {
        continue;  // precise row: shedding has nothing to reclaim
      }
      for (std::size_t xi = 0; xi < stride; ++xi) {
        const std::size_t c = fi * stride + xi;
        const double s = shed.cells[c].success_ratio;
        const double baseline = std::max(none.cells[c].success_ratio,
                                         migrate.cells[c].success_ratio);
        if (s > baseline + 1e-12) {
          strictly_better_somewhere = true;
        }
        if (s < baseline - 0.02) {
          never_loses = false;
          std::printf("  !! %s: shed-optional trails by %.4f at "
                      "f=%.2f x=%.2f\n",
                      to_string(t).c_str(), baseline - s,
                      surface.fractions[fi], surface.factors[xi]);
        }
      }
    }
  }
  std::printf("\nverdict: shed-optional %s none/migrate on imprecise "
              "workloads (%s materially losing anywhere)\n",
              strictly_better_somewhere ? "beats" : "does NOT beat",
              never_loses ? "without" : "while");

  std::printf("\n%zu scenarios in %.2f s (%.0f scenarios/sec)\n",
              surface.scenarios, surface.wall_seconds,
              surface.wall_seconds > 0.0
                  ? static_cast<double>(surface.scenarios) /
                        surface.wall_seconds
                  : 0.0);

  const std::string json_path = cli.get_string("json");
  if (!json_path.empty()) {
    const std::string json = to_json(
        surface, base, threshold,
        static_cast<std::size_t>(cli.get_int("threads")));
    if (write_text_file(json_path, json)) {
      std::printf("JSON written to %s\n", json_path.c_str());
    } else {
      std::fprintf(stderr, "warning: could not write %s\n", json_path.c_str());
      return 1;
    }
  }
  // The smoke grid is too small to certify the verdict; full runs fail the
  // exit code when the headline claim does not hold.
  return strictly_better_somewhere || smoke ? 0 : 2;
}
