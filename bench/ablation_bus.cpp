// Ablation A8: nominal vs contention-simulated shared bus.
//
// The paper's architecture model charges each cross-processor message a
// *nominal* worst-case delay and lets transfers overlap freely (the bound
// is assumed to absorb arbitration). This bench replaces the assumption
// with an explicit time-multiplexed bus: every transfer reserves an
// exclusive slot, serialized against all traffic. Sweeping the CCR shows
// how far the nominal model's conclusions carry as the bus saturates.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace dsslice;
  CliParser cli = bench::make_parser(
      "ablation_bus", "A8: nominal vs contention-simulated shared bus");
  if (!cli.parse(argc, argv)) {
    return 0;
  }
  bench::ObsScope obs_scope(cli);
  ThreadPool pool = bench::make_pool(cli);
  ExperimentConfig base = bench::base_config(cli);
  base.generator.platform.processor_count = 3;
  base.technique = DistributionTechnique::kSlicingAdaptL;

  std::vector<SeriesSpec> specs;
  for (const bool contended : {false, true}) {
    specs.push_back(SeriesSpec{
        contended ? "ADAPT-L/bus-contention" : "ADAPT-L/nominal",
        [base, contended](double ccr) {
          ExperimentConfig c = base;
          c.scheduler.simulate_bus_contention = contended;
          c.generator.workload.ccr = ccr;
          return c;
        }});
  }
  const SweepResult sweep =
      run_sweep("CCR", {0.0, 0.05, 0.1, 0.25, 0.5, 1.0}, specs, pool,
                cli.get_bool("verbose"));
  bench::report(
      "A8 — ADAPT-L success ratio vs CCR under nominal vs simulated bus "
      "contention (m=3, OLR=0.8)",
      sweep, cli);
  return 0;
}
