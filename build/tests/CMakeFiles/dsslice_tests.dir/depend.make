# Empty dependencies file for dsslice_tests.
# This may be replaced when dependencies are built.
