
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_anchors.cpp" "tests/CMakeFiles/dsslice_tests.dir/test_anchors.cpp.o" "gcc" "tests/CMakeFiles/dsslice_tests.dir/test_anchors.cpp.o.d"
  "/root/repo/tests/test_annealing.cpp" "tests/CMakeFiles/dsslice_tests.dir/test_annealing.cpp.o" "gcc" "tests/CMakeFiles/dsslice_tests.dir/test_annealing.cpp.o.d"
  "/root/repo/tests/test_application.cpp" "tests/CMakeFiles/dsslice_tests.dir/test_application.cpp.o" "gcc" "tests/CMakeFiles/dsslice_tests.dir/test_application.cpp.o.d"
  "/root/repo/tests/test_baselines.cpp" "tests/CMakeFiles/dsslice_tests.dir/test_baselines.cpp.o" "gcc" "tests/CMakeFiles/dsslice_tests.dir/test_baselines.cpp.o.d"
  "/root/repo/tests/test_branch_and_bound.cpp" "tests/CMakeFiles/dsslice_tests.dir/test_branch_and_bound.cpp.o" "gcc" "tests/CMakeFiles/dsslice_tests.dir/test_branch_and_bound.cpp.o.d"
  "/root/repo/tests/test_bus_contention.cpp" "tests/CMakeFiles/dsslice_tests.dir/test_bus_contention.cpp.o" "gcc" "tests/CMakeFiles/dsslice_tests.dir/test_bus_contention.cpp.o.d"
  "/root/repo/tests/test_cli.cpp" "tests/CMakeFiles/dsslice_tests.dir/test_cli.cpp.o" "gcc" "tests/CMakeFiles/dsslice_tests.dir/test_cli.cpp.o.d"
  "/root/repo/tests/test_closure.cpp" "tests/CMakeFiles/dsslice_tests.dir/test_closure.cpp.o" "gcc" "tests/CMakeFiles/dsslice_tests.dir/test_closure.cpp.o.d"
  "/root/repo/tests/test_clustering.cpp" "tests/CMakeFiles/dsslice_tests.dir/test_clustering.cpp.o" "gcc" "tests/CMakeFiles/dsslice_tests.dir/test_clustering.cpp.o.d"
  "/root/repo/tests/test_critical_path.cpp" "tests/CMakeFiles/dsslice_tests.dir/test_critical_path.cpp.o" "gcc" "tests/CMakeFiles/dsslice_tests.dir/test_critical_path.cpp.o.d"
  "/root/repo/tests/test_cross_scheduler_properties.cpp" "tests/CMakeFiles/dsslice_tests.dir/test_cross_scheduler_properties.cpp.o" "gcc" "tests/CMakeFiles/dsslice_tests.dir/test_cross_scheduler_properties.cpp.o.d"
  "/root/repo/tests/test_diagnosis.cpp" "tests/CMakeFiles/dsslice_tests.dir/test_diagnosis.cpp.o" "gcc" "tests/CMakeFiles/dsslice_tests.dir/test_diagnosis.cpp.o.d"
  "/root/repo/tests/test_dispatch_scheduler.cpp" "tests/CMakeFiles/dsslice_tests.dir/test_dispatch_scheduler.cpp.o" "gcc" "tests/CMakeFiles/dsslice_tests.dir/test_dispatch_scheduler.cpp.o.d"
  "/root/repo/tests/test_dot.cpp" "tests/CMakeFiles/dsslice_tests.dir/test_dot.cpp.o" "gcc" "tests/CMakeFiles/dsslice_tests.dir/test_dot.cpp.o.d"
  "/root/repo/tests/test_edf_scheduler.cpp" "tests/CMakeFiles/dsslice_tests.dir/test_edf_scheduler.cpp.o" "gcc" "tests/CMakeFiles/dsslice_tests.dir/test_edf_scheduler.cpp.o.d"
  "/root/repo/tests/test_experiment.cpp" "tests/CMakeFiles/dsslice_tests.dir/test_experiment.cpp.o" "gcc" "tests/CMakeFiles/dsslice_tests.dir/test_experiment.cpp.o.d"
  "/root/repo/tests/test_feasibility.cpp" "tests/CMakeFiles/dsslice_tests.dir/test_feasibility.cpp.o" "gcc" "tests/CMakeFiles/dsslice_tests.dir/test_feasibility.cpp.o.d"
  "/root/repo/tests/test_generator.cpp" "tests/CMakeFiles/dsslice_tests.dir/test_generator.cpp.o" "gcc" "tests/CMakeFiles/dsslice_tests.dir/test_generator.cpp.o.d"
  "/root/repo/tests/test_graph_algorithms.cpp" "tests/CMakeFiles/dsslice_tests.dir/test_graph_algorithms.cpp.o" "gcc" "tests/CMakeFiles/dsslice_tests.dir/test_graph_algorithms.cpp.o.d"
  "/root/repo/tests/test_graph_properties.cpp" "tests/CMakeFiles/dsslice_tests.dir/test_graph_properties.cpp.o" "gcc" "tests/CMakeFiles/dsslice_tests.dir/test_graph_properties.cpp.o.d"
  "/root/repo/tests/test_interconnect.cpp" "tests/CMakeFiles/dsslice_tests.dir/test_interconnect.cpp.o" "gcc" "tests/CMakeFiles/dsslice_tests.dir/test_interconnect.cpp.o.d"
  "/root/repo/tests/test_iterative.cpp" "tests/CMakeFiles/dsslice_tests.dir/test_iterative.cpp.o" "gcc" "tests/CMakeFiles/dsslice_tests.dir/test_iterative.cpp.o.d"
  "/root/repo/tests/test_jitter.cpp" "tests/CMakeFiles/dsslice_tests.dir/test_jitter.cpp.o" "gcc" "tests/CMakeFiles/dsslice_tests.dir/test_jitter.cpp.o.d"
  "/root/repo/tests/test_metrics.cpp" "tests/CMakeFiles/dsslice_tests.dir/test_metrics.cpp.o" "gcc" "tests/CMakeFiles/dsslice_tests.dir/test_metrics.cpp.o.d"
  "/root/repo/tests/test_paper_shapes.cpp" "tests/CMakeFiles/dsslice_tests.dir/test_paper_shapes.cpp.o" "gcc" "tests/CMakeFiles/dsslice_tests.dir/test_paper_shapes.cpp.o.d"
  "/root/repo/tests/test_planning_cycle.cpp" "tests/CMakeFiles/dsslice_tests.dir/test_planning_cycle.cpp.o" "gcc" "tests/CMakeFiles/dsslice_tests.dir/test_planning_cycle.cpp.o.d"
  "/root/repo/tests/test_platform.cpp" "tests/CMakeFiles/dsslice_tests.dir/test_platform.cpp.o" "gcc" "tests/CMakeFiles/dsslice_tests.dir/test_platform.cpp.o.d"
  "/root/repo/tests/test_preemptive.cpp" "tests/CMakeFiles/dsslice_tests.dir/test_preemptive.cpp.o" "gcc" "tests/CMakeFiles/dsslice_tests.dir/test_preemptive.cpp.o.d"
  "/root/repo/tests/test_quality.cpp" "tests/CMakeFiles/dsslice_tests.dir/test_quality.cpp.o" "gcc" "tests/CMakeFiles/dsslice_tests.dir/test_quality.cpp.o.d"
  "/root/repo/tests/test_report.cpp" "tests/CMakeFiles/dsslice_tests.dir/test_report.cpp.o" "gcc" "tests/CMakeFiles/dsslice_tests.dir/test_report.cpp.o.d"
  "/root/repo/tests/test_resources.cpp" "tests/CMakeFiles/dsslice_tests.dir/test_resources.cpp.o" "gcc" "tests/CMakeFiles/dsslice_tests.dir/test_resources.cpp.o.d"
  "/root/repo/tests/test_rng.cpp" "tests/CMakeFiles/dsslice_tests.dir/test_rng.cpp.o" "gcc" "tests/CMakeFiles/dsslice_tests.dir/test_rng.cpp.o.d"
  "/root/repo/tests/test_runner.cpp" "tests/CMakeFiles/dsslice_tests.dir/test_runner.cpp.o" "gcc" "tests/CMakeFiles/dsslice_tests.dir/test_runner.cpp.o.d"
  "/root/repo/tests/test_schedule.cpp" "tests/CMakeFiles/dsslice_tests.dir/test_schedule.cpp.o" "gcc" "tests/CMakeFiles/dsslice_tests.dir/test_schedule.cpp.o.d"
  "/root/repo/tests/test_schedule_export.cpp" "tests/CMakeFiles/dsslice_tests.dir/test_schedule_export.cpp.o" "gcc" "tests/CMakeFiles/dsslice_tests.dir/test_schedule_export.cpp.o.d"
  "/root/repo/tests/test_scheduler_networks.cpp" "tests/CMakeFiles/dsslice_tests.dir/test_scheduler_networks.cpp.o" "gcc" "tests/CMakeFiles/dsslice_tests.dir/test_scheduler_networks.cpp.o.d"
  "/root/repo/tests/test_scheduler_properties.cpp" "tests/CMakeFiles/dsslice_tests.dir/test_scheduler_properties.cpp.o" "gcc" "tests/CMakeFiles/dsslice_tests.dir/test_scheduler_properties.cpp.o.d"
  "/root/repo/tests/test_serialization.cpp" "tests/CMakeFiles/dsslice_tests.dir/test_serialization.cpp.o" "gcc" "tests/CMakeFiles/dsslice_tests.dir/test_serialization.cpp.o.d"
  "/root/repo/tests/test_slicing.cpp" "tests/CMakeFiles/dsslice_tests.dir/test_slicing.cpp.o" "gcc" "tests/CMakeFiles/dsslice_tests.dir/test_slicing.cpp.o.d"
  "/root/repo/tests/test_slicing_edge_cases.cpp" "tests/CMakeFiles/dsslice_tests.dir/test_slicing_edge_cases.cpp.o" "gcc" "tests/CMakeFiles/dsslice_tests.dir/test_slicing_edge_cases.cpp.o.d"
  "/root/repo/tests/test_slicing_properties.cpp" "tests/CMakeFiles/dsslice_tests.dir/test_slicing_properties.cpp.o" "gcc" "tests/CMakeFiles/dsslice_tests.dir/test_slicing_properties.cpp.o.d"
  "/root/repo/tests/test_slicing_trace.cpp" "tests/CMakeFiles/dsslice_tests.dir/test_slicing_trace.cpp.o" "gcc" "tests/CMakeFiles/dsslice_tests.dir/test_slicing_trace.cpp.o.d"
  "/root/repo/tests/test_stats.cpp" "tests/CMakeFiles/dsslice_tests.dir/test_stats.cpp.o" "gcc" "tests/CMakeFiles/dsslice_tests.dir/test_stats.cpp.o.d"
  "/root/repo/tests/test_string_util.cpp" "tests/CMakeFiles/dsslice_tests.dir/test_string_util.cpp.o" "gcc" "tests/CMakeFiles/dsslice_tests.dir/test_string_util.cpp.o.d"
  "/root/repo/tests/test_sweeps.cpp" "tests/CMakeFiles/dsslice_tests.dir/test_sweeps.cpp.o" "gcc" "tests/CMakeFiles/dsslice_tests.dir/test_sweeps.cpp.o.d"
  "/root/repo/tests/test_task.cpp" "tests/CMakeFiles/dsslice_tests.dir/test_task.cpp.o" "gcc" "tests/CMakeFiles/dsslice_tests.dir/test_task.cpp.o.d"
  "/root/repo/tests/test_task_graph.cpp" "tests/CMakeFiles/dsslice_tests.dir/test_task_graph.cpp.o" "gcc" "tests/CMakeFiles/dsslice_tests.dir/test_task_graph.cpp.o.d"
  "/root/repo/tests/test_temporal_parallel_sets.cpp" "tests/CMakeFiles/dsslice_tests.dir/test_temporal_parallel_sets.cpp.o" "gcc" "tests/CMakeFiles/dsslice_tests.dir/test_temporal_parallel_sets.cpp.o.d"
  "/root/repo/tests/test_thread_pool.cpp" "tests/CMakeFiles/dsslice_tests.dir/test_thread_pool.cpp.o" "gcc" "tests/CMakeFiles/dsslice_tests.dir/test_thread_pool.cpp.o.d"
  "/root/repo/tests/test_time.cpp" "tests/CMakeFiles/dsslice_tests.dir/test_time.cpp.o" "gcc" "tests/CMakeFiles/dsslice_tests.dir/test_time.cpp.o.d"
  "/root/repo/tests/test_validation.cpp" "tests/CMakeFiles/dsslice_tests.dir/test_validation.cpp.o" "gcc" "tests/CMakeFiles/dsslice_tests.dir/test_validation.cpp.o.d"
  "/root/repo/tests/test_wcet_estimate.cpp" "tests/CMakeFiles/dsslice_tests.dir/test_wcet_estimate.cpp.o" "gcc" "tests/CMakeFiles/dsslice_tests.dir/test_wcet_estimate.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dsslice.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
