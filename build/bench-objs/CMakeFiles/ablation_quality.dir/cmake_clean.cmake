file(REMOVE_RECURSE
  "../bench/ablation_quality"
  "../bench/ablation_quality.pdb"
  "CMakeFiles/ablation_quality.dir/ablation_quality.cpp.o"
  "CMakeFiles/ablation_quality.dir/ablation_quality.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_quality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
