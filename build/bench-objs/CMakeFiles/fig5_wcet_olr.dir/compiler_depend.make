# Empty compiler generated dependencies file for fig5_wcet_olr.
# This may be replaced when dependencies are built.
