file(REMOVE_RECURSE
  "../bench/fig5_wcet_olr"
  "../bench/fig5_wcet_olr.pdb"
  "CMakeFiles/fig5_wcet_olr.dir/fig5_wcet_olr.cpp.o"
  "CMakeFiles/fig5_wcet_olr.dir/fig5_wcet_olr.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_wcet_olr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
