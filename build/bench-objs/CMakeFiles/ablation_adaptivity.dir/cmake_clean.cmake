file(REMOVE_RECURSE
  "../bench/ablation_adaptivity"
  "../bench/ablation_adaptivity.pdb"
  "CMakeFiles/ablation_adaptivity.dir/ablation_adaptivity.cpp.o"
  "CMakeFiles/ablation_adaptivity.dir/ablation_adaptivity.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_adaptivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
