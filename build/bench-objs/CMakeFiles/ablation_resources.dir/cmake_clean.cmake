file(REMOVE_RECURSE
  "../bench/ablation_resources"
  "../bench/ablation_resources.pdb"
  "CMakeFiles/ablation_resources.dir/ablation_resources.cpp.o"
  "CMakeFiles/ablation_resources.dir/ablation_resources.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_resources.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
