# Empty compiler generated dependencies file for fig4_etd.
# This may be replaced when dependencies are built.
