file(REMOVE_RECURSE
  "../bench/fig4_etd"
  "../bench/fig4_etd.pdb"
  "CMakeFiles/fig4_etd.dir/fig4_etd.cpp.o"
  "CMakeFiles/fig4_etd.dir/fig4_etd.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_etd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
