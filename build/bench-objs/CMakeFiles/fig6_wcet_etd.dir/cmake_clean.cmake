file(REMOVE_RECURSE
  "../bench/fig6_wcet_etd"
  "../bench/fig6_wcet_etd.pdb"
  "CMakeFiles/fig6_wcet_etd.dir/fig6_wcet_etd.cpp.o"
  "CMakeFiles/fig6_wcet_etd.dir/fig6_wcet_etd.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_wcet_etd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
