# Empty dependencies file for fig6_wcet_etd.
# This may be replaced when dependencies are built.
