file(REMOVE_RECURSE
  "../bench/ablation_structure"
  "../bench/ablation_structure.pdb"
  "CMakeFiles/ablation_structure.dir/ablation_structure.cpp.o"
  "CMakeFiles/ablation_structure.dir/ablation_structure.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_structure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
