file(REMOVE_RECURSE
  "../bench/ablation_optimality"
  "../bench/ablation_optimality.pdb"
  "CMakeFiles/ablation_optimality.dir/ablation_optimality.cpp.o"
  "CMakeFiles/ablation_optimality.dir/ablation_optimality.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_optimality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
