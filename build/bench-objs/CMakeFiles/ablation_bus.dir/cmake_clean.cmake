file(REMOVE_RECURSE
  "../bench/ablation_bus"
  "../bench/ablation_bus.pdb"
  "CMakeFiles/ablation_bus.dir/ablation_bus.cpp.o"
  "CMakeFiles/ablation_bus.dir/ablation_bus.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_bus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
