# Empty dependencies file for ablation_periodic.
# This may be replaced when dependencies are built.
