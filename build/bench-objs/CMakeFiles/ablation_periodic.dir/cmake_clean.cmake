file(REMOVE_RECURSE
  "../bench/ablation_periodic"
  "../bench/ablation_periodic.pdb"
  "CMakeFiles/ablation_periodic.dir/ablation_periodic.cpp.o"
  "CMakeFiles/ablation_periodic.dir/ablation_periodic.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_periodic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
