file(REMOVE_RECURSE
  "../bench/fig2_system_size"
  "../bench/fig2_system_size.pdb"
  "CMakeFiles/fig2_system_size.dir/fig2_system_size.cpp.o"
  "CMakeFiles/fig2_system_size.dir/fig2_system_size.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_system_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
