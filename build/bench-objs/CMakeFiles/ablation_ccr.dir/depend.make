# Empty dependencies file for ablation_ccr.
# This may be replaced when dependencies are built.
