file(REMOVE_RECURSE
  "../bench/ablation_ccr"
  "../bench/ablation_ccr.pdb"
  "CMakeFiles/ablation_ccr.dir/ablation_ccr.cpp.o"
  "CMakeFiles/ablation_ccr.dir/ablation_ccr.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_ccr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
