file(REMOVE_RECURSE
  "../bench/fig3_olr"
  "../bench/fig3_olr.pdb"
  "CMakeFiles/fig3_olr.dir/fig3_olr.cpp.o"
  "CMakeFiles/fig3_olr.dir/fig3_olr.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_olr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
