# Empty dependencies file for fig3_olr.
# This may be replaced when dependencies are built.
