# Empty dependencies file for periodic_planning.
# This may be replaced when dependencies are built.
