file(REMOVE_RECURSE
  "CMakeFiles/periodic_planning.dir/periodic_planning.cpp.o"
  "CMakeFiles/periodic_planning.dir/periodic_planning.cpp.o.d"
  "periodic_planning"
  "periodic_planning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/periodic_planning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
