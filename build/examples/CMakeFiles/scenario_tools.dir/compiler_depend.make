# Empty compiler generated dependencies file for scenario_tools.
# This may be replaced when dependencies are built.
