file(REMOVE_RECURSE
  "CMakeFiles/scenario_tools.dir/scenario_tools.cpp.o"
  "CMakeFiles/scenario_tools.dir/scenario_tools.cpp.o.d"
  "scenario_tools"
  "scenario_tools.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scenario_tools.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
