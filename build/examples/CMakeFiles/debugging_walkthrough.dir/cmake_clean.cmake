file(REMOVE_RECURSE
  "CMakeFiles/debugging_walkthrough.dir/debugging_walkthrough.cpp.o"
  "CMakeFiles/debugging_walkthrough.dir/debugging_walkthrough.cpp.o.d"
  "debugging_walkthrough"
  "debugging_walkthrough.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/debugging_walkthrough.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
