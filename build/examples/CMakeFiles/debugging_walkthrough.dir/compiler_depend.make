# Empty compiler generated dependencies file for debugging_walkthrough.
# This may be replaced when dependencies are built.
