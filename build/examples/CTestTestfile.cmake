# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_automotive_pipeline "/root/repo/build/examples/automotive_pipeline")
set_tests_properties(example_automotive_pipeline PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;22;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_radar_tracking "/root/repo/build/examples/radar_tracking")
set_tests_properties(example_radar_tracking PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;23;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_metric_playground "/root/repo/build/examples/metric_playground" "--seed" "3" "--trace" "--diagnose")
set_tests_properties(example_metric_playground PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;24;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_periodic_planning "/root/repo/build/examples/periodic_planning")
set_tests_properties(example_periodic_planning PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;26;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_scenario_tools_generate "/root/repo/build/examples/scenario_tools" "--mode" "generate" "--seed" "7" "--out" "smoke_scenario.txt")
set_tests_properties(example_scenario_tools_generate PROPERTIES  WORKING_DIRECTORY "/root/repo/build/examples" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;27;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_scenario_tools_analyze "/root/repo/build/examples/scenario_tools" "--mode" "analyze" "--in" "smoke_scenario.txt")
set_tests_properties(example_scenario_tools_analyze PROPERTIES  DEPENDS "example_scenario_tools_generate" WORKING_DIRECTORY "/root/repo/build/examples" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;31;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_experiment_runner "/root/repo/build/examples/experiment_runner" "--technique" "adapt-l" "--graphs" "64")
set_tests_properties(example_experiment_runner PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;36;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_debugging_walkthrough "/root/repo/build/examples/debugging_walkthrough")
set_tests_properties(example_debugging_walkthrough PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;38;add_test;/root/repo/examples/CMakeLists.txt;0;")
