# Empty compiler generated dependencies file for dsslice.
# This may be replaced when dependencies are built.
