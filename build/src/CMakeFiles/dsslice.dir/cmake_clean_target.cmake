file(REMOVE_RECURSE
  "libdsslice.a"
)
