
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dsslice/baselines/bettati_liu.cpp" "src/CMakeFiles/dsslice.dir/dsslice/baselines/bettati_liu.cpp.o" "gcc" "src/CMakeFiles/dsslice.dir/dsslice/baselines/bettati_liu.cpp.o.d"
  "/root/repo/src/dsslice/baselines/distribution_registry.cpp" "src/CMakeFiles/dsslice.dir/dsslice/baselines/distribution_registry.cpp.o" "gcc" "src/CMakeFiles/dsslice.dir/dsslice/baselines/distribution_registry.cpp.o.d"
  "/root/repo/src/dsslice/baselines/iterative_refinement.cpp" "src/CMakeFiles/dsslice.dir/dsslice/baselines/iterative_refinement.cpp.o" "gcc" "src/CMakeFiles/dsslice.dir/dsslice/baselines/iterative_refinement.cpp.o.d"
  "/root/repo/src/dsslice/baselines/kao_garcia_molina.cpp" "src/CMakeFiles/dsslice.dir/dsslice/baselines/kao_garcia_molina.cpp.o" "gcc" "src/CMakeFiles/dsslice.dir/dsslice/baselines/kao_garcia_molina.cpp.o.d"
  "/root/repo/src/dsslice/core/anchors.cpp" "src/CMakeFiles/dsslice.dir/dsslice/core/anchors.cpp.o" "gcc" "src/CMakeFiles/dsslice.dir/dsslice/core/anchors.cpp.o.d"
  "/root/repo/src/dsslice/core/critical_path.cpp" "src/CMakeFiles/dsslice.dir/dsslice/core/critical_path.cpp.o" "gcc" "src/CMakeFiles/dsslice.dir/dsslice/core/critical_path.cpp.o.d"
  "/root/repo/src/dsslice/core/diagnosis.cpp" "src/CMakeFiles/dsslice.dir/dsslice/core/diagnosis.cpp.o" "gcc" "src/CMakeFiles/dsslice.dir/dsslice/core/diagnosis.cpp.o.d"
  "/root/repo/src/dsslice/core/feasibility.cpp" "src/CMakeFiles/dsslice.dir/dsslice/core/feasibility.cpp.o" "gcc" "src/CMakeFiles/dsslice.dir/dsslice/core/feasibility.cpp.o.d"
  "/root/repo/src/dsslice/core/jitter.cpp" "src/CMakeFiles/dsslice.dir/dsslice/core/jitter.cpp.o" "gcc" "src/CMakeFiles/dsslice.dir/dsslice/core/jitter.cpp.o.d"
  "/root/repo/src/dsslice/core/metrics.cpp" "src/CMakeFiles/dsslice.dir/dsslice/core/metrics.cpp.o" "gcc" "src/CMakeFiles/dsslice.dir/dsslice/core/metrics.cpp.o.d"
  "/root/repo/src/dsslice/core/quality.cpp" "src/CMakeFiles/dsslice.dir/dsslice/core/quality.cpp.o" "gcc" "src/CMakeFiles/dsslice.dir/dsslice/core/quality.cpp.o.d"
  "/root/repo/src/dsslice/core/slicing.cpp" "src/CMakeFiles/dsslice.dir/dsslice/core/slicing.cpp.o" "gcc" "src/CMakeFiles/dsslice.dir/dsslice/core/slicing.cpp.o.d"
  "/root/repo/src/dsslice/core/wcet_estimate.cpp" "src/CMakeFiles/dsslice.dir/dsslice/core/wcet_estimate.cpp.o" "gcc" "src/CMakeFiles/dsslice.dir/dsslice/core/wcet_estimate.cpp.o.d"
  "/root/repo/src/dsslice/gen/generator_config.cpp" "src/CMakeFiles/dsslice.dir/dsslice/gen/generator_config.cpp.o" "gcc" "src/CMakeFiles/dsslice.dir/dsslice/gen/generator_config.cpp.o.d"
  "/root/repo/src/dsslice/gen/platform_generator.cpp" "src/CMakeFiles/dsslice.dir/dsslice/gen/platform_generator.cpp.o" "gcc" "src/CMakeFiles/dsslice.dir/dsslice/gen/platform_generator.cpp.o.d"
  "/root/repo/src/dsslice/gen/rng.cpp" "src/CMakeFiles/dsslice.dir/dsslice/gen/rng.cpp.o" "gcc" "src/CMakeFiles/dsslice.dir/dsslice/gen/rng.cpp.o.d"
  "/root/repo/src/dsslice/gen/taskgraph_generator.cpp" "src/CMakeFiles/dsslice.dir/dsslice/gen/taskgraph_generator.cpp.o" "gcc" "src/CMakeFiles/dsslice.dir/dsslice/gen/taskgraph_generator.cpp.o.d"
  "/root/repo/src/dsslice/graph/algorithms.cpp" "src/CMakeFiles/dsslice.dir/dsslice/graph/algorithms.cpp.o" "gcc" "src/CMakeFiles/dsslice.dir/dsslice/graph/algorithms.cpp.o.d"
  "/root/repo/src/dsslice/graph/closure.cpp" "src/CMakeFiles/dsslice.dir/dsslice/graph/closure.cpp.o" "gcc" "src/CMakeFiles/dsslice.dir/dsslice/graph/closure.cpp.o.d"
  "/root/repo/src/dsslice/graph/dot.cpp" "src/CMakeFiles/dsslice.dir/dsslice/graph/dot.cpp.o" "gcc" "src/CMakeFiles/dsslice.dir/dsslice/graph/dot.cpp.o.d"
  "/root/repo/src/dsslice/graph/task_graph.cpp" "src/CMakeFiles/dsslice.dir/dsslice/graph/task_graph.cpp.o" "gcc" "src/CMakeFiles/dsslice.dir/dsslice/graph/task_graph.cpp.o.d"
  "/root/repo/src/dsslice/model/application.cpp" "src/CMakeFiles/dsslice.dir/dsslice/model/application.cpp.o" "gcc" "src/CMakeFiles/dsslice.dir/dsslice/model/application.cpp.o.d"
  "/root/repo/src/dsslice/model/interconnect.cpp" "src/CMakeFiles/dsslice.dir/dsslice/model/interconnect.cpp.o" "gcc" "src/CMakeFiles/dsslice.dir/dsslice/model/interconnect.cpp.o.d"
  "/root/repo/src/dsslice/model/platform.cpp" "src/CMakeFiles/dsslice.dir/dsslice/model/platform.cpp.o" "gcc" "src/CMakeFiles/dsslice.dir/dsslice/model/platform.cpp.o.d"
  "/root/repo/src/dsslice/model/resources.cpp" "src/CMakeFiles/dsslice.dir/dsslice/model/resources.cpp.o" "gcc" "src/CMakeFiles/dsslice.dir/dsslice/model/resources.cpp.o.d"
  "/root/repo/src/dsslice/model/task.cpp" "src/CMakeFiles/dsslice.dir/dsslice/model/task.cpp.o" "gcc" "src/CMakeFiles/dsslice.dir/dsslice/model/task.cpp.o.d"
  "/root/repo/src/dsslice/model/time.cpp" "src/CMakeFiles/dsslice.dir/dsslice/model/time.cpp.o" "gcc" "src/CMakeFiles/dsslice.dir/dsslice/model/time.cpp.o.d"
  "/root/repo/src/dsslice/report/csv.cpp" "src/CMakeFiles/dsslice.dir/dsslice/report/csv.cpp.o" "gcc" "src/CMakeFiles/dsslice.dir/dsslice/report/csv.cpp.o.d"
  "/root/repo/src/dsslice/report/schedule_export.cpp" "src/CMakeFiles/dsslice.dir/dsslice/report/schedule_export.cpp.o" "gcc" "src/CMakeFiles/dsslice.dir/dsslice/report/schedule_export.cpp.o.d"
  "/root/repo/src/dsslice/report/series.cpp" "src/CMakeFiles/dsslice.dir/dsslice/report/series.cpp.o" "gcc" "src/CMakeFiles/dsslice.dir/dsslice/report/series.cpp.o.d"
  "/root/repo/src/dsslice/report/table.cpp" "src/CMakeFiles/dsslice.dir/dsslice/report/table.cpp.o" "gcc" "src/CMakeFiles/dsslice.dir/dsslice/report/table.cpp.o.d"
  "/root/repo/src/dsslice/sched/annealing_scheduler.cpp" "src/CMakeFiles/dsslice.dir/dsslice/sched/annealing_scheduler.cpp.o" "gcc" "src/CMakeFiles/dsslice.dir/dsslice/sched/annealing_scheduler.cpp.o.d"
  "/root/repo/src/dsslice/sched/branch_and_bound.cpp" "src/CMakeFiles/dsslice.dir/dsslice/sched/branch_and_bound.cpp.o" "gcc" "src/CMakeFiles/dsslice.dir/dsslice/sched/branch_and_bound.cpp.o.d"
  "/root/repo/src/dsslice/sched/clustering.cpp" "src/CMakeFiles/dsslice.dir/dsslice/sched/clustering.cpp.o" "gcc" "src/CMakeFiles/dsslice.dir/dsslice/sched/clustering.cpp.o.d"
  "/root/repo/src/dsslice/sched/dispatch_scheduler.cpp" "src/CMakeFiles/dsslice.dir/dsslice/sched/dispatch_scheduler.cpp.o" "gcc" "src/CMakeFiles/dsslice.dir/dsslice/sched/dispatch_scheduler.cpp.o.d"
  "/root/repo/src/dsslice/sched/edf_list_scheduler.cpp" "src/CMakeFiles/dsslice.dir/dsslice/sched/edf_list_scheduler.cpp.o" "gcc" "src/CMakeFiles/dsslice.dir/dsslice/sched/edf_list_scheduler.cpp.o.d"
  "/root/repo/src/dsslice/sched/insertion_scheduler.cpp" "src/CMakeFiles/dsslice.dir/dsslice/sched/insertion_scheduler.cpp.o" "gcc" "src/CMakeFiles/dsslice.dir/dsslice/sched/insertion_scheduler.cpp.o.d"
  "/root/repo/src/dsslice/sched/planning_cycle.cpp" "src/CMakeFiles/dsslice.dir/dsslice/sched/planning_cycle.cpp.o" "gcc" "src/CMakeFiles/dsslice.dir/dsslice/sched/planning_cycle.cpp.o.d"
  "/root/repo/src/dsslice/sched/preemptive_scheduler.cpp" "src/CMakeFiles/dsslice.dir/dsslice/sched/preemptive_scheduler.cpp.o" "gcc" "src/CMakeFiles/dsslice.dir/dsslice/sched/preemptive_scheduler.cpp.o.d"
  "/root/repo/src/dsslice/sched/schedule.cpp" "src/CMakeFiles/dsslice.dir/dsslice/sched/schedule.cpp.o" "gcc" "src/CMakeFiles/dsslice.dir/dsslice/sched/schedule.cpp.o.d"
  "/root/repo/src/dsslice/sched/validation.cpp" "src/CMakeFiles/dsslice.dir/dsslice/sched/validation.cpp.o" "gcc" "src/CMakeFiles/dsslice.dir/dsslice/sched/validation.cpp.o.d"
  "/root/repo/src/dsslice/sim/experiment.cpp" "src/CMakeFiles/dsslice.dir/dsslice/sim/experiment.cpp.o" "gcc" "src/CMakeFiles/dsslice.dir/dsslice/sim/experiment.cpp.o.d"
  "/root/repo/src/dsslice/sim/runner.cpp" "src/CMakeFiles/dsslice.dir/dsslice/sim/runner.cpp.o" "gcc" "src/CMakeFiles/dsslice.dir/dsslice/sim/runner.cpp.o.d"
  "/root/repo/src/dsslice/sim/serialization.cpp" "src/CMakeFiles/dsslice.dir/dsslice/sim/serialization.cpp.o" "gcc" "src/CMakeFiles/dsslice.dir/dsslice/sim/serialization.cpp.o.d"
  "/root/repo/src/dsslice/sim/sweeps.cpp" "src/CMakeFiles/dsslice.dir/dsslice/sim/sweeps.cpp.o" "gcc" "src/CMakeFiles/dsslice.dir/dsslice/sim/sweeps.cpp.o.d"
  "/root/repo/src/dsslice/util/check.cpp" "src/CMakeFiles/dsslice.dir/dsslice/util/check.cpp.o" "gcc" "src/CMakeFiles/dsslice.dir/dsslice/util/check.cpp.o.d"
  "/root/repo/src/dsslice/util/cli.cpp" "src/CMakeFiles/dsslice.dir/dsslice/util/cli.cpp.o" "gcc" "src/CMakeFiles/dsslice.dir/dsslice/util/cli.cpp.o.d"
  "/root/repo/src/dsslice/util/stats.cpp" "src/CMakeFiles/dsslice.dir/dsslice/util/stats.cpp.o" "gcc" "src/CMakeFiles/dsslice.dir/dsslice/util/stats.cpp.o.d"
  "/root/repo/src/dsslice/util/string_util.cpp" "src/CMakeFiles/dsslice.dir/dsslice/util/string_util.cpp.o" "gcc" "src/CMakeFiles/dsslice.dir/dsslice/util/string_util.cpp.o.d"
  "/root/repo/src/dsslice/util/thread_pool.cpp" "src/CMakeFiles/dsslice.dir/dsslice/util/thread_pool.cpp.o" "gcc" "src/CMakeFiles/dsslice.dir/dsslice/util/thread_pool.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
