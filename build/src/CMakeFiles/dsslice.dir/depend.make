# Empty dependencies file for dsslice.
# This may be replaced when dependencies are built.
