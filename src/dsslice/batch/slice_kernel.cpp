#include "dsslice/batch/slice_kernel.hpp"

#include <algorithm>
#include <bit>
#include <limits>

#include "dsslice/obs/trace.hpp"
#include "dsslice/util/check.hpp"

namespace dsslice {

namespace {

/// DeadlineMetric::path_value with the metric kind resolved at compile time,
/// so the DP inner loop inlines the score instead of paying a cross-TU call
/// per candidate. Expression-for-expression identical to path_value —
/// bit-identity depends on it.
template <MetricKind Kind>
double batch_path_value(Time window, double sum_weight, std::uint32_t count) {
  if (count == 0) {
    return std::numeric_limits<double>::infinity();
  }
  const double laxity = window - sum_weight;
  if constexpr (Kind == MetricKind::kNorm) {
    if (sum_weight <= 0.0) {
      return laxity < 0.0 ? -std::numeric_limits<double>::infinity()
                          : std::numeric_limits<double>::infinity();
    }
    return laxity / sum_weight;  // Eq. 2
  } else {
    return laxity / static_cast<double>(count);  // Eqs. 4 and ADAPT form
  }
}

inline bool bit_test(const std::vector<std::uint64_t>& bits, NodeId v) {
  return ((bits[v >> 6] >> (v & 63)) & 1u) != 0;
}

inline void bit_clear(std::vector<std::uint64_t>& bits, std::uint32_t v) {
  bits[v >> 6] &= ~(std::uint64_t{1} << (v & 63));
}

inline void bit_set(std::vector<std::uint64_t>& bits, std::uint32_t v) {
  bits[v >> 6] |= std::uint64_t{1} << (v & 63);
}

/// Bitwise double compare: the change test that gates incremental dirty
/// propagation. Bitwise (not ==) so that a value replaced by a different
/// representation of the same number (−0.0 vs 0.0) still counts as changed —
/// conservative re-dirtying keeps the stale-value invariant airtight.
inline bool bits_differ(double a, double b) {
  return std::bit_cast<std::uint64_t>(a) != std::bit_cast<std::uint64_t>(b);
}

}  // namespace

std::string to_string(BatchLaneMode mode) {
  switch (mode) {
    case BatchLaneMode::kAuto:
      return "auto";
    case BatchLaneMode::kReference:
      return "reference";
    case BatchLaneMode::kLanes64:
      return "lanes64";
  }
  return "?";
}

BatchLaneMode resolve_lane_mode(BatchLaneMode requested) {
  // The lane engine is portable uint64 code (no ISA-specific intrinsics), so
  // auto always resolves to it; the hook exists so a future engine with real
  // ISA requirements can fall back at runtime.
  if (requested == BatchLaneMode::kAuto) {
    return BatchLaneMode::kLanes64;
  }
  return requested;
}

void BatchSliceKernel::run(std::span<const Scenario> scenarios,
                           const BatchSliceConfig& config) {
  DSSLICE_SPAN("batch.slice.run");
  const std::size_t b = scenarios.size();
  batch_size_ = b;
  if (b == 0) {
    return;
  }

  max_batch_seen_ = std::max(max_batch_seen_, b);
  reserve_grow(apps_, b, max_batch_seen_);
  apps_.resize(b);
  reserve_grow(proc_counts_, b, max_batch_seen_);
  proc_counts_.resize(b);
  std::size_t total_tasks = 0;
  for (std::size_t k = 0; k < b; ++k) {
    apps_[k] = &scenarios[k].application;
    proc_counts_[k] = scenarios[k].platform.processor_count();
    DSSLICE_REQUIRE(proc_counts_[k] > 0, "need at least one processor");
    const std::size_t nk = apps_[k]->task_count();
    total_tasks += nk;
    max_tasks_seen_ = std::max(max_tasks_seen_, nk);
  }

  // Stages 1–2: flat estimates and mandatory demands for the whole batch.
  // The batch helpers size their outputs themselves; pre-reserving here
  // keeps the growth accounting (and the over-reservation policy) in one
  // place — the helpers then never re-allocate.
  reserve_grow(offsets_, b + 1, flat_hint());
  reserve_grow(est_, total_tasks, flat_hint());
  estimate_wcets_batch_into(apps_, config.wcet_strategy, offsets_, est_);
  reserve_grow(slice_est_, total_tasks, flat_hint());
  mandatory_estimates_batch_into(apps_, offsets_, est_, slice_est_);

  // Result slots are grow-only: shrinking the outer vectors would destroy
  // the per-slot window capacity a smaller batch had already paid for.
  if (assignments_.size() < b) {
    reserve_grow(assignments_, b, max_batch_seen_);
    assignments_.resize(b);
  }
  if (stats_.size() < b) {
    reserve_grow(stats_, b, max_batch_seen_);
    stats_.resize(b);
  }
  if (outcome_min_laxity_.size() < b) {
    reserve_grow(outcome_min_laxity_, b, max_batch_seen_);
    outcome_min_laxity_.resize(b);
  }

  const DeadlineMetric metric(config.metric, config.params);
  const BatchLaneMode mode = resolve_lane_mode(config.lane_mode);
  if (mode == BatchLaneMode::kReference) {
    run_reference(metric);
  } else {
    // Stage 3: metric weights for the whole batch in one SoA pass.
    reserve_grow(weights_, total_tasks, flat_hint());
    weights_.resize(total_tasks);
    metric.weights_batch_into(apps_, offsets_, slice_est_, proc_counts_,
                              weights_, &metric_ws_);
    switch (metric.kind()) {
      case MetricKind::kPure:
        run_lanes<MetricKind::kPure>(metric);
        break;
      case MetricKind::kNorm:
        run_lanes<MetricKind::kNorm>(metric);
        break;
      case MetricKind::kAdaptG:
        run_lanes<MetricKind::kAdaptG>(metric);
        break;
      case MetricKind::kAdaptL:
        run_lanes<MetricKind::kAdaptL>(metric);
        break;
    }
  }

  std::size_t total_passes = 0;
  for (std::size_t k = 0; k < b; ++k) {
    finish_scenario(k);
    total_passes += stats_[k].passes;
  }
  DSSLICE_COUNT("batch.scenarios", b);
  DSSLICE_COUNT("batch.passes", total_passes);
  DSSLICE_COUNT("batch.tasks", offsets_[b]);
}

void BatchSliceKernel::run_reference(const DeadlineMetric& metric) {
  for (std::size_t k = 0; k < batch_size_; ++k) {
    const std::size_t nk = offsets_[k + 1] - offsets_[k];
    reserve_grow(assignments_[k].windows, nk, node_hint());
    reserve_grow(assignments_[k].pass_of, nk, node_hint());
    SlicingOptions options;
    options.workspace = &ref_ws_;
    run_slicing_into(assignments_[k], *apps_[k],
                     {slice_est_.data() + offsets_[k], nk}, metric,
                     proc_counts_[k], &stats_[k], options);
  }
}

template <MetricKind Kind>
void BatchSliceKernel::run_lanes(const DeadlineMetric& metric) {
  for (std::size_t k = 0; k < batch_size_; ++k) {
    peel_scenario<Kind>(k, metric);
  }
}

template <MetricKind Kind>
void BatchSliceKernel::peel_scenario(std::size_t k,
                                     const DeadlineMetric& metric) {
  const Application& app = *apps_[k];
  const GraphAnalysis& analysis = app.analysis();
  const std::size_t n = app.task_count();
  const std::span<const NodeId> topo = analysis.topological_order();
  const std::span<const double> weights{weights_.data() + offsets_[k],
                                        offsets_[k + 1] - offsets_[k]};
  const std::span<const double> est{slice_est_.data() + offsets_[k],
                                    offsets_[k + 1] - offsets_[k]};
  DSSLICE_REQUIRE(est.size() == n, "estimate vector size mismatch");

  DeadlineAssignment& assignment = assignments_[k];
  reserve_grow(assignment.windows, n, node_hint());
  assignment.windows.resize(n);
  reserve_grow(assignment.pass_of, n, node_hint());
  assignment.pass_of.assign(n, -1);

  const std::size_t words = (n + 63) / 64;
  const std::size_t word_hint = (node_hint() + 63) / 64;

  // Anchor state: raw arrays mirroring AnchorState's constructor (−inf /
  // +inf sentinels double as the has-anchor tests). Unassigned-degree
  // counters make the Π-source / Π-sink tests O(1), and sink_bits_ tracks
  // the current Π-sinks so sink selection is a word walk instead of a
  // successor scan per remaining node.
  reserve_grow(arrival_, n, node_hint());
  arrival_.resize(n);
  reserve_grow(deadline_, n, node_hint());
  deadline_.resize(n);
  reserve_grow(pos_of_, n, node_hint());
  pos_of_.resize(n);
  reserve_grow(up_count_, n, node_hint());
  up_count_.resize(n);
  reserve_grow(us_count_, n, node_hint());
  us_count_.resize(n);
  reserve_grow(sink_bits_, words, word_hint);
  sink_bits_.assign(words, 0);
  for (NodeId v = 0; v < n; ++v) {
    const std::size_t in_deg = analysis.predecessors(v).size();
    const std::size_t out_deg = analysis.successors(v).size();
    up_count_[v] = static_cast<std::uint32_t>(in_deg);
    us_count_[v] = static_cast<std::uint32_t>(out_deg);
    arrival_[v] = in_deg == 0 ? app.input_arrival(v) : -kTimeInfinity;
    if (out_deg == 0) {
      DSSLICE_REQUIRE(app.has_ete_deadline(v),
                      "output task without an E-T-E deadline");
      deadline_[v] = app.ete_deadline(v);
      bit_set(sink_bits_, v);
    } else {
      deadline_[v] = kTimeInfinity;
    }
  }
  for (std::size_t p = 0; p < n; ++p) {
    pos_of_[topo[p]] = static_cast<std::uint32_t>(p);
  }

  // DP scratch. No per-pass clears: (reverse-)topological processing order
  // guarantees each unassigned node's entry is written before any read in
  // the same pass, and assigned nodes are never read.
  reserve_grow(lw_, n, node_hint());
  lw_.resize(n);
  reserve_grow(dp_, n, node_hint());
  dp_.resize(n);
  for (NodeId v = 0; v < n; ++v) {
    lw_[v].weight = weights[v];
  }
  reserve_grow(path_nodes_, n, node_hint());
  reserve_grow(path_weights_, n, node_hint());
  reserve_grow(path_est_, n, node_hint());
  reserve_grow(slices_, n, node_hint());

  reserve_grow(unassigned_pos_, words, word_hint);
  unassigned_pos_.assign(words, ~std::uint64_t{0});
  reserve_grow(unassigned_node_, words, word_hint);
  unassigned_node_.assign(words, ~std::uint64_t{0});
  const std::uint64_t tail = (n % 64 == 0)
                                 ? ~std::uint64_t{0}
                                 : (std::uint64_t{1} << (n % 64)) - 1;
  unassigned_pos_[words - 1] = tail;
  unassigned_node_[words - 1] = tail;

  // Dirty sets (topological-position indexed): which nodes each peel pass
  // must recompute. They start empty — the dense pass-0 DP below computes
  // every node — and later passes reprocess only nodes whose inputs changed:
  // an anchor tightened, a neighbour assigned, an unassigned successor's
  // latest-finish changed (backward), or an unassigned predecessor's
  // (start, Σw, count) changed (forward). A node whose recomputed value is
  // bitwise unchanged stops the propagation, so every value a pass *reads*
  // is bitwise what a full recompute would have produced — the incremental
  // walk is exact, not approximate.
  reserve_grow(dirty_back_, words, word_hint);
  dirty_back_.assign(words, 0);
  reserve_grow(dirty_fwd_, words, word_hint);
  dirty_fwd_.assign(words, 0);

  SlicingStats stats;
  std::size_t remaining = n;

  // Dense pass-0 DP: with every node unassigned, the membership tests would
  // all hit and the dirty machinery would enqueue everything, so both
  // directions run as straight loops over the topological order. The folds
  // are expression-for-expression the incremental walks below.
  for (std::size_t pos = n; pos-- > 0;) {
    const NodeId v = topo[pos];
    Time l = deadline_[v];
    for (const NodeId w : analysis.successors(v)) {
      l = std::min(l, lw_[w].latest - lw_[w].weight);
    }
    lw_[v].latest = l;
  }
  for (std::size_t pos = 0; pos < n; ++pos) {
    const NodeId v = topo[pos];
    const Time latest_v = lw_[v].latest;
    const double weight_v = lw_[v].weight;
    Time best_start = kTimeZero;
    double best_sum = 0.0;
    std::uint32_t best_count = 0;
    NodeId best_prev = kNoPathPrev;
    double best_score = 0.0;
    bool valid = false;
    if (up_count_[v] == 0) {
      DSSLICE_CHECK(arrival_[v] > -kTimeInfinity,
                    "Π-source without an arrival anchor");
      best_start = arrival_[v];
      best_sum = weight_v;
      best_count = 1;
      best_score =
          batch_path_value<Kind>(latest_v - best_start, best_sum, best_count);
      valid = true;
    }
    for (const NodeId u : analysis.predecessors(v)) {
      const NodeDp& du = dp_[u];
      const Time cand_start = du.start;
      const double cand_sum = du.sum + weight_v;
      const std::uint32_t cand_count = du.count + 1;
      const double cand_score =
          batch_path_value<Kind>(latest_v - cand_start, cand_sum, cand_count);
      if (!valid || cand_score < best_score ||
          (cand_score == best_score &&
           (cand_sum > best_sum || (cand_sum == best_sum && u < best_prev)))) {
        best_start = cand_start;
        best_sum = cand_sum;
        best_count = cand_count;
        best_prev = u;
        best_score = cand_score;
        valid = true;
      }
    }
    DSSLICE_CHECK(valid, "unassigned node produced no path candidate");
    dp_[v] = NodeDp{best_start, best_sum, best_score, best_count, best_prev};
  }

  while (remaining > 0) {
    // Backward pass over the dirty nodes in reverse topological order
    // (descending word walk, highest set lane first). Each word is snapshot
    // into a register and zeroed once, so draining it costs no per-node
    // store/reload; dirty bits added while processing — a changed
    // latest-finish re-dirties the node's unassigned predecessors — land at
    // strictly lower positions and are picked up by the outer re-read. A
    // same-word mark below an already-drained snapshot bit may process a
    // node before one of its dirty successors, but the successor's change
    // then re-marks it: the walk settles on the unique fixpoint of the
    // acyclic backward equations, bitwise the values a strictly-ordered
    // walk produces.
    for (std::size_t wi = words; wi-- > 0;) {
      while (std::uint64_t snap = dirty_back_[wi]) {
        dirty_back_[wi] = 0;
        do {
        const int bit = 63 - std::countl_zero(snap);
        snap &= ~(std::uint64_t{1} << bit);
        const std::size_t pos = wi * 64 + static_cast<std::size_t>(bit);
        const NodeId v = topo[pos];
        Time l = deadline_[v];
        for (const NodeId w : analysis.successors(v)) {
          if (bit_test(unassigned_node_, w)) {
            l = std::min(l, lw_[w].latest - lw_[w].weight);
          }
        }
        if (bits_differ(l, lw_[v].latest)) {
          lw_[v].latest = l;
          // The projected score at v reads L(v); the latest-finish of every
          // unassigned predecessor reads it too.
          bit_set(dirty_fwd_, static_cast<std::uint32_t>(pos));
          for (const NodeId u : analysis.predecessors(v)) {
            if (bit_test(unassigned_node_, u)) {
              const std::uint32_t p = pos_of_[u];
              // Same-word marks go straight into the live snapshot (the
              // array bit would double-process via the outer re-read).
              if ((p >> 6) == wi) {
                snap |= std::uint64_t{1} << (p & 63);
              } else {
                bit_set(dirty_back_, p);
              }
            }
          }
        }
        } while (snap);
      }
    }

    // Forward pass: recompute the best partial path of each dirty node in
    // ascending topological order, with the same snapshot word drain as the
    // backward pass (marks from a changed (start, Σw, count) tuple target
    // the node's unassigned successors — strictly higher positions).
    for (std::size_t wi = 0; wi < words; ++wi) {
      while (std::uint64_t snap = dirty_fwd_[wi]) {
        dirty_fwd_[wi] = 0;
        do {
        const int bit = std::countr_zero(snap);
        snap &= snap - 1;
        const std::size_t pos = wi * 64 + static_cast<std::size_t>(bit);
        const NodeId v = topo[pos];
        const Time latest_v = lw_[v].latest;
        const double weight_v = lw_[v].weight;

        // Candidate fold in scalar locals; ranking is expression-for-
        // expression path_candidate_better (score asc, Σw desc, prev asc —
        // a total order, so the fold is order-independent).
        Time best_start = kTimeZero;
        double best_sum = 0.0;
        std::uint32_t best_count = 0;
        NodeId best_prev = kNoPathPrev;
        double best_score = 0.0;
        bool valid = false;
        if (up_count_[v] == 0) {
          DSSLICE_CHECK(arrival_[v] > -kTimeInfinity,
                        "Π-source without an arrival anchor");
          best_start = arrival_[v];
          best_sum = weight_v;
          best_count = 1;
          best_score = batch_path_value<Kind>(latest_v - best_start, best_sum,
                                              best_count);
          valid = true;
        }
        for (const NodeId u : analysis.predecessors(v)) {
          if (!bit_test(unassigned_node_, u)) {
            continue;
          }
          const NodeDp& du = dp_[u];
          const Time cand_start = du.start;
          const double cand_sum = du.sum + weight_v;
          const std::uint32_t cand_count = du.count + 1;
          const double cand_score =
              batch_path_value<Kind>(latest_v - cand_start, cand_sum,
                                     cand_count);
          if (!valid || cand_score < best_score ||
              (cand_score == best_score &&
               (cand_sum > best_sum ||
                (cand_sum == best_sum && u < best_prev)))) {
            best_start = cand_start;
            best_sum = cand_sum;
            best_count = cand_count;
            best_prev = u;
            best_score = cand_score;
            valid = true;
          }
        }
        DSSLICE_CHECK(valid, "unassigned node produced no path candidate");
        // Successors read only (start, Σw, count) — prev and score are
        // consumed at v itself, so changes to them alone propagate nowhere.
        NodeDp& dv = dp_[v];
        const bool inputs_changed = bits_differ(best_start, dv.start) ||
                                    bits_differ(best_sum, dv.sum) ||
                                    best_count != dv.count;
        dv = NodeDp{best_start, best_sum, best_score, best_count, best_prev};
        if (inputs_changed) {
          for (const NodeId s : analysis.successors(v)) {
            if (bit_test(unassigned_node_, s)) {
              const std::uint32_t p = pos_of_[s];
              if ((p >> 6) == wi) {
                snap |= std::uint64_t{1} << (p & 63);
              } else {
                bit_set(dirty_fwd_, p);
              }
            }
          }
        }
        } while (snap);
      }
    }

    // Sink selection: lexicographic min of (score, node id) over the current
    // Π-sinks — order-independent, and every sink's DP entry is current by
    // the dirty-walk invariant.
    NodeId best_sink = kNoPathPrev;
    double best_sink_score = 0.0;
    for (std::size_t wi = 0; wi < words; ++wi) {
      std::uint64_t lanes = sink_bits_[wi];
      while (lanes != 0) {
        const NodeId v = static_cast<NodeId>(
            wi * 64 + static_cast<std::size_t>(std::countr_zero(lanes)));
        lanes &= lanes - 1;
        DSSLICE_CHECK(deadline_[v] < kTimeInfinity,
                      "Π-sink without a deadline anchor");
        const double score = dp_[v].score;
        if (best_sink == kNoPathPrev || score < best_sink_score ||
            (score == best_sink_score && v < best_sink)) {
          best_sink = v;
          best_sink_score = score;
        }
      }
    }
    DSSLICE_CHECK(best_sink != kNoPathPrev,
                  "remaining tasks exist but no Π-sink was found");

    // Reconstruct the spine backwards through the DP links.
    path_nodes_.clear();
    for (NodeId v = best_sink; v != kNoPathPrev; v = dp_[v].prev) {
      path_nodes_.push_back(v);
    }
    std::reverse(path_nodes_.begin(), path_nodes_.end());
    DSSLICE_CHECK(path_nodes_.size() == dp_[best_sink].count,
                  "path reconstruction length mismatch");

    const Time window_start = dp_[best_sink].start;
    const Time window_end = deadline_[best_sink];
    if (stats.passes == 0) {
      stats.first_path_metric = best_sink_score;
      stats.first_path_length = path_nodes_.size();
    }

    // Slice the window over the spine (same adaptive_slices_into call as the
    // scalar loop — once per pass, not hot enough to replicate).
    path_weights_.clear();
    path_est_.clear();
    for (const NodeId v : path_nodes_) {
      path_weights_.push_back(weights[v]);
      path_est_.push_back(est[v]);
    }
    metric.adaptive_slices_into(window_end - window_start, path_weights_,
                                path_est_, slices_);
    const std::vector<double>& d = slices_;

    Time boundary = window_start;
    for (std::size_t i = 0; i < path_nodes_.size(); ++i) {
      const NodeId v = path_nodes_[i];
      const Time lo = boundary;
      boundary += d[i];
      const Time hi = (i + 1 == path_nodes_.size()) ? window_end : boundary;

      Window w{lo, hi};
      if (arrival_[v] > -kTimeInfinity) {
        w.arrival = std::max(w.arrival, arrival_[v]);
      }
      if (deadline_[v] < kTimeInfinity) {
        w.deadline = std::min(w.deadline, deadline_[v]);
      }
      bit_clear(unassigned_pos_, pos_of_[v]);
      bit_clear(unassigned_node_, v);
      bit_clear(sink_bits_, v);
      --remaining;
      assignment.windows[v] = w;
      assignment.pass_of[v] = static_cast<int>(stats.passes);
    }

    // Propagate anchors to the unassigned neighbours of the spine, keep the
    // unassigned-degree counters current, and seed the next pass's dirty
    // sets: a predecessor's latest-finish inputs changed (successor gone,
    // deadline maybe tightened), a successor's candidate set changed
    // (predecessor gone, arrival maybe tightened, Π-source status maybe
    // flipped). A predecessor whose last unassigned successor was just
    // assigned becomes a Π-sink.
    for (const NodeId v : path_nodes_) {
      const Window& w = assignment.windows[v];
      for (const NodeId u : analysis.predecessors(v)) {
        --us_count_[u];
        if (bit_test(unassigned_node_, u)) {
          deadline_[u] = std::min(deadline_[u], w.arrival);
          bit_set(dirty_back_, pos_of_[u]);
          if (us_count_[u] == 0) {
            bit_set(sink_bits_, u);
          }
        }
      }
      for (const NodeId s : analysis.successors(v)) {
        --up_count_[s];
        if (bit_test(unassigned_node_, s)) {
          arrival_[s] = std::max(arrival_[s], w.deadline);
          bit_set(dirty_fwd_, pos_of_[s]);
        }
      }
    }

    ++stats.passes;
    DSSLICE_CHECK(stats.passes <= n, "slicing failed to converge");
  }

  stats.min_laxity = std::numeric_limits<double>::infinity();
  stats.windows_feasible = true;
  for (NodeId v = 0; v < n; ++v) {
    const double laxity = assignment.windows[v].length() - est[v];
    stats.min_laxity = std::min(stats.min_laxity, laxity);
    if (laxity < 0.0) {
      stats.windows_feasible = false;
    }
  }
  stats_[k] = stats;
}

void BatchSliceKernel::finish_scenario(std::size_t k) {
  const std::size_t nk = offsets_[k + 1] - offsets_[k];
  DSSLICE_REQUIRE(nk > 0, "cannot evaluate an empty application");
  const double* est = est_.data() + offsets_[k];
  const std::vector<Window>& windows = assignments_[k].windows;
  // First-smallest scan — the exact semantics of quality.cpp's min_element
  // over the laxity vector, without materializing it.
  double best = windows[0].length() - est[0];
  for (std::size_t i = 1; i < nk; ++i) {
    const double laxity = windows[i].length() - est[i];
    if (laxity < best) {
      best = laxity;
    }
  }
  outcome_min_laxity_[k] = best;
}

}  // namespace dsslice
