// SoA batch slicing kernel — the sweep engine's slicing hot path.
//
// The million-scenario sweep (sweep/sweep_engine.hpp) spends most of its
// time inside run_slicing: per scenario it estimates WCETs, computes metric
// weights, and peels critical paths off the task graph until every task owns
// a window. The scalar pipeline does this one scenario at a time through
// AoS state (vector<PathCandidate> DP entries, vector<bool> assigned flags,
// per-pass O(n) buffer clears). BatchSliceKernel restructures the same
// computation around a batch:
//
//  * Structure-of-arrays staging. Estimated WCETs, mandatory demands and
//    metric weights for all B scenarios live in flat per-field arrays
//    addressed through one B+1 offsets table (core/wcet_estimate.hpp and
//    core/metrics.hpp grew *_batch_into variants for exactly this layout).
//    The stage loops are contiguous strides the compiler auto-vectorizes.
//  * A 64-bit-lane peel engine. The per-scenario critical-path DP keeps its
//    state in parallel scalar arrays (latest finish, DP start/weight/count/
//    prev/score) instead of an array of structs, and replaces the scalar
//    path's vector<bool> assigned flags and per-node adjacency rescans with
//    explicit uint64 bitsets: an unassigned set indexed by node id (O(1)
//    membership tests in the adjacency scans), per-direction *dirty* work
//    lists indexed by topological position (walked word by word via
//    countr_zero / countl_zero), and a Π-sink set fed by unassigned-degree
//    counters. Each peel pass recomputes only the nodes whose DP inputs
//    actually changed — an anchor tightened, a neighbour assigned, a
//    successor's latest-finish or a predecessor's (start, Σw, count) tuple
//    changed bitwise — instead of rescanning every remaining task. A node
//    whose recomputed value is bitwise unchanged stops the propagation, so
//    the incremental walk reads exactly the values a full recompute would
//    produce: the speedup is structural, never approximate.
//  * The metric's path_value() is inlined through a MetricKind template so
//    the DP inner loop pays no cross-TU call per candidate.
//
// Scenarios in a batch do NOT share graph structure (each has its own DAG),
// so the peel engine is sequential per scenario; the batching wins come from
// the staged SoA passes, the lane-walked decay of the unassigned set, and
// the removed per-pass overheads.
//
// Bit-identity contract: for every scenario, every metric and any batch
// size, the kernel's windows, pass indices, slicing stats and min-laxities
// are bit-identical to the scalar pipeline (estimate_wcets_into →
// mandatory_estimates_into → run_slicing with default options). Candidate
// ranking is literally shared code (core/critical_path.hpp's
// PathCandidate / path_candidate_better); every floating-point fold keeps
// the scalar evaluation order. Enforced by tests/test_batch_kernel.cpp.
//
// Zero-warm-allocation: all storage is capacity-tracked; a warm kernel
// re-run over a batch whose shapes were seen before performs no heap
// allocation (grow_events() stays flat — the same PR 3 contract as
// ScenarioBatch and SweepArena).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "dsslice/core/metrics.hpp"
#include "dsslice/core/slicing.hpp"
#include "dsslice/core/wcet_estimate.hpp"
#include "dsslice/gen/taskgraph_generator.hpp"
#include "dsslice/model/task.hpp"

namespace dsslice {

/// Which peel engine the kernel runs. The reference engine is the scalar
/// run_slicing pipeline behind the batch interface — kept selectable at
/// runtime so equivalence tests and A/B benchmarks exercise both through
/// one entry point.
enum class BatchLaneMode {
  kAuto,       ///< runtime selection (resolves to kLanes64 everywhere —
               ///< the lane engine is portable uint64 code)
  kReference,  ///< scalar run_slicing per scenario (validation baseline)
  kLanes64,    ///< SoA peel engine with 64-bit-lane bitset iteration
};

std::string to_string(BatchLaneMode mode);

/// Resolves kAuto to a concrete engine for the running machine.
BatchLaneMode resolve_lane_mode(BatchLaneMode requested);

/// One slicing configuration applied to every scenario of a batch (the
/// sweep evaluates one technique per run, so this is not per-scenario).
struct BatchSliceConfig {
  MetricKind metric = MetricKind::kAdaptL;
  MetricParams params;
  WcetEstimation wcet_strategy = WcetEstimation::kAverage;
  BatchLaneMode lane_mode = BatchLaneMode::kAuto;
};

/// Reusable batch slicing kernel. One instance per worker thread; run()
/// overwrites all per-batch state. Results stay valid until the next run().
class BatchSliceKernel {
 public:
  /// Slices every scenario of the batch: per scenario k the deadline
  /// assignment, slicing stats and outcome min-laxity are available through
  /// the accessors afterwards. Scenarios must satisfy run_slicing's
  /// preconditions (acyclic graph, an E-T-E deadline on every output task,
  /// ≥1 processor).
  void run(std::span<const Scenario> scenarios, const BatchSliceConfig& config);

  std::size_t size() const { return batch_size_; }

  /// Execution windows of scenario k (bit-identical to run_slicing).
  const DeadlineAssignment& assignment(std::size_t k) const {
    return assignments_[k];
  }
  /// Slicing diagnostics of scenario k; stats(k).min_laxity is over the
  /// *slicing* estimates (mandatory demand for imprecise workloads).
  const SlicingStats& stats(std::size_t k) const { return stats_[k]; }
  /// min_i (d_i − c̄_i) over the ORIGINAL estimates — the quantity
  /// evaluate_generated reports as GraphOutcome::min_laxity.
  double outcome_min_laxity(std::size_t k) const {
    return outcome_min_laxity_[k];
  }
  /// Estimated WCETs c̄ of scenario k (its slot of the flat SoA array).
  std::span<const double> estimates(std::size_t k) const {
    return {est_.data() + offsets_[k], offsets_[k + 1] - offsets_[k]};
  }

  /// Capacity growths of any kernel-owned buffer since construction. Warm
  /// re-runs at previously-seen shapes must not move this counter.
  std::uint64_t grow_events() const { return grow_events_; }

 private:
  /// Capacity-growth accounting with an over-reservation hint: when a buffer
  /// must grow it is reserved to the larger of the requested count and
  /// `hint`, so buffers sized by *this* batch's shapes (chunk totals, slot
  /// task counts) jump straight to the worst shape seen so far instead of
  /// creeping upward one chunk at a time. Without the hint a late sweep
  /// chunk whose total task count happens to exceed every earlier chunk's
  /// would re-allocate mid-steady-state and trip the zero-warm-growth gate.
  template <typename T>
  void reserve_grow(std::vector<T>& v, std::size_t count, std::size_t hint) {
    if (v.capacity() < count) {
      ++grow_events_;
      v.reserve(std::max(count, hint));
    }
  }
  /// Hint for per-node buffers: the largest task count ever seen.
  std::size_t node_hint() const { return max_tasks_seen_; }
  /// Hint for flat SoA buffers: worst batch size × worst task count (+1
  /// covers the B+1 offsets table).
  std::size_t flat_hint() const {
    return max_batch_seen_ * max_tasks_seen_ + 1;
  }

  void run_reference(const DeadlineMetric& metric);
  template <MetricKind Kind>
  void run_lanes(const DeadlineMetric& metric);
  template <MetricKind Kind>
  void peel_scenario(std::size_t k, const DeadlineMetric& metric);
  void finish_scenario(std::size_t k);

  // ---- batch staging (SoA) ----
  std::size_t batch_size_ = 0;
  std::size_t max_batch_seen_ = 0;   // running max of run() batch sizes
  std::size_t max_tasks_seen_ = 0;   // running max task count per scenario
  std::vector<const Application*> apps_;
  std::vector<std::size_t> proc_counts_;
  std::vector<std::size_t> offsets_;    // B+1 prefix sums of task counts
  std::vector<double> est_;             // c̄, flat
  std::vector<double> slice_est_;       // mandatory-scaled c̄, flat
  std::vector<double> weights_;         // metric weights ĉ / c̄, flat
  MetricWorkspace metric_ws_;

  // ---- per-batch results ----
  std::vector<DeadlineAssignment> assignments_;
  std::vector<SlicingStats> stats_;
  std::vector<double> outcome_min_laxity_;

  // One node's forward-DP record, packed so a candidate evaluation touches
  // a single cache line instead of five parallel arrays (exactly 32 bytes,
  // alignas keeps every record inside one line). The per-scenario DP state
  // is the one deliberately AoS corner of the kernel: the forward fold reads
  // all fields of a predecessor together, so splitting them only multiplies
  // cache traffic.
  struct alignas(32) NodeDp {
    Time start;
    double sum;
    double score;
    std::uint32_t count;
    NodeId prev;
  };
  static_assert(sizeof(NodeDp) == 32);
  /// Backward-pass record: L(v) plus the (immutable) metric weight, packed
  /// because the backward fold reads both per unassigned successor.
  struct LatestWeight {
    Time latest;
    double weight;
  };

  // ---- lane-engine scratch (sized per scenario) ----
  std::vector<Time> arrival_;             // anchor arrivals (−inf = unset)
  std::vector<Time> deadline_;            // anchor deadlines (+inf = unset)
  std::vector<LatestWeight> lw_;          // backward-pass L(v) + weight
  std::vector<NodeDp> dp_;                // forward-DP records
  std::vector<std::uint32_t> pos_of_;     // node id → topological position
  std::vector<std::uint32_t> up_count_;   // unassigned predecessors per node
  std::vector<std::uint32_t> us_count_;   // unassigned successors per node
  std::vector<std::uint64_t> unassigned_pos_;   // bitset over topo positions
  std::vector<std::uint64_t> unassigned_node_;  // bitset over node ids
  std::vector<std::uint64_t> sink_bits_;        // current Π-sinks (node ids)
  std::vector<std::uint64_t> dirty_back_;       // backward-pass work list
  std::vector<std::uint64_t> dirty_fwd_;        // forward-pass work list
  std::vector<NodeId> path_nodes_;        // current spine
  std::vector<double> path_weights_;
  std::vector<double> path_est_;
  std::vector<double> slices_;

  // ---- reference-engine scratch ----
  SlicingWorkspace ref_ws_;

  std::uint64_t grow_events_ = 0;
};

}  // namespace dsslice
