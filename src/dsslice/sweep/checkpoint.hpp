// Checkpoint format for resumable sweeps.
//
// A checkpoint is the sweep's durable state at a shard boundary: which
// shards have completed plus each completed shard's SweepAggregate. Because
// the final result is a fold of per-shard aggregates in shard-index order,
// persisting the *per-shard* aggregates (rather than a running merge) makes
// resume trivially bit-identical to an uninterrupted run — the engine
// restores the completed shards, computes the missing ones, and folds
// exactly the same sequence.
//
// The file is the repo's usual line-oriented text format with a version
// header ("dsslice-sweep-checkpoint 1"). Doubles are stored as 16-hex-digit
// raw bit patterns, not decimals: Welford state must round-trip to the last
// bit or the resumed aggregates drift from the uninterrupted ones.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dsslice/sim/experiment.hpp"
#include "dsslice/sweep/aggregate.hpp"

namespace dsslice {

/// Durable sweep state: layout parameters, a completed-shard bitmap and the
/// per-shard aggregates (entries for incomplete shards are default-empty).
struct SweepCheckpoint {
  /// Fingerprint of the ExperimentConfig the sweep ran under (see
  /// sweep_config_fingerprint). Resuming under a different configuration is
  /// rejected — the restored aggregates would silently mix distributions.
  std::uint64_t fingerprint = 0;
  std::uint64_t scenario_count = 0;
  std::uint64_t shard_size = 0;
  std::vector<std::uint8_t> completed;  ///< one flag per shard
  std::vector<SweepAggregate> shards;   ///< one aggregate per shard

  std::size_t shard_count() const { return completed.size(); }
  std::size_t completed_count() const;
};

/// FNV-1a fingerprint over a canonical rendering of every field that
/// affects sweep outcomes: generator (platform + workload + base seed),
/// technique, metric parameters, WCET strategy, scheduler options and
/// algorithm. graph_count is deliberately excluded — the sweep supplies its
/// own scenario count.
std::uint64_t sweep_config_fingerprint(const ExperimentConfig& config);

/// Canonical text form of one aggregate — exposed so tests and benches can
/// assert bit-identity of two aggregates without poking at Welford state.
std::string serialize_sweep_aggregate(const SweepAggregate& aggregate);

std::string serialize_sweep_checkpoint(const SweepCheckpoint& checkpoint);
/// Throws ConfigError (with a line number) on version mismatch, truncation
/// or corruption.
SweepCheckpoint parse_sweep_checkpoint(const std::string& text);

/// Atomic save: writes to `path + ".tmp"` then renames over `path`, so an
/// interrupt mid-write leaves the previous checkpoint intact. Returns the
/// serialized size in bytes (feeds the sweep.checkpoint.bytes counter).
std::size_t save_sweep_checkpoint(const SweepCheckpoint& checkpoint,
                                  const std::string& path);
/// Throws ConfigError when the file is missing or malformed.
SweepCheckpoint load_sweep_checkpoint(const std::string& path);

}  // namespace dsslice
