#include "dsslice/sweep/checkpoint.hpp"

#include <bit>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "dsslice/util/check.hpp"

namespace dsslice {

namespace {

constexpr int kFormatVersion = 1;

/// Sanity bound on shard counts. A count beyond this is a corrupted file,
/// not a real sweep; rejecting it up front avoids huge allocations.
constexpr std::uint64_t kMaxShardCount = 1'000'000;

/// Raw IEEE-754 bit pattern as 16 hex digits — exact round-trip by
/// construction (decimal formatting is not trusted for Welford state).
std::string hex64(double x) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(std::bit_cast<std::uint64_t>(x)));
  return buf;
}

/// Tokenized line reader with position tracking for error messages
/// (mirrors sim/serialization.cpp).
class LineReader {
 public:
  explicit LineReader(const std::string& text) : in_(text) {}

  std::vector<std::string> next() {
    std::string line;
    while (std::getline(in_, line)) {
      ++line_no_;
      const std::size_t hash = line.find('#');
      if (hash != std::string::npos) {
        line = line.substr(0, hash);
      }
      std::istringstream ls(line);
      std::vector<std::string> tokens;
      std::string tok;
      while (ls >> tok) {
        tokens.push_back(tok);
      }
      if (!tokens.empty()) {
        return tokens;
      }
    }
    fail("unexpected end of input");
  }

  [[noreturn]] void fail(const std::string& why) const {
    throw ConfigError("sweep checkpoint parse error at line " +
                      std::to_string(line_no_) + ": " + why);
  }

  void expect(const std::vector<std::string>& tokens,
              const std::string& keyword, std::size_t arity) const {
    if (tokens.empty() || tokens[0] != keyword ||
        tokens.size() != arity + 1) {
      fail("expected '" + keyword + "' with " + std::to_string(arity) +
           " argument(s)");
    }
  }

  std::uint64_t to_u64(const std::string& tok) const {
    if (tok.empty() || tok[0] == '-') {
      fail("not an unsigned integer: " + tok);
    }
    errno = 0;
    char* end = nullptr;
    const unsigned long long v = std::strtoull(tok.c_str(), &end, 10);
    if (end == nullptr || *end != '\0' || errno == ERANGE) {
      fail("not an unsigned integer: " + tok);
    }
    return static_cast<std::uint64_t>(v);
  }

  double to_hex_double(const std::string& tok) const {
    if (tok.size() != 16) {
      fail("not a 16-hex-digit bit pattern: " + tok);
    }
    errno = 0;
    char* end = nullptr;
    const unsigned long long v = std::strtoull(tok.c_str(), &end, 16);
    if (end == nullptr || *end != '\0' || errno == ERANGE) {
      fail("not a 16-hex-digit bit pattern: " + tok);
    }
    return std::bit_cast<double>(static_cast<std::uint64_t>(v));
  }

 private:
  std::istringstream in_;
  int line_no_ = 0;
};

void write_stat(std::ostringstream& os, const std::string& name,
                const RunningStats& stats) {
  const RunningStatsState s = stats.state();
  os << "stat " << name << ' ' << s.n << ' ' << hex64(s.mean) << ' '
     << hex64(s.m2) << ' ' << hex64(s.sum) << ' ' << hex64(s.min) << ' '
     << hex64(s.max) << '\n';
}

RunningStats read_stat(LineReader& reader, const std::string& name) {
  const std::vector<std::string> tokens = reader.next();
  if (tokens.size() != 8 || tokens[0] != "stat" || tokens[1] != name) {
    reader.fail("expected 'stat " + name + "' with 6 argument(s)");
  }
  RunningStatsState s;
  s.n = static_cast<std::size_t>(reader.to_u64(tokens[2]));
  s.mean = reader.to_hex_double(tokens[3]);
  s.m2 = reader.to_hex_double(tokens[4]);
  s.sum = reader.to_hex_double(tokens[5]);
  s.min = reader.to_hex_double(tokens[6]);
  s.max = reader.to_hex_double(tokens[7]);
  return RunningStats::from_state(s);
}

void write_aggregate(std::ostringstream& os, const SweepAggregate& a) {
  os << "success " << a.success.successes() << ' ' << a.success.trials()
     << '\n';
  write_stat(os, "min_laxity", a.min_laxity);
  write_stat(os, "max_lateness", a.max_lateness);
  write_stat(os, "makespan", a.makespan);
  write_stat(os, "slicing_passes", a.slicing_passes);
  write_stat(os, "task_count", a.task_count);
  os << "hist " << hex64(a.laxity.lo()) << ' ' << hex64(a.laxity.hi()) << ' '
     << a.laxity.underflow() << ' ' << a.laxity.overflow();
  for (std::size_t b = 0; b < LinearHistogram::kBinCount; ++b) {
    os << ' ' << a.laxity.bin(b);
  }
  os << '\n';
}

SweepAggregate read_aggregate(LineReader& reader) {
  SweepAggregate a;
  std::vector<std::string> tokens = reader.next();
  reader.expect(tokens, "success", 2);
  const std::uint64_t successes = reader.to_u64(tokens[1]);
  const std::uint64_t trials = reader.to_u64(tokens[2]);
  if (successes > trials) {
    reader.fail("success count exceeds trial count");
  }
  a.success.add_many(successes, trials);
  a.min_laxity = read_stat(reader, "min_laxity");
  a.max_lateness = read_stat(reader, "max_lateness");
  a.makespan = read_stat(reader, "makespan");
  a.slicing_passes = read_stat(reader, "slicing_passes");
  a.task_count = read_stat(reader, "task_count");
  tokens = reader.next();
  reader.expect(tokens, "hist", 4 + LinearHistogram::kBinCount);
  const double lo = reader.to_hex_double(tokens[1]);
  const double hi = reader.to_hex_double(tokens[2]);
  if (!(lo < hi)) {
    reader.fail("histogram range is empty");
  }
  a.laxity = LinearHistogram(lo, hi);
  std::array<std::uint64_t, LinearHistogram::kBinCount> bins{};
  for (std::size_t b = 0; b < LinearHistogram::kBinCount; ++b) {
    bins[b] = reader.to_u64(tokens[5 + b]);
  }
  LinearHistogramAccess::restore(a.laxity, reader.to_u64(tokens[3]),
                                 reader.to_u64(tokens[4]), bins);
  return a;
}

/// FNV-1a 64-bit over a byte string.
std::uint64_t fnv1a(const std::string& bytes) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : bytes) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace

std::size_t SweepCheckpoint::completed_count() const {
  std::size_t n = 0;
  for (const std::uint8_t flag : completed) {
    n += flag != 0 ? 1 : 0;
  }
  return n;
}

std::uint64_t sweep_config_fingerprint(const ExperimentConfig& config) {
  const PlatformConfig& p = config.generator.platform;
  const WorkloadConfig& w = config.generator.workload;
  const MetricParams& mp = config.metric_params;
  std::ostringstream os;
  os << "dsslice-sweep-config-v1"
     << " m=" << p.processor_count << " classes=" << p.min_class_count << ','
     << p.max_class_count << " bus=" << hex64(p.bus_delay_per_item)
     << " dev=" << hex64(p.class_deviation)
     << " cmodel=" << static_cast<int>(p.class_model)
     << " tasks=" << w.min_tasks << ',' << w.max_tasks << " depth="
     << w.min_depth << ',' << w.max_depth << " degree=" << w.min_degree << ','
     << w.max_degree << " locality=" << static_cast<int>(w.edge_locality)
     << " cmean=" << hex64(w.mean_execution_time) << " etd=" << hex64(w.etd)
     << " inel=" << hex64(w.ineligible_probability)
     << " olr=" << hex64(w.olr) << " spread=" << hex64(w.olr_spread)
     << " ccr=" << hex64(w.ccr) << " opt=" << hex64(w.min_optional_fraction)
     << ',' << hex64(w.max_optional_fraction)
     << " intmsg=" << (w.integral_messages ? 1 : 0)
     << " seed=" << config.generator.base_seed
     << " technique=" << static_cast<int>(config.technique)
     << " kg=" << hex64(mp.k_global) << " kl=" << hex64(mp.k_local)
     << " tf=" << hex64(mp.threshold_factor) << " to="
     << (mp.threshold_override.has_value() ? hex64(*mp.threshold_override)
                                           : std::string("none"))
     << " kr=" << hex64(mp.k_resource)
     << " tps=" << (mp.temporal_parallel_sets ? 1 : 0)
     << " wcet=" << static_cast<int>(config.wcet_strategy)
     << " placement=" << static_cast<int>(config.scheduler.placement)
     << " abort=" << (config.scheduler.abort_on_miss ? 1 : 0)
     << " bus_contention="
     << (config.scheduler.simulate_bus_contention ? 1 : 0)
     << " algorithm=" << static_cast<int>(config.algorithm);
  return fnv1a(os.str());
}

std::string serialize_sweep_aggregate(const SweepAggregate& aggregate) {
  std::ostringstream os;
  write_aggregate(os, aggregate);
  return os.str();
}

std::string serialize_sweep_checkpoint(const SweepCheckpoint& checkpoint) {
  std::ostringstream os;
  os << "dsslice-sweep-checkpoint " << kFormatVersion << '\n';
  os << "fingerprint " << checkpoint.fingerprint << '\n';
  os << "scenarios " << checkpoint.scenario_count << '\n';
  os << "shard-size " << checkpoint.shard_size << '\n';
  os << "shard-count " << checkpoint.shard_count() << '\n';
  os << "completed " << checkpoint.completed_count() << '\n';
  for (std::size_t s = 0; s < checkpoint.shard_count(); ++s) {
    if (checkpoint.completed[s] == 0) {
      continue;
    }
    os << "shard " << s << '\n';
    write_aggregate(os, checkpoint.shards[s]);
  }
  os << "end\n";
  return os.str();
}

SweepCheckpoint parse_sweep_checkpoint(const std::string& text) {
  LineReader reader(text);
  std::vector<std::string> tokens = reader.next();
  reader.expect(tokens, "dsslice-sweep-checkpoint", 1);
  if (reader.to_u64(tokens[1]) != static_cast<std::uint64_t>(kFormatVersion)) {
    reader.fail("unsupported checkpoint format version " + tokens[1] +
                " (this build reads version " +
                std::to_string(kFormatVersion) + ")");
  }
  SweepCheckpoint cp;
  tokens = reader.next();
  reader.expect(tokens, "fingerprint", 1);
  cp.fingerprint = reader.to_u64(tokens[1]);
  tokens = reader.next();
  reader.expect(tokens, "scenarios", 1);
  cp.scenario_count = reader.to_u64(tokens[1]);
  tokens = reader.next();
  reader.expect(tokens, "shard-size", 1);
  cp.shard_size = reader.to_u64(tokens[1]);
  if (cp.shard_size == 0) {
    reader.fail("shard size must be positive");
  }
  tokens = reader.next();
  reader.expect(tokens, "shard-count", 1);
  const std::uint64_t shard_count = reader.to_u64(tokens[1]);
  if (shard_count > kMaxShardCount) {
    reader.fail("shard count " + tokens[1] +
                " exceeds the sanity bound of " +
                std::to_string(kMaxShardCount));
  }
  const std::uint64_t expected_shards =
      (cp.scenario_count + cp.shard_size - 1) / cp.shard_size;
  if (shard_count != expected_shards) {
    reader.fail("shard count " + tokens[1] + " does not match " +
                std::to_string(cp.scenario_count) + " scenarios in shards of " +
                std::to_string(cp.shard_size));
  }
  tokens = reader.next();
  reader.expect(tokens, "completed", 1);
  const std::uint64_t completed_count = reader.to_u64(tokens[1]);
  if (completed_count > shard_count) {
    reader.fail("completed count exceeds shard count");
  }
  cp.completed.assign(static_cast<std::size_t>(shard_count), 0);
  cp.shards.assign(static_cast<std::size_t>(shard_count), SweepAggregate{});
  for (std::uint64_t k = 0; k < completed_count; ++k) {
    tokens = reader.next();
    reader.expect(tokens, "shard", 1);
    const std::uint64_t index = reader.to_u64(tokens[1]);
    if (index >= shard_count) {
      reader.fail("shard index " + tokens[1] + " out of range");
    }
    if (cp.completed[static_cast<std::size_t>(index)] != 0) {
      reader.fail("duplicate shard " + tokens[1]);
    }
    cp.completed[static_cast<std::size_t>(index)] = 1;
    cp.shards[static_cast<std::size_t>(index)] = read_aggregate(reader);
  }
  tokens = reader.next();
  reader.expect(tokens, "end", 0);
  return cp;
}

std::size_t save_sweep_checkpoint(const SweepCheckpoint& checkpoint,
                                  const std::string& path) {
  const std::string tmp = path + ".tmp";
  const std::string text = serialize_sweep_checkpoint(checkpoint);
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      throw ConfigError("cannot write sweep checkpoint: " + tmp);
    }
    out << text;
    out.flush();
    if (!out) {
      throw ConfigError("write failed for sweep checkpoint: " + tmp);
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    throw ConfigError("cannot move sweep checkpoint into place: " + path);
  }
  return text.size();
}

SweepCheckpoint load_sweep_checkpoint(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw ConfigError("cannot read sweep checkpoint: " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse_sweep_checkpoint(buffer.str());
}

}  // namespace dsslice
