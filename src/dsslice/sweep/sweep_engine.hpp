// Batched, sharded, resumable sweep engine — the throughput path for the
// roadmap's 10⁶–10⁷-scenario evaluation runs.
//
// Layout: `scenario_count` scenarios are split into shards of `shard_size`
// consecutive scenario indices. A shard is the unit of scheduling,
// aggregation and checkpointing:
//
//   - workers claim shards via the thread pool; within a shard, scenarios
//     are generated in ScenarioBatch chunks (amortizing generator scratch)
//     and evaluated through evaluate_generated with a per-thread
//     ScenarioScratch — after warm-up the whole path is allocation-free
//     (sweep_arena_grow_events() is the counter the benches gate on);
//   - each shard folds its outcomes into its own SweepAggregate; the final
//     result folds per-shard aggregates in shard-index order, so thread
//     count and completion order cannot perturb a single bit;
//   - shards are run in *waves* of `checkpoint_every`: after each wave
//     barrier the engine persists the completed-shard bitmap plus per-shard
//     aggregates (sweep/checkpoint.hpp). An interrupted sweep resumed from
//     its checkpoint reproduces the uninterrupted aggregates bit-exactly.
#pragma once

#include <cstdint>
#include <string>

#include "dsslice/sim/experiment.hpp"
#include "dsslice/sweep/aggregate.hpp"
#include "dsslice/util/thread_pool.hpp"

namespace dsslice {

struct SweepOptions {
  /// Total number of scenarios (indices [0, scenario_count) under the
  /// config's base seed). Must be positive.
  std::size_t scenario_count = 0;
  /// Scenarios per shard. The shard is the checkpoint/aggregation grain:
  /// smaller shards checkpoint finer but fold more aggregates.
  std::size_t shard_size = 1024;
  /// Scenarios generated per ScenarioBatch chunk within a shard.
  std::size_t gen_chunk = 64;
  /// Checkpoint wave width in shards; 0 = one wave (checkpoint only at the
  /// end, and only when checkpoint_path is set).
  std::size_t checkpoint_every = 0;
  /// Checkpoint file path; empty disables checkpointing entirely.
  std::string checkpoint_path;
  /// When true and checkpoint_path exists, restore completed shards from it
  /// (rejecting fingerprint/layout mismatches) and compute only the rest.
  bool resume = false;
  /// Stop after running this many *new* shards (0 = no limit). This is the
  /// interruption hook: tests and benches use it to abandon a sweep at a
  /// checkpoint boundary and resume it later.
  std::size_t max_shards = 0;
  /// Route slicing techniques through the SoA batch slicing kernel
  /// (batch/slice_kernel.hpp): each generator chunk is distributed in one
  /// kernel pass, then joined back into evaluate_scheduled. Bit-identical
  /// aggregates to the scalar path by the kernel's equivalence contract; off
  /// switch kept for A/B benchmarking and as a fallback. Ignored for
  /// non-slicing techniques.
  bool use_batch_kernel = true;
};

struct SweepReport {
  SweepAggregate aggregate;  ///< fold of completed shards in index order
  std::size_t shard_count = 0;
  std::size_t shards_run = 0;      ///< shards computed by this call
  std::size_t shards_resumed = 0;  ///< shards restored from the checkpoint
  std::size_t checkpoints_written = 0;
  bool complete = false;  ///< every shard completed (run or resumed)
  double wall_seconds = 0.0;

  std::uint64_t scenarios() const { return aggregate.scenarios(); }
};

/// Runs (or resumes) a sweep on the given pool. Throws ConfigError for
/// invalid options or a checkpoint that does not match the configuration.
SweepReport run_sweep(const ExperimentConfig& config,
                      const SweepOptions& options, ThreadPool& pool);

/// Convenience overload using the process-wide pool.
SweepReport run_sweep(const ExperimentConfig& config,
                      const SweepOptions& options);

/// Capacity growths observed inside the sweep's per-thread arenas
/// (generator batch storage + scratch, scheduler workspaces, estimate
/// buffers) since process start, including arenas of exited threads. Warm
/// sweeps must not move this counter — the zero-allocation gate enforced by
/// bench/perf_sweep and the sweep tests.
std::uint64_t sweep_arena_grow_events();

}  // namespace dsslice
