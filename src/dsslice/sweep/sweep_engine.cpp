#include "dsslice/sweep/sweep_engine.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <filesystem>
#include <mutex>
#include <vector>

#include "dsslice/batch/slice_kernel.hpp"
#include "dsslice/gen/scenario_batch.hpp"
#include "dsslice/obs/trace.hpp"
#include "dsslice/sweep/checkpoint.hpp"
#include "dsslice/util/check.hpp"

namespace dsslice {

namespace {

/// Per-thread arena: one scenario batch (generator storage + scratch) and
/// one evaluation scratch, reused across every shard the thread runs.
/// Arenas self-register so sweep_arena_grow_events() can see the growth
/// counters of live threads; a dying thread flushes its count into the
/// retired tally (the obs registry's live+retired idiom).
class SweepArena {
 public:
  SweepArena();
  ~SweepArena();

  SweepArena(const SweepArena&) = delete;
  SweepArena& operator=(const SweepArena&) = delete;

  ScenarioBatch batch;
  ScenarioScratch scratch;
  BatchSliceKernel kernel;

  /// Counts capacity growths of the scratch buffers that no workspace
  /// accounts for itself (the estimate vectors). Called between shards —
  /// after the first shard these capacities are warm and stable.
  void note_extra_capacity() {
    extra_grow_ += scratch.est.capacity() > est_cap_ ? 1 : 0;
    est_cap_ = std::max(est_cap_, scratch.est.capacity());
    extra_grow_ += scratch.mandatory_est.capacity() > mand_cap_ ? 1 : 0;
    mand_cap_ = std::max(mand_cap_, scratch.mandatory_est.capacity());
  }

  std::uint64_t grow_events() const {
    return batch.grow_events() + scratch.sched.grow_events() +
           kernel.grow_events() + extra_grow_;
  }

 private:
  std::uint64_t extra_grow_ = 0;
  std::size_t est_cap_ = 0;
  std::size_t mand_cap_ = 0;
};

struct ArenaRegistry {
  std::mutex mutex;
  std::vector<const SweepArena*> live;
  std::uint64_t retired = 0;
};

ArenaRegistry& arena_registry() {
  // Leaked on purpose: worker thread_locals may outlive any static with a
  // destructor, and a reachable singleton is not a leak to LSan.
  static ArenaRegistry* registry = new ArenaRegistry;
  return *registry;
}

SweepArena::SweepArena() {
  ArenaRegistry& reg = arena_registry();
  const std::lock_guard<std::mutex> lock(reg.mutex);
  reg.live.push_back(this);
}

SweepArena::~SweepArena() {
  ArenaRegistry& reg = arena_registry();
  const std::lock_guard<std::mutex> lock(reg.mutex);
  std::erase(reg.live, this);
  reg.retired += grow_events();
}

SweepArena& local_arena() {
  thread_local SweepArena arena;
  return arena;
}

void validate_options(const SweepOptions& options) {
  if (options.scenario_count == 0) {
    throw ConfigError("sweep scenario_count must be positive");
  }
  if (options.shard_size == 0) {
    throw ConfigError("sweep shard_size must be positive");
  }
  if (options.gen_chunk == 0) {
    throw ConfigError("sweep gen_chunk must be positive");
  }
  if (options.resume && options.checkpoint_path.empty()) {
    throw ConfigError("sweep resume requires a checkpoint path");
  }
}

}  // namespace

std::uint64_t sweep_arena_grow_events() {
  ArenaRegistry& reg = arena_registry();
  const std::lock_guard<std::mutex> lock(reg.mutex);
  std::uint64_t total = reg.retired;
  for (const SweepArena* arena : reg.live) {
    total += arena->grow_events();
  }
  return total;
}

SweepReport run_sweep(const ExperimentConfig& config,
                      const SweepOptions& options, ThreadPool& pool) {
  DSSLICE_SPAN("sweep.run");
  validate_options(options);
  config.generator.validate();

  const std::size_t shard_count =
      (options.scenario_count + options.shard_size - 1) / options.shard_size;
  const std::uint64_t fingerprint = sweep_config_fingerprint(config);

  SweepCheckpoint state;
  state.fingerprint = fingerprint;
  state.scenario_count = options.scenario_count;
  state.shard_size = options.shard_size;
  state.completed.assign(shard_count, 0);
  state.shards.assign(shard_count, SweepAggregate{});

  SweepReport report;
  report.shard_count = shard_count;

  if (options.resume &&
      std::filesystem::exists(options.checkpoint_path)) {
    SweepCheckpoint loaded = load_sweep_checkpoint(options.checkpoint_path);
    if (loaded.fingerprint != fingerprint) {
      throw ConfigError(
          "sweep checkpoint " + options.checkpoint_path +
          " was written under a different experiment configuration "
          "(fingerprint mismatch) — refusing to mix aggregates");
    }
    if (loaded.scenario_count != options.scenario_count ||
        loaded.shard_size != options.shard_size) {
      throw ConfigError(
          "sweep checkpoint " + options.checkpoint_path +
          " has a different layout (" +
          std::to_string(loaded.scenario_count) + " scenarios in shards of " +
          std::to_string(loaded.shard_size) + ") than this sweep");
    }
    state = std::move(loaded);
    report.shards_resumed = state.completed_count();
    DSSLICE_COUNT("sweep.shards_resumed",
                  static_cast<std::int64_t>(report.shards_resumed));
  }

  std::vector<std::size_t> pending;
  pending.reserve(shard_count);
  for (std::size_t s = 0; s < shard_count; ++s) {
    if (state.completed[s] == 0) {
      pending.push_back(s);
    }
  }
  if (options.max_shards != 0 && pending.size() > options.max_shards) {
    pending.resize(options.max_shards);
  }

  const bool checkpointing = !options.checkpoint_path.empty();
  const std::size_t wave_width =
      options.checkpoint_every == 0 ? std::max<std::size_t>(1, pending.size())
                                    : options.checkpoint_every;

  // Progress feed for the streaming sink's heartbeat (obs/stream.cpp):
  // cumulative sweep.progress.* counters plus per-wave gauges. Recording
  // them is independent of whether a sink is attached, so a streaming run
  // and a plain run execute identical instruction streams through the
  // sweep itself — the aggregates stay bit-identical either way.
  const std::size_t waves_total =
      pending.empty() ? 0 : (pending.size() + wave_width - 1) / wave_width;
  DSSLICE_GAUGE("sweep.progress.scenarios_total",
                static_cast<std::int64_t>(options.scenario_count));
  DSSLICE_GAUGE("sweep.progress.waves_total",
                static_cast<std::int64_t>(waves_total));
  DSSLICE_GAUGE("sweep.progress.shards_resumed",
                static_cast<std::int64_t>(report.shards_resumed));
  if (report.shards_resumed > 0) {
    std::uint64_t resumed_scenarios = 0;
    std::uint64_t resumed_successes = 0;
    for (std::size_t s = 0; s < shard_count; ++s) {
      if (state.completed[s] != 0) {
        resumed_scenarios += state.shards[s].scenarios();
        resumed_successes += state.shards[s].success.successes();
      }
    }
    DSSLICE_COUNT("sweep.progress.scenarios_done",
                  static_cast<std::int64_t>(resumed_scenarios));
    DSSLICE_COUNT("sweep.progress.successes",
                  static_cast<std::int64_t>(resumed_successes));
  }

  // Slicing techniques route each generator chunk through the SoA batch
  // kernel: one kernel pass distributes the whole chunk, then every scenario
  // joins back into the scheduler half. The kernel's bit-identity contract
  // makes the aggregates indistinguishable from the scalar path.
  const bool kernel_path =
      options.use_batch_kernel && is_slicing(config.technique);
  BatchSliceConfig kernel_config;
  if (kernel_path) {
    kernel_config.metric = metric_of(config.technique);
    kernel_config.params = config.metric_params;
    kernel_config.wcet_strategy = config.wcet_strategy;
  }

  const auto run_one_shard = [&](std::size_t shard) {
    DSSLICE_SPAN("sweep.shard");
    SweepArena& arena = local_arena();
    SweepAggregate aggregate;
    const std::size_t first = shard * options.shard_size;
    const std::size_t last =
        std::min(first + options.shard_size, options.scenario_count);
    for (std::size_t chunk = first; chunk < last; chunk += options.gen_chunk) {
      const std::size_t n = std::min(options.gen_chunk, last - chunk);
      arena.batch.generate(config.generator, chunk, n);
      if (kernel_path) {
        arena.kernel.run(arena.batch.scenarios(), kernel_config);
        for (std::size_t i = 0; i < n; ++i) {
          aggregate.add(evaluate_scheduled(
              config, arena.batch[i], arena.kernel.assignment(i),
              arena.kernel.outcome_min_laxity(i), arena.kernel.stats(i).passes,
              &arena.scratch));
        }
      } else {
        for (std::size_t i = 0; i < n; ++i) {
          aggregate.add(evaluate_generated(config, arena.batch[i],
                                           &arena.scratch));
        }
      }
    }
    arena.note_extra_capacity();
    state.shards[shard] = aggregate;
    state.completed[shard] = 1;
    DSSLICE_COUNT("sweep.shards_completed", 1);
  };

  const auto t0 = std::chrono::steady_clock::now();
  std::size_t scenarios_run = 0;
  double rate_ewma = 0.0;
  for (std::size_t wave = 0; wave < pending.size(); wave += wave_width) {
    const std::size_t wave_end = std::min(wave + wave_width, pending.size());
    const auto wave_t0 = std::chrono::steady_clock::now();
    parallel_for(pool, wave_end - wave, 1,
                 [&](std::size_t begin, std::size_t end) {
                   for (std::size_t k = begin; k < end; ++k) {
                     run_one_shard(pending[wave + k]);
                   }
                 });
    const double wave_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      wave_t0)
            .count();
    std::uint64_t wave_scenarios = 0;
    std::uint64_t wave_successes = 0;
    for (std::size_t k = wave; k < wave_end; ++k) {
      wave_scenarios += state.shards[pending[k]].scenarios();
      wave_successes += state.shards[pending[k]].success.successes();
    }
    scenarios_run += wave_scenarios;
    report.shards_run += wave_end - wave;

    const double wave_rate =
        wave_seconds > 0.0
            ? static_cast<double>(wave_scenarios) / wave_seconds
            : 0.0;
    rate_ewma = rate_ewma == 0.0 ? wave_rate
                                 : 0.25 * wave_rate + 0.75 * rate_ewma;
    DSSLICE_COUNT("sweep.progress.scenarios_done",
                  static_cast<std::int64_t>(wave_scenarios));
    DSSLICE_COUNT("sweep.progress.successes",
                  static_cast<std::int64_t>(wave_successes));
    DSSLICE_GAUGE("sweep.progress.wave",
                  static_cast<std::int64_t>(wave / wave_width + 1));
    DSSLICE_GAUGE("sweep.progress.shards_done",
                  static_cast<std::int64_t>(report.shards_run +
                                            report.shards_resumed));
    DSSLICE_GAUGE("sweep.progress.scenarios_per_sec_ewma", rate_ewma);

    if (checkpointing) {
      DSSLICE_SPAN("sweep.checkpoint");
      const auto save_t0 = std::chrono::steady_clock::now();
      const std::size_t bytes =
          save_sweep_checkpoint(state, options.checkpoint_path);
      const double save_ms =
          std::chrono::duration<double, std::milli>(
              std::chrono::steady_clock::now() - save_t0)
              .count();
      ++report.checkpoints_written;
      DSSLICE_COUNT("sweep.checkpoints_written", 1);
      DSSLICE_GAUGE("sweep.checkpoint.save_ms", save_ms);
      DSSLICE_COUNT("sweep.checkpoint.bytes",
                    static_cast<std::int64_t>(bytes));
    }
  }
  const auto t1 = std::chrono::steady_clock::now();
  report.wall_seconds = std::chrono::duration<double>(t1 - t0).count();

  // Fold in shard-index order — the only order that makes thread count,
  // completion order and resume boundaries invisible in the result.
  for (std::size_t s = 0; s < shard_count; ++s) {
    if (state.completed[s] != 0) {
      report.aggregate.merge(state.shards[s]);
    }
  }
  report.complete = state.completed_count() == shard_count;

  DSSLICE_COUNT("sweep.scenarios", static_cast<std::int64_t>(scenarios_run));
  if (report.wall_seconds > 0.0 && scenarios_run > 0) {
    DSSLICE_GAUGE("sweep.scenarios_per_sec",
                  static_cast<std::int64_t>(
                      static_cast<double>(scenarios_run) /
                      report.wall_seconds));
  }
  return report;
}

SweepReport run_sweep(const ExperimentConfig& config,
                      const SweepOptions& options) {
  return run_sweep(config, options, global_pool());
}

}  // namespace dsslice
