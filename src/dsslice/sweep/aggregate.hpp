// Streaming per-shard aggregate for the million-scenario sweep engine.
//
// A sweep never retains per-scenario outcomes: every shard folds its
// GraphOutcomes into one SweepAggregate online (O(1) memory per shard) and
// the engine merges the per-shard aggregates in shard-index order. Because
// Welford merges are order-sensitive in the last bits, that fixed fold
// order is what makes 1-thread and N-thread sweeps — and interrupted-then-
// resumed sweeps — produce bit-identical results.
#pragma once

#include <string>

#include "dsslice/sim/experiment.hpp"
#include "dsslice/util/stats.hpp"

namespace dsslice {

/// Online aggregate over a set of scenario outcomes. Mirrors
/// ExperimentResult's measures and adds a laxity histogram so the sweep can
/// report the *distribution* of min-laxity (the infeasibility tail), not
/// just its moments, without retaining scenarios.
struct SweepAggregate {
  SuccessCounter success;
  RunningStats min_laxity;
  RunningStats max_lateness;   ///< over outcomes with lateness_valid
  RunningStats makespan;       ///< over successful schedules
  RunningStats slicing_passes;
  RunningStats task_count;
  LinearHistogram laxity;      ///< min-laxity distribution (default range)

  void add(const GraphOutcome& outcome);
  /// Order-sensitive merge — callers must fold shards in index order.
  void merge(const SweepAggregate& other);

  std::uint64_t scenarios() const { return success.trials(); }
  double success_ratio() const { return success.ratio(); }

  /// One-line human-readable summary.
  std::string summary(const std::string& label) const;
};

}  // namespace dsslice
