#include "dsslice/sweep/aggregate.hpp"

#include <sstream>

#include "dsslice/util/string_util.hpp"

namespace dsslice {

void SweepAggregate::add(const GraphOutcome& outcome) {
  success.add(outcome.scheduled);
  min_laxity.add(outcome.min_laxity);
  laxity.add(outcome.min_laxity);
  if (outcome.lateness_valid) {
    max_lateness.add(outcome.max_lateness);
  }
  if (outcome.scheduled) {
    makespan.add(outcome.makespan);
  }
  slicing_passes.add(static_cast<double>(outcome.slicing_passes));
  task_count.add(static_cast<double>(outcome.task_count));
}

void SweepAggregate::merge(const SweepAggregate& other) {
  success.merge(other.success);
  min_laxity.merge(other.min_laxity);
  laxity.merge(other.laxity);
  max_lateness.merge(other.max_lateness);
  makespan.merge(other.makespan);
  slicing_passes.merge(other.slicing_passes);
  task_count.merge(other.task_count);
}

std::string SweepAggregate::summary(const std::string& label) const {
  std::ostringstream os;
  os << pad_right(label, 16) << " scenarios " << scenarios() << "  success "
     << pad_left(format_percent(success_ratio(), 1), 7) << " ±"
     << format_percent(success.ci95_halfwidth(), 1) << "  min-laxity "
     << format_fixed(min_laxity.mean(), 2);
  if (makespan.count() > 0) {
    os << "  makespan " << format_fixed(makespan.mean(), 1);
  }
  return os.str();
}

}  // namespace dsslice
