#include "dsslice/core/diagnosis.hpp"

#include <algorithm>
#include <limits>

#include "dsslice/util/check.hpp"
#include "dsslice/util/string_util.hpp"

namespace dsslice {

std::string to_string(MissCause cause) {
  switch (cause) {
    case MissCause::kWindowTooSmall:
      return "window-too-small";
    case MissCause::kCommunication:
      return "communication";
    case MissCause::kContention:
      return "contention";
    case MissCause::kEligibility:
      return "eligibility";
  }
  return "unknown";
}

MissDiagnosis diagnose_failure(const Application& app,
                               const Platform& platform,
                               const DeadlineAssignment& assignment,
                               const SchedulerResult& result) {
  DSSLICE_REQUIRE(result.failed_task.has_value(),
                  "diagnosis requires a failed task");
  const NodeId v = *result.failed_task;
  const TaskGraph& g = app.graph();
  const Task& task = app.task(v);
  const Window& window = assignment.windows[v];

  MissDiagnosis diag;
  diag.task = v;

  // Best (fastest eligible, present) class and the latest feasible start.
  double best_wcet = std::numeric_limits<double>::infinity();
  ProcessorId best_proc = 0;
  bool any_eligible = false;
  for (ProcessorId p = 0; p < platform.processor_count(); ++p) {
    const ProcessorClassId e = platform.class_of(p);
    if (!task.eligible(e)) {
      continue;
    }
    any_eligible = true;
    if (task.wcet(e) < best_wcet) {
      best_wcet = task.wcet(e);
      best_proc = p;
    }
  }
  if (!any_eligible) {
    diag.cause = MissCause::kEligibility;
    diag.summary = "task " + task.name +
                   ": no processor of an eligible class on this platform";
    return diag;
  }
  diag.latest_feasible_start = window.deadline - best_wcet;

  // Earliest possible start ignoring processor contention: window arrival
  // plus the best-over-processors data availability.
  Time earliest = kTimeInfinity;
  for (ProcessorId p = 0; p < platform.processor_count(); ++p) {
    if (!task.eligible(platform.class_of(p))) {
      continue;
    }
    Time bound = window.arrival;
    for (const NodeId u : g.predecessors(v)) {
      if (!result.schedule.placed(u)) {
        continue;  // partial schedule; treat as unconstrained
      }
      const ScheduledTask& pe = result.schedule.entry(u);
      const double items = g.message_items(u, v).value_or(0.0);
      bound = std::max(bound,
                       pe.finish + platform.comm_delay(pe.processor, p,
                                                       items));
    }
    earliest = std::min(earliest, bound);
  }
  diag.earliest_possible_start = earliest;

  if (window.length() + 1e-9 < best_wcet) {
    diag.cause = MissCause::kWindowTooSmall;
    diag.summary = "task " + task.name + ": window " + to_string(window) +
                   " shorter than its fastest execution " +
                   format_fixed(best_wcet, 1) +
                   " — a deadline-distribution failure";
    return diag;
  }
  if (earliest > diag.latest_feasible_start + 1e-9) {
    diag.cause = MissCause::kCommunication;
    diag.summary = "task " + task.name + ": predecessor data arrives at " +
                   format_fixed(earliest, 1) + ", after the latest feasible"
                   " start " + format_fixed(diag.latest_feasible_start, 1);
    return diag;
  }

  // Otherwise the window and data were fine: rivals ate the window.
  diag.cause = MissCause::kContention;
  for (const NodeId other : result.schedule.on_processor(best_proc)) {
    const ScheduledTask& e = result.schedule.entry(other);
    if (e.finish > window.arrival + 1e-9 &&
        e.start < window.deadline - 1e-9) {
      diag.rivals.push_back(other);
    }
  }
  std::sort(diag.rivals.begin(), diag.rivals.end());
  diag.summary =
      "task " + task.name + ": window " + to_string(window) +
      " consumed by " + std::to_string(diag.rivals.size()) +
      " rival(s) on its best processor — a contention failure";
  return diag;
}

}  // namespace dsslice
