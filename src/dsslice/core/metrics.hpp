// Critical-path metrics for the slicing technique (§4.5).
//
// A metric does three jobs:
//  1. `weights()` — per-task weight w_i used throughout one slicing run.
//     For PURE/NORM this is the estimated WCET c̄_i; for the adaptive
//     metrics it is the *virtual execution time* ĉ_i (Eqs. 6 and 8), which
//     inflates c̄_i for tasks above the execution-time threshold in
//     proportion to the contention they are expected to face.
//  2. `path_value()` — the laxity-ratio R of a candidate path (Eqs. 2, 4);
//     the critical path is the one *minimizing* R.
//  3. `slices()` — the relative deadlines d_i that partition a path's
//     window (Eqs. 3, 5): equal-share for PURE/ADAPT-*, proportional for
//     NORM. Slices always tile the window exactly: Σ d_i = |window|.
#pragma once

#include <optional>
#include <span>
#include <string>
#include <vector>

#include "dsslice/model/application.hpp"
#include "dsslice/model/resources.hpp"
#include "dsslice/model/time.hpp"

namespace dsslice {

enum class MetricKind {
  kPure,    ///< pure laxity ratio — equal laxity share per task [5]
  kNorm,    ///< normalized laxity ratio — laxity ∝ execution time [5]
  kAdaptG,  ///< globally adaptive — surplus from average parallelism ξ [12]
  kAdaptL,  ///< locally adaptive — surplus from the parallel set Ψ_i (new)
};

std::string to_string(MetricKind kind);

/// All four metrics, in presentation order (handy for sweeps).
std::span<const MetricKind> all_metric_kinds();

/// Tunables of the adaptive metrics with the paper's default values (§6).
struct MetricParams {
  /// Global adaptivity factor k_G (ADAPT-G surplus = k_G · ξ / m).
  double k_global = 1.5;
  /// Local adaptivity factor k_L (ADAPT-L surplus = k_L · |Ψ_i| / m).
  double k_local = 0.2;
  /// Execution-time threshold as a multiple of the mean estimated WCET
  /// (paper: c_thres = 1.0 · c_mean). Only tasks with c̄_i ≥ c_thres receive
  /// a virtual execution time.
  double threshold_factor = 1.0;
  /// When set, an absolute threshold overriding threshold_factor.
  std::optional<double> threshold_override;
  /// Resource adaptivity factor k_R for the resource-aware ADAPT-L
  /// extension (§7.3 future work): parallel tasks sharing an exclusive
  /// resource with τ_i contribute k_R each to the virtual-time surplus
  /// (they serialize regardless of the processor count).
  double k_resource = 0.2;
  /// Temporal filtering of the parallel sets (ADAPT-L only; off = paper
  /// Eq. 8). Structurally unordered tasks whose *static* execution bounds
  /// [EST, LFT] (earliest start from input arrivals, latest finish from
  /// E-T-E deadlines, both over estimated WCETs) cannot overlap are dropped
  /// from Ψ_i: they can never actually contend. Without this, unrolled
  /// planning cycles make ADAPT-L count invocations from disjoint time
  /// frames as rivals and over-inflate catastrophically (ablation A13).
  bool temporal_parallel_sets = false;
};

/// Reusable buffers for DeadlineMetric::weights_into. Keeping one per worker
/// (or per slicing run) makes repeated weight computations allocation-free;
/// contents are unspecified between calls.
struct MetricWorkspace {
  std::vector<double> level;     ///< static levels (ADAPT-G ξ computation)
  std::vector<Time> est_start;   ///< EST bounds (temporal parallel sets)
  std::vector<Time> lft_finish;  ///< LFT bounds (temporal parallel sets)
};

class DeadlineMetric {
 public:
  explicit DeadlineMetric(MetricKind kind, MetricParams params = {});

  MetricKind kind() const { return kind_; }
  const MetricParams& params() const { return params_; }
  std::string name() const { return to_string(kind_); }

  /// True for ADAPT-G / ADAPT-L (affects precomputation cost).
  bool is_adaptive() const;

  /// Per-task weights for one slicing run. `est_wcet` is c̄;
  /// `processor_count` is the m in the surplus factors. ADAPT-L reads the
  /// parallel sets from the application's memoized GraphAnalysis (built once
  /// per graph, well inside the paper's O(n³) budget, §4.5); with a warm
  /// cache every metric's weights are O(n) except the temporal /
  /// resource-aware ADAPT-L variants, which scan the Ψ_i bitset rows
  /// (O(n²/64)).
  std::vector<double> weights(const Application& app,
                              std::span<const double> est_wcet,
                              std::size_t processor_count) const;

  /// Resource-aware weights (§7.3 future work): identical to weights() for
  /// every metric except ADAPT-L, whose virtual execution time becomes
  /// ĉ_i = c̄_i (1 + k_L·|Ψ_i|/m + k_R·|Ψ_i ∩ conflict(i)|) — parallel
  /// tasks sharing an exclusive resource contend at full weight because a
  /// resource, unlike the processor pool, admits one holder at a time.
  /// Passing nullptr degenerates to weights().
  std::vector<double> weights(const Application& app,
                              std::span<const double> est_wcet,
                              std::size_t processor_count,
                              const ResourceModel* resources) const;

  /// Allocation-free core of both weights() overloads: writes ĉ into `out`
  /// (resized to the task count) and scratch data into `workspace` when
  /// given. Consumes the application's memoized GraphAnalysis — no
  /// transitive closure or topological order is rebuilt, and the ADAPT-L
  /// parallel sets are walked directly over the reach/co-reach bitset words
  /// instead of being materialized. Results are bit-identical to weights().
  void weights_into(const Application& app, std::span<const double> est_wcet,
                    std::size_t processor_count,
                    const ResourceModel* resources, std::vector<double>& out,
                    MetricWorkspace* workspace = nullptr) const;

  /// Span core of weights_into: writes into a pre-sized slot of a flat SoA
  /// batch array (out.size() must equal the task count). Bit-identical to
  /// weights_into — the vector variant delegates here.
  void weights_span_into(const Application& app,
                         std::span<const double> est_wcet,
                         std::size_t processor_count,
                         const ResourceModel* resources, std::span<double> out,
                         MetricWorkspace* workspace = nullptr) const;

  /// Batch variant over B applications laid out flat by
  /// estimate_wcets_batch_into: application k's weights land in
  /// out[offsets[k], offsets[k+1]) computed against processor_counts[k].
  /// Each slot is bit-identical to weights() on that application alone.
  void weights_batch_into(std::span<const Application* const> apps,
                          std::span<const std::size_t> offsets,
                          std::span<const double> est_wcet,
                          std::span<const std::size_t> processor_counts,
                          std::span<double> out,
                          MetricWorkspace* workspace = nullptr) const;

  /// Laxity-ratio value R of a path with window length `window`, total
  /// weight `sum_weight`, and `count` tasks. Lower = more critical. Handles
  /// degenerate paths (zero weight / zero tasks) by ±infinity so they sort
  /// to the non-critical end unless the window itself is negative.
  double path_value(Time window, double sum_weight, std::size_t count) const;

  /// Relative deadlines d_i for the path tasks whose weights are given, so
  /// that Σ d_i == window (exact tiling). Negative slices are possible when
  /// the window is tighter than the weights — the schedulability test will
  /// then fail, which is the intended signal.
  std::vector<double> slices(Time window,
                             std::span<const double> path_weights) const;

  /// Slice computation for the adaptive metrics, which distinguishes the
  /// virtual execution times ĉ (`path_weights`) from the real estimates c̄
  /// (`path_est`). Three regimes (see DESIGN.md §4):
  ///  * laxity ≥ Σ(ĉ−c̄): the paper's exact formula d_i = ĉ_i + R;
  ///  * 0 < laxity < Σ(ĉ−c̄): inflation scaled to the available laxity so
  ///    adaptivity never consumes another task's required execution time
  ///    ("only certain tasks are allotted *extra* laxities", §4.5);
  ///  * laxity ≤ 0: degenerate to PURE on the real estimates.
  /// Non-adaptive metrics delegate to slices(). Σ d_i == window always.
  std::vector<double> adaptive_slices(Time window,
                                      std::span<const double> path_weights,
                                      std::span<const double> path_est) const;

  /// Allocation-free variants of slices() / adaptive_slices(): the result is
  /// written into `out` (resized to the path length). `out` must not alias
  /// the input spans.
  void slices_into(Time window, std::span<const double> path_weights,
                   std::vector<double>& out) const;
  void adaptive_slices_into(Time window, std::span<const double> path_weights,
                            std::span<const double> path_est,
                            std::vector<double>& out) const;

  /// The effective execution-time threshold used by weights() for the given
  /// estimates (exposed for tests and diagnostics).
  double effective_threshold(std::span<const double> est_wcet) const;

 private:
  MetricKind kind_;
  MetricParams params_;
};

}  // namespace dsslice
