// Failure diagnosis: explain WHY a task missed its deadline.
//
// A success-ratio experiment says only that a task set failed; improving a
// metric requires knowing the failure mode. Given the failing task and the
// (possibly partial) schedule, the diagnosis classifies the miss:
//
//  * kWindowTooSmall  — the window cannot hold the task's own execution on
//                       any eligible class: a pure deadline-distribution
//                       failure, no scheduler could help;
//  * kCommunication   — the window could hold the task, but predecessor
//                       messages arrive too late for any eligible processor;
//  * kContention      — data and window were fine, but every eligible
//                       processor was busy past the latest feasible start:
//                       the window was consumed by overlapping rivals;
//  * kEligibility     — no processor of an eligible class exists.
//
// The report also names the rival tasks occupying the diagnosed task's
// window on its best processor — the contention witnesses.
#pragma once

#include <string>
#include <vector>

#include "dsslice/model/application.hpp"
#include "dsslice/model/platform.hpp"
#include "dsslice/model/task.hpp"
#include "dsslice/sched/edf_list_scheduler.hpp"

namespace dsslice {

enum class MissCause {
  kWindowTooSmall,
  kCommunication,
  kContention,
  kEligibility,
};

std::string to_string(MissCause cause);

struct MissDiagnosis {
  NodeId task = 0;
  MissCause cause = MissCause::kWindowTooSmall;
  /// Latest start that would still have met the deadline on the best class.
  Time latest_feasible_start = kTimeZero;
  /// Earliest the task could actually have started (data + window).
  Time earliest_possible_start = kTimeZero;
  /// Tasks scheduled inside the window on the task's best processor
  /// (contention witnesses; empty for non-contention causes).
  std::vector<NodeId> rivals;
  /// One-line human-readable explanation.
  std::string summary;
};

/// Diagnoses why `result.failed_task` missed. The schedule must contain the
/// failed task's predecessors (guaranteed by the EDF list scheduler, which
/// fails at the first miss). Requires result.failed_task to be set.
MissDiagnosis diagnose_failure(const Application& app,
                               const Platform& platform,
                               const DeadlineAssignment& assignment,
                               const SchedulerResult& result);

}  // namespace dsslice
