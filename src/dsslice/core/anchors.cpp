#include "dsslice/core/anchors.hpp"

#include <algorithm>

#include "dsslice/util/check.hpp"

namespace dsslice {

AnchorState::AnchorState(const Application& app)
    : assigned_(app.task_count(), false),
      arrival_(app.task_count(), -kTimeInfinity),
      deadline_(app.task_count(), kTimeInfinity),
      window_(app.task_count()),
      remaining_(app.task_count()) {
  const TaskGraph& g = app.graph();
  for (NodeId v = 0; v < app.task_count(); ++v) {
    if (g.is_input(v)) {
      arrival_[v] = app.input_arrival(v);
    }
    if (g.is_output(v) && app.has_ete_deadline(v)) {
      deadline_[v] = app.ete_deadline(v);
    }
  }
}

void AnchorState::require_node(NodeId v) const {
  DSSLICE_REQUIRE(v < assigned_.size(), "node id out of range");
}

bool AnchorState::assigned(NodeId v) const {
  require_node(v);
  return assigned_[v];
}

bool AnchorState::has_arrival_anchor(NodeId v) const {
  require_node(v);
  return arrival_[v] > -kTimeInfinity;
}

bool AnchorState::has_deadline_anchor(NodeId v) const {
  require_node(v);
  return deadline_[v] < kTimeInfinity;
}

Time AnchorState::arrival_anchor(NodeId v) const {
  require_node(v);
  return arrival_[v];
}

Time AnchorState::deadline_anchor(NodeId v) const {
  require_node(v);
  return deadline_[v];
}

void AnchorState::tighten_arrival(NodeId v, Time arrival) {
  require_node(v);
  DSSLICE_CHECK(!assigned_[v], "cannot tighten an assigned task");
  arrival_[v] = std::max(arrival_[v], arrival);
}

void AnchorState::tighten_deadline(NodeId v, Time deadline) {
  require_node(v);
  DSSLICE_CHECK(!assigned_[v], "cannot tighten an assigned task");
  deadline_[v] = std::min(deadline_[v], deadline);
}

void AnchorState::mark_assigned(NodeId v, const Window& w) {
  require_node(v);
  DSSLICE_CHECK(!assigned_[v], "task assigned twice");
  assigned_[v] = true;
  window_[v] = w;
  --remaining_;
}

const Window& AnchorState::window(NodeId v) const {
  require_node(v);
  DSSLICE_REQUIRE(assigned_[v], "task has no window yet");
  return window_[v];
}

bool AnchorState::is_pi_source(const TaskGraph& g, NodeId v) const {
  require_node(v);
  if (assigned_[v]) {
    return false;
  }
  for (const NodeId u : g.predecessors(v)) {
    if (!assigned_[u]) {
      return false;
    }
  }
  return true;
}

bool AnchorState::is_pi_sink(const TaskGraph& g, NodeId v) const {
  require_node(v);
  if (assigned_[v]) {
    return false;
  }
  for (const NodeId w : g.successors(v)) {
    if (!assigned_[w]) {
      return false;
    }
  }
  return true;
}

}  // namespace dsslice
