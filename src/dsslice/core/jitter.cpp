#include "dsslice/core/jitter.hpp"

#include <algorithm>
#include <limits>

#include "dsslice/analysis/graph_analysis.hpp"
#include "dsslice/core/wcet_estimate.hpp"
#include "dsslice/util/check.hpp"

namespace dsslice {

namespace {

/// Worst-case nominal message delay over any processor pair.
Time worst_pair_delay(const Platform& platform, double items) {
  Time worst = kTimeZero;
  for (ProcessorId a = 0; a < platform.processor_count(); ++a) {
    for (ProcessorId b = 0; b < platform.processor_count(); ++b) {
      worst = std::max(worst, platform.comm_delay(a, b, items));
    }
  }
  return worst;
}

}  // namespace

std::vector<JitterBound> precedence_release_jitter(const Application& app,
                                                   const Platform& platform) {
  const TaskGraph& g = app.graph();
  const std::size_t n = g.node_count();
  const GraphAnalysis& analysis = app.analysis();

  const auto est_min = estimate_wcets(app, WcetEstimation::kMin);
  const auto est_max = estimate_wcets(app, WcetEstimation::kMax);

  std::vector<JitterBound> bounds(n);
  for (const NodeId v : analysis.topological_order()) {
    Time earliest = g.is_input(v) ? app.input_arrival(v) : kTimeZero;
    Time latest = earliest;
    for (const NodeId u : analysis.predecessors(v)) {
      // Best case: predecessor released earliest, ran its fastest class,
      // and is co-located (zero communication).
      earliest = std::max(earliest,
                          bounds[u].earliest_release + est_min[u]);
      // Worst case: predecessor released latest, ran its slowest class,
      // and the message crossed the slowest processor pair.
      const double items = g.message_items(u, v).value_or(0.0);
      latest = std::max(latest, bounds[u].latest_release + est_max[u] +
                                    worst_pair_delay(platform, items));
    }
    bounds[v] = JitterBound{earliest, std::max(earliest, latest)};
  }
  return bounds;
}

std::vector<JitterBound> sliced_release_jitter(
    const Application& app, const DeadlineAssignment& assignment) {
  DSSLICE_REQUIRE(assignment.windows.size() == app.task_count(),
                  "assignment size mismatch");
  std::vector<JitterBound> bounds(app.task_count());
  for (NodeId v = 0; v < app.task_count(); ++v) {
    // Slice arrivals are constants: release = a_i exactly, jitter 0.
    bounds[v] = JitterBound{assignment.windows[v].arrival,
                            assignment.windows[v].arrival};
  }
  return bounds;
}

JitterSummary summarize_jitter(std::span<const JitterBound> bounds) {
  JitterSummary summary;
  if (bounds.empty()) {
    return summary;
  }
  Time total = kTimeZero;
  for (const JitterBound& b : bounds) {
    summary.max_jitter = std::max(summary.max_jitter, b.jitter());
    total += b.jitter();
  }
  summary.mean_jitter = total / static_cast<double>(bounds.size());
  return summary;
}

}  // namespace dsslice
