#include "dsslice/core/wcet_estimate.hpp"

#include <algorithm>
#include <limits>

#include "dsslice/util/check.hpp"

namespace dsslice {

std::string to_string(WcetEstimation strategy) {
  switch (strategy) {
    case WcetEstimation::kAverage:
      return "WCET-AVG";
    case WcetEstimation::kMax:
      return "WCET-MAX";
    case WcetEstimation::kMin:
      return "WCET-MIN";
  }
  return "unknown";
}

double estimate_wcet(const Task& task, WcetEstimation strategy) {
  double sum = 0.0;
  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();
  std::size_t count = 0;
  for (ProcessorClassId e = 0;
       e < static_cast<ProcessorClassId>(task.wcet_by_class.size()); ++e) {
    if (!task.eligible(e)) {
      continue;
    }
    const double c = task.wcet(e);
    sum += c;
    lo = std::min(lo, c);
    hi = std::max(hi, c);
    ++count;
  }
  DSSLICE_REQUIRE(count > 0,
                  "task " + task.name + " has no eligible class");
  switch (strategy) {
    case WcetEstimation::kAverage:
      return sum / static_cast<double>(count);
    case WcetEstimation::kMax:
      return hi;
    case WcetEstimation::kMin:
      return lo;
  }
  DSSLICE_CHECK(false, "unhandled WCET estimation strategy");
  return 0.0;
}

std::vector<double> estimate_wcets(const Application& app,
                                   WcetEstimation strategy) {
  std::vector<double> out;
  estimate_wcets_into(app, strategy, out);
  return out;
}

void estimate_wcets_into(const Application& app, WcetEstimation strategy,
                         std::vector<double>& out) {
  out.resize(app.task_count());
  for (NodeId i = 0; i < app.task_count(); ++i) {
    out[i] = estimate_wcet(app.task(i), strategy);
  }
}

std::vector<double> mandatory_estimates(const Application& app,
                                        std::span<const double> est_wcet) {
  std::vector<double> out;
  mandatory_estimates_into(app, est_wcet, out);
  return out;
}

void mandatory_estimates_into(const Application& app,
                              std::span<const double> est_wcet,
                              std::vector<double>& out) {
  DSSLICE_REQUIRE(est_wcet.size() == app.task_count(),
                  "estimate vector size mismatch");
  out.resize(est_wcet.size());
  for (NodeId i = 0; i < app.task_count(); ++i) {
    const double f = app.task(i).optional_fraction;
    out[i] = f == 0.0 ? est_wcet[i] : est_wcet[i] * (1.0 - f);
  }
}

}  // namespace dsslice
