#include "dsslice/core/wcet_estimate.hpp"

#include <algorithm>
#include <limits>

#include "dsslice/util/check.hpp"

namespace dsslice {

std::string to_string(WcetEstimation strategy) {
  switch (strategy) {
    case WcetEstimation::kAverage:
      return "WCET-AVG";
    case WcetEstimation::kMax:
      return "WCET-MAX";
    case WcetEstimation::kMin:
      return "WCET-MIN";
  }
  return "unknown";
}

double estimate_wcet(const Task& task, WcetEstimation strategy) {
  double sum = 0.0;
  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();
  std::size_t count = 0;
  for (ProcessorClassId e = 0;
       e < static_cast<ProcessorClassId>(task.wcet_by_class.size()); ++e) {
    if (!task.eligible(e)) {
      continue;
    }
    const double c = task.wcet(e);
    sum += c;
    lo = std::min(lo, c);
    hi = std::max(hi, c);
    ++count;
  }
  DSSLICE_REQUIRE(count > 0,
                  "task " + task.name + " has no eligible class");
  switch (strategy) {
    case WcetEstimation::kAverage:
      return sum / static_cast<double>(count);
    case WcetEstimation::kMax:
      return hi;
    case WcetEstimation::kMin:
      return lo;
  }
  DSSLICE_CHECK(false, "unhandled WCET estimation strategy");
  return 0.0;
}

std::vector<double> estimate_wcets(const Application& app,
                                   WcetEstimation strategy) {
  std::vector<double> out;
  estimate_wcets_into(app, strategy, out);
  return out;
}

void estimate_wcets_into(const Application& app, WcetEstimation strategy,
                         std::vector<double>& out) {
  out.resize(app.task_count());
  estimate_wcets_into(app, strategy, std::span<double>{out});
}

void estimate_wcets_into(const Application& app, WcetEstimation strategy,
                         std::span<double> out) {
  DSSLICE_REQUIRE(out.size() == app.task_count(),
                  "output span size mismatch");
  for (NodeId i = 0; i < app.task_count(); ++i) {
    out[i] = estimate_wcet(app.task(i), strategy);
  }
}

void estimate_wcets_batch_into(std::span<const Application* const> apps,
                               WcetEstimation strategy,
                               std::vector<std::size_t>& offsets,
                               std::vector<double>& out) {
  offsets.resize(apps.size() + 1);
  offsets[0] = 0;
  for (std::size_t k = 0; k < apps.size(); ++k) {
    DSSLICE_REQUIRE(apps[k] != nullptr, "null application in batch");
    offsets[k + 1] = offsets[k] + apps[k]->task_count();
  }
  out.resize(offsets.back());
  for (std::size_t k = 0; k < apps.size(); ++k) {
    estimate_wcets_into(
        *apps[k], strategy,
        std::span<double>{out.data() + offsets[k], offsets[k + 1] - offsets[k]});
  }
}

std::vector<double> mandatory_estimates(const Application& app,
                                        std::span<const double> est_wcet) {
  std::vector<double> out;
  mandatory_estimates_into(app, est_wcet, out);
  return out;
}

void mandatory_estimates_into(const Application& app,
                              std::span<const double> est_wcet,
                              std::vector<double>& out) {
  out.resize(est_wcet.size());
  mandatory_estimates_into(app, est_wcet, std::span<double>{out});
}

void mandatory_estimates_into(const Application& app,
                              std::span<const double> est_wcet,
                              std::span<double> out) {
  DSSLICE_REQUIRE(est_wcet.size() == app.task_count(),
                  "estimate vector size mismatch");
  DSSLICE_REQUIRE(out.size() == est_wcet.size(), "output span size mismatch");
  for (NodeId i = 0; i < app.task_count(); ++i) {
    const double f = app.task(i).optional_fraction;
    out[i] = f == 0.0 ? est_wcet[i] : est_wcet[i] * (1.0 - f);
  }
}

void mandatory_estimates_batch_into(std::span<const Application* const> apps,
                                    std::span<const std::size_t> offsets,
                                    std::span<const double> est_wcet,
                                    std::vector<double>& out) {
  DSSLICE_REQUIRE(offsets.size() == apps.size() + 1,
                  "offset table size mismatch");
  DSSLICE_REQUIRE(est_wcet.size() == offsets.back(),
                  "flat estimate array size mismatch");
  out.resize(est_wcet.size());
  for (std::size_t k = 0; k < apps.size(); ++k) {
    const std::size_t n = offsets[k + 1] - offsets[k];
    const std::span<const double> est{est_wcet.data() + offsets[k], n};
    const std::span<double> slot{out.data() + offsets[k], n};
    if (apps[k]->has_optional_work()) {
      mandatory_estimates_into(*apps[k], est, slot);
    } else {
      // Precise workloads keep the estimates bit-identical (the scalar
      // pipeline skips the scaling entirely for them).
      std::copy(est.begin(), est.end(), slot.begin());
    }
  }
}

}  // namespace dsslice
