#include "dsslice/core/feasibility.hpp"

#include <algorithm>

#include "dsslice/core/wcet_estimate.hpp"
#include "dsslice/graph/algorithms.hpp"
#include "dsslice/util/check.hpp"
#include "dsslice/util/string_util.hpp"

namespace dsslice {

namespace {

constexpr double kEps = 1e-9;

}  // namespace

double worst_interval_load(const Application& app,
                           const DeadlineAssignment& assignment,
                           const Platform& platform) {
  const std::size_t n = app.task_count();
  DSSLICE_REQUIRE(assignment.windows.size() == n, "assignment size mismatch");
  const auto c_min = estimate_wcets(app, WcetEstimation::kMin);
  const double m = static_cast<double>(platform.processor_count());

  // Candidate interval endpoints: window arrivals (starts) and deadlines
  // (ends). Demand of [a, D] = Σ fastest work of tasks with
  // a ≤ arrival ∧ deadline ≤ D.
  std::vector<Time> starts;
  std::vector<Time> ends;
  starts.reserve(n);
  ends.reserve(n);
  for (NodeId v = 0; v < n; ++v) {
    starts.push_back(assignment.windows[v].arrival);
    ends.push_back(assignment.windows[v].deadline);
  }
  double worst = 0.0;
  for (const Time a : starts) {
    for (const Time d : ends) {
      if (d <= a + kEps) {
        continue;
      }
      double demand = 0.0;
      for (NodeId v = 0; v < n; ++v) {
        const Window& w = assignment.windows[v];
        if (w.arrival >= a - kEps && w.deadline <= d + kEps) {
          demand += c_min[v];
        }
      }
      worst = std::max(worst, demand / (m * (d - a)));
    }
  }
  return worst;
}

FeasibilityReport check_necessary_conditions(
    const Application& app, const DeadlineAssignment& assignment,
    const Platform& platform) {
  const std::size_t n = app.task_count();
  DSSLICE_REQUIRE(assignment.windows.size() == n, "assignment size mismatch");
  FeasibilityReport report;
  const auto c_min = estimate_wcets(app, WcetEstimation::kMin);

  // Window fit.
  for (NodeId v = 0; v < n; ++v) {
    if (assignment.windows[v].length() + kEps < c_min[v]) {
      report.violations.push_back(
          "task " + app.task(v).name + ": window " +
          to_string(assignment.windows[v]) + " cannot hold its fastest WCET " +
          format_fixed(c_min[v], 2));
    }
  }

  // Chain fit along arcs: from the earliest the predecessor can start to
  // the latest the successor may finish, both must fit serially.
  const TaskGraph& g = app.graph();
  for (const Arc& arc : g.arcs()) {
    const Window& wu = assignment.windows[arc.from];
    const Window& wv = assignment.windows[arc.to];
    const Time span = wv.deadline - wu.arrival;
    if (span + kEps < c_min[arc.from] + c_min[arc.to]) {
      report.violations.push_back(
          "arc " + app.task(arc.from).name + " -> " + app.task(arc.to).name +
          ": combined span " + format_fixed(span, 2) +
          " cannot hold both executions");
    }
  }

  // Interval demand bound.
  const double load = worst_interval_load(app, assignment, platform);
  if (load > 1.0 + kEps) {
    report.violations.push_back(
        "interval demand exceeds capacity by factor " +
        format_fixed(load, 3));
  }

  // E-T-E path bound: fastest critical path vs loosest deadline window.
  Time earliest_arrival = kTimeInfinity;
  for (const NodeId in : g.input_nodes()) {
    earliest_arrival = std::min(earliest_arrival, app.input_arrival(in));
  }
  Time latest_deadline = kTimeZero;
  for (const NodeId out : g.output_nodes()) {
    if (app.has_ete_deadline(out)) {
      latest_deadline = std::max(latest_deadline, app.ete_deadline(out));
    }
  }
  const double cp = critical_path_length(g, c_min);
  if (earliest_arrival + cp > latest_deadline + kEps) {
    report.violations.push_back(
        "fastest critical path " + format_fixed(cp, 2) +
        " exceeds every end-to-end budget");
  }
  return report;
}

}  // namespace dsslice
