// Analytic necessary conditions for schedulability.
//
// Cheap closed-form tests that must hold for ANY non-preemptive schedule of
// a deadline assignment; failing one proves infeasibility without search.
// (The branch-and-bound oracle provides the exact complement: these
// conditions are necessary, its verdict is exact.)
//
//  * window fit: every window holds its task's fastest-class WCET;
//  * chain fit: along every arc u→v, the windows leave room for both tasks
//    (implied by window fit + non-overlap for slicing assignments, but not
//    for overlapping-window baselines);
//  * capacity: for every time interval [a, D] spanned by a window, the
//    total fastest-class work of tasks whose windows lie fully inside the
//    interval cannot exceed m·(D − a) (a demand-bound argument over the
//    O(n²) interesting intervals);
//  * E-T-E path bound: the fastest-class critical path through the graph
//    cannot exceed the loosest E-T-E deadline.
#pragma once

#include <string>
#include <vector>

#include "dsslice/model/application.hpp"
#include "dsslice/model/platform.hpp"
#include "dsslice/model/task.hpp"

namespace dsslice {

struct FeasibilityReport {
  /// Violated necessary conditions, human-readable (empty = may be
  /// feasible; a non-empty list proves infeasibility).
  std::vector<std::string> violations;

  bool maybe_feasible() const { return violations.empty(); }
};

/// Runs every necessary-condition test against an assignment. O(n² + n·|A|).
FeasibilityReport check_necessary_conditions(
    const Application& app, const DeadlineAssignment& assignment,
    const Platform& platform);

/// The demand-bound test alone (exposed for tests): returns the worst
/// interval's overload factor — demand / capacity — over all window-aligned
/// intervals; > 1 proves infeasibility.
double worst_interval_load(const Application& app,
                           const DeadlineAssignment& assignment,
                           const Platform& platform);

}  // namespace dsslice
