#include "dsslice/core/quality.hpp"

#include <algorithm>
#include <limits>

#include "dsslice/util/check.hpp"

namespace dsslice {

std::vector<double> laxities(const DeadlineAssignment& assignment,
                             std::span<const double> est_wcet) {
  DSSLICE_REQUIRE(assignment.windows.size() == est_wcet.size(),
                  "assignment / estimate size mismatch");
  std::vector<double> out(est_wcet.size());
  for (std::size_t i = 0; i < est_wcet.size(); ++i) {
    out[i] = assignment.windows[i].length() - est_wcet[i];
  }
  return out;
}

double min_laxity(const DeadlineAssignment& assignment,
                  std::span<const double> est_wcet) {
  const auto xs = laxities(assignment, est_wcet);
  DSSLICE_REQUIRE(!xs.empty(), "empty assignment");
  return *std::min_element(xs.begin(), xs.end());
}

std::vector<double> latenesses(const Schedule& schedule,
                               const DeadlineAssignment& assignment) {
  std::vector<double> out;
  out.reserve(assignment.windows.size());
  for (NodeId v = 0; v < assignment.windows.size(); ++v) {
    if (schedule.placed(v)) {
      out.push_back(schedule.entry(v).finish -
                    assignment.windows[v].deadline);
    }
  }
  return out;
}

double max_lateness(const Schedule& schedule,
                    const DeadlineAssignment& assignment) {
  const auto xs = latenesses(schedule, assignment);
  DSSLICE_REQUIRE(!xs.empty(), "no scheduled tasks");
  return *std::max_element(xs.begin(), xs.end());
}

QualityReport assess_quality(const DeadlineAssignment& assignment,
                             std::span<const double> est_wcet,
                             const Schedule& schedule) {
  QualityReport r;
  r.min_laxity = min_laxity(assignment, est_wcet);
  if (schedule.placed_count() > 0) {
    r.max_lateness = max_lateness(schedule, assignment);
    r.all_deadlines_met = schedule.complete() && r.max_lateness <= 0.0;
  } else {
    r.max_lateness = std::numeric_limits<double>::infinity();
    r.all_deadlines_met = false;
  }
  return r;
}

}  // namespace dsslice
