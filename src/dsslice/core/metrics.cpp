#include "dsslice/core/metrics.hpp"

#include <algorithm>
#include <array>
#include <limits>

#include "dsslice/analysis/graph_analysis.hpp"
#include "dsslice/util/check.hpp"

namespace dsslice {

namespace {

/// Average task-graph parallelism ξ = Σ c̄ / critical-path length (Eq. 7),
/// computed over the cached topological order. Arithmetic is identical to
/// graph::average_parallelism (same per-node max/add sequence), but no
/// topological sort is rerun and the level buffer is reusable.
double average_parallelism_cached(const GraphAnalysis& a,
                                  std::span<const double> est_wcet,
                                  std::vector<double>& level) {
  const std::size_t n = a.node_count();
  if (n == 0) {
    return 0.0;
  }
  level.assign(n, 0.0);
  const auto topo = a.topological_order();
  for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
    const NodeId v = *it;
    double best_succ = 0.0;
    for (const NodeId w : a.successors(v)) {
      best_succ = std::max(best_succ, level[w]);
    }
    level[v] = est_wcet[v] + best_succ;
  }
  double cp = level[0];
  for (const double l : level) {
    cp = std::max(cp, l);
  }
  if (cp <= 0.0) {
    return 0.0;
  }
  double total = 0.0;
  for (const double c : est_wcet) {
    total += c;
  }
  return total / cp;
}

}  // namespace

std::string to_string(MetricKind kind) {
  switch (kind) {
    case MetricKind::kPure:
      return "PURE";
    case MetricKind::kNorm:
      return "NORM";
    case MetricKind::kAdaptG:
      return "ADAPT-G";
    case MetricKind::kAdaptL:
      return "ADAPT-L";
  }
  return "unknown";
}

std::span<const MetricKind> all_metric_kinds() {
  static constexpr std::array<MetricKind, 4> kAll = {
      MetricKind::kPure, MetricKind::kNorm, MetricKind::kAdaptG,
      MetricKind::kAdaptL};
  return kAll;
}

DeadlineMetric::DeadlineMetric(MetricKind kind, MetricParams params)
    : kind_(kind), params_(params) {
  DSSLICE_REQUIRE(params_.k_global >= 0.0, "k_G must be non-negative");
  DSSLICE_REQUIRE(params_.k_local >= 0.0, "k_L must be non-negative");
  DSSLICE_REQUIRE(params_.threshold_factor >= 0.0,
                  "threshold factor must be non-negative");
}

bool DeadlineMetric::is_adaptive() const {
  return kind_ == MetricKind::kAdaptG || kind_ == MetricKind::kAdaptL;
}

double DeadlineMetric::effective_threshold(
    std::span<const double> est_wcet) const {
  if (params_.threshold_override.has_value()) {
    return *params_.threshold_override;
  }
  if (est_wcet.empty()) {
    return 0.0;
  }
  double sum = 0.0;
  for (const double c : est_wcet) {
    sum += c;
  }
  return params_.threshold_factor * sum / static_cast<double>(est_wcet.size());
}

std::vector<double> DeadlineMetric::weights(
    const Application& app, std::span<const double> est_wcet,
    std::size_t processor_count) const {
  std::vector<double> w;
  weights_into(app, est_wcet, processor_count, nullptr, w);
  return w;
}

std::vector<double> DeadlineMetric::weights(
    const Application& app, std::span<const double> est_wcet,
    std::size_t processor_count, const ResourceModel* resources) const {
  std::vector<double> w;
  weights_into(app, est_wcet, processor_count, resources, w);
  return w;
}

void DeadlineMetric::weights_into(const Application& app,
                                  std::span<const double> est_wcet,
                                  std::size_t processor_count,
                                  const ResourceModel* resources,
                                  std::vector<double>& out,
                                  MetricWorkspace* workspace) const {
  out.resize(est_wcet.size());
  weights_span_into(app, est_wcet, processor_count, resources,
                    std::span<double>{out}, workspace);
}

void DeadlineMetric::weights_batch_into(
    std::span<const Application* const> apps,
    std::span<const std::size_t> offsets, std::span<const double> est_wcet,
    std::span<const std::size_t> processor_counts, std::span<double> out,
    MetricWorkspace* workspace) const {
  DSSLICE_REQUIRE(offsets.size() == apps.size() + 1,
                  "offset table size mismatch");
  DSSLICE_REQUIRE(processor_counts.size() == apps.size(),
                  "processor-count table size mismatch");
  DSSLICE_REQUIRE(est_wcet.size() == offsets.back(),
                  "flat estimate array size mismatch");
  DSSLICE_REQUIRE(out.size() == est_wcet.size(),
                  "flat output array size mismatch");
  for (std::size_t k = 0; k < apps.size(); ++k) {
    const std::size_t n = offsets[k + 1] - offsets[k];
    weights_span_into(*apps[k], {est_wcet.data() + offsets[k], n},
                      processor_counts[k], nullptr,
                      {out.data() + offsets[k], n}, workspace);
  }
}

void DeadlineMetric::weights_span_into(const Application& app,
                                       std::span<const double> est_wcet,
                                       std::size_t processor_count,
                                       const ResourceModel* resources,
                                       std::span<double> out,
                                       MetricWorkspace* workspace) const {
  DSSLICE_REQUIRE(est_wcet.size() == app.task_count(),
                  "estimate vector size mismatch");
  DSSLICE_REQUIRE(out.size() == est_wcet.size(), "output span size mismatch");
  DSSLICE_REQUIRE(processor_count > 0, "need at least one processor");
  std::copy(est_wcet.begin(), est_wcet.end(), out.begin());
  if (!is_adaptive()) {
    return;  // PURE and NORM use c̄ directly.
  }

  const double threshold = effective_threshold(est_wcet);
  const double m = static_cast<double>(processor_count);
  const GraphAnalysis& analysis = app.analysis();
  MetricWorkspace local;
  MetricWorkspace& ws = workspace != nullptr ? *workspace : local;

  if (kind_ == MetricKind::kAdaptG) {
    // ĉ_i = c̄_i (1 + k_G ξ / m) for c̄_i ≥ c_thres (Eq. 6).
    const double xi = average_parallelism_cached(analysis, est_wcet, ws.level);
    const double surplus = 1.0 + params_.k_global * xi / m;
    for (std::size_t i = 0; i < out.size(); ++i) {
      if (est_wcet[i] >= threshold) {
        out[i] = est_wcet[i] * surplus;
      }
    }
    return;
  }

  if (resources != nullptr) {
    // Resource-aware ADAPT-L (ADAPT-LR extension, §7.3): parallel tasks
    // sharing an exclusive resource serialize one-at-a-time regardless of
    // the processor count, so they contribute at full weight.
    DSSLICE_REQUIRE(resources->task_count() == app.task_count(),
                    "resource model size mismatch");
    for (NodeId i = 0; i < out.size(); ++i) {
      if (est_wcet[i] < threshold) {
        continue;
      }
      std::size_t resource_rivals = 0;
      analysis.for_each_parallel(i, [&](NodeId j) {
        if (resources->conflicts(i, j)) {
          ++resource_rivals;
        }
      });
      const double psi =
          static_cast<double>(analysis.parallel_set_size(i));
      out[i] = est_wcet[i] *
               (1.0 + params_.k_local * psi / m +
                params_.k_resource * static_cast<double>(resource_rivals));
    }
    return;
  }

  // ADAPT-L: ĉ_i = c̄_i (1 + k_L |Ψ_i| / m) for c̄_i ≥ c_thres (Eq. 8).
  //
  // Optional temporal filter (see MetricParams::temporal_parallel_sets):
  // static execution bounds per task — earliest start via a forward pass
  // from input arrivals, latest finish via a backward pass from E-T-E
  // deadlines, both over the estimated WCETs and the cached topological
  // order.
  if (params_.temporal_parallel_sets) {
    const auto topo = analysis.topological_order();
    std::vector<Time>& est_start = ws.est_start;
    std::vector<Time>& lft_finish = ws.lft_finish;
    est_start.assign(out.size(), kTimeZero);
    lft_finish.assign(out.size(), kTimeInfinity);
    for (const NodeId v : topo) {
      const auto preds = analysis.predecessors(v);
      Time start = preds.empty() ? app.input_arrival(v) : kTimeZero;
      for (const NodeId u : preds) {
        start = std::max(start, est_start[u] + est_wcet[u]);
      }
      est_start[v] = start;
    }
    for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
      const NodeId v = *it;
      const auto succs = analysis.successors(v);
      Time finish = succs.empty() && app.has_ete_deadline(v)
                        ? app.ete_deadline(v)
                        : kTimeInfinity;
      for (const NodeId s : succs) {
        finish = std::min(finish, lft_finish[s] - est_wcet[s]);
      }
      lft_finish[v] = finish;
    }
    for (NodeId i = 0; i < out.size(); ++i) {
      if (est_wcet[i] < threshold) {
        continue;
      }
      std::size_t count = 0;
      analysis.for_each_parallel(i, [&](NodeId j) {
        // Rivals only when the static frames can overlap.
        if (est_start[j] < lft_finish[i] && est_start[i] < lft_finish[j]) {
          ++count;
        }
      });
      const double psi = static_cast<double>(count);
      out[i] = est_wcet[i] * (1.0 + params_.k_local * psi / m);
    }
    return;
  }

  for (NodeId i = 0; i < out.size(); ++i) {
    if (est_wcet[i] < threshold) {
      continue;
    }
    const double psi = static_cast<double>(analysis.parallel_set_size(i));
    out[i] = est_wcet[i] * (1.0 + params_.k_local * psi / m);
  }
}

double DeadlineMetric::path_value(Time window, double sum_weight,
                                  std::size_t count) const {
  if (count == 0) {
    return std::numeric_limits<double>::infinity();
  }
  const double laxity = window - sum_weight;
  if (kind_ == MetricKind::kNorm) {
    if (sum_weight <= 0.0) {
      return laxity < 0.0 ? -std::numeric_limits<double>::infinity()
                          : std::numeric_limits<double>::infinity();
    }
    return laxity / sum_weight;  // Eq. 2
  }
  return laxity / static_cast<double>(count);  // Eqs. 4 and shared ADAPT form
}

std::vector<double> DeadlineMetric::slices(
    Time window, std::span<const double> path_weights) const {
  std::vector<double> d;
  slices_into(window, path_weights, d);
  return d;
}

void DeadlineMetric::slices_into(Time window,
                                 std::span<const double> path_weights,
                                 std::vector<double>& out) const {
  DSSLICE_REQUIRE(!path_weights.empty(), "cannot slice an empty path");
  const std::size_t n = path_weights.size();
  double sum = 0.0;
  for (const double w : path_weights) {
    DSSLICE_REQUIRE(w >= 0.0, "negative path weight");
    sum += w;
  }
  out.resize(n);
  if (kind_ == MetricKind::kNorm && sum > 0.0) {
    // d_i = c̄_i (1 + R) with R = (window - sum)/sum, i.e. d_i ∝ weight.
    const double scale = window / sum;
    for (std::size_t i = 0; i < n; ++i) {
      out[i] = path_weights[i] * scale;
    }
    return;
  }
  // Equal-share laxity: d_i = w_i + (window - sum)/n (Eq. 5; also Eqs. 3/6/8
  // composition for the adaptive metrics, and the degenerate NORM fallback
  // when all weights are zero).
  const double share = (window - sum) / static_cast<double>(n);
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = path_weights[i] + share;
  }
}

std::vector<double> DeadlineMetric::adaptive_slices(
    Time window, std::span<const double> path_weights,
    std::span<const double> path_est) const {
  std::vector<double> d;
  adaptive_slices_into(window, path_weights, path_est, d);
  return d;
}

void DeadlineMetric::adaptive_slices_into(Time window,
                                          std::span<const double> path_weights,
                                          std::span<const double> path_est,
                                          std::vector<double>& out) const {
  DSSLICE_REQUIRE(path_weights.size() == path_est.size(),
                  "weight / estimate length mismatch");
  DSSLICE_REQUIRE(!path_weights.empty(), "cannot slice an empty path");
  if (!is_adaptive()) {
    slices_into(window, path_weights, out);
    return;
  }
  const std::size_t n = path_weights.size();
  double sum_est = 0.0;    // Σ c̄ along the path
  double sum_extra = 0.0;  // Σ (ĉ − c̄): requested virtual inflation
  for (std::size_t i = 0; i < n; ++i) {
    DSSLICE_REQUIRE(path_weights[i] >= path_est[i] - 1e-12,
                    "virtual execution time below the estimate");
    sum_est += path_est[i];
    sum_extra += path_weights[i] - path_est[i];
  }
  const double surplus = window - sum_est;  // true laxity of the window
  out.resize(n);
  if (surplus >= sum_extra) {
    // Enough laxity to honour every virtual execution time: exactly the
    // paper's d_i = ĉ_i + (window − Σĉ)/n.
    const double share = (surplus - sum_extra) / static_cast<double>(n);
    for (std::size_t i = 0; i < n; ++i) {
      out[i] = path_weights[i] + share;
    }
    return;
  }
  if (surplus > 0.0 && sum_extra > 0.0) {
    // Partial surplus: scale the inflation so exactly the available laxity
    // is distributed — "only certain tasks are allotted extra laxities"
    // (§4.5) means adaptivity may never consume another task's required
    // execution time.
    const double scale = surplus / sum_extra;
    for (std::size_t i = 0; i < n; ++i) {
      out[i] = path_est[i] + (path_weights[i] - path_est[i]) * scale;
    }
    return;
  }
  // No surplus at all: the adaptive metrics degenerate to PURE on the real
  // estimates (the window is infeasible; distribute the shortfall equally).
  const double share = surplus / static_cast<double>(n);
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = path_est[i] + share;
  }
}

}  // namespace dsslice
