#include "dsslice/core/critical_path.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "dsslice/util/check.hpp"

namespace dsslice {

namespace {

constexpr NodeId kNoPrev = std::numeric_limits<NodeId>::max();

/// Best partial path ending at a node during the forward DP.
struct Entry {
  Time start = kTimeZero;     // arrival anchor of the path's first task
  double sum_weight = 0.0;    // Σ weights along the partial path
  std::uint32_t count = 0;    // number of tasks on the partial path
  NodeId prev = kNoPrev;      // predecessor on the path (kNoPrev = start)
  double score = std::numeric_limits<double>::infinity();
  bool valid = false;
};

/// Deterministic candidate ranking: lower projected ratio wins; ties prefer
/// the heavier path (more critical per intuition), then the smaller
/// predecessor id for reproducibility.
bool better(const Entry& a, const Entry& b) {
  if (!b.valid) {
    return a.valid;
  }
  if (!a.valid) {
    return false;
  }
  if (a.score != b.score) {
    return a.score < b.score;
  }
  if (a.sum_weight != b.sum_weight) {
    return a.sum_weight > b.sum_weight;
  }
  return a.prev < b.prev;
}

}  // namespace

std::optional<CriticalPath> find_critical_path(
    const TaskGraph& g, std::span<const NodeId> topo_order,
    const AnchorState& anchors, std::span<const double> weights,
    const DeadlineMetric& metric) {
  const std::size_t n = g.node_count();
  DSSLICE_REQUIRE(topo_order.size() == n, "topological order size mismatch");
  DSSLICE_REQUIRE(weights.size() == n, "weight vector size mismatch");
  if (anchors.all_assigned()) {
    return std::nullopt;
  }

  // Backward pass: L(v) = latest-finish bound of unassigned v.
  std::vector<Time> latest(n, kTimeInfinity);
  for (auto it = topo_order.rbegin(); it != topo_order.rend(); ++it) {
    const NodeId v = *it;
    if (anchors.assigned(v)) {
      continue;
    }
    Time l = anchors.deadline_anchor(v);
    for (const NodeId w : g.successors(v)) {
      if (!anchors.assigned(w)) {
        l = std::min(l, latest[w] - weights[w]);
      }
    }
    latest[v] = l;
  }

  // Forward pass: best partial path per node, best complete path overall.
  std::vector<Entry> dp(n);
  NodeId best_sink = kNoPrev;
  Entry best_sink_entry;

  for (const NodeId v : topo_order) {
    if (anchors.assigned(v)) {
      continue;
    }
    Entry best;

    const auto consider = [&](Time start, double sum_weight,
                              std::uint32_t count, NodeId prev) {
      Entry cand;
      cand.start = start;
      cand.sum_weight = sum_weight;
      cand.count = count;
      cand.prev = prev;
      cand.score = metric.path_value(latest[v] - start, sum_weight, count);
      cand.valid = true;
      if (better(cand, best)) {
        best = cand;
      }
    };

    if (anchors.is_pi_source(g, v)) {
      DSSLICE_CHECK(anchors.has_arrival_anchor(v),
                    "Π-source without an arrival anchor");
      consider(anchors.arrival_anchor(v), weights[v], 1, kNoPrev);
    }
    for (const NodeId u : g.predecessors(v)) {
      if (!anchors.assigned(u)) {
        DSSLICE_CHECK(dp[u].valid, "unassigned predecessor without DP entry");
        consider(dp[u].start, dp[u].sum_weight + weights[v],
                 dp[u].count + 1, u);
      }
    }
    DSSLICE_CHECK(best.valid, "unassigned node produced no path candidate");
    dp[v] = best;

    if (anchors.is_pi_sink(g, v)) {
      // latest[v] is exactly the deadline anchor here, so dp[v].score is the
      // true metric value of the completed path.
      DSSLICE_CHECK(anchors.has_deadline_anchor(v),
                    "Π-sink without a deadline anchor");
      if (best_sink == kNoPrev || dp[v].score < best_sink_entry.score ||
          (dp[v].score == best_sink_entry.score && v < best_sink)) {
        best_sink = v;
        best_sink_entry = dp[v];
      }
    }
  }

  DSSLICE_CHECK(best_sink != kNoPrev,
                "remaining tasks exist but no Π-sink was found");

  CriticalPath path;
  path.window_start = best_sink_entry.start;
  path.window_end = anchors.deadline_anchor(best_sink);
  path.metric_value = best_sink_entry.score;
  // Reconstruct the chain backwards through the DP links.
  for (NodeId v = best_sink; v != kNoPrev; v = dp[v].prev) {
    path.nodes.push_back(v);
  }
  std::reverse(path.nodes.begin(), path.nodes.end());
  DSSLICE_CHECK(path.nodes.size() == best_sink_entry.count,
                "path reconstruction length mismatch");
  return path;
}

}  // namespace dsslice
