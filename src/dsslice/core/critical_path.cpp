#include "dsslice/core/critical_path.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "dsslice/util/check.hpp"

namespace dsslice {

namespace {

constexpr NodeId kNoPrev = kNoPathPrev;

bool better(const PathCandidate& a, const PathCandidate& b) {
  return path_candidate_better(a, b);
}

}  // namespace

bool CriticalPathSearch::find(const GraphAnalysis& analysis,
                              const AnchorState& anchors,
                              std::span<const double> weights,
                              const DeadlineMetric& metric,
                              CriticalPath& out) {
  const std::size_t n = analysis.node_count();
  DSSLICE_REQUIRE(weights.size() == n, "weight vector size mismatch");
  if (anchors.all_assigned()) {
    return false;
  }
  const auto topo = analysis.topological_order();

  // Backward pass: L(v) = latest-finish bound of unassigned v.
  latest_.assign(n, kTimeInfinity);
  for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
    const NodeId v = *it;
    if (anchors.assigned(v)) {
      continue;
    }
    Time l = anchors.deadline_anchor(v);
    for (const NodeId w : analysis.successors(v)) {
      if (!anchors.assigned(w)) {
        l = std::min(l, latest_[w] - weights[w]);
      }
    }
    latest_[v] = l;
  }

  // Forward pass: best partial path per node, best complete path overall.
  dp_.assign(n, Entry{});
  NodeId best_sink = kNoPrev;
  Entry best_sink_entry;

  for (const NodeId v : topo) {
    if (anchors.assigned(v)) {
      continue;
    }
    Entry best;

    const auto consider = [&](Time start, double sum_weight,
                              std::uint32_t count, NodeId prev) {
      Entry cand;
      cand.start = start;
      cand.sum_weight = sum_weight;
      cand.count = count;
      cand.prev = prev;
      cand.score = metric.path_value(latest_[v] - start, sum_weight, count);
      cand.valid = true;
      if (better(cand, best)) {
        best = cand;
      }
    };

    const auto preds = analysis.predecessors(v);
    bool pi_source = true;
    for (const NodeId u : preds) {
      if (!anchors.assigned(u)) {
        pi_source = false;
        break;
      }
    }
    if (pi_source) {
      DSSLICE_CHECK(anchors.has_arrival_anchor(v),
                    "Π-source without an arrival anchor");
      consider(anchors.arrival_anchor(v), weights[v], 1, kNoPrev);
    }
    for (const NodeId u : preds) {
      if (!anchors.assigned(u)) {
        DSSLICE_CHECK(dp_[u].valid, "unassigned predecessor without DP entry");
        consider(dp_[u].start, dp_[u].sum_weight + weights[v],
                 dp_[u].count + 1, u);
      }
    }
    DSSLICE_CHECK(best.valid, "unassigned node produced no path candidate");
    dp_[v] = best;

    bool pi_sink = true;
    for (const NodeId w : analysis.successors(v)) {
      if (!anchors.assigned(w)) {
        pi_sink = false;
        break;
      }
    }
    if (pi_sink) {
      // latest_[v] is exactly the deadline anchor here, so dp_[v].score is
      // the true metric value of the completed path.
      DSSLICE_CHECK(anchors.has_deadline_anchor(v),
                    "Π-sink without a deadline anchor");
      if (best_sink == kNoPrev || dp_[v].score < best_sink_entry.score ||
          (dp_[v].score == best_sink_entry.score && v < best_sink)) {
        best_sink = v;
        best_sink_entry = dp_[v];
      }
    }
  }

  DSSLICE_CHECK(best_sink != kNoPrev,
                "remaining tasks exist but no Π-sink was found");

  out.window_start = best_sink_entry.start;
  out.window_end = anchors.deadline_anchor(best_sink);
  out.metric_value = best_sink_entry.score;
  // Reconstruct the chain backwards through the DP links.
  out.nodes.clear();
  for (NodeId v = best_sink; v != kNoPrev; v = dp_[v].prev) {
    out.nodes.push_back(v);
  }
  std::reverse(out.nodes.begin(), out.nodes.end());
  DSSLICE_CHECK(out.nodes.size() == best_sink_entry.count,
                "path reconstruction length mismatch");
  return true;
}

std::optional<CriticalPath> find_critical_path(
    const TaskGraph& g, std::span<const NodeId> topo_order,
    const AnchorState& anchors, std::span<const double> weights,
    const DeadlineMetric& metric) {
  DSSLICE_REQUIRE(topo_order.size() == g.node_count(),
                  "topological order size mismatch");
  const GraphAnalysis analysis(g);
  CriticalPathSearch search;
  CriticalPath path;
  if (!search.find(analysis, anchors, weights, metric, path)) {
    return std::nullopt;
  }
  return path;
}

}  // namespace dsslice
