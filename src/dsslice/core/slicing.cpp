#include "dsslice/core/slicing.hpp"

#include <algorithm>
#include <cstdio>
#include <limits>

#include "dsslice/core/anchors.hpp"
#include "dsslice/core/critical_path.hpp"
#include "dsslice/obs/trace.hpp"
#include "dsslice/util/check.hpp"

namespace dsslice {

namespace {

// Span names must be static strings; one literal per metric kind.
const char* slicing_span_name(MetricKind kind) {
  switch (kind) {
    case MetricKind::kPure:
      return "slice.run.pure";
    case MetricKind::kNorm:
      return "slice.run.norm";
    case MetricKind::kAdaptG:
      return "slice.run.adapt_g";
    case MetricKind::kAdaptL:
      return "slice.run.adapt_l";
  }
  return "slice.run";
}

}  // namespace

std::string SlicingTrace::to_string(const Application& app) const {
  std::string out;
  for (std::size_t k = 0; k < passes.size(); ++k) {
    const SlicingPass& pass = passes[k];
    out += "pass " + std::to_string(k) + " R=";
    {
      char buffer[32];
      std::snprintf(buffer, sizeof buffer, "%.3f", pass.metric_value);
      out += buffer;
    }
    out += " window [";
    {
      char buffer[64];
      std::snprintf(buffer, sizeof buffer, "%.2f, %.2f", pass.window_start,
                    pass.window_end);
      out += buffer;
    }
    out += "]:";
    for (std::size_t i = 0; i < pass.path.size(); ++i) {
      char buffer[32];
      std::snprintf(buffer, sizeof buffer, "(%.1f)", pass.slices[i]);
      out += (i == 0 ? " " : " -> ") + app.task(pass.path[i]).name + buffer;
    }
    out += "\n";
  }
  return out;
}

DeadlineAssignment run_slicing(const Application& app,
                               std::span<const double> est_wcet,
                               const DeadlineMetric& metric,
                               std::size_t processor_count,
                               SlicingStats* stats,
                               const SlicingOptions& options) {
  DeadlineAssignment assignment;
  run_slicing_into(assignment, app, est_wcet, metric, processor_count, stats,
                   options);
  return assignment;
}

void run_slicing_into(DeadlineAssignment& assignment, const Application& app,
                      std::span<const double> est_wcet,
                      const DeadlineMetric& metric,
                      std::size_t processor_count, SlicingStats* stats,
                      const SlicingOptions& options) {
  const std::size_t n = app.task_count();
  DSSLICE_REQUIRE(est_wcet.size() == n, "estimate vector size mismatch");
  DSSLICE_REQUIRE(processor_count > 0, "need at least one processor");

  DSSLICE_SPAN(slicing_span_name(metric.kind()));

  // The memoized analysis supplies the topological order, CSR adjacency and
  // (for ADAPT-L) the parallel sets; nothing graph-structural is recomputed
  // in this run. Requires an acyclic graph, as slicing always has.
  const GraphAnalysis& analysis = app.analysis();
  for (NodeId v = 0; v < n; ++v) {
    if (analysis.successors(v).empty()) {
      DSSLICE_REQUIRE(app.has_ete_deadline(v),
                      "output task without an E-T-E deadline");
    }
  }

  SlicingWorkspace local_ws;
  SlicingWorkspace& ws =
      options.workspace != nullptr ? *options.workspace : local_ws;

  // Step 1: metric weights (ĉ for adaptive metrics, c̄ otherwise) and the
  // anchor set initialized from the application's temporal requirements.
  metric.weights_into(app, est_wcet, processor_count, options.resources,
                      ws.weights, &ws.metric);
  const std::vector<double>& weights = ws.weights;
  AnchorState anchors(app);

  assignment.windows.resize(n);
  assignment.pass_of.assign(n, -1);

  if (options.trace != nullptr) {
    options.trace->passes.clear();
  }

  SlicingStats local_stats;

  // Steps 2–14: peel critical paths until no task remains.
  CriticalPath& path = ws.path;
  while (ws.search.find(analysis, anchors, weights, metric, path)) {
    if (local_stats.passes == 0) {
      local_stats.first_path_metric = path.metric_value;
      local_stats.first_path_length = path.nodes.size();
    }

    // Step 4: distribute the path window over its tasks. Slice boundaries
    // are cumulative prefix sums so they tile [start, end] exactly.
    ws.path_weights.clear();
    ws.path_est.clear();
    ws.path_weights.reserve(path.nodes.size());
    ws.path_est.reserve(path.nodes.size());
    for (const NodeId v : path.nodes) {
      ws.path_weights.push_back(weights[v]);
      ws.path_est.push_back(est_wcet[v]);
    }
    metric.adaptive_slices_into(path.window_length(), ws.path_weights,
                                ws.path_est, ws.slices);
    const std::vector<double>& d = ws.slices;

    if (options.trace != nullptr) {
      options.trace->passes.push_back(SlicingPass{
          path.nodes, path.window_start, path.window_end,
          path.metric_value, d});
    }

    Time boundary = path.window_start;
    for (std::size_t k = 0; k < path.nodes.size(); ++k) {
      const NodeId v = path.nodes[k];
      const Time lo = boundary;
      boundary += d[k];
      const Time hi =
          (k + 1 == path.nodes.size()) ? path.window_end : boundary;

      Window w{lo, hi};
      if (options.clamp_to_anchors) {
        // A mid-path task may carry anchors from earlier passes (cross arcs
        // to already-assigned spines); shrink its window into them while
        // keeping the boundaries — and thus non-overlap — intact.
        if (anchors.has_arrival_anchor(v)) {
          w.arrival = std::max(w.arrival, anchors.arrival_anchor(v));
        }
        if (anchors.has_deadline_anchor(v)) {
          w.deadline = std::min(w.deadline, anchors.deadline_anchor(v));
        }
      }
      anchors.mark_assigned(v, w);
      assignment.windows[v] = w;
      assignment.pass_of[v] = static_cast<int>(local_stats.passes);
    }

    // Steps 5–12: propagate anchors to unassigned neighbours of the spine.
    for (const NodeId v : path.nodes) {
      const Window& w = anchors.window(v);
      for (const NodeId u : analysis.predecessors(v)) {
        if (!anchors.assigned(u)) {
          anchors.tighten_deadline(u, w.arrival);
        }
      }
      for (const NodeId s : analysis.successors(v)) {
        if (!anchors.assigned(s)) {
          anchors.tighten_arrival(s, w.deadline);
        }
      }
    }

    ++local_stats.passes;
    DSSLICE_CHECK(local_stats.passes <= n, "slicing failed to converge");
  }
  DSSLICE_CHECK(anchors.all_assigned(),
                "tasks remain but no critical path was found");

  // Quality diagnostics.
  local_stats.min_laxity = std::numeric_limits<double>::infinity();
  local_stats.windows_feasible = true;
  for (NodeId v = 0; v < n; ++v) {
    const double laxity = assignment.windows[v].length() - est_wcet[v];
    local_stats.min_laxity = std::min(local_stats.min_laxity, laxity);
    if (laxity < 0.0) {
      local_stats.windows_feasible = false;
    }
  }
  DSSLICE_COUNT("slice.runs", 1);
  DSSLICE_COUNT("slice.passes", local_stats.passes);
  DSSLICE_COUNT("slice.tasks", n);
  if (stats != nullptr) {
    *stats = local_stats;
  }
}

DeadlineAssignment run_slicing(const Application& app, MetricKind metric_kind,
                               std::size_t processor_count,
                               WcetEstimation wcet_strategy,
                               const MetricParams& params,
                               SlicingStats* stats) {
  const std::vector<double> est = estimate_wcets(app, wcet_strategy);
  const DeadlineMetric metric(metric_kind, params);
  return run_slicing(app, est, metric, processor_count, stats);
}

}  // namespace dsslice
