// Anchor bookkeeping for the SLICING algorithm (§4.4, steps 5–12).
//
// While the algorithm peels critical paths off the task graph, each
// not-yet-assigned task accumulates *anchors*: a lower bound on its arrival
// (the latest absolute deadline among already-assigned immediate
// predecessors — plus its phasing if it is an input task) and an upper bound
// on its absolute deadline (the earliest arrival among already-assigned
// immediate successors — plus its E-T-E deadline if it is an output task).
// Each remaining sub-problem's paths run from anchored starts to anchored
// ends; the anchors are exactly the "new E-T-E deadlines" of §4.4 step 13.
#pragma once

#include <cstddef>
#include <vector>

#include "dsslice/model/application.hpp"
#include "dsslice/model/time.hpp"

namespace dsslice {

class AnchorState {
 public:
  /// Initializes anchors from the application's input arrivals and E-T-E
  /// deadlines; all tasks start unassigned.
  explicit AnchorState(const Application& app);

  std::size_t task_count() const { return assigned_.size(); }
  std::size_t remaining_count() const { return remaining_; }
  bool all_assigned() const { return remaining_ == 0; }

  bool assigned(NodeId v) const;

  bool has_arrival_anchor(NodeId v) const;
  bool has_deadline_anchor(NodeId v) const;

  /// Arrival anchor (−infinity when absent).
  Time arrival_anchor(NodeId v) const;
  /// Deadline anchor (+infinity when absent).
  Time deadline_anchor(NodeId v) const;

  /// Raises the arrival anchor to at least `arrival` ("latest predecessor
  /// deadline" accumulation).
  void tighten_arrival(NodeId v, Time arrival);
  /// Lowers the deadline anchor to at most `deadline` ("earliest successor
  /// arrival" accumulation).
  void tighten_deadline(NodeId v, Time deadline);

  /// Marks v as assigned with its final execution window.
  void mark_assigned(NodeId v, const Window& w);

  /// The final window of an assigned task.
  const Window& window(NodeId v) const;

  /// True when every immediate predecessor of v is assigned (v can start a
  /// path in the remaining sub-graph — a Π-source).
  bool is_pi_source(const TaskGraph& g, NodeId v) const;
  /// True when every immediate successor of v is assigned (a Π-sink).
  bool is_pi_sink(const TaskGraph& g, NodeId v) const;

 private:
  void require_node(NodeId v) const;

  std::vector<bool> assigned_;
  std::vector<Time> arrival_;   // −inf = unset
  std::vector<Time> deadline_;  // +inf = unset
  std::vector<Window> window_;
  std::size_t remaining_ = 0;
};

}  // namespace dsslice
