// Quality measures for deadline distributions and schedules (§4.2).
#pragma once

#include <span>
#include <vector>

#include "dsslice/model/application.hpp"
#include "dsslice/model/task.hpp"
#include "dsslice/sched/schedule.hpp"

namespace dsslice {

/// Laxity X_i = d_i − c̄_i of each task: slack available before scheduling.
std::vector<double> laxities(const DeadlineAssignment& assignment,
                             std::span<const double> est_wcet);

/// min_i X_i — the paper's secondary pre-scheduling quality measure.
double min_laxity(const DeadlineAssignment& assignment,
                  std::span<const double> est_wcet);

/// Lateness L_i = f_i − D_i of each scheduled task (non-positive for a
/// valid schedule). Tasks absent from the schedule are skipped.
std::vector<double> latenesses(const Schedule& schedule,
                               const DeadlineAssignment& assignment);

/// max_i L_i — the paper's secondary post-scheduling quality measure: how
/// close to infeasibility the schedule is (closest-to-zero lateness).
double max_lateness(const Schedule& schedule,
                    const DeadlineAssignment& assignment);

/// Combined report used by the evaluation framework and examples.
struct QualityReport {
  double min_laxity = 0.0;
  double max_lateness = 0.0;
  bool all_deadlines_met = false;
};

QualityReport assess_quality(const DeadlineAssignment& assignment,
                             std::span<const double> est_wcet,
                             const Schedule& schedule);

}  // namespace dsslice
