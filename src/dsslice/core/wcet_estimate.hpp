// Estimated WCETs c̄_i for relaxed locality constraints (§5.3).
//
// Before task assignment is known, a task's execution time is ambiguous on a
// heterogeneous platform: it depends on which processor class it will land
// on. Deadline distribution therefore works with an *estimate* c̄_i derived
// from the per-class WCET table. The paper studies three strategies.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "dsslice/model/application.hpp"

namespace dsslice {

enum class WcetEstimation {
  kAverage,  ///< WCET-AVG: mean over all eligible classes (Eq. 9)
  kMax,      ///< WCET-MAX: pessimistic maximum (Eq. 10)
  kMin,      ///< WCET-MIN: optimistic minimum (Eq. 11)
};

std::string to_string(WcetEstimation strategy);

/// Computes c̄_i for every task. Only eligible classes participate ("all
/// valid execution times"); applications must have ≥1 eligible class per
/// task (enforced by Application::validate).
std::vector<double> estimate_wcets(const Application& app,
                                   WcetEstimation strategy);

/// Allocation-free variant writing into a reusable buffer (batch sweeps).
void estimate_wcets_into(const Application& app, WcetEstimation strategy,
                         std::vector<double>& out);

/// Span core of estimate_wcets_into: writes into a pre-sized slot of a flat
/// SoA batch array (out.size() must equal the task count). Bit-identical to
/// the vector variant.
void estimate_wcets_into(const Application& app, WcetEstimation strategy,
                         std::span<double> out);

/// Batch variant over B applications: fills `offsets` (size B+1, prefix sums
/// of the task counts) and writes every application's estimates into one
/// flat array, application k occupying [offsets[k], offsets[k+1]). Each slot
/// is bit-identical to estimate_wcets on that application alone.
void estimate_wcets_batch_into(std::span<const Application* const> apps,
                               WcetEstimation strategy,
                               std::vector<std::size_t>& offsets,
                               std::vector<double>& out);

/// Single-task variant.
double estimate_wcet(const Task& task, WcetEstimation strategy);

/// Scales an estimate vector down to the *mandatory* demand of each task:
/// out[i] = (1 − optional_fraction_i) · est_wcet[i]. Tasks with no optional
/// part keep their estimate bit-identically. Deadline distribution plans
/// against mandatory demand so the optional parts surface as recoverable
/// slack (docs/ROBUSTNESS.md, "Graceful degradation").
std::vector<double> mandatory_estimates(const Application& app,
                                        std::span<const double> est_wcet);

/// Allocation-free variant writing into a reusable buffer.
void mandatory_estimates_into(const Application& app,
                              std::span<const double> est_wcet,
                              std::vector<double>& out);

/// Span core of mandatory_estimates_into (out pre-sized to the task count).
void mandatory_estimates_into(const Application& app,
                              std::span<const double> est_wcet,
                              std::span<double> out);

/// Batch variant over the flat layout produced by estimate_wcets_batch_into:
/// each application's slot is mandatory-scaled when it has optional work and
/// copied bit-identically otherwise (mirroring the scalar pipeline, which
/// skips the scaling for precise workloads).
void mandatory_estimates_batch_into(std::span<const Application* const> apps,
                                    std::span<const std::size_t> offsets,
                                    std::span<const double> est_wcet,
                                    std::vector<double>& out);

}  // namespace dsslice
