// Critical-path search for the SLICING algorithm (§4.4 step 3).
//
// The paper identifies, among all paths through the not-yet-assigned tasks
// Π, the one minimizing the laxity-ratio metric R, using a breadth-first
// traversal with O(|N| + |A|) cost per iteration. An exact minimizer over
// all paths is exponential for ratio metrics, so — consistent with the
// stated complexity — we implement a two-pass linear-time dynamic program:
//
//  1. Backward pass over reverse topological order computing L(v), a bound
//     on the latest finish of v: its deadline anchor (if any) combined with
//     min over unassigned successors w of (L(w) − weight_w).
//  2. Forward pass keeping one best partial path per node. A partial path
//     may start fresh at any Π-source (all predecessors assigned; its
//     arrival anchor is then fully determined) or extend the best partial
//     path of an unassigned predecessor. Candidates at node v are ranked by
//     the *projected* ratio R(L(v) − start, Σw, n); at Π-sinks L(v) equals
//     the deadline anchor, so the projected ratio is the true path metric.
//
// The returned path runs Π-source → Π-sink, so every remaining task is
// reachable through some returned path across iterations, and the spine
// windows [start, end] are always anchored at both ends.
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "dsslice/core/anchors.hpp"
#include "dsslice/core/metrics.hpp"
#include "dsslice/graph/task_graph.hpp"
#include "dsslice/model/time.hpp"

namespace dsslice {

struct CriticalPath {
  /// Chain of immediate-successor tasks, all unassigned.
  std::vector<NodeId> nodes;
  /// Window start: arrival anchor of nodes.front().
  Time window_start = kTimeZero;
  /// Window end: deadline anchor of nodes.back().
  Time window_end = kTimeZero;
  /// Metric value R of this path (lower = more critical).
  double metric_value = 0.0;

  Time window_length() const { return window_end - window_start; }
};

/// Finds the most critical remaining path, or nullopt when no unassigned
/// task remains. `topo_order` is the full-graph topological order (computed
/// once by the caller and reused across iterations); `weights` are the
/// metric weights (c̄ or ĉ) for all tasks.
std::optional<CriticalPath> find_critical_path(
    const TaskGraph& g, std::span<const NodeId> topo_order,
    const AnchorState& anchors, std::span<const double> weights,
    const DeadlineMetric& metric);

}  // namespace dsslice
