// Critical-path search for the SLICING algorithm (§4.4 step 3).
//
// The paper identifies, among all paths through the not-yet-assigned tasks
// Π, the one minimizing the laxity-ratio metric R, using a breadth-first
// traversal with O(|N| + |A|) cost per iteration. An exact minimizer over
// all paths is exponential for ratio metrics, so — consistent with the
// stated complexity — we implement a two-pass linear-time dynamic program:
//
//  1. Backward pass over reverse topological order computing L(v), a bound
//     on the latest finish of v: its deadline anchor (if any) combined with
//     min over unassigned successors w of (L(w) − weight_w).
//  2. Forward pass keeping one best partial path per node. A partial path
//     may start fresh at any Π-source (all predecessors assigned; its
//     arrival anchor is then fully determined) or extend the best partial
//     path of an unassigned predecessor. Candidates at node v are ranked by
//     the *projected* ratio R(L(v) − start, Σw, n); at Π-sinks L(v) equals
//     the deadline anchor, so the projected ratio is the true path metric.
//
// The returned path runs Π-source → Π-sink, so every remaining task is
// reachable through some returned path across iterations, and the spine
// windows [start, end] are always anchored at both ends.
//
// CriticalPathSearch owns the DP buffers, so the slicing main loop reuses
// them across its n passes instead of reallocating; adjacency and the
// topological order come from the shared GraphAnalysis (no per-call bounds
// checks, no re-sort).
#pragma once

#include <cstdint>
#include <limits>
#include <optional>
#include <span>
#include <vector>

#include "dsslice/analysis/graph_analysis.hpp"
#include "dsslice/core/anchors.hpp"
#include "dsslice/core/metrics.hpp"
#include "dsslice/graph/task_graph.hpp"
#include "dsslice/model/time.hpp"

namespace dsslice {

/// Sentinel predecessor id marking the head of a partial path.
inline constexpr NodeId kNoPathPrev = std::numeric_limits<NodeId>::max();

/// Best partial path ending at a node during the forward DP. Shared by the
/// scalar search and the batch slicing kernel (batch/slice_kernel.hpp) so
/// both rank candidates with literally the same code.
struct PathCandidate {
  Time start = kTimeZero;   // arrival anchor of the path's first task
  double sum_weight = 0.0;  // Σ weights along the partial path
  std::uint32_t count = 0;  // number of tasks on the partial path
  NodeId prev = 0;          // predecessor on the path
  double score = std::numeric_limits<double>::infinity();
  bool valid = false;
};

/// Deterministic candidate ranking: lower projected ratio wins; ties prefer
/// the heavier path, then the smaller predecessor id. Candidates with equal
/// (score, sum_weight, prev) are the same candidate, so this is a strict
/// weak order over any candidate set and the winner is order-independent.
inline bool path_candidate_better(const PathCandidate& a,
                                  const PathCandidate& b) {
  if (!b.valid) {
    return a.valid;
  }
  if (!a.valid) {
    return false;
  }
  if (a.score != b.score) {
    return a.score < b.score;
  }
  if (a.sum_weight != b.sum_weight) {
    return a.sum_weight > b.sum_weight;
  }
  return a.prev < b.prev;
}

struct CriticalPath {
  /// Chain of immediate-successor tasks, all unassigned.
  std::vector<NodeId> nodes;
  /// Window start: arrival anchor of nodes.front().
  Time window_start = kTimeZero;
  /// Window end: deadline anchor of nodes.back().
  Time window_end = kTimeZero;
  /// Metric value R of this path (lower = more critical).
  double metric_value = 0.0;

  Time window_length() const { return window_end - window_start; }
};

/// Reusable critical-path search. One instance per slicing run (or per
/// worker); find() overwrites the internal DP arrays and the output path's
/// node storage, so steady-state searches are allocation-free.
class CriticalPathSearch {
 public:
  /// Finds the most critical remaining path into `out` (reusing its node
  /// vector). Returns false when no unassigned task remains.
  bool find(const GraphAnalysis& analysis, const AnchorState& anchors,
            std::span<const double> weights, const DeadlineMetric& metric,
            CriticalPath& out);

 private:
  using Entry = PathCandidate;

  std::vector<Time> latest_;
  std::vector<Entry> dp_;
};

/// Finds the most critical remaining path, or nullopt when no unassigned
/// task remains. `topo_order` is the full-graph topological order; `weights`
/// are the metric weights (c̄ or ĉ) for all tasks. One-shot convenience
/// wrapper over CriticalPathSearch — it rebuilds a GraphAnalysis per call,
/// so hot loops should hold a CriticalPathSearch and a cached analysis
/// instead.
std::optional<CriticalPath> find_critical_path(
    const TaskGraph& g, std::span<const NodeId> topo_order,
    const AnchorState& anchors, std::span<const double> weights,
    const DeadlineMetric& metric);

}  // namespace dsslice
