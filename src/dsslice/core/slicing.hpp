// The SLICING deadline-distribution algorithm (Fig. 1 of the paper).
//
// Given an application (task graph + E-T-E timing requirements), estimated
// WCETs, and a critical-path metric, the algorithm repeatedly:
//   1. finds the most critical remaining path (critical_path.hpp),
//   2. partitions that path's window into non-overlapping slices according
//      to the metric (metrics.hpp), clamped into any anchors the tasks
//      accumulated from earlier passes,
//   3. propagates new anchors to the immediate neighbours of the assigned
//      tasks (anchors.hpp),
// until every task owns an execution window (a_i, D_i).
//
// The result guarantees, by construction:
//  * path constraint (Eq. 1): Σ d_i ≤ D_ete along every input→output path;
//  * non-overlap (I1/I2): for any arc u→v, D_u ≤ a_v — each task finishes
//    before its successors arrive, eliminating precedence-induced jitter.
// Windows may be infeasibly small (even negative) when the E-T-E deadline
// is tighter than the workload — the scheduler then rejects the task set,
// which is exactly the success-ratio signal the paper measures.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "dsslice/core/critical_path.hpp"
#include "dsslice/core/metrics.hpp"
#include "dsslice/core/wcet_estimate.hpp"
#include "dsslice/model/application.hpp"
#include "dsslice/model/task.hpp"

namespace dsslice {

/// Diagnostics of one slicing run.
struct SlicingStats {
  /// Number of critical paths peeled off (main-loop iterations).
  std::size_t passes = 0;
  /// Metric value R of the first (most critical) path.
  double first_path_metric = 0.0;
  /// Length of the first critical path in tasks.
  std::size_t first_path_length = 0;
  /// Minimum laxity min_i (d_i − c̄_i) over all tasks after distribution.
  double min_laxity = 0.0;
  /// True when every window fits its task's estimated WCET (necessary but
  /// not sufficient for schedulability).
  bool windows_feasible = false;
};

/// One main-loop iteration of the algorithm, for explain/debug output:
/// which path was judged most critical, over which window, at what metric
/// value.
struct SlicingPass {
  std::vector<NodeId> path;
  Time window_start = kTimeZero;
  Time window_end = kTimeZero;
  double metric_value = 0.0;
  /// Relative deadlines assigned to the path tasks, in path order.
  std::vector<double> slices;
};

/// Full decision trace of a slicing run (one entry per pass). Intended for
/// explainability and tests; costs O(n) extra memory when requested.
struct SlicingTrace {
  std::vector<SlicingPass> passes;

  /// Multi-line human-readable rendering ("pass 0: t3 -> t7 -> ... R=12.5").
  std::string to_string(const Application& app) const;
};

/// Reusable buffers for run_slicing. A run always needs per-pass scratch
/// (metric weights, the critical-path DP arrays, the per-path weight /
/// estimate / slice vectors); pointing SlicingOptions::workspace at one of
/// these keeps every buffer alive across runs, so steady-state slicing
/// performs no heap allocation beyond the returned DeadlineAssignment.
/// One workspace per thread — runs sharing a workspace must not overlap.
struct SlicingWorkspace {
  std::vector<double> weights;       ///< per-task metric weights ĉ / c̄
  MetricWorkspace metric;            ///< DeadlineMetric scratch
  CriticalPathSearch search;         ///< DP arrays of the path search
  CriticalPath path;                 ///< current spine (nodes reused)
  std::vector<double> path_weights;  ///< ĉ along the current spine
  std::vector<double> path_est;      ///< c̄ along the current spine
  std::vector<double> slices;        ///< relative deadlines of the spine
};

struct SlicingOptions {
  /// Clamp slice windows into anchors inherited from earlier passes (cross
  /// arcs between spines). Disabling reproduces a "pure boundary" variant
  /// that can violate non-overlap on cross arcs; kept for ablation only.
  bool clamp_to_anchors = true;
  /// Optional shared-resource requirements: consumed by the resource-aware
  /// ADAPT-L weights (see DeadlineMetric::weights overload). Not owned.
  const ResourceModel* resources = nullptr;
  /// When set, the run records every pass (path, window, metric value,
  /// slices) into this trace. Not owned; cleared at the start of the run.
  SlicingTrace* trace = nullptr;
  /// When set, the run borrows these buffers instead of allocating its own
  /// (identical results either way). Not owned; contents are unspecified
  /// after the run.
  SlicingWorkspace* workspace = nullptr;
};

/// Runs the slicing algorithm and returns per-task execution windows.
///
/// `est_wcet` must come from estimate_wcets(app, ...); `processor_count` is
/// the m used by the adaptive metrics' surplus factors. The application must
/// be acyclic with a finite E-T-E deadline on every output task.
DeadlineAssignment run_slicing(const Application& app,
                               std::span<const double> est_wcet,
                               const DeadlineMetric& metric,
                               std::size_t processor_count,
                               SlicingStats* stats = nullptr,
                               const SlicingOptions& options = {});

/// Recycling variant of run_slicing: writes the windows into `out`
/// (windows resized, pass_of reassigned) so batch drivers reuse one
/// DeadlineAssignment per slot instead of reallocating. Bit-identical to
/// run_slicing — the value-returning overload delegates here.
void run_slicing_into(DeadlineAssignment& out, const Application& app,
                      std::span<const double> est_wcet,
                      const DeadlineMetric& metric,
                      std::size_t processor_count,
                      SlicingStats* stats = nullptr,
                      const SlicingOptions& options = {});

/// Convenience overload: estimates WCETs internally.
DeadlineAssignment run_slicing(const Application& app,
                               MetricKind metric_kind,
                               std::size_t processor_count,
                               WcetEstimation wcet_strategy =
                                   WcetEstimation::kAverage,
                               const MetricParams& params = {},
                               SlicingStats* stats = nullptr);

}  // namespace dsslice
