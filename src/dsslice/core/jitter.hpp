// Release-jitter analysis (paper claim I2).
//
// Under precedence-driven release a task becomes ready when its last
// predecessor finishes, so its release time varies between a best case
// (every ancestor ran its minimum time on its fastest class, no
// interference) and a worst case (maximum times plus communication).
// The difference — the *release jitter* — is known to hurt schedulability
// (Audsley et al. [14]): downstream analysis must assume the worst
// alignment.
//
// The slicing technique pins every task's release to its window arrival
// a_i, which is a constant: precedence-induced jitter is eliminated by
// construction. This module quantifies both sides:
//  * precedence_release_jitter() — per-task jitter bounds J_i =
//    latest_release_i − earliest_release_i under precedence-driven release
//    with execution times ranging over the eligible classes (communication
//    at the nominal delay bound, an upper estimate J̄_i);
//  * sliced_release_jitter() — per-task jitter under a deadline assignment
//    (zero for any assignment whose arrivals are constants, i.e. always).
#pragma once

#include <span>
#include <vector>

#include "dsslice/model/application.hpp"
#include "dsslice/model/platform.hpp"
#include "dsslice/model/task.hpp"

namespace dsslice {

struct JitterBound {
  Time earliest_release = kTimeZero;
  Time latest_release = kTimeZero;

  Time jitter() const { return latest_release - earliest_release; }
};

/// Per-task release-jitter bounds under precedence-driven release: the
/// earliest release propagates minimum class WCETs with zero communication
/// (co-located best case); the latest release propagates maximum class
/// WCETs plus the worst-case cross-processor message delay between every
/// producer/consumer pair.
std::vector<JitterBound> precedence_release_jitter(const Application& app,
                                                   const Platform& platform);

/// Per-task release jitter under a deadline assignment: zero by definition
/// (arrivals are fixed time instants), returned in the same shape for
/// symmetric reporting.
std::vector<JitterBound> sliced_release_jitter(
    const Application& app, const DeadlineAssignment& assignment);

/// Convenience aggregate: the maximum and mean precedence-induced jitter a
/// task set would suffer without slicing.
struct JitterSummary {
  Time max_jitter = kTimeZero;
  Time mean_jitter = kTimeZero;
};

JitterSummary summarize_jitter(std::span<const JitterBound> bounds);

}  // namespace dsslice
