#include "dsslice/gen/rng.hpp"

#include <bit>

#include "dsslice/util/check.hpp"

namespace dsslice {

std::uint64_t SplitMix64::next() {
  std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

Xoshiro256::Xoshiro256(std::uint64_t seed) {
  SplitMix64 sm(seed);
  for (auto& s : s_) {
    s = sm.next();
  }
  // A state of all zeros is the one fixed point; SplitMix64 cannot produce
  // four zero outputs in a row, but keep the guard explicit.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) {
    s_[0] = 0x9E3779B97F4A7C15ULL;
  }
}

std::uint64_t Xoshiro256::next() {
  const std::uint64_t result = std::rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = std::rotl(s_[3], 45);
  return result;
}

double Xoshiro256::next_double() {
  // 53 top bits → uniform double in [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Xoshiro256::uniform(double lo, double hi) {
  DSSLICE_REQUIRE(lo <= hi, "uniform range inverted");
  return lo + (hi - lo) * next_double();
}

std::int64_t Xoshiro256::uniform_int(std::int64_t lo, std::int64_t hi) {
  DSSLICE_REQUIRE(lo <= hi, "uniform_int range inverted");
  const std::uint64_t span =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  if (span == 0) {  // full 64-bit range
    return static_cast<std::int64_t>(next());
  }
  // Unbiased bounded sampling by rejection.
  const std::uint64_t limit = (~std::uint64_t{0} / span) * span;
  std::uint64_t x;
  do {
    x = next();
  } while (x >= limit);
  return lo + static_cast<std::int64_t>(x % span);
}

bool Xoshiro256::bernoulli(double p) {
  DSSLICE_REQUIRE(p >= 0.0 && p <= 1.0, "probability out of range");
  return next_double() < p;
}

std::uint64_t derive_seed(std::uint64_t base, std::uint64_t index) {
  SplitMix64 sm(base ^ (0xA5A5A5A55A5A5A5AULL + index * 0x9E3779B97F4A7C15ULL));
  // Burn one output so adjacent indices diverge fully.
  sm.next();
  return sm.next();
}

}  // namespace dsslice
