// Batched scenario generation — the producer side of the million-scenario
// sweep engine (sweep/sweep_engine.hpp).
//
// A ScenarioBatch owns a reusable window of generated scenarios plus the
// GeneratorScratch their DAG layout recycles. Refilling a batch amortizes
// everything that is per-batch rather than per-scenario — the config
// validation, the scratch buffer sizing, the scenario storage shell — while
// per-scenario seed derivation stays exactly derive_seed(base_seed, index):
// scenario `index` is bit-identical whether generated alone, in any batch
// window, or on any shard (pinned by tests/test_scenario_batch.cpp).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

#include "dsslice/gen/taskgraph_generator.hpp"

namespace dsslice {

class ScenarioBatch {
 public:
  /// Regenerates the batch in place to hold scenarios
  /// [first_index, first_index + count) of the stream described by
  /// `config` (graph_count is ignored; the window bounds come from the
  /// arguments). Validates the config once, then reuses the existing
  /// scenario slots and scratch buffers.
  void generate(const GeneratorConfig& config, std::uint64_t first_index,
                std::size_t count);

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  const Scenario& operator[](std::size_t k) const { return scenarios_[k]; }
  std::span<const Scenario> scenarios() const {
    return {scenarios_.data(), size_};
  }

  /// Capacity growths of the batch storage plus the generator scratch since
  /// construction (PR 3 contract: a warm batch refilled at the same or a
  /// smaller window size must not move this counter).
  std::uint64_t grow_events() const {
    return grow_events_ + scratch_.grow_events();
  }

  GeneratorScratch& scratch() { return scratch_; }

 private:
  std::vector<Scenario> scenarios_;
  std::size_t size_ = 0;
  GeneratorScratch scratch_;
  std::uint64_t grow_events_ = 0;
};

}  // namespace dsslice
