#include "dsslice/gen/scenario_batch.hpp"

#include "dsslice/gen/rng.hpp"
#include "dsslice/obs/trace.hpp"

namespace dsslice {

void ScenarioBatch::generate(const GeneratorConfig& config,
                             std::uint64_t first_index, std::size_t count) {
  DSSLICE_SPAN("gen.batch");
  config.validate();
  if (scenarios_.capacity() < count) {
    ++grow_events_;
    scenarios_.reserve(count);
  }
  for (std::size_t k = 0; k < count; ++k) {
    const std::uint64_t seed =
        derive_seed(config.base_seed, first_index + static_cast<std::uint64_t>(k));
    if (k < scenarios_.size()) {
      generate_scenario_into(config, seed, scenarios_[k], &scratch_);
    } else {
      scenarios_.push_back(generate_scenario_with(config, seed, &scratch_));
    }
  }
  size_ = count;
}

}  // namespace dsslice
