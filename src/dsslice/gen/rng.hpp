// Deterministic pseudo-random number generation for the workload generator.
//
// We implement SplitMix64 (seeding / stream derivation) and xoshiro256**
// (bulk generation) rather than rely on std::mt19937 so that generated
// workloads are bit-reproducible across standard libraries and platforms —
// experiment seeds quoted in EXPERIMENTS.md must regenerate the same
// workloads everywhere.
#pragma once

#include <cstdint>

namespace dsslice {

/// SplitMix64: tiny, full-period 2^64 generator; used to expand one user
/// seed into independent stream seeds.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}
  std::uint64_t next();

 private:
  std::uint64_t state_;
};

/// xoshiro256** 1.0 (Blackman & Vigna) — fast, high-quality 64-bit PRNG.
class Xoshiro256 {
 public:
  /// Seeds all 256 bits from the given seed via SplitMix64.
  explicit Xoshiro256(std::uint64_t seed);

  using result_type = std::uint64_t;
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }

  result_type operator()() { return next(); }
  std::uint64_t next();

  /// Uniform double in [0, 1).
  double next_double();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in the inclusive range [lo, hi] (unbiased via
  /// rejection sampling).
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Bernoulli trial with success probability p.
  bool bernoulli(double p);

 private:
  std::uint64_t s_[4];
};

/// Derives an independent child seed from (base, index) — stable across
/// runs, used to give each generated graph its own stream so batches can be
/// generated in parallel in any order.
std::uint64_t derive_seed(std::uint64_t base, std::uint64_t index);

}  // namespace dsslice
