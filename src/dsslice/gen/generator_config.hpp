// Configuration of the random workload generator (§5.1–§5.2 of the paper).
//
// Defaults reproduce the paper's experimental setup exactly; every knob the
// evaluation sweeps (system size, OLR, ETD, WCET strategy) is a field here.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "dsslice/model/time.hpp"

namespace dsslice {

/// How per-class execution-time heterogeneity is synthesized.
/// See DESIGN.md §4.1 for why kUniformFactors is the default.
enum class ClassModel {
  /// Per-class speed factor shared by all tasks: c_i[e] = b_i · s_e with
  /// s_e ~ U[1-h, 1+h] (uniform machines). Preserves the paper's ETD=0
  /// invariant (identical estimated WCETs).
  kUniformFactors,
  /// Independent deviation per (task, class): c_i[e] = b_i · u_{i,e},
  /// u ~ U[1-h, 1+h] (unrelated machines). Used in ablations.
  kUnrelated,
};

std::string to_string(ClassModel m);

/// How precedence arcs are drawn between the layers of the generated DAG.
enum class EdgeLocality {
  /// Predecessors come only from the immediately preceding level — chain-like
  /// pipelines with aligned execution windows.
  kAdjacentLevel,
  /// Each task keeps one predecessor in the preceding level (pinning the
  /// graph depth) but draws its remaining predecessors uniformly from *any*
  /// earlier level. This produces paths of widely varying length — and thus
  /// widely overlapping execution windows after slicing — which is the
  /// contention regime the paper's evaluation exercises.
  kAnyEarlierLevel,
};

std::string to_string(EdgeLocality locality);

/// Parameters of the random platform (§5.1).
struct PlatformConfig {
  /// Number of processors m (paper: swept 2–8).
  std::size_t processor_count = 3;
  /// Processor class count is drawn uniformly from
  /// [min_class_count, max_class_count] (paper: 1–3).
  std::size_t min_class_count = 1;
  std::size_t max_class_count = 3;
  /// Shared-bus per-item delay (paper: 1 time unit per data item).
  Time bus_delay_per_item = 1.0;
  /// Maximum per-class speed deviation h (paper: ±25%).
  double class_deviation = 0.25;
  ClassModel class_model = ClassModel::kUniformFactors;
};

/// Parameters of the random task graphs (§5.2).
struct WorkloadConfig {
  /// Task count range (paper: 40–60).
  std::size_t min_tasks = 40;
  std::size_t max_tasks = 60;
  /// Graph depth range in levels (paper: 8–12).
  std::size_t min_depth = 8;
  std::size_t max_depth = 12;
  /// Predecessor/successor count range (paper: 1–3).
  std::size_t min_degree = 1;
  std::size_t max_degree = 3;
  /// Arc structure between levels (see EdgeLocality). Adjacent-level is the
  /// default: it reproduces the paper's convergence to a 100% success ratio
  /// on large systems, whereas skip-level arcs introduce structurally
  /// infeasible windows independent of the system size (see the structure
  /// ablation bench).
  EdgeLocality edge_locality = EdgeLocality::kAdjacentLevel;
  /// Mean task execution time c_mean (paper: 20 time units).
  double mean_execution_time = 20.0;
  /// Execution-time distribution: max deviation from c_mean (paper default
  /// 25%, swept 0–100% in Fig. 4/6).
  double etd = 0.25;
  /// Probability that a (task, class) pair is ineligible (paper: 5%).
  double ineligible_probability = 0.05;
  /// Overall laxity ratio: E-T-E deadline = olr × Σ c̄_i^avg (paper default
  /// 0.8, swept in Figs. 3/5).
  double olr = 0.8;
  /// Per-output deadline spread: each output task's E-T-E deadline is
  /// drawn as olr × workload × U[1−s, 1+s]. The paper gives one deadline
  /// "per input–output task pair"; 0 (default) makes them identical, a
  /// positive spread differentiates the pairs.
  double olr_spread = 0.0;
  /// Communication-to-computation ratio: mean message cost / mean execution
  /// time (paper: 0.1). Mean message size = ccr × c_mean / bus_delay.
  double ccr = 0.1;
  /// Imprecise-computation knob (docs/ROBUSTNESS.md, "Graceful
  /// degradation"): each task's optional fraction is drawn uniformly from
  /// [min_optional_fraction, max_optional_fraction]. Both 0 (the default)
  /// disables the draw entirely, keeping the generator's RNG stream — and
  /// hence every generated scenario — bit-identical to the precise model.
  /// Must satisfy 0 ≤ min ≤ max < 1 (a task must keep a mandatory part).
  double min_optional_fraction = 0.0;
  double max_optional_fraction = 0.0;
  /// Whether message sizes are integral items (paper's "data items").
  bool integral_messages = true;
};

/// A full generation scenario: platform + workload + batch size and seed.
struct GeneratorConfig {
  PlatformConfig platform;
  WorkloadConfig workload;
  /// Number of task graphs per experiment (paper: 1024).
  std::size_t graph_count = 1024;
  /// Base seed; graph k uses derive_seed(base_seed, k).
  std::uint64_t base_seed = 0x5EEDED5EEDED5EEDULL;

  /// Throws ConfigError when any parameter is out of range.
  void validate() const;
};

}  // namespace dsslice
