#include "dsslice/gen/taskgraph_generator.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "dsslice/gen/platform_generator.hpp"
#include "dsslice/obs/trace.hpp"
#include "dsslice/util/check.hpp"

namespace dsslice {

namespace {

/// Distributes `n` tasks over `depth` levels, at least one per level; the
/// surplus is spread uniformly at random. Returns per-level task counts.
std::vector<std::size_t> draw_level_sizes(std::size_t n, std::size_t depth,
                                          Xoshiro256& rng) {
  std::vector<std::size_t> sizes(depth, 1);
  for (std::size_t extra = 0; extra < n - depth; ++extra) {
    const auto level = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(depth) - 1));
    ++sizes[level];
  }
  return sizes;
}

/// Draws the layered precedence structure: each task beyond level 0 picks
/// 1–3 predecessors from the previous level (preferring predecessors that
/// still have spare out-degree); level-ℓ tasks without successors are then
/// wired forward so only the last level contains output tasks.
TaskGraph draw_structure(const WorkloadConfig& cfg, std::size_t n,
                         std::size_t depth, Xoshiro256& rng) {
  const auto sizes = draw_level_sizes(n, depth, rng);
  std::vector<std::vector<NodeId>> levels(depth);
  TaskGraph g(n);
  {
    NodeId next = 0;
    for (std::size_t l = 0; l < depth; ++l) {
      for (std::size_t k = 0; k < sizes[l]; ++k) {
        levels[l].push_back(next++);
      }
    }
  }

  // Tasks at earlier levels than l, for the any-earlier edge mode.
  std::vector<NodeId> earlier;
  for (std::size_t l = 1; l < depth; ++l) {
    const auto& prev = levels[l - 1];
    earlier.insert(earlier.end(), prev.begin(), prev.end());
    for (const NodeId v : levels[l]) {
      const auto want = static_cast<std::size_t>(rng.uniform_int(
          static_cast<std::int64_t>(cfg.min_degree),
          static_cast<std::int64_t>(cfg.max_degree)));

      // One predecessor always comes from the immediately preceding level:
      // it pins v's topological depth to its layer. Prefer predecessors with
      // spare out-capacity so out-degrees also stay in the configured band.
      std::vector<NodeId> with_capacity;
      for (const NodeId u : prev) {
        if (g.out_degree(u) < cfg.max_degree) {
          with_capacity.push_back(u);
        }
      }
      const std::vector<NodeId>& anchor_pool =
          with_capacity.empty() ? prev : with_capacity;
      const auto a = static_cast<std::size_t>(rng.uniform_int(
          0, static_cast<std::int64_t>(anchor_pool.size()) - 1));
      g.add_arc(anchor_pool[a], v);

      // Remaining predecessors per the edge-locality mode.
      const std::vector<NodeId>& extra_pool =
          cfg.edge_locality == EdgeLocality::kAnyEarlierLevel ? earlier : prev;
      std::size_t extra = std::min(want, extra_pool.size()) - 1;
      for (std::size_t k = 0; k < extra; ++k) {
        const auto j = static_cast<std::size_t>(rng.uniform_int(
            0, static_cast<std::int64_t>(extra_pool.size()) - 1));
        const NodeId u = extra_pool[j];
        if (!g.has_arc(u, v)) {
          g.add_arc(u, v);
        }
      }
    }
    // Every previous-level task must have at least one successor (only the
    // final level may contain output tasks).
    for (const NodeId u : prev) {
      if (g.out_degree(u) != 0) {
        continue;
      }
      // Prefer a current-level task with spare in-capacity.
      std::vector<NodeId> candidates;
      for (const NodeId v : levels[l]) {
        if (g.in_degree(v) < cfg.max_degree && !g.has_arc(u, v)) {
          candidates.push_back(v);
        }
      }
      if (candidates.empty()) {
        for (const NodeId v : levels[l]) {
          if (!g.has_arc(u, v)) {
            candidates.push_back(v);
          }
        }
      }
      DSSLICE_CHECK(!candidates.empty(), "level with no attachable successor");
      const auto j = static_cast<std::size_t>(rng.uniform_int(
          0, static_cast<std::int64_t>(candidates.size()) - 1));
      g.add_arc(u, candidates[j]);
    }
  }
  return g;
}

/// Draws a message size whose expectation matches the configured CCR.
double draw_message_items(const WorkloadConfig& cfg, Xoshiro256& rng) {
  const double mean_items = cfg.ccr * cfg.mean_execution_time;
  if (mean_items <= 0.0) {
    return 0.0;
  }
  if (cfg.integral_messages) {
    // Uniform over {1, ..., 2·mean-1} keeps the mean at `mean_items` for
    // integral means >= 1 (paper: mean 2 ⇒ sizes in {1, 2, 3}).
    const auto mean = static_cast<std::int64_t>(std::llround(mean_items));
    if (mean <= 1) {
      return 1.0;
    }
    return static_cast<double>(rng.uniform_int(1, 2 * mean - 1));
  }
  return rng.uniform(0.0, 2.0 * mean_items);
}

}  // namespace

Application generate_application(const WorkloadConfig& config,
                                 const Platform& platform, Xoshiro256& rng,
                                 ClassModel class_model,
                                 double class_deviation) {
  DSSLICE_SPAN("gen.taskgraph");
  const auto n = static_cast<std::size_t>(
      rng.uniform_int(static_cast<std::int64_t>(config.min_tasks),
                      static_cast<std::int64_t>(config.max_tasks)));
  const auto depth = static_cast<std::size_t>(
      rng.uniform_int(static_cast<std::int64_t>(config.min_depth),
                      static_cast<std::int64_t>(config.max_depth)));
  DSSLICE_REQUIRE(depth <= n, "graph depth exceeds task count");

  TaskGraph structure = draw_structure(config, n, depth, rng);
  // Arc message sizes per CCR.
  TaskGraph g(n);
  for (const Arc& a : structure.arcs()) {
    g.add_arc(a.from, a.to, draw_message_items(config, rng));
  }

  // Classes that actually have processors: eligibility must keep at least
  // one of these per task or the task could never be scheduled.
  const std::size_t class_count = platform.class_count();
  std::vector<ProcessorClassId> populated;
  for (ProcessorClassId e = 0; e < class_count; ++e) {
    if (platform.processors_in_class(e) > 0) {
      populated.push_back(e);
    }
  }
  DSSLICE_CHECK(!populated.empty(), "platform without populated classes");

  const double c_mean = config.mean_execution_time;
  std::vector<Task> tasks(n);
  for (NodeId i = 0; i < n; ++i) {
    Task& t = tasks[i];
    t.name = "t" + std::to_string(i);
    // Base execution time under the configured ETD.
    const double base =
        config.etd == 0.0
            ? c_mean
            : rng.uniform(c_mean * (1.0 - config.etd),
                          c_mean * (1.0 + config.etd));
    t.wcet_by_class.resize(class_count);
    for (ProcessorClassId e = 0; e < class_count; ++e) {
      const double scale =
          class_model == ClassModel::kUniformFactors
              ? platform.processor_class(e).speed_factor
              : rng.uniform(1.0 - class_deviation, 1.0 + class_deviation);
      // Execution times are integral time units (§3.1), floor at 1.
      t.wcet_by_class[e] = std::max(1.0, std::round(base * scale));
    }
    // 5% per-(task, class) ineligibility; keep >= 1 populated class.
    const std::vector<double> drawn = t.wcet_by_class;
    for (ProcessorClassId e = 0; e < class_count; ++e) {
      if (rng.bernoulli(config.ineligible_probability)) {
        t.wcet_by_class[e] = kIneligibleWcet;
      }
    }
    const bool any_populated_eligible = std::any_of(
        populated.begin(), populated.end(),
        [&](ProcessorClassId e) { return t.eligible(e); });
    if (!any_populated_eligible) {
      const auto j = static_cast<std::size_t>(rng.uniform_int(
          0, static_cast<std::int64_t>(populated.size()) - 1));
      const ProcessorClassId e = populated[j];
      t.wcet_by_class[e] = drawn[e];
    }
  }

  Application app(std::move(g), std::move(tasks));

  // E-T-E deadline from the OLR over the average accumulated workload
  // (mean WCET across eligible classes, summed over all tasks).
  double avg_workload = 0.0;
  for (NodeId i = 0; i < n; ++i) {
    const Task& t = app.task(i);
    double sum = 0.0;
    std::size_t k = 0;
    for (ProcessorClassId e = 0; e < class_count; ++e) {
      if (t.eligible(e)) {
        sum += t.wcet(e);
        ++k;
      }
    }
    avg_workload += sum / static_cast<double>(k);
  }
  for (const NodeId out : app.graph().output_nodes()) {
    const double spread =
        config.olr_spread == 0.0
            ? 1.0
            : rng.uniform(1.0 - config.olr_spread, 1.0 + config.olr_spread);
    app.set_ete_deadline(out,
                         std::round(config.olr * avg_workload * spread));
  }
  for (const NodeId in : app.graph().input_nodes()) {
    app.set_input_arrival(in, kTimeZero);
  }

  // Imprecise-computation splits, drawn after every other draw so that a
  // disabled knob (max == 0, the default) leaves the RNG stream — and an
  // enabled knob leaves the graph structure, WCETs and deadlines — untouched
  // for a given seed.
  if (config.max_optional_fraction > 0.0) {
    for (NodeId i = 0; i < n; ++i) {
      app.mutable_task(i).optional_fraction = rng.uniform(
          config.min_optional_fraction, config.max_optional_fraction);
    }
  }
  return app;
}

Scenario generate_scenario(const GeneratorConfig& config, std::uint64_t seed) {
  DSSLICE_SPAN("gen.scenario");
  DSSLICE_COUNT("gen.scenarios", 1);
  config.validate();
  Xoshiro256 rng(seed);
  Platform platform = generate_platform(config.platform, rng);
  Application app =
      generate_application(config.workload, platform, rng,
                           config.platform.class_model,
                           config.platform.class_deviation);
  return Scenario{std::move(platform), std::move(app)};
}

Scenario generate_scenario_at(const GeneratorConfig& config,
                              std::size_t index) {
  return generate_scenario(config, derive_seed(config.base_seed, index));
}

ResourceModel generate_resources(const Application& app,
                                 std::size_t resource_count,
                                 double probability, Xoshiro256& rng) {
  DSSLICE_REQUIRE(probability >= 0.0 && probability <= 1.0,
                  "probability out of range");
  ResourceModel model(app.task_count(), resource_count);
  for (NodeId v = 0; v < app.task_count(); ++v) {
    for (ResourceId r = 0; r < resource_count; ++r) {
      if (rng.bernoulli(probability)) {
        model.require(v, r);
      }
    }
  }
  return model;
}

}  // namespace dsslice
