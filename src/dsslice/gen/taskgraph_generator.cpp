#include "dsslice/gen/taskgraph_generator.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "dsslice/gen/platform_generator.hpp"
#include "dsslice/obs/trace.hpp"
#include "dsslice/util/check.hpp"

namespace dsslice {

namespace {

/// Distributes `n` tasks over `depth` levels, at least one per level; the
/// surplus is spread uniformly at random. Fills scratch.level_sizes and the
/// per-level start ids (node ids are assigned consecutively by level, so a
/// level is fully described by its [start, start + size) range).
void draw_level_sizes(std::size_t n, std::size_t depth, Xoshiro256& rng,
                      GeneratorScratch& scratch) {
  scratch.fill(scratch.level_sizes, depth, std::size_t{1});
  for (std::size_t extra = 0; extra < n - depth; ++extra) {
    const auto level = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(depth) - 1));
    ++scratch.level_sizes[level];
  }
  scratch.fill(scratch.level_start, depth, NodeId{0});
  NodeId next = 0;
  for (std::size_t l = 0; l < depth; ++l) {
    scratch.level_start[l] = next;
    next += static_cast<NodeId>(scratch.level_sizes[l]);
  }
}

/// Draws the layered precedence structure: each task beyond level 0 picks
/// 1–3 predecessors from the previous level (preferring predecessors that
/// still have spare out-degree); level-ℓ tasks without successors are then
/// wired forward so only the last level contains output tasks.
void draw_structure_into(TaskGraph& g, const WorkloadConfig& cfg,
                         std::size_t n, std::size_t depth, Xoshiro256& rng,
                         GeneratorScratch& scratch) {
  draw_level_sizes(n, depth, rng, scratch);
  g.reset(n);

  // Node ids are consecutive by level, so the previous level is the id
  // range [prev_start, start) and "any earlier level" is [0, start) — the
  // same enumeration orders the materialized pools used to have, hence the
  // same uniform_int draws.
  for (std::size_t l = 1; l < depth; ++l) {
    const NodeId prev_start = scratch.level_start[l - 1];
    const NodeId start = scratch.level_start[l];
    const NodeId end = start + static_cast<NodeId>(scratch.level_sizes[l]);
    const std::size_t prev_size = scratch.level_sizes[l - 1];
    for (NodeId v = start; v < end; ++v) {
      const auto want = static_cast<std::size_t>(rng.uniform_int(
          static_cast<std::int64_t>(cfg.min_degree),
          static_cast<std::int64_t>(cfg.max_degree)));

      // One predecessor always comes from the immediately preceding level:
      // it pins v's topological depth to its layer. Prefer predecessors with
      // spare out-capacity so out-degrees also stay in the configured band.
      scratch.with_capacity.clear();
      for (NodeId u = prev_start; u < start; ++u) {
        if (g.out_degree(u) < cfg.max_degree) {
          scratch.push(scratch.with_capacity, u);
        }
      }
      const std::size_t anchor_count = scratch.with_capacity.empty()
                                           ? prev_size
                                           : scratch.with_capacity.size();
      const auto a = static_cast<std::size_t>(rng.uniform_int(
          0, static_cast<std::int64_t>(anchor_count) - 1));
      const NodeId anchor = scratch.with_capacity.empty()
                                ? prev_start + static_cast<NodeId>(a)
                                : scratch.with_capacity[a];
      g.add_arc(anchor, v);

      // Remaining predecessors per the edge-locality mode.
      const bool any_earlier =
          cfg.edge_locality == EdgeLocality::kAnyEarlierLevel;
      const NodeId pool_base = any_earlier ? 0 : prev_start;
      const std::size_t pool_size =
          any_earlier ? static_cast<std::size_t>(start) : prev_size;
      std::size_t extra = std::min(want, pool_size) - 1;
      for (std::size_t k = 0; k < extra; ++k) {
        const auto j = static_cast<std::size_t>(rng.uniform_int(
            0, static_cast<std::int64_t>(pool_size) - 1));
        const NodeId u = pool_base + static_cast<NodeId>(j);
        if (!g.has_arc(u, v)) {
          g.add_arc(u, v);
        }
      }
    }
    // Every previous-level task must have at least one successor (only the
    // final level may contain output tasks).
    for (NodeId u = prev_start; u < start; ++u) {
      if (g.out_degree(u) != 0) {
        continue;
      }
      // Prefer a current-level task with spare in-capacity.
      scratch.candidates.clear();
      for (NodeId v = start; v < end; ++v) {
        if (g.in_degree(v) < cfg.max_degree && !g.has_arc(u, v)) {
          scratch.push(scratch.candidates, v);
        }
      }
      if (scratch.candidates.empty()) {
        for (NodeId v = start; v < end; ++v) {
          if (!g.has_arc(u, v)) {
            scratch.push(scratch.candidates, v);
          }
        }
      }
      DSSLICE_CHECK(!scratch.candidates.empty(),
                    "level with no attachable successor");
      const auto j = static_cast<std::size_t>(rng.uniform_int(
          0, static_cast<std::int64_t>(scratch.candidates.size()) - 1));
      g.add_arc(u, scratch.candidates[j]);
    }
  }
}

/// Draws a message size whose expectation matches the configured CCR.
double draw_message_items(const WorkloadConfig& cfg, Xoshiro256& rng) {
  const double mean_items = cfg.ccr * cfg.mean_execution_time;
  if (mean_items <= 0.0) {
    return 0.0;
  }
  if (cfg.integral_messages) {
    // Uniform over {1, ..., 2·mean-1} keeps the mean at `mean_items` for
    // integral means >= 1 (paper: mean 2 ⇒ sizes in {1, 2, 3}).
    const auto mean = static_cast<std::int64_t>(std::llround(mean_items));
    if (mean <= 1) {
      return 1.0;
    }
    return static_cast<double>(rng.uniform_int(1, 2 * mean - 1));
  }
  return rng.uniform(0.0, 2.0 * mean_items);
}

}  // namespace

Application generate_application(const WorkloadConfig& config,
                                 const Platform& platform, Xoshiro256& rng,
                                 ClassModel class_model,
                                 double class_deviation,
                                 GeneratorScratch* scratch) {
  Application app{TaskGraph{}, std::vector<Task>{}};
  generate_application_into(app, config, platform, rng, class_model,
                            class_deviation, scratch);
  return app;
}

void generate_application_into(Application& app, const WorkloadConfig& config,
                               const Platform& platform, Xoshiro256& rng,
                               ClassModel class_model, double class_deviation,
                               GeneratorScratch* scratch) {
  DSSLICE_SPAN("gen.taskgraph");
  GeneratorScratch local_scratch;
  GeneratorScratch& scr = scratch != nullptr ? *scratch : local_scratch;
  const auto n = static_cast<std::size_t>(
      rng.uniform_int(static_cast<std::int64_t>(config.min_tasks),
                      static_cast<std::int64_t>(config.max_tasks)));
  const auto depth = static_cast<std::size_t>(
      rng.uniform_int(static_cast<std::int64_t>(config.min_depth),
                      static_cast<std::int64_t>(config.max_depth)));
  DSSLICE_REQUIRE(depth <= n, "graph depth exceeds task count");

  // Structure draws first, then message sizes per CCR in arc-insertion
  // order — the same total draw order the former two-graph build used, over
  // a single recycled graph.
  draw_structure_into(scr.graph, config, n, depth, rng, scr);
  scr.fill(scr.message_items, scr.graph.arc_count(), 0.0);
  for (std::size_t k = 0; k < scr.message_items.size(); ++k) {
    scr.message_items[k] = draw_message_items(config, rng);
  }
  scr.graph.assign_message_items(scr.message_items);

  // Classes that actually have processors: eligibility must keep at least
  // one of these per task or the task could never be scheduled.
  const std::size_t class_count = platform.class_count();
  scr.populated.clear();
  for (ProcessorClassId e = 0; e < class_count; ++e) {
    if (platform.processors_in_class(e) > 0) {
      scr.push(scr.populated, e);
    }
  }
  std::vector<ProcessorClassId>& populated = scr.populated;
  DSSLICE_CHECK(!populated.empty(), "platform without populated classes");

  const double c_mean = config.mean_execution_time;
  scr.resize_task_slots(n);
  for (NodeId i = 0; i < n; ++i) {
    Task& t = scr.tasks[i];
    t.name = "t" + std::to_string(i);  // SSO: no heap for generated names
    // Reset recycled-slot state the loops below do not overwrite.
    t.phasing = kTimeZero;
    t.period = kTimeZero;
    t.optional_fraction = 0.0;
    // Base execution time under the configured ETD.
    const double base =
        config.etd == 0.0
            ? c_mean
            : rng.uniform(c_mean * (1.0 - config.etd),
                          c_mean * (1.0 + config.etd));
    scr.resize(t.wcet_by_class, class_count);
    for (ProcessorClassId e = 0; e < class_count; ++e) {
      const double scale =
          class_model == ClassModel::kUniformFactors
              ? platform.processor_class(e).speed_factor
              : rng.uniform(1.0 - class_deviation, 1.0 + class_deviation);
      // Execution times are integral time units (§3.1), floor at 1.
      t.wcet_by_class[e] = std::max(1.0, std::round(base * scale));
    }
    // 5% per-(task, class) ineligibility; keep >= 1 populated class.
    scr.fill(scr.drawn_wcet, t.wcet_by_class.size(), 0.0);
    std::copy(t.wcet_by_class.begin(), t.wcet_by_class.end(),
              scr.drawn_wcet.begin());
    const std::vector<double>& drawn = scr.drawn_wcet;
    for (ProcessorClassId e = 0; e < class_count; ++e) {
      if (rng.bernoulli(config.ineligible_probability)) {
        t.wcet_by_class[e] = kIneligibleWcet;
      }
    }
    const bool any_populated_eligible = std::any_of(
        populated.begin(), populated.end(),
        [&](ProcessorClassId e) { return t.eligible(e); });
    if (!any_populated_eligible) {
      const auto j = static_cast<std::size_t>(rng.uniform_int(
          0, static_cast<std::int64_t>(populated.size()) - 1));
      const ProcessorClassId e = populated[j];
      t.wcet_by_class[e] = drawn[e];
    }
  }

  // Trade the freshly drawn storage for the target's previous storage; the
  // scratch recycles that capacity on the next call.
  app.rebuild_swap(scr.graph, scr.tasks);

  // E-T-E deadline from the OLR over the average accumulated workload
  // (mean WCET across eligible classes, summed over all tasks).
  double avg_workload = 0.0;
  for (NodeId i = 0; i < n; ++i) {
    const Task& t = app.task(i);
    double sum = 0.0;
    std::size_t k = 0;
    for (ProcessorClassId e = 0; e < class_count; ++e) {
      if (t.eligible(e)) {
        sum += t.wcet(e);
        ++k;
      }
    }
    avg_workload += sum / static_cast<double>(k);
  }
  // Direct ascending scans visit outputs/inputs in the same order as the
  // materialized output_nodes()/input_nodes() lists, without allocating.
  for (NodeId out = 0; out < n; ++out) {
    if (!app.graph().is_output(out)) {
      continue;
    }
    const double spread =
        config.olr_spread == 0.0
            ? 1.0
            : rng.uniform(1.0 - config.olr_spread, 1.0 + config.olr_spread);
    app.set_ete_deadline(out,
                         std::round(config.olr * avg_workload * spread));
  }
  for (NodeId in = 0; in < n; ++in) {
    if (app.graph().is_input(in)) {
      app.set_input_arrival(in, kTimeZero);
    }
  }

  // Imprecise-computation splits, drawn after every other draw so that a
  // disabled knob (max == 0, the default) leaves the RNG stream — and an
  // enabled knob leaves the graph structure, WCETs and deadlines — untouched
  // for a given seed.
  if (config.max_optional_fraction > 0.0) {
    for (NodeId i = 0; i < n; ++i) {
      app.mutable_task(i).optional_fraction = rng.uniform(
          config.min_optional_fraction, config.max_optional_fraction);
    }
  }
}

Scenario generate_scenario(const GeneratorConfig& config, std::uint64_t seed) {
  config.validate();
  return generate_scenario_with(config, seed, nullptr);
}

Scenario generate_scenario_with(const GeneratorConfig& config,
                                std::uint64_t seed,
                                GeneratorScratch* scratch) {
  DSSLICE_SPAN("gen.scenario");
  DSSLICE_COUNT("gen.scenarios", 1);
  Xoshiro256 rng(seed);
  Platform platform = generate_platform(config.platform, rng);
  Application app =
      generate_application(config.workload, platform, rng,
                           config.platform.class_model,
                           config.platform.class_deviation, scratch);
  return Scenario{std::move(platform), std::move(app)};
}

void generate_scenario_into(const GeneratorConfig& config, std::uint64_t seed,
                            Scenario& out, GeneratorScratch* scratch) {
  DSSLICE_SPAN("gen.scenario");
  DSSLICE_COUNT("gen.scenarios", 1);
  Xoshiro256 rng(seed);
  out.platform = generate_platform(config.platform, rng);
  generate_application_into(out.application, config.workload, out.platform,
                            rng, config.platform.class_model,
                            config.platform.class_deviation, scratch);
}

Scenario generate_scenario_at(const GeneratorConfig& config,
                              std::size_t index) {
  return generate_scenario(config, derive_seed(config.base_seed, index));
}

ResourceModel generate_resources(const Application& app,
                                 std::size_t resource_count,
                                 double probability, Xoshiro256& rng) {
  DSSLICE_REQUIRE(probability >= 0.0 && probability <= 1.0,
                  "probability out of range");
  ResourceModel model(app.task_count(), resource_count);
  for (NodeId v = 0; v < app.task_count(); ++v) {
    for (ResourceId r = 0; r < resource_count; ++r) {
      if (rng.bernoulli(probability)) {
        model.require(v, r);
      }
    }
  }
  return model;
}

}  // namespace dsslice
