#include "dsslice/gen/platform_generator.hpp"

#include "dsslice/obs/trace.hpp"
#include "dsslice/util/check.hpp"

namespace dsslice {

Platform generate_platform(const PlatformConfig& config, Xoshiro256& rng) {
  DSSLICE_SPAN("gen.platform");
  const auto class_count = static_cast<std::size_t>(rng.uniform_int(
      static_cast<std::int64_t>(config.min_class_count),
      static_cast<std::int64_t>(config.max_class_count)));

  std::vector<ProcessorClass> classes;
  classes.reserve(class_count);
  for (std::size_t e = 0; e < class_count; ++e) {
    const double h = config.class_deviation;
    const double factor =
        class_count == 1 ? 1.0 : rng.uniform(1.0 - h, 1.0 + h);
    classes.push_back(ProcessorClass{"e" + std::to_string(e), factor});
  }

  std::vector<ProcessorClassId> class_of(config.processor_count);
  for (auto& e : class_of) {
    e = static_cast<ProcessorClassId>(
        rng.uniform_int(0, static_cast<std::int64_t>(class_count) - 1));
  }
  // Guarantee class 0 is populated so at least one class is usable even
  // under adversarial eligibility draws (the workload generator only makes
  // tasks eligible on populated classes).
  class_of[0] = 0;

  return Platform::shared_bus(std::move(classes), std::move(class_of),
                              config.bus_delay_per_item);
}

}  // namespace dsslice
