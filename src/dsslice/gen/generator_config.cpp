#include "dsslice/gen/generator_config.hpp"

#include "dsslice/util/check.hpp"

namespace dsslice {

std::string to_string(ClassModel m) {
  switch (m) {
    case ClassModel::kUniformFactors:
      return "uniform-factors";
    case ClassModel::kUnrelated:
      return "unrelated";
  }
  return "unknown";
}

std::string to_string(EdgeLocality locality) {
  switch (locality) {
    case EdgeLocality::kAdjacentLevel:
      return "adjacent-level";
    case EdgeLocality::kAnyEarlierLevel:
      return "any-earlier-level";
  }
  return "unknown";
}

void GeneratorConfig::validate() const {
  DSSLICE_REQUIRE(platform.processor_count >= 1, "need >= 1 processor");
  DSSLICE_REQUIRE(platform.min_class_count >= 1, "need >= 1 class");
  DSSLICE_REQUIRE(platform.min_class_count <= platform.max_class_count,
                  "class count range inverted");
  DSSLICE_REQUIRE(platform.bus_delay_per_item >= 0.0, "negative bus delay");
  DSSLICE_REQUIRE(platform.class_deviation >= 0.0 &&
                      platform.class_deviation < 1.0,
                  "class deviation must be in [0, 1)");

  DSSLICE_REQUIRE(workload.min_tasks >= 1, "need >= 1 task");
  DSSLICE_REQUIRE(workload.min_tasks <= workload.max_tasks,
                  "task count range inverted");
  DSSLICE_REQUIRE(workload.min_depth >= 1, "need >= 1 level");
  DSSLICE_REQUIRE(workload.min_depth <= workload.max_depth,
                  "depth range inverted");
  DSSLICE_REQUIRE(workload.max_depth <= workload.min_tasks,
                  "graph depth cannot exceed the minimum task count");
  DSSLICE_REQUIRE(workload.min_degree >= 1, "need >= 1 predecessor");
  DSSLICE_REQUIRE(workload.min_degree <= workload.max_degree,
                  "degree range inverted");
  DSSLICE_REQUIRE(workload.mean_execution_time > 0.0,
                  "mean execution time must be positive");
  DSSLICE_REQUIRE(workload.etd >= 0.0 && workload.etd <= 1.0,
                  "ETD must be in [0, 1]");
  DSSLICE_REQUIRE(workload.ineligible_probability >= 0.0 &&
                      workload.ineligible_probability < 1.0,
                  "ineligibility probability must be in [0, 1)");
  DSSLICE_REQUIRE(workload.olr > 0.0, "OLR must be positive");
  DSSLICE_REQUIRE(workload.olr_spread >= 0.0 && workload.olr_spread < 1.0,
                  "OLR spread must be in [0, 1)");
  DSSLICE_REQUIRE(workload.ccr >= 0.0, "CCR must be non-negative");
  DSSLICE_REQUIRE(workload.min_optional_fraction >= 0.0 &&
                      workload.min_optional_fraction <=
                          workload.max_optional_fraction &&
                      workload.max_optional_fraction < 1.0,
                  "optional fraction range must satisfy 0 <= min <= max < 1");

  DSSLICE_REQUIRE(graph_count >= 1, "need >= 1 graph");
}

}  // namespace dsslice
