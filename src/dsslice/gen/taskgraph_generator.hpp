// Random task-graph / application generation (§5.2).
//
// Layered-DAG construction honouring the paper's parameters: task count
// 40–60, depth 8–12 levels, per-task degree 1–3, execution times uniform
// around c_mean with deviation ETD, per-class heterogeneity of ±25%, 5%
// (task, class) ineligibility, message sizes chosen for CCR = 0.1, and one
// E-T-E deadline per output task derived from the overall laxity ratio OLR.
#pragma once

#include <cstdint>

#include "dsslice/gen/generator_config.hpp"
#include "dsslice/gen/rng.hpp"
#include "dsslice/model/application.hpp"
#include "dsslice/model/platform.hpp"
#include "dsslice/model/resources.hpp"

namespace dsslice {

/// One generated experiment unit: the platform plus an application whose
/// per-class WCETs are consistent with that platform's classes.
struct Scenario {
  Platform platform;
  Application application;
};

/// Generates a random application for an existing platform. The E-T-E
/// deadline uses the average accumulated workload (mean WCET over eligible
/// classes, summed over tasks) scaled by the configured OLR.
///
/// `class_model` selects how per-class WCETs are synthesized:
/// kUniformFactors multiplies each task's base time by the platform class's
/// speed factor (default; preserves the paper's ETD=0 invariant), while
/// kUnrelated draws an independent ±class_deviation factor per (task, class).
Application generate_application(const WorkloadConfig& config,
                                 const Platform& platform, Xoshiro256& rng,
                                 ClassModel class_model =
                                     ClassModel::kUniformFactors,
                                 double class_deviation = 0.25);

/// Generates platform + application from a single seed (scenario `index` of
/// a batch uses derive_seed(config.base_seed, index)).
Scenario generate_scenario(const GeneratorConfig& config, std::uint64_t seed);

/// Convenience: scenario `index` of the batch described by `config`.
Scenario generate_scenario_at(const GeneratorConfig& config,
                              std::size_t index);

/// Draws random shared-resource requirements for an application (§7.3
/// future-work experiments): `resource_count` exclusive resources, each
/// (task, resource) pair requiring with probability `probability`.
ResourceModel generate_resources(const Application& app,
                                 std::size_t resource_count,
                                 double probability, Xoshiro256& rng);

}  // namespace dsslice
