// Random task-graph / application generation (§5.2).
//
// Layered-DAG construction honouring the paper's parameters: task count
// 40–60, depth 8–12 levels, per-task degree 1–3, execution times uniform
// around c_mean with deviation ETD, per-class heterogeneity of ±25%, 5%
// (task, class) ineligibility, message sizes chosen for CCR = 0.1, and one
// E-T-E deadline per output task derived from the overall laxity ratio OLR.
#pragma once

#include <cstdint>

#include "dsslice/gen/generator_config.hpp"
#include "dsslice/gen/rng.hpp"
#include "dsslice/model/application.hpp"
#include "dsslice/model/platform.hpp"
#include "dsslice/model/resources.hpp"

namespace dsslice {

/// One generated experiment unit: the platform plus an application whose
/// per-class WCETs are consistent with that platform's classes.
struct Scenario {
  Platform platform;
  Application application;
};

/// Reusable draw-structure buffers for batched scenario generation — the
/// generator-side counterpart of sched/SchedulerWorkspace. One instance per
/// worker thread lets consecutive generate_scenario_into calls recycle the
/// DAG-layout temporaries (level sizes, capacity-filtered candidate pools,
/// per-task WCET snapshots) instead of reallocating them per scenario.
///
/// grow_events() follows the PR 3 contract: it counts every capacity growth
/// of a scratch-managed buffer, so tests can warm a scratch on a batch,
/// regenerate, and assert the counter did not move. Buffer reuse never
/// changes the RNG draw sequence — a scenario generated through a scratch
/// is bit-identical to one generated without (pinned by test).
class GeneratorScratch {
 public:
  std::uint64_t grow_events() const { return grow_events_; }

  /// vec.assign(count, value) with capacity-growth accounting.
  template <typename T>
  void fill(std::vector<T>& vec, std::size_t count, const T& value) {
    if (vec.capacity() < count) {
      ++grow_events_;
    }
    vec.assign(count, value);
  }

  /// Growth-accounted push_back for buffers filled incrementally.
  template <typename T>
  void push(std::vector<T>& vec, const T& value) {
    if (vec.size() == vec.capacity()) {
      ++grow_events_;
    }
    vec.push_back(value);
  }

  /// vec.resize(count) with capacity-growth accounting (task-slot reuse).
  template <typename T>
  void resize(std::vector<T>& vec, std::size_t count) {
    if (vec.capacity() < count) {
      ++grow_events_;
    }
    vec.resize(count);
  }

  /// Growth-accounted push_back of a moved-from slot (spare-pool shuffling).
  template <typename T>
  void push_move(std::vector<T>& vec, T&& value) {
    if (vec.size() == vec.capacity()) {
      ++grow_events_;
    }
    vec.push_back(std::move(value));
  }

  /// Resizes `tasks` to `count` task slots, parking surplus slots in
  /// `spare_tasks` (and refilling from it) instead of destroying them: task
  /// counts vary per scenario, and a destroyed slot would reallocate its
  /// wcet_by_class storage on the next larger draw.
  void resize_task_slots(std::size_t count) {
    while (tasks.size() > count) {
      push_move(spare_tasks, std::move(tasks.back()));
      tasks.pop_back();
    }
    while (tasks.size() < count && !spare_tasks.empty()) {
      push_move(tasks, std::move(spare_tasks.back()));
      spare_tasks.pop_back();
    }
    resize(tasks, count);
  }

  std::vector<std::size_t> level_sizes;   // tasks per DAG level
  std::vector<NodeId> level_start;        // first node id of each level
  std::vector<NodeId> with_capacity;      // spare-out-degree anchor pool
  std::vector<NodeId> candidates;         // successor-wiring pool
  std::vector<ProcessorClassId> populated;  // classes with processors
  std::vector<double> drawn_wcet;         // pre-ineligibility WCET snapshot
  std::vector<double> message_items;      // per-arc message draws, arc order

  // Deep storage recycled between generate_application_into calls: the
  // structure is drawn into `graph` (TaskGraph::reset keeps adjacency
  // capacity) and the task slots into `tasks` (per-task wcet_by_class
  // capacity survives), then Application::rebuild_swap trades them for the
  // target's previous storage. Inner adjacency growth is shape-dependent
  // and not counted by grow_events(); it vanishes once the largest graph of
  // a batch has been seen.
  TaskGraph graph;
  std::vector<Task> tasks;
  std::vector<Task> spare_tasks;

 private:
  std::uint64_t grow_events_ = 0;
};

/// Generates a random application for an existing platform. The E-T-E
/// deadline uses the average accumulated workload (mean WCET over eligible
/// classes, summed over tasks) scaled by the configured OLR.
///
/// `class_model` selects how per-class WCETs are synthesized:
/// kUniformFactors multiplies each task's base time by the platform class's
/// speed factor (default; preserves the paper's ETD=0 invariant), while
/// kUnrelated draws an independent ±class_deviation factor per (task, class).
Application generate_application(const WorkloadConfig& config,
                                 const Platform& platform, Xoshiro256& rng,
                                 ClassModel class_model =
                                     ClassModel::kUniformFactors,
                                 double class_deviation = 0.25,
                                 GeneratorScratch* scratch = nullptr);

/// In-place variant: rebuilds `app` via Application::rebuild_swap, recycling
/// the scratch's deep storage (graph adjacency, task slots) so repeated
/// calls on the same target perform almost no heap allocation. Draw-for-draw
/// identical to generate_application — storage reuse never perturbs the RNG
/// stream.
void generate_application_into(Application& app, const WorkloadConfig& config,
                               const Platform& platform, Xoshiro256& rng,
                               ClassModel class_model, double class_deviation,
                               GeneratorScratch* scratch);

/// Generates platform + application from a single seed (scenario `index` of
/// a batch uses derive_seed(config.base_seed, index)).
Scenario generate_scenario(const GeneratorConfig& config, std::uint64_t seed);

/// Batched-generation entry points: reuse the scratch buffers across calls
/// and skip the per-call config.validate() (the batch caller validates
/// once). Results are bit-identical to generate_scenario(config, seed) for
/// every seed — buffer reuse never perturbs the RNG stream.
Scenario generate_scenario_with(const GeneratorConfig& config,
                                std::uint64_t seed, GeneratorScratch* scratch);
void generate_scenario_into(const GeneratorConfig& config, std::uint64_t seed,
                            Scenario& out, GeneratorScratch* scratch);

/// Convenience: scenario `index` of the batch described by `config`.
Scenario generate_scenario_at(const GeneratorConfig& config,
                              std::size_t index);

/// Draws random shared-resource requirements for an application (§7.3
/// future-work experiments): `resource_count` exclusive resources, each
/// (task, resource) pair requiring with probability `probability`.
ResourceModel generate_resources(const Application& app,
                                 std::size_t resource_count,
                                 double probability, Xoshiro256& rng);

}  // namespace dsslice
