// Random heterogeneous platform generation (§5.1).
#pragma once

#include "dsslice/gen/generator_config.hpp"
#include "dsslice/gen/rng.hpp"
#include "dsslice/model/platform.hpp"

namespace dsslice {

/// Draws a platform per the paper's setup: the class count m_e is uniform in
/// [min_class_count, max_class_count]; every class gets a speed factor
/// s_e ~ U[1-h, 1+h] (stored in ProcessorClass::speed_factor and consumed by
/// the workload generator in ClassModel::kUniformFactors mode); each of the
/// m processors is assigned a uniformly random class; the interconnect is a
/// time-multiplexed shared bus.
Platform generate_platform(const PlatformConfig& config, Xoshiro256& rng);

}  // namespace dsslice
