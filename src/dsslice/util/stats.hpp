// Small statistics helpers used by the evaluation framework and benches.
#pragma once

#include <array>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

namespace dsslice {

/// Complete internal state of a RunningStats accumulator — exposed so a
/// checkpoint can persist an accumulator and restore it *bit-exactly*
/// (resume-after-interrupt must reproduce the uninterrupted aggregates to
/// the last bit, so lossy decimal round-trips are not an option; the sweep
/// checkpoint stores these doubles as raw bit patterns).
struct RunningStatsState {
  std::size_t n = 0;
  double mean = 0.0;
  double m2 = 0.0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
};

/// Streaming univariate accumulator (Welford's algorithm) — O(1) memory,
/// numerically stable mean/variance, suitable for millions of samples.
class RunningStats {
 public:
  void add(double x);
  /// Merge another accumulator into this one (parallel reduction support).
  void merge(const RunningStats& other);

  /// Snapshot of the full internal state (see RunningStatsState).
  RunningStatsState state() const;
  /// Reconstructs an accumulator from a snapshot; the result behaves
  /// bit-identically to the accumulator the snapshot was taken from.
  static RunningStats from_state(const RunningStatsState& state);

  std::size_t count() const { return n_; }
  bool empty() const { return n_ == 0; }
  double mean() const;
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }
  double sum() const { return sum_; }
  /// Half-width of the ~95% normal-approximation confidence interval.
  double ci95_halfwidth() const;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Batch helpers over a sample vector.
double mean_of(const std::vector<double>& xs);
double stddev_of(const std::vector<double>& xs);
/// Linear-interpolated percentile, p in [0, 100]. Sorts a copy.
double percentile_of(std::vector<double> xs, double p);

/// Fixed-footprint logarithmic histogram over non-negative integer samples
/// (built for nanosecond durations; used by the obs/ metrics registry).
/// Buckets follow a floor(log2) octave split with 4 sub-buckets per octave
/// (≤ 25% relative width), so add() is a handful of bit operations, merge()
/// is a vector add, and percentiles are deterministic regardless of the
/// order samples arrived in — exactly what a multi-threaded aggregation
/// needs to report stable p50/p95/p99.
class LogHistogram {
 public:
  static constexpr std::size_t kBucketCount = 256;

  void add(std::uint64_t x) {
    ++buckets_[bucket_of(x)];
    ++count_;
  }
  void merge(const LogHistogram& other);
  void clear();

  std::uint64_t count() const { return count_; }
  bool empty() const { return count_ == 0; }
  /// Linear-interpolated percentile estimate, p in [0, 100]. The result is
  /// exact to within the bucket's ≤ 25% relative width.
  double percentile(double p) const;

  /// Bucket index of a sample: x < 4 maps to bucket x, larger samples to
  /// octave · 4 + the two bits after the leading one.
  static std::size_t bucket_of(std::uint64_t x) {
    if (x < 4) {
      return static_cast<std::size_t>(x);
    }
    const int b = static_cast<int>(std::bit_width(x)) - 1;
    const auto sub = static_cast<std::size_t>((x >> (b - 2)) & 3);
    return static_cast<std::size_t>(b) * 4 + sub;
  }
  /// Inclusive lower / exclusive upper sample bound of a bucket.
  static double bucket_lower(std::size_t index);
  static double bucket_upper(std::size_t index);

 private:
  std::uint64_t count_ = 0;
  std::array<std::uint32_t, kBucketCount> buckets_{};
};

/// Fixed-bin linear histogram over a closed value range, with one underflow
/// and one overflow bin — the shape behind the sweep engine's laxity
/// distribution. Unlike LogHistogram it accepts negative samples (laxity
/// goes negative exactly when a window is infeasible, which is the
/// interesting tail). add() is a subtraction, a multiply and two clamps;
/// merge() is a vector add, so per-shard histograms fold deterministically
/// regardless of completion order.
class LinearHistogram {
 public:
  static constexpr std::size_t kBinCount = 64;

  /// Histogram over [lo, hi) split into kBinCount equal bins. Samples below
  /// lo land in underflow(), samples at or above hi in overflow().
  LinearHistogram(double lo, double hi);
  /// Default range for min-laxity distributions: [-200, 440) in time units
  /// (10-unit bins around the paper's c_mean = 20 workloads).
  LinearHistogram() : LinearHistogram(-200.0, 440.0) {}

  void add(double x);
  /// Merges a histogram with the same range (enforced).
  void merge(const LinearHistogram& other);
  void clear();

  double lo() const { return lo_; }
  double hi() const { return hi_; }
  std::uint64_t count() const { return count_; }
  bool empty() const { return count_ == 0; }
  std::uint64_t underflow() const { return underflow_; }
  std::uint64_t overflow() const { return overflow_; }
  std::uint64_t bin(std::size_t index) const;
  /// Inclusive lower edge of a bin.
  double bin_lower(std::size_t index) const;

 private:
  double lo_;
  double hi_;
  std::uint64_t count_ = 0;
  std::uint64_t underflow_ = 0;
  std::uint64_t overflow_ = 0;
  std::array<std::uint64_t, kBinCount> bins_{};

  friend struct LinearHistogramAccess;
};

/// Checkpoint-side backdoor: lets the sweep checkpoint restore a
/// histogram's raw counters without widening the public interface.
struct LinearHistogramAccess {
  static void restore(LinearHistogram& h, std::uint64_t underflow,
                      std::uint64_t overflow,
                      const std::array<std::uint64_t,
                                       LinearHistogram::kBinCount>& bins);
};

/// Success-ratio counter: successes over trials with a binomial CI.
class SuccessCounter {
 public:
  void add(bool success);
  void add_many(std::uint64_t successes, std::uint64_t trials);
  void merge(const SuccessCounter& other);

  std::uint64_t successes() const { return successes_; }
  std::uint64_t trials() const { return trials_; }
  /// Successes / trials; 0 when no trials were recorded.
  double ratio() const;
  /// Half-width of the Wald 95% binomial confidence interval.
  double ci95_halfwidth() const;

 private:
  std::uint64_t successes_ = 0;
  std::uint64_t trials_ = 0;
};

}  // namespace dsslice
