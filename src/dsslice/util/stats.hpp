// Small statistics helpers used by the evaluation framework and benches.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

namespace dsslice {

/// Streaming univariate accumulator (Welford's algorithm) — O(1) memory,
/// numerically stable mean/variance, suitable for millions of samples.
class RunningStats {
 public:
  void add(double x);
  /// Merge another accumulator into this one (parallel reduction support).
  void merge(const RunningStats& other);

  std::size_t count() const { return n_; }
  bool empty() const { return n_ == 0; }
  double mean() const;
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }
  double sum() const { return sum_; }
  /// Half-width of the ~95% normal-approximation confidence interval.
  double ci95_halfwidth() const;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Batch helpers over a sample vector.
double mean_of(const std::vector<double>& xs);
double stddev_of(const std::vector<double>& xs);
/// Linear-interpolated percentile, p in [0, 100]. Sorts a copy.
double percentile_of(std::vector<double> xs, double p);

/// Success-ratio counter: successes over trials with a binomial CI.
class SuccessCounter {
 public:
  void add(bool success);
  void add_many(std::uint64_t successes, std::uint64_t trials);
  void merge(const SuccessCounter& other);

  std::uint64_t successes() const { return successes_; }
  std::uint64_t trials() const { return trials_; }
  /// Successes / trials; 0 when no trials were recorded.
  double ratio() const;
  /// Half-width of the Wald 95% binomial confidence interval.
  double ci95_halfwidth() const;

 private:
  std::uint64_t successes_ = 0;
  std::uint64_t trials_ = 0;
};

}  // namespace dsslice
