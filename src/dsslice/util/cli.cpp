#include "dsslice/util/cli.hpp"

#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "dsslice/util/check.hpp"
#include "dsslice/util/string_util.hpp"

namespace dsslice {

CliParser::CliParser(std::string program, std::string description)
    : program_(std::move(program)), description_(std::move(description)) {}

void CliParser::add_flag(const std::string& name,
                         const std::string& default_value,
                         const std::string& help) {
  DSSLICE_REQUIRE(!flags_.contains(name), "duplicate flag: " + name);
  flags_[name] = Flag{default_value, help, /*is_bool=*/false, std::nullopt};
  order_.push_back(name);
}

void CliParser::add_bool_flag(const std::string& name,
                              const std::string& help) {
  DSSLICE_REQUIRE(!flags_.contains(name), "duplicate flag: " + name);
  flags_[name] = Flag{"false", help, /*is_bool=*/true, std::nullopt};
  order_.push_back(name);
}

bool CliParser::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::fputs(help_text().c_str(), stdout);
      return false;
    }
    if (arg.rfind("--", 0) != 0) {
      std::fprintf(stderr, "%s: unexpected positional argument '%s'\n",
                   program_.c_str(), arg.c_str());
      return false;
    }
    std::string name = arg.substr(2);
    std::optional<std::string> value;
    if (const auto eq = name.find('='); eq != std::string::npos) {
      value = name.substr(eq + 1);
      name = name.substr(0, eq);
    }
    const auto it = flags_.find(name);
    if (it == flags_.end()) {
      std::fprintf(stderr, "%s: unknown flag --%s (see --help)\n",
                   program_.c_str(), name.c_str());
      return false;
    }
    Flag& flag = it->second;
    if (flag.is_bool && !value) {
      flag.value = "true";
      continue;
    }
    if (!value) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s: flag --%s requires a value\n",
                     program_.c_str(), name.c_str());
        return false;
      }
      value = argv[++i];
    }
    flag.value = std::move(*value);
  }
  return true;
}

const CliParser::Flag& CliParser::find(const std::string& name) const {
  const auto it = flags_.find(name);
  DSSLICE_REQUIRE(it != flags_.end(), "unregistered flag: " + name);
  return it->second;
}

std::string CliParser::get_string(const std::string& name) const {
  const Flag& flag = find(name);
  return flag.value.value_or(flag.default_value);
}

std::int64_t CliParser::get_int(const std::string& name) const {
  const std::string s = get_string(name);
  char* end = nullptr;
  const long long v = std::strtoll(s.c_str(), &end, 10);
  DSSLICE_REQUIRE(end != nullptr && *end == '\0' && !s.empty(),
                  "flag --" + name + " is not an integer: " + s);
  return static_cast<std::int64_t>(v);
}

double CliParser::get_double(const std::string& name) const {
  const std::string s = get_string(name);
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  DSSLICE_REQUIRE(end != nullptr && *end == '\0' && !s.empty(),
                  "flag --" + name + " is not a number: " + s);
  return v;
}

bool CliParser::get_bool(const std::string& name) const {
  const std::string s = get_string(name);
  return s == "true" || s == "1" || s == "yes";
}

bool CliParser::was_set(const std::string& name) const {
  return find(name).value.has_value();
}

std::string CliParser::help_text() const {
  std::ostringstream os;
  os << program_ << " — " << description_ << "\n\nFlags:\n";
  for (const std::string& name : order_) {
    const Flag& flag = flags_.at(name);
    os << "  " << pad_right("--" + name, 24) << flag.help << " (default: "
       << flag.default_value << ")\n";
  }
  os << "  " << pad_right("--help", 24) << "show this message\n";
  return os.str();
}

}  // namespace dsslice
