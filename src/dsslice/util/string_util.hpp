// String formatting helpers shared by the report module, benches and tests.
#pragma once

#include <string>
#include <vector>

namespace dsslice {

/// Formats a double with `digits` decimal places (fixed notation).
std::string format_fixed(double value, int digits);

/// Formats a ratio in [0,1] as a percentage string, e.g. "42.3%".
std::string format_percent(double ratio, int digits = 1);

/// Joins the given parts with a separator.
std::string join(const std::vector<std::string>& parts,
                 const std::string& sep);

/// Left/right-pads `s` with spaces to at least `width` characters.
std::string pad_left(const std::string& s, std::size_t width);
std::string pad_right(const std::string& s, std::size_t width);

/// Splits on a single-character delimiter; keeps empty fields.
std::vector<std::string> split(const std::string& s, char delim);

/// Trims ASCII whitespace from both ends.
std::string trim(const std::string& s);

}  // namespace dsslice
