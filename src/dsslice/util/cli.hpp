// Minimal command-line flag parser for the example and bench binaries.
//
// Supports `--name value`, `--name=value` and boolean `--flag` forms plus
// automatic `--help` text. Deliberately tiny: the binaries only need a
// handful of numeric knobs (graph count, processor count, seeds, ...).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace dsslice {

class CliParser {
 public:
  CliParser(std::string program, std::string description);

  /// Registers a flag with a default value (shown in --help).
  void add_flag(const std::string& name, const std::string& default_value,
                const std::string& help);
  void add_bool_flag(const std::string& name, const std::string& help);

  /// Parses argv. Returns false if --help was requested (help text printed)
  /// or an unknown flag was seen (error printed to stderr).
  bool parse(int argc, const char* const* argv);

  std::string get_string(const std::string& name) const;
  std::int64_t get_int(const std::string& name) const;
  double get_double(const std::string& name) const;
  bool get_bool(const std::string& name) const;
  bool was_set(const std::string& name) const;

  std::string help_text() const;

 private:
  struct Flag {
    std::string default_value;
    std::string help;
    bool is_bool = false;
    std::optional<std::string> value;
  };

  const Flag& find(const std::string& name) const;

  std::string program_;
  std::string description_;
  std::map<std::string, Flag> flags_;
  std::vector<std::string> order_;
};

}  // namespace dsslice
