#include "dsslice/util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "dsslice/util/check.hpp"

namespace dsslice {

void RunningStats::add(double x) {
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) {
    return;
  }
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

RunningStatsState RunningStats::state() const {
  return RunningStatsState{n_, mean_, m2_, sum_, min_, max_};
}

RunningStats RunningStats::from_state(const RunningStatsState& state) {
  RunningStats s;
  s.n_ = state.n;
  s.mean_ = state.mean;
  s.m2_ = state.m2;
  s.sum_ = state.sum;
  s.min_ = state.min;
  s.max_ = state.max;
  return s;
}

double RunningStats::mean() const { return n_ == 0 ? 0.0 : mean_; }

double RunningStats::variance() const {
  return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::ci95_halfwidth() const {
  if (n_ < 2) {
    return 0.0;
  }
  return 1.96 * stddev() / std::sqrt(static_cast<double>(n_));
}

double mean_of(const std::vector<double>& xs) {
  RunningStats s;
  for (double x : xs) {
    s.add(x);
  }
  return s.mean();
}

double stddev_of(const std::vector<double>& xs) {
  RunningStats s;
  for (double x : xs) {
    s.add(x);
  }
  return s.stddev();
}

double percentile_of(std::vector<double> xs, double p) {
  DSSLICE_REQUIRE(!xs.empty(), "percentile of empty sample");
  DSSLICE_REQUIRE(p >= 0.0 && p <= 100.0, "percentile out of range");
  std::sort(xs.begin(), xs.end());
  if (xs.size() == 1) {
    return xs.front();
  }
  const double rank = (p / 100.0) * static_cast<double>(xs.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, xs.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return xs[lo] + frac * (xs[hi] - xs[lo]);
}

void LogHistogram::merge(const LogHistogram& other) {
  for (std::size_t k = 0; k < kBucketCount; ++k) {
    buckets_[k] += other.buckets_[k];
  }
  count_ += other.count_;
}

void LogHistogram::clear() {
  buckets_.fill(0);
  count_ = 0;
}

double LogHistogram::bucket_lower(std::size_t index) {
  DSSLICE_REQUIRE(index < kBucketCount, "histogram bucket out of range");
  if (index < 8) {  // buckets 0–3 hold exact values; 4–7 are unreachable
    return static_cast<double>(index);
  }
  const std::size_t b = index / 4;
  const std::size_t sub = index % 4;
  return std::ldexp(1.0 + static_cast<double>(sub) / 4.0, static_cast<int>(b));
}

double LogHistogram::bucket_upper(std::size_t index) {
  DSSLICE_REQUIRE(index < kBucketCount, "histogram bucket out of range");
  if (index < 4) {
    return static_cast<double>(index + 1);
  }
  const std::size_t b = index / 4;
  const std::size_t sub = index % 4;
  return sub == 3
             ? std::ldexp(1.0, static_cast<int>(b) + 1)
             : std::ldexp(1.0 + static_cast<double>(sub + 1) / 4.0,
                          static_cast<int>(b));
}

double LogHistogram::percentile(double p) const {
  DSSLICE_REQUIRE(p >= 0.0 && p <= 100.0, "percentile out of range");
  if (count_ == 0) {
    return 0.0;
  }
  const double target =
      std::max(1.0, std::ceil((p / 100.0) * static_cast<double>(count_)));
  std::uint64_t cumulative = 0;
  for (std::size_t k = 0; k < kBucketCount; ++k) {
    if (buckets_[k] == 0) {
      continue;
    }
    const std::uint64_t next = cumulative + buckets_[k];
    if (static_cast<double>(next) >= target) {
      const double lo = bucket_lower(k);
      const double hi = bucket_upper(k);
      const double frac = (target - static_cast<double>(cumulative)) /
                          static_cast<double>(buckets_[k]);
      return lo + frac * (hi - lo);
    }
    cumulative = next;
  }
  return bucket_upper(kBucketCount - 1);
}

LinearHistogram::LinearHistogram(double lo, double hi) : lo_(lo), hi_(hi) {
  DSSLICE_REQUIRE(lo < hi, "histogram range must be non-empty");
}

void LinearHistogram::add(double x) {
  ++count_;
  if (x < lo_) {
    ++underflow_;
    return;
  }
  if (x >= hi_) {
    ++overflow_;
    return;
  }
  const auto index = static_cast<std::size_t>(
      (x - lo_) / (hi_ - lo_) * static_cast<double>(kBinCount));
  ++bins_[std::min(index, kBinCount - 1)];
}

void LinearHistogram::merge(const LinearHistogram& other) {
  DSSLICE_REQUIRE(lo_ == other.lo_ && hi_ == other.hi_,
                  "merging histograms with different ranges");
  count_ += other.count_;
  underflow_ += other.underflow_;
  overflow_ += other.overflow_;
  for (std::size_t k = 0; k < kBinCount; ++k) {
    bins_[k] += other.bins_[k];
  }
}

void LinearHistogram::clear() {
  count_ = 0;
  underflow_ = 0;
  overflow_ = 0;
  bins_.fill(0);
}

std::uint64_t LinearHistogram::bin(std::size_t index) const {
  DSSLICE_REQUIRE(index < kBinCount, "histogram bin out of range");
  return bins_[index];
}

double LinearHistogram::bin_lower(std::size_t index) const {
  DSSLICE_REQUIRE(index < kBinCount, "histogram bin out of range");
  return lo_ + (hi_ - lo_) * static_cast<double>(index) /
                   static_cast<double>(kBinCount);
}

void LinearHistogramAccess::restore(
    LinearHistogram& h, std::uint64_t underflow, std::uint64_t overflow,
    const std::array<std::uint64_t, LinearHistogram::kBinCount>& bins) {
  h.underflow_ = underflow;
  h.overflow_ = overflow;
  h.bins_ = bins;
  h.count_ = underflow + overflow;
  for (const std::uint64_t b : bins) {
    h.count_ += b;
  }
}

void SuccessCounter::add(bool success) {
  ++trials_;
  if (success) {
    ++successes_;
  }
}

void SuccessCounter::add_many(std::uint64_t successes, std::uint64_t trials) {
  DSSLICE_REQUIRE(successes <= trials, "more successes than trials");
  successes_ += successes;
  trials_ += trials;
}

void SuccessCounter::merge(const SuccessCounter& other) {
  successes_ += other.successes_;
  trials_ += other.trials_;
}

double SuccessCounter::ratio() const {
  return trials_ == 0
             ? 0.0
             : static_cast<double>(successes_) / static_cast<double>(trials_);
}

double SuccessCounter::ci95_halfwidth() const {
  if (trials_ == 0) {
    return 0.0;
  }
  const double p = ratio();
  const double n = static_cast<double>(trials_);
  return 1.96 * std::sqrt(std::max(p * (1.0 - p), 0.0) / n);
}

}  // namespace dsslice
