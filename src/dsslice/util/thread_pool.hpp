// A small fixed-size thread pool used to run simulation batches in parallel.
//
// The evaluation framework partitions 1024-graph batches across worker
// threads; per-graph results are deterministic (each graph carries its own
// seed), so parallel and serial runs produce identical statistics.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace dsslice {

class ThreadPool {
 public:
  /// Creates `threads` workers; 0 means std::thread::hardware_concurrency()
  /// (with a floor of one worker).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueues a task; it runs on some worker at an unspecified time. If the
  /// task throws, the exception is captured (first one wins) and rethrown
  /// from the next wait_idle() — it never terminates the worker.
  void submit(std::function<void()> task);

  /// Blocks until every submitted task has completed. The pool stays usable.
  /// Rethrows the first exception thrown by a task submitted since the last
  /// wait_idle(), after the queue has fully drained (no deadlock: remaining
  /// tasks still run, their exceptions are discarded).
  void wait_idle();

 private:
  void worker_loop();

  std::vector<std::jthread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_task_;
  std::condition_variable cv_idle_;
  std::size_t in_flight_ = 0;
  bool stopping_ = false;
  std::exception_ptr pending_error_;
};

/// Runs body(i) for i in [0, count) across the pool, blocking until done.
/// Work is distributed by an atomic index so uneven item costs balance.
/// Exceptions thrown by `body` propagate to the caller (first one wins).
/// Delegates to the chunked overload below with a grain of one.
void parallel_for(ThreadPool& pool, std::size_t count,
                  const std::function<void(std::size_t)>& body);

/// Chunked variant: covers [0, count) with half-open ranges of up to `grain`
/// consecutive indices and runs body(begin, end) for each, distributed
/// dynamically across the pool (an atomic chunk counter balances uneven
/// costs). Larger grains amortize the per-task dispatch and allow the body
/// to reuse scratch state across the indices of a chunk; grain 1 degenerates
/// to the per-index overload. Exceptions propagate (first one wins; a chunk
/// that throws is not resumed, but other chunks already running complete).
void parallel_for(ThreadPool& pool, std::size_t count, std::size_t grain,
                  const std::function<void(std::size_t, std::size_t)>& body);

/// Convenience overload using a process-wide shared pool.
void parallel_for(std::size_t count,
                  const std::function<void(std::size_t)>& body);

/// Lazily-constructed process-wide pool sized to hardware concurrency.
ThreadPool& global_pool();

}  // namespace dsslice
