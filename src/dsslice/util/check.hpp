// Lightweight precondition / invariant checking used throughout dsslice.
//
// The library is a simulation substrate: a violated invariant means the
// simulation result would be meaningless, so checks throw rather than abort,
// letting test harnesses assert on failures and batch runners skip a bad
// configuration without taking the whole process down.
#pragma once

#include <stdexcept>
#include <string>

namespace dsslice {

/// Thrown when a DSSLICE_CHECK / DSSLICE_REQUIRE condition fails.
class CheckError : public std::logic_error {
 public:
  explicit CheckError(const std::string& what) : std::logic_error(what) {}
};

/// Thrown for invalid user-supplied configuration (bad parameter ranges,
/// malformed graphs, etc.) as opposed to internal logic errors.
class ConfigError : public std::invalid_argument {
 public:
  explicit ConfigError(const std::string& what)
      : std::invalid_argument(what) {}
};

namespace detail {
[[noreturn]] void check_failed(const char* kind, const char* expr,
                               const char* file, int line,
                               const std::string& message);
}  // namespace detail

}  // namespace dsslice

/// Internal-invariant check: failure indicates a bug inside dsslice.
#define DSSLICE_CHECK(expr, ...)                                        \
  do {                                                                  \
    if (!(expr)) {                                                      \
      ::dsslice::detail::check_failed("invariant", #expr, __FILE__,     \
                                      __LINE__, std::string(__VA_ARGS__)); \
    }                                                                   \
  } while (false)

/// Precondition check on user input: failure indicates caller error.
#define DSSLICE_REQUIRE(expr, ...)                                      \
  do {                                                                  \
    if (!(expr)) {                                                      \
      ::dsslice::detail::check_failed("precondition", #expr, __FILE__,  \
                                      __LINE__, std::string(__VA_ARGS__)); \
    }                                                                   \
  } while (false)
