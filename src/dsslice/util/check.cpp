#include "dsslice/util/check.hpp"

#include <sstream>

namespace dsslice::detail {

void check_failed(const char* kind, const char* expr, const char* file,
                  int line, const std::string& message) {
  std::ostringstream os;
  os << kind << " failed: (" << expr << ") at " << file << ":" << line;
  if (!message.empty()) {
    os << " — " << message;
  }
  if (std::string(kind) == "precondition") {
    throw ConfigError(os.str());
  }
  throw CheckError(os.str());
}

}  // namespace dsslice::detail
