#include "dsslice/util/string_util.hpp"

#include <cctype>
#include <sstream>

namespace dsslice {

std::string format_fixed(double value, int digits) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(digits);
  os << value;
  return os.str();
}

std::string format_percent(double ratio, int digits) {
  return format_fixed(ratio * 100.0, digits) + "%";
}

std::string join(const std::vector<std::string>& parts,
                 const std::string& sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) {
      out += sep;
    }
    out += parts[i];
  }
  return out;
}

std::string pad_left(const std::string& s, std::size_t width) {
  return s.size() >= width ? s : std::string(width - s.size(), ' ') + s;
}

std::string pad_right(const std::string& s, std::size_t width) {
  return s.size() >= width ? s : s + std::string(width - s.size(), ' ');
}

std::vector<std::string> split(const std::string& s, char delim) {
  std::vector<std::string> out;
  std::string field;
  std::istringstream is(s);
  while (std::getline(is, field, delim)) {
    out.push_back(field);
  }
  if (!s.empty() && s.back() == delim) {
    out.emplace_back();
  }
  if (s.empty()) {
    out.emplace_back();
  }
  return out;
}

std::string trim(const std::string& s) {
  std::size_t begin = 0;
  std::size_t end = s.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(s[begin]))) {
    ++begin;
  }
  while (end > begin && std::isspace(static_cast<unsigned char>(s[end - 1]))) {
    --end;
  }
  return s.substr(begin, end - begin);
}

}  // namespace dsslice
