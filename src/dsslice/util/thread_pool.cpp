#include "dsslice/util/thread_pool.hpp"

#include <atomic>
#include <exception>
#include <utility>

#include "dsslice/util/check.hpp"

namespace dsslice {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  cv_task_.notify_all();
  // jthread joins on destruction.
}

void ThreadPool::submit(std::function<void()> task) {
  DSSLICE_REQUIRE(task != nullptr, "null task submitted to ThreadPool");
  {
    std::lock_guard lock(mutex_);
    DSSLICE_CHECK(!stopping_, "submit after shutdown");
    queue_.push(std::move(task));
  }
  cv_task_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mutex_);
  cv_idle_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
  if (pending_error_) {
    std::exception_ptr error = std::exchange(pending_error_, nullptr);
    lock.unlock();
    std::rethrow_exception(error);
  }
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_task_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (stopping_ && queue_.empty()) {
        return;
      }
      task = std::move(queue_.front());
      queue_.pop();
      ++in_flight_;
    }
    std::exception_ptr error;
    try {
      task();
    } catch (...) {
      error = std::current_exception();
    }
    {
      std::lock_guard lock(mutex_);
      --in_flight_;
      if (error && !pending_error_) {
        pending_error_ = std::move(error);
      }
    }
    cv_idle_.notify_all();
  }
}

void parallel_for(ThreadPool& pool, std::size_t count,
                  const std::function<void(std::size_t)>& body) {
  parallel_for(pool, count, 1,
               [&body](std::size_t begin, std::size_t end) {
                 for (std::size_t i = begin; i < end; ++i) {
                   body(i);
                 }
               });
}

void parallel_for(ThreadPool& pool, std::size_t count, std::size_t grain,
                  const std::function<void(std::size_t, std::size_t)>& body) {
  if (count == 0) {
    return;
  }
  DSSLICE_REQUIRE(grain >= 1, "parallel_for grain must be at least 1");
  const std::size_t chunks = (count + grain - 1) / grain;
  // For tiny batches, skip the pool entirely: determinism is unaffected and
  // the dispatch overhead would dominate.
  if (chunks == 1 || pool.size() == 1) {
    for (std::size_t begin = 0; begin < count; begin += grain) {
      body(begin, std::min(count, begin + grain));
    }
    return;
  }

  std::atomic<std::size_t> next{0};
  std::atomic<bool> failed{false};
  std::exception_ptr first_error;
  std::mutex error_mutex;

  const std::size_t lanes = std::min(pool.size(), chunks);
  std::atomic<std::size_t> done_lanes{0};
  std::mutex done_mutex;
  std::condition_variable done_cv;

  for (std::size_t lane = 0; lane < lanes; ++lane) {
    pool.submit([&] {
      for (;;) {
        const std::size_t k = next.fetch_add(1, std::memory_order_relaxed);
        if (k >= chunks || failed.load(std::memory_order_relaxed)) {
          break;
        }
        const std::size_t begin = k * grain;
        const std::size_t end = std::min(count, begin + grain);
        try {
          body(begin, end);
        } catch (...) {
          std::lock_guard lock(error_mutex);
          if (!failed.exchange(true)) {
            first_error = std::current_exception();
          }
        }
      }
      if (done_lanes.fetch_add(1) + 1 == lanes) {
        std::lock_guard lock(done_mutex);
        done_cv.notify_all();
      }
    });
  }

  std::unique_lock lock(done_mutex);
  done_cv.wait(lock, [&] { return done_lanes.load() == lanes; });
  if (first_error) {
    std::rethrow_exception(first_error);
  }
}

void parallel_for(std::size_t count,
                  const std::function<void(std::size_t)>& body) {
  parallel_for(global_pool(), count, body);
}

ThreadPool& global_pool() {
  static ThreadPool pool;
  return pool;
}

}  // namespace dsslice
