// Streaming observability sink: periodic, non-quiescent export of the
// per-thread recorders of obs/trace.hpp while the workload is still
// running. Complements the snapshot exporters (obs/registry.hpp +
// obs/export.hpp), which require quiescence.
//
// A StreamSink runs a background flusher thread that every `interval_ms`:
//  1. drains each recorder ring behind its published write cursor
//     (release/acquire on the write index — recording threads never block,
//     never take a lock, and record bit-identical results whether or not a
//     sink is attached);
//  2. appends the drained spans to an append-only Chrome-trace chunk file
//     that Perfetto can load mid-run (tools/trace_check --streaming
//     validates the truncated form);
//  3. folds the accumulator tables into a cumulative view and appends the
//     *changes* to a JSONL metrics-delta stream — one `{"type":"delta",...}`
//     line per changed metric carrying both the delta since the previous
//     tick and the authoritative cumulative value, terminated by a
//     `{"type":"tick","seq":N,...}` line;
//  4. rewrites a single-JSON-object heartbeat status file atomically
//     (tmp+rename, the sweep-checkpoint discipline) and, under
//     `heartbeat_stderr`, renders a one-line live view (scenarios/s, shard
//     wave, checkpoint age, ETA, success ratio — fed by the
//     `sweep.progress.*` gauges of sweep_engine.cpp).
//
// Reconciliation contract: stop() performs a final drain; once recording
// is disabled before stop() (the obs::ObsCli::finish ordering), the final
// cumulative values in the delta stream equal a quiescent
// metrics_snapshot() bit-for-bit (numbers are serialized round-trip-exact;
// pinned by tests/test_obs_stream.cpp and checked in CI by
// tools/obs_tail --check --against).
//
// Rules: one StreamSink at a time (start() throws otherwise), and do not
// call obs::reset() or re-arm recording while a sink is active — the
// cumulative view assumes monotone accumulators.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

namespace dsslice::obs {

/// Output selection for a StreamSink. Empty paths disable that output.
struct StreamOptions {
  /// Append-only Chrome-trace chunk file ("[" + one event per line, each
  /// with a trailing comma; closed into a strict JSON array by stop()).
  std::string trace_chunk_path;
  /// JSONL metrics-delta stream (delta/tick records, see above).
  std::string metrics_delta_path;
  /// Heartbeat status file, atomically rewritten every tick.
  std::string status_path;
  /// Flush period. Clamped to >= 1.
  std::uint32_t interval_ms = 500;
  /// Render the one-line heartbeat to stderr every tick (--live).
  bool heartbeat_stderr = false;
};

/// Lifetime totals of a sink, for driver summaries and tests.
struct StreamStats {
  std::uint64_t ticks = 0;           ///< flusher passes (incl. final)
  std::uint64_t spans_streamed = 0;  ///< ring entries written to the chunk
  std::uint64_t spans_dropped = 0;   ///< ring entries lost to wraparound
                                     ///< before a drain reached them
  std::uint64_t delta_records = 0;   ///< metric delta lines written
};

class StreamSink {
 public:
  explicit StreamSink(StreamOptions options);
  /// Calls stop() if still active.
  ~StreamSink();

  StreamSink(const StreamSink&) = delete;
  StreamSink& operator=(const StreamSink&) = delete;

  /// Opens the outputs and launches the flusher thread. Throws ConfigError
  /// when a file cannot be opened or another sink is already attached.
  void start();

  /// Stops the flusher, performs the final drain (exact reconciliation
  /// when recorders are quiescent by then), closes the chunk file into a
  /// strict JSON array and releases the sink attachment. Idempotent.
  void stop();

  /// One synchronous flush, outside the periodic schedule (tests, and
  /// drivers that want a tick at a phase boundary).
  void tick_now();

  bool active() const;
  StreamStats stats() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace dsslice::obs
