#include "dsslice/obs/session.hpp"

#include <cstdio>

#include "dsslice/obs/export.hpp"
#include "dsslice/obs/registry.hpp"
#include "dsslice/obs/trace.hpp"
#include "dsslice/report/csv.hpp"

namespace dsslice::obs {

void ObsCli::register_flags(CliParser& cli) {
  cli.add_flag("trace", "",
               "write a Chrome trace_event JSON (Perfetto-loadable) here");
  cli.add_flag("metrics", "", "write JSONL metric aggregates here");
  cli.add_bool_flag("obs-summary", "print a span/counter summary table");
  cli.add_flag("trace-capacity", "8192",
               "span ring capacity per thread (older spans drop first)");
  cli.add_flag("trace-stream", "",
               "append Chrome-trace chunks here while running "
               "(Perfetto-loadable mid-run)");
  cli.add_flag("metrics-stream", "",
               "append JSONL metric deltas here while running");
  cli.add_flag("status-file", "",
               "atomically rewrite a one-object JSON heartbeat here every "
               "stream interval");
  cli.add_flag("stream-interval-ms", "500",
               "streaming flush period in milliseconds");
  cli.add_bool_flag("live",
                    "render a one-line heartbeat to stderr every stream "
                    "interval");
}

ObsCli::ObsCli(const CliParser& cli)
    : trace_path_(cli.get_string("trace")),
      metrics_path_(cli.get_string("metrics")),
      summary_(cli.get_bool("obs-summary")) {
  StreamOptions stream;
  stream.trace_chunk_path = cli.get_string("trace-stream");
  stream.metrics_delta_path = cli.get_string("metrics-stream");
  stream.status_path = cli.get_string("status-file");
  stream.interval_ms =
      static_cast<std::uint32_t>(cli.get_int("stream-interval-ms"));
  stream.heartbeat_stderr = cli.get_bool("live");
  const bool streaming_requested = !stream.trace_chunk_path.empty() ||
                                   !stream.metrics_delta_path.empty() ||
                                   !stream.status_path.empty() ||
                                   stream.heartbeat_stderr;

  active_ = !trace_path_.empty() || !metrics_path_.empty() || summary_ ||
            streaming_requested;
  if (active_) {
    set_ring_capacity(static_cast<std::size_t>(cli.get_int("trace-capacity")));
    reset();
    set_enabled(true);
#if !DSSLICE_OBS_ENABLED
    std::fprintf(stderr,
                 "warning: observability output requested but the build "
                 "compiled it out (DSSLICE_OBS=OFF)\n");
#endif
  }
  if (streaming_requested) {
    sink_ = std::make_unique<StreamSink>(stream);
    sink_->start();
  }
}

ObsCli::~ObsCli() {
  if (sink_ != nullptr) {
    sink_->stop();
  }
}

bool ObsCli::finish() {
  if (!active_ || finished_) {
    return true;
  }
  finished_ = true;
  set_enabled(false);
  if (sink_ != nullptr) {
    // Recording is off, so this final drain is quiescent: the stream's
    // last cumulative values equal the snapshots exported below.
    sink_->stop();
    const StreamStats stats = sink_->stats();
    std::printf("stream: %llu spans (%llu dropped), %llu metric deltas, "
                "%llu ticks\n",
                static_cast<unsigned long long>(stats.spans_streamed),
                static_cast<unsigned long long>(stats.spans_dropped),
                static_cast<unsigned long long>(stats.delta_records),
                static_cast<unsigned long long>(stats.ticks));
  }
  bool ok = true;
  if (!trace_path_.empty()) {
    const TraceSnapshot trace = trace_snapshot();
    if (write_text_file(trace_path_, to_chrome_trace_json(trace))) {
      std::printf("trace written to %s (%zu spans", trace_path_.c_str(),
                  trace.spans.size());
      if (trace.dropped > 0) {
        std::printf(", %llu dropped by ring wraparound",
                    static_cast<unsigned long long>(trace.dropped));
      }
      std::printf(")\n");
    } else {
      std::fprintf(stderr, "warning: could not write %s\n",
                   trace_path_.c_str());
      ok = false;
    }
  }
  const MetricsSnapshot metrics = metrics_snapshot();
  if (!metrics_path_.empty()) {
    if (write_text_file(metrics_path_, to_metrics_jsonl(metrics))) {
      std::printf("metrics written to %s\n", metrics_path_.c_str());
    } else {
      std::fprintf(stderr, "warning: could not write %s\n",
                   metrics_path_.c_str());
      ok = false;
    }
  }
  if (summary_) {
    std::fputs(to_summary_text(metrics).c_str(), stdout);
  }
  return ok;
}

}  // namespace dsslice::obs
