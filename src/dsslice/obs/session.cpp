#include "dsslice/obs/session.hpp"

#include <cstdio>

#include "dsslice/obs/export.hpp"
#include "dsslice/obs/registry.hpp"
#include "dsslice/obs/trace.hpp"
#include "dsslice/report/csv.hpp"

namespace dsslice::obs {

void ObsCli::register_flags(CliParser& cli) {
  cli.add_flag("trace", "",
               "write a Chrome trace_event JSON (Perfetto-loadable) here");
  cli.add_flag("metrics", "", "write JSONL metric aggregates here");
  cli.add_bool_flag("obs-summary", "print a span/counter summary table");
  cli.add_flag("trace-capacity", "8192",
               "span ring capacity per thread (older spans drop first)");
}

ObsCli::ObsCli(const CliParser& cli)
    : trace_path_(cli.get_string("trace")),
      metrics_path_(cli.get_string("metrics")),
      summary_(cli.get_bool("obs-summary")) {
  active_ = !trace_path_.empty() || !metrics_path_.empty() || summary_;
  if (active_) {
    set_ring_capacity(static_cast<std::size_t>(cli.get_int("trace-capacity")));
    reset();
    set_enabled(true);
#if !DSSLICE_OBS_ENABLED
    std::fprintf(stderr,
                 "warning: observability output requested but the build "
                 "compiled it out (DSSLICE_OBS=OFF)\n");
#endif
  }
}

bool ObsCli::finish() {
  if (!active_ || finished_) {
    return true;
  }
  finished_ = true;
  set_enabled(false);
  bool ok = true;
  if (!trace_path_.empty()) {
    const TraceSnapshot trace = trace_snapshot();
    if (write_text_file(trace_path_, to_chrome_trace_json(trace))) {
      std::printf("trace written to %s (%zu spans", trace_path_.c_str(),
                  trace.spans.size());
      if (trace.dropped > 0) {
        std::printf(", %llu dropped by ring wraparound",
                    static_cast<unsigned long long>(trace.dropped));
      }
      std::printf(")\n");
    } else {
      std::fprintf(stderr, "warning: could not write %s\n",
                   trace_path_.c_str());
      ok = false;
    }
  }
  const MetricsSnapshot metrics = metrics_snapshot();
  if (!metrics_path_.empty()) {
    if (write_text_file(metrics_path_, to_metrics_jsonl(metrics))) {
      std::printf("metrics written to %s\n", metrics_path_.c_str());
    } else {
      std::fprintf(stderr, "warning: could not write %s\n",
                   metrics_path_.c_str());
      ok = false;
    }
  }
  if (summary_) {
    std::fputs(to_summary_text(metrics).c_str(), stdout);
  }
  return ok;
}

}  // namespace dsslice::obs
