// Exporters for observability snapshots:
//  * Chrome trace_event JSON — load the file in Perfetto (ui.perfetto.dev)
//    or chrome://tracing for a per-thread timeline;
//  * JSONL metric dumps — one self-describing JSON object per line, easy to
//    grep / jq / pandas;
//  * plain-text summary — aligned table for terminal output.
// Formats are documented in docs/OBSERVABILITY.md.
#pragma once

#include <string>

#include "dsslice/obs/registry.hpp"
#include "dsslice/report/table.hpp"

namespace dsslice::obs {

/// Serializes a trace snapshot as Chrome trace_event JSON ("X" complete
/// events, timestamps in microseconds, one row per recorder thread).
std::string to_chrome_trace_json(const TraceSnapshot& trace);

/// Serializes a metrics snapshot as JSONL: one `{"type":"span"|"counter"|
/// "gauge"|"meta",...}` object per line, sorted by name within type.
std::string to_metrics_jsonl(const MetricsSnapshot& metrics);

/// Span statistics as an aligned table (count, total ms, share of summed
/// span time, mean/p50/p95/p99/max in µs), sorted by total time descending.
Table span_summary_table(const MetricsSnapshot& metrics);

/// Counter and gauge values as an aligned table, sorted by name.
Table counter_summary_table(const MetricsSnapshot& metrics);

/// Complete human-readable summary (both tables plus drop/thread footer).
std::string to_summary_text(const MetricsSnapshot& metrics);

/// Escapes a string for embedding in a JSON string literal (quotes,
/// backslashes, control characters).
std::string json_escape(const std::string& text);

}  // namespace dsslice::obs
