#include "dsslice/obs/registry.hpp"

#include <algorithm>
#include <mutex>
#include <utility>

#include "dsslice/obs/internal.hpp"

namespace dsslice::obs {

namespace detail {

Registry& Registry::instance() {
  // Deliberately leaked but permanently reachable through this static
  // pointer: worker-thread exit hooks may run during static destruction,
  // and LeakSanitizer ignores reachable allocations.
  static Registry* const registry = new Registry();
  return *registry;
}

ThreadBuffer* Registry::create_buffer() {
  auto* buffer = new ThreadBuffer(ring_capacity());
  count_allocation();
  const std::lock_guard<std::mutex> lock(mu_);
  buffer->tid = next_tid_++;
  live_.push_back(buffer);
  return buffer;
}

void Registry::retire(ThreadBuffer* buffer) {
  const std::lock_guard<std::mutex> lock(mu_);
  if (stream_hook_) {
    stream_hook_(*buffer);  // drain the unconsumed ring tail into the sink
  }
  live_.erase(std::remove(live_.begin(), live_.end(), buffer), live_.end());
  for (const Accum& a : buffer->accums) {
    if (a.name.load(std::memory_order_acquire) != nullptr) {
      const AccumData data = a.data(/*include_hist=*/true);
      AccumData& merged = retired_accums_[data.name];
      if (merged.name == nullptr) {  // first retirement under this name
        merged.name = data.name;
        merged.kind = data.kind;
      }
      merged.merge(data);
    }
  }
  const std::uint64_t written =
      buffer->ring_written.load(std::memory_order_acquire);
  const std::uint64_t kept =
      std::min<std::uint64_t>(written, buffer->ring_capacity);
  for (std::uint64_t k = written - kept; k < written; ++k) {
    retired_events_.push_back(RetiredEvent{
        buffer->ring[k % buffer->ring_capacity].load(), buffer->tid});
  }
  retired_ring_written_ += written;
  retired_lost_accums_ +=
      buffer->lost_accums.load(std::memory_order_relaxed);
  delete buffer;
}

void Registry::reset_locked() {
  for (ThreadBuffer* buffer : live_) {
    buffer->clear();
  }
  retired_accums_.clear();
  retired_events_.clear();
  retired_ring_written_ = 0;
  retired_lost_accums_ = 0;
}

bool Registry::attach_stream_hook(StreamHook hook) {
  const std::lock_guard<std::mutex> lock(mu_);
  if (stream_hook_) {
    return false;
  }
  stream_hook_ = std::move(hook);
  return true;
}

void Registry::detach_stream_hook() {
  const std::lock_guard<std::mutex> lock(mu_);
  stream_hook_ = nullptr;
}

bool Registry::stream_hook_attached() {
  const std::lock_guard<std::mutex> lock(mu_);
  return static_cast<bool>(stream_hook_);
}

void Registry::set_ring_capacity(std::size_t capacity) {
  ring_capacity_.store(std::max<std::size_t>(1, capacity),
                       std::memory_order_relaxed);
}

CollectedMetrics collect_metrics_locked(Registry& registry,
                                        bool include_hist) {
  CollectedMetrics out;
  for (const auto& [name, accum] : registry.retired_accums()) {
    AccumData& merged = out.accums[name];
    if (merged.name == nullptr) {
      merged.name = accum.name;
      merged.kind = accum.kind;
    }
    merged.merge(accum);
  }
  out.dropped_accum_events = registry.retired_lost_accums();

  // Live buffers merge in tid order so gauge `last` is deterministic for a
  // fixed thread layout; sums and counts are order-independent anyway.
  std::vector<ThreadBuffer*> buffers = registry.live();
  std::sort(buffers.begin(), buffers.end(),
            [](const ThreadBuffer* a, const ThreadBuffer* b) {
              return a->tid < b->tid;
            });
  for (const ThreadBuffer* buffer : buffers) {
    for (const Accum& a : buffer->accums) {
      if (a.name.load(std::memory_order_acquire) != nullptr) {
        const AccumData data = a.data(include_hist);
        AccumData& merged = out.accums[data.name];
        if (merged.name == nullptr) {
          merged.name = data.name;
          merged.kind = data.kind;
        }
        merged.merge(data);
      }
    }
    out.dropped_accum_events +=
        buffer->lost_accums.load(std::memory_order_relaxed);
  }
  out.thread_count = registry.thread_count();
  return out;
}

}  // namespace detail

namespace {

using detail::AccumData;
using detail::Registry;
using detail::ThreadBuffer;

void merge_accum_into(MetricsSnapshot& snapshot, const std::string& name,
                      const AccumData& a) {
  switch (a.kind) {
    case EventKind::kSpan: {
      SpanStats& s = snapshot.spans[name];
      const bool first = s.count == 0;
      s.count += a.count;
      s.total_ns += a.total_ns;
      s.min_ns = first ? a.min_ns : std::min(s.min_ns, a.min_ns);
      s.max_ns = std::max(s.max_ns, a.max_ns);
      s.hist.merge(a.hist);
      break;
    }
    case EventKind::kCounter: {
      CounterStats& c = snapshot.counters[name];
      c.count += a.count;
      c.total += a.total;
      break;
    }
    case EventKind::kGauge: {
      GaugeStats& g = snapshot.gauges[name];
      const bool first = g.count == 0;
      g.count += a.count;
      g.last = a.last;
      g.min = first ? a.min_value : std::min(g.min, a.min_value);
      g.max = first ? a.max_value : std::max(g.max, a.max_value);
      break;
    }
  }
}

}  // namespace

MetricsSnapshot metrics_snapshot() {
  Registry& registry = Registry::instance();
  const std::lock_guard<std::mutex> lock(registry.mutex());

  MetricsSnapshot snapshot;
  const detail::CollectedMetrics collected =
      detail::collect_metrics_locked(registry, /*include_hist=*/true);
  for (const auto& [name, accum] : collected.accums) {
    merge_accum_into(snapshot, name, accum);
  }
  snapshot.dropped_accum_events = collected.dropped_accum_events;
  snapshot.thread_count = collected.thread_count;

  std::uint64_t ring_written = registry.retired_ring_written();
  std::uint64_t ring_kept = registry.retired_events().size();
  for (const ThreadBuffer* buffer : registry.live()) {
    const std::uint64_t written =
        buffer->ring_written.load(std::memory_order_acquire);
    ring_written += written;
    ring_kept += std::min<std::uint64_t>(written, buffer->ring_capacity);
  }
  snapshot.dropped_ring_events = ring_written - ring_kept;
  return snapshot;
}

TraceSnapshot trace_snapshot() {
  Registry& registry = Registry::instance();
  const std::lock_guard<std::mutex> lock(registry.mutex());

  TraceSnapshot snapshot;
  std::uint64_t written = registry.retired_ring_written();
  for (const auto& retired : registry.retired_events()) {
    snapshot.spans.push_back(TraceSpan{retired.event.name,
                                       retired.event.start_ns,
                                       retired.event.end_ns, retired.tid,
                                       retired.event.depth});
  }
  for (const ThreadBuffer* buffer : registry.live()) {
    const std::uint64_t buffer_written =
        buffer->ring_written.load(std::memory_order_acquire);
    const std::uint64_t kept =
        std::min<std::uint64_t>(buffer_written, buffer->ring_capacity);
    for (std::uint64_t k = buffer_written - kept; k < buffer_written; ++k) {
      const detail::SpanRecord event =
          buffer->ring[k % buffer->ring_capacity].load();
      snapshot.spans.push_back(TraceSpan{event.name, event.start_ns,
                                         event.end_ns, buffer->tid,
                                         event.depth});
    }
    written += buffer_written;
  }
  snapshot.dropped = written - snapshot.spans.size();
  std::stable_sort(snapshot.spans.begin(), snapshot.spans.end(),
                   [](const TraceSpan& a, const TraceSpan& b) {
                     if (a.start_ns != b.start_ns) {
                       return a.start_ns < b.start_ns;
                     }
                     if (a.tid != b.tid) {
                       return a.tid < b.tid;
                     }
                     return a.depth < b.depth;
                   });
  return snapshot;
}

void reset() {
  Registry& registry = Registry::instance();
  const std::lock_guard<std::mutex> lock(registry.mutex());
  registry.reset_locked();
}

void set_ring_capacity(std::size_t capacity) {
  Registry::instance().set_ring_capacity(capacity);
}

std::size_t ring_capacity() { return Registry::instance().ring_capacity(); }

std::uint64_t internal_allocations() {
  return Registry::instance().allocations();
}

}  // namespace dsslice::obs
