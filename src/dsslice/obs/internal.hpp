// Internal shared state of the observability layer: the per-thread buffer
// written by trace.cpp's record functions and drained by registry.cpp's
// snapshots and stream.cpp's concurrent sink. Not part of the public API —
// include obs/trace.hpp, obs/registry.hpp or obs/stream.hpp instead.
//
// Concurrency model (the streaming-drain contract):
//  * Every ThreadBuffer has exactly one writer — its owning thread. All
//    mutating members are therefore single-writer; atomics exist so a
//    concurrent drainer (obs/stream.cpp) reads coherent values, never to
//    serialize writers against each other.
//  * Ring publication: the writer fills a slot with relaxed stores, then
//    release-stores the incremented `ring_written`. A drainer that
//    acquire-loads `ring_written` sees every slot below it fully written.
//    Slots at or above the published index may be mid-overwrite, which the
//    drainer handles by re-reading the index after copying and discarding
//    anything the writer could have lapped (see stream.cpp).
//  * Accumulator publication: scalar fields are relaxed atomics (plain
//    loads/stores on mainstream hardware — the enabled-path cost contract
//    of obs/trace.hpp is unchanged). A new table entry publishes its `name`
//    with a release store after `kind` is set, so a drainer that
//    acquire-loads a non-null name sees a valid entry. Histograms are NOT
//    atomic: they are read only at quiescence (metrics_snapshot) — the
//    streaming sink skips them.
//  * `ring_drained` (the sink's cursor) and the retired stores are guarded
//    by Registry::mutex(); recording threads never touch either.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "dsslice/obs/trace.hpp"
#include "dsslice/util/stats.hpp"

namespace dsslice::obs::detail {

/// Plain value of one completed span, as copied out of a ring slot.
struct SpanRecord {
  const char* name = nullptr;
  std::uint64_t start_ns = 0;
  std::uint64_t end_ns = 0;
  std::uint16_t depth = 0;
};

/// One ring slot. Atomic members make the concurrent drain race-free;
/// ordering comes from the ring_written publish, not from these fields.
struct RingEvent {
  std::atomic<const char*> name{nullptr};
  std::atomic<std::uint64_t> start_ns{0};
  std::atomic<std::uint64_t> end_ns{0};
  std::atomic<std::uint16_t> depth{0};

  void store(const SpanRecord& record) {
    name.store(record.name, std::memory_order_relaxed);
    start_ns.store(record.start_ns, std::memory_order_relaxed);
    end_ns.store(record.end_ns, std::memory_order_relaxed);
    depth.store(record.depth, std::memory_order_relaxed);
  }
  SpanRecord load() const {
    SpanRecord record;
    record.name = name.load(std::memory_order_relaxed);
    record.start_ns = start_ns.load(std::memory_order_relaxed);
    record.end_ns = end_ns.load(std::memory_order_relaxed);
    record.depth = depth.load(std::memory_order_relaxed);
    return record;
  }
};

/// Plain, mergeable accumulator values — what snapshots and the streaming
/// sink work with once data has left the single-writer tables.
struct AccumData {
  const char* name = nullptr;
  EventKind kind = EventKind::kSpan;
  std::uint64_t count = 0;
  std::uint64_t total_ns = 0;
  std::uint64_t min_ns = std::numeric_limits<std::uint64_t>::max();
  std::uint64_t max_ns = 0;
  double total = 0.0;
  double last = 0.0;
  double min_value = std::numeric_limits<double>::infinity();
  double max_value = -std::numeric_limits<double>::infinity();
  LogHistogram hist;

  void merge(const AccumData& other);
};

/// Per-name accumulator slot. Spans fill the ns fields and the histogram;
/// counters fill total/count; gauges fill last/min/max/count. Scalars are
/// single-writer atomics so the streaming sink can read them mid-run; the
/// histogram is quiescence-only (see the header comment).
struct Accum {
  std::atomic<const char*> name{nullptr};  // release-published on claim
  EventKind kind = EventKind::kSpan;       // written before name publishes
  std::atomic<std::uint64_t> count{0};
  std::atomic<std::uint64_t> total_ns{0};
  std::atomic<std::uint64_t> min_ns{std::numeric_limits<std::uint64_t>::max()};
  std::atomic<std::uint64_t> max_ns{0};
  std::atomic<double> total{0.0};
  std::atomic<double> last{0.0};
  std::atomic<double> min_value{std::numeric_limits<double>::infinity()};
  std::atomic<double> max_value{-std::numeric_limits<double>::infinity()};
  LogHistogram hist;

  /// Coherent value copy. Histogram copying requires quiescence; the
  /// streaming sink passes include_hist = false.
  AccumData data(bool include_hist) const;
};

/// Fixed-capacity per-thread recording state. Created lazily on a thread's
/// first recorded event (the only allocation the layer ever performs on a
/// recording thread); registered with the Registry for snapshotting and
/// retired — merged into the registry — when the thread exits.
struct ThreadBuffer {
  /// Open-addressed accumulator table, keyed by name pointer. 256 slots is
  /// ~4× the taxonomy's size; saturation drops events into lost_accums.
  static constexpr std::size_t kAccumSlots = 256;
  static constexpr std::size_t kAccumLoadLimit = 192;

  explicit ThreadBuffer(std::size_t capacity);

  std::uint32_t tid = 0;                  // registration order, for export
  std::unique_ptr<RingEvent[]> ring;      // fixed capacity, wraps
  std::size_t ring_capacity = 0;
  /// Total pushes ever (may exceed ring_capacity). Release-stored after the
  /// slot write — the ring's publication point for concurrent drains.
  std::atomic<std::uint64_t> ring_written{0};
  /// Streaming sink cursor: ring indices below it have been consumed (or
  /// counted dropped). Guarded by Registry::mutex(); 0 when no sink ran.
  std::uint64_t ring_drained = 0;
  std::array<Accum, kAccumSlots> accums{};
  std::size_t accum_used = 0;             // owner-thread only
  std::atomic<std::uint64_t> lost_accums{0};  // table-saturation drops

  Accum* find_or_create(const char* name, EventKind kind);
  void record_span(const char* name, std::uint64_t start_ns,
                   std::uint64_t end_ns, std::uint16_t depth);
  void add_counter(const char* name, double delta);
  void set_gauge(const char* name, double value);
  void clear();  // requires quiescence (obs::reset contract)
};

/// Accumulator fold of the whole process at one instant: retired threads
/// first (name order), then live threads in tid order — the same
/// deterministic order metrics_snapshot always used, shared with the
/// streaming sink so its cumulative values reconcile bit-for-bit.
struct CollectedMetrics {
  std::map<std::string, AccumData> accums;
  std::uint64_t dropped_accum_events = 0;
  std::uint32_t thread_count = 0;
};

class Registry;

/// Folds every accumulator table under the registry mutex (caller holds
/// it). include_hist requires quiescence.
CollectedMetrics collect_metrics_locked(Registry& registry,
                                        bool include_hist);

/// Process-wide registry of thread buffers plus the merged remains of
/// exited threads. A deliberately leaked singleton (kept reachable through
/// a static pointer, so LeakSanitizer stays quiet) so worker-thread exit
/// hooks can always reach it regardless of static destruction order.
class Registry {
 public:
  static Registry& instance();

  ThreadBuffer* create_buffer();
  /// Thread-exit hook: merges the buffer's accumulators and ring events
  /// into the retired stores, then deletes the buffer. When a stream hook
  /// is attached it runs first (under the mutex) so the sink can drain the
  /// not-yet-consumed tail of the dying thread's ring.
  void retire(ThreadBuffer* buffer);

  /// Snapshot/maintenance entry points (see obs/registry.hpp for the
  /// public wrappers and the quiescence contract).
  template <typename Fn>
  void for_each_buffer_locked(Fn&& fn) {
    const std::lock_guard<std::mutex> lock(mu_);
    for (ThreadBuffer* buffer : live_) {
      fn(*buffer);
    }
  }

  std::mutex& mutex() { return mu_; }
  const std::vector<ThreadBuffer*>& live() const { return live_; }
  const std::map<std::string, AccumData>& retired_accums() const {
    return retired_accums_;
  }
  struct RetiredEvent {
    SpanRecord event;
    std::uint32_t tid = 0;
  };
  const std::vector<RetiredEvent>& retired_events() const {
    return retired_events_;
  }
  std::uint64_t retired_ring_written() const { return retired_ring_written_; }
  std::uint64_t retired_lost_accums() const { return retired_lost_accums_; }
  std::uint32_t thread_count() const { return next_tid_; }

  void reset_locked();

  /// Streaming-sink attachment (one sink at a time). The hook runs inside
  /// retire(), under the registry mutex, before the buffer is merged away.
  using StreamHook = std::function<void(ThreadBuffer&)>;
  bool attach_stream_hook(StreamHook hook);
  void detach_stream_hook();
  bool stream_hook_attached();

  void count_allocation() {
    allocations_.fetch_add(1, std::memory_order_relaxed);
  }
  std::uint64_t allocations() const {
    return allocations_.load(std::memory_order_relaxed);
  }

  /// Ring capacity applied to buffers created from now on.
  void set_ring_capacity(std::size_t capacity);
  std::size_t ring_capacity() const {
    return ring_capacity_.load(std::memory_order_relaxed);
  }

 private:
  Registry() = default;

  std::mutex mu_;
  std::vector<ThreadBuffer*> live_;
  std::uint32_t next_tid_ = 0;
  std::map<std::string, AccumData> retired_accums_;
  std::vector<RetiredEvent> retired_events_;
  std::uint64_t retired_ring_written_ = 0;
  std::uint64_t retired_lost_accums_ = 0;
  StreamHook stream_hook_;
  std::atomic<std::uint64_t> allocations_{0};
  std::atomic<std::size_t> ring_capacity_{8192};
};

}  // namespace dsslice::obs::detail
