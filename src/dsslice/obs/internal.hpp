// Internal shared state of the observability layer: the per-thread buffer
// written by trace.cpp's record functions and drained by registry.cpp's
// snapshots. Not part of the public API — include obs/trace.hpp and
// obs/registry.hpp instead.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "dsslice/obs/trace.hpp"
#include "dsslice/util/stats.hpp"

namespace dsslice::obs::detail {

/// One completed span as stored in the per-thread ring (counters and gauges
/// are aggregation-only; only spans carry per-event timeline data).
struct RingEvent {
  const char* name = nullptr;
  std::uint64_t start_ns = 0;
  std::uint64_t end_ns = 0;
  std::uint16_t depth = 0;
};

/// Per-name accumulator. Spans fill the ns fields and the histogram;
/// counters fill total/count; gauges fill last/min/max/count.
struct Accum {
  const char* name = nullptr;
  EventKind kind = EventKind::kSpan;
  std::uint64_t count = 0;
  std::uint64_t total_ns = 0;
  std::uint64_t min_ns = std::numeric_limits<std::uint64_t>::max();
  std::uint64_t max_ns = 0;
  double total = 0.0;
  double last = 0.0;
  double min_value = std::numeric_limits<double>::infinity();
  double max_value = -std::numeric_limits<double>::infinity();
  LogHistogram hist;

  void merge(const Accum& other);
};

/// Fixed-capacity per-thread recording state. Created lazily on a thread's
/// first recorded event (the only allocation the layer ever performs on a
/// recording thread); registered with the Registry for snapshotting and
/// retired — merged into the registry — when the thread exits.
struct ThreadBuffer {
  /// Open-addressed accumulator table, keyed by name pointer. 256 slots is
  /// ~4× the taxonomy's size; saturation drops events into lost_accums.
  static constexpr std::size_t kAccumSlots = 256;
  static constexpr std::size_t kAccumLoadLimit = 192;

  explicit ThreadBuffer(std::size_t ring_capacity);

  std::uint32_t tid = 0;                 // registration order, for export
  std::vector<RingEvent> ring;           // fixed capacity, wraps
  std::uint64_t ring_written = 0;        // total pushes ever (≥ ring.size())
  std::array<Accum, kAccumSlots> accums{};
  std::size_t accum_used = 0;
  std::uint64_t lost_accums = 0;         // events dropped by table saturation

  Accum* find_or_create(const char* name, EventKind kind);
  void record_span(const char* name, std::uint64_t start_ns,
                   std::uint64_t end_ns, std::uint16_t depth);
  void add_counter(const char* name, double delta);
  void set_gauge(const char* name, double value);
  void clear();
};

/// Process-wide registry of thread buffers plus the merged remains of
/// exited threads. A deliberately leaked singleton (kept reachable through
/// a static pointer, so LeakSanitizer stays quiet) so worker-thread exit
/// hooks can always reach it regardless of static destruction order.
class Registry {
 public:
  static Registry& instance();

  ThreadBuffer* create_buffer();
  /// Thread-exit hook: merges the buffer's accumulators and ring events
  /// into the retired stores, then deletes the buffer.
  void retire(ThreadBuffer* buffer);

  /// Snapshot/maintenance entry points (see obs/registry.hpp for the
  /// public wrappers and the quiescence contract).
  template <typename Fn>
  void for_each_buffer_locked(Fn&& fn) {
    const std::lock_guard<std::mutex> lock(mu_);
    for (ThreadBuffer* buffer : live_) {
      fn(*buffer);
    }
  }

  std::mutex& mutex() { return mu_; }
  const std::vector<ThreadBuffer*>& live() const { return live_; }
  const std::map<std::string, Accum>& retired_accums() const {
    return retired_accums_;
  }
  struct RetiredEvent {
    RingEvent event;
    std::uint32_t tid = 0;
  };
  const std::vector<RetiredEvent>& retired_events() const {
    return retired_events_;
  }
  std::uint64_t retired_ring_written() const { return retired_ring_written_; }
  std::uint64_t retired_lost_accums() const { return retired_lost_accums_; }
  std::uint32_t thread_count() const { return next_tid_; }

  void reset_locked();

  void count_allocation() {
    allocations_.fetch_add(1, std::memory_order_relaxed);
  }
  std::uint64_t allocations() const {
    return allocations_.load(std::memory_order_relaxed);
  }

  /// Ring capacity applied to buffers created from now on.
  void set_ring_capacity(std::size_t capacity);
  std::size_t ring_capacity() const {
    return ring_capacity_.load(std::memory_order_relaxed);
  }

 private:
  Registry() = default;

  std::mutex mu_;
  std::vector<ThreadBuffer*> live_;
  std::uint32_t next_tid_ = 0;
  std::map<std::string, Accum> retired_accums_;
  std::vector<RetiredEvent> retired_events_;
  std::uint64_t retired_ring_written_ = 0;
  std::uint64_t retired_lost_accums_ = 0;
  std::atomic<std::uint64_t> allocations_{0};
  std::atomic<std::size_t> ring_capacity_{8192};
};

}  // namespace dsslice::obs::detail
