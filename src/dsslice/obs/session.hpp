// Driver-side glue: one call to register the observability flags on a
// CliParser, one object to arm the recorder and write the requested outputs.
//
//   CliParser cli(...);
//   obs::ObsCli::register_flags(cli);
//   if (!cli.parse(argc, argv)) return 0;
//   obs::ObsCli obs_session(cli);   // arms tracing if any output requested
//   ... run the workload ...
//   obs_session.finish();           // --trace/--metrics files, --obs-summary
#pragma once

#include <memory>
#include <string>

#include "dsslice/obs/stream.hpp"
#include "dsslice/util/cli.hpp"

namespace dsslice::obs {

class ObsCli {
 public:
  /// Adds --trace, --metrics, --obs-summary, --trace-capacity and the
  /// streaming flags (--trace-stream, --metrics-stream, --status-file,
  /// --stream-interval-ms, --live).
  static void register_flags(CliParser& cli);

  /// Reads the flags; if any output was requested, sets the ring capacity
  /// and enables recording process-wide. Any streaming flag additionally
  /// starts a StreamSink that flushes every --stream-interval-ms until
  /// finish().
  explicit ObsCli(const CliParser& cli);
  ~ObsCli();

  /// True when any observability output was requested (recording is on).
  bool active() const { return active_; }

  /// True when a streaming sink is running.
  bool streaming() const { return sink_ != nullptr; }

  /// Disables recording, stops the streaming sink (final drain — the
  /// stream's cumulative values now reconcile exactly with the snapshot
  /// exports below), snapshots, and emits everything requested: the Chrome
  /// trace to --trace, the JSONL metrics to --metrics, the text summary to
  /// stdout under --obs-summary. Returns false if a file could not be
  /// written (a warning is printed; the run's results still stand).
  bool finish();

 private:
  std::string trace_path_;
  std::string metrics_path_;
  bool summary_ = false;
  bool active_ = false;
  bool finished_ = false;
  std::unique_ptr<StreamSink> sink_;
};

}  // namespace dsslice::obs
