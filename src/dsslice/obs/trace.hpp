// Low-overhead tracing & metrics recorder — the hot-path half of the
// observability layer (aggregation and export live in obs/registry.hpp and
// obs/export.hpp; event taxonomy in docs/OBSERVABILITY.md).
//
// Instrumentation sites use three macros:
//
//   DSSLICE_SPAN("slice.run.adapt_l");        // RAII scoped timer
//   DSSLICE_COUNT("sched.dispatch.events", n) // monotonic counter += n
//   DSSLICE_GAUGE("sim.batch.graphs", x)      // last/min/max of a value
//
// Cost contract, enforced by bench/perf_obs:
//  * compiled out (cmake -DDSSLICE_OBS=OFF → DSSLICE_OBS_COMPILED_OUT):
//    the macros expand to nothing at all;
//  * compiled in, runtime-disabled (the default): one relaxed atomic load
//    and a predictable branch per site — no clock read, no thread-local
//    state created, no allocation;
//  * enabled: a monotonic clock read per span edge plus an out-of-line
//    record into the calling thread's fixed-capacity ring buffer and
//    accumulator table. After a thread's first recorded event the hot path
//    never allocates (rings and tables are fixed-size; overflow increments
//    drop counters instead of growing).
//
// Names must be string literals or pointers with static storage duration:
// the recorder stores the pointer, never a copy. Aggregation keys on string
// *content*, so the same literal in different translation units folds into
// one metric.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>

#if defined(DSSLICE_OBS_COMPILED_OUT)
#define DSSLICE_OBS_ENABLED 0
#else
#define DSSLICE_OBS_ENABLED 1
#endif

namespace dsslice::obs {

/// What a recorded event is; exposed for snapshot consumers.
enum class EventKind : std::uint8_t {
  kSpan,     ///< scoped duration (DSSLICE_SPAN)
  kCounter,  ///< monotonic sum of deltas (DSSLICE_COUNT)
  kGauge,    ///< sampled value, last/min/max kept (DSSLICE_GAUGE)
};

namespace detail {

extern std::atomic<bool> g_enabled;

/// Monotonic nanosecond clock (vDSO clock_gettime on Linux — the cheapest
/// portable "TSC read" available without per-arch calibration).
inline std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Current thread's span nesting depth (for trace export / tests).
inline std::uint32_t& span_depth() {
  thread_local std::uint32_t depth = 0;
  return depth;
}

// Out-of-line recording into the calling thread's buffer (trace.cpp).
void record_span(const char* name, std::uint64_t start_ns,
                 std::uint64_t end_ns, std::uint16_t depth);
void add_counter(const char* name, double delta);
void set_gauge(const char* name, double value);

}  // namespace detail

/// Runtime switch. Off by default; drivers flip it on via obs::ObsCli or
/// obs::set_enabled. Reading is a relaxed atomic load — safe from any
/// thread, any time.
inline bool enabled() {
#if DSSLICE_OBS_ENABLED
  return detail::g_enabled.load(std::memory_order_relaxed);
#else
  return false;
#endif
}

void set_enabled(bool on);

/// RAII scoped timer behind DSSLICE_SPAN. Records nothing unless the layer
/// was enabled when the scope was entered.
class SpanTimer {
 public:
  explicit SpanTimer(const char* name) {
    if (enabled()) {
      name_ = name;
      depth_ = static_cast<std::uint16_t>(detail::span_depth()++);
      start_ = detail::now_ns();
    }
  }
  ~SpanTimer() {
    if (name_ != nullptr) {
      const std::uint64_t end = detail::now_ns();
      --detail::span_depth();
      detail::record_span(name_, start_, end, depth_);
    }
  }
  SpanTimer(const SpanTimer&) = delete;
  SpanTimer& operator=(const SpanTimer&) = delete;

 private:
  const char* name_ = nullptr;
  std::uint64_t start_ = 0;
  std::uint16_t depth_ = 0;
};

}  // namespace dsslice::obs

#define DSSLICE_OBS_CONCAT_IMPL(a, b) a##b
#define DSSLICE_OBS_CONCAT(a, b) DSSLICE_OBS_CONCAT_IMPL(a, b)

#if DSSLICE_OBS_ENABLED

/// Scoped span: times the enclosing scope under the given static name.
#define DSSLICE_SPAN(name)                                      \
  const ::dsslice::obs::SpanTimer DSSLICE_OBS_CONCAT(           \
      dsslice_obs_span_, __LINE__)(name)

/// Monotonic counter: adds `delta` (converted to double; integral deltas
/// stay exact) under the given static name.
#define DSSLICE_COUNT(name, delta)                              \
  do {                                                          \
    if (::dsslice::obs::enabled()) {                            \
      ::dsslice::obs::detail::add_counter(                      \
          name, static_cast<double>(delta));                    \
    }                                                           \
  } while (0)

/// Gauge: records a sampled value (last, min, max aggregated).
#define DSSLICE_GAUGE(name, value)                              \
  do {                                                          \
    if (::dsslice::obs::enabled()) {                            \
      ::dsslice::obs::detail::set_gauge(                        \
          name, static_cast<double>(value));                    \
    }                                                           \
  } while (0)

#else  // DSSLICE_OBS_ENABLED

#define DSSLICE_SPAN(name) \
  do {                     \
  } while (0)
#define DSSLICE_COUNT(name, delta) \
  do {                             \
    (void)sizeof(delta);           \
  } while (0)
#define DSSLICE_GAUGE(name, value) \
  do {                             \
    (void)sizeof(value);           \
  } while (0)

#endif  // DSSLICE_OBS_ENABLED
