// Minimal strict JSON parser used to validate exporter output — by the obs
// tests (Chrome-trace round-trip) and by tools/trace_check in CI. Not a
// general-purpose JSON library: no comments, no trailing commas, numbers
// parsed as double, UTF-8 passed through unvalidated.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

namespace dsslice::obs {

/// A parsed JSON value. Children are heap-allocated to keep the recursive
/// type simple; this is test/tool code, not a hot path.
struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  bool is_null() const { return type == Type::kNull; }
  bool is_object() const { return type == Type::kObject; }
  bool is_array() const { return type == Type::kArray; }

  /// Object member lookup; returns nullptr when absent or not an object.
  const JsonValue* find(const std::string& key) const {
    if (type != Type::kObject) {
      return nullptr;
    }
    const auto it = object.find(key);
    return it == object.end() ? nullptr : &it->second;
  }
};

/// Result of a parse: value plus error diagnostics (offset into the input).
struct JsonParseResult {
  bool ok = false;
  JsonValue value;
  std::string error;
  std::size_t error_offset = 0;
};

/// Parses exactly one JSON document; trailing non-whitespace is an error.
JsonParseResult parse_json(const std::string& text);

/// Tolerant parse for append-only streaming documents (the obs
/// StreamSink's Chrome-trace chunk files): accepts a strict document
/// unchanged, and additionally a truncated top-level array — one that ends
/// mid-stream with a trailing comma, a missing ']' or a final element cut
/// mid-write (the shapes an interrupted line-per-element appender leaves
/// behind; Perfetto loads them the same way). When `completed` is non-null
/// it reports whether the input was already a strict document.
JsonParseResult parse_streaming_json(const std::string& text,
                                     bool* completed = nullptr);

/// Parses JSONL: one document per non-empty line. Returns false and fills
/// `error` (with a 1-based line number) on the first malformed line.
bool parse_jsonl(const std::string& text, std::vector<JsonValue>& out,
                 std::string& error);

/// Tolerant JSONL parse for streams still being appended to: a malformed
/// *final* line with no trailing newline (a record cut mid-write) is
/// dropped instead of failing; any earlier malformed line still fails.
/// `truncated` (optional) reports whether a partial final line was
/// dropped.
bool parse_streaming_jsonl(const std::string& text,
                           std::vector<JsonValue>& out, std::string& error,
                           bool* truncated = nullptr);

}  // namespace dsslice::obs
