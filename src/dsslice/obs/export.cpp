#include "dsslice/obs/export.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <utility>
#include <vector>

namespace dsslice::obs {

namespace {

std::string format_double(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", value);
  return buf;
}

/// Exact serialization for reconcilable metric values: integral values as
/// plain integers, everything else with 17 significant digits so parsing
/// the text yields the identical double. The streaming sink
/// (obs/stream.cpp) writes its cumulative values the same way, which is
/// what lets tools/obs_tail --against compare stream and snapshot
/// bit-for-bit.
std::string format_metric_value(double value) {
  char buf[64];
  const double truncated = static_cast<double>(static_cast<long long>(value));
  if (value == truncated && value > -9.007199254740992e15 &&
      value < 9.007199254740992e15) {
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(value));
  } else {
    std::snprintf(buf, sizeof(buf), "%.17g", value);
  }
  return buf;
}

std::string format_fixed(double value, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
  return buf;
}

double ns_to_us(std::uint64_t ns) { return static_cast<double>(ns) / 1000.0; }

double ns_to_ms(std::uint64_t ns) {
  return static_cast<double>(ns) / 1e6;
}

}  // namespace

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 2);
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string to_chrome_trace_json(const TraceSnapshot& trace) {
  std::ostringstream out;
  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const TraceSpan& span : trace.spans) {
    if (!first) {
      out << ",";
    }
    first = false;
    const double ts_us = ns_to_us(span.start_ns);
    const double dur_us =
        span.end_ns >= span.start_ns ? ns_to_us(span.end_ns - span.start_ns)
                                     : 0.0;
    out << "{\"name\":\""
        << json_escape(span.name != nullptr ? span.name : "?")
        << "\",\"cat\":\"dsslice\",\"ph\":\"X\",\"pid\":1,\"tid\":"
        << span.tid << ",\"ts\":" << format_fixed(ts_us, 3)
        << ",\"dur\":" << format_fixed(dur_us, 3)
        << ",\"args\":{\"depth\":" << span.depth << "}}";
  }
  out << "],\"otherData\":{\"tool\":\"dsslice\",\"droppedSpans\":"
      << trace.dropped << "}}\n";
  return out.str();
}

std::string to_metrics_jsonl(const MetricsSnapshot& metrics) {
  std::ostringstream out;
  for (const auto& [name, s] : metrics.spans) {
    out << "{\"type\":\"span\",\"name\":\"" << json_escape(name)
        << "\",\"count\":" << s.count << ",\"total_ns\":" << s.total_ns
        << ",\"min_ns\":" << (s.count > 0 ? s.min_ns : 0)
        << ",\"max_ns\":" << s.max_ns
        << ",\"mean_ns\":" << format_double(s.mean_ns())
        << ",\"p50_ns\":" << format_double(s.percentile_ns(50.0))
        << ",\"p95_ns\":" << format_double(s.percentile_ns(95.0))
        << ",\"p99_ns\":" << format_double(s.percentile_ns(99.0)) << "}\n";
  }
  for (const auto& [name, c] : metrics.counters) {
    out << "{\"type\":\"counter\",\"name\":\"" << json_escape(name)
        << "\",\"count\":" << c.count
        << ",\"total\":" << format_metric_value(c.total) << "}\n";
  }
  for (const auto& [name, g] : metrics.gauges) {
    out << "{\"type\":\"gauge\",\"name\":\"" << json_escape(name)
        << "\",\"count\":" << g.count
        << ",\"last\":" << format_metric_value(g.last)
        << ",\"min\":" << format_metric_value(g.min)
        << ",\"max\":" << format_metric_value(g.max) << "}\n";
  }
  out << "{\"type\":\"meta\",\"thread_count\":" << metrics.thread_count
      << ",\"dropped_ring_events\":" << metrics.dropped_ring_events
      << ",\"dropped_accum_events\":" << metrics.dropped_accum_events
      << "}\n";
  return out.str();
}

Table span_summary_table(const MetricsSnapshot& metrics) {
  // Share is relative to the summed time of depth-agnostic span totals;
  // nested spans overlap their parents, so shares can exceed 100% in sum.
  std::uint64_t grand_total_ns = 0;
  for (const auto& [name, s] : metrics.spans) {
    grand_total_ns += s.total_ns;
  }
  std::vector<std::pair<std::string, const SpanStats*>> rows;
  rows.reserve(metrics.spans.size());
  for (const auto& [name, s] : metrics.spans) {
    rows.emplace_back(name, &s);
  }
  std::stable_sort(rows.begin(), rows.end(),
                   [](const auto& a, const auto& b) {
                     return a.second->total_ns > b.second->total_ns;
                   });

  Table table({"span", "count", "total_ms", "share", "mean_us", "p50_us",
               "p95_us", "p99_us", "max_us"});
  for (const auto& [name, s] : rows) {
    const double share =
        grand_total_ns == 0
            ? 0.0
            : 100.0 * static_cast<double>(s->total_ns) /
                  static_cast<double>(grand_total_ns);
    table.add_row({name, std::to_string(s->count),
                   format_fixed(ns_to_ms(s->total_ns), 3),
                   format_fixed(share, 1) + "%",
                   format_fixed(s->mean_ns() / 1000.0, 1),
                   format_fixed(s->percentile_ns(50.0) / 1000.0, 1),
                   format_fixed(s->percentile_ns(95.0) / 1000.0, 1),
                   format_fixed(s->percentile_ns(99.0) / 1000.0, 1),
                   format_fixed(ns_to_us(s->max_ns), 1)});
  }
  return table;
}

Table counter_summary_table(const MetricsSnapshot& metrics) {
  Table table({"metric", "kind", "count", "value"});
  for (const auto& [name, c] : metrics.counters) {
    table.add_row(
        {name, "counter", std::to_string(c.count), format_double(c.total)});
  }
  for (const auto& [name, g] : metrics.gauges) {
    table.add_row({name, "gauge", std::to_string(g.count),
                   format_double(g.last) + " [" + format_double(g.min) + ", " +
                       format_double(g.max) + "]"});
  }
  return table;
}

std::string to_summary_text(const MetricsSnapshot& metrics) {
  std::ostringstream out;
  if (metrics.empty()) {
    out << "observability: no events recorded (is tracing enabled?)\n";
    return out.str();
  }
  if (!metrics.spans.empty()) {
    out << "spans:\n" << span_summary_table(metrics).to_string(2);
  }
  if (!metrics.counters.empty() || !metrics.gauges.empty()) {
    out << "counters & gauges:\n" << counter_summary_table(metrics).to_string(2);
  }
  out << "threads=" << metrics.thread_count
      << " dropped_ring_events=" << metrics.dropped_ring_events
      << " dropped_accum_events=" << metrics.dropped_accum_events << "\n";
  return out.str();
}

}  // namespace dsslice::obs
