#include "dsslice/obs/trace.hpp"

#include <algorithm>

#include "dsslice/obs/internal.hpp"

namespace dsslice::obs {

namespace detail {

std::atomic<bool> g_enabled{false};

namespace {

/// Owner of the calling thread's buffer; the destructor retires the buffer
/// into the registry so counts from short-lived threads survive snapshots
/// taken after they exit.
struct Holder {
  ThreadBuffer* buffer = nullptr;
  ~Holder() {
    if (buffer != nullptr) {
      Registry::instance().retire(buffer);
      buffer = nullptr;
    }
  }
};

ThreadBuffer& tl_buffer() {
  thread_local Holder holder;
  if (holder.buffer == nullptr) {
    holder.buffer = Registry::instance().create_buffer();
  }
  return *holder.buffer;
}

std::uint64_t hash_pointer(const char* p) {
  auto x = reinterpret_cast<std::uintptr_t>(p);
  x ^= x >> 33;
  x *= 0x9E3779B97F4A7C15ull;
  x ^= x >> 29;
  return x;
}

// All accumulator updates below are single-writer (the owning thread), so
// load-modify-store with relaxed ordering is exact — the atomics only make
// the concurrent streaming drain read coherent values, they never contend.
constexpr auto kRelaxed = std::memory_order_relaxed;

}  // namespace

void AccumData::merge(const AccumData& other) {
  count += other.count;
  total_ns += other.total_ns;
  min_ns = std::min(min_ns, other.min_ns);
  max_ns = std::max(max_ns, other.max_ns);
  total += other.total;
  if (other.count > 0) {
    last = other.last;  // merge order decides; documented as such
  }
  min_value = std::min(min_value, other.min_value);
  max_value = std::max(max_value, other.max_value);
  hist.merge(other.hist);
}

AccumData Accum::data(bool include_hist) const {
  AccumData d;
  d.name = name.load(std::memory_order_acquire);
  d.kind = kind;
  d.count = count.load(kRelaxed);
  d.total_ns = total_ns.load(kRelaxed);
  d.min_ns = min_ns.load(kRelaxed);
  d.max_ns = max_ns.load(kRelaxed);
  d.total = total.load(kRelaxed);
  d.last = last.load(kRelaxed);
  d.min_value = min_value.load(kRelaxed);
  d.max_value = max_value.load(kRelaxed);
  if (include_hist) {
    d.hist = hist;  // quiescence-only (see internal.hpp)
  }
  return d;
}

ThreadBuffer::ThreadBuffer(std::size_t capacity) {
  ring_capacity = std::max<std::size_t>(1, capacity);
  ring = std::make_unique<RingEvent[]>(ring_capacity);
}

Accum* ThreadBuffer::find_or_create(const char* name, EventKind kind) {
  std::size_t slot = static_cast<std::size_t>(hash_pointer(name)) %
                     kAccumSlots;
  for (std::size_t probes = 0; probes < kAccumSlots; ++probes) {
    Accum& a = accums[slot];
    const char* existing = a.name.load(kRelaxed);
    if (existing == name) {
      return &a;
    }
    if (existing == nullptr) {
      if (accum_used >= kAccumLoadLimit) {
        return nullptr;  // saturated — count the loss, keep the table fast
      }
      ++accum_used;
      a.kind = kind;
      // Release: a drainer that sees the name sees the kind too.
      a.name.store(name, std::memory_order_release);
      return &a;
    }
    slot = (slot + 1) % kAccumSlots;
  }
  return nullptr;
}

void ThreadBuffer::record_span(const char* name, std::uint64_t start_ns,
                               std::uint64_t end_ns, std::uint16_t depth) {
  const std::uint64_t duration =
      end_ns >= start_ns ? end_ns - start_ns : 0;
  if (Accum* a = find_or_create(name, EventKind::kSpan)) {
    a->count.store(a->count.load(kRelaxed) + 1, kRelaxed);
    a->total_ns.store(a->total_ns.load(kRelaxed) + duration, kRelaxed);
    a->min_ns.store(std::min(a->min_ns.load(kRelaxed), duration), kRelaxed);
    a->max_ns.store(std::max(a->max_ns.load(kRelaxed), duration), kRelaxed);
    a->hist.add(duration);
  } else {
    lost_accums.store(lost_accums.load(kRelaxed) + 1, kRelaxed);
  }
  const std::uint64_t index = ring_written.load(kRelaxed);
  ring[index % ring_capacity].store(
      SpanRecord{name, start_ns, end_ns, depth});
  // Publication point: a drainer that acquire-loads the new index sees the
  // slot contents written above.
  ring_written.store(index + 1, std::memory_order_release);
}

void ThreadBuffer::add_counter(const char* name, double delta) {
  if (Accum* a = find_or_create(name, EventKind::kCounter)) {
    a->count.store(a->count.load(kRelaxed) + 1, kRelaxed);
    a->total.store(a->total.load(kRelaxed) + delta, kRelaxed);
  } else {
    lost_accums.store(lost_accums.load(kRelaxed) + 1, kRelaxed);
  }
}

void ThreadBuffer::set_gauge(const char* name, double value) {
  if (Accum* a = find_or_create(name, EventKind::kGauge)) {
    a->count.store(a->count.load(kRelaxed) + 1, kRelaxed);
    a->last.store(value, kRelaxed);
    a->min_value.store(std::min(a->min_value.load(kRelaxed), value),
                       kRelaxed);
    a->max_value.store(std::max(a->max_value.load(kRelaxed), value),
                       kRelaxed);
  } else {
    lost_accums.store(lost_accums.load(kRelaxed) + 1, kRelaxed);
  }
}

void ThreadBuffer::clear() {
  for (Accum& a : accums) {
    a.kind = EventKind::kSpan;
    a.count.store(0, kRelaxed);
    a.total_ns.store(0, kRelaxed);
    a.min_ns.store(std::numeric_limits<std::uint64_t>::max(), kRelaxed);
    a.max_ns.store(0, kRelaxed);
    a.total.store(0.0, kRelaxed);
    a.last.store(0.0, kRelaxed);
    a.min_value.store(std::numeric_limits<double>::infinity(), kRelaxed);
    a.max_value.store(-std::numeric_limits<double>::infinity(), kRelaxed);
    a.hist.clear();
    a.name.store(nullptr, kRelaxed);
  }
  accum_used = 0;
  ring_written.store(0, kRelaxed);
  ring_drained = 0;
  lost_accums.store(0, kRelaxed);
}

void record_span(const char* name, std::uint64_t start_ns,
                 std::uint64_t end_ns, std::uint16_t depth) {
  tl_buffer().record_span(name, start_ns, end_ns, depth);
}

void add_counter(const char* name, double delta) {
  tl_buffer().add_counter(name, delta);
}

void set_gauge(const char* name, double value) {
  tl_buffer().set_gauge(name, value);
}

}  // namespace detail

void set_enabled(bool on) {
#if DSSLICE_OBS_ENABLED
  detail::g_enabled.store(on, std::memory_order_relaxed);
#else
  (void)on;
#endif
}

}  // namespace dsslice::obs
