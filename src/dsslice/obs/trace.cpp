#include "dsslice/obs/trace.hpp"

#include <algorithm>

#include "dsslice/obs/internal.hpp"

namespace dsslice::obs {

namespace detail {

std::atomic<bool> g_enabled{false};

namespace {

/// Owner of the calling thread's buffer; the destructor retires the buffer
/// into the registry so counts from short-lived threads survive snapshots
/// taken after they exit.
struct Holder {
  ThreadBuffer* buffer = nullptr;
  ~Holder() {
    if (buffer != nullptr) {
      Registry::instance().retire(buffer);
      buffer = nullptr;
    }
  }
};

ThreadBuffer& tl_buffer() {
  thread_local Holder holder;
  if (holder.buffer == nullptr) {
    holder.buffer = Registry::instance().create_buffer();
  }
  return *holder.buffer;
}

std::uint64_t hash_pointer(const char* p) {
  auto x = reinterpret_cast<std::uintptr_t>(p);
  x ^= x >> 33;
  x *= 0x9E3779B97F4A7C15ull;
  x ^= x >> 29;
  return x;
}

}  // namespace

void Accum::merge(const Accum& other) {
  count += other.count;
  total_ns += other.total_ns;
  min_ns = std::min(min_ns, other.min_ns);
  max_ns = std::max(max_ns, other.max_ns);
  total += other.total;
  if (other.count > 0) {
    last = other.last;  // merge order decides; documented as such
  }
  min_value = std::min(min_value, other.min_value);
  max_value = std::max(max_value, other.max_value);
  hist.merge(other.hist);
}

ThreadBuffer::ThreadBuffer(std::size_t ring_capacity) {
  ring.resize(std::max<std::size_t>(1, ring_capacity));
}

Accum* ThreadBuffer::find_or_create(const char* name, EventKind kind) {
  std::size_t slot = static_cast<std::size_t>(hash_pointer(name)) %
                     kAccumSlots;
  for (std::size_t probes = 0; probes < kAccumSlots; ++probes) {
    Accum& a = accums[slot];
    if (a.name == name) {
      return &a;
    }
    if (a.name == nullptr) {
      if (accum_used >= kAccumLoadLimit) {
        return nullptr;  // saturated — count the loss, keep the table fast
      }
      ++accum_used;
      a.name = name;
      a.kind = kind;
      return &a;
    }
    slot = (slot + 1) % kAccumSlots;
  }
  return nullptr;
}

void ThreadBuffer::record_span(const char* name, std::uint64_t start_ns,
                               std::uint64_t end_ns, std::uint16_t depth) {
  const std::uint64_t duration =
      end_ns >= start_ns ? end_ns - start_ns : 0;
  if (Accum* a = find_or_create(name, EventKind::kSpan)) {
    ++a->count;
    a->total_ns += duration;
    a->min_ns = std::min(a->min_ns, duration);
    a->max_ns = std::max(a->max_ns, duration);
    a->hist.add(duration);
  } else {
    ++lost_accums;
  }
  RingEvent& slot = ring[ring_written % ring.size()];
  slot.name = name;
  slot.start_ns = start_ns;
  slot.end_ns = end_ns;
  slot.depth = depth;
  ++ring_written;
}

void ThreadBuffer::add_counter(const char* name, double delta) {
  if (Accum* a = find_or_create(name, EventKind::kCounter)) {
    ++a->count;
    a->total += delta;
  } else {
    ++lost_accums;
  }
}

void ThreadBuffer::set_gauge(const char* name, double value) {
  if (Accum* a = find_or_create(name, EventKind::kGauge)) {
    ++a->count;
    a->last = value;
    a->min_value = std::min(a->min_value, value);
    a->max_value = std::max(a->max_value, value);
  } else {
    ++lost_accums;
  }
}

void ThreadBuffer::clear() {
  for (Accum& a : accums) {
    a = Accum{};
  }
  accum_used = 0;
  ring_written = 0;
  lost_accums = 0;
}

void record_span(const char* name, std::uint64_t start_ns,
                 std::uint64_t end_ns, std::uint16_t depth) {
  tl_buffer().record_span(name, start_ns, end_ns, depth);
}

void add_counter(const char* name, double delta) {
  tl_buffer().add_counter(name, delta);
}

void set_gauge(const char* name, double value) {
  tl_buffer().set_gauge(name, value);
}

}  // namespace detail

void set_enabled(bool on) {
#if DSSLICE_OBS_ENABLED
  detail::g_enabled.store(on, std::memory_order_relaxed);
#else
  (void)on;
#endif
}

}  // namespace dsslice::obs
