#include "dsslice/obs/stream.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "dsslice/obs/export.hpp"
#include "dsslice/obs/internal.hpp"
#include "dsslice/obs/registry.hpp"
#include "dsslice/util/check.hpp"

namespace dsslice::obs {

namespace {

using detail::AccumData;
using detail::Registry;
using detail::ThreadBuffer;

using Clock = std::chrono::steady_clock;

/// Serializes a metric value exactly: integral values (the common case —
/// counts, byte totals, scenario counts) as plain integers, everything
/// else with 17 significant digits so strtod round-trips to the identical
/// double. This is what makes file-level reconciliation bit-exact.
std::string format_exact(double value) {
  char buf[64];
  const double truncated = static_cast<double>(static_cast<long long>(value));
  if (value == truncated && value > -9.007199254740992e15 &&
      value < 9.007199254740992e15) {
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(value));
  } else {
    std::snprintf(buf, sizeof(buf), "%.17g", value);
  }
  return buf;
}

std::string format_fixed(double value, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
  return buf;
}

/// Span names are compile-time literals; virtually none need JSON
/// escaping, and the per-span json_escape allocation is measurable at full
/// ring throughput on small machines.
bool needs_json_escape(const char* text) {
  for (const char* p = text; *p != '\0'; ++p) {
    if (*p == '"' || *p == '\\' || static_cast<unsigned char>(*p) < 0x20) {
      return true;
    }
  }
  return false;
}

void append_u64(std::string& out, std::uint64_t value) {
  char buf[24];
  char* p = buf + sizeof(buf);
  do {
    *--p = static_cast<char>('0' + value % 10);
    value /= 10;
  } while (value != 0);
  out.append(p, static_cast<std::size_t>(buf + sizeof(buf) - p));
}

/// Appends `ns` as microseconds with exactly three decimals ("1234.567"),
/// the Chrome-trace ts/dur convention, without printf's double path — the
/// chunk writer serializes every recorded span, so this is the hottest
/// formatting call in the sink (see the perf_obs streaming-tax gate).
void append_ns_as_us(std::string& out, std::uint64_t ns) {
  append_u64(out, ns / 1000);
  std::uint64_t frac = ns % 1000;
  char buf[4] = {'.', static_cast<char>('0' + frac / 100),
                 static_cast<char>('0' + (frac / 10) % 10),
                 static_cast<char>('0' + frac % 10)};
  out.append(buf, 4);
}

/// Drains the completed ring entries of one buffer behind its published
/// write index (caller holds the registry mutex; the owning thread keeps
/// recording concurrently). Appends the surviving entries to `out` and
/// returns how many were lost to wraparound. Every ring index is
/// classified exactly once across the lifetime of the cursor: kept or
/// dropped — the lossless-accounting invariant the stress test pins.
std::uint64_t drain_ring_locked(ThreadBuffer& buffer,
                                std::vector<TraceSpan>& out) {
  const std::uint64_t published =
      buffer.ring_written.load(std::memory_order_acquire);
  std::uint64_t cursor = buffer.ring_drained;
  if (published == cursor) {
    return 0;
  }
  const std::uint64_t cap = buffer.ring_capacity;
  std::uint64_t dropped = 0;
  if (published - cursor > cap) {  // already lapped before we got here
    dropped += published - cap - cursor;
    cursor = published - cap;
  }
  const std::size_t first_out = out.size();
  for (std::uint64_t i = cursor; i < published; ++i) {
    const detail::SpanRecord rec = buffer.ring[i % cap].load();
    out.push_back(
        TraceSpan{rec.name, rec.start_ns, rec.end_ns, buffer.tid, rec.depth});
  }
  // The writer kept going while we copied. Re-read the published index:
  // entry i is torn iff some write with index >= i + cap reused its slot,
  // and the writer can be at most one unpublished write (index `now`)
  // ahead — so exactly the entries with i <= now - cap are suspect.
  // Discard them (they re-enter the accounting as drops; their slots'
  // *new* occupants are still ahead of the cursor and get drained next
  // tick, so nothing is double-counted).
  const std::uint64_t now = buffer.ring_written.load(std::memory_order_acquire);
  if (now > cap && now - cap >= cursor) {
    const std::uint64_t n =
        std::min<std::uint64_t>(published, now - cap + 1) - cursor;
    out.erase(out.begin() + static_cast<std::ptrdiff_t>(first_out),
              out.begin() + static_cast<std::ptrdiff_t>(first_out + n));
    dropped += n;
  }
  buffer.ring_drained = published;
  return dropped;
}

}  // namespace

struct StreamSink::Impl {
  explicit Impl(StreamOptions opts) : options(std::move(opts)) {
    options.interval_ms = std::max<std::uint32_t>(1, options.interval_ms);
  }

  StreamOptions options;

  std::thread flusher;
  std::mutex tick_mu;  // serializes ticks (flusher vs tick_now/stop)
  std::mutex cv_mu;
  std::condition_variable cv;
  bool stop_requested = false;  // guarded by cv_mu
  bool started = false;
  bool stopped = false;

  std::FILE* chunk_file = nullptr;
  std::FILE* delta_file = nullptr;

  /// Cumulative values as of the last tick, keyed by metric name.
  std::map<std::string, AccumData> reported;
  /// Ring tails handed over by Registry::retire (guarded by the registry
  /// mutex — the hook runs under it).
  std::vector<TraceSpan> pending_retired;
  std::uint64_t pending_retired_dropped = 0;

  std::vector<TraceSpan> scratch;
  std::string chunk_buf;  // reused per-tick chunk serialization buffer
  std::uint64_t seq = 0;
  Clock::time_point start_time{};
  std::atomic<std::uint64_t> ticks{0};
  std::atomic<std::uint64_t> spans_streamed{0};
  std::atomic<std::uint64_t> spans_dropped{0};
  std::atomic<std::uint64_t> delta_records{0};

  // Heartbeat state across ticks.
  double prev_done = 0.0;
  Clock::time_point prev_tick_time{};
  std::uint64_t checkpoint_marks = 0;
  Clock::time_point checkpoint_time{};

  void run();
  void tick(bool final_tick);
  void write_chunk(const std::vector<TraceSpan>& spans);
  std::uint64_t write_deltas(
      const std::map<std::string, AccumData>& cumulative);
  void write_heartbeat(const std::map<std::string, AccumData>& cumulative,
                       double wall_ms, std::uint32_t threads);
  void close_files(bool finalize_chunk);
};

void StreamSink::Impl::run() {
  std::unique_lock<std::mutex> lock(cv_mu);
  while (!stop_requested) {
    cv.wait_for(lock, std::chrono::milliseconds(options.interval_ms));
    if (stop_requested) {
      break;  // stop() runs the final tick itself
    }
    lock.unlock();
    tick(/*final_tick=*/false);
    lock.lock();
  }
}

void StreamSink::Impl::tick(bool final_tick) {
  const std::lock_guard<std::mutex> tick_lock(tick_mu);
  scratch.clear();
  std::uint64_t dropped_now = 0;
  detail::CollectedMetrics collected;
  {
    Registry& registry = Registry::instance();
    const std::lock_guard<std::mutex> lock(registry.mutex());
    // Retired tails first so a thread's spans stay in record order.
    scratch.insert(scratch.end(), pending_retired.begin(),
                   pending_retired.end());
    dropped_now += pending_retired_dropped;
    pending_retired.clear();
    pending_retired_dropped = 0;
    for (ThreadBuffer* buffer : registry.live()) {
      dropped_now += drain_ring_locked(*buffer, scratch);
    }
    collected = detail::collect_metrics_locked(registry,
                                               /*include_hist=*/false);
  }
  // Registry mutex released — recorders proceed; format and write here.
  ++seq;
  write_chunk(scratch);
  const std::uint64_t deltas = write_deltas(collected.accums);
  spans_streamed.fetch_add(scratch.size(), std::memory_order_relaxed);
  spans_dropped.fetch_add(dropped_now, std::memory_order_relaxed);
  delta_records.fetch_add(deltas, std::memory_order_relaxed);
  ticks.fetch_add(1, std::memory_order_relaxed);

  const double wall_ms =
      std::chrono::duration<double, std::milli>(Clock::now() - start_time)
          .count();
  if (delta_file != nullptr) {
    std::fprintf(delta_file,
                 "{\"type\":\"tick\",\"seq\":%llu,\"wall_ms\":%.3f,"
                 "\"spans\":%zu,\"deltas\":%llu,\"spans_total\":%llu,"
                 "\"dropped_total\":%llu,\"threads\":%u,\"final\":%s}\n",
                 static_cast<unsigned long long>(seq), wall_ms,
                 scratch.size(), static_cast<unsigned long long>(deltas),
                 static_cast<unsigned long long>(
                     spans_streamed.load(std::memory_order_relaxed)),
                 static_cast<unsigned long long>(
                     spans_dropped.load(std::memory_order_relaxed)),
                 collected.thread_count, final_tick ? "true" : "false");
    std::fflush(delta_file);
  }
  if (chunk_file != nullptr) {
    std::fflush(chunk_file);
  }
  write_heartbeat(collected.accums, wall_ms, collected.thread_count);
  reported = std::move(collected.accums);
}

void StreamSink::Impl::write_chunk(const std::vector<TraceSpan>& spans) {
  if (chunk_file == nullptr || spans.empty()) {
    return;
  }
  // Serialized by hand into a reused buffer, one fwrite per tick: the
  // chunk writer touches every recorded span, and a stdio call plus a
  // printf double conversion per span is most of the streaming tax the
  // perf_obs gate measures on small machines.
  chunk_buf.clear();
  for (const TraceSpan& span : spans) {
    const std::uint64_t dur_ns =
        span.end_ns >= span.start_ns ? span.end_ns - span.start_ns : 0;
    const char* name = span.name != nullptr ? span.name : "?";
    chunk_buf += "{\"name\":\"";
    if (needs_json_escape(name)) {
      chunk_buf += json_escape(name);
    } else {
      chunk_buf += name;
    }
    chunk_buf += "\",\"cat\":\"dsslice\",\"ph\":\"X\",\"pid\":1,\"tid\":";
    append_u64(chunk_buf, span.tid);
    chunk_buf += ",\"ts\":";
    append_ns_as_us(chunk_buf, span.start_ns);
    chunk_buf += ",\"dur\":";
    append_ns_as_us(chunk_buf, dur_ns);
    chunk_buf += ",\"args\":{\"depth\":";
    append_u64(chunk_buf, span.depth);
    chunk_buf += "}},\n";
  }
  std::fwrite(chunk_buf.data(), 1, chunk_buf.size(), chunk_file);
}

std::uint64_t StreamSink::Impl::write_deltas(
    const std::map<std::string, AccumData>& cumulative) {
  if (delta_file == nullptr) {
    return 0;
  }
  std::uint64_t written = 0;
  for (const auto& [name, cum] : cumulative) {
    const auto prev_it = reported.find(name);
    const AccumData* prev = prev_it == reported.end() ? nullptr
                                                      : &prev_it->second;
    const std::uint64_t prev_count = prev != nullptr ? prev->count : 0;
    if (cum.count == prev_count) {
      continue;  // untouched since the last tick
    }
    const std::string escaped = json_escape(name);
    const unsigned long long dc =
        static_cast<unsigned long long>(cum.count - prev_count);
    switch (cum.kind) {
      case EventKind::kSpan: {
        const std::uint64_t prev_total = prev != nullptr ? prev->total_ns : 0;
        std::fprintf(
            delta_file,
            "{\"type\":\"delta\",\"seq\":%llu,\"kind\":\"span\","
            "\"name\":\"%s\",\"count\":%llu,\"total_ns\":%llu,"
            "\"cum_count\":%llu,\"cum_total_ns\":%llu,"
            "\"min_ns\":%llu,\"max_ns\":%llu}\n",
            static_cast<unsigned long long>(seq), escaped.c_str(), dc,
            static_cast<unsigned long long>(cum.total_ns - prev_total),
            static_cast<unsigned long long>(cum.count),
            static_cast<unsigned long long>(cum.total_ns),
            static_cast<unsigned long long>(cum.min_ns),
            static_cast<unsigned long long>(cum.max_ns));
        break;
      }
      case EventKind::kCounter: {
        const double prev_total = prev != nullptr ? prev->total : 0.0;
        std::fprintf(delta_file,
                     "{\"type\":\"delta\",\"seq\":%llu,\"kind\":\"counter\","
                     "\"name\":\"%s\",\"count\":%llu,\"total\":%s,"
                     "\"cum_count\":%llu,\"cum_total\":%s}\n",
                     static_cast<unsigned long long>(seq), escaped.c_str(),
                     dc, format_exact(cum.total - prev_total).c_str(),
                     static_cast<unsigned long long>(cum.count),
                     format_exact(cum.total).c_str());
        break;
      }
      case EventKind::kGauge: {
        std::fprintf(delta_file,
                     "{\"type\":\"delta\",\"seq\":%llu,\"kind\":\"gauge\","
                     "\"name\":\"%s\",\"count\":%llu,\"last\":%s,"
                     "\"min\":%s,\"max\":%s,\"cum_count\":%llu}\n",
                     static_cast<unsigned long long>(seq), escaped.c_str(),
                     dc, format_exact(cum.last).c_str(),
                     format_exact(cum.min_value).c_str(),
                     format_exact(cum.max_value).c_str(),
                     static_cast<unsigned long long>(cum.count));
        break;
      }
    }
    ++written;
  }
  return written;
}

void StreamSink::Impl::write_heartbeat(
    const std::map<std::string, AccumData>& cumulative, double wall_ms,
    std::uint32_t threads) {
  if (options.status_path.empty() && !options.heartbeat_stderr) {
    return;
  }
  const auto value_of = [&](const char* name, double fallback) {
    const auto it = cumulative.find(name);
    if (it == cumulative.end()) {
      return fallback;
    }
    return it->second.kind == EventKind::kCounter ? it->second.total
                                                  : it->second.last;
  };
  const auto now = Clock::now();
  const double done = value_of("sweep.progress.scenarios_done", 0.0);
  const double total = value_of("sweep.progress.scenarios_total", 0.0);
  const double successes = value_of("sweep.progress.successes", 0.0);
  const double wave = value_of("sweep.progress.wave", 0.0);
  const double waves_total = value_of("sweep.progress.waves_total", 0.0);
  const double shards_done = value_of("sweep.progress.shards_done", 0.0);
  const double shards_resumed =
      value_of("sweep.progress.shards_resumed", 0.0);
  const double rate_ewma =
      value_of("sweep.progress.scenarios_per_sec_ewma", 0.0);
  const bool sweep = cumulative.count("sweep.progress.scenarios_total") > 0;

  // Instantaneous rate across this tick.
  double rate_inst = 0.0;
  if (prev_tick_time.time_since_epoch().count() != 0) {
    const double dt = std::chrono::duration<double>(now - prev_tick_time)
                          .count();
    if (dt > 0.0 && done >= prev_done) {
      rate_inst = (done - prev_done) / dt;
    }
  }
  prev_done = done;
  prev_tick_time = now;

  // Checkpoint age: time since the save_ms gauge last moved.
  double checkpoint_age_ms = -1.0;
  const auto ckpt = cumulative.find("sweep.checkpoint.save_ms");
  if (ckpt != cumulative.end()) {
    if (ckpt->second.count != checkpoint_marks) {
      checkpoint_marks = ckpt->second.count;
      checkpoint_time = now;
    }
    checkpoint_age_ms =
        std::chrono::duration<double, std::milli>(now - checkpoint_time)
            .count();
  }

  const double remaining = total > done ? total - done : 0.0;
  const double rate_for_eta = rate_ewma > 0.0 ? rate_ewma : rate_inst;
  const double eta_seconds =
      rate_for_eta > 0.0 ? remaining / rate_for_eta : -1.0;
  const double success_ratio = done > 0.0 ? successes / done : 0.0;

  if (!options.status_path.empty()) {
    std::string body;
    body += "{\"type\":\"heartbeat\",\"seq\":" + std::to_string(seq);
    body += ",\"wall_ms\":" + format_fixed(wall_ms, 3);
    body += ",\"sweep\":" + std::string(sweep ? "true" : "false");
    body += ",\"scenarios_done\":" + format_exact(done);
    body += ",\"scenarios_total\":" + format_exact(total);
    body += ",\"success_ratio\":" + format_fixed(success_ratio, 6);
    body += ",\"rate\":" + format_fixed(rate_inst, 1);
    body += ",\"rate_ewma\":" + format_fixed(rate_ewma, 1);
    body += ",\"wave\":" + format_exact(wave);
    body += ",\"waves_total\":" + format_exact(waves_total);
    body += ",\"shards_done\":" + format_exact(shards_done);
    body += ",\"shards_resumed\":" + format_exact(shards_resumed);
    body += ",\"checkpoint_age_ms\":" + format_fixed(checkpoint_age_ms, 1);
    body += ",\"eta_seconds\":" + format_fixed(eta_seconds, 1);
    body += ",\"spans_streamed\":" +
            std::to_string(spans_streamed.load(std::memory_order_relaxed));
    body += ",\"spans_dropped\":" +
            std::to_string(spans_dropped.load(std::memory_order_relaxed));
    body += ",\"threads\":" + std::to_string(threads);
    body += "}\n";
    const std::string tmp = options.status_path + ".tmp";
    if (std::FILE* f = std::fopen(tmp.c_str(), "wb")) {
      std::fwrite(body.data(), 1, body.size(), f);
      std::fclose(f);
      std::rename(tmp.c_str(), options.status_path.c_str());
    }
  }

  if (options.heartbeat_stderr) {
    if (sweep) {
      const double pct = total > 0.0 ? 100.0 * done / total : 0.0;
      std::fprintf(
          stderr,
          "[stream] %.0f/%.0f (%.1f%%) ok %.1f%% | %.0f/s ewma %.0f/s | "
          "wave %.0f/%.0f | shards %.0f (+%.0f resumed) | ckpt %s | "
          "eta %s\n",
          done, total, pct, 100.0 * success_ratio, rate_inst, rate_ewma,
          wave, waves_total, shards_done, shards_resumed,
          checkpoint_age_ms < 0.0
              ? "-"
              : (format_fixed(checkpoint_age_ms / 1000.0, 1) + "s").c_str(),
          eta_seconds < 0.0 ? "-"
                            : (format_fixed(eta_seconds, 0) + "s").c_str());
    } else {
      std::fprintf(stderr,
                   "[stream] tick %llu | %llu spans (%llu dropped) | "
                   "%llu deltas | %u threads\n",
                   static_cast<unsigned long long>(seq),
                   static_cast<unsigned long long>(
                       spans_streamed.load(std::memory_order_relaxed)),
                   static_cast<unsigned long long>(
                       spans_dropped.load(std::memory_order_relaxed)),
                   static_cast<unsigned long long>(
                       delta_records.load(std::memory_order_relaxed)),
                   threads);
    }
  }
}

void StreamSink::Impl::close_files(bool finalize_chunk) {
  if (chunk_file != nullptr) {
    if (finalize_chunk) {
      // Close the array with a summary event (no trailing comma) so the
      // final file is a strict JSON document.
      std::fprintf(chunk_file,
                   "{\"name\":\"obs.stream.stop\",\"cat\":\"dsslice\","
                   "\"ph\":\"X\",\"pid\":1,\"tid\":0,\"ts\":0.000,"
                   "\"dur\":0.000,\"args\":{\"spans_streamed\":%llu,"
                   "\"spans_dropped\":%llu,\"ticks\":%llu}}\n]\n",
                   static_cast<unsigned long long>(
                       spans_streamed.load(std::memory_order_relaxed)),
                   static_cast<unsigned long long>(
                       spans_dropped.load(std::memory_order_relaxed)),
                   static_cast<unsigned long long>(
                       ticks.load(std::memory_order_relaxed)));
    }
    std::fclose(chunk_file);
    chunk_file = nullptr;
  }
  if (delta_file != nullptr) {
    std::fclose(delta_file);
    delta_file = nullptr;
  }
}

StreamSink::StreamSink(StreamOptions options)
    : impl_(std::make_unique<Impl>(std::move(options))) {}

StreamSink::~StreamSink() { stop(); }

void StreamSink::start() {
  Impl& impl = *impl_;
  if (impl.started) {
    throw ConfigError("StreamSink::start called twice");
  }
  if (!impl.options.trace_chunk_path.empty()) {
    impl.chunk_file =
        std::fopen(impl.options.trace_chunk_path.c_str(), "wb");
    if (impl.chunk_file == nullptr) {
      throw ConfigError("cannot open trace chunk file " +
                        impl.options.trace_chunk_path);
    }
    std::fputs("[\n", impl.chunk_file);
    std::fflush(impl.chunk_file);
  }
  if (!impl.options.metrics_delta_path.empty()) {
    impl.delta_file =
        std::fopen(impl.options.metrics_delta_path.c_str(), "wb");
    if (impl.delta_file == nullptr) {
      impl.close_files(false);
      throw ConfigError("cannot open metrics delta file " +
                        impl.options.metrics_delta_path);
    }
    std::fputs(
        "{\"type\":\"hello\",\"format\":\"dsslice-metrics-delta\","
        "\"version\":1}\n",
        impl.delta_file);
    std::fflush(impl.delta_file);
  }
  const bool attached = Registry::instance().attach_stream_hook(
      [this](ThreadBuffer& buffer) {
        Impl& i = *impl_;  // runs under the registry mutex (retire())
        i.pending_retired_dropped +=
            drain_ring_locked(buffer, i.pending_retired);
      });
  if (!attached) {
    impl.close_files(false);
    throw ConfigError("another StreamSink is already attached");
  }
  impl.start_time = Clock::now();
  impl.started = true;
  impl.flusher = std::thread([&impl] { impl.run(); });
}

void StreamSink::stop() {
  Impl& impl = *impl_;
  if (!impl.started || impl.stopped) {
    return;
  }
  impl.stopped = true;
  {
    const std::lock_guard<std::mutex> lock(impl.cv_mu);
    impl.stop_requested = true;
  }
  impl.cv.notify_all();
  impl.flusher.join();
  // Final drain: with recorders quiescent (the ObsCli::finish ordering)
  // the cumulative values written here reconcile bit-for-bit with a
  // quiescent metrics_snapshot().
  impl.tick(/*final_tick=*/true);
  Registry::instance().detach_stream_hook();
  impl.close_files(/*finalize_chunk=*/true);
}

void StreamSink::tick_now() {
  Impl& impl = *impl_;
  if (impl.started && !impl.stopped) {
    impl.tick(/*final_tick=*/false);
  }
}

bool StreamSink::active() const { return impl_->started && !impl_->stopped; }

StreamStats StreamSink::stats() const {
  const Impl& impl = *impl_;
  StreamStats stats;
  stats.ticks = impl.ticks.load(std::memory_order_relaxed);
  stats.spans_streamed = impl.spans_streamed.load(std::memory_order_relaxed);
  stats.spans_dropped = impl.spans_dropped.load(std::memory_order_relaxed);
  stats.delta_records = impl.delta_records.load(std::memory_order_relaxed);
  return stats;
}

}  // namespace dsslice::obs
