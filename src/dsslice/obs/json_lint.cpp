#include "dsslice/obs/json_lint.hpp"

#include <cctype>
#include <cstdlib>
#include <sstream>

namespace dsslice::obs {

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  JsonParseResult run() {
    JsonParseResult result;
    skip_ws();
    if (!parse_value(result.value)) {
      result.error = error_;
      result.error_offset = pos_;
      return result;
    }
    skip_ws();
    if (pos_ != text_.size()) {
      result.error = "trailing characters after document";
      result.error_offset = pos_;
      return result;
    }
    result.ok = true;
    return result;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool fail(const std::string& message) {
    if (error_.empty()) {
      error_ = message;
    }
    return false;
  }

  bool literal(const char* word, std::size_t len) {
    if (text_.compare(pos_, len, word) != 0) {
      return fail(std::string("expected '") + word + "'");
    }
    pos_ += len;
    return true;
  }

  bool parse_value(JsonValue& out) {
    if (pos_ >= text_.size()) {
      return fail("unexpected end of input");
    }
    switch (text_[pos_]) {
      case '{':
        return parse_object(out);
      case '[':
        return parse_array(out);
      case '"':
        out.type = JsonValue::Type::kString;
        return parse_string(out.string);
      case 't':
        out.type = JsonValue::Type::kBool;
        out.boolean = true;
        return literal("true", 4);
      case 'f':
        out.type = JsonValue::Type::kBool;
        out.boolean = false;
        return literal("false", 5);
      case 'n':
        out.type = JsonValue::Type::kNull;
        return literal("null", 4);
      default:
        return parse_number(out);
    }
  }

  bool parse_object(JsonValue& out) {
    out.type = JsonValue::Type::kObject;
    ++pos_;  // '{'
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    for (;;) {
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return fail("expected object key string");
      }
      std::string key;
      if (!parse_string(key)) {
        return false;
      }
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != ':') {
        return fail("expected ':' after object key");
      }
      ++pos_;
      skip_ws();
      JsonValue value;
      if (!parse_value(value)) {
        return false;
      }
      out.object.emplace(std::move(key), std::move(value));
      skip_ws();
      if (pos_ >= text_.size()) {
        return fail("unterminated object");
      }
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      return fail("expected ',' or '}' in object");
    }
  }

  bool parse_array(JsonValue& out) {
    out.type = JsonValue::Type::kArray;
    ++pos_;  // '['
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return true;
    }
    for (;;) {
      skip_ws();
      JsonValue value;
      if (!parse_value(value)) {
        return false;
      }
      out.array.push_back(std::move(value));
      skip_ws();
      if (pos_ >= text_.size()) {
        return fail("unterminated array");
      }
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        return true;
      }
      return fail("expected ',' or ']' in array");
    }
  }

  bool parse_string(std::string& out) {
    ++pos_;  // '"'
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        return fail("unescaped control character in string");
      }
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) {
          return fail("unterminated escape");
        }
        switch (text_[pos_]) {
          case '"':
            out += '"';
            break;
          case '\\':
            out += '\\';
            break;
          case '/':
            out += '/';
            break;
          case 'b':
            out += '\b';
            break;
          case 'f':
            out += '\f';
            break;
          case 'n':
            out += '\n';
            break;
          case 'r':
            out += '\r';
            break;
          case 't':
            out += '\t';
            break;
          case 'u': {
            if (pos_ + 4 >= text_.size()) {
              return fail("truncated \\u escape");
            }
            unsigned code = 0;
            for (int k = 1; k <= 4; ++k) {
              const char h = text_[pos_ + static_cast<std::size_t>(k)];
              code <<= 4;
              if (h >= '0' && h <= '9') {
                code |= static_cast<unsigned>(h - '0');
              } else if (h >= 'a' && h <= 'f') {
                code |= static_cast<unsigned>(h - 'a' + 10);
              } else if (h >= 'A' && h <= 'F') {
                code |= static_cast<unsigned>(h - 'A' + 10);
              } else {
                return fail("invalid \\u escape digit");
              }
            }
            pos_ += 4;
            // Exporters only ever emit \u00XX; encode as UTF-8 for
            // completeness.
            if (code < 0x80) {
              out += static_cast<char>(code);
            } else if (code < 0x800) {
              out += static_cast<char>(0xC0 | (code >> 6));
              out += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              out += static_cast<char>(0xE0 | (code >> 12));
              out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              out += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default:
            return fail("invalid escape character");
        }
        ++pos_;
      } else {
        out += c;
        ++pos_;
      }
    }
    return fail("unterminated string");
  }

  bool parse_number(JsonValue& out) {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') {
      ++pos_;
    }
    if (pos_ >= text_.size() ||
        !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      return fail("invalid number");
    }
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (pos_ >= text_.size() ||
          !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        return fail("digit expected after decimal point");
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (pos_ >= text_.size() ||
          !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        return fail("digit expected in exponent");
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    out.type = JsonValue::Type::kNumber;
    out.number = std::strtod(text_.substr(start, pos_ - start).c_str(),
                             nullptr);
    return true;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
  std::string error_;
};

}  // namespace

JsonParseResult parse_json(const std::string& text) {
  return Parser(text).run();
}

JsonParseResult parse_streaming_json(const std::string& text,
                                     bool* completed) {
  JsonParseResult strict = parse_json(text);
  if (strict.ok) {
    if (completed != nullptr) {
      *completed = true;
    }
    return strict;
  }
  if (completed != nullptr) {
    *completed = false;
  }
  // Truncated streaming array. The appender writes one element per line,
  // so a cut can land (a) between lines — trailing comma and/or missing
  // ']' — or (b) mid-record, leaving a partial final line. Drop anything
  // after the last newline, trim, drop at most one trailing comma, close
  // the array. Anything else keeps the strict error.
  std::size_t end = text.rfind('\n');
  if (end == std::string::npos) {
    end = text.size();
  }
  while (end > 0 &&
         (text[end - 1] == ' ' || text[end - 1] == '\t' ||
          text[end - 1] == '\n' || text[end - 1] == '\r')) {
    --end;
  }
  if (end == 0) {
    return strict;
  }
  std::string candidate = text.substr(0, end);
  if (candidate.back() == ',') {
    candidate.pop_back();
  }
  candidate += ']';
  JsonParseResult repaired = parse_json(candidate);
  if (repaired.ok && repaired.value.is_array()) {
    return repaired;
  }
  return strict;  // diagnose the original text, not the repair attempt
}

bool parse_jsonl(const std::string& text, std::vector<JsonValue>& out,
                 std::string& error) {
  std::istringstream lines(text);
  std::string line;
  std::size_t line_number = 0;
  while (std::getline(lines, line)) {
    ++line_number;
    bool blank = true;
    for (const char c : line) {
      if (c != ' ' && c != '\t' && c != '\r') {
        blank = false;
        break;
      }
    }
    if (blank) {
      continue;
    }
    JsonParseResult result = parse_json(line);
    if (!result.ok) {
      std::ostringstream message;
      message << "line " << line_number << ": " << result.error
              << " (offset " << result.error_offset << ")";
      error = message.str();
      return false;
    }
    out.push_back(std::move(result.value));
  }
  return true;
}

bool parse_streaming_jsonl(const std::string& text,
                           std::vector<JsonValue>& out, std::string& error,
                           bool* truncated) {
  if (truncated != nullptr) {
    *truncated = false;
  }
  if (text.empty() || text.back() == '\n') {
    return parse_jsonl(text, out, error);
  }
  // No trailing newline: the last line may be a record cut mid-write.
  const std::size_t cut = text.rfind('\n');
  const std::string head = cut == std::string::npos
                               ? std::string()
                               : text.substr(0, cut + 1);
  const std::string tail =
      cut == std::string::npos ? text : text.substr(cut + 1);
  if (!parse_jsonl(head, out, error)) {
    return false;
  }
  JsonParseResult last = parse_json(tail);
  if (last.ok) {
    out.push_back(std::move(last.value));
  } else if (truncated != nullptr) {
    *truncated = true;
  }
  return true;
}

}  // namespace dsslice::obs
