// Aggregation half of the observability layer: merges the per-thread
// recorders of obs/trace.hpp into named, deterministic snapshots.
//
// Quiescence contract: metrics_snapshot / trace_snapshot / reset lock out
// buffer creation and retirement, but recording threads write their own
// buffers without synchronization. Call these only while no instrumented
// code is running (drivers snapshot after their batch / pool work has
// drained) — exactly how every exporter in this repo uses them. The
// streaming path (obs/stream.hpp) is the one consumer exempt from this
// contract: its drains read the rings through their published write indices
// and touch only monotone accumulators, so they run concurrently with
// recorders. Do not call reset() while a StreamSink is active — the sink's
// delta encoding assumes accumulators never move backwards.
//
// Determinism: aggregate counts, integer nanosecond totals, and histogram
// buckets are sums of per-thread integers merged in name order, so a
// workload whose per-item instrumentation is deterministic yields
// bit-identical aggregate counts no matter how many threads partitioned it
// (pinned by tests/test_obs.cpp). Gauge `last` takes the value of the
// highest-numbered thread that recorded one.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "dsslice/obs/trace.hpp"
#include "dsslice/util/stats.hpp"

namespace dsslice::obs {

/// Aggregated statistics of one span name.
struct SpanStats {
  std::uint64_t count = 0;
  std::uint64_t total_ns = 0;
  std::uint64_t min_ns = 0;
  std::uint64_t max_ns = 0;
  LogHistogram hist;

  double mean_ns() const {
    return count == 0 ? 0.0
                      : static_cast<double>(total_ns) /
                            static_cast<double>(count);
  }
  double percentile_ns(double p) const { return hist.percentile(p); }
};

/// Aggregated statistics of one counter name.
struct CounterStats {
  std::uint64_t count = 0;  ///< number of DSSLICE_COUNT calls
  double total = 0.0;       ///< sum of deltas (exact for integral deltas)
};

/// Aggregated statistics of one gauge name.
struct GaugeStats {
  std::uint64_t count = 0;
  double last = 0.0;
  double min = 0.0;
  double max = 0.0;
};

/// Deterministically merged aggregate of every thread's recorder.
struct MetricsSnapshot {
  std::map<std::string, SpanStats> spans;
  std::map<std::string, CounterStats> counters;
  std::map<std::string, GaugeStats> gauges;
  /// Span events evicted from some thread's ring by wraparound. Aggregate
  /// statistics above are exact regardless (they bypass the ring).
  std::uint64_t dropped_ring_events = 0;
  /// Events lost to accumulator-table saturation (0 in practice).
  std::uint64_t dropped_accum_events = 0;
  /// Threads that ever recorded (live + retired).
  std::uint32_t thread_count = 0;

  bool empty() const {
    return spans.empty() && counters.empty() && gauges.empty();
  }
};

/// One completed span for timeline export, with thread attribution.
struct TraceSpan {
  const char* name = nullptr;
  std::uint64_t start_ns = 0;
  std::uint64_t end_ns = 0;
  std::uint32_t tid = 0;
  std::uint16_t depth = 0;
};

/// The surviving ring contents of every thread, sorted by start time.
struct TraceSnapshot {
  std::vector<TraceSpan> spans;
  std::uint64_t dropped = 0;  ///< spans lost to ring wraparound
};

/// Aggregates every thread's accumulators (see quiescence contract above).
MetricsSnapshot metrics_snapshot();

/// Drains every thread's span ring (see quiescence contract above).
TraceSnapshot trace_snapshot();

/// Clears all recorded data — live thread buffers and retired remains —
/// without touching the enabled flag. Requires quiescence.
void reset();

/// Ring capacity (span events per thread) applied to threads that start
/// recording after the call; existing buffers keep their capacity. Set
/// before enabling for full effect.
void set_ring_capacity(std::size_t capacity);
std::size_t ring_capacity();

/// Number of heap allocations the layer has ever performed (one per
/// recording thread). Stable while disabled — asserted by the zero-
/// allocation regression test.
std::uint64_t internal_allocations();

}  // namespace dsslice::obs
