// dsslice — adaptive deadline slicing for heterogeneous distributed
// real-time systems.
//
// Umbrella header: pulls in the full public API. Reproduction of
// J. Jonsson, "A Robust Adaptive Metric for Deadline Assignment in
// Heterogeneous Distributed Real-Time Systems", IPPS 1999.
//
// Typical pipeline:
//   Application app = ...;                       // model/application.hpp
//   Platform platform = Platform::identical(3);  // model/platform.hpp
//   auto est = estimate_wcets(app, WcetEstimation::kAverage);
//   DeadlineMetric metric(MetricKind::kAdaptL);
//   auto windows = run_slicing(app, est, metric, platform.processor_count());
//   auto result  = EdfListScheduler().run(app, windows, platform);
#pragma once

#include "dsslice/analysis/graph_analysis.hpp"
#include "dsslice/baselines/bettati_liu.hpp"
#include "dsslice/baselines/distribution_registry.hpp"
#include "dsslice/baselines/iterative_refinement.hpp"
#include "dsslice/baselines/kao_garcia_molina.hpp"
#include "dsslice/batch/slice_kernel.hpp"
#include "dsslice/core/anchors.hpp"
#include "dsslice/core/critical_path.hpp"
#include "dsslice/core/metrics.hpp"
#include "dsslice/core/diagnosis.hpp"
#include "dsslice/core/feasibility.hpp"
#include "dsslice/core/jitter.hpp"
#include "dsslice/core/quality.hpp"
#include "dsslice/core/slicing.hpp"
#include "dsslice/core/wcet_estimate.hpp"
#include "dsslice/gen/generator_config.hpp"
#include "dsslice/gen/platform_generator.hpp"
#include "dsslice/gen/rng.hpp"
#include "dsslice/gen/scenario_batch.hpp"
#include "dsslice/gen/taskgraph_generator.hpp"
#include "dsslice/graph/algorithms.hpp"
#include "dsslice/graph/closure.hpp"
#include "dsslice/graph/dot.hpp"
#include "dsslice/graph/task_graph.hpp"
#include "dsslice/model/application.hpp"
#include "dsslice/model/interconnect.hpp"
#include "dsslice/model/platform.hpp"
#include "dsslice/model/processor.hpp"
#include "dsslice/model/resources.hpp"
#include "dsslice/model/task.hpp"
#include "dsslice/model/time.hpp"
#include "dsslice/obs/export.hpp"
#include "dsslice/obs/json_lint.hpp"
#include "dsslice/obs/registry.hpp"
#include "dsslice/obs/session.hpp"
#include "dsslice/obs/trace.hpp"
#include "dsslice/report/csv.hpp"
#include "dsslice/report/schedule_export.hpp"
#include "dsslice/report/series.hpp"
#include "dsslice/report/table.hpp"
#include "dsslice/robust/fault_model.hpp"
#include "dsslice/robust/recovery.hpp"
#include "dsslice/robust/robustness_harness.hpp"
#include "dsslice/sched/annealing_scheduler.hpp"
#include "dsslice/sched/branch_and_bound.hpp"
#include "dsslice/sched/clustering.hpp"
#include "dsslice/sched/dispatch_scheduler.hpp"
#include "dsslice/sched/edf_list_scheduler.hpp"
#include "dsslice/sched/insertion_scheduler.hpp"
#include "dsslice/sched/planning_cycle.hpp"
#include "dsslice/sched/preemptive_scheduler.hpp"
#include "dsslice/sched/schedule.hpp"
#include "dsslice/sched/validation.hpp"
#include "dsslice/sim/experiment.hpp"
#include "dsslice/sim/runner.hpp"
#include "dsslice/sim/serialization.hpp"
#include "dsslice/sim/sweeps.hpp"
#include "dsslice/sweep/aggregate.hpp"
#include "dsslice/sweep/checkpoint.hpp"
#include "dsslice/sweep/sweep_engine.hpp"
#include "dsslice/util/check.hpp"
#include "dsslice/util/cli.hpp"
#include "dsslice/util/stats.hpp"
#include "dsslice/util/string_util.hpp"
#include "dsslice/util/thread_pool.hpp"
