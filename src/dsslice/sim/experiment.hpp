// Experiment definitions for the evaluation framework — the reproduction's
// stand-in for the paper's GAST environment [19].
//
// One experiment = one workload/platform scenario family (GeneratorConfig)
// × one deadline-distribution technique × one WCET estimation strategy ×
// one scheduler configuration, evaluated over `generator.graph_count`
// independently seeded task graphs. The primary result is the success ratio
// (§4.2); secondary quality measures and algorithm diagnostics are
// aggregated alongside.
#pragma once

#include <cstdint>
#include <span>
#include <string>

#include "dsslice/baselines/distribution_registry.hpp"
#include "dsslice/core/metrics.hpp"
#include "dsslice/core/slicing.hpp"
#include "dsslice/core/wcet_estimate.hpp"
#include "dsslice/gen/generator_config.hpp"
#include "dsslice/gen/taskgraph_generator.hpp"
#include "dsslice/sched/dispatch_scheduler.hpp"
#include "dsslice/sched/edf_list_scheduler.hpp"
#include "dsslice/sched/preemptive_scheduler.hpp"
#include "dsslice/sched/scheduler_workspace.hpp"
#include "dsslice/util/stats.hpp"

namespace dsslice {

struct ExperimentConfig {
  GeneratorConfig generator;
  DistributionTechnique technique = DistributionTechnique::kSlicingAdaptL;
  MetricParams metric_params;
  WcetEstimation wcet_strategy = WcetEstimation::kAverage;
  SchedulerOptions scheduler;
  /// Scheduling engine: the constructive list scheduler (paper baseline) or
  /// the on-line time-marching dispatcher. The dispatcher honours
  /// scheduler.abort_on_miss but ignores scheduler.placement.
  SchedulerAlgorithm algorithm = SchedulerAlgorithm::kListEdf;
  /// Display label; defaults to the technique name when empty.
  std::string label;

  std::string display_label() const;
};

/// Outcome of one task set (one generated graph) under one configuration.
struct GraphOutcome {
  bool scheduled = false;     ///< every task placed and no deadline missed
  double min_laxity = 0.0;    ///< min_i (d_i − c̄_i) after distribution
  double max_lateness = 0.0;  ///< only meaningful when the schedule completed
  bool lateness_valid = false;
  double makespan = 0.0;      ///< only for successful schedules
  std::size_t slicing_passes = 0;  ///< 0 for non-slicing techniques
  std::size_t task_count = 0;
};

/// Aggregate over a batch of task sets.
struct ExperimentResult {
  SuccessCounter success;
  RunningStats min_laxity;
  RunningStats max_lateness;   ///< over outcomes with lateness_valid
  RunningStats makespan;       ///< over successful schedules
  RunningStats slicing_passes;
  RunningStats task_count;
  double wall_seconds = 0.0;

  void add(const GraphOutcome& outcome);
  void merge(const ExperimentResult& other);

  double success_ratio() const { return success.ratio(); }

  /// One-line human-readable summary.
  std::string summary(const std::string& label) const;
};

/// Reusable per-worker scratch for batch evaluation. Passing one instance to
/// consecutive evaluate_scenario calls on the same thread keeps both the
/// slicing and the scheduling hot paths allocation-free: buffers (including
/// the scheduler result shells below) are recycled between scenarios and
/// only grow when a scenario exceeds every previous shape.
struct ScenarioScratch {
  SlicingWorkspace slicing;
  SchedulerWorkspace sched;
  SchedulerResult sched_result;
  PreemptiveResult pre_result;
  std::vector<double> mandatory_est;  // mandatory-demand estimate buffer
  std::vector<double> est;            // estimated-WCET buffer
};

/// Runs the configured deadline-distribution technique (slicing or direct)
/// over one scenario. When `slicing_passes` is non-null it receives the
/// slicer's pass count (0 for non-slicing techniques). `scratch`, when
/// given, supplies reusable buffers for the slicing techniques. Shared by
/// evaluate_scenario and the robustness harness.
DeadlineAssignment distribute_for_config(const ExperimentConfig& config,
                                         const Application& app,
                                         const Platform& platform,
                                         std::span<const double> est_wcet,
                                         std::size_t* slicing_passes = nullptr,
                                         ScenarioScratch* scratch = nullptr);

/// Evaluates a single scenario generated from `seed` under the
/// configuration (the per-graph unit of work; exposed for tests and custom
/// drivers). `scratch` is optional reusable per-thread scratch (see
/// ScenarioScratch).
GraphOutcome evaluate_scenario(const ExperimentConfig& config,
                               std::uint64_t seed,
                               ScenarioScratch* scratch = nullptr);

/// Evaluation half of evaluate_scenario for an already-generated scenario —
/// the consumer side of the batched sweep pipeline (gen/scenario_batch.hpp
/// produces, this evaluates). Identical outcome to evaluate_scenario on the
/// seed the scenario was generated from.
GraphOutcome evaluate_generated(const ExperimentConfig& config,
                                const Scenario& scenario,
                                ScenarioScratch* scratch = nullptr);

/// Scheduling half of evaluate_generated: runs the configured scheduler over
/// an already-distributed scenario and assembles the outcome. The deadline
/// distribution's contributions (`min_laxity` over the original estimates,
/// the slicer's pass count) are passed in. evaluate_generated ≡
/// distribution + evaluate_scheduled; the batch sweep path computes the
/// distribution through BatchSliceKernel and joins back here.
GraphOutcome evaluate_scheduled(const ExperimentConfig& config,
                                const Scenario& scenario,
                                const DeadlineAssignment& assignment,
                                double pre_min_laxity,
                                std::size_t slicing_passes,
                                ScenarioScratch* scratch = nullptr);

}  // namespace dsslice
