#include "dsslice/sim/experiment.hpp"

#include <limits>
#include <sstream>

#include "dsslice/core/quality.hpp"
#include "dsslice/core/slicing.hpp"
#include "dsslice/gen/taskgraph_generator.hpp"
#include "dsslice/obs/trace.hpp"
#include "dsslice/util/string_util.hpp"

namespace dsslice {

std::string ExperimentConfig::display_label() const {
  return label.empty() ? to_string(technique) : label;
}

void ExperimentResult::add(const GraphOutcome& outcome) {
  success.add(outcome.scheduled);
  min_laxity.add(outcome.min_laxity);
  if (outcome.lateness_valid) {
    max_lateness.add(outcome.max_lateness);
  }
  if (outcome.scheduled) {
    makespan.add(outcome.makespan);
  }
  slicing_passes.add(static_cast<double>(outcome.slicing_passes));
  task_count.add(static_cast<double>(outcome.task_count));
}

void ExperimentResult::merge(const ExperimentResult& other) {
  success.merge(other.success);
  min_laxity.merge(other.min_laxity);
  max_lateness.merge(other.max_lateness);
  makespan.merge(other.makespan);
  slicing_passes.merge(other.slicing_passes);
  task_count.merge(other.task_count);
  wall_seconds += other.wall_seconds;
}

std::string ExperimentResult::summary(const std::string& label) const {
  std::ostringstream os;
  os << pad_right(label, 16) << " success "
     << pad_left(format_percent(success_ratio(), 1), 7) << " ±"
     << format_percent(success.ci95_halfwidth(), 1) << "  min-laxity "
     << format_fixed(min_laxity.mean(), 2);
  if (makespan.count() > 0) {
    os << "  makespan " << format_fixed(makespan.mean(), 1);
  }
  return os.str();
}

DeadlineAssignment distribute_for_config(const ExperimentConfig& config,
                                         const Application& app,
                                         const Platform& platform,
                                         std::span<const double> est_wcet,
                                         std::size_t* slicing_passes,
                                         ScenarioScratch* scratch) {
  if (slicing_passes != nullptr) {
    *slicing_passes = 0;
  }
  // Imprecise workloads plan against *mandatory* demand: each optional part
  // is recoverable slack a degraded-mode policy may reclaim at run time, so
  // baking it into the windows would double-book that time. Precise
  // workloads (no optional parts anywhere) skip the scaling entirely and
  // keep the estimate vector bit-identical.
  if (app.has_optional_work()) {
    if (scratch != nullptr) {
      mandatory_estimates_into(app, est_wcet, scratch->mandatory_est);
      est_wcet = scratch->mandatory_est;
    } else {
      thread_local std::vector<double> buffer;
      mandatory_estimates_into(app, est_wcet, buffer);
      est_wcet = buffer;
    }
  }
  if (is_slicing(config.technique)) {
    SlicingStats stats;
    const DeadlineMetric metric(metric_of(config.technique),
                                config.metric_params);
    SlicingOptions options;
    if (scratch != nullptr) {
      options.workspace = &scratch->slicing;
    }
    DeadlineAssignment assignment = run_slicing(
        app, est_wcet, metric, platform.processor_count(), &stats, options);
    if (slicing_passes != nullptr) {
      *slicing_passes = stats.passes;
    }
    return assignment;
  }
  return distribute(config.technique, app, est_wcet, platform,
                    config.metric_params);
}

GraphOutcome evaluate_scenario(const ExperimentConfig& config,
                               std::uint64_t seed, ScenarioScratch* scratch) {
  const Scenario scenario = generate_scenario(config.generator, seed);
  return evaluate_generated(config, scenario, scratch);
}

GraphOutcome evaluate_generated(const ExperimentConfig& config,
                                const Scenario& scenario,
                                ScenarioScratch* scratch) {
  DSSLICE_SPAN("sim.scenario");
  const Application& app = scenario.application;
  const Platform& platform = scenario.platform;

  std::vector<double> local_est;
  std::vector<double>& est_buf =
      scratch != nullptr ? scratch->est : local_est;
  estimate_wcets_into(app, config.wcet_strategy, est_buf);
  std::span<const double> est = est_buf;

  std::size_t slicing_passes = 0;
  const DeadlineAssignment assignment = distribute_for_config(
      config, app, platform, est, &slicing_passes, scratch);
  return evaluate_scheduled(config, scenario, assignment,
                            min_laxity(assignment, est), slicing_passes,
                            scratch);
}

GraphOutcome evaluate_scheduled(const ExperimentConfig& config,
                                const Scenario& scenario,
                                const DeadlineAssignment& assignment,
                                double pre_min_laxity,
                                std::size_t slicing_passes,
                                ScenarioScratch* scratch) {
  const Application& app = scenario.application;
  const Platform& platform = scenario.platform;

  GraphOutcome outcome;
  outcome.task_count = app.task_count();
  outcome.slicing_passes = slicing_passes;
  outcome.min_laxity = pre_min_laxity;

  if (config.algorithm == SchedulerAlgorithm::kPreemptiveEdf) {
    // The preemptive simulator has its own trace-based result shape.
    PreemptiveOptions options;
    options.abort_on_miss = config.scheduler.abort_on_miss;
    const PreemptiveEdfScheduler scheduler(options);
    PreemptiveResult local_pre;
    PreemptiveResult& pre = scratch != nullptr ? scratch->pre_result : local_pre;
    if (scratch != nullptr) {
      scheduler.run_into(pre, scratch->sched, app, assignment, platform);
    } else {
      pre = scheduler.run(app, assignment, platform);
    }
    outcome.scheduled = pre.success;
    if (pre.success || !config.scheduler.abort_on_miss) {
      double worst = -std::numeric_limits<double>::infinity();
      Time makespan = kTimeZero;
      for (NodeId v = 0; v < app.task_count(); ++v) {
        worst = std::max(worst,
                         pre.completion[v] - assignment.windows[v].deadline);
        makespan = std::max(makespan, pre.completion[v]);
      }
      outcome.max_lateness = worst;
      outcome.lateness_valid = true;
      if (pre.success) {
        outcome.makespan = makespan;
      }
    }
    return outcome;
  }

  SchedulerResult local_sched;
  SchedulerResult& sched =
      scratch != nullptr ? scratch->sched_result : local_sched;
  if (config.algorithm == SchedulerAlgorithm::kDispatchEdf) {
    DispatchOptions options;
    options.abort_on_miss = config.scheduler.abort_on_miss;
    const EdfDispatchScheduler scheduler(options);
    if (scratch != nullptr) {
      scheduler.run_into(sched, scratch->sched, app, assignment, platform);
    } else {
      sched = scheduler.run(app, assignment, platform);
    }
  } else {
    const EdfListScheduler scheduler(config.scheduler);
    if (scratch != nullptr) {
      scheduler.run_into(sched, scratch->sched, app, assignment, platform);
    } else {
      sched = scheduler.run(app, assignment, platform);
    }
  }
  outcome.scheduled = sched.success;
  if (sched.schedule.complete()) {
    outcome.max_lateness = max_lateness(sched.schedule, assignment);
    outcome.lateness_valid = true;
  }
  if (sched.success) {
    outcome.makespan = sched.schedule.makespan();
  }
  return outcome;
}

}  // namespace dsslice
