#include "dsslice/sim/serialization.hpp"

#include <fstream>
#include <sstream>

#include "dsslice/util/check.hpp"
#include "dsslice/util/string_util.hpp"

namespace dsslice {

namespace {

constexpr int kFormatVersion = 1;

/// %.17g round-trips doubles exactly.
std::string num(double x) {
  std::ostringstream os;
  os.precision(17);
  os << x;
  return os.str();
}

/// Tokenized line reader with position tracking for error messages.
class LineReader {
 public:
  explicit LineReader(const std::string& text) : in_(text) {}

  /// Next non-empty, non-comment line split on whitespace.
  std::vector<std::string> next() {
    std::string line;
    while (std::getline(in_, line)) {
      ++line_no_;
      const std::size_t hash = line.find('#');
      if (hash != std::string::npos) {
        line = line.substr(0, hash);
      }
      std::istringstream ls(line);
      std::vector<std::string> tokens;
      std::string tok;
      while (ls >> tok) {
        tokens.push_back(tok);
      }
      if (!tokens.empty()) {
        return tokens;
      }
    }
    fail("unexpected end of input");
  }

  [[noreturn]] void fail(const std::string& why) const {
    throw ConfigError("scenario parse error at line " +
                      std::to_string(line_no_) + ": " + why);
  }

  void expect(const std::vector<std::string>& tokens,
              const std::string& keyword, std::size_t arity) const {
    if (tokens.empty() || tokens[0] != keyword ||
        tokens.size() != arity + 1) {
      fail("expected '" + keyword + "' with " + std::to_string(arity) +
           " argument(s)");
    }
  }

  double to_double(const std::string& tok) const {
    char* end = nullptr;
    const double v = std::strtod(tok.c_str(), &end);
    if (end == nullptr || *end != '\0') {
      fail("not a number: " + tok);
    }
    return v;
  }

  std::size_t to_size(const std::string& tok) const {
    const double v = to_double(tok);
    if (v < 0 || v != static_cast<double>(static_cast<std::size_t>(v))) {
      fail("not a non-negative integer: " + tok);
    }
    return static_cast<std::size_t>(v);
  }

 private:
  std::istringstream in_;
  int line_no_ = 0;
};

}  // namespace

std::string serialize_scenario(const Scenario& scenario) {
  const Platform& platform = scenario.platform;
  const Application& app = scenario.application;
  const auto* bus = dynamic_cast<const SharedBus*>(&platform.network());
  DSSLICE_REQUIRE(bus != nullptr,
                  "only shared-bus platforms can be serialized");

  std::ostringstream os;
  os << "dsslice-scenario " << kFormatVersion << "\n";
  os << "classes " << platform.class_count() << "\n";
  for (const ProcessorClass& e : platform.classes()) {
    os << "class " << e.name << " " << num(e.speed_factor) << "\n";
  }
  os << "processors " << platform.processor_count() << "\n";
  for (const Processor& p : platform.processors()) {
    os << "proc " << p.name << " " << p.klass << "\n";
  }
  os << "bus " << num(bus->per_item_delay()) << "\n";
  os << "tasks " << app.task_count() << "\n";
  for (NodeId v = 0; v < app.task_count(); ++v) {
    const Task& t = app.task(v);
    os << "task " << t.name << " " << num(t.phasing) << " " << num(t.period);
    for (const double c : t.wcet_by_class) {
      os << " " << (c < 0.0 ? std::string("-") : num(c));
    }
    os << "\n";
  }
  os << "arcs " << app.graph().arc_count() << "\n";
  for (const Arc& a : app.graph().arcs()) {
    os << "arc " << a.from << " " << a.to << " " << num(a.message_items)
       << "\n";
  }
  for (const NodeId in : app.graph().input_nodes()) {
    os << "arrival " << in << " " << num(app.input_arrival(in)) << "\n";
  }
  for (const NodeId out : app.graph().output_nodes()) {
    if (app.has_ete_deadline(out)) {
      os << "deadline " << out << " " << num(app.ete_deadline(out)) << "\n";
    }
  }
  os << "end\n";
  return os.str();
}

Scenario parse_scenario(const std::string& text) {
  LineReader reader(text);

  auto header = reader.next();
  reader.expect(header, "dsslice-scenario", 1);
  if (reader.to_size(header[1]) != static_cast<std::size_t>(kFormatVersion)) {
    reader.fail("unsupported format version " + header[1]);
  }

  auto line = reader.next();
  reader.expect(line, "classes", 1);
  const std::size_t class_count = reader.to_size(line[1]);
  std::vector<ProcessorClass> classes;
  for (std::size_t k = 0; k < class_count; ++k) {
    line = reader.next();
    reader.expect(line, "class", 2);
    classes.push_back(ProcessorClass{line[1], reader.to_double(line[2])});
  }

  line = reader.next();
  reader.expect(line, "processors", 1);
  const std::size_t proc_count = reader.to_size(line[1]);
  std::vector<Processor> procs;
  for (std::size_t q = 0; q < proc_count; ++q) {
    line = reader.next();
    reader.expect(line, "proc", 2);
    const std::size_t klass = reader.to_size(line[2]);
    if (klass >= class_count) {
      reader.fail("processor class index out of range");
    }
    procs.push_back(Processor{line[1], static_cast<ProcessorClassId>(klass)});
  }

  line = reader.next();
  reader.expect(line, "bus", 1);
  const double bus_delay = reader.to_double(line[1]);
  Platform platform(std::move(classes), std::move(procs),
                    std::make_shared<SharedBus>(bus_delay));

  line = reader.next();
  reader.expect(line, "tasks", 1);
  const std::size_t task_count = reader.to_size(line[1]);
  TaskGraph graph(task_count);
  std::vector<Task> tasks;
  for (std::size_t i = 0; i < task_count; ++i) {
    line = reader.next();
    if (line.size() != 4 + class_count || line[0] != "task") {
      reader.fail("expected 'task <name> <phasing> <period> <" +
                  std::to_string(class_count) + " wcets>'");
    }
    Task t;
    t.name = line[1];
    t.phasing = reader.to_double(line[2]);
    t.period = reader.to_double(line[3]);
    for (std::size_t e = 0; e < class_count; ++e) {
      const std::string& tok = line[4 + e];
      t.wcet_by_class.push_back(tok == "-" ? kIneligibleWcet
                                           : reader.to_double(tok));
    }
    tasks.push_back(std::move(t));
  }

  line = reader.next();
  reader.expect(line, "arcs", 1);
  const std::size_t arc_count = reader.to_size(line[1]);
  for (std::size_t a = 0; a < arc_count; ++a) {
    line = reader.next();
    reader.expect(line, "arc", 3);
    const std::size_t from = reader.to_size(line[1]);
    const std::size_t to = reader.to_size(line[2]);
    if (from >= task_count || to >= task_count) {
      reader.fail("arc endpoint out of range");
    }
    graph.add_arc(static_cast<NodeId>(from), static_cast<NodeId>(to),
                  reader.to_double(line[3]));
  }

  Application app(std::move(graph), std::move(tasks));
  for (;;) {
    line = reader.next();
    if (line.size() == 1 && line[0] == "end") {
      break;
    }
    if (line.size() == 3 && line[0] == "arrival") {
      app.set_input_arrival(static_cast<NodeId>(reader.to_size(line[1])),
                            reader.to_double(line[2]));
    } else if (line.size() == 3 && line[0] == "deadline") {
      app.set_ete_deadline(static_cast<NodeId>(reader.to_size(line[1])),
                           reader.to_double(line[2]));
    } else {
      reader.fail("expected 'arrival', 'deadline' or 'end'");
    }
  }
  return Scenario{std::move(platform), std::move(app)};
}

void save_scenario(const Scenario& scenario, const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  DSSLICE_REQUIRE(static_cast<bool>(out), "cannot open " + path);
  out << serialize_scenario(scenario);
  DSSLICE_REQUIRE(static_cast<bool>(out), "failed to write " + path);
}

Scenario load_scenario(const std::string& path) {
  std::ifstream in(path);
  DSSLICE_REQUIRE(static_cast<bool>(in), "cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse_scenario(buffer.str());
}

}  // namespace dsslice
