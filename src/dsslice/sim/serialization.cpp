#include "dsslice/sim/serialization.hpp"

#include <cerrno>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "dsslice/util/check.hpp"
#include "dsslice/util/string_util.hpp"

namespace dsslice {

namespace {

constexpr int kFormatVersion = 1;

/// Sanity bound on entity counts (classes, processors, tasks, arcs). A
/// count beyond this is a corrupted or hostile file, not a real scenario;
/// rejecting it up front avoids multi-gigabyte allocations.
constexpr std::size_t kMaxEntityCount = 1'000'000;

/// %.17g round-trips doubles exactly.
std::string num(double x) {
  std::ostringstream os;
  os.precision(17);
  os << x;
  return os.str();
}

/// Tokenized line reader with position tracking for error messages.
class LineReader {
 public:
  explicit LineReader(const std::string& text,
                      std::string context = "scenario")
      : in_(text), context_(std::move(context)) {}

  /// Next non-empty, non-comment line split on whitespace.
  std::vector<std::string> next() {
    std::string line;
    while (std::getline(in_, line)) {
      ++line_no_;
      const std::size_t hash = line.find('#');
      if (hash != std::string::npos) {
        line = line.substr(0, hash);
      }
      std::istringstream ls(line);
      std::vector<std::string> tokens;
      std::string tok;
      while (ls >> tok) {
        tokens.push_back(tok);
      }
      if (!tokens.empty()) {
        return tokens;
      }
    }
    fail("unexpected end of input");
  }

  [[noreturn]] void fail(const std::string& why) const {
    throw ConfigError(context_ + " parse error at line " +
                      std::to_string(line_no_) + ": " + why);
  }

  void expect(const std::vector<std::string>& tokens,
              const std::string& keyword, std::size_t arity) const {
    if (tokens.empty() || tokens[0] != keyword ||
        tokens.size() != arity + 1) {
      fail("expected '" + keyword + "' with " + std::to_string(arity) +
           " argument(s)");
    }
  }

  double to_double(const std::string& tok) const {
    char* end = nullptr;
    const double v = std::strtod(tok.c_str(), &end);
    if (end == nullptr || *end != '\0') {
      fail("not a number: " + tok);
    }
    return v;
  }

  /// A finite number — rejects NaN and ±inf (corrupted durations/values).
  double to_finite(const std::string& tok, const std::string& what) const {
    const double v = to_double(tok);
    if (!std::isfinite(v)) {
      fail(what + " must be finite, got: " + tok);
    }
    return v;
  }

  /// A finite, non-negative duration/time/size-like value.
  double to_nonneg(const std::string& tok, const std::string& what) const {
    const double v = to_finite(tok, what);
    if (v < 0.0) {
      fail(what + " must be non-negative, got: " + tok);
    }
    return v;
  }

  /// A time value where infinity is meaningful ("never"); rejects NaN and
  /// negative values.
  double to_time(const std::string& tok, const std::string& what) const {
    const double v = to_double(tok);
    if (std::isnan(v) || v < 0.0) {
      fail(what + " must be a non-negative time, got: " + tok);
    }
    return v;
  }

  std::size_t to_size(const std::string& tok) const {
    const double v = to_double(tok);
    if (std::isnan(v) || v < 0 ||
        v != static_cast<double>(static_cast<std::size_t>(v))) {
      fail("not a non-negative integer: " + tok);
    }
    return static_cast<std::size_t>(v);
  }

  /// An entity count with an upper sanity bound.
  std::size_t to_count(const std::string& tok, const std::string& what) const {
    const std::size_t v = to_size(tok);
    if (v > kMaxEntityCount) {
      fail(what + " count " + tok + " exceeds the sanity bound of " +
           std::to_string(kMaxEntityCount));
    }
    return v;
  }

  std::uint64_t to_u64(const std::string& tok) const {
    if (tok.empty() || tok[0] == '-') {
      fail("not an unsigned integer: " + tok);
    }
    errno = 0;
    char* end = nullptr;
    const unsigned long long v = std::strtoull(tok.c_str(), &end, 10);
    if (end == nullptr || *end != '\0' || errno == ERANGE) {
      fail("not an unsigned integer: " + tok);
    }
    return static_cast<std::uint64_t>(v);
  }

 private:
  std::istringstream in_;
  std::string context_;
  int line_no_ = 0;
};

}  // namespace

std::string serialize_scenario(const Scenario& scenario) {
  const Platform& platform = scenario.platform;
  const Application& app = scenario.application;
  const auto* bus = dynamic_cast<const SharedBus*>(&platform.network());
  DSSLICE_REQUIRE(bus != nullptr,
                  "only shared-bus platforms can be serialized");

  std::ostringstream os;
  os << "dsslice-scenario " << kFormatVersion << "\n";
  os << "classes " << platform.class_count() << "\n";
  for (const ProcessorClass& e : platform.classes()) {
    os << "class " << e.name << " " << num(e.speed_factor) << "\n";
  }
  os << "processors " << platform.processor_count() << "\n";
  for (const Processor& p : platform.processors()) {
    os << "proc " << p.name << " " << p.klass;
    if (p.available_from != kTimeZero || p.available_until != kTimeInfinity) {
      os << " " << num(p.available_from) << " " << num(p.available_until);
    }
    os << "\n";
  }
  os << "bus " << num(bus->per_item_delay()) << "\n";
  os << "tasks " << app.task_count() << "\n";
  for (NodeId v = 0; v < app.task_count(); ++v) {
    const Task& t = app.task(v);
    os << "task " << t.name << " " << num(t.phasing) << " " << num(t.period);
    for (const double c : t.wcet_by_class) {
      os << " " << (c < 0.0 ? std::string("-") : num(c));
    }
    // The mandatory/optional split travels as an optional trailing token so
    // precise scenarios serialize byte-identically to the pre-split format.
    if (t.has_optional_part()) {
      os << " " << num(t.optional_fraction);
    }
    os << "\n";
  }
  os << "arcs " << app.graph().arc_count() << "\n";
  for (const Arc& a : app.graph().arcs()) {
    os << "arc " << a.from << " " << a.to << " " << num(a.message_items)
       << "\n";
  }
  for (const NodeId in : app.graph().input_nodes()) {
    os << "arrival " << in << " " << num(app.input_arrival(in)) << "\n";
  }
  for (const NodeId out : app.graph().output_nodes()) {
    if (app.has_ete_deadline(out)) {
      os << "deadline " << out << " " << num(app.ete_deadline(out)) << "\n";
    }
  }
  os << "end\n";
  return os.str();
}

Scenario parse_scenario(const std::string& text) {
  LineReader reader(text);

  auto header = reader.next();
  reader.expect(header, "dsslice-scenario", 1);
  if (reader.to_size(header[1]) != static_cast<std::size_t>(kFormatVersion)) {
    reader.fail("unsupported format version " + header[1]);
  }

  auto line = reader.next();
  reader.expect(line, "classes", 1);
  const std::size_t class_count = reader.to_count(line[1], "class");
  std::vector<ProcessorClass> classes;
  for (std::size_t k = 0; k < class_count; ++k) {
    line = reader.next();
    reader.expect(line, "class", 2);
    const double speed = reader.to_finite(line[2], "speed_factor");
    if (speed <= 0.0) {
      reader.fail("speed_factor must be positive, got: " + line[2]);
    }
    classes.push_back(ProcessorClass{line[1], speed});
  }

  line = reader.next();
  reader.expect(line, "processors", 1);
  const std::size_t proc_count = reader.to_count(line[1], "processor");
  std::vector<Processor> procs;
  for (std::size_t q = 0; q < proc_count; ++q) {
    line = reader.next();
    if (line.empty() || line[0] != "proc" ||
        (line.size() != 3 && line.size() != 5)) {
      reader.fail(
          "expected 'proc <name> <class_index> [<from> <until>]'");
    }
    const std::size_t klass = reader.to_size(line[2]);
    if (klass >= class_count) {
      reader.fail("processor class index out of range");
    }
    Processor p{line[1], static_cast<ProcessorClassId>(klass)};
    if (line.size() == 5) {
      p.available_from = reader.to_nonneg(line[3], "availability start");
      p.available_until = reader.to_time(line[4], "availability end");
      if (p.available_until < p.available_from) {
        reader.fail("availability window ends before it starts");
      }
    }
    procs.push_back(std::move(p));
  }

  line = reader.next();
  reader.expect(line, "bus", 1);
  const double bus_delay = reader.to_nonneg(line[1], "bus per-item delay");
  Platform platform(std::move(classes), std::move(procs),
                    std::make_shared<SharedBus>(bus_delay));

  line = reader.next();
  reader.expect(line, "tasks", 1);
  const std::size_t task_count = reader.to_count(line[1], "task");
  TaskGraph graph(task_count);
  std::vector<Task> tasks;
  for (std::size_t i = 0; i < task_count; ++i) {
    line = reader.next();
    if ((line.size() != 4 + class_count && line.size() != 5 + class_count) ||
        line[0] != "task") {
      reader.fail("expected 'task <name> <phasing> <period> <" +
                  std::to_string(class_count) +
                  " wcets> [<optional_fraction>]'");
    }
    Task t;
    t.name = line[1];
    t.phasing = reader.to_nonneg(line[2], "phasing");
    t.period = reader.to_nonneg(line[3], "period");
    for (std::size_t e = 0; e < class_count; ++e) {
      const std::string& tok = line[4 + e];
      t.wcet_by_class.push_back(tok == "-" ? kIneligibleWcet
                                           : reader.to_nonneg(tok, "wcet"));
    }
    if (line.size() == 5 + class_count) {
      const double f =
          reader.to_finite(line[4 + class_count], "optional_fraction");
      if (!valid_optional_fraction(f)) {
        reader.fail(
            "optional_fraction must be within [0, 1] — the optional part "
            "cannot be negative, NaN, or exceed the WCET, got: " +
            line[4 + class_count]);
      }
      t.optional_fraction = f;
    }
    tasks.push_back(std::move(t));
  }

  line = reader.next();
  reader.expect(line, "arcs", 1);
  const std::size_t arc_count = reader.to_count(line[1], "arc");
  for (std::size_t a = 0; a < arc_count; ++a) {
    line = reader.next();
    reader.expect(line, "arc", 3);
    const std::size_t from = reader.to_size(line[1]);
    const std::size_t to = reader.to_size(line[2]);
    if (from >= task_count || to >= task_count) {
      reader.fail("arc endpoint out of range");
    }
    graph.add_arc(static_cast<NodeId>(from), static_cast<NodeId>(to),
                  reader.to_nonneg(line[3], "message_items"));
  }

  Application app(std::move(graph), std::move(tasks));
  for (;;) {
    line = reader.next();
    if (line.size() == 1 && line[0] == "end") {
      break;
    }
    if (line.size() == 3 && line[0] == "arrival") {
      const std::size_t node = reader.to_size(line[1]);
      if (node >= task_count) {
        reader.fail("arrival node out of range");
      }
      app.set_input_arrival(static_cast<NodeId>(node),
                            reader.to_nonneg(line[2], "arrival"));
    } else if (line.size() == 3 && line[0] == "deadline") {
      const std::size_t node = reader.to_size(line[1]);
      if (node >= task_count) {
        reader.fail("deadline node out of range");
      }
      app.set_ete_deadline(static_cast<NodeId>(node),
                           reader.to_nonneg(line[2], "deadline"));
    } else {
      reader.fail("expected 'arrival', 'deadline' or 'end'");
    }
  }
  return Scenario{std::move(platform), std::move(app)};
}

void save_scenario(const Scenario& scenario, const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  DSSLICE_REQUIRE(static_cast<bool>(out), "cannot open " + path);
  out << serialize_scenario(scenario);
  DSSLICE_REQUIRE(static_cast<bool>(out), "failed to write " + path);
}

Scenario load_scenario(const std::string& path) {
  std::ifstream in(path);
  DSSLICE_REQUIRE(static_cast<bool>(in), "cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse_scenario(buffer.str());
}

std::string serialize_fault_spec(const FaultSpec& spec) {
  spec.validate();
  std::ostringstream os;
  os << "dsslice-faults " << kFormatVersion << "\n";
  os << "seed " << spec.seed << "\n";
  os << "overrun " << to_string(spec.scope) << " "
     << num(spec.overrun_factor) << " " << num(spec.overrun_addend) << " "
     << num(spec.overrun_probability) << " " << num(spec.hotspot_fraction)
     << "\n";
  os << "failures " << spec.failures.size() << "\n";
  for (const ProcessorFailure& f : spec.failures) {
    os << "failure " << f.processor << " " << num(f.at) << "\n";
  }
  os << "random-failure " << num(spec.random_failure_probability) << " "
     << num(spec.random_failure_window.arrival) << " "
     << num(spec.random_failure_window.deadline) << "\n";
  os << "spike " << num(spec.spike_probability) << " "
     << num(spec.spike_factor) << "\n";
  os << "end\n";
  return os.str();
}

FaultSpec parse_fault_spec(const std::string& text) {
  LineReader reader(text, "fault-spec");

  auto header = reader.next();
  reader.expect(header, "dsslice-faults", 1);
  if (reader.to_size(header[1]) != static_cast<std::size_t>(kFormatVersion)) {
    reader.fail("unsupported format version " + header[1]);
  }

  FaultSpec spec;

  auto line = reader.next();
  reader.expect(line, "seed", 1);
  spec.seed = reader.to_u64(line[1]);

  line = reader.next();
  reader.expect(line, "overrun", 5);
  if (line[1] == "uniform") {
    spec.scope = OverrunScope::kUniform;
  } else if (line[1] == "hot-spot") {
    spec.scope = OverrunScope::kHotSpot;
  } else {
    reader.fail("unknown overrun scope: " + line[1]);
  }
  spec.overrun_factor = reader.to_nonneg(line[2], "overrun_factor");
  spec.overrun_addend = reader.to_finite(line[3], "overrun_addend");
  spec.overrun_probability = reader.to_nonneg(line[4], "overrun_probability");
  spec.hotspot_fraction = reader.to_nonneg(line[5], "hotspot_fraction");

  line = reader.next();
  reader.expect(line, "failures", 1);
  const std::size_t failure_count = reader.to_count(line[1], "failure");
  for (std::size_t k = 0; k < failure_count; ++k) {
    line = reader.next();
    reader.expect(line, "failure", 2);
    spec.failures.push_back(ProcessorFailure{
        static_cast<ProcessorId>(reader.to_size(line[1])),
        reader.to_nonneg(line[2], "failure time")});
  }

  line = reader.next();
  reader.expect(line, "random-failure", 3);
  spec.random_failure_probability =
      reader.to_nonneg(line[1], "random_failure_probability");
  spec.random_failure_window.arrival =
      reader.to_nonneg(line[2], "random_failure_window start");
  spec.random_failure_window.deadline =
      reader.to_nonneg(line[3], "random_failure_window end");

  line = reader.next();
  reader.expect(line, "spike", 2);
  spec.spike_probability = reader.to_nonneg(line[1], "spike_probability");
  spec.spike_factor = reader.to_nonneg(line[2], "spike_factor");

  line = reader.next();
  if (line.size() != 1 || line[0] != "end") {
    reader.fail("expected 'end'");
  }

  spec.validate();
  return spec;
}

namespace {

/// Emits `<keyword> <k> <v...>` for one numeric vector of the trace.
template <typename T, typename Format>
void write_vector(std::ostringstream& os, const std::string& keyword,
                  const std::vector<T>& values, Format&& format) {
  os << keyword << " " << values.size();
  for (const T& v : values) {
    os << " " << format(v);
  }
  os << "\n";
}

}  // namespace

std::string serialize_fault_trace(const FaultTrace& trace) {
  std::ostringstream os;
  os << "dsslice-fault-trace " << kFormatVersion << "\n";
  const auto as_num = [](double v) { return num(v); };
  const auto as_id = [](std::size_t v) { return std::to_string(v); };
  write_vector(os, "wcet-factor", trace.conditions.wcet_factor, as_num);
  write_vector(os, "wcet-addend", trace.conditions.wcet_addend, as_num);
  write_vector(os, "arc-delay-factor", trace.conditions.arc_delay_factor,
               as_num);
  write_vector(os, "processor-down", trace.conditions.processor_down_at,
               as_num);
  write_vector(os, "overrun-tasks", trace.overrun_tasks,
               [](NodeId v) { return std::to_string(v); });
  os << "failures " << trace.failures.size() << "\n";
  for (const ProcessorFailure& f : trace.failures) {
    os << "failure " << f.processor << " " << num(f.at) << "\n";
  }
  write_vector(os, "spiked-arcs", trace.spiked_arcs, as_id);
  os << "end\n";
  return os.str();
}

FaultTrace parse_fault_trace(const std::string& text) {
  LineReader reader(text, "fault-trace");

  auto header = reader.next();
  reader.expect(header, "dsslice-fault-trace", 1);
  if (reader.to_size(header[1]) != static_cast<std::size_t>(kFormatVersion)) {
    reader.fail("unsupported format version " + header[1]);
  }

  FaultTrace trace;

  // Reads `<keyword> <k> <v...>` into `out` via per-token `convert`.
  const auto read_doubles = [&](const std::string& keyword,
                                std::vector<double>& out,
                                auto&& convert) {
    const auto line = reader.next();
    if (line.size() < 2 || line[0] != keyword) {
      reader.fail("expected '" + keyword + " <count> <values...>'");
    }
    const std::size_t count = reader.to_count(line[1], keyword);
    if (line.size() != 2 + count) {
      reader.fail(keyword + " declares " + line[1] + " value(s) but carries " +
                  std::to_string(line.size() - 2));
    }
    out.reserve(count);
    for (std::size_t k = 0; k < count; ++k) {
      out.push_back(convert(line[2 + k]));
    }
  };

  read_doubles("wcet-factor", trace.conditions.wcet_factor,
               [&](const std::string& tok) {
                 return reader.to_nonneg(tok, "wcet factor");
               });
  read_doubles("wcet-addend", trace.conditions.wcet_addend,
               [&](const std::string& tok) {
                 return reader.to_finite(tok, "wcet addend");
               });
  read_doubles("arc-delay-factor", trace.conditions.arc_delay_factor,
               [&](const std::string& tok) {
                 return reader.to_nonneg(tok, "arc delay factor");
               });
  // Halt instants may legitimately be infinite ("never halts").
  read_doubles("processor-down", trace.conditions.processor_down_at,
               [&](const std::string& tok) {
                 return reader.to_time(tok, "halt instant");
               });

  auto line = reader.next();
  if (line.size() < 2 || line[0] != "overrun-tasks") {
    reader.fail("expected 'overrun-tasks <count> <ids...>'");
  }
  std::size_t count = reader.to_count(line[1], "overrun task");
  if (line.size() != 2 + count) {
    reader.fail("overrun-tasks declares " + line[1] +
                " id(s) but carries " + std::to_string(line.size() - 2));
  }
  for (std::size_t k = 0; k < count; ++k) {
    trace.overrun_tasks.push_back(
        static_cast<NodeId>(reader.to_count(line[2 + k], "task id")));
  }

  line = reader.next();
  reader.expect(line, "failures", 1);
  const std::size_t failure_count = reader.to_count(line[1], "failure");
  for (std::size_t k = 0; k < failure_count; ++k) {
    line = reader.next();
    reader.expect(line, "failure", 2);
    trace.failures.push_back(ProcessorFailure{
        static_cast<ProcessorId>(reader.to_size(line[1])),
        reader.to_nonneg(line[2], "failure time")});
  }

  line = reader.next();
  if (line.size() < 2 || line[0] != "spiked-arcs") {
    reader.fail("expected 'spiked-arcs <count> <ids...>'");
  }
  count = reader.to_count(line[1], "spiked arc");
  if (line.size() != 2 + count) {
    reader.fail("spiked-arcs declares " + line[1] + " id(s) but carries " +
                std::to_string(line.size() - 2));
  }
  for (std::size_t k = 0; k < count; ++k) {
    trace.spiked_arcs.push_back(reader.to_count(line[2 + k], "arc id"));
  }

  line = reader.next();
  if (line.size() != 1 || line[0] != "end") {
    reader.fail("expected 'end'");
  }
  return trace;
}

}  // namespace dsslice
