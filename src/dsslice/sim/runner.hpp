// Batch experiment execution, parallelized across task sets.
//
// Each of the batch's graphs carries its own derived seed, so the outcome
// of graph k is independent of execution order: parallel and serial runs
// produce bit-identical statistics (asserted by the property tests).
#pragma once

#include <functional>

#include "dsslice/sim/experiment.hpp"
#include "dsslice/util/thread_pool.hpp"

namespace dsslice {

/// Overrides the parallel chunk size used by run_experiment's worker loop.
/// 0 (the default) restores the automatic heuristic
/// (count / (8 × threads), clamped to [1, 64]). The override is process-wide
/// and is intended for grain-sensitivity benchmarking (`--grain` in the
/// bench binaries); results are unaffected — graph k's outcome depends only
/// on its derived seed, never on which worker or chunk evaluated it.
void set_experiment_grain(std::size_t grain);

/// Current process-wide grain override (0 = automatic).
std::size_t experiment_grain();

/// Runs config.generator.graph_count task sets on the given pool and
/// aggregates their outcomes in index order (deterministic reduction).
ExperimentResult run_experiment(const ExperimentConfig& config,
                                ThreadPool& pool);

/// Convenience overload using the process-wide pool.
ExperimentResult run_experiment(const ExperimentConfig& config);

/// Strictly serial run (reference implementation for determinism tests).
ExperimentResult run_experiment_serial(const ExperimentConfig& config);

/// Streams every per-graph outcome (index order) to `sink` after the batch
/// completes — used by benches that need distributions, not just means.
ExperimentResult run_experiment_with_outcomes(
    const ExperimentConfig& config, ThreadPool& pool,
    const std::function<void(std::size_t, const GraphOutcome&)>& sink);

}  // namespace dsslice
