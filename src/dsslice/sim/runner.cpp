#include "dsslice/sim/runner.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <vector>

#include "dsslice/gen/rng.hpp"
#include "dsslice/obs/trace.hpp"

namespace dsslice {

namespace {

std::atomic<std::size_t> g_grain_override{0};

ExperimentResult run_batch(
    const ExperimentConfig& config, ThreadPool* pool,
    const std::function<void(std::size_t, const GraphOutcome&)>* sink) {
  DSSLICE_SPAN("sim.batch");
  config.generator.validate();
  const std::size_t count = config.generator.graph_count;
  DSSLICE_GAUGE("sim.batch.graphs", count);
  const auto t0 = std::chrono::steady_clock::now();

  std::vector<GraphOutcome> outcomes(count);
  // Each worker thread keeps its own ScenarioScratch so the slicing buffers
  // are recycled across every scenario it evaluates; chunking amortizes the
  // dispatch overhead while still load-balancing uneven graph costs.
  const auto evaluate_range = [&](std::size_t begin, std::size_t end) {
    thread_local ScenarioScratch scratch;
    for (std::size_t k = begin; k < end; ++k) {
      outcomes[k] = evaluate_scenario(
          config, derive_seed(config.generator.base_seed, k), &scratch);
    }
  };
  if (pool != nullptr) {
    const std::size_t override = experiment_grain();
    const std::size_t grain =
        override != 0 ? override
                      : std::clamp<std::size_t>(
                            count / (8 * std::max<std::size_t>(1, pool->size())),
                            1, 64);
    parallel_for(*pool, count, grain, evaluate_range);
  } else {
    evaluate_range(0, count);
  }

  ExperimentResult result;
  for (std::size_t k = 0; k < count; ++k) {
    result.add(outcomes[k]);
    if (sink != nullptr) {
      (*sink)(k, outcomes[k]);
    }
  }
  const auto t1 = std::chrono::steady_clock::now();
  result.wall_seconds = std::chrono::duration<double>(t1 - t0).count();
  DSSLICE_COUNT("sim.batches", 1);
  DSSLICE_COUNT("sim.scenarios", count);
  return result;
}

}  // namespace

void set_experiment_grain(std::size_t grain) {
  g_grain_override.store(grain, std::memory_order_relaxed);
}

std::size_t experiment_grain() {
  return g_grain_override.load(std::memory_order_relaxed);
}

ExperimentResult run_experiment(const ExperimentConfig& config,
                                ThreadPool& pool) {
  return run_batch(config, &pool, nullptr);
}

ExperimentResult run_experiment(const ExperimentConfig& config) {
  return run_experiment(config, global_pool());
}

ExperimentResult run_experiment_serial(const ExperimentConfig& config) {
  return run_batch(config, nullptr, nullptr);
}

ExperimentResult run_experiment_with_outcomes(
    const ExperimentConfig& config, ThreadPool& pool,
    const std::function<void(std::size_t, const GraphOutcome&)>& sink) {
  return run_batch(config, &pool, &sink);
}

}  // namespace dsslice
