#include "dsslice/sim/sweeps.hpp"

#include <cstdio>

#include "dsslice/util/check.hpp"
#include "dsslice/util/string_util.hpp"

namespace dsslice {

const Series& SweepResult::find(const std::string& name) const {
  for (const Series& s : series) {
    if (s.name == name) {
      return s;
    }
  }
  throw ConfigError("no series named " + name);
}

double SweepResult::scenarios_per_second() const {
  return wall_seconds > 0.0 ? static_cast<double>(scenarios) / wall_seconds
                            : 0.0;
}

SweepResult run_sweep(const std::string& x_label, std::vector<double> xs,
                      const std::vector<SeriesSpec>& specs, ThreadPool& pool,
                      bool verbose) {
  DSSLICE_REQUIRE(!xs.empty(), "sweep needs at least one x value");
  DSSLICE_REQUIRE(!specs.empty(), "sweep needs at least one series");
  SweepResult result;
  result.x_label = x_label;
  result.x = std::move(xs);
  result.series.reserve(specs.size());
  for (const SeriesSpec& spec : specs) {
    Series series;
    series.name = spec.name;
    for (const double x : result.x) {
      const ExperimentConfig config = spec.factory(x);
      const ExperimentResult r = run_experiment(config, pool);
      result.scenarios += config.generator.graph_count;
      result.wall_seconds += r.wall_seconds;
      series.success_ratio.push_back(r.success_ratio());
      series.ci95.push_back(r.success.ci95_halfwidth());
      series.mean_min_laxity.push_back(r.min_laxity.mean());
      if (verbose) {
        std::fprintf(stderr, "  %s %s=%g: %s\n", spec.name.c_str(),
                     x_label.c_str(), x,
                     format_percent(r.success_ratio(), 1).c_str());
      }
    }
    result.series.push_back(std::move(series));
  }
  return result;
}

std::vector<SeriesSpec> metric_series(const ExperimentConfig& base) {
  std::vector<SeriesSpec> specs;
  const DistributionTechnique techniques[] = {
      DistributionTechnique::kSlicingPure,
      DistributionTechnique::kSlicingNorm,
      DistributionTechnique::kSlicingAdaptG,
      DistributionTechnique::kSlicingAdaptL,
  };
  for (const DistributionTechnique t : techniques) {
    specs.push_back(SeriesSpec{
        to_string(metric_of(t)), [base, t](double) {
          ExperimentConfig c = base;
          c.technique = t;
          return c;
        }});
  }
  return specs;
}

std::vector<SeriesSpec> wcet_series(const ExperimentConfig& base) {
  std::vector<SeriesSpec> specs;
  const WcetEstimation strategies[] = {
      WcetEstimation::kAverage, WcetEstimation::kMax, WcetEstimation::kMin};
  for (const WcetEstimation s : strategies) {
    specs.push_back(SeriesSpec{to_string(s), [base, s](double) {
                                 ExperimentConfig c = base;
                                 c.wcet_strategy = s;
                                 return c;
                               }});
  }
  return specs;
}

namespace {

/// Rebinds each series factory so the swept x mutates the config.
std::vector<SeriesSpec> apply_x(
    const std::vector<SeriesSpec>& specs,
    const std::function<void(ExperimentConfig&, double)>& mutate) {
  std::vector<SeriesSpec> out;
  out.reserve(specs.size());
  for (const SeriesSpec& spec : specs) {
    out.push_back(SeriesSpec{spec.name, [spec, mutate](double x) {
                               ExperimentConfig c = spec.factory(x);
                               mutate(c, x);
                               return c;
                             }});
  }
  return out;
}

}  // namespace

SweepResult sweep_system_size(const ExperimentConfig& base,
                              const std::vector<std::size_t>& sizes,
                              ThreadPool& pool, bool verbose) {
  std::vector<double> xs;
  for (const std::size_t m : sizes) {
    xs.push_back(static_cast<double>(m));
  }
  const auto specs =
      apply_x(metric_series(base), [](ExperimentConfig& c, double x) {
        c.generator.platform.processor_count = static_cast<std::size_t>(x);
      });
  return run_sweep("m", std::move(xs), specs, pool, verbose);
}

SweepResult sweep_olr(const ExperimentConfig& base,
                      const std::vector<double>& olrs, ThreadPool& pool,
                      bool verbose) {
  const auto specs =
      apply_x(metric_series(base), [](ExperimentConfig& c, double x) {
        c.generator.workload.olr = x;
      });
  return run_sweep("OLR", olrs, specs, pool, verbose);
}

SweepResult sweep_etd(const ExperimentConfig& base,
                      const std::vector<double>& etds, ThreadPool& pool,
                      bool verbose) {
  const auto specs =
      apply_x(metric_series(base), [](ExperimentConfig& c, double x) {
        c.generator.workload.etd = x;
      });
  return run_sweep("ETD", etds, specs, pool, verbose);
}

SweepResult sweep_wcet_olr(const ExperimentConfig& base,
                           const std::vector<double>& olrs, ThreadPool& pool,
                           bool verbose) {
  const auto specs =
      apply_x(wcet_series(base), [](ExperimentConfig& c, double x) {
        c.generator.workload.olr = x;
      });
  return run_sweep("OLR", olrs, specs, pool, verbose);
}

SweepResult sweep_wcet_etd(const ExperimentConfig& base,
                           const std::vector<double>& etds, ThreadPool& pool,
                           bool verbose) {
  const auto specs =
      apply_x(wcet_series(base), [](ExperimentConfig& c, double x) {
        c.generator.workload.etd = x;
      });
  return run_sweep("ETD", etds, specs, pool, verbose);
}

}  // namespace dsslice
