// Parameter sweeps: the shape behind every figure in the paper.
//
// A sweep evaluates a family of experiment configurations over a shared
// x-axis (system size, OLR, ETD, ...) producing one success-ratio series
// per configuration family — exactly the data behind Figs. 2–6.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "dsslice/sim/experiment.hpp"
#include "dsslice/sim/runner.hpp"

namespace dsslice {

struct Series {
  std::string name;
  std::vector<double> success_ratio;   // one entry per x value
  std::vector<double> ci95;            // Wald 95% half-width per point
  std::vector<double> mean_min_laxity; // secondary measure per point
};

struct SweepResult {
  std::string x_label;
  std::vector<double> x;
  std::vector<Series> series;
  /// Aggregate throughput bookkeeping: scenario evaluations summed over
  /// every cell, and the wall time their batches reported. Filled by
  /// run_sweep (and the robustness sweep); benches report scenarios/sec.
  std::size_t scenarios = 0;
  double wall_seconds = 0.0;

  /// Series lookup by name; throws when absent.
  const Series& find(const std::string& name) const;

  /// Evaluated scenarios per second of batch wall time (0 when unknown).
  double scenarios_per_second() const;
};

/// Builds an experiment configuration for one (x, series) cell.
using ConfigFactory = std::function<ExperimentConfig(double x)>;

struct SeriesSpec {
  std::string name;
  ConfigFactory factory;
};

/// Runs |xs| × |specs| experiments on the pool. Cells run sequentially
/// (each is internally parallel over its 1024 graphs) to keep memory flat.
SweepResult run_sweep(const std::string& x_label, std::vector<double> xs,
                      const std::vector<SeriesSpec>& specs, ThreadPool& pool,
                      bool verbose = false);

// ---------------------------------------------------------------------
// Pre-packaged sweeps matching the paper's figures. Each takes the shared
// defaults (graph count, base seed) via `base` and applies the figure's
// sweep on top.
// ---------------------------------------------------------------------

/// Fig. 2: success ratio vs system size (m = sizes[i]) per metric.
SweepResult sweep_system_size(const ExperimentConfig& base,
                              const std::vector<std::size_t>& sizes,
                              ThreadPool& pool, bool verbose = false);

/// Fig. 3: success ratio vs OLR per metric (fixed system size).
SweepResult sweep_olr(const ExperimentConfig& base,
                      const std::vector<double>& olrs, ThreadPool& pool,
                      bool verbose = false);

/// Fig. 4: success ratio vs ETD per metric (fixed system size and OLR).
SweepResult sweep_etd(const ExperimentConfig& base,
                      const std::vector<double>& etds, ThreadPool& pool,
                      bool verbose = false);

/// Fig. 5: ADAPT-L success ratio vs OLR per WCET estimation strategy.
SweepResult sweep_wcet_olr(const ExperimentConfig& base,
                           const std::vector<double>& olrs, ThreadPool& pool,
                           bool verbose = false);

/// Fig. 6: ADAPT-L success ratio vs ETD per WCET estimation strategy.
SweepResult sweep_wcet_etd(const ExperimentConfig& base,
                           const std::vector<double>& etds, ThreadPool& pool,
                           bool verbose = false);

/// The four paper metrics as series specs over a shared base config.
std::vector<SeriesSpec> metric_series(const ExperimentConfig& base);

/// The three WCET strategies as series specs over a shared base config.
std::vector<SeriesSpec> wcet_series(const ExperimentConfig& base);

}  // namespace dsslice
