// Scenario serialization: a stable, human-readable text format for one
// {platform, application} pair, so that interesting task sets (e.g. the one
// graph a metric fails on) can be dumped, attached to a bug report, and
// reloaded bit-exactly.
//
// Format (line-oriented, '#' comments allowed):
//
//   dsslice-scenario 1
//   classes <k>
//   class <name> <speed_factor>            (k times)
//   processors <m>
//   proc <name> <class_index>              (m times)
//   bus <per_item_delay>
//   tasks <n>
//   task <name> <phasing> <period> <wcet...>   ('-' = ineligible)
//   arcs <a>
//   arc <from> <to> <message_items>        (a times)
//   arrival <node> <time>                  (per input task)
//   deadline <node> <time>                 (per output task with one)
//   end
//
// A `proc` line may carry an optional availability window
// (`proc <name> <class_index> <from> <until>`); it is emitted only when the
// processor is not always-on.
//
// Only shared-bus platforms are supported (the only kind the generator
// produces); serializing another interconnect throws.
//
// Fault specifications (robust/fault_model.hpp) use a sibling format:
//
//   dsslice-faults 1
//   seed <u64>
//   overrun <scope> <factor> <addend> <probability> <hotspot_fraction>
//   failures <k>
//   failure <processor> <time>             (k times)
//   random-failure <probability> <from> <until>
//   spike <probability> <factor>
//   end
//
// Both parsers reject NaN / infinite durations, negative times and counts
// beyond a sanity bound with a ConfigError naming the offending line.
#pragma once

#include <string>

#include "dsslice/gen/taskgraph_generator.hpp"
#include "dsslice/robust/fault_model.hpp"

namespace dsslice {

/// Serializes a scenario in the format above.
std::string serialize_scenario(const Scenario& scenario);

/// Parses a scenario; throws ConfigError with a line number on malformed
/// input.
Scenario parse_scenario(const std::string& text);

/// File helpers (throw ConfigError on I/O failure).
void save_scenario(const Scenario& scenario, const std::string& path);
Scenario load_scenario(const std::string& path);

/// Serializes a fault specification in the format above.
std::string serialize_fault_spec(const FaultSpec& spec);

/// Parses and validates a fault specification; throws ConfigError with a
/// line number on malformed input.
FaultSpec parse_fault_spec(const std::string& text);

}  // namespace dsslice
