// Scenario serialization: a stable, human-readable text format for one
// {platform, application} pair, so that interesting task sets (e.g. the one
// graph a metric fails on) can be dumped, attached to a bug report, and
// reloaded bit-exactly.
//
// Format (line-oriented, '#' comments allowed):
//
//   dsslice-scenario 1
//   classes <k>
//   class <name> <speed_factor>            (k times)
//   processors <m>
//   proc <name> <class_index>              (m times)
//   bus <per_item_delay>
//   tasks <n>
//   task <name> <phasing> <period> <wcet...> [<optional_fraction>]
//                                          ('-' = ineligible; the trailing
//                                          mandatory/optional split in [0, 1]
//                                          is emitted only when non-zero)
//   arcs <a>
//   arc <from> <to> <message_items>        (a times)
//   arrival <node> <time>                  (per input task)
//   deadline <node> <time>                 (per output task with one)
//   end
//
// A `proc` line may carry an optional availability window
// (`proc <name> <class_index> <from> <until>`); it is emitted only when the
// processor is not always-on.
//
// Only shared-bus platforms are supported (the only kind the generator
// produces); serializing another interconnect throws.
//
// Fault specifications (robust/fault_model.hpp) use a sibling format:
//
//   dsslice-faults 1
//   seed <u64>
//   overrun <scope> <factor> <addend> <probability> <hotspot_fraction>
//   failures <k>
//   failure <processor> <time>             (k times)
//   random-failure <probability> <from> <until>
//   spike <probability> <factor>
//   end
//
// A realized FaultTrace (one concrete run's injected conditions plus
// bookkeeping) has its own sibling format, so an interesting realization —
// e.g. the exact overrun pattern that broke a policy — can be attached to a
// bug report independently of the spec that produced it:
//
//   dsslice-fault-trace 1
//   wcet-factor <k> <v...>                 (k = 0 or task count)
//   wcet-addend <k> <v...>
//   arc-delay-factor <k> <v...>
//   processor-down <k> <t...>              ('inf' = never halts)
//   overrun-tasks <k> <id...>
//   failures <k>
//   failure <processor> <time>             (k times)
//   spiked-arcs <k> <id...>
//   end
//
// All parsers reject NaN / infinite durations (except the explicitly
// infinite halt instants above), negative times and counts beyond a sanity
// bound with a ConfigError naming the offending line.
#pragma once

#include <string>

#include "dsslice/gen/taskgraph_generator.hpp"
#include "dsslice/robust/fault_model.hpp"

namespace dsslice {

/// Serializes a scenario in the format above.
std::string serialize_scenario(const Scenario& scenario);

/// Parses a scenario; throws ConfigError with a line number on malformed
/// input.
Scenario parse_scenario(const std::string& text);

/// File helpers (throw ConfigError on I/O failure).
void save_scenario(const Scenario& scenario, const std::string& path);
Scenario load_scenario(const std::string& path);

/// Serializes a fault specification in the format above.
std::string serialize_fault_spec(const FaultSpec& spec);

/// Parses and validates a fault specification; throws ConfigError with a
/// line number on malformed input.
FaultSpec parse_fault_spec(const std::string& text);

/// Serializes a realized fault trace in the format above.
std::string serialize_fault_trace(const FaultTrace& trace);

/// Parses a fault trace; throws ConfigError with a line number on malformed
/// input (negative factors, NaN, inconsistent vector sizes).
FaultTrace parse_fault_trace(const std::string& text);

}  // namespace dsslice
