// CSV emission for sweep results and tables (machine-readable companions to
// the ASCII output; every bench writes one CSV next to its printed table).
#pragma once

#include <string>

#include "dsslice/report/table.hpp"

namespace dsslice {

struct SweepResult;

/// RFC-4180-style escaping (quotes fields containing separators/quotes).
std::string csv_escape(const std::string& field);

/// Serializes a table as CSV text.
std::string to_csv(const Table& table);

/// Serializes a sweep: header `x_label,<series...>`, one row per x value.
std::string to_csv(const SweepResult& sweep);

/// Writes text to a file, creating/truncating it; returns false on I/O
/// failure (benches treat CSV output as best-effort).
bool write_text_file(const std::string& path, const std::string& text);

}  // namespace dsslice
