// Schedule export: machine-readable renderings of a schedule plus its
// deadline assignment, for external visualization (e.g. a Gantt viewer or
// a notebook) and for diffing schedules in tests.
#pragma once

#include <string>

#include "dsslice/model/application.hpp"
#include "dsslice/model/platform.hpp"
#include "dsslice/model/task.hpp"
#include "dsslice/sched/schedule.hpp"

namespace dsslice {

/// CSV with one row per scheduled task:
/// task,name,processor,start,finish,arrival,deadline,laxity_used
/// (laxity_used = deadline − finish; negative means the deadline was
/// missed). Unplaced tasks are omitted. Rows are ordered by task id.
std::string schedule_to_csv(const Application& app,
                            const DeadlineAssignment& assignment,
                            const Schedule& schedule);

/// Compact JSON document:
/// {"makespan":..,"processors":m,"tasks":[{"id":..,"name":..,"proc":..,
///  "start":..,"finish":..,"arrival":..,"deadline":..},...]}
/// Names are escaped per RFC 8259 (quote/backslash/control characters).
std::string schedule_to_json(const Application& app,
                             const DeadlineAssignment& assignment,
                             const Schedule& schedule);

/// JSON string escaping helper (exposed for tests).
std::string json_escape(const std::string& s);

}  // namespace dsslice
