// Sweep-result presentation: aligned tables and a terminal line chart so a
// bench binary's stdout reads like the paper's figures.
#pragma once

#include <string>

#include "dsslice/sim/sweeps.hpp"

namespace dsslice {

/// The sweep as an aligned ASCII table: one row per x value, one success-
/// ratio column per series (with 95% CI when `with_ci`).
std::string format_sweep_table(const SweepResult& sweep, bool with_ci = true);

/// A crude terminal line chart of success ratio (y ∈ [0, 1]) vs x — one
/// letter per series. Meant for eyeballing figure shapes in bench output.
std::string format_sweep_chart(const SweepResult& sweep,
                               std::size_t height = 16,
                               std::size_t width = 64);

}  // namespace dsslice
