#include "dsslice/report/table.hpp"

#include <algorithm>
#include <sstream>

#include "dsslice/util/check.hpp"
#include "dsslice/util/string_util.hpp"

namespace dsslice {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  DSSLICE_REQUIRE(!headers_.empty(), "table needs at least one column");
}

void Table::add_row(std::vector<std::string> cells) {
  DSSLICE_REQUIRE(cells.size() == headers_.size(),
                  "row width does not match header");
  rows_.push_back(std::move(cells));
}

std::string Table::to_string(std::size_t indent) const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    width[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  const std::string pad(indent, ' ');
  std::ostringstream os;
  const auto emit_row = [&](const std::vector<std::string>& row) {
    os << pad;
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "" : "  ");
      // First column left-aligned (labels), the rest right-aligned (values).
      os << (c == 0 ? pad_right(row[c], width[c])
                    : pad_left(row[c], width[c]));
    }
    os << "\n";
  };
  emit_row(headers_);
  os << pad;
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << (c == 0 ? "" : "  ") << std::string(width[c], '-');
  }
  os << "\n";
  for (const auto& row : rows_) {
    emit_row(row);
  }
  return os.str();
}

}  // namespace dsslice
