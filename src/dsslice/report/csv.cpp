#include "dsslice/report/csv.hpp"

#include <fstream>
#include <sstream>

#include "dsslice/sim/sweeps.hpp"
#include "dsslice/util/string_util.hpp"

namespace dsslice {

std::string csv_escape(const std::string& field) {
  if (field.find_first_of(",\"\n") == std::string::npos) {
    return field;
  }
  std::string out = "\"";
  for (const char c : field) {
    if (c == '"') {
      out += "\"\"";
    } else {
      out += c;
    }
  }
  out += "\"";
  return out;
}

std::string to_csv(const Table& table) {
  std::ostringstream os;
  const auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "" : ",") << csv_escape(row[c]);
    }
    os << "\n";
  };
  emit(table.header());
  for (const auto& row : table.rows()) {
    emit(row);
  }
  return os.str();
}

std::string to_csv(const SweepResult& sweep) {
  std::ostringstream os;
  os << csv_escape(sweep.x_label);
  for (const Series& s : sweep.series) {
    os << "," << csv_escape(s.name);
  }
  os << "\n";
  for (std::size_t i = 0; i < sweep.x.size(); ++i) {
    os << format_fixed(sweep.x[i], 4);
    for (const Series& s : sweep.series) {
      os << "," << format_fixed(s.success_ratio[i], 6);
    }
    os << "\n";
  }
  return os.str();
}

bool write_text_file(const std::string& path, const std::string& text) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    return false;
  }
  out << text;
  return static_cast<bool>(out);
}

}  // namespace dsslice
