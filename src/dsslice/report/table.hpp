// Aligned ASCII table rendering for bench and example output.
#pragma once

#include <string>
#include <vector>

namespace dsslice {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);

  std::size_t column_count() const { return headers_.size(); }
  std::size_t row_count() const { return rows_.size(); }
  const std::vector<std::string>& header() const { return headers_; }
  const std::vector<std::vector<std::string>>& rows() const { return rows_; }

  /// Renders with column alignment, a header separator, and `indent`
  /// leading spaces per line.
  std::string to_string(std::size_t indent = 0) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace dsslice
