#include "dsslice/report/schedule_export.hpp"

#include <cstdio>
#include <sstream>

#include "dsslice/report/csv.hpp"
#include "dsslice/util/check.hpp"

namespace dsslice {

namespace {

std::string num(double x) {
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%.6g", x);
  return buffer;
}

}  // namespace

std::string schedule_to_csv(const Application& app,
                            const DeadlineAssignment& assignment,
                            const Schedule& schedule) {
  DSSLICE_REQUIRE(assignment.windows.size() == app.task_count(),
                  "assignment size mismatch");
  std::ostringstream os;
  os << "task,name,processor,start,finish,arrival,deadline,laxity_used\n";
  for (NodeId v = 0; v < app.task_count(); ++v) {
    if (!schedule.placed(v)) {
      continue;
    }
    const ScheduledTask& e = schedule.entry(v);
    const Window& w = assignment.windows[v];
    os << v << "," << csv_escape(app.task(v).name) << "," << e.processor
       << "," << num(e.start) << "," << num(e.finish) << ","
       << num(w.arrival) << "," << num(w.deadline) << ","
       << num(w.deadline - e.finish) << "\n";
  }
  return os.str();
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof buffer, "\\u%04x",
                        static_cast<unsigned>(c));
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string schedule_to_json(const Application& app,
                             const DeadlineAssignment& assignment,
                             const Schedule& schedule) {
  DSSLICE_REQUIRE(assignment.windows.size() == app.task_count(),
                  "assignment size mismatch");
  std::ostringstream os;
  os << "{\"makespan\":" << num(schedule.makespan())
     << ",\"processors\":" << schedule.processor_count() << ",\"tasks\":[";
  bool first = true;
  for (NodeId v = 0; v < app.task_count(); ++v) {
    if (!schedule.placed(v)) {
      continue;
    }
    const ScheduledTask& e = schedule.entry(v);
    const Window& w = assignment.windows[v];
    os << (first ? "" : ",") << "{\"id\":" << v << ",\"name\":\""
       << json_escape(app.task(v).name) << "\",\"proc\":" << e.processor
       << ",\"start\":" << num(e.start) << ",\"finish\":" << num(e.finish)
       << ",\"arrival\":" << num(w.arrival)
       << ",\"deadline\":" << num(w.deadline) << "}";
    first = false;
  }
  os << "]}";
  return os.str();
}

}  // namespace dsslice
