#include "dsslice/report/series.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "dsslice/report/table.hpp"
#include "dsslice/util/string_util.hpp"

namespace dsslice {

std::string format_sweep_table(const SweepResult& sweep, bool with_ci) {
  std::vector<std::string> headers{sweep.x_label};
  for (const Series& s : sweep.series) {
    headers.push_back(s.name);
  }
  Table table(std::move(headers));
  for (std::size_t i = 0; i < sweep.x.size(); ++i) {
    std::vector<std::string> row;
    row.push_back(format_fixed(sweep.x[i], 2));
    for (const Series& s : sweep.series) {
      std::string cell = format_percent(s.success_ratio[i], 1);
      if (with_ci) {
        cell += " ±" + format_percent(s.ci95[i], 1);
      }
      row.push_back(std::move(cell));
    }
    table.add_row(std::move(row));
  }
  return table.to_string();
}

std::string format_sweep_chart(const SweepResult& sweep, std::size_t height,
                               std::size_t width) {
  if (sweep.x.empty() || height < 2 || width < 8) {
    return "(no data)\n";
  }
  std::vector<std::string> grid(height, std::string(width, ' '));
  const double x_lo = sweep.x.front();
  const double x_hi = sweep.x.back();
  const double x_span = x_hi > x_lo ? x_hi - x_lo : 1.0;

  for (std::size_t si = 0; si < sweep.series.size(); ++si) {
    const Series& s = sweep.series[si];
    const char mark = static_cast<char>('A' + (si % 26));
    for (std::size_t i = 0; i < sweep.x.size(); ++i) {
      const double fx = (sweep.x[i] - x_lo) / x_span;
      const double fy = std::clamp(s.success_ratio[i], 0.0, 1.0);
      const auto col = static_cast<std::size_t>(
          std::lround(fx * static_cast<double>(width - 1)));
      const auto row_from_top = static_cast<std::size_t>(
          std::lround((1.0 - fy) * static_cast<double>(height - 1)));
      char& cell = grid[row_from_top][col];
      cell = (cell == ' ') ? mark : '*';  // '*' marks overlapping series
    }
  }

  std::ostringstream os;
  for (std::size_t r = 0; r < height; ++r) {
    const double y =
        1.0 - static_cast<double>(r) / static_cast<double>(height - 1);
    os << pad_left(format_fixed(y, 2), 5) << " |" << grid[r] << "\n";
  }
  os << "      +" << std::string(width, '-') << "\n";
  os << "       " << pad_right(format_fixed(x_lo, 2), width - 6)
     << format_fixed(x_hi, 2) << "  (" << sweep.x_label << ")\n";
  os << "      legend:";
  for (std::size_t si = 0; si < sweep.series.size(); ++si) {
    os << " " << static_cast<char>('A' + (si % 26)) << "="
       << sweep.series[si].name;
  }
  os << "  (*=overlap)\n";
  return os.str();
}

}  // namespace dsslice
