#include "dsslice/analysis/graph_analysis.hpp"

#include <atomic>
#include <deque>
#include <unordered_map>

#include "dsslice/obs/trace.hpp"
#include "dsslice/util/check.hpp"

namespace dsslice {

namespace {

std::atomic<std::uint64_t> g_construction_count{0};

}  // namespace

GraphAnalysis::GraphAnalysis(const TaskGraph& g)
    : n_(g.node_count()),
      words_((n_ + 63) / 64),
      tail_mask_(n_ % 64 == 0 ? ~std::uint64_t{0}
                              : (std::uint64_t{1} << (n_ % 64)) - 1),
      succ_off_(n_ + 1, 0),
      pred_off_(n_ + 1, 0),
      reach_(n_ * words_, 0),
      coreach_(n_ * words_, 0),
      descendants_(n_, 0),
      ancestors_(n_, 0),
      parallel_size_(n_, 0) {
  DSSLICE_SPAN("analysis.build");
  g_construction_count.fetch_add(1, std::memory_order_relaxed);
  DSSLICE_COUNT("analysis.builds", 1);

  // CSR adjacency in both directions, preserving TaskGraph's per-node order,
  // with the arc payloads (message sizes) and arc indices flattened
  // alongside so hot paths never fall back to per-arc linear searches.
  std::unordered_map<std::uint64_t, std::uint32_t> arc_index;
  arc_index.reserve(g.arc_count());
  const auto& arcs = g.arcs();
  for (std::size_t k = 0; k < arcs.size(); ++k) {
    arc_index.emplace(
        (static_cast<std::uint64_t>(arcs[k].from) << 32) | arcs[k].to,
        static_cast<std::uint32_t>(k));
  }
  succ_data_.reserve(g.arc_count());
  pred_data_.reserve(g.arc_count());
  succ_items_.reserve(g.arc_count());
  pred_items_.reserve(g.arc_count());
  pred_arc_.reserve(g.arc_count());
  for (NodeId v = 0; v < n_; ++v) {
    succ_off_[v] = succ_data_.size();
    const auto succ = g.successors(v);
    const auto items = g.successor_items(v);
    for (std::size_t k = 0; k < succ.size(); ++k) {
      succ_data_.push_back(succ[k]);
      succ_items_.push_back(items[k]);
    }
    pred_off_[v] = pred_data_.size();
    for (const NodeId u : g.predecessors(v)) {
      pred_data_.push_back(u);
      const auto it =
          arc_index.find((static_cast<std::uint64_t>(u) << 32) | v);
      DSSLICE_CHECK(it != arc_index.end(), "predecessor without an arc");
      pred_arc_.push_back(it->second);
      pred_items_.push_back(arcs[it->second].message_items);
    }
  }
  succ_off_[n_] = succ_data_.size();
  pred_off_[n_] = pred_data_.size();

  // Kahn topological order — same FIFO discipline (ascending seed scan,
  // deque) as algorithms::topological_order, so the orders are identical.
  {
    std::vector<std::size_t> in_deg(n_);
    std::deque<NodeId> ready;
    for (NodeId v = 0; v < n_; ++v) {
      in_deg[v] = predecessors(v).size();
      if (in_deg[v] == 0) {
        ready.push_back(v);
      }
    }
    topo_.reserve(n_);
    while (!ready.empty()) {
      const NodeId v = ready.front();
      ready.pop_front();
      topo_.push_back(v);
      for (const NodeId w : successors(v)) {
        if (--in_deg[w] == 0) {
          ready.push_back(w);
        }
      }
    }
    DSSLICE_REQUIRE(topo_.size() == n_,
                    "graph analysis requires an acyclic graph");
  }

  // Reverse sweep: reach_row(u) = ∪ over successors s of (reach_row(s) ∪ {s}).
  for (auto it = topo_.rbegin(); it != topo_.rend(); ++it) {
    const NodeId u = *it;
    std::uint64_t* ru = reach_.data() + u * words_;
    for (const NodeId s : successors(u)) {
      const std::uint64_t* rs = reach_.data() + s * words_;
      for (std::size_t k = 0; k < words_; ++k) {
        ru[k] |= rs[k];
      }
      ru[s / 64] |= std::uint64_t{1} << (s % 64);
    }
  }
  // Forward sweep: coreach_row(v) = ∪ over predecessors u of
  // (coreach_row(u) ∪ {u}).
  for (const NodeId v : topo_) {
    std::uint64_t* cv = coreach_.data() + v * words_;
    for (const NodeId u : predecessors(v)) {
      const std::uint64_t* cu = coreach_.data() + u * words_;
      for (std::size_t k = 0; k < words_; ++k) {
        cv[k] |= cu[k];
      }
      cv[u / 64] |= std::uint64_t{1} << (u % 64);
    }
  }

  for (NodeId v = 0; v < n_; ++v) {
    std::size_t desc = 0;
    std::size_t anc = 0;
    const std::uint64_t* rv = reach_.data() + v * words_;
    const std::uint64_t* cv = coreach_.data() + v * words_;
    for (std::size_t k = 0; k < words_; ++k) {
      desc += static_cast<std::size_t>(std::popcount(rv[k]));
      anc += static_cast<std::size_t>(std::popcount(cv[k]));
    }
    descendants_[v] = desc;
    ancestors_[v] = anc;
    parallel_size_[v] = n_ - 1 - desc - anc;
  }
}

std::vector<NodeId> GraphAnalysis::parallel_set(NodeId i) const {
  DSSLICE_REQUIRE(i < n_, "node id out of range");
  std::vector<NodeId> out;
  out.reserve(parallel_size_[i]);
  for_each_parallel(i, [&](NodeId j) { out.push_back(j); });
  return out;
}

std::uint64_t GraphAnalysis::construction_count() {
  return g_construction_count.load(std::memory_order_relaxed);
}

}  // namespace dsslice
