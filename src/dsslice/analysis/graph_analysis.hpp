// Shared graph-analysis cache for the slicing pipeline.
//
// Every consumer of an application's task graph — the four deadline metrics,
// the slicing main loop, jitter analysis, the baselines, and the recovery
// engine's re-slice path — needs the same handful of structural facts:
// a topological order, fast adjacency scans, reachability (who precedes
// whom under ≺*), and the parallel sets Ψ_i (§4.5). Historically each
// caller recomputed these from the TaskGraph on every invocation; a
// Monte-Carlo sweep therefore paid O(n²) closure construction per metric
// evaluation per scenario. GraphAnalysis computes everything once per graph
// and is memoized on Application (see Application::analysis()), so repeated
// metric/slicing/recovery calls on the same application are pure lookups.
//
// Contents:
//  * topological order (identical to algorithms::topological_order);
//  * CSR (compressed sparse row) adjacency in both directions — spans with
//    no per-call bounds checks, flat memory for cache-friendly scans;
//  * reachability rows: bit v of reach_row(u) ⇔ u ≺ v (strict);
//  * co-reachability rows: bit u of coreach_row(v) ⇔ u ≺ v (strict) —
//    the transpose of reach, built in one forward sweep;
//  * descendant / ancestor counts (popcounts of the two rows) and the
//    parallel-set sizes |Ψ_i| = n − 1 − |desc| − |anc|;
//  * allocation-free parallel-set iteration: Ψ_i is exactly the bitset
//    ~(reach_row(i) | coreach_row(i) | {i}), walked word by word.
//
// The analysis depends only on the graph *structure* (nodes and arcs), not
// on task parameters, arrivals, deadlines or WCETs — so it never needs
// invalidation for an Application whose graph is fixed at construction.
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "dsslice/graph/task_graph.hpp"

namespace dsslice {

class GraphAnalysis {
 public:
  /// Builds the full analysis of an acyclic graph: O(n·|A|/64 + n²/64).
  explicit GraphAnalysis(const TaskGraph& g);

  std::size_t node_count() const { return n_; }
  /// Number of 64-bit words per reachability row.
  std::size_t word_count() const { return words_; }

  /// Kahn topological order (bit-identical to algorithms::topological_order).
  std::span<const NodeId> topological_order() const { return topo_; }

  /// CSR adjacency: same contents/order as TaskGraph::successors /
  /// predecessors, but flat and without per-call node checks.
  std::span<const NodeId> successors(NodeId v) const {
    return {succ_data_.data() + succ_off_[v], succ_off_[v + 1] - succ_off_[v]};
  }
  std::span<const NodeId> predecessors(NodeId v) const {
    return {pred_data_.data() + pred_off_[v], pred_off_[v + 1] - pred_off_[v]};
  }

  /// Message sizes aligned with the CSR adjacency: successor_items(v)[k] is
  /// the payload of the arc v → successors(v)[k] (and symmetrically for
  /// predecessors). Replaces TaskGraph::message_items' per-call linear
  /// search on the scheduler hot paths.
  std::span<const double> successor_items(NodeId v) const {
    return {succ_items_.data() + succ_off_[v], succ_off_[v + 1] - succ_off_[v]};
  }
  std::span<const double> predecessor_items(NodeId v) const {
    return {pred_items_.data() + pred_off_[v], pred_off_[v + 1] - pred_off_[v]};
  }

  /// For each in-arc predecessors(v)[k], the index of that arc in
  /// TaskGraph::arcs() — lets per-arc side tables (e.g. injected message
  /// delay factors) be flattened onto the predecessor CSR once per run.
  std::span<const std::uint32_t> predecessor_arc_indices(NodeId v) const {
    return {pred_arc_.data() + pred_off_[v], pred_off_[v + 1] - pred_off_[v]};
  }

  /// Global base index of v's predecessor edges inside the flat CSR arrays
  /// (predecessors(v)[k] lives at flat index predecessor_offset(v) + k).
  std::size_t predecessor_offset(NodeId v) const { return pred_off_[v]; }
  /// Total number of arcs (== TaskGraph::arc_count()).
  std::size_t arc_count() const { return pred_data_.size(); }

  /// True iff v is reachable from u via one or more arcs (irreflexive).
  bool reaches(NodeId u, NodeId v) const {
    return (reach_[u * words_ + v / 64] >> (v % 64)) & 1;
  }
  /// True iff u and v are ordered by the precedence relation (either way).
  bool ordered(NodeId u, NodeId v) const {
    return reaches(u, v) || reaches(v, u);
  }

  /// Row u of the reachability matrix: bit v set ⇔ u ≺ v.
  std::span<const std::uint64_t> reach_row(NodeId u) const {
    return {reach_.data() + u * words_, words_};
  }
  /// Row v of the co-reachability matrix: bit u set ⇔ u ≺ v.
  std::span<const std::uint64_t> coreach_row(NodeId v) const {
    return {coreach_.data() + v * words_, words_};
  }

  /// Number of strict descendants (successors under ≺*).
  std::size_t descendant_count(NodeId i) const { return descendants_[i]; }
  /// Number of strict ancestors (predecessors under ≺*).
  std::size_t ancestor_count(NodeId i) const { return ancestors_[i]; }

  /// |Ψ_i|: tasks neither preceding nor succeeding i (excluding i).
  std::size_t parallel_set_size(NodeId i) const { return parallel_size_[i]; }
  /// |Ψ_i| for every node, as a borrowed span (no copy).
  std::span<const std::size_t> parallel_set_sizes() const {
    return parallel_size_;
  }

  /// Calls f(j) for every j ∈ Ψ_i in ascending order, without materializing
  /// the set: walks the words of ~(reach | coreach), masking out i itself
  /// and the tail bits beyond n.
  template <typename F>
  void for_each_parallel(NodeId i, F&& f) const {
    const std::uint64_t* r = reach_.data() + i * words_;
    const std::uint64_t* c = coreach_.data() + i * words_;
    const std::size_t self_word = i / 64;
    const std::uint64_t self_bit = std::uint64_t{1} << (i % 64);
    for (std::size_t k = 0; k < words_; ++k) {
      std::uint64_t m = ~(r[k] | c[k]);
      if (k == self_word) {
        m &= ~self_bit;
      }
      if (k + 1 == words_) {
        m &= tail_mask_;
      }
      while (m != 0) {
        const auto j = static_cast<NodeId>(
            k * 64 + static_cast<std::size_t>(std::countr_zero(m)));
        f(j);
        m &= m - 1;
      }
    }
  }

  /// Ψ_i materialized as a node list (ascending) — convenience for tests and
  /// cold paths; hot paths should use for_each_parallel.
  std::vector<NodeId> parallel_set(NodeId i) const;

  /// Process-wide count of GraphAnalysis constructions. Instrumentation for
  /// tests and the perf harness: lets callers assert that a hot loop runs
  /// zero closure/analysis builds (i.e. the cache actually hits).
  static std::uint64_t construction_count();

 private:
  std::size_t n_ = 0;
  std::size_t words_ = 0;
  std::uint64_t tail_mask_ = 0;  // valid bits of the last row word
  std::vector<NodeId> topo_;
  std::vector<std::size_t> succ_off_;
  std::vector<NodeId> succ_data_;
  std::vector<std::size_t> pred_off_;
  std::vector<NodeId> pred_data_;
  std::vector<double> succ_items_;
  std::vector<double> pred_items_;
  std::vector<std::uint32_t> pred_arc_;
  std::vector<std::uint64_t> reach_;
  std::vector<std::uint64_t> coreach_;
  std::vector<std::size_t> descendants_;
  std::vector<std::size_t> ancestors_;
  std::vector<std::size_t> parallel_size_;
};

}  // namespace dsslice
