#include "dsslice/graph/dot.hpp"

#include <sstream>

#include "dsslice/util/string_util.hpp"

namespace dsslice {

std::string to_dot(const TaskGraph& g, const DotOptions& options) {
  std::ostringstream os;
  os << "digraph " << options.graph_name << " {\n";
  os << "  rankdir=TB;\n  node [shape=box];\n";
  for (NodeId v = 0; v < g.node_count(); ++v) {
    const std::string label =
        options.node_label ? options.node_label(v) : "t" + std::to_string(v);
    os << "  n" << v << " [label=\"" << label << "\"];\n";
  }
  for (const Arc& a : g.arcs()) {
    os << "  n" << a.from << " -> n" << a.to;
    if (options.show_message_sizes && a.message_items > 0.0) {
      os << " [label=\"" << format_fixed(a.message_items, 0) << "\"]";
    }
    os << ";\n";
  }
  os << "}\n";
  return os.str();
}

}  // namespace dsslice
