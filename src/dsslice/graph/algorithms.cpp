#include "dsslice/graph/algorithms.hpp"

#include <algorithm>
#include <deque>

#include "dsslice/util/check.hpp"

namespace dsslice {

std::optional<std::vector<NodeId>> topological_order(const TaskGraph& g) {
  const std::size_t n = g.node_count();
  std::vector<std::size_t> in_deg(n);
  std::deque<NodeId> ready;
  for (NodeId v = 0; v < n; ++v) {
    in_deg[v] = g.in_degree(v);
    if (in_deg[v] == 0) {
      ready.push_back(v);
    }
  }
  std::vector<NodeId> order;
  order.reserve(n);
  while (!ready.empty()) {
    const NodeId v = ready.front();
    ready.pop_front();
    order.push_back(v);
    for (const NodeId w : g.successors(v)) {
      if (--in_deg[w] == 0) {
        ready.push_back(w);
      }
    }
  }
  if (order.size() != n) {
    return std::nullopt;  // cycle
  }
  return order;
}

bool is_dag(const TaskGraph& g) { return topological_order(g).has_value(); }

std::vector<double> static_levels(const TaskGraph& g,
                                  std::span<const double> weight) {
  DSSLICE_REQUIRE(weight.size() == g.node_count(),
                  "weight vector size mismatch");
  const auto order = topological_order(g);
  DSSLICE_REQUIRE(order.has_value(), "static levels require an acyclic graph");
  std::vector<double> sl(g.node_count(), 0.0);
  // Reverse topological order: successors are finalized before their preds.
  for (auto it = order->rbegin(); it != order->rend(); ++it) {
    const NodeId v = *it;
    double best_succ = 0.0;
    for (const NodeId w : g.successors(v)) {
      best_succ = std::max(best_succ, sl[w]);
    }
    sl[v] = weight[v] + best_succ;
  }
  return sl;
}

std::vector<double> entry_path_lengths(const TaskGraph& g,
                                       std::span<const double> weight) {
  DSSLICE_REQUIRE(weight.size() == g.node_count(),
                  "weight vector size mismatch");
  const auto order = topological_order(g);
  DSSLICE_REQUIRE(order.has_value(),
                  "entry path lengths require an acyclic graph");
  std::vector<double> epl(g.node_count(), 0.0);
  for (const NodeId v : *order) {
    double best_pred = 0.0;
    for (const NodeId u : g.predecessors(v)) {
      best_pred = std::max(best_pred, epl[u]);
    }
    epl[v] = weight[v] + best_pred;
  }
  return epl;
}

double critical_path_length(const TaskGraph& g,
                            std::span<const double> weight) {
  if (g.node_count() == 0) {
    return 0.0;
  }
  const auto sl = static_levels(g, weight);
  return *std::max_element(sl.begin(), sl.end());
}

double average_parallelism(const TaskGraph& g,
                           std::span<const double> weight) {
  const double cp = critical_path_length(g, weight);
  if (cp <= 0.0) {
    return 0.0;
  }
  double total = 0.0;
  for (const double w : weight) {
    total += w;
  }
  return total / cp;
}

std::vector<std::size_t> node_levels(const TaskGraph& g) {
  const auto order = topological_order(g);
  DSSLICE_REQUIRE(order.has_value(), "node levels require an acyclic graph");
  std::vector<std::size_t> level(g.node_count(), 0);
  for (const NodeId v : *order) {
    for (const NodeId u : g.predecessors(v)) {
      level[v] = std::max(level[v], level[u] + 1);
    }
  }
  return level;
}

std::size_t graph_depth(const TaskGraph& g) {
  if (g.node_count() == 0) {
    return 0;
  }
  const auto levels = node_levels(g);
  return 1 + *std::max_element(levels.begin(), levels.end());
}

namespace {

void enumerate_from(const TaskGraph& g, NodeId v, std::vector<NodeId>& stack,
                    std::vector<std::vector<NodeId>>& out,
                    std::size_t max_paths) {
  if (out.size() >= max_paths) {
    return;
  }
  stack.push_back(v);
  if (g.is_output(v)) {
    out.push_back(stack);
  } else {
    for (const NodeId w : g.successors(v)) {
      enumerate_from(g, w, stack, out, max_paths);
      if (out.size() >= max_paths) {
        break;
      }
    }
  }
  stack.pop_back();
}

}  // namespace

std::vector<std::vector<NodeId>> enumerate_paths(const TaskGraph& g,
                                                 std::size_t max_paths) {
  DSSLICE_REQUIRE(is_dag(g), "path enumeration requires an acyclic graph");
  std::vector<std::vector<NodeId>> out;
  std::vector<NodeId> stack;
  for (const NodeId s : g.input_nodes()) {
    enumerate_from(g, s, stack, out, max_paths);
    if (out.size() >= max_paths) {
      break;
    }
  }
  return out;
}

bool reachable(const TaskGraph& g, NodeId from, NodeId to) {
  if (from == to) {
    return true;
  }
  std::vector<bool> seen(g.node_count(), false);
  std::deque<NodeId> queue{from};
  seen[from] = true;
  while (!queue.empty()) {
    const NodeId v = queue.front();
    queue.pop_front();
    for (const NodeId w : g.successors(v)) {
      if (w == to) {
        return true;
      }
      if (!seen[w]) {
        seen[w] = true;
        queue.push_back(w);
      }
    }
  }
  return false;
}

}  // namespace dsslice
