#include "dsslice/graph/closure.hpp"

#include <bit>

#include "dsslice/graph/algorithms.hpp"
#include "dsslice/util/check.hpp"

namespace dsslice {

TransitiveClosure::TransitiveClosure(const TaskGraph& g)
    : n_(g.node_count()),
      reach_(n_ * ((n_ + 63) / 64), 0),
      descendants_(n_, 0),
      ancestors_(n_, 0) {
  const auto order = topological_order(g);
  DSSLICE_REQUIRE(order.has_value(),
                  "transitive closure requires an acyclic graph");
  const std::size_t w = words();
  // Reverse topological sweep: row(u) = union over successors s of
  // (row(s) | {s}). Successor rows are complete when u is processed.
  for (auto it = order->rbegin(); it != order->rend(); ++it) {
    const NodeId u = *it;
    std::uint64_t* ru = row(u);
    for (const NodeId s : g.successors(u)) {
      const std::uint64_t* rs = row(s);
      for (std::size_t k = 0; k < w; ++k) {
        ru[k] |= rs[k];
      }
      ru[s / 64] |= (std::uint64_t{1} << (s % 64));
    }
  }
  for (NodeId u = 0; u < n_; ++u) {
    const std::uint64_t* ru = row(u);
    std::size_t count = 0;
    for (std::size_t k = 0; k < w; ++k) {
      count += static_cast<std::size_t>(std::popcount(ru[k]));
    }
    descendants_[u] = count;
  }
  for (NodeId u = 0; u < n_; ++u) {
    for (NodeId v = 0; v < n_; ++v) {
      if (reaches(u, v)) {
        ++ancestors_[v];
      }
    }
  }
}

bool TransitiveClosure::reaches(NodeId u, NodeId v) const {
  DSSLICE_REQUIRE(u < n_ && v < n_, "node id out of range");
  return (row(u)[v / 64] >> (v % 64)) & 1;
}

bool TransitiveClosure::ordered(NodeId u, NodeId v) const {
  return reaches(u, v) || reaches(v, u);
}

std::size_t TransitiveClosure::parallel_set_size(NodeId i) const {
  DSSLICE_REQUIRE(i < n_, "node id out of range");
  return n_ - 1 - descendants_[i] - ancestors_[i];
}

std::vector<NodeId> TransitiveClosure::parallel_set(NodeId i) const {
  DSSLICE_REQUIRE(i < n_, "node id out of range");
  std::vector<NodeId> out;
  out.reserve(parallel_set_size(i));
  for (NodeId v = 0; v < n_; ++v) {
    if (v != i && !ordered(i, v)) {
      out.push_back(v);
    }
  }
  return out;
}

std::size_t TransitiveClosure::descendant_count(NodeId i) const {
  DSSLICE_REQUIRE(i < n_, "node id out of range");
  return descendants_[i];
}

std::size_t TransitiveClosure::ancestor_count(NodeId i) const {
  DSSLICE_REQUIRE(i < n_, "node id out of range");
  return ancestors_[i];
}

std::vector<std::size_t> TransitiveClosure::all_parallel_set_sizes() const {
  std::vector<std::size_t> out(n_);
  for (NodeId i = 0; i < n_; ++i) {
    out[i] = parallel_set_size(i);
  }
  return out;
}

}  // namespace dsslice
