#include "dsslice/graph/closure.hpp"

#include "dsslice/util/check.hpp"

namespace dsslice {

TransitiveClosure::TransitiveClosure(const TaskGraph& g) : analysis_(g) {}

bool TransitiveClosure::reaches(NodeId u, NodeId v) const {
  DSSLICE_REQUIRE(u < node_count() && v < node_count(),
                  "node id out of range");
  return analysis_.reaches(u, v);
}

bool TransitiveClosure::ordered(NodeId u, NodeId v) const {
  DSSLICE_REQUIRE(u < node_count() && v < node_count(),
                  "node id out of range");
  return analysis_.ordered(u, v);
}

std::size_t TransitiveClosure::parallel_set_size(NodeId i) const {
  DSSLICE_REQUIRE(i < node_count(), "node id out of range");
  return analysis_.parallel_set_size(i);
}

std::vector<NodeId> TransitiveClosure::parallel_set(NodeId i) const {
  DSSLICE_REQUIRE(i < node_count(), "node id out of range");
  return analysis_.parallel_set(i);
}

std::size_t TransitiveClosure::descendant_count(NodeId i) const {
  DSSLICE_REQUIRE(i < node_count(), "node id out of range");
  return analysis_.descendant_count(i);
}

std::size_t TransitiveClosure::ancestor_count(NodeId i) const {
  DSSLICE_REQUIRE(i < node_count(), "node id out of range");
  return analysis_.ancestor_count(i);
}

std::vector<std::size_t> TransitiveClosure::all_parallel_set_sizes() const {
  const auto sizes = analysis_.parallel_set_sizes();
  return {sizes.begin(), sizes.end()};
}

}  // namespace dsslice
