// Directed acyclic task graph G = (N, A) (§3.2).
//
// Nodes represent tasks (payload lives in model::Application); arcs represent
// precedence constraints annotated with a message size (data items
// transferred from producer to consumer — zero for pure control precedence).
//
// Storage is adjacency lists in both directions for O(out-degree) /
// O(in-degree) neighbourhood scans, which the slicing algorithm's
// breadth-first passes rely on.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

namespace dsslice {

using NodeId = std::uint32_t;

/// An arc (from → to) with its message size in data items.
struct Arc {
  NodeId from = 0;
  NodeId to = 0;
  double message_items = 0.0;

  bool operator==(const Arc&) const = default;
};

class TaskGraph {
 public:
  TaskGraph() = default;
  /// Creates a graph with `n` isolated nodes.
  explicit TaskGraph(std::size_t n);

  /// Appends a node; returns its id.
  NodeId add_node();

  /// Adds the arc from → to. Parallel arcs and self-loops are rejected;
  /// cycles are detected lazily by algorithms::topological_order.
  void add_arc(NodeId from, NodeId to, double message_items = 0.0);

  /// Resets to `n` isolated nodes. Equivalent to *this = TaskGraph(n) except
  /// that previously allocated adjacency storage is kept, so rebuilding a
  /// graph of similar shape performs no heap allocation (batch-generation
  /// hot path).
  void reset(std::size_t n);

  /// Rewrites the message size of every arc, `items` parallel to arcs()
  /// (insertion order). Lets the generator draw the layered structure and
  /// annotate message sizes in two passes over a single graph instead of
  /// rebuilding the adjacency. Allocation-free.
  void assign_message_items(std::span<const double> items);

  std::size_t node_count() const { return succ_.size(); }
  std::size_t arc_count() const { return arcs_.size(); }

  std::span<const NodeId> successors(NodeId v) const;
  std::span<const NodeId> predecessors(NodeId v) const;

  std::size_t out_degree(NodeId v) const { return successors(v).size(); }
  std::size_t in_degree(NodeId v) const { return predecessors(v).size(); }

  bool has_arc(NodeId from, NodeId to) const;

  /// Message size on an existing arc; nullopt when the arc does not exist.
  std::optional<double> message_items(NodeId from, NodeId to) const;

  /// Message sizes of v's out-arcs, parallel to successors(v) — O(1) access
  /// for consumers that walk the adjacency (no per-arc linear search).
  std::span<const double> successor_items(NodeId v) const;

  /// All arcs in insertion order.
  const std::vector<Arc>& arcs() const { return arcs_; }

  /// Input tasks (no predecessors) in ascending node order.
  std::vector<NodeId> input_nodes() const;
  /// Output tasks (no successors) in ascending node order.
  std::vector<NodeId> output_nodes() const;

  bool is_input(NodeId v) const { return in_degree(v) == 0; }
  bool is_output(NodeId v) const { return out_degree(v) == 0; }

 private:
  void require_node(NodeId v) const;

  std::vector<std::vector<NodeId>> succ_;
  std::vector<std::vector<NodeId>> pred_;
  // Message size per out-arc, parallel to succ_ entries.
  std::vector<std::vector<double>> succ_items_;
  std::vector<Arc> arcs_;
};

}  // namespace dsslice
