// Graphviz DOT export for task graphs — debugging and documentation aid.
#pragma once

#include <functional>
#include <string>

#include "dsslice/graph/task_graph.hpp"

namespace dsslice {

/// Options controlling DOT rendering.
struct DotOptions {
  /// Per-node label; defaults to "t<i>" when empty.
  std::function<std::string(NodeId)> node_label;
  /// Whether to annotate arcs with their message sizes.
  bool show_message_sizes = true;
  /// Graph name emitted in the DOT header.
  std::string graph_name = "taskgraph";
};

/// Renders the graph in Graphviz DOT syntax.
std::string to_dot(const TaskGraph& g, const DotOptions& options = {});

}  // namespace dsslice
