// Graph algorithms used by deadline distribution and the workload generator:
// topological ordering, weighted longest paths (static levels, §3.2),
// level/depth structure, and bounded path enumeration for test oracles.
#pragma once

#include <cstddef>
#include <optional>
#include <span>
#include <vector>

#include "dsslice/graph/task_graph.hpp"
#include "dsslice/model/time.hpp"

namespace dsslice {

/// Kahn topological order; nullopt when the graph contains a cycle.
std::optional<std::vector<NodeId>> topological_order(const TaskGraph& g);

/// True iff the graph is acyclic.
bool is_dag(const TaskGraph& g);

/// Static level SL(τ_i) (§3.2): length of the longest chain starting at i
/// and ending at an output task, measured as the sum of node weights of all
/// chain members (including i itself). `weight[i]` is typically the
/// estimated WCET c̄_i.
std::vector<double> static_levels(const TaskGraph& g,
                                  std::span<const double> weight);

/// Longest entry path weight per node: max over chains from any input task
/// up to and including i. Together with static_levels this brackets each
/// task's position on its heaviest path.
std::vector<double> entry_path_lengths(const TaskGraph& g,
                                       std::span<const double> weight);

/// max_i SL(i): the weighted critical-path length of the whole graph.
double critical_path_length(const TaskGraph& g, std::span<const double> weight);

/// Average task-graph parallelism ξ = Σ weight / critical-path length (Eq. 7).
double average_parallelism(const TaskGraph& g, std::span<const double> weight);

/// Topological depth of each node: inputs at level 0, otherwise
/// 1 + max(level of predecessors).
std::vector<std::size_t> node_levels(const TaskGraph& g);

/// Number of levels = 1 + max node level (0 for the empty graph).
std::size_t graph_depth(const TaskGraph& g);

/// Enumerates complete input→output paths (each as a node sequence), up to
/// `max_paths` (guard against exponential blowup). Intended for tests and
/// small examples, not the production slicing path search.
std::vector<std::vector<NodeId>> enumerate_paths(const TaskGraph& g,
                                                 std::size_t max_paths);

/// True when `to` is reachable from `from` by a directed path (BFS).
bool reachable(const TaskGraph& g, NodeId from, NodeId to);

}  // namespace dsslice
