// Transitive closure G* and parallel sets Ψ_i (§4.5).
//
// The ADAPT-L metric needs, for every task, the set of tasks that can
// potentially execute in parallel with it: those that are neither its
// predecessors nor its successors under the transitive precedence relation.
// Since the analysis-cache refactor this class is a thin façade over
// analysis::GraphAnalysis, which materializes the closure as packed 64-bit
// row bitsets in both directions (reach + co-reach); ancestor counts come
// from co-reachability popcounts instead of the former O(n²) pairwise
// reaches() loop. Hot paths should prefer Application::analysis() directly —
// it is memoized per application — and keep this class for standalone
// one-shot queries on a bare TaskGraph.
#pragma once

#include <cstddef>
#include <vector>

#include "dsslice/analysis/graph_analysis.hpp"
#include "dsslice/graph/task_graph.hpp"

namespace dsslice {

class TransitiveClosure {
 public:
  /// Builds the closure of an acyclic graph.
  explicit TransitiveClosure(const TaskGraph& g);

  std::size_t node_count() const { return analysis_.node_count(); }

  /// True iff v is reachable from u via one or more arcs (irreflexive:
  /// reaches(v, v) is false).
  bool reaches(NodeId u, NodeId v) const;

  /// True iff u and v are ordered by the precedence relation (either way).
  bool ordered(NodeId u, NodeId v) const;

  /// |Ψ_i|: number of tasks neither preceding nor succeeding i (excluding i).
  std::size_t parallel_set_size(NodeId i) const;

  /// Ψ_i as an explicit node list (ascending order).
  std::vector<NodeId> parallel_set(NodeId i) const;

  /// Number of strict descendants (successors under ≺).
  std::size_t descendant_count(NodeId i) const;
  /// Number of strict ancestors (predecessors under ≺).
  std::size_t ancestor_count(NodeId i) const;

  /// Convenience: |Ψ_i| for every node.
  std::vector<std::size_t> all_parallel_set_sizes() const;

  /// The underlying shared analysis (topological order, CSR adjacency,
  /// reach/co-reach bitsets).
  const GraphAnalysis& analysis() const { return analysis_; }

 private:
  GraphAnalysis analysis_;
};

}  // namespace dsslice
