// Transitive closure G* and parallel sets Ψ_i (§4.5).
//
// The ADAPT-L metric needs, for every task, the set of tasks that can
// potentially execute in parallel with it: those that are neither its
// predecessors nor its successors under the transitive precedence relation.
// We materialize the closure as packed 64-bit row bitsets; the DP over a
// topological order gives O(n·|A|/64 + n²/64) construction — comfortably
// inside the paper's quoted O(n³) budget and cache-friendly for n ≤ a few
// thousand.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "dsslice/graph/task_graph.hpp"

namespace dsslice {

class TransitiveClosure {
 public:
  /// Builds the closure of an acyclic graph.
  explicit TransitiveClosure(const TaskGraph& g);

  std::size_t node_count() const { return n_; }

  /// True iff v is reachable from u via one or more arcs (irreflexive:
  /// reaches(v, v) is false).
  bool reaches(NodeId u, NodeId v) const;

  /// True iff u and v are ordered by the precedence relation (either way).
  bool ordered(NodeId u, NodeId v) const;

  /// |Ψ_i|: number of tasks neither preceding nor succeeding i (excluding i).
  std::size_t parallel_set_size(NodeId i) const;

  /// Ψ_i as an explicit node list (ascending order).
  std::vector<NodeId> parallel_set(NodeId i) const;

  /// Number of strict descendants (successors under ≺).
  std::size_t descendant_count(NodeId i) const;
  /// Number of strict ancestors (predecessors under ≺).
  std::size_t ancestor_count(NodeId i) const;

  /// Convenience: |Ψ_i| for every node.
  std::vector<std::size_t> all_parallel_set_sizes() const;

 private:
  std::size_t words() const { return (n_ + 63) / 64; }
  const std::uint64_t* row(NodeId u) const { return &reach_[u * words()]; }
  std::uint64_t* row(NodeId u) { return &reach_[u * words()]; }

  std::size_t n_ = 0;
  // reach_[u] row: bit v set iff u ≺ v (strict reachability).
  std::vector<std::uint64_t> reach_;
  std::vector<std::size_t> descendants_;
  std::vector<std::size_t> ancestors_;
};

}  // namespace dsslice
