#include "dsslice/graph/task_graph.hpp"

#include <algorithm>

#include "dsslice/util/check.hpp"

namespace dsslice {

TaskGraph::TaskGraph(std::size_t n)
    : succ_(n), pred_(n), succ_items_(n) {}

NodeId TaskGraph::add_node() {
  succ_.emplace_back();
  pred_.emplace_back();
  succ_items_.emplace_back();
  return static_cast<NodeId>(succ_.size() - 1);
}

void TaskGraph::require_node(NodeId v) const {
  DSSLICE_REQUIRE(v < succ_.size(), "node id out of range");
}

void TaskGraph::add_arc(NodeId from, NodeId to, double message_items) {
  require_node(from);
  require_node(to);
  DSSLICE_REQUIRE(from != to, "self-loop arcs are not allowed");
  DSSLICE_REQUIRE(message_items >= 0.0, "negative message size");
  DSSLICE_REQUIRE(!has_arc(from, to), "parallel arcs are not allowed");
  succ_[from].push_back(to);
  succ_items_[from].push_back(message_items);
  pred_[to].push_back(from);
  arcs_.push_back(Arc{from, to, message_items});
}

void TaskGraph::reset(std::size_t n) {
  const std::size_t keep = std::min(n, succ_.size());
  for (std::size_t v = 0; v < keep; ++v) {
    succ_[v].clear();
    pred_[v].clear();
    succ_items_[v].clear();
  }
  succ_.resize(n);
  pred_.resize(n);
  succ_items_.resize(n);
  arcs_.clear();
}

void TaskGraph::assign_message_items(std::span<const double> items) {
  DSSLICE_REQUIRE(items.size() == arcs_.size(),
                  "one message size per arc required");
  // succ_[from] lists arcs in insertion order, so re-pushing in global
  // insertion order reproduces the parallel layout exactly. The entries were
  // pushed by add_arc, so every inner vector already has the capacity.
  for (auto& slots : succ_items_) {
    slots.clear();
  }
  for (std::size_t k = 0; k < arcs_.size(); ++k) {
    DSSLICE_REQUIRE(items[k] >= 0.0, "negative message size");
    arcs_[k].message_items = items[k];
    succ_items_[arcs_[k].from].push_back(items[k]);
  }
}

std::span<const NodeId> TaskGraph::successors(NodeId v) const {
  require_node(v);
  return succ_[v];
}

std::span<const NodeId> TaskGraph::predecessors(NodeId v) const {
  require_node(v);
  return pred_[v];
}

std::span<const double> TaskGraph::successor_items(NodeId v) const {
  require_node(v);
  return succ_items_[v];
}

bool TaskGraph::has_arc(NodeId from, NodeId to) const {
  require_node(from);
  require_node(to);
  const auto& out = succ_[from];
  return std::find(out.begin(), out.end(), to) != out.end();
}

std::optional<double> TaskGraph::message_items(NodeId from, NodeId to) const {
  require_node(from);
  require_node(to);
  const auto& out = succ_[from];
  for (std::size_t i = 0; i < out.size(); ++i) {
    if (out[i] == to) {
      return succ_items_[from][i];
    }
  }
  return std::nullopt;
}

std::vector<NodeId> TaskGraph::input_nodes() const {
  std::vector<NodeId> out;
  for (NodeId v = 0; v < node_count(); ++v) {
    if (pred_[v].empty()) {
      out.push_back(v);
    }
  }
  return out;
}

std::vector<NodeId> TaskGraph::output_nodes() const {
  std::vector<NodeId> out;
  for (NodeId v = 0; v < node_count(); ++v) {
    if (succ_[v].empty()) {
      out.push_back(v);
    }
  }
  return out;
}

}  // namespace dsslice
