#include "dsslice/baselines/kao_garcia_molina.hpp"

#include <algorithm>

#include "dsslice/analysis/graph_analysis.hpp"
#include "dsslice/util/check.hpp"

namespace dsslice {

std::string to_string(KaoStrategy strategy) {
  switch (strategy) {
    case KaoStrategy::kUltimateDeadline:
      return "UD";
    case KaoStrategy::kEffectiveDeadline:
      return "ED";
    case KaoStrategy::kEqualSlack:
      return "EQS";
    case KaoStrategy::kEqualFlexibility:
      return "EQF";
  }
  return "unknown";
}

DeadlineAssignment distribute_kao(const Application& app,
                                  std::span<const double> est_wcet,
                                  KaoStrategy strategy) {
  const TaskGraph& g = app.graph();
  const std::size_t n = g.node_count();
  DSSLICE_REQUIRE(est_wcet.size() == n, "estimate vector size mismatch");
  const GraphAnalysis& analysis = app.analysis();
  const std::span<const NodeId> topo = analysis.topological_order();

  // Forward pass: communication-free earliest start EST_i.
  std::vector<Time> est(n, kTimeZero);
  for (const NodeId v : topo) {
    Time bound = g.is_input(v) ? app.input_arrival(v) : kTimeZero;
    for (const NodeId u : analysis.predecessors(v)) {
      bound = std::max(bound, est[u] + est_wcet[u]);
    }
    est[v] = bound;
  }

  // Backward passes: governing E-T-E deadline (min over reachable outputs),
  // static level SL_i, and hop count of the chain realizing SL_i.
  std::vector<Time> governing(n, kTimeInfinity);
  std::vector<double> level(n, 0.0);
  std::vector<std::size_t> hops(n, 1);
  for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
    const NodeId v = *it;
    if (g.is_output(v)) {
      DSSLICE_REQUIRE(app.has_ete_deadline(v),
                      "output task without an E-T-E deadline");
      governing[v] = app.ete_deadline(v);
      level[v] = est_wcet[v];
      hops[v] = 1;
      continue;
    }
    double best_level = 0.0;
    std::size_t best_hops = 0;
    for (const NodeId w : analysis.successors(v)) {
      governing[v] = std::min(governing[v], governing[w]);
      if (level[w] > best_level) {
        best_level = level[w];
        best_hops = hops[w];
      }
    }
    level[v] = est_wcet[v] + best_level;
    hops[v] = 1 + best_hops;
  }

  DeadlineAssignment assignment;
  assignment.windows.resize(n);
  assignment.pass_of.assign(n, -1);
  for (NodeId v = 0; v < n; ++v) {
    const double c = est_wcet[v];
    const Time d_ete = governing[v];
    Time deadline = d_ete;
    switch (strategy) {
      case KaoStrategy::kUltimateDeadline:
        deadline = d_ete;
        break;
      case KaoStrategy::kEffectiveDeadline:
        deadline = d_ete - (level[v] - c);
        break;
      case KaoStrategy::kEqualSlack: {
        const double slack = d_ete - est[v] - level[v];
        deadline = est[v] + c + slack / static_cast<double>(hops[v]);
        break;
      }
      case KaoStrategy::kEqualFlexibility: {
        const double slack = d_ete - est[v] - level[v];
        const double share = level[v] > 0.0 ? c / level[v] : 1.0;
        deadline = est[v] + c + slack * share;
        break;
      }
    }
    assignment.windows[v] = Window{est[v], deadline};
  }
  return assignment;
}

}  // namespace dsslice
