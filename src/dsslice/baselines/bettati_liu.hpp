// Even end-to-end deadline distribution in the style of Bettati & Liu [7].
//
// The original technique targets flow-shop systems: the end-to-end deadline
// is divided evenly over the (identical-execution-time) stages. The natural
// DAG counterpart divides the window between the earliest input arrival and
// the task's governing E-T-E deadline evenly over the *levels* of the graph:
// a task at topological level ℓ of a depth-Λ graph receives the window
// [a + ℓ·D/Λ, a + (ℓ+1)·D/Λ]. Like slicing — and unlike the Kao baselines —
// this produces non-overlapping windows along every path, but it ignores
// execution times and contention entirely.
#pragma once

#include <span>

#include "dsslice/model/application.hpp"
#include "dsslice/model/task.hpp"

namespace dsslice {

DeadlineAssignment distribute_bettati_liu(const Application& app,
                                          std::span<const double> est_wcet);

}  // namespace dsslice
