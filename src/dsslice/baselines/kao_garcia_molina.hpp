// Deadline-division baselines of Kao & Garcia-Molina [9, 10], generalized
// from task chains to DAGs.
//
// These strategies assign each task an absolute deadline derived from the
// end-to-end deadline and (for the smarter variants) the downstream
// workload; they do not produce non-overlapping slices. To make them
// comparable inside the paper's time-driven model we pair each deadline with
// the task's earliest-start time EST_i (communication-free forward pass over
// estimated WCETs) as its arrival — the least restrictive arrival compatible
// with the precedence constraints.
//
// Chain→DAG generalization (documented in DESIGN.md): the "remaining work
// after i" of the original chain formulas becomes the longest remaining
// chain, i.e. the static level SL_i; the "remaining task count" becomes the
// hop count of that chain; and the governing end-to-end deadline of i is the
// minimum E-T-E deadline over reachable output tasks.
//
//  UD  (ultimate deadline)  D_i = D
//  ED  (effective deadline) D_i = D − (SL_i − c̄_i)
//  EQS (equal slack)        D_i = EST_i + c̄_i + (D − EST_i − SL_i) / n_i
//  EQF (equal flexibility)  D_i = EST_i + c̄_i + (D − EST_i − SL_i)·c̄_i/SL_i
#pragma once

#include <span>
#include <string>

#include "dsslice/model/application.hpp"
#include "dsslice/model/task.hpp"

namespace dsslice {

enum class KaoStrategy {
  kUltimateDeadline,
  kEffectiveDeadline,
  kEqualSlack,
  kEqualFlexibility,
};

std::string to_string(KaoStrategy strategy);

/// Distributes deadlines per the selected strategy. `est_wcet` are the
/// estimated WCETs c̄_i used for all workload terms.
DeadlineAssignment distribute_kao(const Application& app,
                                  std::span<const double> est_wcet,
                                  KaoStrategy strategy);

}  // namespace dsslice
