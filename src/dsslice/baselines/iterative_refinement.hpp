// Iterative deadline refinement, in the spirit of Gutiérrez García &
// González Harbour [6]: starting from an initial local deadline assignment,
// repeatedly schedule the application and redistribute local deadlines
// guided by "how much schedulability failed" — tasks that missed their
// deadline have it relaxed (toward their governing end-to-end deadline,
// never beyond), tasks with excess slack have it tightened toward their
// observed finish time (freeing EDF priority room for the strugglers).
//
// The original technique targets fixed-priority systems with known task
// assignment; this adaptation drives the library's deadline-driven
// scheduler and relaxed-locality model, and is used as a comparator in the
// baselines ablation. Unlike slicing it produces overlapping windows
// (arrival = communication-free earliest start), so it inherits none of the
// I1/I2 isolation properties.
#pragma once

#include <cstddef>
#include <span>

#include "dsslice/model/application.hpp"
#include "dsslice/model/platform.hpp"
#include "dsslice/model/task.hpp"

namespace dsslice {

struct IterativeOptions {
  /// Maximum refinement rounds (each runs one full schedule).
  std::size_t max_iterations = 8;
  /// Fraction of a task's observed lateness added to its deadline when it
  /// misses (1.0 = relax by exactly the miss amount).
  double relax_gain = 1.0;
  /// Fraction of a task's spare window kept when it over-achieves (0.5 =
  /// move the deadline halfway toward the observed finish).
  double tighten_keep = 0.5;
};

struct IterativeInfo {
  std::size_t iterations_used = 0;
  /// True when some iteration produced a fully schedulable assignment.
  bool converged = false;
};

/// Runs the refinement loop and returns the best assignment found (fewest
/// deadline misses; ties by smaller maximum lateness).
DeadlineAssignment distribute_iterative(const Application& app,
                                        std::span<const double> est_wcet,
                                        const Platform& platform,
                                        const IterativeOptions& options = {},
                                        IterativeInfo* info = nullptr);

}  // namespace dsslice
