#include "dsslice/baselines/distribution_registry.hpp"

#include <array>

#include "dsslice/baselines/bettati_liu.hpp"
#include "dsslice/baselines/iterative_refinement.hpp"
#include "dsslice/core/slicing.hpp"
#include "dsslice/util/check.hpp"

namespace dsslice {

std::string to_string(DistributionTechnique technique) {
  switch (technique) {
    case DistributionTechnique::kSlicingPure:
      return "SLICE/PURE";
    case DistributionTechnique::kSlicingNorm:
      return "SLICE/NORM";
    case DistributionTechnique::kSlicingAdaptG:
      return "SLICE/ADAPT-G";
    case DistributionTechnique::kSlicingAdaptL:
      return "SLICE/ADAPT-L";
    case DistributionTechnique::kKaoUD:
      return "KAO/UD";
    case DistributionTechnique::kKaoED:
      return "KAO/ED";
    case DistributionTechnique::kKaoEQS:
      return "KAO/EQS";
    case DistributionTechnique::kKaoEQF:
      return "KAO/EQF";
    case DistributionTechnique::kBettatiLiu:
      return "BETTATI-LIU";
    case DistributionTechnique::kIterative:
      return "ITERATIVE";
  }
  return "unknown";
}

std::span<const DistributionTechnique> all_distribution_techniques() {
  static constexpr std::array<DistributionTechnique, 10> kAll = {
      DistributionTechnique::kSlicingPure,
      DistributionTechnique::kSlicingNorm,
      DistributionTechnique::kSlicingAdaptG,
      DistributionTechnique::kSlicingAdaptL,
      DistributionTechnique::kKaoUD,
      DistributionTechnique::kKaoED,
      DistributionTechnique::kKaoEQS,
      DistributionTechnique::kKaoEQF,
      DistributionTechnique::kBettatiLiu,
      DistributionTechnique::kIterative,
  };
  return kAll;
}

bool is_slicing(DistributionTechnique technique) {
  switch (technique) {
    case DistributionTechnique::kSlicingPure:
    case DistributionTechnique::kSlicingNorm:
    case DistributionTechnique::kSlicingAdaptG:
    case DistributionTechnique::kSlicingAdaptL:
      return true;
    default:
      return false;
  }
}

MetricKind metric_of(DistributionTechnique technique) {
  switch (technique) {
    case DistributionTechnique::kSlicingPure:
      return MetricKind::kPure;
    case DistributionTechnique::kSlicingNorm:
      return MetricKind::kNorm;
    case DistributionTechnique::kSlicingAdaptG:
      return MetricKind::kAdaptG;
    case DistributionTechnique::kSlicingAdaptL:
      return MetricKind::kAdaptL;
    default:
      break;
  }
  DSSLICE_REQUIRE(false, "technique is not slicing-based: " +
                             to_string(technique));
  return MetricKind::kPure;  // unreachable
}

DeadlineAssignment distribute(DistributionTechnique technique,
                              const Application& app,
                              std::span<const double> est_wcet,
                              std::size_t processor_count,
                              const MetricParams& params) {
  if (is_slicing(technique)) {
    const DeadlineMetric metric(metric_of(technique), params);
    return run_slicing(app, est_wcet, metric, processor_count);
  }
  switch (technique) {
    case DistributionTechnique::kKaoUD:
      return distribute_kao(app, est_wcet, KaoStrategy::kUltimateDeadline);
    case DistributionTechnique::kKaoED:
      return distribute_kao(app, est_wcet, KaoStrategy::kEffectiveDeadline);
    case DistributionTechnique::kKaoEQS:
      return distribute_kao(app, est_wcet, KaoStrategy::kEqualSlack);
    case DistributionTechnique::kKaoEQF:
      return distribute_kao(app, est_wcet, KaoStrategy::kEqualFlexibility);
    case DistributionTechnique::kBettatiLiu:
      return distribute_bettati_liu(app, est_wcet);
    case DistributionTechnique::kIterative:
      DSSLICE_REQUIRE(false,
                      "ITERATIVE needs a platform: use the Platform overload");
      break;
    default:
      break;
  }
  DSSLICE_CHECK(false, "unhandled distribution technique");
  return {};
}

DeadlineAssignment distribute(DistributionTechnique technique,
                              const Application& app,
                              std::span<const double> est_wcet,
                              const Platform& platform,
                              const MetricParams& params) {
  if (technique == DistributionTechnique::kIterative) {
    return distribute_iterative(app, est_wcet, platform);
  }
  return distribute(technique, app, est_wcet, platform.processor_count(),
                    params);
}

}  // namespace dsslice
