#include "dsslice/baselines/iterative_refinement.hpp"

#include <algorithm>
#include <limits>

#include "dsslice/analysis/graph_analysis.hpp"
#include "dsslice/baselines/kao_garcia_molina.hpp"
#include "dsslice/sched/edf_list_scheduler.hpp"
#include "dsslice/util/check.hpp"

namespace dsslice {

DeadlineAssignment distribute_iterative(const Application& app,
                                        std::span<const double> est_wcet,
                                        const Platform& platform,
                                        const IterativeOptions& options,
                                        IterativeInfo* info) {
  const TaskGraph& g = app.graph();
  const std::size_t n = g.node_count();
  DSSLICE_REQUIRE(est_wcet.size() == n, "estimate vector size mismatch");
  DSSLICE_REQUIRE(options.max_iterations >= 1, "need at least one iteration");
  DSSLICE_REQUIRE(options.relax_gain > 0.0, "relax gain must be positive");
  DSSLICE_REQUIRE(options.tighten_keep >= 0.0 && options.tighten_keep <= 1.0,
                  "tighten_keep must be in [0, 1]");

  // Governing E-T-E deadline per task: the hard ceiling for relaxation.
  const GraphAnalysis& analysis = app.analysis();
  const std::span<const NodeId> topo = analysis.topological_order();
  std::vector<Time> governing(n, kTimeInfinity);
  for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
    const NodeId v = *it;
    if (g.is_output(v)) {
      DSSLICE_REQUIRE(app.has_ete_deadline(v),
                      "output task without an E-T-E deadline");
      governing[v] = app.ete_deadline(v);
      continue;
    }
    for (const NodeId w : analysis.successors(v)) {
      governing[v] = std::min(governing[v], governing[w]);
    }
  }

  // Initial assignment: equal flexibility (the strongest single-shot Kao
  // strategy); its arrivals (communication-free ESTs) stay fixed across
  // iterations — only deadlines move.
  DeadlineAssignment current =
      distribute_kao(app, est_wcet, KaoStrategy::kEqualFlexibility);

  SchedulerOptions sched_options;
  sched_options.abort_on_miss = false;
  const EdfListScheduler scheduler(sched_options);

  DeadlineAssignment best = current;
  std::size_t best_misses = std::numeric_limits<std::size_t>::max();
  double best_max_lateness = std::numeric_limits<double>::infinity();
  IterativeInfo local;

  for (std::size_t iter = 0; iter < options.max_iterations; ++iter) {
    local.iterations_used = iter + 1;
    const SchedulerResult result = scheduler.run(app, current, platform);
    DSSLICE_CHECK(result.schedule.complete(),
                  "lateness-mode schedule must place every task");

    std::size_t misses = 0;
    double max_lateness = -std::numeric_limits<double>::infinity();
    for (NodeId v = 0; v < n; ++v) {
      const double lateness =
          result.schedule.entry(v).finish - current.windows[v].deadline;
      max_lateness = std::max(max_lateness, lateness);
      if (lateness > 1e-9) {
        ++misses;
      }
    }
    if (misses < best_misses ||
        (misses == best_misses && max_lateness < best_max_lateness)) {
      best = current;
      best_misses = misses;
      best_max_lateness = max_lateness;
    }
    if (misses == 0) {
      local.converged = true;
      break;
    }

    // Redistribute: relax the losers toward their governing deadline,
    // tighten the over-achievers toward their observed finish.
    for (NodeId v = 0; v < n; ++v) {
      const Time finish = result.schedule.entry(v).finish;
      Window& w = current.windows[v];
      const double lateness = finish - w.deadline;
      if (lateness > 1e-9) {
        w.deadline =
            std::min(governing[v], w.deadline + options.relax_gain * lateness);
      } else if (lateness < -1e-9) {
        const Time floor_deadline = w.arrival + est_wcet[v];
        const Time target = finish + options.tighten_keep * (-lateness);
        w.deadline = std::max(floor_deadline, std::min(w.deadline, target));
      }
    }
  }

  if (info != nullptr) {
    *info = local;
  }
  return best;
}

}  // namespace dsslice
