// Uniform entry point over every deadline-distribution technique in the
// library — the four slicing metrics plus the related-work baselines — so
// the evaluation framework, benches and examples can sweep techniques
// through one API.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "dsslice/baselines/kao_garcia_molina.hpp"
#include "dsslice/core/metrics.hpp"
#include "dsslice/model/application.hpp"
#include "dsslice/model/task.hpp"

namespace dsslice {

enum class DistributionTechnique {
  kSlicingPure,    ///< slicing + PURE metric [5]
  kSlicingNorm,    ///< slicing + NORM metric [5]
  kSlicingAdaptG,  ///< slicing + ADAPT-G metric [12]
  kSlicingAdaptL,  ///< slicing + ADAPT-L metric (this paper)
  kKaoUD,          ///< ultimate deadline [9]
  kKaoED,          ///< effective deadline [9]
  kKaoEQS,         ///< equal slack [9]
  kKaoEQF,         ///< equal flexibility [9]
  kBettatiLiu,     ///< even per-level distribution [7]
  kIterative,      ///< iterative refinement in the spirit of [6]
};

std::string to_string(DistributionTechnique technique);

/// All techniques in presentation order.
std::span<const DistributionTechnique> all_distribution_techniques();

/// The slicing metric behind a slicing technique; throws for baselines.
MetricKind metric_of(DistributionTechnique technique);

/// True for the four slicing-based techniques.
bool is_slicing(DistributionTechnique technique);

/// Runs the selected technique. `processor_count` and `params` only affect
/// the adaptive slicing metrics. kIterative needs a full platform (it
/// schedules internally) and is rejected by this overload.
DeadlineAssignment distribute(DistributionTechnique technique,
                              const Application& app,
                              std::span<const double> est_wcet,
                              std::size_t processor_count,
                              const MetricParams& params = {});

/// Platform-aware overload supporting every technique, including the
/// iterative refinement baseline.
DeadlineAssignment distribute(DistributionTechnique technique,
                              const Application& app,
                              std::span<const double> est_wcet,
                              const Platform& platform,
                              const MetricParams& params = {});

}  // namespace dsslice
