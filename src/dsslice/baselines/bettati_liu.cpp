#include "dsslice/baselines/bettati_liu.hpp"

#include <algorithm>

#include "dsslice/analysis/graph_analysis.hpp"
#include "dsslice/graph/algorithms.hpp"
#include "dsslice/util/check.hpp"

namespace dsslice {

DeadlineAssignment distribute_bettati_liu(const Application& app,
                                          std::span<const double> est_wcet) {
  const TaskGraph& g = app.graph();
  const std::size_t n = g.node_count();
  DSSLICE_REQUIRE(est_wcet.size() == n, "estimate vector size mismatch");
  const GraphAnalysis& analysis = app.analysis();
  const std::span<const NodeId> topo = analysis.topological_order();

  // Common origin: the earliest input arrival.
  Time origin = kTimeInfinity;
  for (const NodeId in : g.input_nodes()) {
    origin = std::min(origin, app.input_arrival(in));
  }
  DSSLICE_REQUIRE(origin < kTimeInfinity, "application has no input task");

  // Governing E-T-E deadline per task: min over reachable outputs.
  std::vector<Time> governing(n, kTimeInfinity);
  for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
    const NodeId v = *it;
    if (g.is_output(v)) {
      DSSLICE_REQUIRE(app.has_ete_deadline(v),
                      "output task without an E-T-E deadline");
      governing[v] = app.ete_deadline(v);
      continue;
    }
    for (const NodeId w : analysis.successors(v)) {
      governing[v] = std::min(governing[v], governing[w]);
    }
  }

  const auto levels = node_levels(g);
  const double depth = static_cast<double>(graph_depth(g));
  DSSLICE_CHECK(depth >= 1.0, "non-empty graph has depth >= 1");

  DeadlineAssignment assignment;
  assignment.windows.resize(n);
  assignment.pass_of.assign(n, -1);
  for (NodeId v = 0; v < n; ++v) {
    const double budget = governing[v] - origin;
    const double lo = static_cast<double>(levels[v]) / depth;
    const double hi = static_cast<double>(levels[v] + 1) / depth;
    assignment.windows[v] =
        Window{origin + lo * budget, origin + hi * budget};
  }
  return assignment;
}

}  // namespace dsslice
