// Deterministic run-time fault injection (docs/ROBUSTNESS.md).
//
// The paper's robustness study (Figs. 5–6) perturbs only the WCET
// *estimates* used at slicing time; the schedule itself still executes
// nominally. This module injects faults into the *execution* instead: a
// FaultSpec describes a fault intensity (execution-time overruns, unforeseen
// processor failures, interconnect delay spikes) and FaultModel::instantiate
// realizes it — seeded through gen/rng, so the same spec over the same
// scenario always yields the same FaultTrace — as DispatchConditions the
// on-line dispatcher consumes. A benign spec (zero intensity) produces
// conditions under which the dispatch is bit-identical to the fault-free
// run, which anchors the determinism tests.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dsslice/model/application.hpp"
#include "dsslice/model/platform.hpp"
#include "dsslice/sched/dispatch_scheduler.hpp"

namespace dsslice {

/// Which tasks an execution-time overrun hits.
enum class OverrunScope {
  /// Every task is affected independently with overrun_probability.
  kUniform,
  /// With overrun_probability, a contiguous "hot spot" of
  /// round(hotspot_fraction · n) task ids (a misbehaving component) overruns
  /// together; otherwise the run is clean.
  kHotSpot,
};

std::string to_string(OverrunScope scope);

/// One unforeseen processor halt.
struct ProcessorFailure {
  ProcessorId processor = 0;
  Time at = kTimeZero;

  bool operator==(const ProcessorFailure&) const = default;
};

/// Declarative fault-intensity description. Defaults are benign.
struct FaultSpec {
  /// Seed of the fault realization stream (independent of the workload
  /// seed; batches derive per-graph seeds via derive_seed).
  std::uint64_t seed = 0x0FA017;

  // --- execution-time overruns -------------------------------------------
  OverrunScope scope = OverrunScope::kUniform;
  /// Actual execution time of an affected task = wcet · overrun_factor +
  /// overrun_addend (clamped at 0). factor 1 / addend 0 = nominal; factors
  /// below 1 model overestimated WCETs (early completions).
  double overrun_factor = 1.0;
  double overrun_addend = 0.0;
  /// kUniform: per-task probability of being affected. kHotSpot:
  /// probability that the hot spot manifests at all.
  double overrun_probability = 0.0;
  /// kHotSpot: fraction of the task set in the hot region, (0, 1].
  double hotspot_fraction = 0.25;

  // --- unforeseen processor failures -------------------------------------
  /// Deterministic halts (processor ids validated at instantiation).
  std::vector<ProcessorFailure> failures;
  /// Additionally, each processor fails independently with this
  /// probability, at an instant drawn uniformly from random_failure_window.
  double random_failure_probability = 0.0;
  Window random_failure_window{kTimeZero, kTimeZero};

  // --- interconnect message-delay spikes ----------------------------------
  /// Per-arc probability of a delay spike; a spiked message takes
  /// spike_factor × its nominal delay.
  double spike_probability = 0.0;
  double spike_factor = 1.0;

  /// True when the spec cannot perturb any run.
  bool is_benign() const;

  /// Throws ConfigError on out-of-range parameters (probabilities outside
  /// [0, 1], non-finite or negative factors/times, empty random window with
  /// positive failure probability).
  void validate() const;

  bool operator==(const FaultSpec&) const = default;
};

/// The realization of a FaultSpec against one concrete scenario: the
/// dispatcher-ready conditions plus bookkeeping of what was injected.
struct FaultTrace {
  DispatchConditions conditions;
  std::vector<NodeId> overrun_tasks;     ///< tasks with perturbed run time
  std::vector<ProcessorFailure> failures;///< effective halts, by processor id
  std::vector<std::size_t> spiked_arcs;  ///< arc indices (graph().arcs())

  /// One-line human-readable digest ("overruns=7 failures=1 spikes=3").
  std::string summary() const;

  bool operator==(const FaultTrace&) const = default;
};

class FaultModel {
 public:
  /// Validates the spec (throws ConfigError when out of range).
  explicit FaultModel(FaultSpec spec);

  const FaultSpec& spec() const { return spec_; }

  /// Realizes the spec for one scenario. Deterministic: identical
  /// (spec, application, platform) triples yield identical traces.
  FaultTrace instantiate(const Application& app,
                         const Platform& platform) const;

 private:
  FaultSpec spec_;
};

}  // namespace dsslice
