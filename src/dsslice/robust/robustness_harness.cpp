#include "dsslice/robust/robustness_harness.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <sstream>

#include "dsslice/core/wcet_estimate.hpp"
#include "dsslice/gen/rng.hpp"
#include "dsslice/gen/taskgraph_generator.hpp"
#include "dsslice/util/check.hpp"
#include "dsslice/util/string_util.hpp"

namespace dsslice {

namespace {

constexpr double kEps = 1e-9;

}  // namespace

std::string RobustnessConfig::display_label() const {
  if (!label.empty()) {
    return label;
  }
  return base.display_label() + "/" + to_string(policy);
}

double RobustnessOutcome::ete_miss_ratio() const {
  return deadline_outputs == 0
             ? 0.0
             : static_cast<double>(ete_misses) /
                   static_cast<double>(deadline_outputs);
}

double RobustnessOutcome::quality_ratio() const {
  return optional_demand > 0.0 ? optional_completed / optional_demand : 1.0;
}

void RobustnessResult::add(const RobustnessOutcome& outcome) {
  ete_met.add_many(
      static_cast<std::uint64_t>(outcome.deadline_outputs - outcome.ete_misses),
      static_cast<std::uint64_t>(outcome.deadline_outputs));
  graph_miss_ratio.add(outcome.ete_miss_ratio());
  slice_misses.add(static_cast<double>(outcome.slice_misses));
  quality.add(outcome.quality_ratio());
  killed += outcome.killed;
  unfinished += outcome.unfinished;
  optional_demand += outcome.optional_demand;
  optional_completed += outcome.optional_completed;
  degraded_completions += outcome.degraded_completions;
  recovery.merge(outcome.recovery);
}

double RobustnessResult::ete_miss_ratio() const {
  return ete_met.trials() == 0 ? 0.0 : 1.0 - ete_met.ratio();
}

std::string RobustnessResult::summary(const std::string& label) const {
  std::ostringstream os;
  os << pad_right(label, 24) << " ete-met "
     << pad_left(format_percent(ete_met.ratio(), 1), 7) << "  slice-misses "
     << format_fixed(slice_misses.mean(), 2);
  if (killed > 0 || unfinished > 0) {
    os << "  killed " << killed << "  unfinished " << unfinished;
  }
  if (recovery.reslices > 0 || recovery.migrations > 0) {
    os << "  reslices " << recovery.reslices << "  migrations "
       << recovery.migrations;
  }
  if (optional_demand > 0.0) {
    os << "  quality " << format_percent(quality.mean(), 1) << "  shed "
       << recovery.shed;
  }
  return os.str();
}

RobustnessOutcome evaluate_robust_scenario(const RobustnessConfig& config,
                                           std::uint64_t workload_seed,
                                           std::uint64_t fault_seed,
                                           ScenarioScratch* scratch) {
  const Scenario scenario = generate_scenario(config.base.generator,
                                              workload_seed);
  const Application& app = scenario.application;
  const Platform& platform = scenario.platform;

  const std::vector<double> est = estimate_wcets(app, config.base.wcet_strategy);
  const DeadlineAssignment assignment =
      distribute_for_config(config.base, app, platform, est, nullptr, scratch);

  FaultSpec spec = config.faults;
  spec.seed = fault_seed;
  const FaultTrace trace = FaultModel(spec).instantiate(app, platform);

  RecoveryEngine engine(config.policy, app, est);
  DispatchTelemetry telemetry;
  DispatchOptions options;
  options.abort_on_miss = false;
  const EdfDispatchScheduler scheduler(options);
  if (scratch != nullptr) {
    scheduler.run_into(scratch->sched_result, scratch->sched, app, assignment,
                       platform, &trace.conditions, &engine, &telemetry);
  } else {
    scheduler.run(app, assignment, platform, &trace.conditions, &engine,
                  &telemetry);
  }

  RobustnessOutcome outcome;
  for (NodeId v = 0; v < app.task_count(); ++v) {
    if (!app.has_ete_deadline(v)) {
      continue;
    }
    ++outcome.deadline_outputs;
    if (telemetry.completion[v] > app.ete_deadline(v) + kEps) {
      ++outcome.ete_misses;  // finished late, or never (completion = ∞)
    }
  }
  outcome.slice_misses = telemetry.misses.size();
  outcome.killed = telemetry.killed.size();
  outcome.unfinished = telemetry.unfinished.size();
  outcome.degraded_completions = telemetry.degraded.size();
  outcome.recovery = engine.stats();

  // Quality accounting (imprecise-computation measure): a task that
  // completed at full precision earns its whole optional part; a degraded
  // or never-finished task earns nothing for it.
  if (app.has_optional_work()) {
    for (NodeId v = 0; v < app.task_count(); ++v) {
      const double f = app.task(v).optional_fraction;
      if (f <= 0.0) {
        continue;
      }
      const double opt = est[v] * f;
      outcome.optional_demand += opt;
      const bool completed = telemetry.completion[v] < kTimeInfinity;
      const bool degraded =
          std::find(telemetry.degraded.begin(), telemetry.degraded.end(), v) !=
          telemetry.degraded.end();
      if (completed && !degraded) {
        outcome.optional_completed += opt;
      }
    }
  }
  return outcome;
}

namespace {

/// Tag mixed into the base seeds of replicate r > 0, so every replicate
/// draws an independent workload + fault stream while replicate 0 keeps the
/// original single-replicate seeds bit-identically.
constexpr std::uint64_t kReplicateTag = 0x5EED'0DE6'4ADEULL;

RobustnessResult run_robustness_batch(const RobustnessConfig& config,
                                      ThreadPool* pool) {
  config.base.generator.validate();
  config.faults.validate();
  DSSLICE_REQUIRE(config.seed_replicates >= 1, "need >= 1 seed replicate");
  const std::size_t count = config.base.generator.graph_count;
  const std::size_t replicates = config.seed_replicates;
  const std::size_t total = count * replicates;
  const auto t0 = std::chrono::steady_clock::now();

  std::vector<RobustnessOutcome> outcomes(total);
  // Chunked like run_experiment: each worker keeps one ScenarioScratch, so
  // the slicing and scheduling buffers are recycled across every faulted
  // scenario it evaluates.
  const auto evaluate_range = [&](std::size_t begin, std::size_t end) {
    thread_local ScenarioScratch scratch;
    for (std::size_t j = begin; j < end; ++j) {
      const std::size_t r = j / count;
      const std::size_t k = j % count;
      const std::uint64_t workload_base =
          r == 0 ? config.base.generator.base_seed
                 : derive_seed(config.base.generator.base_seed,
                               kReplicateTag + r);
      const std::uint64_t fault_base =
          r == 0 ? config.faults.seed
                 : derive_seed(config.faults.seed, kReplicateTag + r);
      outcomes[j] = evaluate_robust_scenario(
          config, derive_seed(workload_base, k), derive_seed(fault_base, k),
          &scratch);
    }
  };
  if (pool != nullptr) {
    const std::size_t grain = std::clamp<std::size_t>(
        total / (8 * std::max<std::size_t>(1, pool->size())), 1, 64);
    parallel_for(*pool, total, grain, evaluate_range);
  } else {
    evaluate_range(0, total);
  }

  RobustnessResult result;
  for (const RobustnessOutcome& outcome : outcomes) {
    result.add(outcome);
  }
  const auto t1 = std::chrono::steady_clock::now();
  result.wall_seconds = std::chrono::duration<double>(t1 - t0).count();
  return result;
}

}  // namespace

RobustnessResult run_robustness(const RobustnessConfig& config,
                                ThreadPool& pool) {
  return run_robustness_batch(config, &pool);
}

RobustnessResult run_robustness_serial(const RobustnessConfig& config) {
  return run_robustness_batch(config, nullptr);
}

SweepResult sweep_overrun_factor(
    const RobustnessConfig& base,
    const std::vector<DistributionTechnique>& techniques,
    const std::vector<RecoveryPolicy>& policies,
    const std::vector<double>& factors, ThreadPool& pool, bool verbose) {
  SweepResult sweep;
  sweep.x_label = "overrun-factor";
  sweep.x = factors;
  for (const DistributionTechnique technique : techniques) {
    for (const RecoveryPolicy policy : policies) {
      RobustnessConfig config = base;
      config.base.technique = technique;
      config.base.label.clear();
      config.policy = policy;
      Series series;
      series.name = to_string(technique) + "/" + to_string(policy);
      for (const double factor : factors) {
        config.faults.overrun_factor = factor;
        const RobustnessResult result = run_robustness(config, pool);
        sweep.scenarios +=
            config.base.generator.graph_count * config.seed_replicates;
        sweep.wall_seconds += result.wall_seconds;
        series.success_ratio.push_back(result.ete_met.ratio());
        series.ci95.push_back(result.ete_met.ci95_halfwidth());
        series.mean_min_laxity.push_back(result.slice_misses.mean());
        if (verbose) {
          std::ostringstream os;
          os << series.name << " x=" << format_fixed(factor, 2);
          std::fputs((result.summary(os.str()) + "\n").c_str(), stderr);
        }
      }
      sweep.series.push_back(std::move(series));
    }
  }
  return sweep;
}

std::vector<BreakdownPoint> breakdown_overrun_factors(const SweepResult& sweep,
                                                      double miss_threshold) {
  DSSLICE_REQUIRE(miss_threshold >= 0.0 && miss_threshold <= 1.0,
                  "miss_threshold must be in [0, 1]");
  std::vector<BreakdownPoint> points;
  for (const Series& series : sweep.series) {
    DSSLICE_CHECK(series.success_ratio.size() == sweep.x.size(),
                  "series/x size mismatch");
    BreakdownPoint point;
    point.series = series.name;
    point.factor = sweep.x.empty() ? 0.0 : sweep.x.back();
    for (std::size_t i = 0; i < sweep.x.size(); ++i) {
      const double miss = 1.0 - series.success_ratio[i];
      if (miss <= miss_threshold + kEps) {
        point.factor = sweep.x[i];
        continue;
      }
      point.broke = true;
      if (i == 0) {
        point.factor = sweep.x[0];
        break;
      }
      // Interpolate the crossing between grid points i-1 (within) and i.
      const double prev_miss = 1.0 - series.success_ratio[i - 1];
      const double span = miss - prev_miss;
      const double t =
          span > kEps ? (miss_threshold - prev_miss) / span : 0.0;
      point.factor = sweep.x[i - 1] + t * (sweep.x[i] - sweep.x[i - 1]);
      break;
    }
    points.push_back(std::move(point));
  }
  return points;
}

std::string format_breakdown_table(const std::vector<BreakdownPoint>& points,
                                   double miss_threshold) {
  std::ostringstream os;
  os << "breakdown overrun factor (E-T-E miss ratio > "
     << format_percent(miss_threshold, 0) << ")\n";
  for (const BreakdownPoint& point : points) {
    os << "  " << pad_right(point.series, 28) << " "
       << format_fixed(point.factor, 3)
       << (point.broke ? "" : "  (never broke in sweep range)") << "\n";
  }
  return os.str();
}

DegradationSurface sweep_degradation(
    const RobustnessConfig& base,
    const std::vector<DistributionTechnique>& techniques,
    const std::vector<RecoveryPolicy>& policies,
    const std::vector<double>& factors, const std::vector<double>& fractions,
    ThreadPool& pool, bool verbose) {
  DegradationSurface surface;
  surface.factors = factors;
  surface.fractions = fractions;
  for (const DistributionTechnique technique : techniques) {
    for (const RecoveryPolicy policy : policies) {
      RobustnessConfig config = base;
      config.base.technique = technique;
      config.base.label.clear();
      config.policy = policy;
      DegradationSeries series;
      series.name = to_string(technique) + "/" + to_string(policy);
      series.cells.reserve(fractions.size() * factors.size());
      for (const double fraction : fractions) {
        // A fixed per-task split: the generator draws uniform(f, f) = f, so
        // structure, WCETs and deadlines stay identical per seed while the
        // sheddable share varies across rows.
        config.base.generator.workload.min_optional_fraction = fraction;
        config.base.generator.workload.max_optional_fraction = fraction;
        for (const double factor : factors) {
          config.faults.overrun_factor = factor;
          const RobustnessResult result = run_robustness(config, pool);
          surface.scenarios +=
              config.base.generator.graph_count * config.seed_replicates;
          surface.wall_seconds += result.wall_seconds;
          DegradationCell cell;
          cell.overrun_factor = factor;
          cell.optional_fraction = fraction;
          cell.success_ratio = result.ete_met.ratio();
          cell.ci95 = result.ete_met.ci95_halfwidth();
          cell.quality = result.quality.mean();
          cell.shed_tasks = result.recovery.shed;
          cell.degraded_completions = result.degraded_completions;
          series.cells.push_back(cell);
          if (verbose) {
            std::ostringstream os;
            os << series.name << " f=" << format_fixed(fraction, 2)
               << " x=" << format_fixed(factor, 2);
            std::fputs((result.summary(os.str()) + "\n").c_str(), stderr);
          }
        }
      }
      surface.series.push_back(std::move(series));
    }
  }
  return surface;
}

SweepResult degradation_row_as_sweep(const DegradationSurface& surface,
                                     std::size_t fraction_index) {
  DSSLICE_REQUIRE(fraction_index < surface.fractions.size(),
                  "fraction index out of range");
  SweepResult sweep;
  sweep.x_label = "overrun-factor";
  sweep.x = surface.factors;
  const std::size_t stride = surface.factors.size();
  for (const DegradationSeries& series : surface.series) {
    DSSLICE_CHECK(series.cells.size() == stride * surface.fractions.size(),
                  "degradation surface shape mismatch");
    Series row;
    row.name = series.name;
    for (std::size_t xi = 0; xi < stride; ++xi) {
      const DegradationCell& cell = series.cells[fraction_index * stride + xi];
      row.success_ratio.push_back(cell.success_ratio);
      row.ci95.push_back(cell.ci95);
      row.mean_min_laxity.push_back(cell.quality);
    }
    sweep.series.push_back(std::move(row));
  }
  return sweep;
}

std::string format_degradation_table(const DegradationSurface& surface) {
  std::ostringstream os;
  os << "degradation surface: E-T-E success (quality) per overrun factor\n";
  for (const DegradationSeries& series : surface.series) {
    os << series.name << "\n";
    const std::size_t stride = surface.factors.size();
    std::ostringstream head;
    head << "  " << pad_right("opt-frac \\ x", 14);
    for (const double factor : surface.factors) {
      head << pad_left(format_fixed(factor, 2), 18);
    }
    os << head.str() << "\n";
    for (std::size_t fi = 0; fi < surface.fractions.size(); ++fi) {
      os << "  " << pad_right(format_fixed(surface.fractions[fi], 2), 14);
      for (std::size_t xi = 0; xi < stride; ++xi) {
        const DegradationCell& cell = series.cells[fi * stride + xi];
        os << pad_left(format_percent(cell.success_ratio, 1) + " (" +
                           format_percent(cell.quality, 0) + ")",
                       18);
      }
      os << "\n";
    }
  }
  return os.str();
}

}  // namespace dsslice
