#include "dsslice/robust/fault_model.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "dsslice/gen/rng.hpp"
#include "dsslice/util/check.hpp"

namespace dsslice {

std::string to_string(OverrunScope scope) {
  switch (scope) {
    case OverrunScope::kUniform:
      return "uniform";
    case OverrunScope::kHotSpot:
      return "hot-spot";
  }
  return "unknown";
}

namespace {

bool finite(double x) { return std::isfinite(x); }

bool probability(double p) { return finite(p) && p >= 0.0 && p <= 1.0; }

}  // namespace

bool FaultSpec::is_benign() const {
  const bool overruns =
      overrun_probability > 0.0 &&
      (overrun_factor != 1.0 || overrun_addend != 0.0);
  const bool spikes = spike_probability > 0.0 && spike_factor != 1.0;
  return !overruns && failures.empty() && random_failure_probability == 0.0 &&
         !spikes;
}

void FaultSpec::validate() const {
  DSSLICE_REQUIRE(finite(overrun_factor) && overrun_factor >= 0.0,
                  "overrun_factor must be finite and non-negative");
  DSSLICE_REQUIRE(finite(overrun_addend),
                  "overrun_addend must be finite");
  DSSLICE_REQUIRE(probability(overrun_probability),
                  "overrun_probability must be in [0, 1]");
  DSSLICE_REQUIRE(finite(hotspot_fraction) && hotspot_fraction > 0.0 &&
                      hotspot_fraction <= 1.0,
                  "hotspot_fraction must be in (0, 1]");
  for (const ProcessorFailure& f : failures) {
    DSSLICE_REQUIRE(finite(f.at) && f.at >= 0.0,
                    "processor failure time must be finite and non-negative");
  }
  DSSLICE_REQUIRE(probability(random_failure_probability),
                  "random_failure_probability must be in [0, 1]");
  if (random_failure_probability > 0.0) {
    DSSLICE_REQUIRE(finite(random_failure_window.arrival) &&
                        finite(random_failure_window.deadline) &&
                        random_failure_window.arrival >= 0.0 &&
                        random_failure_window.length() >= 0.0,
                    "random_failure_window must be a valid window");
  }
  DSSLICE_REQUIRE(probability(spike_probability),
                  "spike_probability must be in [0, 1]");
  DSSLICE_REQUIRE(finite(spike_factor) && spike_factor >= 0.0,
                  "spike_factor must be finite and non-negative");
}

std::string FaultTrace::summary() const {
  std::ostringstream os;
  os << "overruns=" << overrun_tasks.size()
     << " failures=" << failures.size() << " spikes=" << spiked_arcs.size();
  return os.str();
}

FaultModel::FaultModel(FaultSpec spec) : spec_(std::move(spec)) {
  spec_.validate();
}

FaultTrace FaultModel::instantiate(const Application& app,
                                   const Platform& platform) const {
  const std::size_t n = app.task_count();
  const std::size_t m = platform.processor_count();
  const std::size_t arcs = app.graph().arc_count();

  FaultTrace trace;
  trace.conditions.wcet_factor.assign(n, 1.0);
  trace.conditions.wcet_addend.assign(n, 0.0);
  trace.conditions.arc_delay_factor.assign(arcs, 1.0);
  trace.conditions.processor_down_at.assign(m, kTimeInfinity);

  Xoshiro256 rng(spec_.seed);

  // Overruns. The draw order (tasks, then processors, then arcs) is part of
  // the trace's determinism contract; keep it stable.
  const bool perturbs = spec_.overrun_factor != 1.0 ||
                        spec_.overrun_addend != 0.0;
  if (spec_.overrun_probability > 0.0 && perturbs && n > 0) {
    if (spec_.scope == OverrunScope::kUniform) {
      for (NodeId v = 0; v < n; ++v) {
        if (rng.bernoulli(spec_.overrun_probability)) {
          trace.overrun_tasks.push_back(v);
        }
      }
    } else {  // kHotSpot
      if (rng.bernoulli(spec_.overrun_probability)) {
        const auto width = std::max<std::size_t>(
            1, static_cast<std::size_t>(
                   std::llround(spec_.hotspot_fraction *
                                static_cast<double>(n))));
        const std::size_t lo = static_cast<std::size_t>(rng.uniform_int(
            0, static_cast<std::int64_t>(n > width ? n - width : 0)));
        for (std::size_t v = lo; v < std::min(n, lo + width); ++v) {
          trace.overrun_tasks.push_back(static_cast<NodeId>(v));
        }
      }
    }
    for (const NodeId v : trace.overrun_tasks) {
      trace.conditions.wcet_factor[v] = spec_.overrun_factor;
      trace.conditions.wcet_addend[v] = spec_.overrun_addend;
    }
  }

  // Processor failures: deterministic list first (earliest halt wins when a
  // processor appears twice), then the random draw.
  for (const ProcessorFailure& f : spec_.failures) {
    DSSLICE_REQUIRE(f.processor < m,
                    "failure names processor " +
                        std::to_string(f.processor) + " but the platform has " +
                        std::to_string(m));
    trace.conditions.processor_down_at[f.processor] =
        std::min(trace.conditions.processor_down_at[f.processor], f.at);
  }
  if (spec_.random_failure_probability > 0.0) {
    for (ProcessorId p = 0; p < m; ++p) {
      if (!rng.bernoulli(spec_.random_failure_probability)) {
        continue;
      }
      const Time at =
          spec_.random_failure_window.length() > 0.0
              ? rng.uniform(spec_.random_failure_window.arrival,
                            spec_.random_failure_window.deadline)
              : spec_.random_failure_window.arrival;
      trace.conditions.processor_down_at[p] =
          std::min(trace.conditions.processor_down_at[p], at);
    }
  }
  for (ProcessorId p = 0; p < m; ++p) {
    if (trace.conditions.processor_down_at[p] < kTimeInfinity) {
      trace.failures.push_back(
          ProcessorFailure{p, trace.conditions.processor_down_at[p]});
    }
  }

  // Interconnect delay spikes.
  if (spec_.spike_probability > 0.0 && spec_.spike_factor != 1.0) {
    for (std::size_t k = 0; k < arcs; ++k) {
      if (rng.bernoulli(spec_.spike_probability)) {
        trace.conditions.arc_delay_factor[k] = spec_.spike_factor;
        trace.spiked_arcs.push_back(k);
      }
    }
  }

  return trace;
}

}  // namespace dsslice
