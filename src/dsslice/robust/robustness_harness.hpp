// Robustness evaluation harness (docs/ROBUSTNESS.md).
//
// Couples the batch experiment machinery (sim/) with run-time fault
// injection (robust/fault_model) and degraded-mode recovery
// (robust/recovery): each task set is sliced exactly as in the nominal
// experiments, then *dispatched* under a FaultSpec realization with a
// RecoveryPolicy reacting on-line. The primary outcome is the fraction of
// E-T-E deadlines met under faults; sweeping the fault intensity yields the
// breakdown overrun factor — the largest intensity a metric tolerates
// before its E-T-E miss ratio exceeds a threshold.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dsslice/robust/fault_model.hpp"
#include "dsslice/robust/recovery.hpp"
#include "dsslice/sim/experiment.hpp"
#include "dsslice/sim/sweeps.hpp"
#include "dsslice/util/thread_pool.hpp"

namespace dsslice {

struct RobustnessConfig {
  /// Workload family, distribution technique and WCET strategy. The
  /// dispatcher is always the on-line EdfDispatchScheduler with
  /// abort_on_miss disabled (a robustness run must observe every miss, not
  /// stop at the first); base.algorithm and base.scheduler.abort_on_miss
  /// are ignored.
  ExperimentConfig base;
  FaultSpec faults;
  RecoveryPolicy policy = RecoveryPolicy::kNone;

  /// Independent seed replicates averaged into every batch: the run covers
  /// graph_count × seed_replicates faulted task sets, replicate r drawing
  /// its workload and fault realizations from seeds derived off the base
  /// seeds with a replicate tag. 1 (the default) reproduces the original
  /// single-replicate batches bit-identically.
  std::size_t seed_replicates = 1;

  /// Display label; "<technique>/<policy>" when empty.
  std::string label;

  std::string display_label() const;
};

/// Outcome of dispatching one faulted task set.
struct RobustnessOutcome {
  std::size_t deadline_outputs = 0;  ///< outputs carrying an E-T-E deadline
  std::size_t ete_misses = 0;        ///< of those, finished late or never
  std::size_t slice_misses = 0;      ///< per-task window misses observed
  std::size_t killed = 0;            ///< tasks killed by processor failures
  std::size_t unfinished = 0;        ///< tasks never completed
  /// Imprecise-computation quality accounting (estimated-time units): total
  /// optional demand of the task set, and the optional work that actually
  /// ran (tasks completed at full precision get full credit; degraded or
  /// unfinished tasks get none).
  double optional_demand = 0.0;
  double optional_completed = 0.0;
  std::size_t degraded_completions = 0;  ///< tasks finished without optional
  RecoveryStats recovery;

  double ete_miss_ratio() const;

  /// Fraction of optional work completed — the imprecise-scheduling quality
  /// measure. 1 for fully precise task sets (no optional demand).
  double quality_ratio() const;
};

/// Aggregate over a batch of faulted task sets.
struct RobustnessResult {
  SuccessCounter ete_met;        ///< per-output E-T-E deadline success
  RunningStats graph_miss_ratio; ///< per-graph E-T-E miss ratio
  RunningStats slice_misses;     ///< per-graph window-miss count
  RunningStats quality;          ///< per-graph optional-completed ratio
  std::size_t killed = 0;
  std::size_t unfinished = 0;
  double optional_demand = 0.0;     ///< summed over the batch (est units)
  double optional_completed = 0.0;
  std::size_t degraded_completions = 0;
  RecoveryStats recovery;
  double wall_seconds = 0.0;

  void add(const RobustnessOutcome& outcome);

  /// Fraction of E-T-E deadlines missed across the batch (1 − met ratio).
  double ete_miss_ratio() const;

  /// One-line human-readable summary.
  std::string summary(const std::string& label) const;
};

/// The per-graph unit of work: generate scenario `workload_seed`, slice
/// nominally, realize the fault spec under `fault_seed`, dispatch with the
/// configured recovery policy. Exposed for tests and custom drivers.
/// `scratch` is optional reusable per-thread scratch (see ScenarioScratch).
RobustnessOutcome evaluate_robust_scenario(const RobustnessConfig& config,
                                           std::uint64_t workload_seed,
                                           std::uint64_t fault_seed,
                                           ScenarioScratch* scratch = nullptr);

/// Runs base.generator.graph_count faulted task sets on the pool and
/// aggregates in index order (deterministic reduction, like
/// run_experiment). Graph k uses derive_seed(generator.base_seed, k) for
/// the workload and derive_seed(faults.seed, k) for the fault realization.
RobustnessResult run_robustness(const RobustnessConfig& config,
                                ThreadPool& pool);

/// Strictly serial reference (determinism tests).
RobustnessResult run_robustness_serial(const RobustnessConfig& config);

/// Sweeps the execution-time overrun factor for every technique × policy
/// pair. Each series is named "<TECHNIQUE>/<policy>"; success_ratio is the
/// fraction of E-T-E deadlines met at that intensity (mean_min_laxity
/// carries the mean per-graph slice-miss count as a secondary measure).
SweepResult sweep_overrun_factor(const RobustnessConfig& base,
                                 const std::vector<DistributionTechnique>& techniques,
                                 const std::vector<RecoveryPolicy>& policies,
                                 const std::vector<double>& factors,
                                 ThreadPool& pool, bool verbose = false);

/// One series' breakdown factor.
struct BreakdownPoint {
  std::string series;
  /// Largest swept x whose E-T-E miss ratio stays within `miss_threshold`,
  /// linearly interpolated at the threshold crossing; clamped to the sweep
  /// range (first x when even the lowest intensity breaks, last x when the
  /// series never breaks).
  double factor = 0.0;
  bool broke = false;  ///< false when the series survived the whole sweep
};

/// Breakdown overrun factor per series of an overrun sweep.
std::vector<BreakdownPoint> breakdown_overrun_factors(
    const SweepResult& sweep, double miss_threshold);

/// Aligned table of breakdown points for bench output.
std::string format_breakdown_table(const std::vector<BreakdownPoint>& points,
                                   double miss_threshold);

/// One (overrun-factor × optional-fraction) point of a degradation surface.
struct DegradationCell {
  double overrun_factor = 0.0;
  double optional_fraction = 0.0;
  double success_ratio = 0.0;  ///< fraction of E-T-E deadlines met
  double ci95 = 0.0;
  double quality = 0.0;        ///< mean per-graph optional-completed ratio
  std::size_t shed_tasks = 0;
  std::size_t degraded_completions = 0;
};

/// One technique × policy series over the whole surface. Cells are stored
/// fraction-major: cells[fi * factors.size() + xi] is
/// (factors[xi], fractions[fi]).
struct DegradationSeries {
  std::string name;  ///< "<TECHNIQUE>/<policy>"
  std::vector<DegradationCell> cells;
};

/// Success-ratio + quality-ratio surface over breakdown-overrun-factor ×
/// optional-fraction (docs/ROBUSTNESS.md, "Graceful degradation").
struct DegradationSurface {
  std::vector<double> factors;    ///< overrun factors swept (x)
  std::vector<double> fractions;  ///< generator optional fractions swept (y)
  std::vector<DegradationSeries> series;
  std::size_t scenarios = 0;
  double wall_seconds = 0.0;
};

/// Sweeps overrun factor × optional fraction for every technique × policy
/// pair. Each fraction re-generates the workloads with
/// min_optional_fraction = max_optional_fraction = fraction (0 = the
/// precise baseline), so graph structure, WCETs and deadlines stay fixed
/// per seed while the sheddable share varies.
DegradationSurface sweep_degradation(
    const RobustnessConfig& base,
    const std::vector<DistributionTechnique>& techniques,
    const std::vector<RecoveryPolicy>& policies,
    const std::vector<double>& factors, const std::vector<double>& fractions,
    ThreadPool& pool, bool verbose = false);

/// Projects one optional-fraction row of the surface onto a SweepResult
/// (series ordered as in the surface), so breakdown_overrun_factors and the
/// sweep plotting helpers apply unchanged.
SweepResult degradation_row_as_sweep(const DegradationSurface& surface,
                                     std::size_t fraction_index);

/// Aligned success/quality table of the whole surface for bench output.
std::string format_degradation_table(const DegradationSurface& surface);

}  // namespace dsslice
