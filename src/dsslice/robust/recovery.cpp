#include "dsslice/robust/recovery.hpp"

#include <algorithm>
#include <array>
#include <cmath>

#include "dsslice/analysis/graph_analysis.hpp"
#include "dsslice/obs/trace.hpp"
#include "dsslice/util/check.hpp"

namespace dsslice {

namespace {

constexpr double kEps = 1e-9;

}  // namespace

std::string to_string(RecoveryPolicy policy) {
  switch (policy) {
    case RecoveryPolicy::kNone:
      return "none";
    case RecoveryPolicy::kRedistributeSlack:
      return "redistribute-slack";
    case RecoveryPolicy::kMigrate:
      return "migrate";
    case RecoveryPolicy::kShedOptional:
      return "shed-optional";
    case RecoveryPolicy::kDegradeThenMigrate:
      return "degrade-then-migrate";
  }
  return "unknown";
}

std::span<const RecoveryPolicy> all_recovery_policies() {
  static constexpr std::array<RecoveryPolicy, 5> kAll = {
      RecoveryPolicy::kNone, RecoveryPolicy::kRedistributeSlack,
      RecoveryPolicy::kMigrate, RecoveryPolicy::kShedOptional,
      RecoveryPolicy::kDegradeThenMigrate};
  return kAll;
}

std::vector<Window> redistribute_slack(const Application& app,
                                       std::span<const double> est_wcet,
                                       const DispatchControl::View& view,
                                       const std::vector<Window>& windows) {
  const std::size_t n = app.task_count();
  DSSLICE_REQUIRE(est_wcet.size() == n && windows.size() == n,
                  "redistribute_slack size mismatch");
  // The re-slice path runs once per deadline miss / processor failure, so it
  // leans on the application's memoized analysis instead of recomputing the
  // topological order on every invocation.
  const GraphAnalysis& analysis = app.analysis();
  const std::span<const NodeId> order = analysis.topological_order();

  std::vector<Window> out = windows;

  // Forward pass: estimated finish of every task given the actual state of
  // the run. Started work finishes at its known (non-preemptive) finish
  // time; unstarted work is assumed to start as early as its predecessors
  // allow, never before `now`, and to run for its estimated WCET.
  std::vector<Time> est_finish(n, kTimeZero);
  std::vector<Time> est_start(n, view.now);
  for (const NodeId v : order) {
    if (view.started[v] || view.done[v]) {
      est_finish[v] = view.finish[v];
      continue;
    }
    Time s = view.now;
    for (const NodeId u : analysis.predecessors(v)) {
      s = std::max(s, est_finish[u]);
    }
    est_start[v] = s;
    est_finish[v] = s + est_wcet[v];
  }

  // Backward pass: latest finish that still leaves every downstream task
  // its estimated WCET inside the residual E-T-E budget.
  std::vector<Time> lft(n, kTimeInfinity);
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const NodeId v = *it;
    Time l = app.has_ete_deadline(v) ? app.ete_deadline(v) : kTimeInfinity;
    for (const NodeId s : analysis.successors(v)) {
      l = std::min(l, lft[s] - est_wcet[s]);
    }
    lft[v] = l;
  }

  for (const NodeId v : order) {
    if (view.started[v] || view.done[v]) {
      continue;  // running/finished work keeps its window
    }
    out[v] = Window{est_start[v], lft[v]};
  }
  return out;
}

std::optional<ProcessorId> choose_migration_target(
    const Task& task, const Platform& platform,
    std::span<const Time> busy_until, std::span<const Time> down_at,
    Time now) {
  const std::size_t m = platform.processor_count();
  DSSLICE_REQUIRE(busy_until.size() == m && down_at.size() == m,
                  "choose_migration_target size mismatch");
  std::optional<ProcessorId> best;
  Time best_load = kTimeInfinity;
  double best_wcet = kTimeInfinity;
  for (ProcessorId p = 0; p < m; ++p) {
    if (down_at[p] <= now + kEps) {
      continue;  // already halted (or halting right now)
    }
    const ProcessorClassId e = platform.class_of(p);
    if (!task.eligible(e)) {
      continue;
    }
    const Time load = std::max(busy_until[p], now);
    const double c = task.wcet(e);
    const bool wins = !best.has_value() || load < best_load - kEps ||
                      (load <= best_load + kEps &&
                       (c < best_wcet - kEps ||
                        (c <= best_wcet + kEps && p < *best)));
    if (wins) {
      best = p;
      best_load = load;
      best_wcet = c;
    }
  }
  return best;
}

void RecoveryStats::merge(const RecoveryStats& other) {
  reslices += other.reslices;
  migrations += other.migrations;
  revived += other.revived;
  abandoned += other.abandoned;
  shed += other.shed;
  optional_dropped += other.optional_dropped;
}

RecoveryEngine::RecoveryEngine(RecoveryPolicy policy, const Application& app,
                               std::vector<double> est_wcet)
    : policy_(policy), app_(app), est_wcet_(std::move(est_wcet)),
      live_est_(est_wcet_) {
  DSSLICE_REQUIRE(est_wcet_.size() == app_.task_count(),
                  "estimate vector size mismatch");
}

void RecoveryEngine::shed_optionals(const View& view) {
  if (view.shed.empty()) {
    return;  // host provides no degraded-mode channel (legacy dispatch)
  }
  std::size_t count = 0;
  double dropped = 0.0;
  for (NodeId v = 0; v < app_.task_count(); ++v) {
    if (view.started[v] || view.done[v] || view.shed[v]) {
      continue;  // running / finished work keeps its optional part
    }
    const double f = app_.task(v).optional_fraction;
    if (f <= 0.0) {
      continue;
    }
    view.shed[v] = 1;
    live_est_[v] = est_wcet_[v] * (1.0 - f);
    dropped += est_wcet_[v] * f;
    ++count;
  }
  if (count > 0) {
    stats_.shed += count;
    stats_.optional_dropped += dropped;
    DSSLICE_COUNT("recovery.shed_tasks", count);
    DSSLICE_COUNT("recovery.optional_dropped", dropped);
  }
}

void RecoveryEngine::on_completion(const View& view, NodeId, bool missed,
                                   std::vector<Window>& windows) {
  if (!missed) {
    return;
  }
  switch (policy_) {
    case RecoveryPolicy::kNone:
    case RecoveryPolicy::kMigrate:
      return;
    case RecoveryPolicy::kShedOptional:
    case RecoveryPolicy::kDegradeThenMigrate:
      shed_optionals(view);
      break;  // fall through to the residual-budget re-slice
    case RecoveryPolicy::kRedistributeSlack:
      break;
  }
  DSSLICE_SPAN("recovery.reslice");
  windows = redistribute_slack(app_, live_est_, view, windows);
  ++stats_.reslices;
  DSSLICE_COUNT("recovery.reslices", 1);
}

std::vector<NodeId> RecoveryEngine::on_processor_failure(
    const View& view, ProcessorId p, const std::vector<NodeId>& victims,
    std::vector<Window>& windows, std::vector<ProcessorId>& pinned) {
  switch (policy_) {
    case RecoveryPolicy::kNone:
      stats_.abandoned += victims.size();
      return {};

    case RecoveryPolicy::kRedistributeSlack:
    case RecoveryPolicy::kShedOptional: {
      // Revive the victims (they are unstarted again in `view`) and re-run
      // the residual-budget distribution over the surviving suffix.
      // kShedOptional first reclaims the optional parts of unstarted tasks,
      // so the re-slice plans against the reduced (mandatory) demand.
      if (policy_ == RecoveryPolicy::kShedOptional) {
        shed_optionals(view);
      }
      DSSLICE_SPAN("recovery.reslice");
      windows = redistribute_slack(app_, live_est_, view, windows);
      ++stats_.reslices;
      DSSLICE_COUNT("recovery.reslices", 1);
      stats_.revived += victims.size();
      DSSLICE_COUNT("recovery.revived", victims.size());
      return victims;
    }

    case RecoveryPolicy::kMigrate: {
      // Unstarted tasks previously pinned to the dead processor must find a
      // new home too (cascading failures).
      for (NodeId v = 0; v < app_.task_count(); ++v) {
        if (view.started[v] || view.done[v] || pinned[v] != p) {
          continue;
        }
        const auto target = choose_migration_target(
            app_.task(v), view.platform, view.busy_until, view.down_at,
            view.now);
        if (target.has_value()) {
          pinned[v] = *target;
          ++stats_.migrations;
          DSSLICE_COUNT("recovery.migrations", 1);
        } else {
          pinned[v] = kUnpinnedProcessor;
        }
      }
      std::vector<NodeId> revived;
      for (const NodeId v : victims) {
        const auto target = choose_migration_target(
            app_.task(v), view.platform, view.busy_until, view.down_at,
            view.now);
        if (!target.has_value()) {
          ++stats_.abandoned;
          continue;
        }
        pinned[v] = *target;
        ++stats_.migrations;
        DSSLICE_COUNT("recovery.migrations", 1);
        ++stats_.revived;
        DSSLICE_COUNT("recovery.revived", 1);
        revived.push_back(v);
      }
      return revived;
    }

    case RecoveryPolicy::kDegradeThenMigrate: {
      // Degrade first: reclaim the optional parts, then give the surviving
      // suffix the residual budget. Only when a victim's re-sliced window
      // still cannot fit its (now mandatory-only) demand does the policy
      // escalate to migration, pinning the task to the least-loaded
      // surviving processor of an eligible class.
      shed_optionals(view);
      DSSLICE_SPAN("recovery.reslice");
      windows = redistribute_slack(app_, live_est_, view, windows);
      ++stats_.reslices;
      DSSLICE_COUNT("recovery.reslices", 1);
      // Unpin / re-home unstarted tasks stranded on the dead processor.
      for (NodeId v = 0; v < app_.task_count(); ++v) {
        if (view.started[v] || view.done[v] || pinned[v] != p) {
          continue;
        }
        const auto target = choose_migration_target(
            app_.task(v), view.platform, view.busy_until, view.down_at,
            view.now);
        if (target.has_value()) {
          pinned[v] = *target;
          ++stats_.migrations;
          DSSLICE_COUNT("recovery.migrations", 1);
        } else {
          pinned[v] = kUnpinnedProcessor;
        }
      }
      std::vector<NodeId> revived;
      for (const NodeId v : victims) {
        if (windows[v].fits(live_est_[v])) {
          // Shedding reclaimed enough slack: re-release the victim with no
          // placement restriction.
          pinned[v] = kUnpinnedProcessor;
          ++stats_.revived;
          DSSLICE_COUNT("recovery.revived", 1);
          revived.push_back(v);
          continue;
        }
        const auto target = choose_migration_target(
            app_.task(v), view.platform, view.busy_until, view.down_at,
            view.now);
        if (!target.has_value()) {
          ++stats_.abandoned;
          continue;
        }
        pinned[v] = *target;
        ++stats_.migrations;
        DSSLICE_COUNT("recovery.migrations", 1);
        ++stats_.revived;
        DSSLICE_COUNT("recovery.revived", 1);
        revived.push_back(v);
      }
      return revived;
    }
  }
  return {};
}

}  // namespace dsslice
