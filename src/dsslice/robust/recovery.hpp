// Degraded-mode recovery policies for the on-line dispatcher
// (docs/ROBUSTNESS.md).
//
// A RecoveryEngine plugs into EdfDispatchScheduler through the
// DispatchControl hook and reacts to the fault events the dispatcher
// surfaces:
//  * kNone             — observe only; killed tasks are lost, windows stay
//                        as sliced (the baseline the harness compares to).
//  * kRedistributeSlack— when a task overruns its slice deadline or a
//                        processor fails, re-slice the surviving suffix of
//                        every affected path: each not-yet-started task gets
//                        the execution window [EST, LFT] computed over the
//                        *residual* E-T-E budget (earliest start from the
//                        actual state of the run, latest finish backing off
//                        each output's E-T-E deadline by the estimated
//                        remaining work). By construction no new deadline
//                        ever exceeds the residual budget along any path.
//                        Killed tasks are revived and re-windowed.
//  * kMigrate          — reassign tasks stranded on a failed processor to
//                        the least-loaded surviving processor of an
//                        eligible class (windows untouched).
//  * kShedOptional     — graceful degradation (imprecise computation): on an
//                        overrun or failure, drop the *optional* part of
//                        every not-yet-started task (View::shed), then
//                        redistribute the reclaimed time as slack over the
//                        surviving suffix. Tasks with optional_fraction == 0
//                        make this behave exactly like kRedistributeSlack.
//  * kDegradeThenMigrate — shed first; migrate a victim to a surviving
//                        processor only when its re-sliced window still
//                        cannot fit its (reduced) estimated demand.
#pragma once

#include <optional>
#include <span>
#include <string>
#include <vector>

#include "dsslice/model/application.hpp"
#include "dsslice/model/platform.hpp"
#include "dsslice/sched/dispatch_scheduler.hpp"

namespace dsslice {

enum class RecoveryPolicy {
  kNone,
  kRedistributeSlack,
  kMigrate,
  kShedOptional,
  kDegradeThenMigrate,
};

std::string to_string(RecoveryPolicy policy);

/// All policies in presentation order.
std::span<const RecoveryPolicy> all_recovery_policies();

/// Recomputes the windows of every not-yet-started task from the live
/// dispatch state: arrival = earliest start consistent with the actual
/// finishes of started work (estimated WCETs for unstarted predecessors),
/// deadline = latest finish that still leaves every downstream task its
/// estimated WCET before its output's E-T-E deadline. Started and completed
/// tasks keep their windows. Exposed for tests (the budget-safety property
/// is asserted path-by-path).
std::vector<Window> redistribute_slack(const Application& app,
                                       std::span<const double> est_wcet,
                                       const DispatchControl::View& view,
                                       const std::vector<Window>& windows);

/// The least-loaded processor still alive at `now` whose class the task is
/// eligible for (ties: smaller WCET, then lower id). nullopt when every
/// eligible processor is down — the task cannot be recovered.
std::optional<ProcessorId> choose_migration_target(
    const Task& task, const Platform& platform,
    std::span<const Time> busy_until, std::span<const Time> down_at,
    Time now);

/// Counters of the recovery actions taken during one dispatch.
struct RecoveryStats {
  std::size_t reslices = 0;    ///< redistribute_slack invocations
  std::size_t migrations = 0;  ///< tasks re-pinned to a surviving processor
  std::size_t revived = 0;     ///< killed tasks re-released for execution
  std::size_t abandoned = 0;   ///< killed tasks with no surviving option
  std::size_t shed = 0;        ///< tasks whose optional part was dropped
  double optional_dropped = 0.0;  ///< estimated optional time shed (units)

  void merge(const RecoveryStats& other);
};

/// DispatchControl implementation of the recovery policies. Stateful per
/// run: construct one engine per dispatch simulation.
class RecoveryEngine final : public DispatchControl {
 public:
  RecoveryEngine(RecoveryPolicy policy, const Application& app,
                 std::vector<double> est_wcet);

  RecoveryPolicy policy() const { return policy_; }
  const RecoveryStats& stats() const { return stats_; }

  void on_completion(const View& view, NodeId v, bool missed,
                     std::vector<Window>& windows) override;

  std::vector<NodeId> on_processor_failure(
      const View& view, ProcessorId p, const std::vector<NodeId>& victims,
      std::vector<Window>& windows,
      std::vector<ProcessorId>& pinned) override;

 private:
  /// Drops the optional part of every not-yet-started task that still has
  /// one: marks view.shed, reduces live_est_ to the mandatory demand, and
  /// tallies the reclaimed time. No-op when the host provides no shed
  /// channel or nothing is left to shed.
  void shed_optionals(const View& view);

  RecoveryPolicy policy_;
  const Application& app_;
  std::vector<double> est_wcet_;
  /// Estimates the re-slice passes plan against: starts as est_wcet_ and
  /// drops to the mandatory demand of each task shed_optionals() degrades.
  /// Identical to est_wcet_ whenever no task carries an optional part, which
  /// keeps kShedOptional bit-identical to kRedistributeSlack on precise
  /// workloads.
  std::vector<double> live_est_;
  RecoveryStats stats_;
};

}  // namespace dsslice
