// Multiprocessor platform: processors, their classes, and the interconnect.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "dsslice/model/interconnect.hpp"
#include "dsslice/model/processor.hpp"
#include "dsslice/model/time.hpp"

namespace dsslice {

/// Graham-style machine classification (§3.1).
enum class MachineKind {
  kIdentical,  ///< single class: every task runs equally fast everywhere
  kUniform,    ///< per-class speed factor scales a common base time
  kUnrelated,  ///< per-(task, class) execution times are arbitrary
};

std::string to_string(MachineKind kind);

/// A heterogeneous multiprocessor P = {p_q} with class set E and a network.
///
/// The platform owns its interconnect. Copying a platform clones the
/// interconnect settings for the shared-bus case (the only copyable model the
/// generator produces); platforms with custom networks are move-only in
/// practice.
class Platform {
 public:
  /// Convenience factory for the paper's platform: `m` processors drawn from
  /// `classes`, shared bus with unit per-item delay. `class_of[q]` gives each
  /// processor's class index; it must have `m` entries.
  static Platform shared_bus(std::vector<ProcessorClass> classes,
                             std::vector<ProcessorClassId> class_of,
                             Time per_item_delay = 1.0);

  /// Homogeneous convenience factory: `m` identical processors, shared bus.
  static Platform identical(std::size_t m, Time per_item_delay = 1.0);

  Platform(std::vector<ProcessorClass> classes, std::vector<Processor> procs,
           std::shared_ptr<const Interconnect> network);

  std::size_t processor_count() const { return processors_.size(); }
  std::size_t class_count() const { return classes_.size(); }

  const Processor& processor(ProcessorId p) const;
  const ProcessorClass& processor_class(ProcessorClassId e) const;
  ProcessorClassId class_of(ProcessorId p) const;

  const std::vector<Processor>& processors() const { return processors_; }
  const std::vector<ProcessorClass>& classes() const { return classes_; }

  const Interconnect& network() const { return *network_; }

  /// Worst-case message delay between two processors (0 when co-located).
  Time comm_delay(ProcessorId src, ProcessorId dst, double items) const;

  /// Number of processors belonging to class `e`.
  std::size_t processors_in_class(ProcessorClassId e) const;

 private:
  std::vector<ProcessorClass> classes_;
  std::vector<Processor> processors_;
  std::shared_ptr<const Interconnect> network_;
};

}  // namespace dsslice
