#include "dsslice/model/interconnect.hpp"

#include "dsslice/util/check.hpp"

namespace dsslice {

SharedBus::SharedBus(Time per_item_delay) : per_item_delay_(per_item_delay) {
  DSSLICE_REQUIRE(per_item_delay >= 0.0, "bus delay must be non-negative");
}

Time SharedBus::delay(ProcessorId src, ProcessorId dst, double items) const {
  DSSLICE_REQUIRE(items >= 0.0, "negative message size");
  if (src == dst) {
    return kTimeZero;
  }
  return items * per_item_delay_;
}

LinkNetwork::LinkNetwork(std::size_t processors, Time default_per_item_delay)
    : size_(processors), per_item_(processors * processors,
                                   default_per_item_delay) {
  DSSLICE_REQUIRE(processors > 0, "network needs at least one processor");
  DSSLICE_REQUIRE(default_per_item_delay >= 0.0,
                  "link delay must be non-negative");
  for (std::size_t p = 0; p < size_; ++p) {
    per_item_[p * size_ + p] = kTimeZero;
  }
}

void LinkNetwork::set_link(ProcessorId src, ProcessorId dst,
                           Time per_item_delay) {
  DSSLICE_REQUIRE(src < size_ && dst < size_, "link endpoint out of range");
  DSSLICE_REQUIRE(per_item_delay >= 0.0, "link delay must be non-negative");
  if (src == dst) {
    return;  // intra-processor cost is always zero
  }
  per_item_[src * size_ + dst] = per_item_delay;
}

void LinkNetwork::set_bidirectional(ProcessorId a, ProcessorId b,
                                    Time per_item_delay) {
  set_link(a, b, per_item_delay);
  set_link(b, a, per_item_delay);
}

Time LinkNetwork::delay(ProcessorId src, ProcessorId dst, double items) const {
  DSSLICE_REQUIRE(src < size_ && dst < size_, "processor out of range");
  DSSLICE_REQUIRE(items >= 0.0, "negative message size");
  return items * per_item_[src * size_ + dst];
}

}  // namespace dsslice
