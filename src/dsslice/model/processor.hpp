// Processors and processor classes (§3.1 of the paper).
//
// Heterogeneity is expressed through processor classes: every processor
// belongs to exactly one class e(p) ∈ E, and a task's WCET is looked up per
// class. Classes carry a descriptive speed factor used by the workload
// generator (uniform-machines flavour) but the scheduler only ever consults
// per-class WCET tables, so unrelated machines are equally supported.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dsslice/model/time.hpp"

namespace dsslice {

using ProcessorId = std::uint32_t;
using ProcessorClassId = std::uint32_t;

/// Hardware configuration shared by all processors of one class.
struct ProcessorClass {
  std::string name;
  /// Relative speed factor (1.0 = nominal). Informational: execution times
  /// are always taken from per-class WCET tables, not derived from this.
  double speed_factor = 1.0;
};

/// A schedulable processor p_q with its class e(p_q).
struct Processor {
  std::string name;
  ProcessorClassId klass = 0;

  /// Static availability window [available_from, available_until): outside
  /// it the processor accepts no new work. This models *planned* degraded
  /// modes (maintenance windows, staged bring-up); the on-line dispatcher
  /// plans around it, in contrast to the *unforeseen* failures injected by
  /// robust/fault_model.hpp, which kill work in flight. The constructive
  /// schedulers assume full availability (docs/ROBUSTNESS.md).
  Time available_from = kTimeZero;
  Time available_until = kTimeInfinity;

  /// True when the processor may execute work at time t.
  bool available_at(Time t) const {
    return t >= available_from && t < available_until;
  }
};

}  // namespace dsslice
