// Interconnection-network model (§3.1).
//
// The paper's experimental platform is a time-multiplexed shared bus where
// transferring one data item between two different processors costs one time
// unit; communication between co-located tasks goes through shared memory at
// zero cost, and communication is asynchronous (overlaps computation), so
// only the receiving task observes the delay.
//
// `Interconnect` abstracts the worst-case ("nominal") delay model so that
// alternative networks can be plugged into the scheduler. Two concrete
// models are provided:
//  * SharedBus      — the paper's platform (cost = items × per-item delay).
//  * LinkNetwork    — per-processor-pair delay table (dedicated links with
//                     individual bandwidths; arbitrary topologies reduce to
//                     their worst-case route delay, which is all the
//                     scheduler's admission test needs).
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "dsslice/model/processor.hpp"
#include "dsslice/model/time.hpp"

namespace dsslice {

class Interconnect {
 public:
  virtual ~Interconnect() = default;

  /// Worst-case delay for sending `items` data items from `src` to `dst`.
  /// Implementations must return 0 when src == dst (shared memory).
  virtual Time delay(ProcessorId src, ProcessorId dst, double items) const = 0;

  virtual std::string name() const = 0;
};

/// Time-multiplexed shared bus: `items * per_item_delay` between distinct
/// processors (the paper uses per_item_delay = 1 time unit).
class SharedBus final : public Interconnect {
 public:
  explicit SharedBus(Time per_item_delay = 1.0);

  Time delay(ProcessorId src, ProcessorId dst, double items) const override;
  std::string name() const override { return "shared-bus"; }

  Time per_item_delay() const { return per_item_delay_; }

 private:
  Time per_item_delay_;
};

/// Dense per-pair nominal delay table: delay(src→dst, items) =
/// items * per_item_delay[src][dst]. Diagonal is forced to zero.
class LinkNetwork final : public Interconnect {
 public:
  /// Creates a network over `processors` with a uniform default per-item
  /// delay; individual links can then be overridden.
  LinkNetwork(std::size_t processors, Time default_per_item_delay);

  void set_link(ProcessorId src, ProcessorId dst, Time per_item_delay);
  /// Symmetric convenience setter.
  void set_bidirectional(ProcessorId a, ProcessorId b, Time per_item_delay);

  Time delay(ProcessorId src, ProcessorId dst, double items) const override;
  std::string name() const override { return "link-network"; }

  std::size_t processor_count() const { return size_; }

 private:
  std::size_t size_;
  std::vector<Time> per_item_;  // row-major size_ × size_
};

}  // namespace dsslice
