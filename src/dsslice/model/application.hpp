// A real-time application: task graph + task parameters + end-to-end timing
// requirements (input arrival times and E-T-E deadlines on output tasks).
#pragma once

#include <atomic>
#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "dsslice/analysis/graph_analysis.hpp"
#include "dsslice/graph/task_graph.hpp"
#include "dsslice/model/platform.hpp"
#include "dsslice/model/task.hpp"
#include "dsslice/model/time.hpp"

namespace dsslice {

class Application {
 public:
  Application(TaskGraph graph, std::vector<Task> tasks);

  // The task graph is fixed at construction, so the memoized GraphAnalysis
  // stays valid for the application's whole lifetime and copies may share
  // it. The copy/move operations below exist only because the cache slot is
  // a std::atomic (not copyable); they otherwise behave like the defaults.
  Application(const Application& other);
  Application(Application&& other) noexcept;
  Application& operator=(const Application& other);
  Application& operator=(Application&& other) noexcept;

  const TaskGraph& graph() const { return graph_; }
  std::size_t task_count() const { return tasks_.size(); }

  /// The shared graph analysis (topological order, CSR adjacency, reach /
  /// co-reach bitsets, parallel-set sizes), built lazily on first use and
  /// memoized for the lifetime of the application. Thread-safe: concurrent
  /// first calls race benignly (one result wins, the rest are discarded).
  /// Requires an acyclic graph, like every consumer of the analysis.
  /// Invalidation: the graph only changes through rebuild_swap, which
  /// resets `analysis_cache_`; any future API that mutates the graph in
  /// place must do the same.
  const GraphAnalysis& analysis() const;

  /// Rebuilds this application in place by *swapping* in new graph and task
  /// storage: the previous storage lands back in the arguments so the caller
  /// can recycle its heap capacity (batch-generation hot path). Arrivals
  /// revert to the tasks' phasing, E-T-E deadlines reset to unset and the
  /// memoized analysis is dropped — the result is indistinguishable from a
  /// freshly constructed Application(graph, tasks).
  void rebuild_swap(TaskGraph& graph, std::vector<Task>& tasks);

  const Task& task(NodeId i) const;
  Task& mutable_task(NodeId i);
  const std::vector<Task>& tasks() const { return tasks_; }

  /// Sets the earliest release of an input task (its phasing φ). Only
  /// meaningful for tasks with no predecessors.
  void set_input_arrival(NodeId input, Time arrival);
  /// Arrival of an input task (defaults to the task's phasing, i.e. 0).
  Time input_arrival(NodeId input) const;

  /// Sets the absolute end-to-end deadline of an output task.
  void set_ete_deadline(NodeId output, Time deadline);
  /// E-T-E deadline of an output task; kTimeInfinity when unset.
  Time ete_deadline(NodeId output) const;
  bool has_ete_deadline(NodeId output) const;

  /// Total estimated workload Σ c̄_i for a given WCET estimate vector.
  Time total_workload(std::span<const double> est_wcet) const;

  /// True when any task carries an optional (sheddable) part. O(n) scan;
  /// gates the imprecise-computation paths so the classic precise model
  /// pays nothing.
  bool has_optional_work() const;

  /// Validates internal consistency against a platform:
  /// graph is acyclic, each task has one WCET entry per platform class,
  /// at least one eligible class, non-negative parameters, every output with
  /// a finite deadline, every input with a finite arrival. Returns a list of
  /// human-readable problems (empty = valid).
  std::vector<std::string> validate(const Platform& platform) const;

  /// Throwing wrapper around validate().
  void validate_or_throw(const Platform& platform) const;

 private:
  TaskGraph graph_;
  std::vector<Task> tasks_;
  std::vector<Time> ete_deadline_;   // per node; infinity when not an anchor
  // Lazily-built memoized analysis; shared between copies (same graph).
  mutable std::atomic<std::shared_ptr<const GraphAnalysis>> analysis_cache_;
};

/// Disjoint union of two applications: b's tasks are appended after a's
/// (node ids offset by a.task_count()); arcs, arrivals, E-T-E deadlines and
/// periods carry over. Useful for composing multi-rate workloads whose
/// components the planning-cycle expander can unroll at different rates.
Application merge_applications(const Application& a, const Application& b);

/// Fluent builder used by examples and tests:
///
///   ApplicationBuilder b;
///   auto sense = b.add_task("sense", {4.0, 5.0});
///   auto act   = b.add_task("act",   {2.0, 2.5});
///   b.add_precedence(sense, act, /*message_items=*/2.0);
///   b.set_ete_deadline(act, 40.0);
///   Application app = b.build();
class ApplicationBuilder {
 public:
  /// Adds a task with explicit per-class WCETs (use kIneligibleWcet to mark
  /// classes the task may not run on).
  NodeId add_task(std::string name, std::vector<double> wcet_by_class,
                  Time phasing = kTimeZero, Time period = kTimeZero);

  /// Adds a task that runs on every class with the same WCET. The builder
  /// expands the vector to the class count given at build().
  NodeId add_uniform_task(std::string name, double wcet,
                          Time phasing = kTimeZero, Time period = kTimeZero);

  void add_precedence(NodeId from, NodeId to, double message_items = 0.0);

  /// Declares a chain t1 ≺ t2 ≺ ... with a shared message size.
  void add_chain(const std::vector<NodeId>& chain, double message_items = 0.0);

  void set_input_arrival(NodeId input, Time arrival);
  void set_ete_deadline(NodeId output, Time deadline);

  std::size_t task_count() const { return tasks_.size(); }

  /// Builds the application. `class_count` resolves add_uniform_task entries;
  /// tasks added with explicit vectors must match it.
  Application build(std::size_t class_count = 1);

 private:
  struct Pending {
    Task task;
    bool uniform = false;
    double uniform_wcet = 0.0;
  };
  TaskGraph graph_;
  std::vector<Pending> tasks_;
  std::vector<std::pair<NodeId, Time>> arrivals_;
  std::vector<std::pair<NodeId, Time>> deadlines_;
};

}  // namespace dsslice
