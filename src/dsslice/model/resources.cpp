#include "dsslice/model/resources.hpp"

#include <algorithm>

#include "dsslice/util/check.hpp"

namespace dsslice {

ResourceModel::ResourceModel(std::size_t task_count,
                             std::size_t resource_count)
    : resource_count_(resource_count),
      per_task_(task_count),
      per_resource_(resource_count) {}

void ResourceModel::require_task(NodeId task) const {
  DSSLICE_REQUIRE(task < per_task_.size(), "task id out of range");
}

void ResourceModel::require_resource(ResourceId resource) const {
  DSSLICE_REQUIRE(resource < resource_count_, "resource id out of range");
}

void ResourceModel::require(NodeId task, ResourceId resource) {
  require_task(task);
  require_resource(resource);
  auto& resources = per_task_[task];
  const auto pos = std::lower_bound(resources.begin(), resources.end(),
                                    resource);
  if (pos != resources.end() && *pos == resource) {
    return;  // idempotent
  }
  resources.insert(pos, resource);
  auto& holders = per_resource_[resource];
  holders.insert(std::lower_bound(holders.begin(), holders.end(), task),
                 task);
  ++requirement_count_;
}

std::span<const ResourceId> ResourceModel::resources_of(NodeId task) const {
  require_task(task);
  return per_task_[task];
}

bool ResourceModel::conflicts(NodeId a, NodeId b) const {
  require_task(a);
  require_task(b);
  const auto& ra = per_task_[a];
  const auto& rb = per_task_[b];
  // Both sorted: linear merge scan.
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < ra.size() && j < rb.size()) {
    if (ra[i] == rb[j]) {
      return true;
    }
    if (ra[i] < rb[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  return false;
}

std::span<const NodeId> ResourceModel::holders_of(ResourceId resource) const {
  require_resource(resource);
  return per_resource_[resource];
}

}  // namespace dsslice
