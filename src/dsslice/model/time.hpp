// Time base for the simulation.
//
// The paper assumes a discrete global system time (t ∈ N) with all
// application parameters expressed in integral time units. Deadline slicing,
// however, produces rational slice boundaries (windows are divided by task
// counts / execution-time sums). We therefore represent time as `double`:
// all generated inputs are integral, and every boundary is computed from a
// single closed-form expression over integral inputs (prefix sums), so
// comparisons are reproducible and windows tile exactly.
#pragma once

#include <limits>
#include <string>

namespace dsslice {

/// Simulation time, in paper "time units".
using Time = double;

inline constexpr Time kTimeZero = 0.0;
inline constexpr Time kTimeInfinity = std::numeric_limits<Time>::infinity();

/// Half-open / closed execution window [arrival, deadline] of a task.
struct Window {
  Time arrival = kTimeZero;     ///< earliest start time a_i
  Time deadline = kTimeInfinity;  ///< absolute deadline D_i

  /// Window length |w_i| = D_i - a_i; negative for inverted windows, which
  /// can arise when the end-to-end deadline is infeasibly tight.
  Time length() const { return deadline - arrival; }

  /// True when the window can hold an execution of duration `c`.
  bool fits(Time c) const { return length() >= c; }

  bool operator==(const Window&) const = default;
};

/// Human-readable "[a, D]" rendering used in logs and schedule dumps.
std::string to_string(const Window& w);

/// Greatest common divisor / least common multiple on integral time values
/// (used by the planning-cycle computation for periodic task sets).
long long time_gcd(long long a, long long b);
long long time_lcm(long long a, long long b);

}  // namespace dsslice
