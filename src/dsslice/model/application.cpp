#include "dsslice/model/application.hpp"

#include <cmath>
#include <sstream>
#include <utility>

#include "dsslice/graph/algorithms.hpp"
#include "dsslice/obs/trace.hpp"
#include "dsslice/util/check.hpp"

namespace dsslice {

Application::Application(TaskGraph graph, std::vector<Task> tasks)
    : graph_(std::move(graph)),
      tasks_(std::move(tasks)),
      ete_deadline_(tasks_.size(), kTimeInfinity) {
  DSSLICE_REQUIRE(graph_.node_count() == tasks_.size(),
                  "one task per graph node required");
}

Application::Application(const Application& other)
    : graph_(other.graph_),
      tasks_(other.tasks_),
      ete_deadline_(other.ete_deadline_),
      analysis_cache_(other.analysis_cache_.load(std::memory_order_acquire)) {}

Application::Application(Application&& other) noexcept
    : graph_(std::move(other.graph_)),
      tasks_(std::move(other.tasks_)),
      ete_deadline_(std::move(other.ete_deadline_)),
      analysis_cache_(other.analysis_cache_.load(std::memory_order_acquire)) {}

Application& Application::operator=(const Application& other) {
  if (this != &other) {
    graph_ = other.graph_;
    tasks_ = other.tasks_;
    ete_deadline_ = other.ete_deadline_;
    analysis_cache_.store(other.analysis_cache_.load(std::memory_order_acquire),
                          std::memory_order_release);
  }
  return *this;
}

Application& Application::operator=(Application&& other) noexcept {
  if (this != &other) {
    graph_ = std::move(other.graph_);
    tasks_ = std::move(other.tasks_);
    ete_deadline_ = std::move(other.ete_deadline_);
    analysis_cache_.store(other.analysis_cache_.load(std::memory_order_acquire),
                          std::memory_order_release);
  }
  return *this;
}

void Application::rebuild_swap(TaskGraph& graph, std::vector<Task>& tasks) {
  DSSLICE_REQUIRE(graph.node_count() == tasks.size(),
                  "one task per graph node required");
  std::swap(graph_, graph);
  std::swap(tasks_, tasks);
  ete_deadline_.assign(tasks_.size(), kTimeInfinity);
  analysis_cache_.store(nullptr, std::memory_order_release);
}

const GraphAnalysis& Application::analysis() const {
  auto cached = analysis_cache_.load(std::memory_order_acquire);
  if (cached == nullptr) {
    DSSLICE_COUNT("analysis.cache.miss", 1);
    auto built = std::make_shared<const GraphAnalysis>(graph_);
    std::shared_ptr<const GraphAnalysis> expected;
    if (analysis_cache_.compare_exchange_strong(expected, built,
                                                std::memory_order_acq_rel,
                                                std::memory_order_acquire)) {
      cached = std::move(built);
    } else {
      cached = std::move(expected);  // another thread won the race
    }
  } else {
    DSSLICE_COUNT("analysis.cache.hit", 1);
  }
  return *cached;
}

const Task& Application::task(NodeId i) const {
  DSSLICE_REQUIRE(i < tasks_.size(), "task id out of range");
  return tasks_[i];
}

Task& Application::mutable_task(NodeId i) {
  DSSLICE_REQUIRE(i < tasks_.size(), "task id out of range");
  return tasks_[i];
}

void Application::set_input_arrival(NodeId input, Time arrival) {
  DSSLICE_REQUIRE(input < tasks_.size(), "task id out of range");
  DSSLICE_REQUIRE(graph_.is_input(input),
                  "arrival may only be set on input tasks");
  DSSLICE_REQUIRE(arrival >= kTimeZero && std::isfinite(arrival),
                  "arrival must be finite and non-negative");
  tasks_[input].phasing = arrival;
}

Time Application::input_arrival(NodeId input) const {
  DSSLICE_REQUIRE(input < tasks_.size(), "task id out of range");
  return tasks_[input].phasing;
}

void Application::set_ete_deadline(NodeId output, Time deadline) {
  DSSLICE_REQUIRE(output < tasks_.size(), "task id out of range");
  DSSLICE_REQUIRE(graph_.is_output(output),
                  "E-T-E deadlines may only be set on output tasks");
  DSSLICE_REQUIRE(deadline > kTimeZero, "deadline must be positive");
  ete_deadline_[output] = deadline;
}

Time Application::ete_deadline(NodeId output) const {
  DSSLICE_REQUIRE(output < tasks_.size(), "task id out of range");
  return ete_deadline_[output];
}

bool Application::has_ete_deadline(NodeId output) const {
  DSSLICE_REQUIRE(output < tasks_.size(), "task id out of range");
  return std::isfinite(ete_deadline_[output]);
}

Time Application::total_workload(std::span<const double> est_wcet) const {
  DSSLICE_REQUIRE(est_wcet.size() == tasks_.size(),
                  "estimate vector size mismatch");
  Time total = kTimeZero;
  for (const double c : est_wcet) {
    total += c;
  }
  return total;
}

bool Application::has_optional_work() const {
  for (const Task& t : tasks_) {
    if (t.has_optional_part()) {
      return true;
    }
  }
  return false;
}

std::vector<std::string> Application::validate(
    const Platform& platform) const {
  std::vector<std::string> problems;
  if (!is_dag(graph_)) {
    problems.push_back("task graph contains a cycle");
  }
  const std::size_t classes = platform.class_count();
  for (NodeId i = 0; i < tasks_.size(); ++i) {
    const Task& t = tasks_[i];
    const std::string who = "task " + std::to_string(i) + " (" + t.name + ")";
    if (t.wcet_by_class.size() != classes) {
      problems.push_back(who + ": WCET vector has " +
                         std::to_string(t.wcet_by_class.size()) +
                         " entries, platform has " + std::to_string(classes) +
                         " classes");
      continue;
    }
    if (t.eligible_class_count() == 0) {
      problems.push_back(who + ": ineligible on every processor class");
    }
    bool runnable = false;
    for (ProcessorId p = 0; p < platform.processor_count(); ++p) {
      if (t.eligible(platform.class_of(p))) {
        runnable = true;
        break;
      }
    }
    if (!runnable) {
      problems.push_back(who +
                         ": no processor of an eligible class is present");
    }
    for (const double c : t.wcet_by_class) {
      if (c >= 0.0 && !(c > 0.0)) {
        problems.push_back(who + ": zero WCET entry");
        break;
      }
    }
    if (t.phasing < kTimeZero || !std::isfinite(t.phasing)) {
      problems.push_back(who + ": invalid phasing");
    }
    if (t.period < kTimeZero) {
      problems.push_back(who + ": negative period");
    }
    if (!valid_optional_fraction(t.optional_fraction)) {
      problems.push_back(
          who + ": optional fraction must be finite and within [0, 1] "
                "(optional part cannot exceed the WCET or be negative)");
    }
    if (graph_.is_output(i) && !has_ete_deadline(i)) {
      problems.push_back(who + ": output task without an E-T-E deadline");
    }
  }
  return problems;
}

void Application::validate_or_throw(const Platform& platform) const {
  const auto problems = validate(platform);
  if (problems.empty()) {
    return;
  }
  std::ostringstream os;
  os << "invalid application:";
  for (const std::string& p : problems) {
    os << "\n  - " << p;
  }
  throw ConfigError(os.str());
}

Application merge_applications(const Application& a, const Application& b) {
  const auto offset = static_cast<NodeId>(a.task_count());
  TaskGraph graph(a.task_count() + b.task_count());
  std::vector<Task> tasks;
  tasks.reserve(a.task_count() + b.task_count());
  for (NodeId v = 0; v < a.task_count(); ++v) {
    tasks.push_back(a.task(v));
  }
  for (NodeId v = 0; v < b.task_count(); ++v) {
    tasks.push_back(b.task(v));
  }
  for (const Arc& arc : a.graph().arcs()) {
    graph.add_arc(arc.from, arc.to, arc.message_items);
  }
  for (const Arc& arc : b.graph().arcs()) {
    graph.add_arc(arc.from + offset, arc.to + offset, arc.message_items);
  }
  Application merged(std::move(graph), std::move(tasks));
  for (const NodeId in : a.graph().input_nodes()) {
    merged.set_input_arrival(in, a.input_arrival(in));
  }
  for (const NodeId in : b.graph().input_nodes()) {
    merged.set_input_arrival(in + offset, b.input_arrival(in));
  }
  for (const NodeId out : a.graph().output_nodes()) {
    if (a.has_ete_deadline(out)) {
      merged.set_ete_deadline(out, a.ete_deadline(out));
    }
  }
  for (const NodeId out : b.graph().output_nodes()) {
    if (b.has_ete_deadline(out)) {
      merged.set_ete_deadline(out + offset, b.ete_deadline(out));
    }
  }
  return merged;
}

NodeId ApplicationBuilder::add_task(std::string name,
                                    std::vector<double> wcet_by_class,
                                    Time phasing, Time period) {
  DSSLICE_REQUIRE(!wcet_by_class.empty(), "task needs at least one WCET");
  Pending p;
  p.task = Task{std::move(name), std::move(wcet_by_class), phasing, period};
  tasks_.push_back(std::move(p));
  return graph_.add_node();
}

NodeId ApplicationBuilder::add_uniform_task(std::string name, double wcet,
                                            Time phasing, Time period) {
  DSSLICE_REQUIRE(wcet > 0.0, "WCET must be positive");
  Pending p;
  p.task = Task{std::move(name), {}, phasing, period};
  p.uniform = true;
  p.uniform_wcet = wcet;
  tasks_.push_back(std::move(p));
  return graph_.add_node();
}

void ApplicationBuilder::add_precedence(NodeId from, NodeId to,
                                        double message_items) {
  graph_.add_arc(from, to, message_items);
}

void ApplicationBuilder::add_chain(const std::vector<NodeId>& chain,
                                   double message_items) {
  for (std::size_t i = 1; i < chain.size(); ++i) {
    add_precedence(chain[i - 1], chain[i], message_items);
  }
}

void ApplicationBuilder::set_input_arrival(NodeId input, Time arrival) {
  arrivals_.emplace_back(input, arrival);
}

void ApplicationBuilder::set_ete_deadline(NodeId output, Time deadline) {
  deadlines_.emplace_back(output, deadline);
}

Application ApplicationBuilder::build(std::size_t class_count) {
  DSSLICE_REQUIRE(class_count > 0, "need at least one processor class");
  std::vector<Task> tasks;
  tasks.reserve(tasks_.size());
  for (Pending& p : tasks_) {
    if (p.uniform) {
      p.task.wcet_by_class.assign(class_count, p.uniform_wcet);
    } else {
      DSSLICE_REQUIRE(p.task.wcet_by_class.size() == class_count,
                      "task " + p.task.name + " WCET vector does not match "
                      "class count");
    }
    tasks.push_back(std::move(p.task));
  }
  Application app(std::move(graph_), std::move(tasks));
  for (const auto& [node, arrival] : arrivals_) {
    app.set_input_arrival(node, arrival);
  }
  for (const auto& [node, deadline] : deadlines_) {
    app.set_ete_deadline(node, deadline);
  }
  // The builder is single-use: reset to a clean state.
  tasks_.clear();
  arrivals_.clear();
  deadlines_.clear();
  graph_ = TaskGraph();
  return app;
}

}  // namespace dsslice
