#include "dsslice/model/time.hpp"

#include <cstdlib>
#include <sstream>

#include "dsslice/util/check.hpp"
#include "dsslice/util/string_util.hpp"

namespace dsslice {

std::string to_string(const Window& w) {
  std::ostringstream os;
  os << "[" << format_fixed(w.arrival, 2) << ", "
     << format_fixed(w.deadline, 2) << "]";
  return os.str();
}

long long time_gcd(long long a, long long b) {
  a = std::llabs(a);
  b = std::llabs(b);
  while (b != 0) {
    const long long r = a % b;
    a = b;
    b = r;
  }
  return a;
}

long long time_lcm(long long a, long long b) {
  DSSLICE_REQUIRE(a > 0 && b > 0, "lcm requires positive periods");
  return a / time_gcd(a, b) * b;
}

}  // namespace dsslice
