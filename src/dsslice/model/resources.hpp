// General resource requirements (paper §7.3 future work).
//
// Beyond processors, real-time tasks contend for shared data structures,
// devices and other serially-reusable resources. The model here is
// deliberately simple and matches the paper's non-preemptive run-to-
// completion semantics: a task holds every resource it requires for its
// whole execution interval, and each resource is exclusive (one holder at
// a time). Under non-preemptive execution this is deadlock-free by
// construction — a task acquires all resources atomically at its start
// time and releases them at its finish time.
//
// The model is intentionally kept outside Task so existing applications
// are unaffected; it is attached at the scheduling / metric call sites.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "dsslice/graph/task_graph.hpp"

namespace dsslice {

using ResourceId = std::uint32_t;

class ResourceModel {
 public:
  ResourceModel(std::size_t task_count, std::size_t resource_count);

  std::size_t task_count() const { return per_task_.size(); }
  std::size_t resource_count() const { return resource_count_; }

  /// Declares that `task` needs exclusive access to `resource` while it
  /// executes. Duplicate declarations are idempotent.
  void require(NodeId task, ResourceId resource);

  /// Resources required by a task (ascending order).
  std::span<const ResourceId> resources_of(NodeId task) const;

  /// True when the two tasks share at least one resource (and are thus
  /// serialized even across different processors).
  bool conflicts(NodeId a, NodeId b) const;

  /// Tasks requiring a given resource (ascending order).
  std::span<const NodeId> holders_of(ResourceId resource) const;

  /// Total number of (task, resource) requirement pairs.
  std::size_t requirement_count() const { return requirement_count_; }

 private:
  void require_task(NodeId task) const;
  void require_resource(ResourceId resource) const;

  std::size_t resource_count_;
  std::size_t requirement_count_ = 0;
  std::vector<std::vector<ResourceId>> per_task_;
  std::vector<std::vector<NodeId>> per_resource_;
};

}  // namespace dsslice
