#include "dsslice/model/platform.hpp"

#include <algorithm>

#include "dsslice/util/check.hpp"

namespace dsslice {

std::string to_string(MachineKind kind) {
  switch (kind) {
    case MachineKind::kIdentical:
      return "identical";
    case MachineKind::kUniform:
      return "uniform";
    case MachineKind::kUnrelated:
      return "unrelated";
  }
  return "unknown";
}

Platform Platform::shared_bus(std::vector<ProcessorClass> classes,
                              std::vector<ProcessorClassId> class_of,
                              Time per_item_delay) {
  DSSLICE_REQUIRE(!classes.empty(), "at least one processor class required");
  DSSLICE_REQUIRE(!class_of.empty(), "at least one processor required");
  std::vector<Processor> procs;
  procs.reserve(class_of.size());
  for (std::size_t q = 0; q < class_of.size(); ++q) {
    DSSLICE_REQUIRE(class_of[q] < classes.size(),
                    "processor class index out of range");
    procs.push_back(Processor{"p" + std::to_string(q), class_of[q]});
  }
  return Platform(std::move(classes), std::move(procs),
                  std::make_shared<SharedBus>(per_item_delay));
}

Platform Platform::identical(std::size_t m, Time per_item_delay) {
  DSSLICE_REQUIRE(m > 0, "at least one processor required");
  std::vector<ProcessorClass> classes{ProcessorClass{"e0", 1.0}};
  std::vector<ProcessorClassId> class_of(m, 0);
  return shared_bus(std::move(classes), std::move(class_of), per_item_delay);
}

Platform::Platform(std::vector<ProcessorClass> classes,
                   std::vector<Processor> procs,
                   std::shared_ptr<const Interconnect> network)
    : classes_(std::move(classes)),
      processors_(std::move(procs)),
      network_(std::move(network)) {
  DSSLICE_REQUIRE(!classes_.empty(), "at least one processor class required");
  DSSLICE_REQUIRE(!processors_.empty(), "at least one processor required");
  DSSLICE_REQUIRE(network_ != nullptr, "platform needs an interconnect");
  for (const Processor& p : processors_) {
    DSSLICE_REQUIRE(p.klass < classes_.size(),
                    "processor references unknown class");
  }
}

const Processor& Platform::processor(ProcessorId p) const {
  DSSLICE_REQUIRE(p < processors_.size(), "processor id out of range");
  return processors_[p];
}

const ProcessorClass& Platform::processor_class(ProcessorClassId e) const {
  DSSLICE_REQUIRE(e < classes_.size(), "class id out of range");
  return classes_[e];
}

ProcessorClassId Platform::class_of(ProcessorId p) const {
  return processor(p).klass;
}

Time Platform::comm_delay(ProcessorId src, ProcessorId dst,
                          double items) const {
  DSSLICE_REQUIRE(src < processors_.size() && dst < processors_.size(),
                  "processor id out of range");
  return network_->delay(src, dst, items);
}

std::size_t Platform::processors_in_class(ProcessorClassId e) const {
  DSSLICE_REQUIRE(e < classes_.size(), "class id out of range");
  return static_cast<std::size_t>(
      std::count_if(processors_.begin(), processors_.end(),
                    [e](const Processor& p) { return p.klass == e; }));
}

}  // namespace dsslice
