#include "dsslice/model/task.hpp"

#include <algorithm>
#include <cmath>

#include "dsslice/util/check.hpp"

namespace dsslice {

double Task::wcet(ProcessorClassId e) const {
  DSSLICE_REQUIRE(e < wcet_by_class.size(),
                  "class id out of range for task " + name);
  const double c = wcet_by_class[e];
  DSSLICE_REQUIRE(c >= 0.0, "task " + name + " is ineligible on this class");
  return c;
}

double Task::mandatory_wcet(ProcessorClassId e) const {
  const double c = wcet(e);
  // The guard keeps the precise model bit-identical: c · 1.0 == c for every
  // finite c, but skipping the multiply entirely removes any doubt.
  return optional_fraction == 0.0 ? c : c * (1.0 - optional_fraction);
}

double Task::optional_wcet(ProcessorClassId e) const {
  return optional_fraction == 0.0 ? 0.0 : wcet(e) * optional_fraction;
}

bool valid_optional_fraction(double fraction) {
  return std::isfinite(fraction) && fraction >= 0.0 && fraction <= 1.0;
}

std::size_t Task::eligible_class_count() const {
  return static_cast<std::size_t>(
      std::count_if(wcet_by_class.begin(), wcet_by_class.end(),
                    [](double c) { return c >= 0.0; }));
}

}  // namespace dsslice
