#include "dsslice/model/task.hpp"

#include <algorithm>

#include "dsslice/util/check.hpp"

namespace dsslice {

double Task::wcet(ProcessorClassId e) const {
  DSSLICE_REQUIRE(e < wcet_by_class.size(),
                  "class id out of range for task " + name);
  const double c = wcet_by_class[e];
  DSSLICE_REQUIRE(c >= 0.0, "task " + name + " is ineligible on this class");
  return c;
}

std::size_t Task::eligible_class_count() const {
  return static_cast<std::size_t>(
      std::count_if(wcet_by_class.begin(), wcet_by_class.end(),
                    [](double c) { return c >= 0.0; }));
}

}  // namespace dsslice
