// Task model (§3.2): static parameters ⟨c_i, φ_i, d_i, T_i⟩ with per-class
// WCET vectors for heterogeneous platforms.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dsslice/model/processor.hpp"
#include "dsslice/model/time.hpp"

namespace dsslice {

/// Sentinel WCET marking a (task, class) pair as ineligible — the task
/// requires hardware resources the class does not provide (§5.2's 5% rule).
inline constexpr double kIneligibleWcet = -1.0;

/// A task τ_i. The relative deadline d_i and arrival time a_i are *outputs*
/// of deadline distribution, so they live in DeadlineAssignment, not here;
/// the task only carries the static application-level parameters.
struct Task {
  std::string name;

  /// Worst-case execution time per processor class; kIneligibleWcet where
  /// the task may not run. Must have one entry per platform class.
  std::vector<double> wcet_by_class;

  /// Earliest time of the first invocation, relative to the time origin.
  Time phasing = kTimeZero;

  /// Period T_i; 0 marks a single-shot (aperiodic) task. For periodic tasks
  /// the planning-cycle expander (sched/planning_cycle) unrolls invocations.
  Time period = kTimeZero;

  /// Imprecise-computation split (docs/ROBUSTNESS.md): the fraction of the
  /// WCET that is *optional* — work a degraded-mode recovery policy may shed
  /// under overload, leaving only the mandatory part
  /// (1 − optional_fraction) · c_i[e] to execute. 0 (the default) makes the
  /// whole task mandatory and preserves the classic precise model
  /// bit-identically; 1 makes it fully optional. Values outside [0, 1]
  /// (an optional part larger than the WCET, negative splits, NaN) are
  /// rejected by Application::validate and the scenario parser. Kept last so
  /// aggregate initializers of the pre-split field set stay valid.
  double optional_fraction = 0.0;

  bool is_periodic() const { return period > kTimeZero; }

  bool eligible(ProcessorClassId e) const {
    return e < wcet_by_class.size() && wcet_by_class[e] >= 0.0;
  }

  /// WCET on class `e`; requires eligibility.
  double wcet(ProcessorClassId e) const;

  /// Mandatory part of the WCET on class `e`:
  /// (1 − optional_fraction) · wcet(e). Equals wcet(e) exactly (bitwise)
  /// when optional_fraction is 0.
  double mandatory_wcet(ProcessorClassId e) const;

  /// Optional (sheddable) part of the WCET on class `e`:
  /// optional_fraction · wcet(e).
  double optional_wcet(ProcessorClassId e) const;

  /// True when part of this task's work may be shed in degraded mode.
  bool has_optional_part() const { return optional_fraction > 0.0; }

  /// Number of classes the task may execute on.
  std::size_t eligible_class_count() const;
};

/// True when `fraction` is a well-formed mandatory/optional split: finite
/// and within [0, 1]. Shared by Application::validate, the generator and
/// the scenario parser.
bool valid_optional_fraction(double fraction);

/// Per-task execution window produced by deadline distribution: the dynamic
/// parameters (a_i, D_i) for the invocation under analysis, plus the derived
/// relative deadline d_i = D_i - a_i.
struct DeadlineAssignment {
  /// windows[i] is the execution window of task/node i.
  std::vector<Window> windows;

  /// Optional diagnostic: the order (pass index) in which the slicing
  /// algorithm assigned each task; -1 when produced by a non-slicing
  /// technique. pass_of[i] == k means task i was on the k-th critical path.
  std::vector<int> pass_of;

  Time arrival(std::size_t i) const { return windows[i].arrival; }
  Time absolute_deadline(std::size_t i) const { return windows[i].deadline; }
  Time relative_deadline(std::size_t i) const { return windows[i].length(); }
};

}  // namespace dsslice
