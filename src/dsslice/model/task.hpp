// Task model (§3.2): static parameters ⟨c_i, φ_i, d_i, T_i⟩ with per-class
// WCET vectors for heterogeneous platforms.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dsslice/model/processor.hpp"
#include "dsslice/model/time.hpp"

namespace dsslice {

/// Sentinel WCET marking a (task, class) pair as ineligible — the task
/// requires hardware resources the class does not provide (§5.2's 5% rule).
inline constexpr double kIneligibleWcet = -1.0;

/// A task τ_i. The relative deadline d_i and arrival time a_i are *outputs*
/// of deadline distribution, so they live in DeadlineAssignment, not here;
/// the task only carries the static application-level parameters.
struct Task {
  std::string name;

  /// Worst-case execution time per processor class; kIneligibleWcet where
  /// the task may not run. Must have one entry per platform class.
  std::vector<double> wcet_by_class;

  /// Earliest time of the first invocation, relative to the time origin.
  Time phasing = kTimeZero;

  /// Period T_i; 0 marks a single-shot (aperiodic) task. For periodic tasks
  /// the planning-cycle expander (sched/planning_cycle) unrolls invocations.
  Time period = kTimeZero;

  bool is_periodic() const { return period > kTimeZero; }

  bool eligible(ProcessorClassId e) const {
    return e < wcet_by_class.size() && wcet_by_class[e] >= 0.0;
  }

  /// WCET on class `e`; requires eligibility.
  double wcet(ProcessorClassId e) const;

  /// Number of classes the task may execute on.
  std::size_t eligible_class_count() const;
};

/// Per-task execution window produced by deadline distribution: the dynamic
/// parameters (a_i, D_i) for the invocation under analysis, plus the derived
/// relative deadline d_i = D_i - a_i.
struct DeadlineAssignment {
  /// windows[i] is the execution window of task/node i.
  std::vector<Window> windows;

  /// Optional diagnostic: the order (pass index) in which the slicing
  /// algorithm assigned each task; -1 when produced by a non-slicing
  /// technique. pass_of[i] == k means task i was on the k-th critical path.
  std::vector<int> pass_of;

  Time arrival(std::size_t i) const { return windows[i].arrival; }
  Time absolute_deadline(std::size_t i) const { return windows[i].deadline; }
  Time relative_deadline(std::size_t i) const { return windows[i].length(); }
};

}  // namespace dsslice
