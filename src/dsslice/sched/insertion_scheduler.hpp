// Per-processor busy-interval timeline supporting insertion-based placement.
//
// The paper's baseline list scheduler appends tasks after the processor's
// last finish time. The insertion variant (§7.3 "other scheduling policies")
// may also place a task into an earlier idle gap, which can only improve the
// start time. ProcessorTimeline keeps the busy intervals sorted and
// coalesced (abutting intervals are merged on occupy, so the list length is
// bounded by the number of idle gaps, not the number of placements), and
// answers "earliest start ≥ bound that fits a duration" queries by binary
// searching to the first interval that can interfere with the bound and
// scanning gaps from there.
#pragma once

#include <vector>

#include "dsslice/model/time.hpp"

namespace dsslice {

class ProcessorTimeline {
 public:
  /// Earliest start s ≥ earliest_bound such that [s, s + duration) does not
  /// intersect any busy interval.
  Time earliest_fit(Time earliest_bound, Time duration) const;

  /// Marks [start, start + duration) busy. The interval must not overlap
  /// existing ones (callers must use earliest_fit-derived starts). Abutting
  /// intervals are merged, which leaves the answer of every earliest_fit
  /// query unchanged.
  void occupy(Time start, Time duration);

  /// Latest busy finish time (kTimeZero when idle).
  Time last_finish() const;

  /// Number of maximal busy intervals (abutting placements coalesce).
  std::size_t interval_count() const { return busy_.size(); }

  /// Forgets every busy interval but keeps the storage (workspace reuse).
  void clear() { busy_.clear(); }

  /// Becomes a copy of `other`, reusing this timeline's storage.
  void assign(const ProcessorTimeline& other) { busy_ = other.busy_; }

  /// Heap capacity of the interval list, for allocation-tracking callers.
  std::size_t interval_capacity() const { return busy_.capacity(); }

 private:
  struct Interval {
    Time start;
    Time finish;
  };
  // Sorted by start; non-overlapping, non-abutting.
  std::vector<Interval> busy_;
};

}  // namespace dsslice
