// Per-processor busy-interval timeline supporting insertion-based placement.
//
// The paper's baseline list scheduler appends tasks after the processor's
// last finish time. The insertion variant (§7.3 "other scheduling policies")
// may also place a task into an earlier idle gap, which can only improve the
// start time. ProcessorTimeline keeps the busy intervals sorted and answers
// "earliest start ≥ bound that fits a duration" queries in O(intervals).
#pragma once

#include <vector>

#include "dsslice/model/time.hpp"

namespace dsslice {

class ProcessorTimeline {
 public:
  /// Earliest start s ≥ earliest_bound such that [s, s + duration) does not
  /// intersect any busy interval.
  Time earliest_fit(Time earliest_bound, Time duration) const;

  /// Marks [start, start + duration) busy. The interval must not overlap
  /// existing ones (callers must use earliest_fit-derived starts).
  void occupy(Time start, Time duration);

  /// Latest busy finish time (kTimeZero when idle).
  Time last_finish() const;

  std::size_t interval_count() const { return busy_.size(); }

 private:
  struct Interval {
    Time start;
    Time finish;
  };
  // Sorted by start; non-overlapping.
  std::vector<Interval> busy_;
};

}  // namespace dsslice
