#include "dsslice/sched/edf_list_scheduler.hpp"

#include <algorithm>
#include <limits>
#include <vector>

#include "dsslice/sched/insertion_scheduler.hpp"
#include "dsslice/util/check.hpp"

namespace dsslice {

std::string to_string(PlacementPolicy policy) {
  switch (policy) {
    case PlacementPolicy::kAppend:
      return "append";
    case PlacementPolicy::kInsertion:
      return "insertion";
  }
  return "unknown";
}

EdfListScheduler::EdfListScheduler(SchedulerOptions options)
    : options_(options) {}

SchedulerResult EdfListScheduler::run(const Application& app,
                                      const DeadlineAssignment& assignment,
                                      const Platform& platform,
                                      const ResourceModel* resources) const {
  DSSLICE_REQUIRE(resources == nullptr ||
                      options_.placement == PlacementPolicy::kAppend,
                  "resource constraints require append placement");
  DSSLICE_REQUIRE(resources == nullptr ||
                      resources->task_count() == app.task_count(),
                  "resource model size mismatch");
  const TaskGraph& g = app.graph();
  const std::size_t n = g.node_count();
  const std::size_t m = platform.processor_count();
  DSSLICE_REQUIRE(assignment.windows.size() == n,
                  "assignment size mismatch");

  SchedulerResult result{Schedule(n, m), false, std::nullopt, "", {}};
  Schedule& schedule = result.schedule;

  std::vector<ProcessorTimeline> timelines(
      options_.placement == PlacementPolicy::kInsertion ? m : 0);

  // Shared-resource availability (exclusive, held for the whole execution).
  std::vector<Time> resource_available(
      resources != nullptr ? resources->resource_count() : 0, kTimeZero);

  // Bus-contention simulation state (see SchedulerOptions).
  const SharedBus* bus_model = nullptr;
  ProcessorTimeline bus;
  if (options_.simulate_bus_contention) {
    bus_model = dynamic_cast<const SharedBus*>(&platform.network());
    DSSLICE_REQUIRE(bus_model != nullptr,
                    "bus-contention simulation requires a SharedBus network");
  }

  // Ready bookkeeping: a task becomes ready once all predecessors are
  // scheduled (their finish times — and thus message departure times — are
  // known).
  std::vector<std::size_t> unscheduled_preds(n);
  std::vector<NodeId> ready;
  for (NodeId v = 0; v < n; ++v) {
    unscheduled_preds[v] = g.in_degree(v);
    if (unscheduled_preds[v] == 0) {
      ready.push_back(v);
    }
  }

  const auto fail = [&](NodeId v, std::string reason) {
    result.success = false;
    result.failed_task = v;
    result.failure_reason = std::move(reason);
    return result;
  };

  bool missed = false;
  while (!ready.empty()) {
    // EDF selection: closest absolute deadline; ties by earlier arrival,
    // then lower id for determinism.
    std::size_t pick = 0;
    for (std::size_t k = 1; k < ready.size(); ++k) {
      const Window& a = assignment.windows[ready[k]];
      const Window& b = assignment.windows[ready[pick]];
      if (a.deadline < b.deadline ||
          (a.deadline == b.deadline &&
           (a.arrival < b.arrival ||
            (a.arrival == b.arrival && ready[k] < ready[pick])))) {
        pick = k;
      }
    }
    const NodeId v = ready[pick];
    ready[pick] = ready.back();
    ready.pop_back();

    const Task& task = app.task(v);
    const Window& window = assignment.windows[v];

    // Evaluate every eligible processor; keep the earliest start (ties by
    // earliest finish, then processor id — §5.4).
    ProcessorId best_proc = 0;
    Time best_start = kTimeInfinity;
    Time best_finish = kTimeInfinity;
    std::vector<BusTransfer> best_transfers;
    bool found = false;
    for (ProcessorId p = 0; p < m; ++p) {
      const ProcessorClassId e = platform.class_of(p);
      if (!task.eligible(e)) {
        continue;
      }
      const double c = task.wcet(e);
      // Arrival constraint plus predecessor data availability. In bus-
      // contention mode every cross-processor message reserves a serialized
      // bus slot (tentatively, on a copy of the bus timeline).
      Time bound = window.arrival;
      if (resources != nullptr) {
        for (const ResourceId r : resources->resources_of(v)) {
          bound = std::max(bound, resource_available[r]);
        }
      }
      std::vector<BusTransfer> transfers;
      if (bus_model != nullptr) {
        ProcessorTimeline trial = bus;
        for (const NodeId u : g.predecessors(v)) {
          const ScheduledTask& pe = schedule.entry(u);
          const double items = g.message_items(u, v).value_or(0.0);
          if (pe.processor == p || items <= 0.0) {
            bound = std::max(bound, pe.finish);
            continue;
          }
          const Time duration = items * bus_model->per_item_delay();
          const Time slot = trial.earliest_fit(pe.finish, duration);
          trial.occupy(slot, duration);
          transfers.push_back(BusTransfer{u, v, slot, slot + duration});
          bound = std::max(bound, slot + duration);
        }
      } else {
        for (const NodeId u : g.predecessors(v)) {
          const ScheduledTask& pe = schedule.entry(u);
          const double items = g.message_items(u, v).value_or(0.0);
          bound = std::max(bound,
                           pe.finish + platform.comm_delay(pe.processor, p,
                                                           items));
        }
      }
      Time start;
      if (options_.placement == PlacementPolicy::kInsertion) {
        start = timelines[p].earliest_fit(bound, c);
      } else {
        start = std::max(bound, schedule.processor_available(p));
      }
      const Time finish = start + c;
      if (!found || start < best_start ||
          (start == best_start &&
           (finish < best_finish ||
            (finish == best_finish && p < best_proc)))) {
        found = true;
        best_proc = p;
        best_start = start;
        best_finish = finish;
        best_transfers = std::move(transfers);
      }
    }

    if (!found) {
      return fail(v, "task " + task.name +
                         " has no eligible processor on this platform");
    }

    if (best_finish > window.deadline) {
      missed = true;
      if (options_.abort_on_miss) {
        return fail(v, "task " + task.name + " misses its deadline (finish " +
                           std::to_string(best_finish) + " > D " +
                           std::to_string(window.deadline) + ")");
      }
      if (!result.failed_task.has_value()) {
        result.failed_task = v;
        result.failure_reason = "task " + task.name + " missed its deadline";
      }
    }

    schedule.place(v, best_proc, best_start, best_finish);
    if (resources != nullptr) {
      for (const ResourceId r : resources->resources_of(v)) {
        resource_available[r] = best_finish;
      }
    }
    if (options_.placement == PlacementPolicy::kInsertion) {
      timelines[best_proc].occupy(best_start, best_finish - best_start);
    }
    for (const BusTransfer& t : best_transfers) {
      bus.occupy(t.start, t.finish - t.start);
      result.bus_transfers.push_back(t);
    }
    for (const NodeId s : g.successors(v)) {
      if (--unscheduled_preds[s] == 0) {
        ready.push_back(s);
      }
    }
  }

  if (!schedule.complete()) {
    // Only possible for cyclic graphs, which Application::validate rejects.
    return fail(0, "schedule incomplete: task graph has a cycle");
  }
  result.success = !missed;
  return result;
}

}  // namespace dsslice
