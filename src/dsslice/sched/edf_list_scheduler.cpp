#include "dsslice/sched/edf_list_scheduler.hpp"

#include <algorithm>
#include <limits>
#include <vector>

#include "dsslice/analysis/graph_analysis.hpp"
#include "dsslice/obs/trace.hpp"
#include "dsslice/sched/insertion_scheduler.hpp"
#include "dsslice/sched/scheduler_workspace.hpp"
#include "dsslice/util/check.hpp"

namespace dsslice {

std::string to_string(PlacementPolicy policy) {
  switch (policy) {
    case PlacementPolicy::kAppend:
      return "append";
    case PlacementPolicy::kInsertion:
      return "insertion";
  }
  return "unknown";
}

EdfListScheduler::EdfListScheduler(SchedulerOptions options)
    : options_(options) {}

SchedulerResult EdfListScheduler::run(const Application& app,
                                      const DeadlineAssignment& assignment,
                                      const Platform& platform,
                                      const ResourceModel* resources) const {
  SchedulerWorkspace ws;
  SchedulerResult result;
  run_into(result, ws, app, assignment, platform, resources);
  return result;
}

namespace {

constexpr Time kNoBound = -std::numeric_limits<Time>::infinity();

}  // namespace

void EdfListScheduler::run_into(SchedulerResult& result, SchedulerWorkspace& ws,
                                const Application& app,
                                const DeadlineAssignment& assignment,
                                const Platform& platform,
                                const ResourceModel* resources) const {
  DSSLICE_SPAN("sched.list.run");
  DSSLICE_COUNT("sched.list.runs", 1);
  DSSLICE_REQUIRE(resources == nullptr ||
                      options_.placement == PlacementPolicy::kAppend,
                  "resource constraints require append placement");
  DSSLICE_REQUIRE(resources == nullptr ||
                      resources->task_count() == app.task_count(),
                  "resource model size mismatch");
  const GraphAnalysis& ga = app.analysis();
  const std::size_t n = ga.node_count();
  const std::size_t m = platform.processor_count();
  DSSLICE_REQUIRE(assignment.windows.size() == n,
                  "assignment size mismatch");

  reset_scheduler_result(result, n, m);
  Schedule& schedule = result.schedule;

  const bool insertion = options_.placement == PlacementPolicy::kInsertion;
  if (insertion) {
    ws.size(ws.timelines, m);
    for (ProcessorTimeline& tl : ws.timelines) {
      tl.clear();
    }
  }

  // Per-run accessor caches: the candidate loop below runs n × m times, and
  // the out-of-line getters it replaces (Platform::class_of,
  // Schedule::processor_available, Schedule::entry) dominated the profile
  // once allocations were gone. Each cache mirrors its source exactly.
  ws.size(ws.proc_class, m);
  for (ProcessorId p = 0; p < m; ++p) {
    ws.proc_class[p] = platform.class_of(p);
  }
  ws.fill(ws.proc_available, m, kTimeZero);  // Schedule starts all-idle
  ws.size(ws.placed_finish, n);
  ws.size(ws.placed_proc, n);
  // Tasks live contiguously in the Application; one bounds-checked call
  // grounds the pointer, after which task lookups are plain indexing.
  const Task* tasks = n > 0 ? &app.task(0) : nullptr;
  // Per-predecessor scratch for the modes that rescan predecessors per
  // candidate processor; sized once so the per-task loops never resize.
  ws.size(ws.pred_finish, n);
  ws.size(ws.pred_proc, n);

  // Shared-resource availability (exclusive, held for the whole execution).
  ws.fill(ws.resource_available,
          resources != nullptr ? resources->resource_count() : 0, kTimeZero);

  // The paper's platform is a shared bus; devirtualize its delay model once
  // per run. The inlined arithmetic is the exact expression of
  // SharedBus::delay (0 co-located, items × per-item otherwise), so results
  // stay bit-identical.
  const auto* shared_bus = dynamic_cast<const SharedBus*>(&platform.network());
  const Time bus_rate =
      shared_bus != nullptr ? shared_bus->per_item_delay() : kTimeZero;

  // Bus-contention simulation state (see SchedulerOptions).
  const SharedBus* bus_model = nullptr;
  if (options_.simulate_bus_contention) {
    bus_model = shared_bus;
    DSSLICE_REQUIRE(bus_model != nullptr,
                    "bus-contention simulation requires a SharedBus network");
  }
  ws.bus.clear();

  // Ready bookkeeping: a task becomes ready once all predecessors are
  // scheduled. The heap pops the exact (deadline, arrival, id) minimum the
  // legacy linear scan selected.
  const std::size_t heap_cap = ws.ready.capacity();
  ws.ready.reset(assignment.windows);
  ws.size(ws.pred_count, n);
  for (NodeId v = 0; v < n; ++v) {
    ws.pred_count[v] = ga.predecessors(v).size();
    if (ws.pred_count[v] == 0) {
      ws.ready.push(v);
    }
  }

  const auto fail = [&](NodeId v, std::string reason) {
    result.success = false;
    result.failed_task = v;
    result.failure_reason = std::move(reason);
  };

  bool missed = false;
  while (!ws.ready.empty()) {
    const NodeId v = ws.ready.pop();
    const Task& task = tasks[v];
    const Window& window = assignment.windows[v];

    // Base bound shared by every processor: arrival plus resource holds.
    Time base = window.arrival;
    if (resources != nullptr) {
      for (const ResourceId r : resources->resources_of(v)) {
        base = std::max(base, ws.resource_available[r]);
      }
    }

    const auto preds = ga.predecessors(v);
    const auto pitems = ga.predecessor_items(v);
    const std::size_t np = preds.size();

    // Shared-bus fast path (nominal mode): the data-availability bound on
    // processor p is max over predecessors u of
    //   finish_u + (proc_u == p ? 0 : items_u × rate).
    // Keeping the two largest cross-processor contributions (from distinct
    // processors) plus a per-processor co-located maximum answers that in
    // O(preds + m) instead of O(preds × m). Pure max-combining, so the
    // value is identical to the legacy per-processor accumulation.
    Time cross1 = kNoBound, cross2 = kNoBound;
    ProcessorId cross1_proc = 0;
    const bool fast_comm = shared_bus != nullptr && bus_model == nullptr;
    if (fast_comm) {
      // One pass over the predecessors, reading placement mirrors directly;
      // the bus/generic paths below rescan predecessors per candidate
      // processor instead, so only they stage (finish, proc) copies.
      ws.fill(ws.local_pred_bound, m, kNoBound);
      for (std::size_t k = 0; k < np; ++k) {
        const NodeId u = preds[k];
        const ProcessorId up = ws.placed_proc[u];
        const Time fin = ws.placed_finish[u];
        const Time contrib = fin + pitems[k] * bus_rate;
        if (contrib > cross1) {
          if (up != cross1_proc) {
            // The dethroned maximum is from another processor, so it is a
            // valid — and dominating — candidate for the runner-up slot.
            cross2 = cross1;
          }
          cross1 = contrib;
          cross1_proc = up;
        } else if (up != cross1_proc && contrib > cross2) {
          cross2 = contrib;
        }
        ws.local_pred_bound[up] = std::max(ws.local_pred_bound[up], fin);
      }
    } else {
      // Cache each predecessor's (finish, processor) once per task — the
      // legacy code re-fetched them per candidate processor, with a linear
      // message_items search per fetch.
      for (std::size_t k = 0; k < np; ++k) {
        const NodeId u = preds[k];
        ws.pred_finish[k] = ws.placed_finish[u];
        ws.pred_proc[k] = ws.placed_proc[u];
      }
    }

    // Evaluate every eligible processor; keep the earliest start (ties by
    // earliest finish, then processor id — §5.4).
    ProcessorId best_proc = 0;
    Time best_start = kTimeInfinity;
    Time best_finish = kTimeInfinity;
    ws.best_transfers.clear();
    bool found = false;
    // Direct reads of the public wcet table; `>= 0` is Task::eligible and
    // the read itself is Task::wcet, sans the out-of-line calls.
    const double* wcets = task.wcet_by_class.data();
    const std::size_t class_count = task.wcet_by_class.size();
    for (ProcessorId p = 0; p < m; ++p) {
      const ProcessorClassId e = ws.proc_class[p];
      if (e >= class_count) {
        continue;
      }
      const double c = wcets[e];
      if (c < 0.0) {
        continue;
      }
      Time bound = base;
      ws.cand_transfers.clear();
      if (bus_model != nullptr) {
        // Bus contention: every cross-processor message reserves a
        // serialized slot (tentatively, on a copy of the bus timeline).
        ws.bus_trial.assign(ws.bus);
        for (std::size_t k = 0; k < np; ++k) {
          const double items = pitems[k];
          if (ws.pred_proc[k] == p || items <= 0.0) {
            bound = std::max(bound, ws.pred_finish[k]);
            continue;
          }
          const Time duration = items * bus_model->per_item_delay();
          const Time slot = ws.bus_trial.earliest_fit(ws.pred_finish[k],
                                                      duration);
          ws.bus_trial.occupy(slot, duration);
          ws.cand_transfers.push_back(
              BusTransfer{preds[k], v, slot, slot + duration});
          bound = std::max(bound, slot + duration);
        }
      } else if (fast_comm) {
        const Time cross = p == cross1_proc ? cross2 : cross1;
        bound = std::max(bound, std::max(cross, ws.local_pred_bound[p]));
      } else {
        for (std::size_t k = 0; k < np; ++k) {
          bound = std::max(bound, ws.pred_finish[k] +
                                      platform.comm_delay(ws.pred_proc[k], p,
                                                          pitems[k]));
        }
      }
      Time start;
      if (insertion) {
        start = ws.timelines[p].earliest_fit(bound, c);
      } else {
        start = std::max(bound, ws.proc_available[p]);
      }
      const Time finish = start + c;
      if (!found || start < best_start ||
          (start == best_start &&
           (finish < best_finish ||
            (finish == best_finish && p < best_proc)))) {
        found = true;
        best_proc = p;
        best_start = start;
        best_finish = finish;
        std::swap(ws.best_transfers, ws.cand_transfers);
      }
    }

    if (!found) {
      return fail(v, "task " + task.name +
                         " has no eligible processor on this platform");
    }

    if (best_finish > window.deadline) {
      missed = true;
      if (options_.abort_on_miss) {
        return fail(v, "task " + task.name + " misses its deadline (finish " +
                           std::to_string(best_finish) + " > D " +
                           std::to_string(window.deadline) + ")");
      }
      if (!result.failed_task.has_value()) {
        result.failed_task = v;
        result.failure_reason = "task " + task.name + " missed its deadline";
      }
    }

    schedule.place(v, best_proc, best_start, best_finish);
    ws.placed_finish[v] = best_finish;
    ws.placed_proc[v] = best_proc;
    ws.proc_available[best_proc] =
        std::max(ws.proc_available[best_proc], best_finish);
    if (resources != nullptr) {
      for (const ResourceId r : resources->resources_of(v)) {
        ws.resource_available[r] = best_finish;
      }
    }
    if (insertion) {
      ws.timelines[best_proc].occupy(best_start, best_finish - best_start);
    }
    for (const BusTransfer& t : ws.best_transfers) {
      ws.bus.occupy(t.start, t.finish - t.start);
      result.bus_transfers.push_back(t);
    }
    for (const NodeId s : ga.successors(v)) {
      if (--ws.pred_count[s] == 0) {
        ws.ready.push(s);
      }
    }
  }
  ws.note_growth(heap_cap, ws.ready.capacity());

  if (!schedule.complete()) {
    if (result.failed_task.has_value()) {
      return;  // already failed (no eligible processor / aborted miss)
    }
    // Only possible for cyclic graphs, which Application::validate rejects.
    return fail(0, "schedule incomplete: task graph has a cycle");
  }
  result.success = !missed;
}

}  // namespace dsslice
