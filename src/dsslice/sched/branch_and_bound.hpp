// Exact feasibility search by branch-and-bound.
//
// The paper notes that optimal task assignment is NP-complete [11] and that
// branch-and-bound strategies [3, 4] are the exact alternative to heuristic
// list scheduling. This module implements that alternative for the
// *scheduling* decision: given a deadline assignment, does ANY
// non-preemptive schedule meet every window?
//
// Search space: at every node, branch over (ready task × distinct processor
// option). Pruning:
//  * a branch dies when the chosen placement misses the task's deadline;
//  * a node dies when some unscheduled task cannot meet its deadline even
//    with an optimistic bound (earliest start via predecessors only,
//    fastest eligible class, zero contention);
//  * processor symmetry: options with identical (class, available-time,
//    data-ready-time) collapse to one branch.
// Branch order is earliest-deadline-first with earliest-finish processor
// preference, so the first descent replays the heuristic scheduler and the
// search degenerates gracefully on easy instances.
//
// Intended for small instances (n ≲ 20) — the optimality-gap ablation and
// tests; the node budget bounds the worst case.
#pragma once

#include <cstddef>
#include <string>

#include "dsslice/model/application.hpp"
#include "dsslice/model/platform.hpp"
#include "dsslice/model/task.hpp"
#include "dsslice/sched/schedule.hpp"

namespace dsslice {

enum class BnbStatus {
  kFeasible,    ///< a feasible schedule was found (returned)
  kInfeasible,  ///< the whole search space was exhausted — provably none
  kNodeLimit,   ///< budget exhausted before a verdict
};

std::string to_string(BnbStatus status);

struct BnbOptions {
  /// Maximum search-tree nodes before giving up with kNodeLimit.
  std::size_t max_nodes = 200000;
};

struct BnbResult {
  BnbStatus status = BnbStatus::kNodeLimit;
  /// Complete only when status == kFeasible.
  Schedule schedule;
  std::size_t nodes_explored = 0;

  BnbResult(std::size_t tasks, std::size_t processors)
      : schedule(tasks, processors) {}
};

class SchedulerWorkspace;

/// Searches for any schedule meeting every execution window. `ws`
/// (optional) supplies reusable buffers for the search state and the
/// per-depth ready/option lists, removing all per-node allocations from
/// the descent.
BnbResult branch_and_bound_schedule(const Application& app,
                                    const DeadlineAssignment& assignment,
                                    const Platform& platform,
                                    const BnbOptions& options = {},
                                    SchedulerWorkspace* ws = nullptr);

}  // namespace dsslice
