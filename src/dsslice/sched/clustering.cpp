#include "dsslice/sched/clustering.hpp"

#include <algorithm>
#include <numeric>

#include "dsslice/util/check.hpp"

namespace dsslice {

std::size_t Clustering::size_of(std::size_t cluster) const {
  return static_cast<std::size_t>(
      std::count(cluster_of.begin(), cluster_of.end(), cluster));
}

namespace {

/// Plain union-find with path compression.
class UnionFind {
 public:
  explicit UnionFind(std::size_t n) : parent_(n), size_(n, 1) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }

  std::size_t find(std::size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }

  std::size_t size(std::size_t x) { return size_[find(x)]; }

  void unite(std::size_t a, std::size_t b) {
    a = find(a);
    b = find(b);
    if (a == b) {
      return;
    }
    if (size_[a] < size_[b]) {
      std::swap(a, b);
    }
    parent_[b] = a;
    size_[a] += size_[b];
  }

 private:
  std::vector<std::size_t> parent_;
  std::vector<std::size_t> size_;
};

}  // namespace

Clustering cluster_by_communication(const Application& app,
                                    double message_threshold,
                                    std::size_t max_cluster_size) {
  DSSLICE_REQUIRE(max_cluster_size >= 1, "cluster size cap must be >= 1");
  const std::size_t n = app.task_count();
  UnionFind uf(n);

  // Heaviest messages first so the size cap spends its budget on the arcs
  // that matter most.
  std::vector<Arc> arcs = app.graph().arcs();
  std::sort(arcs.begin(), arcs.end(), [](const Arc& a, const Arc& b) {
    if (a.message_items != b.message_items) {
      return a.message_items > b.message_items;
    }
    return a.from != b.from ? a.from < b.from : a.to < b.to;
  });
  for (const Arc& arc : arcs) {
    if (arc.message_items < message_threshold) {
      continue;
    }
    if (uf.find(arc.from) == uf.find(arc.to)) {
      continue;
    }
    if (uf.size(arc.from) + uf.size(arc.to) > max_cluster_size) {
      continue;
    }
    uf.unite(arc.from, arc.to);
  }

  Clustering clustering;
  clustering.cluster_of.resize(n);
  std::vector<std::size_t> dense(n, SIZE_MAX);
  for (NodeId v = 0; v < n; ++v) {
    const std::size_t root = uf.find(v);
    if (dense[root] == SIZE_MAX) {
      dense[root] = clustering.cluster_count++;
    }
    clustering.cluster_of[v] = dense[root];
  }
  return clustering;
}

ClusteredScheduler::ClusteredScheduler(Clustering clustering,
                                       bool abort_on_miss)
    : clustering_(std::move(clustering)), abort_on_miss_(abort_on_miss) {}

SchedulerResult ClusteredScheduler::run(const Application& app,
                                        const DeadlineAssignment& assignment,
                                        const Platform& platform) const {
  const TaskGraph& g = app.graph();
  const std::size_t n = g.node_count();
  const std::size_t m = platform.processor_count();
  DSSLICE_REQUIRE(assignment.windows.size() == n, "assignment size mismatch");
  DSSLICE_REQUIRE(clustering_.cluster_of.size() == n,
                  "clustering size mismatch");

  SchedulerResult result{Schedule(n, m), false, std::nullopt, "", {}};
  Schedule& schedule = result.schedule;

  constexpr ProcessorId kUnpinned = static_cast<ProcessorId>(-1);
  std::vector<ProcessorId> cluster_proc(clustering_.cluster_count, kUnpinned);

  // A cluster may only be pinned to a processor whose class every member is
  // eligible on.
  const auto cluster_eligible = [&](std::size_t cluster, ProcessorId p) {
    const ProcessorClassId e = platform.class_of(p);
    for (NodeId v = 0; v < n; ++v) {
      if (clustering_.cluster_of[v] == cluster && !app.task(v).eligible(e)) {
        return false;
      }
    }
    return true;
  };

  std::vector<std::size_t> unscheduled_preds(n);
  std::vector<NodeId> ready;
  for (NodeId v = 0; v < n; ++v) {
    unscheduled_preds[v] = g.in_degree(v);
    if (unscheduled_preds[v] == 0) {
      ready.push_back(v);
    }
  }

  const auto fail = [&](NodeId v, std::string reason) {
    result.success = false;
    result.failed_task = v;
    result.failure_reason = std::move(reason);
    return result;
  };

  bool missed = false;
  while (!ready.empty()) {
    std::size_t pick = 0;
    for (std::size_t k = 1; k < ready.size(); ++k) {
      const Window& a = assignment.windows[ready[k]];
      const Window& b = assignment.windows[ready[pick]];
      if (a.deadline < b.deadline ||
          (a.deadline == b.deadline &&
           (a.arrival < b.arrival ||
            (a.arrival == b.arrival && ready[k] < ready[pick])))) {
        pick = k;
      }
    }
    const NodeId v = ready[pick];
    ready[pick] = ready.back();
    ready.pop_back();

    const std::size_t cluster = clustering_.cluster_of[v];
    const Window& window = assignment.windows[v];

    const auto start_on = [&](ProcessorId p) {
      Time bound = std::max(window.arrival, schedule.processor_available(p));
      for (const NodeId u : g.predecessors(v)) {
        const ScheduledTask& pe = schedule.entry(u);
        const double items = g.message_items(u, v).value_or(0.0);
        bound = std::max(bound, pe.finish + platform.comm_delay(
                                                pe.processor, p, items));
      }
      return bound;
    };

    ProcessorId chosen = kUnpinned;
    if (cluster_proc[cluster] != kUnpinned) {
      chosen = cluster_proc[cluster];
    } else {
      Time best_start = kTimeInfinity;
      for (ProcessorId p = 0; p < m; ++p) {
        if (!cluster_eligible(cluster, p)) {
          continue;
        }
        const Time start = start_on(p);
        if (start < best_start) {
          best_start = start;
          chosen = p;
        }
      }
      if (chosen == kUnpinned) {
        return fail(v, "cluster of task " + app.task(v).name +
                           " has no commonly eligible processor");
      }
      cluster_proc[cluster] = chosen;
    }

    const Time start = start_on(chosen);
    const Time finish =
        start + app.task(v).wcet(platform.class_of(chosen));
    if (finish > window.deadline) {
      missed = true;
      if (abort_on_miss_) {
        return fail(v, "task " + app.task(v).name +
                           " misses its deadline under clustering");
      }
      if (!result.failed_task.has_value()) {
        result.failed_task = v;
        result.failure_reason =
            "task " + app.task(v).name + " missed its deadline";
      }
    }
    schedule.place(v, chosen, start, finish);
    for (const NodeId s : g.successors(v)) {
      if (--unscheduled_preds[s] == 0) {
        ready.push_back(s);
      }
    }
  }
  result.success = schedule.complete() && !missed;
  return result;
}

}  // namespace dsslice
