// Baseline deadline-driven task assignment and scheduling (§5.4).
//
// A list-scheduling variant of earliest-deadline-first: at each step the
// ready task (all predecessors scheduled) with the closest absolute deadline
// is selected and placed on the eligible processor yielding the earliest
// start time, honouring its arrival time (slice start) and interprocessor
// communication delays from its predecessors. Non-preemptive, static
// assignment, O(n²·m).
//
// Two placement policies are provided:
//  * kAppend    — a task starts no earlier than the processor's last finish
//                 (the paper's baseline).
//  * kInsertion — a task may fill an earlier idle gap (extension, §7.3).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "dsslice/model/application.hpp"
#include "dsslice/model/platform.hpp"
#include "dsslice/model/resources.hpp"
#include "dsslice/model/task.hpp"
#include "dsslice/sched/schedule.hpp"

namespace dsslice {

enum class PlacementPolicy {
  kAppend,
  kInsertion,
};

std::string to_string(PlacementPolicy policy);

struct SchedulerOptions {
  PlacementPolicy placement = PlacementPolicy::kAppend;
  /// When true (default) the run aborts at the first deadline miss — the
  /// paper's success/failure test. When false, every task is placed and
  /// misses are reported through the lateness measures (used by the
  /// secondary-quality experiments).
  bool abort_on_miss = true;
  /// Simulate contention on the time-multiplexed shared bus instead of the
  /// paper's nominal (contention-free) delay model: each cross-processor
  /// message reserves an exclusive bus slot of `items × per-item delay`,
  /// serialized against all other transfers. Requires the platform's
  /// interconnect to be a SharedBus. Transfers are reported in
  /// SchedulerResult::bus_transfers.
  bool simulate_bus_contention = false;
};

/// One reserved slot on the shared bus (simulate_bus_contention mode).
struct BusTransfer {
  NodeId from = 0;
  NodeId to = 0;
  Time start = kTimeZero;
  Time finish = kTimeZero;

  bool operator==(const BusTransfer&) const = default;
};

struct SchedulerResult {
  Schedule schedule;
  /// True when every task was placed and met its absolute deadline.
  bool success = false;
  /// First task that missed its deadline or could not be placed.
  std::optional<NodeId> failed_task;
  /// Human-readable failure description (empty on success).
  std::string failure_reason;
  /// Bus reservations, populated only in simulate_bus_contention mode.
  std::vector<BusTransfer> bus_transfers;
};

class SchedulerWorkspace;

class EdfListScheduler {
 public:
  explicit EdfListScheduler(SchedulerOptions options = {});

  /// Schedules the application under the given deadline assignment. The
  /// assignment supplies each task's arrival (earliest start) and absolute
  /// deadline; actual per-class WCETs come from the task table.
  ///
  /// `resources` (optional) adds exclusive shared-resource constraints
  /// (§7.3 future work): a task additionally waits until every resource it
  /// requires is free, and holds them for its whole execution. Only
  /// supported with append placement.
  SchedulerResult run(const Application& app,
                      const DeadlineAssignment& assignment,
                      const Platform& platform,
                      const ResourceModel* resources = nullptr) const;

  /// Allocation-free variant for hot loops: writes the (bit-identical)
  /// result into `result`, reusing its storage and `ws`'s buffers. After a
  /// warm-up call of the same scenario shape, repeat calls perform zero
  /// scheduler-state allocations (see SchedulerWorkspace::grow_events).
  void run_into(SchedulerResult& result, SchedulerWorkspace& ws,
                const Application& app, const DeadlineAssignment& assignment,
                const Platform& platform,
                const ResourceModel* resources = nullptr) const;

  const SchedulerOptions& options() const { return options_; }

 private:
  SchedulerOptions options_;
};

}  // namespace dsslice
