// Time-marching, work-conserving EDF dispatcher.
//
// The EdfListScheduler (§5.4 baseline) *constructs* a schedule: it may
// reserve a future start for a task even while a processor sits idle. An
// on-line time-driven system cannot do that — at every instant, each idle
// processor takes the ready task with the closest absolute deadline, or
// idles only when no task is dispatchable. This myopic policy is what a
// run-time dispatcher actually executes, and it is more fragile: a loose
// task can seize a processor one instant before a critical task arrives
// (non-preemptive blocking / priority inversion), which is exactly the
// failure mode the paper's slicing windows are designed to bound (I1/I2).
//
// A task is *dispatchable* on processor p at time t iff all its
// predecessors completed, every message reached p (f_u + comm delay ≤ t),
// its slice arrival has passed (a_i ≤ t), and p is idle, available and of
// an eligible class. Simulation advances over completion / arrival /
// data-arrival / failure events; within an instant, assignments are made in
// EDF order with deterministic tie-breaking.
//
// Beyond the nominal mode, the dispatcher is the execution substrate of the
// robustness evaluation (robust/): DispatchConditions injects *actual*
// run-time behaviour (execution-time overruns, unforeseen processor
// failures, message-delay spikes), DispatchTelemetry surfaces per-task miss
// and kill events, and a DispatchControl hook lets a recovery engine
// re-slice windows or re-pin tasks while the simulation is in flight.
#pragma once

#include <limits>
#include <optional>
#include <span>
#include <vector>

#include "dsslice/model/application.hpp"
#include "dsslice/model/platform.hpp"
#include "dsslice/model/task.hpp"
#include "dsslice/sched/edf_list_scheduler.hpp"

namespace dsslice {

struct DispatchOptions {
  /// Abort at the first deadline miss (success-ratio experiments) or run
  /// the dispatch to completion and report lateness.
  bool abort_on_miss = true;
};

/// Injected run-time conditions for one dispatch simulation (produced by
/// robust/fault_model.hpp). All vectors may be empty (= nominal behaviour);
/// when non-empty they must match the task / arc / processor counts.
///
/// The *actual* execution time of task v on class e is
///   max(0, wcet(e) · wcet_factor[v] + wcet_addend[v]),
/// the actual delay of the message on arc k (graph().arcs() order) is the
/// nominal delay · arc_delay_factor[k], and processor p halts without
/// warning at processor_down_at[p] (kTimeInfinity = never), killing any
/// task it is executing at that instant.
struct DispatchConditions {
  std::vector<double> wcet_factor;      ///< per task; empty = all 1.0
  std::vector<double> wcet_addend;      ///< per task; empty = all 0.0
  std::vector<double> arc_delay_factor; ///< per arc; empty = all 1.0
  std::vector<Time> processor_down_at;  ///< per processor; empty = never

  bool operator==(const DispatchConditions&) const = default;
};

/// One slice-deadline miss observed at dispatch time.
struct TaskMissEvent {
  NodeId task = 0;
  Time finish = kTimeZero;
  Time deadline = kTimeZero;

  Time lateness() const { return finish - deadline; }
  bool operator==(const TaskMissEvent&) const = default;
};

/// Per-run observability of the dispatch simulation (all optional).
struct DispatchTelemetry {
  /// Completion time per task; kTimeInfinity for tasks that never finished.
  std::vector<Time> completion;
  /// Slice-deadline misses in completion order.
  std::vector<TaskMissEvent> misses;
  /// Tasks killed in flight by a processor failure (one entry per kill;
  /// a task revived and killed again appears twice).
  std::vector<NodeId> killed;
  /// Tasks that never completed (stranded by failures).
  std::vector<NodeId> unfinished;
  /// Tasks that completed in degraded mode (optional part shed by a
  /// recovery policy before they started), in completion order.
  std::vector<NodeId> degraded;
  /// Number of revived tasks that re-entered the dispatch queue.
  std::size_t restarts = 0;
};

/// Sentinel for DispatchControl pinning: the task may run anywhere.
inline constexpr ProcessorId kUnpinnedProcessor =
    std::numeric_limits<ProcessorId>::max();

/// Recovery hook called from inside the dispatch loop (robust/recovery.hpp
/// implements the concrete policies). The default implementation is a
/// no-op observer: windows are left untouched and killed tasks stay dead.
class DispatchControl {
 public:
  /// Read-only snapshot of the in-flight dispatch state.
  struct View {
    const Application& app;
    const Platform& platform;
    Time now = kTimeZero;
    /// Per task: dispatched (still 1 after completion; reset on kill).
    std::span<const char> started;
    /// Per task: completed.
    std::span<const char> done;
    /// Per task: finish time — known as soon as the task starts
    /// (non-preemptive); kTimeInfinity while unstarted.
    std::span<const Time> finish;
    /// Per processor: end of the current busy interval.
    std::span<const Time> busy_until;
    /// Per processor: effective halt instant — min of the platform's
    /// available_until and any injected failure; kTimeInfinity = healthy.
    std::span<const Time> down_at;
    /// Per task: degraded-mode flag, *writable* by the control. Setting
    /// shed[v] = 1 for an unstarted task drops its optional part: the
    /// dispatcher scales the task's actual execution time by
    /// (1 − optional_fraction) when it eventually starts, and reports the
    /// completion in DispatchTelemetry::degraded. Empty when the host does
    /// not provide a shed channel (nominal runs, legacy callers) — controls
    /// must check before writing. Kept last so existing aggregate
    /// initializers stay valid (value-initializes to an empty span).
    std::span<char> shed;
  };

  virtual ~DispatchControl() = default;

  /// Called after task v completes at view.now (`missed` = past its current
  /// slice deadline). May rewrite the windows of unstarted tasks.
  virtual void on_completion(const View& view, NodeId v, bool missed,
                             std::vector<Window>& windows);

  /// Called when processor p halts at view.now; `victims` holds the task it
  /// was executing (at most one, non-preemptive). Returns the subset of
  /// victims to re-release for re-execution from scratch (the rest are lost
  /// and their subtrees never run). May rewrite windows and re-pin tasks:
  /// pinned[v] != kUnpinnedProcessor restricts v to that processor.
  virtual std::vector<NodeId> on_processor_failure(
      const View& view, ProcessorId p, const std::vector<NodeId>& victims,
      std::vector<Window>& windows, std::vector<ProcessorId>& pinned);
};

class SchedulerWorkspace;

class EdfDispatchScheduler {
 public:
  explicit EdfDispatchScheduler(DispatchOptions options = {});

  /// Simulates the on-line dispatch of the application under the given
  /// deadline assignment. Shares SchedulerResult with the constructive
  /// schedulers so validators and experiments treat both uniformly.
  SchedulerResult run(const Application& app,
                      const DeadlineAssignment& assignment,
                      const Platform& platform) const;

  /// Fault-aware overload: `conditions` injects actual execution times,
  /// message delays and processor failures (nullptr = nominal), `control`
  /// receives recovery callbacks (nullptr = no recovery), `telemetry`
  /// collects per-task events (nullptr = discard). A benign conditions
  /// object (all factors 1, no failures) reproduces the nominal run
  /// bit-exactly.
  SchedulerResult run(const Application& app,
                      const DeadlineAssignment& assignment,
                      const Platform& platform,
                      const DispatchConditions* conditions,
                      DispatchControl* control = nullptr,
                      DispatchTelemetry* telemetry = nullptr) const;

  /// Allocation-free variant for hot loops: writes the (bit-identical)
  /// result into `result`, reusing its storage and `ws` buffers. The
  /// epsilon-tolerant scan orders of run() are preserved exactly; only
  /// constant factors change (flat per-arc delay factors instead of a hash
  /// map, cached adjacency, devirtualized shared-bus delays).
  void run_into(SchedulerResult& result, SchedulerWorkspace& ws,
                const Application& app, const DeadlineAssignment& assignment,
                const Platform& platform,
                const DispatchConditions* conditions = nullptr,
                DispatchControl* control = nullptr,
                DispatchTelemetry* telemetry = nullptr) const;

  const DispatchOptions& options() const { return options_; }

 private:
  DispatchOptions options_;
};

/// Which scheduling engine an experiment uses.
enum class SchedulerAlgorithm {
  kListEdf,        ///< constructive list scheduler (paper §5.4 baseline)
  kDispatchEdf,    ///< on-line time-marching dispatcher (this header)
  kPreemptiveEdf,  ///< preemptive EDF simulator (preemptive_scheduler.hpp)
};

std::string to_string(SchedulerAlgorithm algorithm);

}  // namespace dsslice
