// Time-marching, work-conserving EDF dispatcher.
//
// The EdfListScheduler (§5.4 baseline) *constructs* a schedule: it may
// reserve a future start for a task even while a processor sits idle. An
// on-line time-driven system cannot do that — at every instant, each idle
// processor takes the ready task with the closest absolute deadline, or
// idles only when no task is dispatchable. This myopic policy is what a
// run-time dispatcher actually executes, and it is more fragile: a loose
// task can seize a processor one instant before a critical task arrives
// (non-preemptive blocking / priority inversion), which is exactly the
// failure mode the paper's slicing windows are designed to bound (I1/I2).
//
// A task is *dispatchable* on processor p at time t iff all its
// predecessors completed, every message reached p (f_u + comm delay ≤ t),
// its slice arrival has passed (a_i ≤ t), and p is idle and of an eligible
// class. Simulation advances over completion / arrival / data-arrival
// events; within an instant, assignments are made in EDF order with
// deterministic tie-breaking.
#pragma once

#include "dsslice/model/application.hpp"
#include "dsslice/model/platform.hpp"
#include "dsslice/model/task.hpp"
#include "dsslice/sched/edf_list_scheduler.hpp"

namespace dsslice {

struct DispatchOptions {
  /// Abort at the first deadline miss (success-ratio experiments) or run
  /// the dispatch to completion and report lateness.
  bool abort_on_miss = true;
};

class EdfDispatchScheduler {
 public:
  explicit EdfDispatchScheduler(DispatchOptions options = {});

  /// Simulates the on-line dispatch of the application under the given
  /// deadline assignment. Shares SchedulerResult with the constructive
  /// schedulers so validators and experiments treat both uniformly.
  SchedulerResult run(const Application& app,
                      const DeadlineAssignment& assignment,
                      const Platform& platform) const;

  const DispatchOptions& options() const { return options_; }

 private:
  DispatchOptions options_;
};

/// Which scheduling engine an experiment uses.
enum class SchedulerAlgorithm {
  kListEdf,        ///< constructive list scheduler (paper §5.4 baseline)
  kDispatchEdf,    ///< on-line time-marching dispatcher (this header)
  kPreemptiveEdf,  ///< preemptive EDF simulator (preemptive_scheduler.hpp)
};

std::string to_string(SchedulerAlgorithm algorithm);

}  // namespace dsslice
