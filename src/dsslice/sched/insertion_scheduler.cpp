#include "dsslice/sched/insertion_scheduler.hpp"

#include <algorithm>

#include "dsslice/util/check.hpp"

namespace dsslice {

Time ProcessorTimeline::earliest_fit(Time earliest_bound,
                                     Time duration) const {
  DSSLICE_REQUIRE(duration >= 0.0, "negative duration");
  Time candidate = earliest_bound;
  // Intervals are sorted and disjoint, so finishes are sorted too: skip
  // everything that ends at or before the candidate in O(log intervals).
  auto it = std::partition_point(
      busy_.begin(), busy_.end(),
      [&](const Interval& iv) { return iv.finish <= candidate; });
  for (; it != busy_.end(); ++it) {
    if (it->start >= candidate + duration) {
      return candidate;  // the gap before *it fits
    }
    candidate = std::max(candidate, it->finish);
  }
  return candidate;  // after the last interval
}

void ProcessorTimeline::occupy(Time start, Time duration) {
  DSSLICE_REQUIRE(duration >= 0.0, "negative duration");
  const Interval iv{start, start + duration};
  const auto pos = std::lower_bound(
      busy_.begin(), busy_.end(), iv,
      [](const Interval& a, const Interval& b) { return a.start < b.start; });
  bool merge_prev = false;
  bool merge_next = false;
  if (pos != busy_.begin()) {
    DSSLICE_CHECK(std::prev(pos)->finish <= iv.start,
                  "overlapping busy interval");
    merge_prev = std::prev(pos)->finish == iv.start;
  }
  if (pos != busy_.end()) {
    DSSLICE_CHECK(iv.finish <= pos->start, "overlapping busy interval");
    merge_next = iv.finish == pos->start;
  }
  // Coalesce with the abutting neighbours: free space — and therefore every
  // earliest_fit answer — is unchanged, but the list stays short.
  if (merge_prev && merge_next) {
    std::prev(pos)->finish = pos->finish;
    busy_.erase(pos);
  } else if (merge_prev) {
    std::prev(pos)->finish = iv.finish;
  } else if (merge_next) {
    pos->start = iv.start;
  } else {
    busy_.insert(pos, iv);
  }
}

Time ProcessorTimeline::last_finish() const {
  return busy_.empty() ? kTimeZero : busy_.back().finish;
}

}  // namespace dsslice
