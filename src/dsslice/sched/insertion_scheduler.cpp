#include "dsslice/sched/insertion_scheduler.hpp"

#include <algorithm>

#include "dsslice/util/check.hpp"

namespace dsslice {

Time ProcessorTimeline::earliest_fit(Time earliest_bound,
                                     Time duration) const {
  DSSLICE_REQUIRE(duration >= 0.0, "negative duration");
  Time candidate = earliest_bound;
  for (const Interval& iv : busy_) {
    if (iv.finish <= candidate) {
      continue;  // interval entirely before the candidate slot
    }
    if (iv.start >= candidate + duration) {
      return candidate;  // the gap before iv fits
    }
    candidate = std::max(candidate, iv.finish);
  }
  return candidate;  // after the last interval
}

void ProcessorTimeline::occupy(Time start, Time duration) {
  DSSLICE_REQUIRE(duration >= 0.0, "negative duration");
  const Interval iv{start, start + duration};
  const auto pos = std::lower_bound(
      busy_.begin(), busy_.end(), iv,
      [](const Interval& a, const Interval& b) { return a.start < b.start; });
  if (pos != busy_.begin()) {
    DSSLICE_CHECK(std::prev(pos)->finish <= iv.start,
                  "overlapping busy interval");
  }
  if (pos != busy_.end()) {
    DSSLICE_CHECK(iv.finish <= pos->start, "overlapping busy interval");
  }
  busy_.insert(pos, iv);
}

Time ProcessorTimeline::last_finish() const {
  return busy_.empty() ? kTimeZero : busy_.back().finish;
}

}  // namespace dsslice
