#include "dsslice/sched/scheduler_workspace.hpp"

namespace dsslice {

void reset_scheduler_result(SchedulerResult& result, std::size_t tasks,
                            std::size_t processors) {
  result.schedule.reset(tasks, processors);
  result.success = false;
  result.failed_task.reset();
  result.failure_reason.clear();
  result.bus_transfers.clear();
}

}  // namespace dsslice
