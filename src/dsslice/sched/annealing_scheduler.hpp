// Simulated-annealing schedule optimization.
//
// The paper's related work applies simulated annealing to real-time
// scheduling and jitter control (Di Natale & Stankovic [15]), and §7.3
// calls for evaluating the slicing metrics under other assignment/
// scheduling policies. This module optimizes the task→processor *mapping*:
// given a fixed mapping, tasks are sequenced EDF within their windows
// (schedule_with_fixed_mapping); annealing then walks the mapping space —
// moving one task to another eligible processor per step — accepting
// regressions with the Metropolis rule under geometric cooling. The energy
// is the schedule's maximum lateness, so the search keeps pushing even
// after feasibility is reached (more margin = more robustness).
//
// Deterministic: all randomness comes from the seeded xoshiro stream in
// the options.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "dsslice/model/application.hpp"
#include "dsslice/model/platform.hpp"
#include "dsslice/model/task.hpp"
#include "dsslice/sched/edf_list_scheduler.hpp"

namespace dsslice {

class SchedulerWorkspace;

/// List-schedules the application with every task pinned to the given
/// processor (strict locality): EDF order, append placement, honouring
/// windows and communication. Tasks must be eligible on their mapped
/// processor's class. Runs in lateness mode (never aborts).
SchedulerResult schedule_with_fixed_mapping(
    const Application& app, const DeadlineAssignment& assignment,
    const Platform& platform, const std::vector<ProcessorId>& mapping);

/// Allocation-free variant of schedule_with_fixed_mapping: writes the
/// (bit-identical) result into `result`, reusing `ws` buffers — the inner
/// loop of the annealing search.
void schedule_with_fixed_mapping_into(SchedulerResult& result,
                                      SchedulerWorkspace& ws,
                                      const Application& app,
                                      const DeadlineAssignment& assignment,
                                      const Platform& platform,
                                      std::span<const ProcessorId> mapping);

struct AnnealingOptions {
  std::size_t iterations = 2000;
  double initial_temperature = 20.0;
  /// Geometric cooling factor per iteration.
  double cooling = 0.9975;
  std::uint64_t seed = 0xA22EA1;
};

struct AnnealingResult {
  /// Schedule of the best mapping found (lateness mode, always complete).
  SchedulerResult result;
  std::vector<ProcessorId> mapping;
  /// Final energy = maximum lateness of the best schedule.
  double energy = 0.0;
  /// Number of strictly improving moves accepted.
  std::size_t improvements = 0;

  AnnealingResult(std::size_t tasks, std::size_t processors)
      : result{Schedule(tasks, processors), false, std::nullopt, "", {}} {}
};

/// Anneals the task→processor mapping starting from the greedy EDF
/// placement. The best-ever mapping is returned (the walk itself may end
/// somewhere worse). `ws` (optional) supplies reusable buffers for the
/// per-iteration replays — with it, the search loop stops allocating once
/// warmed up (improvements still copy into the returned best).
AnnealingResult anneal_schedule(const Application& app,
                                const DeadlineAssignment& assignment,
                                const Platform& platform,
                                const AnnealingOptions& options = {},
                                SchedulerWorkspace* ws = nullptr);

}  // namespace dsslice
