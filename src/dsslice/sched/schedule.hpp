// Time-driven non-preemptive multiprocessor schedule (§3.3): a mapping of
// each task to a processor and a start time; the task runs to completion in
// [s_i, f_i] on its processor.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "dsslice/graph/task_graph.hpp"
#include "dsslice/model/processor.hpp"
#include "dsslice/model/time.hpp"

namespace dsslice {

struct ScheduledTask {
  NodeId task = 0;
  ProcessorId processor = 0;
  Time start = kTimeZero;
  Time finish = kTimeZero;

  bool operator==(const ScheduledTask&) const = default;
};

class Schedule {
 public:
  /// Empty schedule (0 tasks, 0 processors); call reset() before placing.
  Schedule() = default;

  Schedule(std::size_t task_count, std::size_t processor_count);

  /// Re-dimensions for a new run, keeping the underlying storage so a
  /// workspace-held Schedule stops allocating once warmed up.
  void reset(std::size_t task_count, std::size_t processor_count);

  std::size_t task_count() const { return placed_.size(); }
  std::size_t processor_count() const { return per_processor_.size(); }
  std::size_t placed_count() const { return placed_count_; }
  bool complete() const { return placed_count_ == placed_.size(); }

  /// Records task placement. Each task may be placed exactly once; the
  /// entry must have finish >= start.
  void place(NodeId task, ProcessorId processor, Time start, Time finish);

  bool placed(NodeId task) const;
  const ScheduledTask& entry(NodeId task) const;

  /// Tasks on one processor, in placement order (the list scheduler places
  /// in non-decreasing start order, so this is also start order for it).
  std::span<const NodeId> on_processor(ProcessorId p) const;

  /// Latest finish time on processor p (kTimeZero when empty).
  Time processor_available(ProcessorId p) const;

  /// Latest finish time across all processors (kTimeZero when empty).
  Time makespan() const;

  /// Sum of busy time / (makespan × processors); 0 for an empty schedule.
  double utilization() const;

  /// Multi-line ASCII Gantt rendering (one row per processor), with time
  /// scaled to at most `width` columns.
  std::string to_gantt(std::size_t width = 80) const;

 private:
  void require_task(NodeId v) const;

  std::vector<bool> placed_;
  std::vector<ScheduledTask> entries_;
  std::vector<std::vector<NodeId>> per_processor_;
  std::vector<Time> available_;
  std::size_t placed_count_ = 0;
};

}  // namespace dsslice
