#include "dsslice/sched/preemptive_scheduler.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "dsslice/analysis/graph_analysis.hpp"
#include "dsslice/obs/trace.hpp"
#include "dsslice/sched/scheduler_workspace.hpp"
#include "dsslice/util/check.hpp"
#include "dsslice/util/string_util.hpp"

namespace dsslice {

PreemptiveEdfScheduler::PreemptiveEdfScheduler(PreemptiveOptions options)
    : options_(options) {}

namespace {

constexpr double kEps = 1e-9;
constexpr ProcessorId kUnbound = static_cast<ProcessorId>(-1);

}  // namespace

PreemptiveResult PreemptiveEdfScheduler::run(
    const Application& app, const DeadlineAssignment& assignment,
    const Platform& platform) const {
  SchedulerWorkspace ws;
  PreemptiveResult result;
  run_into(result, ws, app, assignment, platform);
  return result;
}

void PreemptiveEdfScheduler::run_into(PreemptiveResult& result,
                                      SchedulerWorkspace& ws,
                                      const Application& app,
                                      const DeadlineAssignment& assignment,
                                      const Platform& platform) const {
  DSSLICE_SPAN("sched.preemptive.run");
  DSSLICE_COUNT("sched.preemptive.runs", 1);
  const GraphAnalysis& ga = app.analysis();
  const std::size_t n = ga.node_count();
  const std::size_t m = platform.processor_count();
  DSSLICE_REQUIRE(assignment.windows.size() == n, "assignment size mismatch");

  result.success = false;
  result.failed_task.reset();
  result.failure_reason.clear();
  result.preemptions = 0;
  result.slices.clear();
  ws.fill(result.completion, n, kTimeZero);
  ws.fill(result.processor_of, n, kUnbound);

  // Task state (struct-of-arrays in the workspace; formerly a TaskRun
  // vector allocated per call).
  ws.fill(ws.task_released, n, char{0});
  ws.fill(ws.task_completed, n, char{0});
  ws.fill(ws.task_release, n, kTimeZero);
  ws.fill(ws.task_remaining, n, 0.0);
  ws.fill(ws.task_processor, n, kUnbound);
  ws.size(ws.task_preds_left, n);
  // Per-processor state: currently running task (or n), its dispatch time,
  // queue of released-but-not-running bound tasks, and total bound backlog.
  ws.fill(ws.running, m, static_cast<NodeId>(n));
  ws.fill(ws.dispatched_at, m, kTimeZero);
  ws.size(ws.ready_on, m);
  for (auto& q : ws.ready_on) {
    q.clear();
  }
  ws.fill(ws.backlog, m, 0.0);

  const auto* shared_bus = dynamic_cast<const SharedBus*>(&platform.network());
  const Time bus_rate =
      shared_bus != nullptr ? shared_bus->per_item_delay() : kTimeZero;

  const auto fail = [&](NodeId v, std::string reason) {
    result.success = false;
    result.failed_task = v;
    result.failure_reason = std::move(reason);
  };

  // Binds a task whose predecessors are all complete: choose the eligible
  // processor minimizing (data-ready time, backlog, id) and queue its
  // release.
  ws.release_queue.clear();  // unsorted; scanned
  std::size_t incomplete = n;
  bool binding_failed = false;
  NodeId binding_failed_task = 0;
  const auto bind_task = [&](NodeId v) {
    const Task& task = app.task(v);
    Time best_release = kTimeInfinity;
    double best_backlog = 0.0;
    ProcessorId best = kUnbound;
    const auto preds = ga.predecessors(v);
    const auto pitems = ga.predecessor_items(v);
    for (ProcessorId p = 0; p < m; ++p) {
      if (!task.eligible(platform.class_of(p))) {
        continue;
      }
      Time rel = assignment.windows[v].arrival;
      for (std::size_t k = 0; k < preds.size(); ++k) {
        const NodeId u = preds[k];
        const Time d =
            shared_bus != nullptr
                ? (ws.task_processor[u] == p ? kTimeZero
                                             : pitems[k] * bus_rate)
                : platform.comm_delay(ws.task_processor[u], p, pitems[k]);
        rel = std::max(rel, result.completion[u] + d);
      }
      if (best == kUnbound || rel < best_release - kEps ||
          (std::abs(rel - best_release) <= kEps &&
           (ws.backlog[p] < best_backlog - kEps ||
            (std::abs(ws.backlog[p] - best_backlog) <= kEps && p < best)))) {
        best = p;
        best_release = rel;
        best_backlog = ws.backlog[p];
      }
    }
    if (best == kUnbound) {
      binding_failed = true;
      binding_failed_task = v;
      return;
    }
    ws.task_processor[v] = best;
    ws.task_release[v] = best_release;
    ws.task_remaining[v] = app.task(v).wcet(platform.class_of(best));
    result.processor_of[v] = best;
    ws.backlog[best] += ws.task_remaining[v];
    ws.push(ws.release_queue, {best_release, v});
  };

  for (NodeId v = 0; v < n; ++v) {
    ws.task_preds_left[v] = ga.predecessors(v).size();
    if (ws.task_preds_left[v] == 0) {
      bind_task(v);
    }
  }
  if (binding_failed) {
    return fail(binding_failed_task,
                "task " + app.task(binding_failed_task).name +
                    " has no eligible processor on this platform");
  }

  const auto dispatch = [&](ProcessorId p, Time now) {
    // Run the earliest-deadline released task bound to p.
    if (ws.ready_on[p].empty()) {
      ws.running[p] = static_cast<NodeId>(n);
      return;
    }
    auto& queue = ws.ready_on[p];
    std::size_t pick = 0;
    for (std::size_t k = 1; k < queue.size(); ++k) {
      const Time da = assignment.windows[queue[k]].deadline;
      const Time db = assignment.windows[queue[pick]].deadline;
      if (da < db - kEps ||
          (std::abs(da - db) <= kEps && queue[k] < queue[pick])) {
        pick = k;
      }
    }
    ws.running[p] = queue[pick];
    queue[pick] = queue.back();
    queue.pop_back();
    ws.dispatched_at[p] = now;
  };

  Time now = kTimeZero;
  std::size_t guard = 0;
  bool missed = false;
  while (incomplete > 0) {
    DSSLICE_CHECK(++guard <= 8 * n * (m + 2) + 64,
                  "preemptive simulation failed to converge");
    // Next event: earliest pending release or earliest projected finish.
    Time next = kTimeInfinity;
    for (const auto& [t, v] : ws.release_queue) {
      next = std::min(next, std::max(t, now));
    }
    for (ProcessorId p = 0; p < m; ++p) {
      if (ws.running[p] < n) {
        next = std::min(next,
                        ws.dispatched_at[p] + ws.task_remaining[ws.running[p]]);
      }
    }
    DSSLICE_CHECK(next < kTimeInfinity,
                  "incomplete tasks but no pending events");
    now = next;

    // 1. Completions at `now`.
    for (ProcessorId p = 0; p < m; ++p) {
      const NodeId v = ws.running[p];
      if (v >= n) {
        continue;
      }
      const Time projected = ws.dispatched_at[p] + ws.task_remaining[v];
      if (projected > now + kEps) {
        continue;
      }
      result.slices.push_back(ExecutionSlice{v, p, ws.dispatched_at[p], now});
      ws.task_completed[v] = 1;
      ws.task_remaining[v] = 0.0;
      result.completion[v] = now;
      ws.backlog[p] -= app.task(v).wcet(platform.class_of(p));
      ws.running[p] = static_cast<NodeId>(n);
      --incomplete;
      if (now > assignment.windows[v].deadline + kEps) {
        missed = true;
        if (options_.abort_on_miss) {
          return fail(v, "task " + app.task(v).name +
                             " misses its deadline under preemptive EDF");
        }
        if (!result.failed_task.has_value()) {
          result.failed_task = v;
          result.failure_reason =
              "task " + app.task(v).name + " missed its deadline";
        }
      }
      for (const NodeId s : ga.successors(v)) {
        if (--ws.task_preds_left[s] == 0) {
          bind_task(s);
          if (binding_failed) {
            return fail(binding_failed_task,
                        "task " + app.task(binding_failed_task).name +
                            " has no eligible processor on this platform");
          }
        }
      }
    }

    // 2. Releases due at `now` move to their processor's ready set,
    //    preempting a less urgent running task.
    for (std::size_t k = 0; k < ws.release_queue.size();) {
      if (ws.release_queue[k].first > now + kEps) {
        ++k;
        continue;
      }
      const NodeId v = ws.release_queue[k].second;
      ws.release_queue[k] = ws.release_queue.back();
      ws.release_queue.pop_back();
      ws.task_released[v] = 1;
      const ProcessorId p = ws.task_processor[v];
      const NodeId cur = ws.running[p];
      if (cur < n && assignment.windows[v].deadline <
                         assignment.windows[cur].deadline - kEps) {
        // Preempt: bank the partial slice, requeue the victim.
        if (now > ws.dispatched_at[p] + kEps) {
          result.slices.push_back(
              ExecutionSlice{cur, p, ws.dispatched_at[p], now});
          ws.task_remaining[cur] -= now - ws.dispatched_at[p];
        }
        ++result.preemptions;
        ws.push(ws.ready_on[p], cur);
        ws.running[p] = v;
        ws.dispatched_at[p] = now;
      } else {
        ws.push(ws.ready_on[p], v);
      }
    }

    // 3. Idle processors pick up work.
    for (ProcessorId p = 0; p < m; ++p) {
      if (ws.running[p] >= n) {
        dispatch(p, now);
      }
    }
  }

  DSSLICE_COUNT("sched.preemptive.preemptions", result.preemptions);
  result.success = !missed;
}

std::vector<std::string> validate_preemptive_trace(
    const Application& app, const Platform& platform,
    const DeadlineAssignment& assignment, const PreemptiveResult& result,
    bool check_deadlines, double epsilon) {
  std::vector<std::string> problems;
  const std::size_t n = app.task_count();

  // Per-processor slices must not overlap.
  for (ProcessorId p = 0; p < platform.processor_count(); ++p) {
    std::vector<ExecutionSlice> slices;
    for (const ExecutionSlice& s : result.slices) {
      if (s.processor == p) {
        slices.push_back(s);
      }
    }
    std::sort(slices.begin(), slices.end(),
              [](const ExecutionSlice& a, const ExecutionSlice& b) {
                return a.start < b.start;
              });
    for (std::size_t k = 1; k < slices.size(); ++k) {
      if (slices[k].start + epsilon < slices[k - 1].finish) {
        problems.push_back("processor p" + std::to_string(p) +
                           ": execution slices overlap");
      }
    }
  }

  for (NodeId v = 0; v < n; ++v) {
    // Slice budget: total executed time equals the WCET on the bound class;
    // all slices on the bound processor; none before the window arrival.
    double executed = 0.0;
    Time last_finish = kTimeZero;
    for (const ExecutionSlice& s : result.slices) {
      if (s.task != v) {
        continue;
      }
      executed += s.finish - s.start;
      last_finish = std::max(last_finish, s.finish);
      if (s.processor != result.processor_of[v]) {
        problems.push_back("task " + app.task(v).name +
                           " executed off its bound processor");
      }
      if (s.start + epsilon < assignment.windows[v].arrival) {
        problems.push_back("task " + app.task(v).name +
                           " executed before its window opens");
      }
    }
    const double expected = app.task(v).wcet(
        platform.class_of(result.processor_of[v]));
    if (std::abs(executed - expected) > epsilon) {
      problems.push_back("task " + app.task(v).name + " executed " +
                         format_fixed(executed, 3) + " != WCET " +
                         format_fixed(expected, 3));
    }
    if (std::abs(last_finish - result.completion[v]) > epsilon) {
      problems.push_back("task " + app.task(v).name +
                         ": completion time inconsistent with its slices");
    }
    if (check_deadlines &&
        result.completion[v] > assignment.windows[v].deadline + epsilon) {
      problems.push_back("task " + app.task(v).name +
                         " completes after its deadline");
    }
  }

  // Precedence: no slice of a successor before every predecessor completes.
  for (const Arc& arc : app.graph().arcs()) {
    Time first_start = kTimeInfinity;
    for (const ExecutionSlice& s : result.slices) {
      if (s.task == arc.to) {
        first_start = std::min(first_start, s.start);
      }
    }
    if (first_start + epsilon < result.completion[arc.from]) {
      problems.push_back("task " + app.task(arc.to).name +
                         " starts before its predecessor completes");
    }
  }
  return problems;
}

}  // namespace dsslice
