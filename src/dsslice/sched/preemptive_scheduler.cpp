#include "dsslice/sched/preemptive_scheduler.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "dsslice/util/check.hpp"
#include "dsslice/util/string_util.hpp"

namespace dsslice {

PreemptiveEdfScheduler::PreemptiveEdfScheduler(PreemptiveOptions options)
    : options_(options) {}

namespace {

constexpr double kEps = 1e-9;
constexpr ProcessorId kUnbound = static_cast<ProcessorId>(-1);

struct TaskRun {
  bool released = false;
  bool completed = false;
  Time release = kTimeZero;
  double remaining = 0.0;
  ProcessorId processor = kUnbound;
  std::size_t preds_left = 0;
};

}  // namespace

PreemptiveResult PreemptiveEdfScheduler::run(
    const Application& app, const DeadlineAssignment& assignment,
    const Platform& platform) const {
  const TaskGraph& g = app.graph();
  const std::size_t n = g.node_count();
  const std::size_t m = platform.processor_count();
  DSSLICE_REQUIRE(assignment.windows.size() == n, "assignment size mismatch");

  PreemptiveResult result;
  result.completion.assign(n, kTimeZero);
  result.processor_of.assign(n, kUnbound);

  std::vector<TaskRun> run(n);
  // Per-processor state: currently running task (or n), its dispatch time,
  // queue of released-but-not-running bound tasks, and total bound backlog.
  std::vector<NodeId> running(m, static_cast<NodeId>(n));
  std::vector<Time> dispatched_at(m, kTimeZero);
  std::vector<std::vector<NodeId>> ready(m);
  std::vector<double> backlog(m, 0.0);

  const auto fail = [&](NodeId v, std::string reason) {
    result.success = false;
    result.failed_task = v;
    result.failure_reason = std::move(reason);
    return result;
  };

  // Binds a task whose predecessors are all complete: choose the eligible
  // processor minimizing (data-ready time, backlog, id) and queue its
  // release.
  std::vector<std::pair<Time, NodeId>> release_queue;  // unsorted; scanned
  std::size_t incomplete = n;
  bool binding_failed = false;
  NodeId binding_failed_task = 0;
  const auto bind_task = [&](NodeId v) {
    const Task& task = app.task(v);
    Time best_release = kTimeInfinity;
    double best_backlog = 0.0;
    ProcessorId best = kUnbound;
    for (ProcessorId p = 0; p < m; ++p) {
      if (!task.eligible(platform.class_of(p))) {
        continue;
      }
      Time rel = assignment.windows[v].arrival;
      for (const NodeId u : g.predecessors(v)) {
        const double items = g.message_items(u, v).value_or(0.0);
        rel = std::max(rel, result.completion[u] +
                                platform.comm_delay(run[u].processor, p,
                                                    items));
      }
      if (best == kUnbound || rel < best_release - kEps ||
          (std::abs(rel - best_release) <= kEps &&
           (backlog[p] < best_backlog - kEps ||
            (std::abs(backlog[p] - best_backlog) <= kEps && p < best)))) {
        best = p;
        best_release = rel;
        best_backlog = backlog[p];
      }
    }
    if (best == kUnbound) {
      binding_failed = true;
      binding_failed_task = v;
      return;
    }
    run[v].processor = best;
    run[v].release = best_release;
    run[v].remaining = app.task(v).wcet(platform.class_of(best));
    result.processor_of[v] = best;
    backlog[best] += run[v].remaining;
    release_queue.emplace_back(best_release, v);
  };

  for (NodeId v = 0; v < n; ++v) {
    run[v].preds_left = g.in_degree(v);
    if (run[v].preds_left == 0) {
      bind_task(v);
    }
  }
  if (binding_failed) {
    return fail(binding_failed_task,
                "task " + app.task(binding_failed_task).name +
                    " has no eligible processor on this platform");
  }

  const auto dispatch = [&](ProcessorId p, Time now) {
    // Run the earliest-deadline released task bound to p.
    if (ready[p].empty()) {
      running[p] = static_cast<NodeId>(n);
      return;
    }
    std::size_t pick = 0;
    for (std::size_t k = 1; k < ready[p].size(); ++k) {
      const Time da = assignment.windows[ready[p][k]].deadline;
      const Time db = assignment.windows[ready[p][pick]].deadline;
      if (da < db - kEps ||
          (std::abs(da - db) <= kEps && ready[p][k] < ready[p][pick])) {
        pick = k;
      }
    }
    running[p] = ready[p][pick];
    ready[p][pick] = ready[p].back();
    ready[p].pop_back();
    dispatched_at[p] = now;
  };

  Time now = kTimeZero;
  std::size_t guard = 0;
  bool missed = false;
  while (incomplete > 0) {
    DSSLICE_CHECK(++guard <= 8 * n * (m + 2) + 64,
                  "preemptive simulation failed to converge");
    // Next event: earliest pending release or earliest projected finish.
    Time next = kTimeInfinity;
    for (const auto& [t, v] : release_queue) {
      next = std::min(next, std::max(t, now));
    }
    for (ProcessorId p = 0; p < m; ++p) {
      if (running[p] < n) {
        next = std::min(next, dispatched_at[p] + run[running[p]].remaining);
      }
    }
    DSSLICE_CHECK(next < kTimeInfinity,
                  "incomplete tasks but no pending events");
    now = next;

    // 1. Completions at `now`.
    for (ProcessorId p = 0; p < m; ++p) {
      const NodeId v = running[p];
      if (v >= n) {
        continue;
      }
      const Time projected = dispatched_at[p] + run[v].remaining;
      if (projected > now + kEps) {
        continue;
      }
      result.slices.push_back(ExecutionSlice{v, p, dispatched_at[p], now});
      run[v].completed = true;
      run[v].remaining = 0.0;
      result.completion[v] = now;
      backlog[p] -= app.task(v).wcet(platform.class_of(p));
      running[p] = static_cast<NodeId>(n);
      --incomplete;
      if (now > assignment.windows[v].deadline + kEps) {
        missed = true;
        if (options_.abort_on_miss) {
          return fail(v, "task " + app.task(v).name +
                             " misses its deadline under preemptive EDF");
        }
        if (!result.failed_task.has_value()) {
          result.failed_task = v;
          result.failure_reason =
              "task " + app.task(v).name + " missed its deadline";
        }
      }
      for (const NodeId s : g.successors(v)) {
        if (--run[s].preds_left == 0) {
          bind_task(s);
          if (binding_failed) {
            return fail(binding_failed_task,
                        "task " + app.task(binding_failed_task).name +
                            " has no eligible processor on this platform");
          }
        }
      }
    }

    // 2. Releases due at `now` move to their processor's ready set,
    //    preempting a less urgent running task.
    for (std::size_t k = 0; k < release_queue.size();) {
      if (release_queue[k].first > now + kEps) {
        ++k;
        continue;
      }
      const NodeId v = release_queue[k].second;
      release_queue[k] = release_queue.back();
      release_queue.pop_back();
      run[v].released = true;
      const ProcessorId p = run[v].processor;
      const NodeId cur = running[p];
      if (cur < n && assignment.windows[v].deadline <
                         assignment.windows[cur].deadline - kEps) {
        // Preempt: bank the partial slice, requeue the victim.
        if (now > dispatched_at[p] + kEps) {
          result.slices.push_back(
              ExecutionSlice{cur, p, dispatched_at[p], now});
          run[cur].remaining -= now - dispatched_at[p];
        }
        ++result.preemptions;
        ready[p].push_back(cur);
        running[p] = v;
        dispatched_at[p] = now;
      } else {
        ready[p].push_back(v);
      }
    }

    // 3. Idle processors pick up work.
    for (ProcessorId p = 0; p < m; ++p) {
      if (running[p] >= n) {
        dispatch(p, now);
      }
    }
  }

  result.success = !missed;
  return result;
}

std::vector<std::string> validate_preemptive_trace(
    const Application& app, const Platform& platform,
    const DeadlineAssignment& assignment, const PreemptiveResult& result,
    bool check_deadlines, double epsilon) {
  std::vector<std::string> problems;
  const std::size_t n = app.task_count();

  // Per-processor slices must not overlap.
  for (ProcessorId p = 0; p < platform.processor_count(); ++p) {
    std::vector<ExecutionSlice> slices;
    for (const ExecutionSlice& s : result.slices) {
      if (s.processor == p) {
        slices.push_back(s);
      }
    }
    std::sort(slices.begin(), slices.end(),
              [](const ExecutionSlice& a, const ExecutionSlice& b) {
                return a.start < b.start;
              });
    for (std::size_t k = 1; k < slices.size(); ++k) {
      if (slices[k].start + epsilon < slices[k - 1].finish) {
        problems.push_back("processor p" + std::to_string(p) +
                           ": execution slices overlap");
      }
    }
  }

  for (NodeId v = 0; v < n; ++v) {
    // Slice budget: total executed time equals the WCET on the bound class;
    // all slices on the bound processor; none before the window arrival.
    double executed = 0.0;
    Time last_finish = kTimeZero;
    for (const ExecutionSlice& s : result.slices) {
      if (s.task != v) {
        continue;
      }
      executed += s.finish - s.start;
      last_finish = std::max(last_finish, s.finish);
      if (s.processor != result.processor_of[v]) {
        problems.push_back("task " + app.task(v).name +
                           " executed off its bound processor");
      }
      if (s.start + epsilon < assignment.windows[v].arrival) {
        problems.push_back("task " + app.task(v).name +
                           " executed before its window opens");
      }
    }
    const double expected = app.task(v).wcet(
        platform.class_of(result.processor_of[v]));
    if (std::abs(executed - expected) > epsilon) {
      problems.push_back("task " + app.task(v).name + " executed " +
                         format_fixed(executed, 3) + " != WCET " +
                         format_fixed(expected, 3));
    }
    if (std::abs(last_finish - result.completion[v]) > epsilon) {
      problems.push_back("task " + app.task(v).name +
                         ": completion time inconsistent with its slices");
    }
    if (check_deadlines &&
        result.completion[v] > assignment.windows[v].deadline + epsilon) {
      problems.push_back("task " + app.task(v).name +
                         " completes after its deadline");
    }
  }

  // Precedence: no slice of a successor before every predecessor completes.
  for (const Arc& arc : app.graph().arcs()) {
    Time first_start = kTimeInfinity;
    for (const ExecutionSlice& s : result.slices) {
      if (s.task == arc.to) {
        first_start = std::min(first_start, s.start);
      }
    }
    if (first_start + epsilon < result.completion[arc.from]) {
      problems.push_back("task " + app.task(arc.to).name +
                         " starts before its predecessor completes");
    }
  }
  return problems;
}

}  // namespace dsslice
