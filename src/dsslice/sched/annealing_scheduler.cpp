#include "dsslice/sched/annealing_scheduler.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "dsslice/gen/rng.hpp"
#include "dsslice/util/check.hpp"

namespace dsslice {

SchedulerResult schedule_with_fixed_mapping(
    const Application& app, const DeadlineAssignment& assignment,
    const Platform& platform, const std::vector<ProcessorId>& mapping) {
  const TaskGraph& g = app.graph();
  const std::size_t n = g.node_count();
  const std::size_t m = platform.processor_count();
  DSSLICE_REQUIRE(assignment.windows.size() == n, "assignment size mismatch");
  DSSLICE_REQUIRE(mapping.size() == n, "mapping size mismatch");
  for (NodeId v = 0; v < n; ++v) {
    DSSLICE_REQUIRE(mapping[v] < m, "mapped processor out of range");
    DSSLICE_REQUIRE(app.task(v).eligible(platform.class_of(mapping[v])),
                    "task " + app.task(v).name +
                        " mapped to an ineligible processor class");
  }

  SchedulerResult result{Schedule(n, m), false, std::nullopt, "", {}};
  Schedule& schedule = result.schedule;

  std::vector<std::size_t> unscheduled_preds(n);
  std::vector<NodeId> ready;
  for (NodeId v = 0; v < n; ++v) {
    unscheduled_preds[v] = g.in_degree(v);
    if (unscheduled_preds[v] == 0) {
      ready.push_back(v);
    }
  }

  bool missed = false;
  while (!ready.empty()) {
    // Same EDF selection rule as EdfListScheduler (deadline, arrival, id)
    // so a fixed mapping taken from a greedy schedule replays it exactly.
    std::size_t pick = 0;
    for (std::size_t k = 1; k < ready.size(); ++k) {
      const Window& a = assignment.windows[ready[k]];
      const Window& b = assignment.windows[ready[pick]];
      if (a.deadline < b.deadline ||
          (a.deadline == b.deadline &&
           (a.arrival < b.arrival ||
            (a.arrival == b.arrival && ready[k] < ready[pick])))) {
        pick = k;
      }
    }
    const NodeId v = ready[pick];
    ready[pick] = ready.back();
    ready.pop_back();

    const ProcessorId p = mapping[v];
    const double c = app.task(v).wcet(platform.class_of(p));
    Time bound =
        std::max(assignment.windows[v].arrival, schedule.processor_available(p));
    for (const NodeId u : g.predecessors(v)) {
      const ScheduledTask& pe = schedule.entry(u);
      const double items = g.message_items(u, v).value_or(0.0);
      bound = std::max(bound,
                       pe.finish + platform.comm_delay(pe.processor, p,
                                                       items));
    }
    const Time finish = bound + c;
    if (finish > assignment.windows[v].deadline + 1e-9) {
      missed = true;
      if (!result.failed_task.has_value()) {
        result.failed_task = v;
        result.failure_reason =
            "task " + app.task(v).name + " missed its deadline";
      }
    }
    schedule.place(v, p, bound, finish);
    for (const NodeId s : g.successors(v)) {
      if (--unscheduled_preds[s] == 0) {
        ready.push_back(s);
      }
    }
  }
  result.success = schedule.complete() && !missed;
  return result;
}

namespace {

/// Maximum lateness of a complete schedule — the annealing energy.
double energy_of(const SchedulerResult& result,
                 const DeadlineAssignment& assignment) {
  double worst = -std::numeric_limits<double>::infinity();
  for (NodeId v = 0; v < assignment.windows.size(); ++v) {
    worst = std::max(worst, result.schedule.entry(v).finish -
                                assignment.windows[v].deadline);
  }
  return worst;
}

}  // namespace

AnnealingResult anneal_schedule(const Application& app,
                                const DeadlineAssignment& assignment,
                                const Platform& platform,
                                const AnnealingOptions& options) {
  const std::size_t n = app.task_count();
  const std::size_t m = platform.processor_count();
  DSSLICE_REQUIRE(options.iterations >= 1, "need at least one iteration");
  DSSLICE_REQUIRE(options.cooling > 0.0 && options.cooling < 1.0,
                  "cooling factor must be in (0, 1)");
  DSSLICE_REQUIRE(options.initial_temperature > 0.0,
                  "initial temperature must be positive");

  // Seed mapping: the greedy EDF list schedule in lateness mode (always
  // complete), which also seeds the incumbent energy.
  SchedulerOptions greedy_options;
  greedy_options.abort_on_miss = false;
  const SchedulerResult greedy =
      EdfListScheduler(greedy_options).run(app, assignment, platform);
  DSSLICE_REQUIRE(greedy.schedule.complete(),
                  "greedy seed schedule failed: " + greedy.failure_reason);

  std::vector<ProcessorId> current(n);
  for (NodeId v = 0; v < n; ++v) {
    current[v] = greedy.schedule.entry(v).processor;
  }

  AnnealingResult best(n, m);
  best.mapping = current;
  best.result = schedule_with_fixed_mapping(app, assignment, platform,
                                            current);
  best.energy = energy_of(best.result, assignment);

  double current_energy = best.energy;
  double temperature = options.initial_temperature;
  Xoshiro256 rng(options.seed);

  for (std::size_t it = 0; it < options.iterations; ++it) {
    // Neighbour: move one random task to another eligible processor.
    const auto v = static_cast<NodeId>(
        rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
    std::vector<ProcessorId> candidates;
    for (ProcessorId p = 0; p < m; ++p) {
      if (p != current[v] && app.task(v).eligible(platform.class_of(p))) {
        candidates.push_back(p);
      }
    }
    if (candidates.empty()) {
      temperature *= options.cooling;
      continue;  // task is pinned by eligibility
    }
    const ProcessorId target = candidates[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(candidates.size()) - 1))];

    std::vector<ProcessorId> neighbour = current;
    neighbour[v] = target;
    const SchedulerResult trial =
        schedule_with_fixed_mapping(app, assignment, platform, neighbour);
    const double trial_energy = energy_of(trial, assignment);

    const double delta = trial_energy - current_energy;
    const bool accept =
        delta < 0.0 || rng.next_double() < std::exp(-delta / temperature);
    if (accept) {
      current = std::move(neighbour);
      current_energy = trial_energy;
      if (trial_energy < best.energy) {
        best.energy = trial_energy;
        best.mapping = current;
        best.result = trial;
        ++best.improvements;
      }
    }
    temperature *= options.cooling;
  }
  return best;
}

}  // namespace dsslice
