#include "dsslice/sched/annealing_scheduler.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "dsslice/analysis/graph_analysis.hpp"
#include "dsslice/gen/rng.hpp"
#include "dsslice/obs/trace.hpp"
#include "dsslice/sched/scheduler_workspace.hpp"
#include "dsslice/util/check.hpp"

namespace dsslice {

SchedulerResult schedule_with_fixed_mapping(
    const Application& app, const DeadlineAssignment& assignment,
    const Platform& platform, const std::vector<ProcessorId>& mapping) {
  SchedulerWorkspace ws;
  SchedulerResult result;
  schedule_with_fixed_mapping_into(result, ws, app, assignment, platform,
                                   mapping);
  return result;
}

void schedule_with_fixed_mapping_into(SchedulerResult& result,
                                      SchedulerWorkspace& ws,
                                      const Application& app,
                                      const DeadlineAssignment& assignment,
                                      const Platform& platform,
                                      std::span<const ProcessorId> mapping) {
  const GraphAnalysis& ga = app.analysis();
  const std::size_t n = ga.node_count();
  const std::size_t m = platform.processor_count();
  DSSLICE_REQUIRE(assignment.windows.size() == n, "assignment size mismatch");
  DSSLICE_REQUIRE(mapping.size() == n, "mapping size mismatch");
  for (NodeId v = 0; v < n; ++v) {
    DSSLICE_REQUIRE(mapping[v] < m, "mapped processor out of range");
    DSSLICE_REQUIRE(app.task(v).eligible(platform.class_of(mapping[v])),
                    "task " + app.task(v).name +
                        " mapped to an ineligible processor class");
  }

  reset_scheduler_result(result, n, m);
  Schedule& schedule = result.schedule;

  const auto* shared_bus = dynamic_cast<const SharedBus*>(&platform.network());
  const Time bus_rate =
      shared_bus != nullptr ? shared_bus->per_item_delay() : kTimeZero;

  // Same EDF selection rule as EdfListScheduler (deadline, arrival, id) so
  // a fixed mapping taken from a greedy schedule replays it exactly; the
  // heap pops the identical minimum the legacy linear scan found.
  const std::size_t heap_cap = ws.ready.capacity();
  ws.ready.reset(assignment.windows);
  ws.size(ws.pred_count, n);
  for (NodeId v = 0; v < n; ++v) {
    ws.pred_count[v] = ga.predecessors(v).size();
    if (ws.pred_count[v] == 0) {
      ws.ready.push(v);
    }
  }

  bool missed = false;
  while (!ws.ready.empty()) {
    const NodeId v = ws.ready.pop();

    const ProcessorId p = mapping[v];
    const double c = app.task(v).wcet(platform.class_of(p));
    Time bound =
        std::max(assignment.windows[v].arrival, schedule.processor_available(p));
    const auto preds = ga.predecessors(v);
    const auto pitems = ga.predecessor_items(v);
    for (std::size_t k = 0; k < preds.size(); ++k) {
      const ScheduledTask& pe = schedule.entry(preds[k]);
      const Time d = shared_bus != nullptr
                         ? (pe.processor == p ? kTimeZero
                                              : pitems[k] * bus_rate)
                         : platform.comm_delay(pe.processor, p, pitems[k]);
      bound = std::max(bound, pe.finish + d);
    }
    const Time finish = bound + c;
    if (finish > assignment.windows[v].deadline + 1e-9) {
      missed = true;
      if (!result.failed_task.has_value()) {
        result.failed_task = v;
        result.failure_reason =
            "task " + app.task(v).name + " missed its deadline";
      }
    }
    schedule.place(v, p, bound, finish);
    for (const NodeId s : ga.successors(v)) {
      if (--ws.pred_count[s] == 0) {
        ws.ready.push(s);
      }
    }
  }
  ws.note_growth(heap_cap, ws.ready.capacity());
  result.success = schedule.complete() && !missed;
}

namespace {

/// Maximum lateness of a complete schedule — the annealing energy.
double energy_of(const SchedulerResult& result,
                 const DeadlineAssignment& assignment) {
  double worst = -std::numeric_limits<double>::infinity();
  for (NodeId v = 0; v < assignment.windows.size(); ++v) {
    worst = std::max(worst, result.schedule.entry(v).finish -
                                assignment.windows[v].deadline);
  }
  return worst;
}

}  // namespace

AnnealingResult anneal_schedule(const Application& app,
                                const DeadlineAssignment& assignment,
                                const Platform& platform,
                                const AnnealingOptions& options,
                                SchedulerWorkspace* ws) {
  DSSLICE_SPAN("sched.anneal.run");
  const std::size_t n = app.task_count();
  const std::size_t m = platform.processor_count();
  DSSLICE_REQUIRE(options.iterations >= 1, "need at least one iteration");
  DSSLICE_REQUIRE(options.cooling > 0.0 && options.cooling < 1.0,
                  "cooling factor must be in (0, 1)");
  DSSLICE_REQUIRE(options.initial_temperature > 0.0,
                  "initial temperature must be positive");

  SchedulerWorkspace local_ws;
  SchedulerWorkspace& w = ws != nullptr ? *ws : local_ws;

  // Seed mapping: the greedy EDF list schedule in lateness mode (always
  // complete), which also seeds the incumbent energy.
  SchedulerOptions greedy_options;
  greedy_options.abort_on_miss = false;
  EdfListScheduler(greedy_options)
      .run_into(w.seed_result, w, app, assignment, platform);
  DSSLICE_REQUIRE(w.seed_result.schedule.complete(),
                  "greedy seed schedule failed: " +
                      w.seed_result.failure_reason);

  w.size(w.current_mapping, n);
  for (NodeId v = 0; v < n; ++v) {
    w.current_mapping[v] = w.seed_result.schedule.entry(v).processor;
  }

  AnnealingResult best(n, m);
  best.mapping.assign(w.current_mapping.begin(), w.current_mapping.end());
  schedule_with_fixed_mapping_into(w.trial_result, w, app, assignment,
                                   platform, w.current_mapping);
  best.result = w.trial_result;
  best.energy = energy_of(best.result, assignment);

  double current_energy = best.energy;
  double temperature = options.initial_temperature;
  Xoshiro256 rng(options.seed);

  for (std::size_t it = 0; it < options.iterations; ++it) {
    // Neighbour: move one random task to another eligible processor.
    const auto v = static_cast<NodeId>(
        rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
    w.eligible_targets.clear();
    for (ProcessorId p = 0; p < m; ++p) {
      if (p != w.current_mapping[v] &&
          app.task(v).eligible(platform.class_of(p))) {
        w.push(w.eligible_targets, p);
      }
    }
    if (w.eligible_targets.empty()) {
      temperature *= options.cooling;
      continue;  // task is pinned by eligibility
    }
    const ProcessorId target = w.eligible_targets[static_cast<std::size_t>(
        rng.uniform_int(0,
                        static_cast<std::int64_t>(w.eligible_targets.size()) -
                            1))];

    w.size(w.neighbour_mapping, n);
    std::copy(w.current_mapping.begin(), w.current_mapping.end(),
              w.neighbour_mapping.begin());
    w.neighbour_mapping[v] = target;
    schedule_with_fixed_mapping_into(w.trial_result, w, app, assignment,
                                     platform, w.neighbour_mapping);
    const double trial_energy = energy_of(w.trial_result, assignment);

    const double delta = trial_energy - current_energy;
    const bool accept =
        delta < 0.0 || rng.next_double() < std::exp(-delta / temperature);
    if (accept) {
      std::swap(w.current_mapping, w.neighbour_mapping);
      current_energy = trial_energy;
      if (trial_energy < best.energy) {
        best.energy = trial_energy;
        best.mapping.assign(w.current_mapping.begin(),
                            w.current_mapping.end());
        best.result = w.trial_result;
        ++best.improvements;
      }
    }
    temperature *= options.cooling;
  }
  DSSLICE_COUNT("sched.anneal.runs", 1);
  DSSLICE_COUNT("sched.anneal.iterations", options.iterations);
  DSSLICE_COUNT("sched.anneal.improvements", best.improvements);
  return best;
}

}  // namespace dsslice
