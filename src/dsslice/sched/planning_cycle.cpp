#include "dsslice/sched/planning_cycle.hpp"

#include <cmath>

#include "dsslice/util/check.hpp"

namespace dsslice {

namespace {

long long integral_period(const Task& t) {
  const double T = t.period;
  DSSLICE_REQUIRE(T > 0.0 && std::round(T) == T,
                  "task " + t.name + " needs a positive integral period");
  return static_cast<long long>(T);
}

}  // namespace

PlanningCycle compute_planning_cycle(const Application& app) {
  PlanningCycle cycle;
  long long lcm = 0;
  for (NodeId i = 0; i < app.task_count(); ++i) {
    const Task& t = app.task(i);
    if (!t.is_periodic()) {
      continue;
    }
    const long long T = integral_period(t);
    lcm = (lcm == 0) ? T : time_lcm(lcm, T);
  }
  cycle.hyperperiod = static_cast<Time>(lcm);
  for (const NodeId in : app.graph().input_nodes()) {
    cycle.max_arrival = std::max(cycle.max_arrival, app.input_arrival(in));
  }
  if (lcm == 0) {
    cycle.length = 0.0;
    return cycle;
  }
  // Identical arrivals: [0, L). Staggered arrivals: [0, a + 2L) (§3.3).
  cycle.length = cycle.max_arrival == 0.0
                     ? cycle.hyperperiod
                     : cycle.max_arrival + 2.0 * cycle.hyperperiod;
  return cycle;
}

ExpandedApplication expand_planning_cycle(const Application& app) {
  const TaskGraph& g = app.graph();
  const PlanningCycle cycle = compute_planning_cycle(app);
  DSSLICE_REQUIRE(cycle.hyperperiod > 0.0,
                  "expansion requires at least one periodic task");

  // Invocation-wise precedence needs equal periods along every arc.
  for (const Arc& a : g.arcs()) {
    DSSLICE_REQUIRE(app.task(a.from).period == app.task(a.to).period,
                    "arc between tasks of different periods: " +
                        app.task(a.from).name + " -> " + app.task(a.to).name);
  }

  // Number of invocations of each task within the cycle.
  std::vector<std::size_t> invocations(app.task_count(), 1);
  for (NodeId i = 0; i < app.task_count(); ++i) {
    const Task& t = app.task(i);
    if (t.is_periodic()) {
      invocations[i] = static_cast<std::size_t>(
          static_cast<long long>(cycle.hyperperiod) / integral_period(t));
    }
  }

  // Expanded node ids: first[i] .. first[i] + invocations[i] − 1.
  std::vector<NodeId> first(app.task_count());
  std::size_t total = 0;
  for (NodeId i = 0; i < app.task_count(); ++i) {
    first[i] = static_cast<NodeId>(total);
    total += invocations[i];
  }

  TaskGraph expanded_graph(total);
  std::vector<Task> expanded_tasks(total);
  std::vector<ExpandedTask> origin(total);
  for (NodeId i = 0; i < app.task_count(); ++i) {
    const Task& t = app.task(i);
    for (std::size_t k = 0; k < invocations[i]; ++k) {
      const NodeId e = first[i] + static_cast<NodeId>(k);
      Task copy = t;
      copy.name = t.name + "#" + std::to_string(k + 1);
      copy.phasing = t.phasing + t.period * static_cast<Time>(k);
      copy.period = 0.0;  // each invocation is single-shot
      expanded_tasks[e] = std::move(copy);
      origin[e] = ExpandedTask{i, k};
    }
  }
  for (const Arc& a : g.arcs()) {
    DSSLICE_CHECK(invocations[a.from] == invocations[a.to],
                  "equal periods imply equal invocation counts");
    for (std::size_t k = 0; k < invocations[a.from]; ++k) {
      expanded_graph.add_arc(first[a.from] + static_cast<NodeId>(k),
                             first[a.to] + static_cast<NodeId>(k),
                             a.message_items);
    }
  }

  Application expanded(std::move(expanded_graph), std::move(expanded_tasks));
  for (const NodeId in : g.input_nodes()) {
    for (std::size_t k = 0; k < invocations[in]; ++k) {
      const NodeId e = first[in] + static_cast<NodeId>(k);
      expanded.set_input_arrival(e, expanded.task(e).phasing);
    }
  }
  for (const NodeId out : g.output_nodes()) {
    if (!app.has_ete_deadline(out)) {
      continue;
    }
    const Task& t = app.task(out);
    const Time relative = app.ete_deadline(out);
    if (t.is_periodic()) {
      DSSLICE_REQUIRE(relative - t.phasing <= t.period ||
                          !t.is_periodic(),
                      "task " + t.name + " violates d <= T");
    }
    for (std::size_t k = 0; k < invocations[out]; ++k) {
      const NodeId e = first[out] + static_cast<NodeId>(k);
      expanded.set_ete_deadline(e,
                                relative + t.period * static_cast<Time>(k));
    }
  }
  return ExpandedApplication{std::move(expanded), std::move(origin), cycle};
}

}  // namespace dsslice
