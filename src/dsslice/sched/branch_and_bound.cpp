#include "dsslice/sched/branch_and_bound.hpp"

#include <algorithm>
#include <limits>
#include <span>
#include <vector>

#include "dsslice/analysis/graph_analysis.hpp"
#include "dsslice/core/wcet_estimate.hpp"
#include "dsslice/obs/trace.hpp"
#include "dsslice/sched/scheduler_workspace.hpp"
#include "dsslice/util/check.hpp"

namespace dsslice {

std::string to_string(BnbStatus status) {
  switch (status) {
    case BnbStatus::kFeasible:
      return "feasible";
    case BnbStatus::kInfeasible:
      return "infeasible";
    case BnbStatus::kNodeLimit:
      return "node-limit";
  }
  return "unknown";
}

namespace {

struct SearchState {
  const Application& app;
  const DeadlineAssignment& assignment;
  const Platform& platform;
  const BnbOptions& options;
  const GraphAnalysis& ga;
  SchedulerWorkspace& ws;

  std::size_t remaining = 0;
  std::size_t nodes = 0;
  std::size_t depth = 0;
  bool node_limit_hit = false;

  SearchState(const Application& a, const DeadlineAssignment& da,
              const Platform& p, const BnbOptions& o, SchedulerWorkspace& w)
      : app(a),
        assignment(da),
        platform(p),
        options(o),
        ga(a.analysis()),
        ws(w),
        remaining(a.task_count()) {
    const std::size_t n = a.task_count();
    // min_wcet: fastest eligible class per task. estimate_wcets returns a
    // fresh vector; copy into the workspace buffer so repeated searches
    // reuse its capacity (one transient allocation per search, outside the
    // descent).
    const std::vector<double> est = estimate_wcets(a, WcetEstimation::kMin);
    ws.size(ws.min_wcet, n);
    std::copy(est.begin(), est.end(), ws.min_wcet.begin());
    ws.size(ws.preds_left, n);
    ws.fill(ws.bnb_scheduled, n, char{0});
    ws.fill(ws.bnb_finish, n, kTimeZero);
    ws.fill(ws.bnb_placed_on, n, ProcessorId{0});
    ws.fill(ws.bnb_avail, p.processor_count(), kTimeZero);
    ws.size(ws.lb_finish, n);
    // Per-depth buffer pools, sized up front: the descent never exceeds one
    // frame per task, and growing the pool mid-recursion would invalidate
    // the parent frames' references into it.
    ws.size(ws.bnb_ready_pool, n + 1);
    ws.size(ws.bnb_option_pool, n + 1);
    for (NodeId v = 0; v < n; ++v) {
      ws.preds_left[v] = ga.predecessors(v).size();
    }
  }

  /// Optimistic feasibility bound: every unscheduled task must still be
  /// able to finish by its deadline ignoring processor contention, using
  /// its fastest class and the actual finish times of scheduled
  /// predecessors (with zero message cost — a valid lower bound).
  bool bound_ok() {
    for (const NodeId v : ga.topological_order()) {
      if (ws.bnb_scheduled[v]) {
        ws.lb_finish[v] = ws.bnb_finish[v];
        continue;
      }
      Time start = assignment.windows[v].arrival;
      for (const NodeId u : ga.predecessors(v)) {
        start = std::max(start, ws.lb_finish[u]);
      }
      ws.lb_finish[v] = start + ws.min_wcet[v];
      if (ws.lb_finish[v] > assignment.windows[v].deadline + 1e-9) {
        return false;
      }
    }
    return true;
  }

  bool dfs(BnbResult& result) {
    if (node_limit_hit) {
      return false;
    }
    if (++nodes > options.max_nodes) {
      node_limit_hit = true;
      return false;
    }
    if (remaining == 0) {
      // Commit the found schedule.
      for (NodeId v = 0; v < app.task_count(); ++v) {
        result.schedule.place(v, ws.bnb_placed_on[v],
                              ws.bnb_finish[v] - actual_wcet(v),
                              ws.bnb_finish[v]);
      }
      return true;
    }
    if (!bound_ok()) {
      return false;
    }

    // Per-depth buffer pools: each recursion level owns one ready list and
    // one option list, so the whole descent reuses at most `n` vectors for
    // the life of the workspace instead of allocating two per node.
    std::vector<NodeId>& ready = ws.bnb_ready_pool[depth];
    std::vector<BnbOption>& options_list = ws.bnb_option_pool[depth];

    // Ready tasks in EDF order (good first descent).
    ready.clear();
    for (NodeId v = 0; v < app.task_count(); ++v) {
      if (!ws.bnb_scheduled[v] && ws.preds_left[v] == 0) {
        ready.push_back(v);
      }
    }
    std::sort(ready.begin(), ready.end(), [&](NodeId a, NodeId b) {
      const Time da = assignment.windows[a].deadline;
      const Time db = assignment.windows[b].deadline;
      return da != db ? da < db : a < b;
    });

    for (const NodeId v : ready) {
      const Task& task = app.task(v);
      const auto preds = ga.predecessors(v);
      const auto pitems = ga.predecessor_items(v);
      // Distinct processor options: collapse symmetric processors.
      options_list.clear();
      for (ProcessorId p = 0; p < platform.processor_count(); ++p) {
        const ProcessorClassId e = platform.class_of(p);
        if (!task.eligible(e)) {
          continue;
        }
        Time bound = std::max(assignment.windows[v].arrival, ws.bnb_avail[p]);
        for (std::size_t k = 0; k < preds.size(); ++k) {
          bound = std::max(
              bound, ws.bnb_finish[preds[k]] +
                         platform.comm_delay(ws.bnb_placed_on[preds[k]], p,
                                             pitems[k]));
        }
        const Time end = bound + task.wcet(e);
        if (end > assignment.windows[v].deadline + 1e-9) {
          continue;  // this placement misses — prune the branch
        }
        // Symmetry: identical (start, finish) options are interchangeable.
        const bool duplicate = std::any_of(
            options_list.begin(), options_list.end(), [&](const BnbOption& o) {
              return o.start == bound && o.finishing == end;
            });
        if (!duplicate) {
          options_list.push_back(BnbOption{p, bound, end});
        }
      }
      std::sort(options_list.begin(), options_list.end(),
                [](const BnbOption& a, const BnbOption& b) {
                  return a.finishing != b.finishing
                             ? a.finishing < b.finishing
                             : a.proc < b.proc;
                });
      for (const BnbOption& o : options_list) {
        // Apply.
        ws.bnb_scheduled[v] = 1;
        ws.bnb_finish[v] = o.finishing;
        ws.bnb_placed_on[v] = o.proc;
        const Time saved_avail = ws.bnb_avail[o.proc];
        ws.bnb_avail[o.proc] = o.finishing;
        for (const NodeId s : ga.successors(v)) {
          --ws.preds_left[s];
        }
        --remaining;

        ++depth;
        const bool found = dfs(result);
        --depth;
        if (found) {
          return true;
        }

        // Undo.
        ws.bnb_scheduled[v] = 0;
        ws.bnb_avail[o.proc] = saved_avail;
        for (const NodeId s : ga.successors(v)) {
          ++ws.preds_left[s];
        }
        ++remaining;
        if (node_limit_hit) {
          return false;
        }
      }
    }
    return false;
  }

  double actual_wcet(NodeId v) const {
    return app.task(v).wcet(platform.class_of(ws.bnb_placed_on[v]));
  }
};

}  // namespace

BnbResult branch_and_bound_schedule(const Application& app,
                                    const DeadlineAssignment& assignment,
                                    const Platform& platform,
                                    const BnbOptions& options,
                                    SchedulerWorkspace* ws) {
  DSSLICE_REQUIRE(assignment.windows.size() == app.task_count(),
                  "assignment size mismatch");
  DSSLICE_REQUIRE(options.max_nodes >= 1, "need a positive node budget");

  DSSLICE_SPAN("sched.bnb.run");
  BnbResult result(app.task_count(), platform.processor_count());
  SchedulerWorkspace local_ws;
  SearchState state(app, assignment, platform, options,
                    ws != nullptr ? *ws : local_ws);

  const bool found = state.dfs(result);
  result.nodes_explored = state.nodes;
  DSSLICE_COUNT("sched.bnb.runs", 1);
  DSSLICE_COUNT("sched.bnb.nodes", state.nodes);
  if (found) {
    result.status = BnbStatus::kFeasible;
  } else if (state.node_limit_hit) {
    result.status = BnbStatus::kNodeLimit;
  } else {
    result.status = BnbStatus::kInfeasible;
  }
  return result;
}

}  // namespace dsslice
