#include "dsslice/sched/branch_and_bound.hpp"

#include <algorithm>
#include <limits>
#include <span>
#include <vector>

#include "dsslice/analysis/graph_analysis.hpp"
#include "dsslice/core/wcet_estimate.hpp"
#include "dsslice/util/check.hpp"

namespace dsslice {

std::string to_string(BnbStatus status) {
  switch (status) {
    case BnbStatus::kFeasible:
      return "feasible";
    case BnbStatus::kInfeasible:
      return "infeasible";
    case BnbStatus::kNodeLimit:
      return "node-limit";
  }
  return "unknown";
}

namespace {

struct SearchState {
  const Application& app;
  const DeadlineAssignment& assignment;
  const Platform& platform;
  const BnbOptions& options;

  std::vector<double> min_wcet;          // fastest eligible class per task
  std::vector<std::size_t> preds_left;   // unscheduled predecessor count
  std::vector<bool> scheduled;
  std::vector<Time> finish;
  std::vector<ProcessorId> placed_on;
  std::vector<Time> avail;               // per-processor available time
  std::size_t remaining = 0;
  std::size_t nodes = 0;
  bool node_limit_hit = false;

  SearchState(const Application& a, const DeadlineAssignment& da,
              const Platform& p, const BnbOptions& o)
      : app(a),
        assignment(da),
        platform(p),
        options(o),
        min_wcet(estimate_wcets(a, WcetEstimation::kMin)),
        preds_left(a.task_count()),
        scheduled(a.task_count(), false),
        finish(a.task_count(), kTimeZero),
        placed_on(a.task_count(), 0),
        avail(p.processor_count(), kTimeZero),
        remaining(a.task_count()) {
    const TaskGraph& g = a.graph();
    for (NodeId v = 0; v < a.task_count(); ++v) {
      preds_left[v] = g.in_degree(v);
    }
  }

  /// Optimistic feasibility bound: every unscheduled task must still be
  /// able to finish by its deadline ignoring processor contention, using
  /// its fastest class and the actual finish times of scheduled
  /// predecessors (with zero message cost — a valid lower bound).
  bool bound_ok() const {
    const TaskGraph& g = app.graph();
    std::vector<Time> lb_finish(app.task_count(), kTimeZero);
    for (const NodeId v : topo_) {
      if (scheduled[v]) {
        lb_finish[v] = finish[v];
        continue;
      }
      Time start = assignment.windows[v].arrival;
      for (const NodeId u : g.predecessors(v)) {
        start = std::max(start, lb_finish[u]);
      }
      lb_finish[v] = start + min_wcet[v];
      if (lb_finish[v] > assignment.windows[v].deadline + 1e-9) {
        return false;
      }
    }
    return true;
  }

  std::vector<NodeId> topo_;

  bool dfs(BnbResult& result) {
    if (node_limit_hit) {
      return false;
    }
    if (++nodes > options.max_nodes) {
      node_limit_hit = true;
      return false;
    }
    if (remaining == 0) {
      // Commit the found schedule.
      for (NodeId v = 0; v < app.task_count(); ++v) {
        result.schedule.place(v, placed_on[v],
                              finish[v] - actual_wcet(v), finish[v]);
      }
      return true;
    }
    if (!bound_ok()) {
      return false;
    }

    // Ready tasks in EDF order (good first descent).
    std::vector<NodeId> ready;
    for (NodeId v = 0; v < app.task_count(); ++v) {
      if (!scheduled[v] && preds_left[v] == 0) {
        ready.push_back(v);
      }
    }
    std::sort(ready.begin(), ready.end(), [&](NodeId a, NodeId b) {
      const Time da = assignment.windows[a].deadline;
      const Time db = assignment.windows[b].deadline;
      return da != db ? da < db : a < b;
    });

    const TaskGraph& g = app.graph();
    for (const NodeId v : ready) {
      const Task& task = app.task(v);
      // Distinct processor options: collapse symmetric processors.
      struct Option {
        ProcessorId proc;
        Time start;
        Time finishing;
      };
      std::vector<Option> options_list;
      for (ProcessorId p = 0; p < platform.processor_count(); ++p) {
        const ProcessorClassId e = platform.class_of(p);
        if (!task.eligible(e)) {
          continue;
        }
        Time bound = std::max(assignment.windows[v].arrival, avail[p]);
        for (const NodeId u : g.predecessors(v)) {
          const double items = g.message_items(u, v).value_or(0.0);
          bound = std::max(bound, finish[u] + platform.comm_delay(
                                                  placed_on[u], p, items));
        }
        const Time end = bound + task.wcet(e);
        if (end > assignment.windows[v].deadline + 1e-9) {
          continue;  // this placement misses — prune the branch
        }
        // Symmetry: identical (start, finish) options are interchangeable.
        const bool duplicate = std::any_of(
            options_list.begin(), options_list.end(), [&](const Option& o) {
              return o.start == bound && o.finishing == end;
            });
        if (!duplicate) {
          options_list.push_back(Option{p, bound, end});
        }
      }
      std::sort(options_list.begin(), options_list.end(),
                [](const Option& a, const Option& b) {
                  return a.finishing != b.finishing
                             ? a.finishing < b.finishing
                             : a.proc < b.proc;
                });
      for (const Option& o : options_list) {
        // Apply.
        scheduled[v] = true;
        finish[v] = o.finishing;
        placed_on[v] = o.proc;
        const Time saved_avail = avail[o.proc];
        avail[o.proc] = o.finishing;
        for (const NodeId s : g.successors(v)) {
          --preds_left[s];
        }
        --remaining;

        if (dfs(result)) {
          return true;
        }

        // Undo.
        scheduled[v] = false;
        avail[o.proc] = saved_avail;
        for (const NodeId s : g.successors(v)) {
          ++preds_left[s];
        }
        ++remaining;
        if (node_limit_hit) {
          return false;
        }
      }
    }
    return false;
  }

  double actual_wcet(NodeId v) const {
    return app.task(v).wcet(platform.class_of(placed_on[v]));
  }
};

}  // namespace

BnbResult branch_and_bound_schedule(const Application& app,
                                    const DeadlineAssignment& assignment,
                                    const Platform& platform,
                                    const BnbOptions& options) {
  DSSLICE_REQUIRE(assignment.windows.size() == app.task_count(),
                  "assignment size mismatch");
  DSSLICE_REQUIRE(options.max_nodes >= 1, "need a positive node budget");

  BnbResult result(app.task_count(), platform.processor_count());
  SearchState state(app, assignment, platform, options);
  const std::span<const NodeId> topo = app.analysis().topological_order();
  state.topo_.assign(topo.begin(), topo.end());

  const bool found = state.dfs(result);
  result.nodes_explored = state.nodes;
  if (found) {
    result.status = BnbStatus::kFeasible;
  } else if (state.node_limit_hit) {
    result.status = BnbStatus::kNodeLimit;
  } else {
    result.status = BnbStatus::kInfeasible;
  }
  return result;
}

}  // namespace dsslice
