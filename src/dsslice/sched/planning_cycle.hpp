// Planning-cycle analysis for periodic task sets (§3.3).
//
// A periodic task set repeats after its planning cycle: with identical
// arrival times the cycle is [0, L) with L = lcm{T_i}; with arbitrary
// arrivals it is [0, a + 2L) with a = max arrival. Scheduling the planning
// cycle once suffices — expand_planning_cycle unrolls each periodic task
// into its invocations within the cycle (invocation k arrives at
// φ_i + T_i(k−1)) producing an ordinary single-shot application the slicing
// and scheduling pipeline handles unchanged.
//
// Precedence between periodic tasks is invocation-wise (τ_i^k ≺ τ_j^k),
// which requires equal periods along every arc; multi-rate chains must be
// independent components. Aperiodic (period 0) tasks are treated as a
// single invocation.
#pragma once

#include <cstddef>
#include <vector>

#include "dsslice/model/application.hpp"
#include "dsslice/model/time.hpp"

namespace dsslice {

struct PlanningCycle {
  /// Cycle length L (or a + 2L for staggered arrivals).
  Time length = 0.0;
  /// lcm of the periods alone (L above may add the arrival span).
  Time hyperperiod = 0.0;
  /// Maximum input arrival a.
  Time max_arrival = 0.0;
};

/// Computes the planning cycle. Periods must be positive integers for the
/// lcm to exist; an application with no periodic task yields length 0.
PlanningCycle compute_planning_cycle(const Application& app);

/// Mapping of an expanded (unrolled) task back to its source.
struct ExpandedTask {
  NodeId source = 0;
  std::size_t invocation = 0;  ///< 0-based k−1
};

struct ExpandedApplication {
  Application app;
  std::vector<ExpandedTask> origin;  ///< indexed by expanded NodeId
  PlanningCycle cycle;
};

/// Unrolls all invocations within one planning cycle. Requirements:
///  * arcs connect tasks of equal period (invocation-wise precedence);
///  * for every periodic output task, D_ete − arrival ≤ T (the model's
///    d_i ≤ T_i constraint — otherwise invocation windows would overlap).
/// Throws ConfigError when violated.
ExpandedApplication expand_planning_cycle(const Application& app);

}  // namespace dsslice
