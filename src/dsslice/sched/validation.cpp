#include "dsslice/sched/validation.hpp"

#include <algorithm>
#include <sstream>

#include "dsslice/util/check.hpp"
#include "dsslice/util/string_util.hpp"

namespace dsslice {

namespace {

std::string task_ref(const Application& app, NodeId v) {
  return "task " + std::to_string(v) + " (" + app.task(v).name + ")";
}

}  // namespace

std::vector<std::string> validate_schedule(
    const Application& app, const Platform& platform,
    const DeadlineAssignment& assignment, const Schedule& schedule,
    const ValidationOptions& options) {
  std::vector<std::string> problems;
  const TaskGraph& g = app.graph();
  const double eps = options.epsilon;

  for (NodeId v = 0; v < g.node_count(); ++v) {
    if (!schedule.placed(v)) {
      problems.push_back(task_ref(app, v) + ": not scheduled");
      continue;
    }
    const ScheduledTask& e = schedule.entry(v);
    const Task& t = app.task(v);
    const ProcessorClassId klass = platform.class_of(e.processor);
    if (!t.eligible(klass)) {
      problems.push_back(task_ref(app, v) + ": placed on ineligible class " +
                         platform.processor_class(klass).name);
      continue;
    }
    const double c = t.wcet(klass);
    if (std::abs((e.finish - e.start) - c) > eps) {
      problems.push_back(task_ref(app, v) + ": duration " +
                         format_fixed(e.finish - e.start, 3) +
                         " != WCET " + format_fixed(c, 3));
    }
    const Window& w = assignment.windows[v];
    if (e.start + eps < w.arrival) {
      problems.push_back(task_ref(app, v) + ": starts before its arrival " +
                         to_string(w));
    }
    if (options.check_deadlines && e.finish > w.deadline + eps) {
      problems.push_back(task_ref(app, v) + ": finishes at " +
                         format_fixed(e.finish, 3) + " after deadline " +
                         format_fixed(w.deadline, 3));
    }
  }

  // Mutual exclusion per processor.
  for (ProcessorId p = 0; p < platform.processor_count(); ++p) {
    std::vector<ScheduledTask> entries;
    for (const NodeId v : schedule.on_processor(p)) {
      entries.push_back(schedule.entry(v));
    }
    std::sort(entries.begin(), entries.end(),
              [](const ScheduledTask& a, const ScheduledTask& b) {
                return a.start < b.start;
              });
    for (std::size_t k = 1; k < entries.size(); ++k) {
      if (entries[k].start + eps < entries[k - 1].finish) {
        problems.push_back("processor p" + std::to_string(p) + ": " +
                           task_ref(app, entries[k - 1].task) + " and " +
                           task_ref(app, entries[k].task) + " overlap");
      }
    }
  }

  // Precedence and communication constraints.
  for (const Arc& a : g.arcs()) {
    if (!schedule.placed(a.from) || !schedule.placed(a.to)) {
      continue;  // already reported as unscheduled
    }
    const ScheduledTask& eu = schedule.entry(a.from);
    const ScheduledTask& ev = schedule.entry(a.to);
    const Time available =
        eu.finish +
        platform.comm_delay(eu.processor, ev.processor, a.message_items);
    if (ev.start + eps < available) {
      problems.push_back(task_ref(app, a.to) + ": starts at " +
                         format_fixed(ev.start, 3) +
                         " before data from " + task_ref(app, a.from) +
                         " arrives at " + format_fixed(available, 3));
    }
  }

  return problems;
}

std::vector<std::string> validate_resource_exclusivity(
    const Application& app, const Schedule& schedule,
    const ResourceModel& resources, double epsilon) {
  std::vector<std::string> problems;
  for (ResourceId r = 0; r < resources.resource_count(); ++r) {
    std::vector<ScheduledTask> entries;
    for (const NodeId v : resources.holders_of(r)) {
      if (schedule.placed(v)) {
        entries.push_back(schedule.entry(v));
      }
    }
    std::sort(entries.begin(), entries.end(),
              [](const ScheduledTask& a, const ScheduledTask& b) {
                return a.start < b.start;
              });
    for (std::size_t k = 1; k < entries.size(); ++k) {
      if (entries[k].start + epsilon < entries[k - 1].finish) {
        problems.push_back("resource r" + std::to_string(r) + ": " +
                           task_ref(app, entries[k - 1].task) + " and " +
                           task_ref(app, entries[k].task) +
                           " hold it concurrently");
      }
    }
  }
  return problems;
}

std::vector<std::string> validate_bus_transfers(
    const Application& app, const Platform& platform,
    const Schedule& schedule, const std::vector<BusTransfer>& transfers,
    double epsilon) {
  std::vector<std::string> problems;
  const auto* bus = dynamic_cast<const SharedBus*>(&platform.network());
  if (bus == nullptr) {
    problems.push_back("platform interconnect is not a SharedBus");
    return problems;
  }

  // Index transfers by arc; flag duplicates.
  std::vector<const BusTransfer*> by_arc;
  for (const BusTransfer& t : transfers) {
    bool duplicate = false;
    for (const BusTransfer& other : transfers) {
      if (&other != &t && other.from == t.from && other.to == t.to) {
        duplicate = true;
      }
    }
    if (duplicate) {
      problems.push_back("duplicate transfer for arc " +
                         std::to_string(t.from) + " -> " +
                         std::to_string(t.to));
    }
    by_arc.push_back(&t);
  }

  for (const Arc& a : app.graph().arcs()) {
    if (!schedule.placed(a.from) || !schedule.placed(a.to)) {
      continue;
    }
    const ScheduledTask& eu = schedule.entry(a.from);
    const ScheduledTask& ev = schedule.entry(a.to);
    const bool needs_transfer =
        eu.processor != ev.processor && a.message_items > 0.0;
    const BusTransfer* found = nullptr;
    for (const BusTransfer& t : transfers) {
      if (t.from == a.from && t.to == a.to) {
        found = &t;
        break;
      }
    }
    if (needs_transfer && found == nullptr) {
      problems.push_back("missing bus transfer for arc " +
                         std::to_string(a.from) + " -> " +
                         std::to_string(a.to));
      continue;
    }
    if (!needs_transfer && found != nullptr) {
      problems.push_back("spurious bus transfer for arc " +
                         std::to_string(a.from) + " -> " +
                         std::to_string(a.to));
      continue;
    }
    if (found == nullptr) {
      continue;
    }
    const Time expected = a.message_items * bus->per_item_delay();
    if (std::abs((found->finish - found->start) - expected) > epsilon) {
      problems.push_back("transfer duration mismatch on arc " +
                         std::to_string(a.from) + " -> " +
                         std::to_string(a.to));
    }
    if (found->start + epsilon < eu.finish) {
      problems.push_back("transfer starts before producer " +
                         task_ref(app, a.from) + " finishes");
    }
    if (ev.start + epsilon < found->finish) {
      problems.push_back("consumer " + task_ref(app, a.to) +
                         " starts before its transfer completes");
    }
  }

  // Bus exclusivity.
  std::vector<BusTransfer> sorted = transfers;
  std::sort(sorted.begin(), sorted.end(),
            [](const BusTransfer& a, const BusTransfer& b) {
              return a.start < b.start;
            });
  for (std::size_t k = 1; k < sorted.size(); ++k) {
    if (sorted[k].start + epsilon < sorted[k - 1].finish) {
      problems.push_back("bus transfers overlap: " +
                         std::to_string(sorted[k - 1].from) + "->" +
                         std::to_string(sorted[k - 1].to) + " and " +
                         std::to_string(sorted[k].from) + "->" +
                         std::to_string(sorted[k].to));
    }
  }
  return problems;
}

std::vector<std::string> validate_assignment(
    const Application& app, const DeadlineAssignment& assignment,
    double epsilon) {
  std::vector<std::string> problems;
  const TaskGraph& g = app.graph();
  DSSLICE_REQUIRE(assignment.windows.size() == g.node_count(),
                  "assignment size mismatch");

  for (const Arc& a : g.arcs()) {
    const Window& wu = assignment.windows[a.from];
    const Window& wv = assignment.windows[a.to];
    if (wu.deadline > wv.arrival + epsilon) {
      problems.push_back(task_ref(app, a.from) + " deadline " +
                         format_fixed(wu.deadline, 3) + " exceeds successor " +
                         task_ref(app, a.to) + " arrival " +
                         format_fixed(wv.arrival, 3));
    }
  }
  for (const NodeId in : g.input_nodes()) {
    if (assignment.windows[in].arrival + epsilon < app.input_arrival(in)) {
      problems.push_back(task_ref(app, in) +
                         ": window starts before the application arrival");
    }
  }
  for (const NodeId out : g.output_nodes()) {
    if (app.has_ete_deadline(out) &&
        assignment.windows[out].deadline >
            app.ete_deadline(out) + epsilon) {
      problems.push_back(task_ref(app, out) +
                         ": window deadline exceeds the E-T-E deadline");
    }
  }
  return problems;
}

}  // namespace dsslice
