#include "dsslice/sched/validation.hpp"

#include <algorithm>
#include <sstream>

#include "dsslice/util/check.hpp"
#include "dsslice/util/string_util.hpp"

namespace dsslice {

namespace {

std::string task_ref(const Application& app, NodeId v) {
  return "task " + std::to_string(v) + " (" + app.task(v).name + ")";
}

/// Sorts the task ids in `order` by schedule start time and reports every
/// overlapping adjacent pair through `report(before, after)`. Shared by the
/// per-processor and per-resource exclusivity checks, which reuse one index
/// buffer across all groups instead of copying ScheduledTask rows per group.
template <typename Report>
void check_exclusive(const Schedule& schedule, std::vector<NodeId>& order,
                     double eps, Report&& report) {
  std::sort(order.begin(), order.end(), [&](NodeId a, NodeId b) {
    return schedule.entry(a).start < schedule.entry(b).start;
  });
  for (std::size_t k = 1; k < order.size(); ++k) {
    if (schedule.entry(order[k]).start + eps <
        schedule.entry(order[k - 1]).finish) {
      report(order[k - 1], order[k]);
    }
  }
}

}  // namespace

std::vector<std::string> validate_schedule(
    const Application& app, const Platform& platform,
    const DeadlineAssignment& assignment, const Schedule& schedule,
    const ValidationOptions& options) {
  std::vector<std::string> problems;
  const TaskGraph& g = app.graph();
  const double eps = options.epsilon;

  for (NodeId v = 0; v < g.node_count(); ++v) {
    if (!schedule.placed(v)) {
      problems.push_back(task_ref(app, v) + ": not scheduled");
      continue;
    }
    const ScheduledTask& e = schedule.entry(v);
    const Task& t = app.task(v);
    const ProcessorClassId klass = platform.class_of(e.processor);
    if (!t.eligible(klass)) {
      problems.push_back(task_ref(app, v) + ": placed on ineligible class " +
                         platform.processor_class(klass).name);
      continue;
    }
    const double c = t.wcet(klass);
    if (std::abs((e.finish - e.start) - c) > eps) {
      problems.push_back(task_ref(app, v) + ": duration " +
                         format_fixed(e.finish - e.start, 3) +
                         " != WCET " + format_fixed(c, 3));
    }
    const Window& w = assignment.windows[v];
    if (e.start + eps < w.arrival) {
      problems.push_back(task_ref(app, v) + ": starts before its arrival " +
                         to_string(w));
    }
    if (options.check_deadlines && e.finish > w.deadline + eps) {
      problems.push_back(task_ref(app, v) + ": finishes at " +
                         format_fixed(e.finish, 3) + " after deadline " +
                         format_fixed(w.deadline, 3));
    }
  }

  // Mutual exclusion per processor: one reusable index buffer across all
  // processors (the schedule already groups tasks by processor).
  std::vector<NodeId> order;
  for (ProcessorId p = 0; p < platform.processor_count(); ++p) {
    const auto on_p = schedule.on_processor(p);
    order.assign(on_p.begin(), on_p.end());
    check_exclusive(schedule, order, eps, [&](NodeId before, NodeId after) {
      problems.push_back("processor p" + std::to_string(p) + ": " +
                         task_ref(app, before) + " and " +
                         task_ref(app, after) + " overlap");
    });
  }

  // Precedence and communication constraints.
  for (const Arc& a : g.arcs()) {
    if (!schedule.placed(a.from) || !schedule.placed(a.to)) {
      continue;  // already reported as unscheduled
    }
    const ScheduledTask& eu = schedule.entry(a.from);
    const ScheduledTask& ev = schedule.entry(a.to);
    const Time available =
        eu.finish +
        platform.comm_delay(eu.processor, ev.processor, a.message_items);
    if (ev.start + eps < available) {
      problems.push_back(task_ref(app, a.to) + ": starts at " +
                         format_fixed(ev.start, 3) +
                         " before data from " + task_ref(app, a.from) +
                         " arrives at " + format_fixed(available, 3));
    }
  }

  return problems;
}

std::vector<std::string> validate_resource_exclusivity(
    const Application& app, const Schedule& schedule,
    const ResourceModel& resources, double epsilon) {
  std::vector<std::string> problems;
  std::vector<NodeId> order;
  for (ResourceId r = 0; r < resources.resource_count(); ++r) {
    order.clear();
    for (const NodeId v : resources.holders_of(r)) {
      if (schedule.placed(v)) {
        order.push_back(v);
      }
    }
    check_exclusive(schedule, order, epsilon,
                    [&](NodeId before, NodeId after) {
                      problems.push_back("resource r" + std::to_string(r) +
                                         ": " + task_ref(app, before) +
                                         " and " + task_ref(app, after) +
                                         " hold it concurrently");
                    });
  }
  return problems;
}

std::vector<std::string> validate_bus_transfers(
    const Application& app, const Platform& platform,
    const Schedule& schedule, const std::vector<BusTransfer>& transfers,
    double epsilon) {
  std::vector<std::string> problems;
  const auto* bus = dynamic_cast<const SharedBus*>(&platform.network());
  if (bus == nullptr) {
    problems.push_back("platform interconnect is not a SharedBus");
    return problems;
  }

  // One index over the transfers, sorted by arc: duplicate detection and
  // the per-arc lookups below become binary searches instead of quadratic
  // rescans of the transfer list.
  std::vector<std::size_t> by_arc(transfers.size());
  for (std::size_t k = 0; k < by_arc.size(); ++k) {
    by_arc[k] = k;
  }
  const auto arc_less = [&](std::size_t a, std::size_t b) {
    return transfers[a].from != transfers[b].from
               ? transfers[a].from < transfers[b].from
               : transfers[a].to < transfers[b].to;
  };
  std::sort(by_arc.begin(), by_arc.end(), arc_less);
  const auto find_transfer = [&](NodeId from, NodeId to) -> const BusTransfer* {
    std::size_t lo = 0, hi = by_arc.size();
    while (lo < hi) {
      const std::size_t mid = (lo + hi) / 2;
      const BusTransfer& t = transfers[by_arc[mid]];
      if (t.from < from || (t.from == from && t.to < to)) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    if (lo < by_arc.size() && transfers[by_arc[lo]].from == from &&
        transfers[by_arc[lo]].to == to) {
      return &transfers[by_arc[lo]];
    }
    return nullptr;
  };
  // Flag duplicates (one message per involved transfer, in list order, as
  // before): mark members of equal-arc runs, then report in original order.
  std::vector<char> duplicate(transfers.size(), 0);
  for (std::size_t k = 1; k < by_arc.size(); ++k) {
    const BusTransfer& a = transfers[by_arc[k - 1]];
    const BusTransfer& b = transfers[by_arc[k]];
    if (a.from == b.from && a.to == b.to) {
      duplicate[by_arc[k - 1]] = 1;
      duplicate[by_arc[k]] = 1;
    }
  }
  for (std::size_t k = 0; k < transfers.size(); ++k) {
    if (duplicate[k]) {
      problems.push_back("duplicate transfer for arc " +
                         std::to_string(transfers[k].from) + " -> " +
                         std::to_string(transfers[k].to));
    }
  }

  for (const Arc& a : app.graph().arcs()) {
    if (!schedule.placed(a.from) || !schedule.placed(a.to)) {
      continue;
    }
    const ScheduledTask& eu = schedule.entry(a.from);
    const ScheduledTask& ev = schedule.entry(a.to);
    const bool needs_transfer =
        eu.processor != ev.processor && a.message_items > 0.0;
    const BusTransfer* found = find_transfer(a.from, a.to);
    if (needs_transfer && found == nullptr) {
      problems.push_back("missing bus transfer for arc " +
                         std::to_string(a.from) + " -> " +
                         std::to_string(a.to));
      continue;
    }
    if (!needs_transfer && found != nullptr) {
      problems.push_back("spurious bus transfer for arc " +
                         std::to_string(a.from) + " -> " +
                         std::to_string(a.to));
      continue;
    }
    if (found == nullptr) {
      continue;
    }
    const Time expected = a.message_items * bus->per_item_delay();
    if (std::abs((found->finish - found->start) - expected) > epsilon) {
      problems.push_back("transfer duration mismatch on arc " +
                         std::to_string(a.from) + " -> " +
                         std::to_string(a.to));
    }
    if (found->start + epsilon < eu.finish) {
      problems.push_back("transfer starts before producer " +
                         task_ref(app, a.from) + " finishes");
    }
    if (ev.start + epsilon < found->finish) {
      problems.push_back("consumer " + task_ref(app, a.to) +
                         " starts before its transfer completes");
    }
  }

  // Bus exclusivity: re-sort the same index by start time (no transfer
  // copies).
  std::sort(by_arc.begin(), by_arc.end(), [&](std::size_t a, std::size_t b) {
    return transfers[a].start < transfers[b].start;
  });
  for (std::size_t k = 1; k < by_arc.size(); ++k) {
    const BusTransfer& prev = transfers[by_arc[k - 1]];
    const BusTransfer& cur = transfers[by_arc[k]];
    if (cur.start + epsilon < prev.finish) {
      problems.push_back("bus transfers overlap: " +
                         std::to_string(prev.from) + "->" +
                         std::to_string(prev.to) + " and " +
                         std::to_string(cur.from) + "->" +
                         std::to_string(cur.to));
    }
  }
  return problems;
}

std::vector<std::string> validate_assignment(
    const Application& app, const DeadlineAssignment& assignment,
    double epsilon) {
  std::vector<std::string> problems;
  const TaskGraph& g = app.graph();
  DSSLICE_REQUIRE(assignment.windows.size() == g.node_count(),
                  "assignment size mismatch");

  for (const Arc& a : g.arcs()) {
    const Window& wu = assignment.windows[a.from];
    const Window& wv = assignment.windows[a.to];
    if (wu.deadline > wv.arrival + epsilon) {
      problems.push_back(task_ref(app, a.from) + " deadline " +
                         format_fixed(wu.deadline, 3) + " exceeds successor " +
                         task_ref(app, a.to) + " arrival " +
                         format_fixed(wv.arrival, 3));
    }
  }
  for (const NodeId in : g.input_nodes()) {
    if (assignment.windows[in].arrival + epsilon < app.input_arrival(in)) {
      problems.push_back(task_ref(app, in) +
                         ": window starts before the application arrival");
    }
  }
  for (const NodeId out : g.output_nodes()) {
    if (app.has_ete_deadline(out) &&
        assignment.windows[out].deadline >
            app.ete_deadline(out) + epsilon) {
      problems.push_back(task_ref(app, out) +
                         ": window deadline exceeds the E-T-E deadline");
    }
  }
  return problems;
}

}  // namespace dsslice
