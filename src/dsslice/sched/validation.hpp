// Independent schedule validation — the test oracle for all schedulers.
//
// Checks a complete(d) schedule against every constraint of the system
// model, without reusing scheduler internals:
//  * eligibility: each task runs on a processor of an eligible class;
//  * duration: finish − start equals the task's WCET on that class;
//  * window: start ≥ arrival and finish ≤ absolute deadline (optional —
//    lateness studies validate everything else while allowing misses);
//  * exclusivity: busy intervals on one processor do not overlap;
//  * precedence + communication: for every arc u→v, v starts no earlier
//    than f_u plus the interprocessor message delay.
#pragma once

#include <string>
#include <vector>

#include "dsslice/model/application.hpp"
#include "dsslice/model/platform.hpp"
#include "dsslice/model/resources.hpp"
#include "dsslice/model/task.hpp"
#include "dsslice/sched/edf_list_scheduler.hpp"
#include "dsslice/sched/schedule.hpp"

namespace dsslice {

struct ValidationOptions {
  /// When false, deadline misses are not reported (start/arrival and all
  /// structural constraints still are).
  bool check_deadlines = true;
  /// Numerical slack for comparisons (all quantities derive from integral
  /// inputs, so the default 1e-9 only forgives representation error).
  double epsilon = 1e-9;
};

/// Returns a list of violated constraints (empty = valid schedule).
std::vector<std::string> validate_schedule(const Application& app,
                                           const Platform& platform,
                                           const DeadlineAssignment& assignment,
                                           const Schedule& schedule,
                                           const ValidationOptions& options = {});

/// Validates exclusive-resource constraints (§7.3): no two tasks sharing a
/// resource may overlap in time, regardless of their processors.
std::vector<std::string> validate_resource_exclusivity(
    const Application& app, const Schedule& schedule,
    const ResourceModel& resources, double epsilon = 1e-9);

/// Validates the bus reservations produced by the scheduler's
/// simulate_bus_contention mode against a schedule:
///  * exactly one transfer per cross-processor arc with a non-zero message
///    (and none for co-located or empty arcs);
///  * duration equals message items × the bus's per-item delay;
///  * a transfer starts no earlier than its producer finishes, and the
///    consumer starts no earlier than the transfer finishes;
///  * no two transfers overlap on the (single, time-multiplexed) bus.
std::vector<std::string> validate_bus_transfers(
    const Application& app, const Platform& platform,
    const Schedule& schedule, const std::vector<BusTransfer>& transfers,
    double epsilon = 1e-9);

/// Validates a deadline assignment against the application's end-to-end
/// requirements: for every arc u→v, D_u ≤ a_v (slice non-overlap, I1/I2);
/// input arrivals respected; output deadlines not exceeded. This implies
/// the per-path constraint Σ d_i ≤ D_ete (Eq. 1).
std::vector<std::string> validate_assignment(const Application& app,
                                             const DeadlineAssignment& assignment,
                                             double epsilon = 1e-9);

}  // namespace dsslice
