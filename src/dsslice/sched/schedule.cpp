#include "dsslice/sched/schedule.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "dsslice/util/check.hpp"
#include "dsslice/util/string_util.hpp"

namespace dsslice {

Schedule::Schedule(std::size_t task_count, std::size_t processor_count)
    : placed_(task_count, false),
      entries_(task_count),
      per_processor_(processor_count),
      available_(processor_count, kTimeZero) {
  DSSLICE_REQUIRE(processor_count > 0, "need at least one processor");
}

void Schedule::reset(std::size_t task_count, std::size_t processor_count) {
  DSSLICE_REQUIRE(processor_count > 0, "need at least one processor");
  placed_.assign(task_count, false);
  entries_.resize(task_count);
  per_processor_.resize(processor_count);
  for (auto& lane : per_processor_) {
    lane.clear();  // keeps each lane's capacity across runs
  }
  available_.assign(processor_count, kTimeZero);
  placed_count_ = 0;
}

void Schedule::require_task(NodeId v) const {
  DSSLICE_REQUIRE(v < placed_.size(), "task id out of range");
}

void Schedule::place(NodeId task, ProcessorId processor, Time start,
                     Time finish) {
  require_task(task);
  DSSLICE_REQUIRE(processor < per_processor_.size(),
                  "processor id out of range");
  DSSLICE_REQUIRE(finish >= start, "finish precedes start");
  DSSLICE_CHECK(!placed_[task], "task placed twice");
  placed_[task] = true;
  entries_[task] = ScheduledTask{task, processor, start, finish};
  per_processor_[processor].push_back(task);
  available_[processor] = std::max(available_[processor], finish);
  ++placed_count_;
}

bool Schedule::placed(NodeId task) const {
  require_task(task);
  return placed_[task];
}

const ScheduledTask& Schedule::entry(NodeId task) const {
  require_task(task);
  DSSLICE_REQUIRE(placed_[task], "task not yet placed");
  return entries_[task];
}

std::span<const NodeId> Schedule::on_processor(ProcessorId p) const {
  DSSLICE_REQUIRE(p < per_processor_.size(), "processor id out of range");
  return per_processor_[p];
}

Time Schedule::processor_available(ProcessorId p) const {
  DSSLICE_REQUIRE(p < per_processor_.size(), "processor id out of range");
  return available_[p];
}

Time Schedule::makespan() const {
  Time m = kTimeZero;
  for (const Time a : available_) {
    m = std::max(m, a);
  }
  return m;
}

double Schedule::utilization() const {
  const Time span = makespan();
  if (span <= kTimeZero) {
    return 0.0;
  }
  Time busy = kTimeZero;
  for (NodeId v = 0; v < placed_.size(); ++v) {
    if (placed_[v]) {
      busy += entries_[v].finish - entries_[v].start;
    }
  }
  return busy / (span * static_cast<double>(per_processor_.size()));
}

std::string Schedule::to_gantt(std::size_t width) const {
  const Time span = makespan();
  std::ostringstream os;
  if (span <= kTimeZero || width == 0) {
    os << "(empty schedule)\n";
    return os.str();
  }
  const double scale = static_cast<double>(width) / span;
  for (ProcessorId p = 0; p < per_processor_.size(); ++p) {
    std::string row(width, '.');
    for (const NodeId v : per_processor_[p]) {
      const ScheduledTask& e = entries_[v];
      auto lo = static_cast<std::size_t>(std::floor(e.start * scale));
      auto hi = static_cast<std::size_t>(std::ceil(e.finish * scale));
      lo = std::min(lo, width - 1);
      hi = std::min(std::max(hi, lo + 1), width);
      const std::string tag = std::to_string(v);
      for (std::size_t c = lo; c < hi; ++c) {
        const std::size_t k = c - lo;
        row[c] = k < tag.size() ? tag[k] : '#';
      }
    }
    os << pad_right("p" + std::to_string(p), 5) << "|" << row << "|\n";
  }
  const std::string end_tag = "t=" + format_fixed(span, 1);
  os << pad_right("", 5) << " 0" << pad_left(end_tag, width - 1) << "\n";
  return os.str();
}

}  // namespace dsslice
