// Preemptive EDF scheduling of sliced task sets.
//
// The paper evaluates under a non-preemptive time-driven dispatcher but
// stresses (§2, implications I1/I2, §7.3) that the slicing technique is not
// restricted to that run-time model. This simulator executes the windows
// under *preemptive* EDF with static assignment:
//
//  * a task is bound to one processor at its first dispatch (the eligible
//    processor with the least backlog at release — mirroring §3.3's static
//    assignment assumption), and may later be preempted and resumed on that
//    processor, never migrated (per-class WCETs make mid-execution
//    migration ill-defined on unrelated machines);
//  * each processor runs the earliest-absolute-deadline released task among
//    those bound to it, preempting whenever a more urgent one is released;
//  * a task is released when its window opens, its predecessors have
//    completed, and their messages have arrived (nominal bus delays).
//
// Because windows already serialize precedence chains, preemption's benefit
// is confined to resolving the window overlaps between parallel branches —
// quantified against the non-preemptive baseline in the scheduler ablation.
#pragma once

#include "dsslice/model/application.hpp"
#include "dsslice/model/platform.hpp"
#include "dsslice/model/task.hpp"
#include "dsslice/sched/edf_list_scheduler.hpp"

namespace dsslice {

struct PreemptiveOptions {
  /// Abort at the first deadline miss, or simulate to completion.
  bool abort_on_miss = true;
};

/// One executed slice of a task (between a dispatch and a preemption or
/// completion).
struct ExecutionSlice {
  NodeId task = 0;
  ProcessorId processor = 0;
  Time start = kTimeZero;
  Time finish = kTimeZero;
};

struct PreemptiveResult {
  bool success = false;
  std::optional<NodeId> failed_task;
  std::string failure_reason;
  /// Completion time per task (finish of its last slice); meaningful for
  /// tasks that completed.
  std::vector<Time> completion;
  /// Processor each task was bound to.
  std::vector<ProcessorId> processor_of;
  /// Preemption count across the whole simulation.
  std::size_t preemptions = 0;
  /// The execution trace, in dispatch order.
  std::vector<ExecutionSlice> slices;
};

class SchedulerWorkspace;

class PreemptiveEdfScheduler {
 public:
  explicit PreemptiveEdfScheduler(PreemptiveOptions options = {});

  PreemptiveResult run(const Application& app,
                       const DeadlineAssignment& assignment,
                       const Platform& platform) const;

  /// Allocation-free variant for hot loops: writes the (bit-identical)
  /// result into `result`, reusing its storage and `ws` buffers.
  void run_into(PreemptiveResult& result, SchedulerWorkspace& ws,
                const Application& app, const DeadlineAssignment& assignment,
                const Platform& platform) const;

  const PreemptiveOptions& options() const { return options_; }

 private:
  PreemptiveOptions options_;
};

/// Independent validation of a preemptive execution trace: slices of one
/// processor never overlap, per-task slice time sums to its WCET on the
/// bound class, no slice starts before the task's release constraints, and
/// completions respect deadlines (optional).
std::vector<std::string> validate_preemptive_trace(
    const Application& app, const Platform& platform,
    const DeadlineAssignment& assignment, const PreemptiveResult& result,
    bool check_deadlines = true, double epsilon = 1e-9);

}  // namespace dsslice
