// Communication-driven task clustering (paper §1 reference [1]).
//
// Task-assignment techniques commonly cluster tasks that communicate
// heavily and co-locate each cluster, converting expensive cross-processor
// messages into free shared-memory accesses — the very behaviour the
// slicing technique's "assume zero communication cost" prediction (§4.3)
// banks on. This module provides:
//
//  * cluster_by_communication() — union-find merge of tasks connected by
//    arcs whose message size meets a threshold, with a cluster-size cap so
//    one cluster cannot exceed what a single processor can hold;
//  * ClusteredScheduler — an EDF list scheduler that keeps every cluster on
//    one processor: the cluster's processor is fixed by its first scheduled
//    task (chosen greedily), and all later members follow it.
#pragma once

#include <cstddef>
#include <vector>

#include "dsslice/model/application.hpp"
#include "dsslice/model/platform.hpp"
#include "dsslice/model/task.hpp"
#include "dsslice/sched/edf_list_scheduler.hpp"

namespace dsslice {

/// A clustering: cluster id per task (0..cluster_count-1, dense).
struct Clustering {
  std::vector<std::size_t> cluster_of;
  std::size_t cluster_count = 0;

  std::size_t size_of(std::size_t cluster) const;
};

/// Merges tasks along arcs with message_items >= threshold, largest
/// messages first, never growing a cluster past `max_cluster_size` tasks.
/// Threshold <= 0 merges along every arc (subject to the size cap).
Clustering cluster_by_communication(const Application& app,
                                    double message_threshold,
                                    std::size_t max_cluster_size);

/// EDF list scheduler honouring co-location constraints: all tasks of a
/// cluster run on the same processor. Placement is append-only; the
/// cluster's processor is decided when its first task is placed (earliest
/// start, requiring eligibility of ALL cluster members on that processor's
/// class).
class ClusteredScheduler {
 public:
  explicit ClusteredScheduler(Clustering clustering,
                              bool abort_on_miss = true);

  SchedulerResult run(const Application& app,
                      const DeadlineAssignment& assignment,
                      const Platform& platform) const;

  const Clustering& clustering() const { return clustering_; }

 private:
  Clustering clustering_;
  bool abort_on_miss_;
};

}  // namespace dsslice
