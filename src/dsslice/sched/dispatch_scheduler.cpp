#include "dsslice/sched/dispatch_scheduler.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>
#include <utility>
#include <vector>

#include "dsslice/analysis/graph_analysis.hpp"
#include "dsslice/obs/trace.hpp"
#include "dsslice/sched/scheduler_workspace.hpp"
#include "dsslice/util/check.hpp"

namespace dsslice {

std::string to_string(SchedulerAlgorithm algorithm) {
  switch (algorithm) {
    case SchedulerAlgorithm::kListEdf:
      return "list-edf";
    case SchedulerAlgorithm::kDispatchEdf:
      return "dispatch-edf";
    case SchedulerAlgorithm::kPreemptiveEdf:
      return "preemptive-edf";
  }
  return "unknown";
}

void DispatchControl::on_completion(const View&, NodeId, bool,
                                    std::vector<Window>&) {}

std::vector<NodeId> DispatchControl::on_processor_failure(
    const View&, ProcessorId, const std::vector<NodeId>&,
    std::vector<Window>&, std::vector<ProcessorId>&) {
  return {};
}

EdfDispatchScheduler::EdfDispatchScheduler(DispatchOptions options)
    : options_(options) {}

namespace {

constexpr double kEps = 1e-9;
constexpr Time kNoBound = -std::numeric_limits<Time>::infinity();

}  // namespace

SchedulerResult EdfDispatchScheduler::run(const Application& app,
                                          const DeadlineAssignment& assignment,
                                          const Platform& platform) const {
  return run(app, assignment, platform, nullptr, nullptr, nullptr);
}

SchedulerResult EdfDispatchScheduler::run(const Application& app,
                                          const DeadlineAssignment& assignment,
                                          const Platform& platform,
                                          const DispatchConditions* conditions,
                                          DispatchControl* control,
                                          DispatchTelemetry* telemetry) const {
  SchedulerWorkspace ws;
  SchedulerResult result;
  run_into(result, ws, app, assignment, platform, conditions, control,
           telemetry);
  return result;
}

void EdfDispatchScheduler::run_into(SchedulerResult& result,
                                    SchedulerWorkspace& ws,
                                    const Application& app,
                                    const DeadlineAssignment& assignment,
                                    const Platform& platform,
                                    const DispatchConditions* conditions,
                                    DispatchControl* control,
                                    DispatchTelemetry* telemetry) const {
  DSSLICE_SPAN("sched.dispatch.run");
  // Event/rescan accounting (docs/PERFORMANCE.md): tallied in stack locals
  // so the simulation loop stays free of per-iteration instrumentation, and
  // flushed by the destructor so every exit path (including the fail()
  // returns) reports. Mirrors the DispatchTelemetry kill/restart/miss
  // counters into the metrics registry without widening that struct.
  struct ObsTally {
    std::uint64_t events = 0;     // outer loop iterations (time advances)
    std::uint64_t rescans = 0;    // dispatch-scan passes over the task set
    std::uint64_t dispatched = 0;
    std::uint64_t killed = 0;
    std::uint64_t restarts = 0;
    std::uint64_t misses = 0;
    std::uint64_t degraded = 0;  // completions with a shed optional part
    std::uint64_t heap_ops = 0;  // event-queue pushes + pops (wake ∪ finish)
    std::uint64_t queue_peak = 0;  // max queued events at any push
    ~ObsTally() {
      DSSLICE_COUNT("sched.dispatch.runs", 1);
      DSSLICE_COUNT("sched.dispatch.events", events);
      DSSLICE_COUNT("sched.dispatch.rescans", rescans);
      DSSLICE_COUNT("sched.dispatch.dispatched", dispatched);
      DSSLICE_COUNT("sched.dispatch.killed", killed);
      DSSLICE_COUNT("sched.dispatch.restarts", restarts);
      DSSLICE_COUNT("sched.dispatch.misses", misses);
      DSSLICE_COUNT("sched.dispatch.degraded", degraded);
      DSSLICE_COUNT("sched.dispatch.heap_ops", heap_ops);
      DSSLICE_GAUGE("sched.dispatch.queue_depth",
                    static_cast<double>(queue_peak));
    }
  } obs_tally;
  const GraphAnalysis& ga = app.analysis();
  const std::size_t n = ga.node_count();
  const std::size_t m = platform.processor_count();
  DSSLICE_REQUIRE(assignment.windows.size() == n, "assignment size mismatch");
  if (conditions != nullptr) {
    DSSLICE_REQUIRE(conditions->wcet_factor.empty() ||
                        conditions->wcet_factor.size() == n,
                    "wcet_factor size mismatch");
    DSSLICE_REQUIRE(conditions->wcet_addend.empty() ||
                        conditions->wcet_addend.size() == n,
                    "wcet_addend size mismatch");
    DSSLICE_REQUIRE(conditions->arc_delay_factor.empty() ||
                        conditions->arc_delay_factor.size() == ga.arc_count(),
                    "arc_delay_factor size mismatch");
    DSSLICE_REQUIRE(conditions->processor_down_at.empty() ||
                        conditions->processor_down_at.size() == m,
                    "processor_down_at size mismatch");
  }

  reset_scheduler_result(result, n, m);

  // Mutable dispatch state (struct-of-arrays so DispatchControl can observe
  // it through cheap spans), all held in the workspace.
  ws.size(ws.windows, n);
  std::copy(assignment.windows.begin(), assignment.windows.end(),
            ws.windows.begin());
  std::vector<Window>& windows = ws.windows;
  ws.size(ws.preds_left, n);
  ws.fill(ws.started, n, char{0});
  ws.fill(ws.done, n, char{0});
  ws.fill(ws.lost, n, char{0});
  ws.fill(ws.shed, n, char{0});
  ws.fill(ws.start_time, n, kTimeZero);
  ws.fill(ws.finish, n, kTimeInfinity);
  ws.fill(ws.proc_of, n, ProcessorId{0});
  ws.fill(ws.pinned, n, kUnpinnedProcessor);
  ws.fill(ws.busy_until, m, kTimeZero);
  std::size_t remaining = n;
  for (NodeId v = 0; v < n; ++v) {
    ws.preds_left[v] = ga.predecessors(v).size();
  }

  // Per-processor timing: the *planned* availability window comes from the
  // platform (the dispatcher refuses work it knows cannot finish in time),
  // whereas injected failures are unforeseen — work is accepted and killed.
  ws.size(ws.known_from, m);
  ws.size(ws.known_until, m);
  ws.fill(ws.surprise_down, m, kTimeInfinity);
  ws.fill(ws.failure_handled, m, char{0});
  for (ProcessorId p = 0; p < m; ++p) {
    ws.known_from[p] = platform.processor(p).available_from;
    ws.known_until[p] = platform.processor(p).available_until;
    if (conditions != nullptr && !conditions->processor_down_at.empty()) {
      ws.surprise_down[p] = conditions->processor_down_at[p];
    }
  }
  ws.size(ws.down_at, m);  // effective halt, for views
  for (ProcessorId p = 0; p < m; ++p) {
    ws.down_at[p] = std::min(ws.known_until[p], ws.surprise_down[p]);
  }
  bool any_failure = false;

  // The candidate loops below run once per (ready task, processor) per
  // event; cache Platform::class_of so eligibility checks are direct reads
  // of the public wcet table instead of two out-of-line calls.
  ws.size(ws.proc_class, m);
  for (ProcessorId p = 0; p < m; ++p) {
    ws.proc_class[p] = platform.class_of(p);
  }

  // Actual execution time of v, given its nominal wcet on the chosen class,
  // under the injected conditions.
  const auto adjust_wcet = [&](NodeId v, double c) {
    if (ws.shed[v]) {
      // Degraded mode (docs/ROBUSTNESS.md): the recovery control shed this
      // task's optional part before it started, so only the mandatory part
      // executes. Injected overruns below apply to the reduced demand — an
      // overrun factor models proportional misestimation, not extra work
      // the task was told not to do.
      const double f = app.task(v).optional_fraction;
      if (f > 0.0) {
        c *= 1.0 - f;
      }
    }
    if (conditions != nullptr) {
      if (!conditions->wcet_factor.empty()) {
        c *= conditions->wcet_factor[v];
      }
      if (!conditions->wcet_addend.empty()) {
        c += conditions->wcet_addend[v];
      }
      c = std::max(0.0, c);
    }
    return c;
  };

  // Per-arc message-delay multipliers come pre-flattened in graph arc order;
  // GraphAnalysis::predecessor_arc_indices maps each in-edge straight to its
  // factor — no hash map on the hot path.
  const double* arc_factor =
      conditions != nullptr && !conditions->arc_delay_factor.empty()
          ? conditions->arc_delay_factor.data()
          : nullptr;
  const auto* shared_bus = dynamic_cast<const SharedBus*>(&platform.network());
  const Time bus_rate =
      shared_bus != nullptr ? shared_bus->per_item_delay() : kTimeZero;

  if (telemetry != nullptr) {
    *telemetry = DispatchTelemetry{};
    telemetry->completion.assign(n, kTimeInfinity);
  }

  const auto fail = [&](NodeId v, std::string reason) {
    result.success = false;
    result.failed_task = v;
    result.failure_reason = std::move(reason);
  };

  const auto make_view = [&](Time now) {
    return DispatchControl::View{app,     platform,  now,
                                 ws.started, ws.done, ws.finish,
                                 ws.busy_until, ws.down_at,
                                 std::span<char>(ws.shed)};
  };

  // Earliest time the data of ready task v is available on processor p.
  // Identical arithmetic to run(): nominal delay × injected factor, with the
  // SharedBus delay inlined (0 co-located, items × per-item otherwise).
  const auto data_ready = [&](NodeId v, ProcessorId p) {
    Time ready = kTimeZero;
    const auto preds = ga.predecessors(v);
    const auto pitems = ga.predecessor_items(v);
    const auto parcs = ga.predecessor_arc_indices(v);
    for (std::size_t k = 0; k < preds.size(); ++k) {
      const NodeId u = preds[k];
      Time d = shared_bus != nullptr
                   ? (ws.proc_of[u] == p ? kTimeZero : pitems[k] * bus_rate)
                   : platform.comm_delay(ws.proc_of[u], p, pitems[k]);
      if (arc_factor != nullptr) {
        d *= arc_factor[parcs[k]];
      }
      ready = std::max(ready, ws.finish[u] + d);
    }
    return ready;
  };

  // Shared-bus fast path for data_ready: the cross-processor contribution
  // finish_u + items × rate × factor does not depend on the destination, so
  // the two largest contributions from *distinct* source processors plus a
  // per-processor co-located maximum answer data_ready(v, ·) in O(1) per
  // processor after an O(preds + m) prime. Pure exact max-combining over
  // the identical per-predecessor doubles, hence bit-identical to the loop
  // above (same trick as edf_list_scheduler.cpp). Predecessor finishes are
  // final once preds_left[v] == 0 (done tasks are never killed), so a prime
  // stays valid for the whole scan over processors.
  Time dr_cross1 = kNoBound, dr_cross2 = kNoBound;
  ProcessorId dr_cross1_proc = 0;
  const auto prime_data_ready = [&](NodeId v) {
    dr_cross1 = dr_cross2 = kNoBound;
    dr_cross1_proc = 0;
    ws.fill(ws.local_pred_bound, m, kNoBound);
    const auto preds = ga.predecessors(v);
    const auto pitems = ga.predecessor_items(v);
    const auto parcs = ga.predecessor_arc_indices(v);
    for (std::size_t k = 0; k < preds.size(); ++k) {
      const NodeId u = preds[k];
      const ProcessorId up = ws.proc_of[u];
      Time d = pitems[k] * bus_rate;
      if (arc_factor != nullptr) {
        d *= arc_factor[parcs[k]];
      }
      const Time contrib = ws.finish[u] + d;
      if (contrib > dr_cross1) {
        if (up != dr_cross1_proc) {
          dr_cross2 = dr_cross1;  // dethroned max is from another processor
        }
        dr_cross1 = contrib;
        dr_cross1_proc = up;
      } else if (up != dr_cross1_proc && contrib > dr_cross2) {
        dr_cross2 = contrib;
      }
      ws.local_pred_bound[up] =
          std::max(ws.local_pred_bound[up], ws.finish[u]);
    }
  };
  const auto primed_data_ready = [&](ProcessorId p) {
    const Time cross = p == dr_cross1_proc ? dr_cross2 : dr_cross1;
    return std::max(kTimeZero, std::max(cross, ws.local_pred_bound[p]));
  };

  // ------------------------------------------------------------------
  // Indexed event state. The legacy loop rescanned all n tasks × m
  // processors once per simulated instant, both to dispatch and to find the
  // next instant; the eps tie-break forbids reordering those scans, so the
  // index does not reorder anything. Instead it reproduces the legacy run
  // exactly:
  //  * every queued wake-up entry mirrors one proposal of the legacy
  //    next-event scan (an arrival, a processor's known_from, a data-ready
  //    instant) and carries the (task, processor) pair that proposed it, so
  //    it can be re-validated against live state when it surfaces — window
  //    rewrites, re-pins, kills and revivals queue fresh entries and the
  //    superseded ones are dropped lazily;
  //  * completions live in their own heap keyed by finish instant, with the
  //    per-instant batch processed in ascending task id — the order the
  //    legacy full scan completed them;
  //  * the dispatch pass replays the legacy v-ascending fold over a
  //    candidate bitset. In that fold the eps tie clause (|d − bd| ≤ eps
  //    and v < best) can never fire — the incumbent always has the smaller
  //    id — so a candidate wins iff there is no incumbent or
  //    d < bd − eps, and one with d ≥ bd − eps cannot affect the outcome
  //    (its processor checks are pure). The pass skips exactly those.
  // The simulated instant sequence is therefore bit-identical to the legacy
  // loop's, and with it every placement, bus reservation and telemetry
  // entry (pinned by tests/test_scheduler_equivalence.cpp).
  // ------------------------------------------------------------------
  const std::size_t words = (n + 63) / 64;
  ws.fill(ws.dispatch_cand, words, std::uint64_t{0});
  ws.size(ws.dispatch_ready_at, n * m);
  ws.wake_heap.clear();
  ws.finish_heap.clear();
  ws.ineligible_tasks.clear();

  const auto cand_set = [&](NodeId v) {
    ws.dispatch_cand[v >> 6] |= std::uint64_t{1} << (v & 63);
  };
  const auto cand_clear = [&](NodeId v) {
    ws.dispatch_cand[v >> 6] &= ~(std::uint64_t{1} << (v & 63));
  };
  const auto cand_test = [&](NodeId v) {
    return ((ws.dispatch_cand[v >> 6] >> (v & 63)) & 1u) != 0;
  };

  const auto wake_before = [](const DispatchWakeEvent& a,
                              const DispatchWakeEvent& b) {
    return a.at > b.at;  // min-heap on the instant; ties in any order (only
                         // the instant is consumed, entries re-validate)
  };
  const auto finish_before = [](const std::pair<Time, NodeId>& a,
                                const std::pair<Time, NodeId>& b) {
    return a.first > b.first;
  };
  const auto note_depth = [&] {
    obs_tally.queue_peak =
        std::max<std::uint64_t>(obs_tally.queue_peak,
                                ws.wake_heap.size() + ws.finish_heap.size());
  };
  const auto push_wake = [&](Time at, NodeId v, ProcessorId p) {
    ws.push(ws.wake_heap, DispatchWakeEvent{at, v, p});
    std::push_heap(ws.wake_heap.begin(), ws.wake_heap.end(), wake_before);
    ++obs_tally.heap_ops;
    note_depth();
  };
  const auto pop_wake = [&] {
    std::pop_heap(ws.wake_heap.begin(), ws.wake_heap.end(), wake_before);
    const DispatchWakeEvent e = ws.wake_heap.back();
    ws.wake_heap.pop_back();
    ++obs_tally.heap_ops;
    return e;
  };
  const auto push_finish_event = [&](NodeId v) {
    ws.push(ws.finish_heap, std::make_pair(ws.finish[v], v));
    std::push_heap(ws.finish_heap.begin(), ws.finish_heap.end(),
                   finish_before);
    ++obs_tally.heap_ops;
    note_depth();
  };
  const auto pop_finish_event = [&] {
    std::pop_heap(ws.finish_heap.begin(), ws.finish_heap.end(),
                  finish_before);
    const std::pair<Time, NodeId> e = ws.finish_heap.back();
    ws.finish_heap.pop_back();
    ++obs_tally.heap_ops;
    return e;
  };

  // Task::eligible against the cached class table, as direct reads.
  const auto eligible_on = [&](const Task& task, ProcessorId p) {
    const ProcessorClassId e = ws.proc_class[p];
    return e < task.wcet_by_class.size() && task.wcet_by_class[e] >= 0.0;
  };

  Time now = kTimeZero;

  // Queues the future instant the legacy next-event scan would propose for
  // the (arrived candidate, eligible processor) pair from the current
  // state: the processor's known_from while it is not yet up, else the
  // cached data-ready instant.
  const auto push_pair_wake = [&](NodeId v, ProcessorId p) {
    if (now + kEps >= ws.surprise_down[p]) {
      return;  // dead processor generates no future events
    }
    if (ws.pinned[v] != kUnpinnedProcessor && ws.pinned[v] != p) {
      return;
    }
    if (now + kEps < ws.known_from[p]) {
      push_wake(ws.known_from[p], v, p);
      return;
    }
    const Time ready = ws.dispatch_ready_at[v * m + p];
    if (ready > now + kEps) {
      push_wake(ready, v, p);
    }
  };
  // Queues every future instant at which candidate v could become
  // dispatchable: its arrival while it has not arrived, otherwise the
  // per-processor instants above. Called on release, revival, arrival
  // crossings, and whenever a control callback moves v's arrival or pin.
  const auto push_task_wakes = [&](NodeId v) {
    if (windows[v].arrival > now + kEps) {
      push_wake(windows[v].arrival, v, kDispatchWakeArrival);
      return;
    }
    const Task& task = app.task(v);
    for (ProcessorId p = 0; p < m; ++p) {
      if (eligible_on(task, p)) {
        push_pair_wake(v, p);
      }
    }
  };
  // True iff the legacy next-event scan would still propose this entry's
  // instant right now. (Class eligibility is static and checked at push
  // time, so pair entries need no eligibility re-check; the caller has
  // already established e.at > now + kEps.)
  const auto wake_valid = [&](const DispatchWakeEvent& e) {
    if (!cand_test(e.task)) {
      return false;
    }
    const Time arrival = windows[e.task].arrival;
    if (e.proc == kDispatchWakeArrival) {
      return arrival > now + kEps && e.at == arrival;
    }
    if (arrival > now + kEps) {
      return false;  // only the arrival itself is proposed until it passes
    }
    if (now + kEps >= ws.surprise_down[e.proc]) {
      return false;
    }
    if (ws.pinned[e.task] != kUnpinnedProcessor &&
        ws.pinned[e.task] != e.proc) {
      return false;
    }
    if (now + kEps < ws.known_from[e.proc]) {
      return e.at == ws.known_from[e.proc];
    }
    return e.at == ws.dispatch_ready_at[e.task * m + e.proc];
  };

  // A task joins the candidate set when its last predecessor completes (or
  // right here for sources). Predecessor placements are final from then on
  // (done tasks are never killed), so data_ready(v, ·) is computed once —
  // the exact doubles the legacy loop recomputed every event.
  const auto release = [&](NodeId v) {
    Time* ready_row = ws.dispatch_ready_at.data() + v * m;
    if (shared_bus != nullptr) {
      prime_data_ready(v);
      for (ProcessorId p = 0; p < m; ++p) {
        ready_row[p] = primed_data_ready(p);
      }
    } else {
      for (ProcessorId p = 0; p < m; ++p) {
        ready_row[p] = data_ready(v, p);
      }
    }
    cand_set(v);
    const Task& task = app.task(v);
    bool any_eligible = false;
    for (ProcessorId p = 0; p < m && !any_eligible; ++p) {
      any_eligible = eligible_on(task, p);
    }
    if (!any_eligible) {
      // Class eligibility is static: the run fails the first instant this
      // task's window has arrived, checked after the dispatch pass below —
      // the position and v-order of the legacy scan's fail.
      ws.push(ws.ineligible_tasks, v);
    }
    push_task_wakes(v);
  };

  // Control callbacks may rewrite windows and pins. Only arrival and pin
  // changes move wake-up instants (deadlines are read live by the dispatch
  // pass), so snapshot those around each callback and re-queue the touched
  // candidates; entries the rewrite superseded fail re-validation.
  const auto snapshot_control_inputs = [&] {
    ws.size(ws.arrival_before, n);
    for (NodeId v = 0; v < n; ++v) {
      ws.arrival_before[v] = windows[v].arrival;
    }
    ws.size(ws.pinned_before, n);
    std::copy(ws.pinned.begin(), ws.pinned.end(), ws.pinned_before.begin());
  };
  const auto requeue_changed = [&] {
    for (NodeId v = 0; v < n; ++v) {
      if (cand_test(v) && (windows[v].arrival != ws.arrival_before[v] ||
                           ws.pinned[v] != ws.pinned_before[v])) {
        push_task_wakes(v);
      }
    }
  };

  for (NodeId v = 0; v < n; ++v) {
    if (ws.preds_left[v] == 0) {
      release(v);
    }
  }

  bool missed = false;
  std::size_t guard = 0;
  // The instant sequence is identical to the legacy loop's, so the same
  // bound applies: between two state mutations (completion / failure /
  // revival — at most n + 3m of them) the event set is bounded by n
  // arrivals + n·m data-ready instants + m busy horizons.
  const std::size_t guard_limit = (n + 3 * m + 4) * (n * (m + 1) + m + 4) + 64;
  while (remaining > 0) {
    DSSLICE_CHECK(++guard <= guard_limit, "dispatch failed to converge");
    ++obs_tally.events;

    // Unforeseen processor failures whose instant has been reached: halt the
    // processor, kill the task in flight, and let the recovery hook decide
    // which victims re-enter the dispatch queue. Kept as the verbatim O(m)
    // scan — m is small, failures are rare, and the scan preserves the
    // exact p-ascending handling and v-ascending kill order.
    for (ProcessorId p = 0; p < m; ++p) {
      if (ws.failure_handled[p] || ws.surprise_down[p] > now + kEps) {
        continue;
      }
      ws.failure_handled[p] = 1;
      any_failure = true;
      std::vector<NodeId> victims;
      for (NodeId v = 0; v < n; ++v) {
        if (ws.started[v] && !ws.done[v] && ws.proc_of[v] == p &&
            ws.finish[v] > ws.surprise_down[p] + kEps) {
          victims.push_back(v);
          ++obs_tally.killed;
          ws.started[v] = 0;
          ws.finish[v] = kTimeInfinity;  // orphans the queued finish event
          ws.lost[v] = 1;
          if (telemetry != nullptr) {
            telemetry->killed.push_back(v);
          }
        }
      }
      ws.busy_until[p] = std::min(ws.busy_until[p], ws.surprise_down[p]);
      std::vector<NodeId> revived;
      if (control != nullptr) {
        snapshot_control_inputs();
        const auto view = make_view(now);
        revived = control->on_processor_failure(view, p, victims, windows,
                                                ws.pinned);
        requeue_changed();
      }
      for (const NodeId r : revived) {
        DSSLICE_CHECK(std::find(victims.begin(), victims.end(), r) !=
                          victims.end(),
                      "control revived a task that was not a victim");
        ws.lost[r] = 0;
        ++obs_tally.restarts;
        if (telemetry != nullptr) {
          ++telemetry->restarts;
        }
        cand_set(r);
        push_task_wakes(r);  // re-enters the queue with post-callback state
      }
    }

    // Complete tasks whose finish instant has been reached: pop the due
    // finish events and process the batch in ascending task id — the order
    // the legacy full scan completed them. Entries re-check the legacy
    // completion predicate at processing time, which drops stale entries
    // (kills, re-dispatches) and duplicate survivors alike.
    ws.due_completions.clear();
    while (!ws.finish_heap.empty() &&
           ws.finish_heap.front().first <= now + kEps) {
      ws.push(ws.due_completions, pop_finish_event().second);
    }
    std::sort(ws.due_completions.begin(), ws.due_completions.end());
    for (const NodeId v : ws.due_completions) {
      if (!ws.started[v] || ws.done[v] || ws.finish[v] > now + kEps) {
        continue;  // stale: killed, re-dispatched to a later finish, or dup
      }
      ws.done[v] = 1;
      --remaining;
      result.schedule.place(v, ws.proc_of[v], ws.start_time[v], ws.finish[v]);
      if (telemetry != nullptr) {
        telemetry->completion[v] = ws.finish[v];
        if (ws.shed[v]) {
          telemetry->degraded.push_back(v);
        }
      }
      if (ws.shed[v]) {
        ++obs_tally.degraded;
      }
      const bool late = ws.finish[v] > windows[v].deadline + kEps;
      if (late) {
        missed = true;
        ++obs_tally.misses;
        if (telemetry != nullptr) {
          telemetry->misses.push_back(
              TaskMissEvent{v, ws.finish[v], windows[v].deadline});
        }
        if (options_.abort_on_miss) {
          return fail(v, "task " + app.task(v).name +
                             " misses its deadline at dispatch time");
        }
        if (!result.failed_task.has_value()) {
          result.failed_task = v;
          result.failure_reason =
              "task " + app.task(v).name + " missed its deadline";
        }
      }
      for (const NodeId s : ga.successors(v)) {
        if (--ws.preds_left[s] == 0) {
          release(s);
        }
      }
      if (control != nullptr) {
        snapshot_control_inputs();
        const auto view = make_view(now);
        control->on_completion(view, v, late, windows);
        requeue_changed();
      }
    }
    if (remaining == 0) {
      break;
    }

    // Dispatch pass(es) at the current instant: repeatedly hand the
    // closest-deadline dispatchable candidate to a processor until nothing
    // more can start at `now`. The task-independent processor checks are
    // hoisted into a free list; the candidate walk visits only released,
    // unstarted tasks, in the ascending id order of the legacy scan.
    for (;;) {
      ++obs_tally.rescans;
      ws.free_procs.clear();
      for (ProcessorId p = 0; p < m; ++p) {
        if (ws.busy_until[p] > now + kEps) {
          continue;
        }
        if (now + kEps < ws.known_from[p] ||
            now + kEps >= ws.surprise_down[p]) {
          continue;  // not yet up / observed dead
        }
        ws.push(ws.free_procs, p);
      }
      NodeId best = static_cast<NodeId>(n);
      ProcessorId best_proc = 0;
      double best_wcet = 0.0;
      Time best_deadline = kTimeInfinity;
      if (!ws.free_procs.empty()) {
        for (std::size_t w = 0; w < words; ++w) {
          std::uint64_t bits = ws.dispatch_cand[w];
          while (bits != 0) {
            const NodeId v =
                static_cast<NodeId>((w << 6) + std::countr_zero(bits));
            bits &= bits - 1;
            if (windows[v].arrival > now + kEps) {
              continue;
            }
            const Time deadline = windows[v].deadline;
            if (best < n && !(deadline < best_deadline - kEps)) {
              continue;  // cannot change the outcome (see header comment)
            }
            // Idle, available, eligible processor with data present; prefer
            // the fastest class, then the lowest id (deterministic).
            ProcessorId chosen = 0;
            double chosen_wcet = 0.0;
            bool found = false;
            const Task& task = app.task(v);
            const double* wcets = task.wcet_by_class.data();
            const std::size_t class_count = task.wcet_by_class.size();
            for (const ProcessorId p : ws.free_procs) {
              if (ws.pinned[v] != kUnpinnedProcessor && ws.pinned[v] != p) {
                continue;
              }
              const ProcessorClassId e = ws.proc_class[p];
              if (e >= class_count || wcets[e] < 0.0) {
                continue;  // Task::eligible, as direct reads
              }
              const double c = adjust_wcet(v, wcets[e]);
              if (now + c > ws.known_until[p] + kEps) {
                continue;  // would outlive the planned availability window
              }
              if (ws.dispatch_ready_at[v * m + p] > now + kEps) {
                continue;
              }
              if (!found || c < chosen_wcet) {
                found = true;
                chosen = p;
                chosen_wcet = c;
              }
            }
            if (!found) {
              continue;
            }
            best = v;
            best_proc = chosen;
            best_wcet = chosen_wcet;
            best_deadline = deadline;
          }
        }
      }
      if (best >= n) {
        break;  // nothing dispatchable right now
      }
      ++obs_tally.dispatched;
      ws.started[best] = 1;
      ws.proc_of[best] = best_proc;
      ws.start_time[best] = now;
      ws.finish[best] = now + best_wcet;
      ws.busy_until[best_proc] = ws.finish[best];
      cand_clear(best);
      push_finish_event(best);
    }

    // A released task with no eligible processor class fails the run the
    // first instant its window has arrived (the legacy scan's position and
    // ascending-id order, preserved).
    if (!ws.ineligible_tasks.empty()) {
      NodeId bad = static_cast<NodeId>(n);
      for (const NodeId v : ws.ineligible_tasks) {
        if (!(windows[v].arrival > now + kEps) && v < bad) {
          bad = v;
        }
      }
      if (bad < n) {
        return fail(bad, "task " + app.task(bad).name +
                             " has no eligible processor on this platform");
      }
    }

    // Advance to the next event: the minimum over unserved failure
    // instants, the wake queue, and the running-task completions — exactly
    // the proposal set of the legacy next-event scan. Entries at or before
    // now + eps already happened at this instant (the eps band makes them
    // indistinguishable from `now`, which is why the legacy scan never
    // proposed them) and are consumed, re-arming any follow-up instants
    // they unlock; stale entries fail re-validation and are dropped.
    Time next = kTimeInfinity;
    for (ProcessorId p = 0; p < m; ++p) {
      if (!ws.failure_handled[p] && ws.surprise_down[p] < kTimeInfinity &&
          ws.surprise_down[p] > now + kEps) {
        next = std::min(next, ws.surprise_down[p]);
      }
    }
    while (!ws.wake_heap.empty()) {
      if (ws.wake_heap.front().at <= now + kEps) {
        const DispatchWakeEvent e = pop_wake();
        if (cand_test(e.task)) {
          if (e.proc == kDispatchWakeArrival) {
            push_task_wakes(e.task);  // arrival crossed: arm the pairs
          } else if (!(windows[e.task].arrival > now + kEps) &&
                     eligible_on(app.task(e.task), e.proc)) {
            push_pair_wake(e.task, e.proc);  // known_from crossed: arm ready
          }
        }
        continue;
      }
      if (!wake_valid(ws.wake_heap.front())) {
        pop_wake();
        continue;
      }
      next = std::min(next, ws.wake_heap.front().at);
      break;
    }
    // Completions propose the busy horizon of their processor, which is the
    // task's finish instant except after a surprise failure clamped it (a
    // surviving sub-eps finish on a halted processor completes at the next
    // otherwise-scheduled instant, exactly like the legacy scan). Entries
    // that will complete but are not proposable are held aside and
    // re-queued; stale ones are dropped.
    ws.finish_held.clear();
    while (!ws.finish_heap.empty()) {
      const std::pair<Time, NodeId> top = ws.finish_heap.front();
      const NodeId v = top.second;
      if (!ws.started[v] || ws.done[v] || ws.finish[v] != top.first) {
        pop_finish_event();  // stale
        continue;
      }
      if (top.first <= now + kEps ||
          ws.busy_until[ws.proc_of[v]] != top.first) {
        ws.push(ws.finish_held, pop_finish_event());
        continue;
      }
      next = std::min(next, top.first);
      break;
    }
    for (const std::pair<Time, NodeId>& e : ws.finish_held) {
      ws.push(ws.finish_heap, e);
      std::push_heap(ws.finish_heap.begin(), ws.finish_heap.end(),
                     finish_before);
      ++obs_tally.heap_ops;
    }
    if (next >= kTimeInfinity) {
      if (any_failure) {
        // Failures stranded the rest of the graph: report the degraded run
        // instead of spinning (tasks blocked on lost predecessors or dead
        // pinned processors can never proceed).
        break;
      }
      // All ready tasks are waiting only for busy processors that never
      // free up — impossible in a finite simulation unless the graph is
      // cyclic, which Application::validate rejects.
      return fail(0, "dispatch deadlocked: task graph has a cycle");
    }
    now = next;
  }

  if (remaining > 0) {
    std::size_t stranded = 0;
    NodeId first = 0;
    for (NodeId v = 0; v < n; ++v) {
      if (!ws.done[v]) {
        if (stranded++ == 0) {
          first = v;
        }
        if (telemetry != nullptr) {
          telemetry->unfinished.push_back(v);
        }
      }
    }
    return fail(first, "processor failure left " + std::to_string(stranded) +
                           " task(s) unfinished (first: " +
                           app.task(first).name + ")");
  }

  result.success = !missed && result.schedule.complete();
}

}  // namespace dsslice
